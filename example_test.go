package inpg_test

import (
	"fmt"

	"inpg"
)

// The canonical flow: configure, build, run, read results. A tiny 2×2
// system keeps the example fast; real studies use the 8×8 default.
func ExampleNew() {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 2, 2
	cfg.Lock = inpg.LockMCS
	cfg.CSPerThread = 2
	cfg.CSCycles = 50
	cfg.CSJitter = 0
	cfg.ParallelCycles = 200
	cfg.ParallelJitter = 0

	sys, err := inpg.New(cfg)
	if err != nil {
		panic(err)
	}
	res, err := sys.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("threads:", res.Threads)
	fmt.Println("critical sections:", res.CSCompleted)
	// Output:
	// threads: 4
	// critical sections: 8
}

// Mechanisms and lock kinds print with the paper's names and round-trip
// through their parsers.
func ExampleParseMechanism() {
	for _, m := range inpg.Mechanisms {
		back, _ := inpg.ParseMechanism(m.String())
		fmt.Println(m, back == m)
	}
	// Output:
	// Original true
	// OCOR true
	// iNPG true
	// iNPG+OCOR true
}

// Comparing Original against iNPG on identical seeds is a two-config
// affair; the deterministic engine makes the comparison exact.
func ExampleConfig() {
	base := inpg.DefaultConfig()
	base.MeshWidth, base.MeshHeight = 4, 4
	base.Lock = inpg.LockTAS
	base.CSPerThread = 2
	base.CSCycles = 40
	base.CSJitter = 0
	base.ParallelCycles = 150
	base.ParallelJitter = 0

	for _, mech := range []inpg.Mechanism{inpg.Original, inpg.INPG} {
		cfg := base
		cfg.Mechanism = mech
		sys, err := inpg.New(cfg)
		if err != nil {
			panic(err)
		}
		res, err := sys.Run()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s completed %d critical sections (early invalidations: %v)\n",
			mech, res.CSCompleted, res.EarlyInvs > 0)
	}
	// Output:
	// Original completed 32 critical sections (early invalidations: false)
	// iNPG completed 32 critical sections (early invalidations: true)
}
