package inpg_test

import (
	"reflect"
	"sync"
	"testing"

	"inpg"
	"inpg/internal/experiments"
	"inpg/internal/fault"
	"inpg/internal/noc"
	"inpg/internal/runner"
	"inpg/internal/trace"
)

// meteredConfig is a small full-system run with telemetry enabled.
func meteredConfig(mech inpg.Mechanism, seed int64) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Mechanism = mech
	cfg.Lock = inpg.LockTAS
	cfg.CSPerThread = 3
	cfg.Seed = seed
	cfg.Metrics = true
	return cfg
}

// snapshotTexts runs cfgs through RunObserved and collects each run's
// final counter snapshot in canonical text form, by submission index.
func snapshotTexts(t *testing.T, cfgs []inpg.Config, workers int) []string {
	t.Helper()
	texts := make([]string, len(cfgs))
	var mu sync.Mutex
	_, err := runner.RunObserved(cfgs, workers, func(o runner.Outcome) {
		if !o.Done {
			return
		}
		if o.Snapshot == nil {
			t.Errorf("run %d: metered run produced no snapshot", o.Index)
			return
		}
		mu.Lock()
		texts[o.Index] = o.Snapshot.Text()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return texts
}

// Counter snapshots are byte-identical however many workers execute the
// sweep: each simulation is single-threaded and seeded, and the registry
// reads in sorted-name order.
func TestMetricsSnapshotsDeterministicAcrossWorkerCounts(t *testing.T) {
	var cfgs []inpg.Config
	for i, mech := range inpg.Mechanisms {
		cfgs = append(cfgs, meteredConfig(mech, int64(i+1)))
	}
	serial := snapshotTexts(t, cfgs, 1)
	parallel := snapshotTexts(t, cfgs, 4)
	for i := range cfgs {
		if serial[i] == "" {
			t.Fatalf("run %d produced no snapshot text", i)
		}
		if serial[i] != parallel[i] {
			t.Fatalf("run %d: snapshots differ between 1 and 4 workers\nserial:\n%s\nparallel:\n%s",
				i, serial[i], parallel[i])
		}
	}
}

// Snapshots are also byte-identical between the engine's activity-driven
// and always-tick scheduling modes.
func TestMetricsSnapshotsIdenticalAcrossCompatModes(t *testing.T) {
	run := func(alwaysTick bool) string {
		cfg := meteredConfig(inpg.INPGOCOR, 7)
		cfg.AlwaysTick = alwaysTick
		sys, err := inpg.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.MetricsSnapshot().Text()
	}
	active, compat := run(false), run(true)
	if active != compat {
		t.Fatalf("snapshots differ between scheduling modes\nactivity:\n%s\ncompat:\n%s", active, compat)
	}
}

// Enabling metrics — including the periodic sampler — must not perturb the
// simulation: results are identical field for field.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	for _, mech := range []inpg.Mechanism{inpg.Original, inpg.INPG} {
		base := meteredConfig(mech, 11)
		base.Metrics = false
		sys, err := inpg.New(base)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}

		metered := meteredConfig(mech, 11)
		metered.MetricsSampleEvery = 500
		sys2, err := inpg.New(metered)
		if err != nil {
			t.Fatal(err)
		}
		withMetrics, err := sys2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withMetrics) {
			t.Fatalf("%v: metrics perturbed the run\nplain:   %+v\nmetered: %+v", mech, plain, withMetrics)
		}
		if sys2.MetricsSampler() == nil || len(sys2.MetricsSampler().Series) == 0 {
			t.Fatalf("%v: sampler collected no series", mech)
		}
	}
}

// Figure output stays byte-identical with metrics on: the registry only
// reads component stats, so tables cannot shift.
func TestFigureOutputIdenticalWithMetricsOn(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 sweep")
	}
	o := experiments.Options{Scale: 0.02, Seed: 42, Quick: true, Workers: 4}
	plain, err := experiments.Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Metrics = true
	o.MetricsSampleEvery = 1000
	metered, err := experiments.Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != metered.Render() {
		t.Fatalf("Figure 2 output changed with metrics on\nplain:\n%s\nmetered:\n%s",
			plain.Render(), metered.Render())
	}
}

// The key snapshot counters cross-check the run's own results.
func TestMetricsSnapshotMatchesResults(t *testing.T) {
	cfg := meteredConfig(inpg.INPG, 3)
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.MetricsSnapshot()
	check := func(name string, want uint64) {
		t.Helper()
		v, ok := snap.Get(name)
		if !ok {
			t.Fatalf("snapshot missing %q", name)
		}
		if v != want {
			t.Fatalf("%s = %d, want %d", name, v, want)
		}
	}
	check("cpu.cs_completed", uint64(res.CSCompleted))
	check("inpg.early_invs", res.EarlyInvs)
	check("inpg.getx_stopped", res.Stopped)
	if v, _ := snap.Get("noc.injected"); v == 0 {
		t.Fatal("noc.injected = 0 after a full run")
	}
	if v, _ := snap.Get("l1.atomics"); v == 0 {
		t.Fatal("l1.atomics = 0 after a lock competition")
	}
	// Lock hold/handoff histograms recorded every critical section.
	var hold *uint64
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "lock.hold_cycles" {
			hold = &snap.Histograms[i].Count
		}
	}
	if hold == nil || *hold != uint64(res.CSCompleted) {
		t.Fatalf("lock.hold_cycles count = %v, want %d", hold, res.CSCompleted)
	}
}

// A faulted, traced run records the link layer's retransmissions in the
// protocol trace, interleaved in nondecreasing cycle order.
func TestFaultedTraceRecordsLinkRetries(t *testing.T) {
	cfg := faultyConfig(1, 42)
	cfg.TraceCapacity = 1 << 16 // no AddrFilter: record all blocks
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	buf := sys.Trace()
	events := buf.Events()
	counts := trace.CountByKind(events)
	if counts[trace.LinkRetry] == 0 {
		t.Fatalf("no link-retry events traced with %d retries counted", res.LinkRetries)
	}
	// When the ring did not evict, the trace holds every retry the
	// results counted.
	if buf.Total == uint64(buf.Len()) && uint64(counts[trace.LinkRetry]) != res.LinkRetries {
		t.Fatalf("traced %d link retries, results count %d", counts[trace.LinkRetry], res.LinkRetries)
	}
	if counts[trace.LinkDead] != 0 {
		t.Fatalf("%d links died under transient faults", counts[trace.LinkDead])
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("trace out of order at %d: %v after %v", i, events[i], events[i-1])
		}
	}
}

// A wedged run's trace shows the full link death sequence: every
// link-dead event is preceded by the bounded retries that exhausted it,
// at the same router, toward the same neighbor.
func TestWedgedTraceOrdersRetriesBeforeDeath(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Lock = inpg.LockTAS
	cfg.CSPerThread = 2
	cfg.LockHomeNode = 10
	cfg.WatchdogWindow = 50_000
	cfg.MaxCycles = 50_000_000
	cfg.TraceCapacity = 1 << 16

	mesh := noc.Mesh{Width: 4, Height: 4}
	home := noc.NodeID(10)
	for _, nb := range []noc.NodeID{6, 9, 11, 14} {
		cfg.Fault.PermanentStalls = append(cfg.Fault.PermanentStalls, fault.PortStall{
			Node: int(nb), Port: int(mesh.RouteXY(nb, home)), From: 1000,
		})
	}
	cfg.Fault.MaxRetries = 3
	cfg.Fault.RetryTimeout = 8

	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("wedged run completed")
	}
	events := sys.Trace().Events()
	counts := trace.CountByKind(events)
	if counts[trace.LinkDead] == 0 {
		t.Fatal("no link-dead events traced in a wedged run")
	}
	// Ordering: before a node's link-dead event, that node must have
	// traced at least MaxRetries link-retry events.
	retriesByNode := map[noc.NodeID]int{}
	for _, e := range events {
		switch e.Kind {
		case trace.LinkRetry:
			retriesByNode[e.Node]++
		case trace.LinkDead:
			if retriesByNode[e.Node] < cfg.Fault.MaxRetries {
				t.Fatalf("link at node %d died after only %d traced retries (max %d):\n%s",
					e.Node, retriesByNode[e.Node], cfg.Fault.MaxRetries, e)
			}
		}
	}
}
