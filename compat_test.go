package inpg_test

// Differential check for activity-driven scheduling: the engine's
// wake/sleep protocol and idle fast-forward are pure scheduling
// optimizations, so a full-protocol run must be bit-identical to the same
// run under the always-tick reference mode (Config.AlwaysTick) — same
// runtime, same per-thread phase breakdowns, same network statistics, and
// the same message-level event stream in the same order.

import (
	"reflect"
	"testing"

	"inpg"
	"inpg/internal/trace"
)

// compatRun executes one configuration with full protocol tracing and
// returns the results plus the ordered message-level event stream.
func compatRun(t *testing.T, cfg inpg.Config, alwaysTick bool) (*inpg.Results, []trace.Event) {
	t.Helper()
	cfg.AlwaysTick = alwaysTick
	cfg.TraceCapacity = 1 << 19
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.Trace()
	if tr.Len() >= 1<<19 {
		t.Fatalf("trace overflowed its ring (%d events): enlarge TraceCapacity so delivery order is fully compared", tr.Len())
	}
	return res, tr.Events()
}

// TestActivitySchedulingMatchesAlwaysTick runs the full lock protocol —
// every lock kind, three seeds, big routers and priority arbitration
// deployed — under both engine modes and asserts identical cycle counts,
// statistics and packet delivery order.
func TestActivitySchedulingMatchesAlwaysTick(t *testing.T) {
	for _, lk := range inpg.LockKinds {
		for _, seed := range []int64{1, 7, 1009} {
			lk, seed := lk, seed
			t.Run(lk.String(), func(t *testing.T) {
				cfg := inpg.DefaultConfig()
				cfg.Lock = lk
				cfg.Mechanism = inpg.INPGOCOR
				cfg.CSPerThread = 2
				cfg.Seed = seed

				active, activeEvents := compatRun(t, cfg, false)
				compat, compatEvents := compatRun(t, cfg, true)

				if active.Runtime != compat.Runtime {
					t.Fatalf("seed %d: runtime %d under activity scheduling, %d under always-tick",
						seed, active.Runtime, compat.Runtime)
				}
				if !reflect.DeepEqual(active, compat) {
					t.Fatalf("seed %d: results diverge:\nactivity:    %+v\nalways-tick: %+v",
						seed, active, compat)
				}
				if len(activeEvents) != len(compatEvents) {
					t.Fatalf("seed %d: %d trace events under activity scheduling, %d under always-tick",
						seed, len(activeEvents), len(compatEvents))
				}
				for i := range activeEvents {
					if activeEvents[i] != compatEvents[i] {
						t.Fatalf("seed %d: event %d diverges:\nactivity:    %+v\nalways-tick: %+v",
							seed, i, activeEvents[i], compatEvents[i])
					}
				}
			})
		}
	}
}

// TestActivitySchedulingMatchesAlwaysTickOriginal covers the baseline
// mechanism (no interceptors) for one lock, so the wake protocol is
// validated on the pure router/NI/protocol path as well.
func TestActivitySchedulingMatchesAlwaysTickOriginal(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.Lock = inpg.LockQSL
	cfg.Mechanism = inpg.Original
	cfg.CSPerThread = 2
	cfg.Seed = 3

	active, activeEvents := compatRun(t, cfg, false)
	compat, compatEvents := compatRun(t, cfg, true)
	if !reflect.DeepEqual(active, compat) {
		t.Fatalf("results diverge:\nactivity:    %+v\nalways-tick: %+v", active, compat)
	}
	if !reflect.DeepEqual(activeEvents, compatEvents) {
		t.Fatal("trace event streams diverge")
	}
}
