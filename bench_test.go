package inpg_test

// One benchmark per table/figure of the paper's evaluation (DESIGN.md §3).
// Each bench regenerates its figure at reduced scale and reports the
// figure's headline quantities as custom metrics, so `go test -bench=.`
// doubles as a quick reproduction pass. cmd/inpgbench produces the
// full-size tables.

import (
	"fmt"
	"sync"
	"testing"

	"inpg"
	"inpg/internal/analytic"
	"inpg/internal/experiments"
)

// benchOpts shrinks runs to benchmark-friendly sizes.
func benchOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Quick = true
	return o
}

// BenchmarkTable1PlatformBuild measures construction of the full Table 1
// platform (64 routers, NIs, L1s, directories, memory controllers).
func BenchmarkTable1PlatformBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := inpg.DefaultConfig()
		if _, err := inpg.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2LCOPercent regenerates Figure 2 (LCO share per primitive)
// for one program and reports the TAS and MCS percentages — the two ends
// of the paper's ordering.
func BenchmarkFig2LCOPercent(b *testing.B) {
	o := benchOpts()
	var tas, mcs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		tas = r.LCOPercent[0][0]
		mcs = r.LCOPercent[0][3]
	}
	b.ReportMetric(tas, "LCO%/TAS")
	b.ReportMetric(mcs, "LCO%/MCS")
}

// BenchmarkFig7ChipModel regenerates the synthesis summary (pure
// arithmetic; exists so every figure has a bench target).
func BenchmarkFig7ChipModel(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = experiments.Fig7().PacketGenOverhead
	}
	b.ReportMetric(100*overhead, "pktgen-power-%")
}

// BenchmarkFig8CSCharacteristics runs the benchmark characterization for
// the three Figure 2 programs' group representatives.
func BenchmarkFig8CSCharacteristics(b *testing.B) {
	o := benchOpts()
	var coh float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		coh = r.Rows[len(r.Rows)-1].COHShare()
	}
	b.ReportMetric(100*coh, "COH-share-%/heaviest")
}

// BenchmarkFig9Timeline regenerates the freqmine execution profile and
// reports iNPG+OCOR's progress over Original.
func BenchmarkFig9Timeline(b *testing.B) {
	o := benchOpts()
	var progress float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		progress = r.Cases[3].ProgressVsOriginal
	}
	b.ReportMetric(progress, "progress-x/iNPG+OCOR")
}

// BenchmarkFig10RoundTrip regenerates the Inv-Ack round-trip comparison
// and reports the paper's headline: mean RTT for Original vs iNPG.
func BenchmarkFig10RoundTrip(b *testing.B) {
	o := benchOpts()
	var orig, with float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		orig = r.Cases[0].MeanRTT
		with = r.Cases[1].MeanRTT
	}
	b.ReportMetric(orig, "rtt/Original")
	b.ReportMetric(with, "rtt/iNPG")
}

// benchSuite caches the shared Figure 11/12 sweep across both benches.
// The sync.Once keeps the lazy fill safe if the benches ever run from
// concurrent goroutines (and under -race).
var (
	benchSuiteOnce  sync.Once
	benchSuiteCache *experiments.SuiteResult
	benchSuiteErr   error
)

func benchSuite(b *testing.B) *experiments.SuiteResult {
	b.Helper()
	benchSuiteOnce.Do(func() {
		benchSuiteCache, benchSuiteErr = experiments.RunSuite(benchOpts())
	})
	if benchSuiteErr != nil {
		b.Fatal(benchSuiteErr)
	}
	return benchSuiteCache
}

// BenchmarkFig11CSExpedition reports mean CS expedition per mechanism.
func BenchmarkFig11CSExpedition(b *testing.B) {
	var ocor, inpgx float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		ocor = s.GroupMeanExpedition(0, 1)
		inpgx = s.GroupMeanExpedition(0, 2)
	}
	b.ReportMetric(ocor, "cs-x/OCOR")
	b.ReportMetric(inpgx, "cs-x/iNPG")
}

// BenchmarkFig12ROIFinishTime reports mean normalized ROI finish time.
func BenchmarkFig12ROIFinishTime(b *testing.B) {
	var ocor, inpgx float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		ocor = s.GroupMeanROI(0, 1)
		inpgx = s.GroupMeanROI(0, 2)
	}
	b.ReportMetric(ocor, "roi-%/OCOR")
	b.ReportMetric(inpgx, "roi-%/iNPG")
}

// BenchmarkFig13LockPrimitives reports iNPG's mean ROI reduction for the
// extreme primitives (TAS and MCS).
func BenchmarkFig13LockPrimitives(b *testing.B) {
	o := benchOpts()
	var tas, mcs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(o, false)
		if err != nil {
			b.Fatal(err)
		}
		tas = r.MeanReductionPct[0]
		mcs = r.MeanReductionPct[3]
	}
	b.ReportMetric(tas, "roi-red-%/TAS")
	b.ReportMetric(mcs, "roi-red-%/MCS")
}

// BenchmarkFig14Deployment reports CS expedition at 32 big routers.
func BenchmarkFig14Deployment(b *testing.B) {
	o := benchOpts()
	var at32 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(o)
		if err != nil {
			b.Fatal(err)
		}
		at32 = r.Mean[3]
	}
	b.ReportMetric(at32, "cs-x/32BR")
}

// BenchmarkFig15Sensitivity reports iNPG's ROI reduction on the default
// 8×8/16-entry configuration cell of the sensitivity matrix.
func BenchmarkFig15Sensitivity(b *testing.B) {
	o := benchOpts()
	var cell float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(o)
		if err != nil {
			b.Fatal(err)
		}
		cell = r.Reduction[2][1] // 8×8, 16 entries
	}
	b.ReportMetric(cell, "roi-red-%/8x8-16e")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per second on the contended Table 1 platform.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := inpg.DefaultConfig()
		cfg.CSPerThread = 3
		cfg.CSCycles = 100
		cfg.ParallelCycles = 1500
		cfg.Seed = int64(i + 1)
		sys, err := inpg.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Runtime
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/run")
}

// BenchmarkSimulatorThroughputJourney prices what observability adds on
// top of BenchmarkSimulatorThroughput's exact workload: "metrics" pays
// for the telemetry registry alone (the tracer's prerequisite), and
// "journey" additionally sets JourneyRate 1 — every acquisition carries
// a full per-stage journey record, the worst case for the sampling
// knob. At equal b.N the sim-cycles/run metric matches the untraced
// benchmark bit-for-bit: tracing observes, never perturbs.
func BenchmarkSimulatorThroughputJourney(b *testing.B) {
	for _, v := range []struct {
		name string
		rate float64
	}{{"metrics", 0}, {"journey", 1}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := inpg.DefaultConfig()
				cfg.CSPerThread = 3
				cfg.CSCycles = 100
				cfg.ParallelCycles = 1500
				cfg.Seed = int64(i + 1)
				cfg.Metrics = true
				cfg.JourneyRate = v.rate
				sys, err := inpg.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Runtime
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/run")
		})
	}
}

// BenchmarkSimulatorIdleHeavy measures simulation speed on an idle-heavy
// workload: TTL (whose waiters back off proportionally to queue distance)
// with long parallel phases, so for most of the run the chip is quiescent —
// every thread is parked on a scheduled event and no router or NI has work.
// This is the shape of the paper's high-contention/high-backoff scenarios,
// and the workload where activity-driven scheduling pays off most: an
// always-tick engine burns a full 128-component tick pass on every one of
// those empty cycles.
func BenchmarkSimulatorIdleHeavy(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := inpg.DefaultConfig()
		cfg.Lock = inpg.LockTTL
		cfg.CSPerThread = 3
		cfg.CSCycles = 50
		cfg.CSJitter = 15
		cfg.ParallelCycles = 30_000
		cfg.ParallelJitter = 5_000
		cfg.Seed = int64(i + 1)
		sys, err := inpg.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Runtime
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/run")
}

// largeMeshConfig is the BenchmarkSimulatorLargeMesh workload: the full
// iNPG+OCOR protocol on a dim×dim mesh under the given shard count.
// Contended TTL (every thread spinning on one lock with distance-scaled
// backoff) keeps most routers awake most cycles — the shape where the
// sharded tick pass has real work to split. The seed is fixed so every
// shard count simulates the identical run; the sim-cycles/run metric is
// the cycle-exactness witness (it must not move across sub-benchmarks).
func largeMeshConfig(dim, shards int, lk inpg.LockKind, parallel int) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = dim, dim
	cfg.Mechanism = inpg.INPGOCOR
	cfg.Lock = lk
	cfg.CSPerThread = 1
	cfg.CSCycles = 50
	cfg.CSJitter = 15
	cfg.ParallelCycles = parallel
	cfg.ParallelJitter = parallel / 4
	cfg.Seed = 1
	cfg.Shards = shards
	return cfg
}

// BenchmarkSimulatorLargeMesh measures large-mesh simulation speed and the
// sharded engine's scaling: 16×16 and 32×32, contended TTL plus an
// activity-light QSL case, each across shard counts. Expect speedup only
// when GOMAXPROCS offers real cores; on fewer cores the adaptive inline
// gate keeps the overhead flat. Results for any shard count are
// bit-identical (pinned by shards_test.go); sim-cycles/run proves it here.
func BenchmarkSimulatorLargeMesh(b *testing.B) {
	cases := []struct {
		name     string
		dim      int
		lk       inpg.LockKind
		parallel int
	}{
		{"16x16-TTL-contended", 16, inpg.LockTTL, 2000},
		{"32x32-QSL", 32, inpg.LockQSL, 500},
		{"32x32-TTL-contended", 32, inpg.LockTTL, 20000},
	}
	for _, c := range cases {
		// 0 benches the CLIs' -shards 0 auto mode: inpg.AutoShards picks
		// the count from GOMAXPROCS and the mesh, so on a single-core
		// host it must match shards=1 (the gate against paying barrier
		// overhead with no cores to spread it over).
		for _, shards := range []int{1, 2, 4, 8, 0} {
			name := fmt.Sprintf("%s/shards=%d", c.name, shards)
			if shards == 0 {
				shards = inpg.AutoShards(c.dim, c.dim)
				name = fmt.Sprintf("%s/shards=auto(%d)", c.name, shards)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var cycles uint64
				for i := 0; i < b.N; i++ {
					sys, err := inpg.New(largeMeshConfig(c.dim, shards, c.lk, c.parallel))
					if err != nil {
						b.Fatal(err)
					}
					res, err := sys.Run()
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.Runtime
				}
				b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/run")
			})
		}
	}
}

// BenchmarkAnalyticEstimate measures the analytic fast model's per-cell
// cost: what a sweep cell answered by internal/analytic costs instead
// of a detailed simulation. Cycling the contention level defeats any
// accidental memoization without changing what is measured.
func BenchmarkAnalyticEstimate(b *testing.B) {
	cfg := inpg.DefaultConfig()
	var sink analytic.Estimate
	for i := 0; i < b.N; i++ {
		cfg.ParallelCycles = 200 << (i % 12)
		sink = analytic.For(cfg)
	}
	_ = sink
}

// BenchmarkPreSweep runs the quick contention ladder both ways: the
// exhaustive reference and the analytically pre-screened hybrid. The
// figure bytes are identical (pinned by test); the ns/op gap and the
// sim-cells metric are the pre-screening payoff.
func BenchmarkPreSweep(b *testing.B) {
	for _, pre := range []bool{false, true} {
		name := "exhaustive"
		if pre {
			name = "prescreened"
		}
		b.Run(name, func(b *testing.B) {
			o := benchOpts()
			var cells float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunPre(o, pre)
				if err != nil {
					b.Fatal(err)
				}
				cells = float64(r.SimCells)
			}
			b.ReportMetric(cells, "sim-cells")
		})
	}
}

// BenchmarkAblationBarrierTTL runs the barrier-TTL ablation and reports
// the RTT at the paper's default TTL.
func BenchmarkAblationBarrierTTL(b *testing.B) {
	o := benchOpts()
	var rtt float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBarrierTTL(o)
		if err != nil {
			b.Fatal(err)
		}
		rtt = r.Rows[2].RTTMean // ttl=128
	}
	b.ReportMetric(rtt, "rtt/ttl128")
}
