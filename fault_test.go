package inpg_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"inpg"
	"inpg/internal/fault"
	"inpg/internal/noc"
	"inpg/internal/runner"
	"inpg/internal/sim"
)

// faultyConfig is a small full-system run with moderate transient faults.
func faultyConfig(seed, faultSeed int64) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Lock = inpg.LockTAS
	cfg.CSPerThread = 3
	cfg.Seed = seed
	cfg.Fault = fault.AtRate(0.02, faultSeed)
	return cfg
}

// A run under moderate transient fault rates completes every thread's
// program: link-level retransmission fully absorbs the injected faults.
// The counters prove faults were actually injected and retried.
func TestFaultyRunCompletesWithRetries(t *testing.T) {
	sys, err := inpg.New(faultyConfig(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run failed under 2%% fault rate: %v", err)
	}
	if res.CSCompleted != 16*3 {
		t.Fatalf("completed %d critical sections, want %d", res.CSCompleted, 16*3)
	}
	if res.FaultsInjected == 0 || res.LinkRetries == 0 {
		t.Fatalf("no faults recorded (injected=%d retries=%d) at 2%% rate", res.FaultsInjected, res.LinkRetries)
	}
	if res.LinkFailures != 0 {
		t.Fatalf("%d links died under transient faults", res.LinkFailures)
	}
}

// Fault-injected runs are byte-identical for a given (seed, fault seed)
// regardless of how many runner workers execute them: fault decisions are
// order-independent keyed hashes, and each simulation stays single-threaded.
func TestFaultedRunsDeterministicAcrossWorkerCounts(t *testing.T) {
	var cfgs []inpg.Config
	for i := 0; i < 6; i++ {
		cfgs = append(cfgs, faultyConfig(int64(i+1), int64(100+i)))
	}
	serial, err := runner.Run(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.Run(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("run %d: results differ between 1 and 8 workers\nserial:   %+v\nparallel: %+v",
				i, serial[i], parallel[i])
		}
	}
}

// Faulted runs are also event-for-event identical between the two engine
// scheduling modes, extending the compat guarantee to nonzero fault rates.
func TestFaultedCompatModesMatch(t *testing.T) {
	cfg := faultyConfig(7, 99)
	active, activeEvents := compatRun(t, cfg, false)
	compat, compatEvents := compatRun(t, cfg, true)
	if !reflect.DeepEqual(active, compat) {
		t.Fatalf("faulted results differ between scheduling modes\nactivity: %+v\ncompat:   %+v", active, compat)
	}
	if len(activeEvents) != len(compatEvents) {
		t.Fatalf("event counts differ: %d vs %d", len(activeEvents), len(compatEvents))
	}
	for i := range activeEvents {
		if activeEvents[i] != compatEvents[i] {
			t.Fatalf("event %d differs:\nactivity: %+v\ncompat:   %+v", i, activeEvents[i], compatEvents[i])
		}
	}
}

// A deliberately wedged run — every port into the lock's home node
// permanently stalled, bounded retries exhausted — returns a
// *inpg.SimulationError from Run well before MaxCycles, whose Diagnostics
// names the dead links around the home router and the blocked threads.
func TestWedgedRunDiagnosedByWatchdog(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Lock = inpg.LockTAS
	cfg.CSPerThread = 2
	cfg.LockHomeNode = 10
	cfg.WatchdogWindow = 50_000
	cfg.MaxCycles = 50_000_000

	// Kill every link into node 10: each neighbor's output port toward the
	// home drops all flits from cycle 1000 on (letting startup traffic warm
	// the caches first so the wedge hits mid-competition).
	mesh := noc.Mesh{Width: 4, Height: 4}
	home := noc.NodeID(10)
	for _, nb := range []noc.NodeID{6, 9, 11, 14} {
		cfg.Fault.PermanentStalls = append(cfg.Fault.PermanentStalls, fault.PortStall{
			Node: int(nb), Port: int(mesh.RouteXY(nb, home)), From: 1000,
		})
	}
	cfg.Fault.MaxRetries = 3
	cfg.Fault.RetryTimeout = 8

	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run()
	var simErr *inpg.SimulationError
	if !errors.As(err, &simErr) {
		t.Fatalf("err = %v, want *inpg.SimulationError", err)
	}
	if simErr.Reason != "watchdog" {
		t.Fatalf("reason = %q, want watchdog", simErr.Reason)
	}
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("SimulationError does not unwrap to *sim.StallError: %v", err)
	}
	// Wedge at ~cycle 1000 + bounded retries, watchdog window 50k: the trip
	// must come orders of magnitude before the 50M cycle budget.
	if simErr.Cycle > 1_000_000 {
		t.Fatalf("diagnosed at cycle %d; expected well under 1M", simErr.Cycle)
	}
	if simErr.Unfinished == 0 {
		t.Fatal("no threads reported unfinished in a wedged run")
	}
	d := simErr.Diag
	if d == nil {
		t.Fatal("SimulationError carries no diagnostics")
	}
	dead := d.Net.DeadLinks()
	if len(dead) == 0 {
		t.Fatal("diagnostics name no dead links")
	}
	neighbors := map[int]bool{6: true, 9: true, 11: true, 14: true}
	for _, vc := range dead {
		if !neighbors[vc.Node] {
			t.Fatalf("dead link at unexpected router %d: %+v", vc.Node, vc)
		}
	}
	if len(d.Threads) == 0 {
		t.Fatal("diagnostics list no blocked threads")
	}
	dump := d.String()
	for _, want := range []string{"dead links", "unfinished threads", "LINK DEAD"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("diagnostics dump missing %q:\n%s", want, dump)
		}
	}
}

// At fault rate zero the new Results counters are zero, so rate-0 runs
// remain comparable (and byte-identical) to pre-fault-layer outputs.
func TestZeroFaultRateCountersZero(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.CSPerThread = 2
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected != 0 || res.LinkRetries != 0 || res.LinkFailures != 0 || res.PortStallHits != 0 {
		t.Fatalf("fault counters nonzero at rate 0: %+v", res)
	}
}
