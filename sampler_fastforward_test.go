package inpg_test

import (
	"reflect"
	"testing"

	"inpg"
)

// sampleCycles runs one metered simulation and returns the cycles at
// which the periodic sampler fired, plus the final cycle count.
func sampleCycles(t *testing.T, alwaysTick bool, shards, every int) ([]uint64, uint64) {
	t.Helper()
	cfg := inpg.DefaultConfig()
	cfg.Threads = 8
	cfg.CSPerThread = 2
	cfg.ParallelCycles = 400 // long idle gaps: fast-forward engages hard
	cfg.Metrics = true
	cfg.MetricsSampleEvery = every
	cfg.AlwaysTick = alwaysTick
	cfg.Shards = shards
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := sys.MetricsSampler()
	if s == nil {
		t.Fatal("no sampler")
	}
	cycles := make([]uint64, len(s.Series))
	for i, smp := range s.Series {
		cycles[i] = smp.Cycle
	}
	return cycles, res.Runtime
}

// TestSamplerSurvivesFastForward is the regression oracle for the
// periodic metrics sampler against activity-driven scheduling: when the
// engine fast-forwards across idle gaps it must not skip past (or
// double-fire) a scheduled sample. The sampled cycles must be exactly
// the arithmetic series interval, 2·interval, … up to the final cycle —
// no drops, no duplicates — and identical between the always-tick
// reference engine, the activity-driven engine, and the sharded tick
// pass.
func TestSamplerSurvivesFastForward(t *testing.T) {
	const every = 137 // deliberately off any natural event period
	ref, refRuntime := sampleCycles(t, true, 1, every)

	// Pin the exact schedule against the reference engine: one sample
	// per interval boundary reached before the run ended.
	if len(ref) == 0 {
		t.Fatal("reference run collected no samples")
	}
	for i, c := range ref {
		if want := uint64(every) * uint64(i+1); c != want {
			t.Fatalf("reference sample %d at cycle %d, want %d", i, c, want)
		}
	}
	if last := ref[len(ref)-1]; last > refRuntime {
		t.Fatalf("sample beyond end of run: %d > %d", last, refRuntime)
	}
	if wantN := int(refRuntime / every); len(ref) < wantN {
		t.Fatalf("samples dropped: got %d, want at least %d (runtime %d)",
			len(ref), wantN, refRuntime)
	}

	for _, tc := range []struct {
		name       string
		alwaysTick bool
		shards     int
	}{
		{"activity", false, 1},
		{"activity-sharded", false, 4},
	} {
		got, runtime := sampleCycles(t, tc.alwaysTick, tc.shards, every)
		if runtime != refRuntime {
			t.Fatalf("%s: runtime %d, want %d", tc.name, runtime, refRuntime)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s: sample cycles diverge from always-tick reference:\n%v\nvs\n%v",
				tc.name, got, ref)
		}
	}
}
