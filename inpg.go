// Package inpg is a full-system reproduction of "iNPG: Accelerating
// Critical Section Access with In-Network Packet Generation for NoC Based
// Many-Cores" (Yao & Lu, HPCA 2018).
//
// It assembles, from scratch and in pure Go, the substrate the paper
// evaluates on — a mesh NoC with virtual-channel wormhole routers, a
// directory-based MOESI coherence protocol over private L1s and a banked
// shared L2, memory controllers, and per-core threads executing five
// different locking primitives — plus the paper's two mechanisms: OCOR
// (priority-arbitration competition-overhead reduction, the ISCA'16
// baseline) and iNPG ("big" routers that generate early invalidation
// packets in-network).
//
// The typical entry point is Config → New → System.Run → Results:
//
//	cfg := inpg.DefaultConfig()
//	cfg.Mechanism = inpg.INPG
//	cfg.Lock = inpg.LockTAS
//	sys, err := inpg.New(cfg)
//	if err != nil { ... }
//	res, err := sys.Run()
//
// Results carries the paper's measured quantities: phase breakdowns
// (parallel / competition overhead / critical-section execution),
// lock-coherence-overhead share, invalidation round-trip statistics, and
// critical-section throughput. The regeneration harness for every figure
// of the paper lives in internal/experiments and is driven by
// cmd/inpgbench and the root benchmark suite.
package inpg

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"inpg/internal/bigrouter"
	"inpg/internal/chipmodel"
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/fault"
	"inpg/internal/journey"
	"inpg/internal/lock"
	"inpg/internal/metrics"
	"inpg/internal/noc"
	"inpg/internal/sim"
	"inpg/internal/stats"
	"inpg/internal/trace"
	"math/rand"
	"runtime"
)

// Mechanism selects the comparative case of the evaluation (Section 5.1).
type Mechanism int

// The four comparative cases.
const (
	// Original is the unmodified baseline architecture.
	Original Mechanism = iota
	// OCOR adds remaining-times-of-retry priority arbitration in the NoC.
	OCOR
	// INPG deploys big routers performing in-network packet generation.
	INPG
	// INPGOCOR combines both mechanisms.
	INPGOCOR
)

// Mechanisms lists the four cases in presentation order.
var Mechanisms = []Mechanism{Original, OCOR, INPG, INPGOCOR}

// String names the mechanism as in the paper's figures.
func (m Mechanism) String() string {
	switch m {
	case Original:
		return "Original"
	case OCOR:
		return "OCOR"
	case INPG:
		return "iNPG"
	case INPGOCOR:
		return "iNPG+OCOR"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// ParseMechanism resolves a mechanism name.
func ParseMechanism(s string) (Mechanism, error) {
	for _, m := range Mechanisms {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("inpg: unknown mechanism %q", s)
}

// usesINPG reports whether big routers are deployed.
func (m Mechanism) usesINPG() bool { return m == INPG || m == INPGOCOR }

// usesOCOR reports whether priority arbitration is enabled.
func (m Mechanism) usesOCOR() bool { return m == OCOR || m == INPGOCOR }

// LockKind selects the locking primitive.
type LockKind int

// The five locking primitives (Section 2.1).
const (
	LockTAS LockKind = iota
	LockTTL
	LockABQL
	LockMCS
	LockQSL
	// LockCLH is an extension beyond the paper: the Craig/Landin-Hagersten
	// predecessor-spinning queue lock.
	LockCLH
)

// LockKinds lists the paper's primitives; LockCLH is an extension and is
// excluded from paper-reproduction sweeps.
var LockKinds = []LockKind{LockTAS, LockTTL, LockABQL, LockMCS, LockQSL}

// String names the primitive.
func (k LockKind) String() string { return lock.Kind(k).String() }

// ParseLockKind resolves a primitive name.
func ParseLockKind(s string) (LockKind, error) {
	k, err := lock.ParseKind(s)
	return LockKind(k), err
}

// Config describes one simulation. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// MeshWidth and MeshHeight size the 2D mesh (Table 1: 8×8).
	MeshWidth, MeshHeight int
	// Threads is the number of competing threads, one per core starting
	// at node 0. Zero means one thread on every core.
	Threads int

	Lock      LockKind
	Mechanism Mechanism

	// BigRouters is the number of deployed big routers for iNPG
	// mechanisms; -1 selects the paper's default of half the nodes.
	BigRouters int
	// BarrierEntries sizes the locking barrier table (lock barriers and
	// EI entries); 0 selects the default of 16.
	BarrierEntries int
	// BarrierTTL is the barrier time-to-live in cycles; 0 selects 128.
	BarrierTTL int

	// LockHomeNode pins the home L2 bank of the primary lock variable;
	// -1 selects the paper's Figure 10 position (core (5,6)) when it
	// exists, else the mesh center.
	LockHomeNode int

	// LockCount creates that many independent locks (homes spread across
	// the chip beyond the primary); each thread picks one uniformly per
	// critical section. Values ≤ 1 mean the single global lock of the
	// paper's hot-lock scenarios. Multiple concurrent locks are what
	// exercise the big routers' multi-entry barrier tables (Figure 15).
	LockCount int

	// BarrierEvery, when positive, inserts a global synchronization
	// barrier (Figure 1's synchronization points) after every BarrierEvery
	// critical sections per thread.
	BarrierEvery int

	// Workload shape (per thread): CSPerThread critical sections of
	// CSCycles±CSJitter cycles separated by ParallelCycles±ParallelJitter
	// of parallel compute.
	CSPerThread    int
	CSCycles       int
	CSJitter       int
	ParallelCycles int
	ParallelJitter int

	// QSLRetries, CtxSwitchCycles and WakeupCycles tune the queue
	// spin-lock; zero selects defaults (128 / 600 / 300).
	QSLRetries      int
	CtxSwitchCycles int
	WakeupCycles    int

	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// MaxCycles bounds the simulation (deadlock watchdog).
	MaxCycles uint64

	// WallTimeBudget, when positive, bounds the run's host wall-clock time:
	// Run aborts with a timeout-reason *SimulationError (Diagnostics
	// attached) once the budget elapses, checked cooperatively every
	// AbortCheckInterval cycles. Zero leaves wall time unbounded. The
	// budget reads host time, so it is the one deliberately
	// nondeterministic knob: it never fires on a run that finishes in
	// budget, leaving on-time runs byte-identical to unbudgeted ones.
	WallTimeBudget time.Duration

	// RecordTimeline captures per-thread phase transitions for the first
	// TimelineThreads threads (Figure 9 profiles the first 8).
	RecordTimeline  bool
	TimelineThreads int

	// DisableAckOverlap turns off iNPG's ack-overlap optimization (a
	// relayed early ack satisfying a pending direct-invalidation wait);
	// used by the mechanism-component ablation.
	DisableAckOverlap bool

	// TraceCapacity, when positive, enables message-level protocol tracing
	// into a ring buffer of that many events (see internal/trace and
	// cmd/inpgtrace). TraceAddr restricts tracing to one block address
	// (0 traces everything).
	TraceCapacity int
	TraceAddr     uint64

	// Metrics enables the unified telemetry registry (internal/metrics):
	// named counters, gauges and cycle histograms over every subsystem,
	// read only at snapshot/sample time. Off — the default — the registry
	// is never built and the run is byte- and allocation-identical to a
	// metrics-free build; on, the instruments perturb nothing the
	// simulation can observe, so figure outputs stay byte-identical too.
	Metrics bool
	// MetricsSampleEvery, when positive (with Metrics on), samples every
	// registered scalar instrument into an in-run time series at this
	// cycle interval; the series feeds the Perfetto trace exporter's
	// counter tracks. Sampling is cycle-invisible to the simulation.
	MetricsSampleEvery int

	// Fault configures deterministic fault injection on mesh links and
	// router ports (package internal/fault): flit drops/corruptions
	// absorbed by link-level retransmission, and transient port stalls.
	// The zero value disables injection entirely and keeps runs
	// byte-identical to a fault-free build. Fault decisions are keyed by
	// Fault.Seed independently of Seed, and are deterministic for a given
	// (Seed, Fault.Seed) regardless of how many runner workers execute
	// sibling simulations.
	Fault fault.Config

	// WatchdogWindow arms the liveness watchdog: when no packet delivery,
	// directory transaction boundary, L1 miss completion or thread phase
	// change occurs for this many cycles, Run returns a *SimulationError
	// carrying a Diagnostics snapshot of the wedged state — long before
	// MaxCycles. 0 selects the default (DefaultWatchdogWindow); negative
	// disables the watchdog.
	WatchdogWindow int64

	// AlwaysTick disables the engine's activity-driven scheduling: every
	// router and NI ticks every cycle and idle stretches are stepped one
	// cycle at a time, the pre-optimization behaviour. Runs are
	// bit-identical either way (pinned by TestActivitySchedulingMatchesAlwaysTick);
	// the mode exists as the reference for that differential check and for
	// debugging suspected wake/sleep protocol violations.
	AlwaysTick bool

	// Shards, when ≥ 2, partitions the mesh into that many contiguous
	// row stripes and runs each stripe's per-cycle tick work on its own
	// goroutine, synchronized by a conservative-lookahead barrier every
	// cycle (internal/sim/shard.go, internal/noc/shard.go). Results,
	// figures and traces are bit-identical for every shard count — the
	// differential tests at the repository root pin this — so Shards is
	// purely an execution strategy for large meshes, not a simulation
	// parameter. It is therefore excluded from the JSON encoding: the
	// config digest, run manifests and reports must not distinguish runs
	// by how many goroutines computed them. Counts above MeshHeight are
	// clamped; 0 and 1 run the classic single-threaded engine.
	Shards int `json:"-"`

	// JourneyRate, when in (0, 1], samples that fraction of
	// critical-section acquisitions into causal lock-journey records
	// (internal/journey): per-stage latency attribution from the Acquire
	// call to its completion callback. Sampling decisions are a keyed hash
	// of (Seed, thread, acquire index) — no RNG — and the tracer follows
	// the tracingLock/metricsLock discipline of adding no simulated time,
	// so sampled runs are cycle-identical to unsampled ones (pinned by
	// TestJourneySamplingInvisible). Like Shards it is an observability
	// strategy, not a simulation parameter, and is excluded from the JSON
	// encoding: the config digest and manifests must not distinguish runs
	// by whether someone was watching.
	JourneyRate float64 `json:"-"`
}

// Digest returns a short stable fingerprint of the configuration: the hex
// prefix of a SHA-256 over its canonical JSON encoding. Two configs digest
// equal exactly when every field (workload, seed, fault plan, budgets)
// matches, which is what sweep resume and retry backoff key on.
func (c Config) Digest() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Config is a plain struct of marshalable fields; this cannot
		// happen short of memory corruption.
		panic(fmt.Sprintf("inpg: config digest: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// DefaultConfig returns the paper's Table 1 platform with the Linux-4.2
// default queue spin-lock and a medium workload.
func DefaultConfig() Config {
	return Config{
		MeshWidth:      8,
		MeshHeight:     8,
		Lock:           LockQSL,
		Mechanism:      Original,
		BigRouters:     -1,
		LockHomeNode:   -1,
		CSPerThread:    8,
		CSCycles:       100,
		CSJitter:       30,
		ParallelCycles: 800,
		ParallelJitter: 200,
		Seed:           1,
		MaxCycles:      50_000_000,
	}
}

// System is one fully wired simulation instance.
type System struct {
	cfg      Config
	eng      *sim.Engine
	fab      *coherence.Fabric
	threads  []*cpu.Thread
	gens     []*bigrouter.Gen
	rtt      *stats.RTTCollector
	timeline *stats.Timeline
	lockImpl cpu.Lock
	tracer   *trace.Buffer

	// Telemetry (nil unless Config.Metrics): the instrument registry, the
	// optional periodic sampler, and the lock latency histograms fed by
	// the metricsLock decorator.
	reg         *metrics.Registry
	sampler     *metrics.Sampler
	lockHold    *stats.Histogram
	lockHandoff *stats.Histogram

	// Journey tracing (nil unless Config.JourneyRate > 0): the recorder
	// collecting finished journeys, plus — only with Metrics also on —
	// the end-to-end and per-stage cycle histograms fed from OnFinish.
	journeys     *journey.Recorder
	journeyE2E   *stats.Histogram
	journeyStage [journey.NumStages]*stats.Histogram

	// abortCtx, when set via AbortOn, cancels the run cooperatively.
	abortCtx context.Context
}

// lockSet multiplexes critical sections over several independent locks:
// each acquire picks one uniformly (per-thread deterministic RNG) and the
// matching release targets the same lock.
type lockSet struct {
	locks []cpu.Lock
	held  []cpu.Lock // per thread
}

func (l *lockSet) Name() string { return l.locks[0].Name() }

func (l *lockSet) Acquire(t *cpu.Thread, done func()) {
	pick := l.locks[t.Rand().Intn(len(l.locks))]
	l.held[t.ID] = pick
	pick.Acquire(t, done)
}

func (l *lockSet) Release(t *cpu.Thread, done func()) {
	l.held[t.ID].Release(t, done)
}

// tracingLock decorates a lock with acquire/release trace events.
type tracingLock struct {
	inner cpu.Lock
	buf   *trace.Buffer
	eng   *sim.Engine
}

func (l *tracingLock) Name() string { return l.inner.Name() }

func (l *tracingLock) Acquire(t *cpu.Thread, done func()) {
	l.inner.Acquire(t, func() {
		l.buf.Add(trace.Event{Cycle: l.eng.Now(), Kind: trace.LockAcquire,
			Node: noc.NodeID(t.ID), Src: noc.NodeID(t.ID), Addr: l.buf.AddrFilter,
			Detail: "thread holds the lock"})
		done()
	})
}

func (l *tracingLock) Release(t *cpu.Thread, done func()) {
	l.buf.Add(trace.Event{Cycle: l.eng.Now(), Kind: trace.LockRelease,
		Node: noc.NodeID(t.ID), Src: noc.NodeID(t.ID), Addr: l.buf.AddrFilter,
		Detail: "thread releases the lock"})
	l.inner.Release(t, done)
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if cfg.MeshWidth <= 0 || cfg.MeshHeight <= 0 {
		return nil, fmt.Errorf("inpg: invalid mesh %dx%d", cfg.MeshWidth, cfg.MeshHeight)
	}
	nodes := cfg.MeshWidth * cfg.MeshHeight
	threads := cfg.Threads
	if threads == 0 {
		threads = nodes
	}
	if threads > nodes {
		return nil, fmt.Errorf("inpg: %d threads exceed %d cores", threads, nodes)
	}
	if cfg.CSPerThread <= 0 {
		return nil, fmt.Errorf("inpg: CSPerThread must be positive")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("inpg: Shards must be non-negative, got %d", cfg.Shards)
	}

	eng := sim.NewEngine(cfg.Seed)
	eng.SetAlwaysTick(cfg.AlwaysTick)
	switch {
	case cfg.WatchdogWindow > 0:
		eng.SetWatchdog(sim.Cycle(cfg.WatchdogWindow))
	case cfg.WatchdogWindow == 0:
		eng.SetWatchdog(DefaultWatchdogWindow)
	}
	fcfg := coherence.DefaultFabricConfig()
	fcfg.Net.Mesh = noc.Mesh{Width: cfg.MeshWidth, Height: cfg.MeshHeight}
	fcfg.Net.PriorityArb = cfg.Mechanism.usesOCOR()
	fcfg.Net.Fault = cfg.Fault
	fcfg.Dir.DisableAckOverlap = cfg.DisableAckOverlap
	fab, err := coherence.NewFabric(eng, fcfg)
	if err != nil {
		return nil, err
	}
	// Sharding arms right after the fabric wires the mesh: routers and
	// NIs are the engine's only tickers (everything else is event-driven),
	// which is exactly what the row-stripe partition requires.
	if _, err := fab.Net.SetShards(cfg.Shards); err != nil {
		return nil, err
	}

	s := &System{cfg: cfg, eng: eng, fab: fab, rtt: stats.NewRTTCollector()}
	fab.SetRTTRecorder(s.rtt)

	// Lock construction.
	lcfg := lock.DefaultConfig(threads)
	if cfg.QSLRetries > 0 {
		lcfg.QSLRetries = cfg.QSLRetries
	}
	if cfg.CtxSwitchCycles > 0 {
		lcfg.CtxSwitch = sim.Cycle(cfg.CtxSwitchCycles)
	}
	if cfg.WakeupCycles > 0 {
		lcfg.Wakeup = sim.Cycle(cfg.WakeupCycles)
	}
	home := noc.NodeID(cfg.LockHomeNode)
	if cfg.LockHomeNode < 0 {
		home = defaultLockHome(fab.Net.Mesh())
	}
	if int(home) >= nodes {
		return nil, fmt.Errorf("inpg: lock home node %d outside mesh", home)
	}
	alloc := lock.NewAddrAlloc(fab.Homes, fab.Mem)
	if cfg.LockCount > 1 {
		locks := make([]cpu.Lock, cfg.LockCount)
		for i := 0; i < cfg.LockCount; i++ {
			h := home
			if i > 0 {
				h = noc.NodeID((int(home) + i*7) % nodes)
			}
			locks[i], err = lock.New(lock.Kind(cfg.Lock), alloc, h, lcfg)
			if err != nil {
				return nil, err
			}
		}
		s.lockImpl = &lockSet{locks: locks, held: make([]cpu.Lock, threads)}
	} else {
		s.lockImpl, err = lock.New(lock.Kind(cfg.Lock), alloc, home, lcfg)
		if err != nil {
			return nil, err
		}
	}
	var barrier *lock.Barrier
	if cfg.BarrierEvery > 0 {
		barrier = lock.NewBarrier(alloc, noc.NodeID((int(home)+nodes/2)%nodes), threads, lcfg)
	}

	// iNPG deployment.
	if cfg.Mechanism.usesINPG() {
		brCount := cfg.BigRouters
		if brCount < 0 {
			brCount = nodes / 2
		}
		bcfg := bigrouter.DefaultConfig()
		if cfg.BarrierEntries > 0 {
			bcfg.Barriers = cfg.BarrierEntries
			bcfg.EIEntries = cfg.BarrierEntries
		}
		if cfg.BarrierTTL > 0 {
			bcfg.TTL = sim.Cycle(cfg.BarrierTTL)
		}
		nodesList := bigrouter.Deployment(fab.Net.Mesh(), brCount)
		s.gens = bigrouter.Attach(eng, fab.Net, fab.Homes, bcfg, nodesList)
		for _, g := range s.gens {
			g.SetRTTRecorder(s.rtt)
		}
	}

	// Protocol tracing.
	if cfg.TraceCapacity > 0 {
		s.tracer = trace.New(cfg.TraceCapacity)
		s.tracer.AddrFilter = cfg.TraceAddr
		for id := 0; id < nodes; id++ {
			ni := fab.Net.NI(noc.NodeID(id))
			node := noc.NodeID(id)
			ni.OnInject = func(p *noc.Packet) {
				s.tracer.Add(trace.Event{Cycle: eng.Now(), Kind: trace.PktInject,
					Node: node, Src: p.Src, Dst: p.Dst, Addr: p.Addr, Detail: payloadName(p)})
			}
			ni.OnDeliver = func(p *noc.Packet) {
				s.tracer.Add(trace.Event{Cycle: eng.Now(), Kind: trace.PktDeliver,
					Node: node, Src: p.Src, Dst: p.Dst, Addr: p.Addr, Detail: payloadName(p)})
			}
		}
		for _, g := range s.gens {
			g.Tracer = s.tracer
		}
		// Link-layer events (fault-injected runs): retransmissions and
		// link deaths join the protocol trace through the network's
		// nil-checked hooks.
		fab.Net.OnLinkRetry = func(now sim.Cycle, at noc.NodeID, toward noc.Port, p *noc.Packet, attempt int) {
			s.tracer.Add(trace.Event{Cycle: now, Kind: trace.LinkRetry,
				Node: at, Src: p.Src, Dst: p.Dst, Addr: p.Addr,
				Detail: fmt.Sprintf("retry %d toward %v", attempt, toward)})
		}
		fab.Net.OnLinkDead = func(now sim.Cycle, at noc.NodeID, toward noc.Port, p *noc.Packet) {
			s.tracer.Add(trace.Event{Cycle: now, Kind: trace.LinkDead,
				Node: at, Src: p.Src, Dst: p.Dst, Addr: p.Addr,
				Detail: fmt.Sprintf("link toward %v declared dead", toward)})
		}
		s.lockImpl = &tracingLock{inner: s.lockImpl, buf: s.tracer, eng: eng}
	}

	// Telemetry: the lock decorator must wrap before threads capture the
	// lock; the registry itself is built once every component exists.
	if cfg.Metrics {
		s.lockHold = stats.NewHistogram(16)
		s.lockHandoff = stats.NewHistogram(16)
		s.lockImpl = &metricsLock{inner: s.lockImpl, eng: eng,
			hold: s.lockHold, handoff: s.lockHandoff,
			acquiredAt: make([]sim.Cycle, threads)}
	}

	// Journey tracing wraps outermost so a sampled journey's Begin fires
	// before any inner decorator or lock logic runs and its Finish fires
	// after them — all at the same cycles; the decorator perturbs nothing.
	if cfg.JourneyRate > 0 {
		s.journeys = journey.NewRecorder(0)
		if cfg.Metrics {
			s.journeyE2E = stats.NewHistogram(16)
			for i := range s.journeyStage {
				s.journeyStage[i] = stats.NewHistogram(16)
			}
			e2e, stages := s.journeyE2E, s.journeyStage
			s.journeys.OnFinish = func(r *journey.Record) {
				e2e.Add(r.E2E())
				for st, v := range r.Stages {
					stages[st].Add(v)
				}
			}
		}
		s.lockImpl = &journeyLock{inner: s.lockImpl, eng: eng, l1s: fab.L1s,
			rec: s.journeys, rate: cfg.JourneyRate, seed: cfg.Seed,
			active: make([]*journey.Record, threads)}
	}

	// Threads.
	if cfg.RecordTimeline {
		s.timeline = &stats.Timeline{MaxThread: cfg.TimelineThreads}
	}
	prog := cpu.Program{
		CSCount:        cfg.CSPerThread,
		CSCycles:       jitter(cfg.CSCycles, cfg.CSJitter),
		ParallelCycles: jitter(cfg.ParallelCycles, cfg.ParallelJitter),
	}
	for i := 0; i < threads; i++ {
		th := cpu.New(eng, i, fab.L1s[i], s.lockImpl, prog, cfg.Seed+int64(i)*7919)
		th.OCOR = cfg.Mechanism.usesOCOR()
		th.QSLRetries = lcfg.QSLRetries
		if barrier != nil {
			th.Barrier = barrier
			th.BarrierEvery = cfg.BarrierEvery
		}
		if s.timeline != nil {
			th.PhaseHook = s.timeline.Hook()
		}
		s.threads = append(s.threads, th)
	}
	if cfg.Metrics {
		s.buildMetrics()
		if cfg.MetricsSampleEvery > 0 {
			s.sampler = metrics.NewSampler(eng, s.reg, sim.Cycle(cfg.MetricsSampleEvery))
			s.sampler.Start()
		}
	}
	return s, nil
}

// PrimaryLockAddr returns the block address cfg's primary lock variable
// will be allocated at — the value to put in Config.TraceAddr to trace a
// run's main lock competition (cmd/inpgsim -trace-out, cmd/inpgtrace).
func PrimaryLockAddr(cfg Config) uint64 {
	m := noc.Mesh{Width: cfg.MeshWidth, Height: cfg.MeshHeight}
	home := noc.NodeID(cfg.LockHomeNode)
	if cfg.LockHomeNode < 0 {
		home = defaultLockHome(m)
	}
	homes := coherence.HomeMap{
		Nodes:      m.Nodes(),
		BlockBytes: coherence.DefaultL1Config().Cache.BlockBytes,
	}
	return homes.AddrForHome(home, 0)
}

// AutoShardMinNodes is the mesh size below which AutoShards keeps the
// classic single-threaded engine: on small meshes the per-cycle barrier
// and staging overhead of the sharded tick pass exceeds the tick work it
// parallelizes (BENCH_6/BENCH_7), so auto mode only shards meshes of at
// least this many nodes (16×16 and up).
const AutoShardMinNodes = 256

// AutoShards resolves the shard-count auto mode (the CLIs' -shards 0):
// one shard per available core, capped at the mesh height (row stripes
// cannot be thinner than one row) and gated to 1 when the mesh is smaller
// than AutoShardMinNodes. Sharding is bit-identical at every count, so
// the choice only affects wall-clock time, never results.
func AutoShards(meshWidth, meshHeight int) int {
	if meshWidth*meshHeight < AutoShardMinNodes {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > meshHeight {
		n = meshHeight
	}
	if n < 1 {
		n = 1
	}
	return n
}

// defaultLockHome picks the paper's Figure 10 lock position, core (5,6),
// when the mesh has it; otherwise the mesh center.
func defaultLockHome(m noc.Mesh) noc.NodeID {
	if m.Width > 5 && m.Height > 6 {
		return m.ID(5, 6)
	}
	return m.ID(m.Width/2, m.Height/2)
}

// jitter returns a closure drawing mean±j uniformly.
func jitter(mean, j int) func(r *rand.Rand) sim.Cycle {
	if mean <= 0 {
		mean = 1
	}
	return func(r *rand.Rand) sim.Cycle {
		v := mean
		if j > 0 {
			v += r.Intn(2*j+1) - j
		}
		if v < 1 {
			v = 1
		}
		return sim.Cycle(v)
	}
}

// ThreadResult is one thread's outcome.
type ThreadResult struct {
	ID          int
	Parallel    uint64
	COH         uint64 // competition overhead excluding sleep
	Sleep       uint64
	CSE         uint64
	CSCompleted int
	Sleeps      int
}

// Results aggregates one run.
type Results struct {
	// Runtime is the ROI finish time: the cycle the last thread finished.
	Runtime uint64
	// Threads is the number of competing threads.
	Threads int
	// Per-phase totals across threads (cycles).
	Parallel, COH, Sleep, CSE uint64
	// CSCompleted is the total critical sections executed.
	CSCompleted int
	// Sleeps is the total QSL sleep episodes across threads.
	Sleeps int
	// LCOPercent is the share of aggregate thread time spent with
	// lock-protocol memory operations outstanding (Figure 2's metric).
	LCOPercent float64
	// RTTMean/RTTMax/RTTSamples summarize invalidation–acknowledgement
	// round trips at their generator (Figure 10).
	RTTMean    float64
	RTTMax     uint64
	RTTSamples uint64
	// NetMeanLatency is the mean end-to-end packet latency.
	NetMeanLatency float64
	// EarlyInvs counts iNPG-generated early invalidations; Stopped the
	// GetX requests stopped at big routers.
	EarlyInvs uint64
	Stopped   uint64

	// FlitsSwitched is the total flit-switch operations across all routers
	// — the network's aggregate switching activity. Divided by Runtime ×
	// router count it is the mean link/crossbar utilization the analytic
	// fast model (internal/analytic) estimates and validates against.
	FlitsSwitched uint64

	// Link-layer fault counters, all zero when fault injection is disabled:
	// FaultsInjected flit transmissions were dropped or corrupted on links,
	// LinkRetries retransmission attempts recovered them, LinkFailures
	// links were declared dead (bounded retries exhausted) and
	// PortStallHits switch grants were blocked by transient port stalls.
	FaultsInjected uint64
	LinkRetries    uint64
	LinkFailures   uint64
	PortStallHits  uint64

	// Energy estimates the run's dynamic NoC energy from measured
	// switching activity and the paper's Figure 7 power ratings.
	Energy chipmodel.EnergyReport

	PerThread []ThreadResult
}

// CSTime returns the total critical-section related time COH+Sleep+CSE,
// the quantity Figures 8b/11/14 are built on.
func (r *Results) CSTime() uint64 { return r.COH + r.Sleep + r.CSE }

// COHTotal returns competition overhead including sleep.
func (r *Results) COHTotal() uint64 { return r.COH + r.Sleep }

// Run executes the system until every thread finishes its program and
// returns the collected results.
func (s *System) Run() (*Results, error) {
	s.armAbort()
	for _, th := range s.threads {
		th.Start()
	}
	_, err := s.eng.Run(sim.Cycle(s.cfg.MaxCycles), func() bool {
		for _, th := range s.threads {
			if !th.Done() {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, s.wrapError(err)
	}
	return s.collect(), nil
}

// collect assembles Results from the finished run.
func (s *System) collect() *Results {
	r := &Results{
		Runtime:    uint64(s.eng.Now()),
		Threads:    len(s.threads),
		RTTMean:    s.rtt.Mean(),
		RTTMax:     s.rtt.Max(),
		RTTSamples: s.rtt.Samples(),
	}
	var lockStall uint64
	for _, th := range s.threads {
		b := th.Breakdown
		r.Parallel += b.Parallel
		r.COH += b.COH
		r.Sleep += b.Sleep
		r.CSE += b.CSE
		r.CSCompleted += th.CSCompleted
		r.Sleeps += th.SleepCount
		r.PerThread = append(r.PerThread, ThreadResult{
			ID: th.ID, Parallel: b.Parallel, COH: b.COH, Sleep: b.Sleep,
			CSE: b.CSE, CSCompleted: th.CSCompleted, Sleeps: th.SleepCount,
		})
		lockStall += s.fab.L1s[th.ID].Stats.LockStallCycles
	}
	if r.Runtime > 0 && len(s.threads) > 0 {
		r.LCOPercent = 100 * float64(lockStall) / (float64(r.Runtime) * float64(len(s.threads)))
	}
	r.NetMeanLatency = s.fab.Net.MeanLatency()
	bigNodes := make(map[noc.NodeID]bool, len(s.gens))
	for _, g := range s.gens {
		r.EarlyInvs += g.Stats.EarlyInvsSent
		r.Stopped += g.Stats.GetXStopped
		bigNodes[g.Node] = true
	}
	act := chipmodel.Activity{Cycles: r.Runtime, Generated: r.EarlyInvs}
	for id := 0; id < s.fab.Homes.Nodes; id++ {
		rt := s.fab.Net.Router(noc.NodeID(id))
		flits := rt.Stats.FlitsSwitched
		r.FlitsSwitched += flits
		if bigNodes[noc.NodeID(id)] {
			act.BigFlits += flits
		} else {
			act.NormalFlits += flits
		}
		r.LinkRetries += rt.Stats.LinkRetries
		r.LinkFailures += rt.Stats.LinkFailures
	}
	fst := s.fab.Net.FaultStats()
	r.FaultsInjected = fst.FlitsDropped + fst.FlitsCorrupted + fst.PermanentHits
	r.PortStallHits = fst.PortStallHits
	for _, g := range s.gens {
		act.Generated += g.Stats.AcksRelayed
	}
	r.Energy = chipmodel.Energy(act)
	return r
}

// Engine exposes the simulation engine (advanced use, examples).
func (s *System) Engine() *sim.Engine { return s.eng }

// ShardCount reports the shard count in effect (1 on the classic
// single-threaded engine; Config.Shards after clamping otherwise).
func (s *System) ShardCount() int { return s.fab.Net.ShardCount() }

// Fabric exposes the coherent memory system (tests, invariant checks).
func (s *System) Fabric() *coherence.Fabric { return s.fab }

// RTT exposes the raw round-trip collector (Figure 10 maps/histograms).
func (s *System) RTT() *stats.RTTCollector { return s.rtt }

// Timeline exposes the recorded phase timeline, or nil when disabled.
func (s *System) Timeline() *stats.Timeline { return s.timeline }

// Trace exposes the protocol trace buffer, or nil when disabled.
func (s *System) Trace() *trace.Buffer { return s.tracer }

// Journeys exposes the lock-journey recorder, or nil when
// Config.JourneyRate is zero.
func (s *System) Journeys() *journey.Recorder { return s.journeys }

// payloadName renders a packet's payload type for traces.
func payloadName(p *noc.Packet) string {
	if m, ok := p.Payload.(*coherence.Message); ok {
		return m.Type.String()
	}
	return "?"
}

// Threads exposes the thread list.
func (s *System) Threads() []*cpu.Thread { return s.threads }

// BigRouters exposes the deployed packet generators (nil for non-iNPG).
func (s *System) BigRouters() []*bigrouter.Gen { return s.gens }
