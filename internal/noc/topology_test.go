package noc

import (
	"testing"
	"testing/quick"
)

func TestCoordIDRoundTrip(t *testing.T) {
	m := Mesh{Width: 8, Height: 8}
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.Coord(NodeID(id))
		if m.ID(x, y) != NodeID(id) {
			t.Fatalf("round trip failed for id %d -> (%d,%d)", id, x, y)
		}
	}
}

func TestRouteXYTerminatesAtLocal(t *testing.T) {
	m := Mesh{Width: 4, Height: 4}
	for id := 0; id < m.Nodes(); id++ {
		if m.RouteXY(NodeID(id), NodeID(id)) != Local {
			t.Fatalf("route to self at %d is not Local", id)
		}
	}
}

func TestRouteXYXFirst(t *testing.T) {
	m := Mesh{Width: 4, Height: 4}
	// From (0,0) to (3,3): must go East until x corrected, then South.
	if got := m.RouteXY(m.ID(0, 0), m.ID(3, 3)); got != East {
		t.Fatalf("first hop = %v, want East", got)
	}
	if got := m.RouteXY(m.ID(3, 0), m.ID(3, 3)); got != South {
		t.Fatalf("after x corrected = %v, want South", got)
	}
}

// TestPathXYProperty checks, over random node pairs, that the XY path
// reaches the destination in exactly Manhattan-distance hops and corrects
// the X dimension before the Y dimension.
func TestPathXYProperty(t *testing.T) {
	m := Mesh{Width: 8, Height: 8}
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % m.Nodes())
		dst := NodeID(int(b) % m.Nodes())
		path := m.PathXY(src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		if len(path)-1 != m.Distance(src, dst) {
			return false
		}
		// X corrected before Y moves happen.
		_, dy := m.Coord(dst)
		movedY := false
		for i := 1; i < len(path); i++ {
			px, py := m.Coord(path[i-1])
			cx, cy := m.Coord(path[i])
			if cy != py {
				movedY = true
			}
			if movedY && cx != px {
				return false // moved X after Y: not XY routing
			}
			_ = dy
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOppositePorts(t *testing.T) {
	pairs := [][2]Port{{North, South}, {East, West}}
	for _, pr := range pairs {
		if pr[0].opposite() != pr[1] || pr[1].opposite() != pr[0] {
			t.Fatalf("%v/%v are not opposite", pr[0], pr[1])
		}
	}
}

func TestHasNeighborEdges(t *testing.T) {
	m := Mesh{Width: 3, Height: 3}
	if m.hasNeighbor(m.ID(0, 0), North) || m.hasNeighbor(m.ID(0, 0), West) {
		t.Fatal("corner (0,0) must not have North/West neighbours")
	}
	if !m.hasNeighbor(m.ID(0, 0), East) || !m.hasNeighbor(m.ID(0, 0), South) {
		t.Fatal("corner (0,0) must have East/South neighbours")
	}
	if !m.hasNeighbor(m.ID(1, 1), North) || !m.hasNeighbor(m.ID(1, 1), West) {
		t.Fatal("center must have all neighbours")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	m := Mesh{Width: 8, Height: 8}
	f := func(a, b uint8) bool {
		x := NodeID(int(a) % m.Nodes())
		y := NodeID(int(b) % m.Nodes())
		return m.Distance(x, y) == m.Distance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
