package noc

import (
	"testing"

	"inpg/internal/sim"
)

// BenchmarkTrafficSteadyState drives a 4×4 mesh with uniform traffic and
// reports allocations — the guard for the hot-path allocation diet: packet
// pooling, VC-buffer reuse and closure-free ejection. A regression here
// (allocs/op creeping back up) means a flit/packet path started allocating
// per event again.
func BenchmarkTrafficSteadyState(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(7)
		n, err := New(eng, Config{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunTraffic(eng, n, TrafficConfig{
			Pattern: UniformRandom, InjectionRate: 0.05, PacketFlits: 1,
			WarmupCycles: 100, MeasureCycles: 500, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != res.Injected {
			b.Fatalf("lost packets: %d/%d", res.Delivered, res.Injected)
		}
	}
}

// BenchmarkPacketPool isolates the free-list round trip: steady-state
// get/put must not allocate at all once the pool is warm.
func BenchmarkPacketPool(b *testing.B) {
	var pp packetPool
	pp.put(new(Packet))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pp.get()
		p.Dst = NodeID(i)
		pp.put(p)
	}
}
