// Package noc implements the on-chip network of the target many-core: a 2D
// mesh of wormhole-switched, virtual-channel, credit-flow-controlled routers
// with XY dimension-order routing, plus the network interfaces (NIs) that
// inject and eject whole packets on behalf of the per-node cache and
// directory controllers.
//
// The router models the paper's baseline: a 2-stage pipelined speculative
// router (Peh & Dally, HPCA'01) where route computation, VC allocation and
// switch allocation happen in the first stage and switch traversal in the
// second. In this simulator that pipeline is realized as a minimum
// per-hop latency of two cycles (one cycle buffered at the input, one cycle
// of switch+link traversal) with full 1-flit/cycle streaming throughput.
//
// Big routers (package bigrouter) attach to the router's Interceptor hook to
// observe, stop, convert and generate packets in-network, exactly at the
// point where a head flit enters an input virtual channel.
package noc

import "fmt"

// NodeID identifies a mesh node (router + NI + attached controllers).
// IDs are assigned in row-major order: id = y*Width + x.
type NodeID int

// Port is a router port. Local connects the router to its NI; the four
// cardinal ports connect to mesh neighbours.
type Port int

// Router ports in arbitration order.
const (
	Local Port = iota
	North      // -y
	East       // +x
	South      // +y
	West       // -x
	NumPorts
)

// String returns a short human-readable port name.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// opposite returns the port on the neighbouring router that faces p.
func (p Port) opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// Mesh describes a Width×Height 2D mesh topology.
type Mesh struct {
	Width, Height int
}

// Nodes returns the number of nodes in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Coord returns the (x, y) coordinate of id.
func (m Mesh) Coord(id NodeID) (x, y int) {
	return int(id) % m.Width, int(id) / m.Width
}

// ID returns the node at coordinate (x, y).
func (m Mesh) ID(x, y int) NodeID { return NodeID(y*m.Width + x) }

// Contains reports whether id is a valid node of the mesh.
func (m Mesh) Contains(id NodeID) bool {
	return id >= 0 && int(id) < m.Nodes()
}

// Distance returns the Manhattan distance between two nodes, which equals
// the XY-routing hop count.
func (m Mesh) Distance(a, b NodeID) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// RouteXY returns the output port taken at node cur by a packet destined to
// dst under XY dimension-order routing: correct X first, then Y, then eject.
func (m Mesh) RouteXY(cur, dst NodeID) Port {
	cx, cy := m.Coord(cur)
	dx, dy := m.Coord(dst)
	switch {
	case dx > cx:
		return East
	case dx < cx:
		return West
	case dy > cy:
		return South
	case dy < cy:
		return North
	default:
		return Local
	}
}

// PathXY returns the sequence of nodes visited from src to dst (inclusive of
// both endpoints) under XY routing. It is used by tests and by big-router
// deployment analysis.
func (m Mesh) PathXY(src, dst NodeID) []NodeID {
	path := []NodeID{src}
	cur := src
	for cur != dst {
		p := m.RouteXY(cur, dst)
		cur = m.neighbor(cur, p)
		path = append(path, cur)
	}
	return path
}

// neighbor returns the node adjacent to id through port p. The caller must
// ensure the neighbour exists.
func (m Mesh) neighbor(id NodeID, p Port) NodeID {
	x, y := m.Coord(id)
	switch p {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	}
	return m.ID(x, y)
}

// hasNeighbor reports whether id has a mesh neighbour through port p.
func (m Mesh) hasNeighbor(id NodeID, p Port) bool {
	x, y := m.Coord(id)
	switch p {
	case North:
		return y > 0
	case South:
		return y < m.Height-1
	case East:
		return x < m.Width-1
	case West:
		return x > 0
	}
	return false
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
