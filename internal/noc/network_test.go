package noc

import (
	"testing"

	"inpg/internal/sim"
)

// testNet builds a network with a collector sink at every node.
func testNet(t *testing.T, cfg Config) (*sim.Engine, *Network, [][]*Packet) {
	t.Helper()
	eng := sim.NewEngine(7)
	n, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]*Packet, cfg.Mesh.Nodes())
	for id := 0; id < cfg.Mesh.Nodes(); id++ {
		id := id
		n.NI(NodeID(id)).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) {
			got[id] = append(got[id], p)
		}))
	}
	return eng, n, got
}

func run(eng *sim.Engine, n *Network, max sim.Cycle) {
	eng.Run(max, func() bool { return n.InFlight() == 0 })
}

func TestSinglePacketDelivery(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, got := testNet(t, cfg)
	src, dst := NodeID(0), NodeID(63)
	n.NI(src).Inject(&Packet{Dst: dst, VNet: VNetRequest, Size: 1})
	run(eng, n, 1000)
	if len(got[dst]) != 1 {
		t.Fatalf("delivered %d packets at dst, want 1", len(got[dst]))
	}
	p := got[dst][0]
	if p.Src != src {
		t.Fatalf("Src = %d, want %d", p.Src, src)
	}
	if p.Hops != n.Mesh().Distance(src, dst) {
		t.Fatalf("hops = %d, want %d", p.Hops, n.Mesh().Distance(src, dst))
	}
	// 14 hops at 2 cycles each plus injection/ejection overhead.
	lat := p.DeliveredAt - p.InjectedAt
	if lat < sim.Cycle(2*p.Hops) || lat > sim.Cycle(2*p.Hops+10) {
		t.Fatalf("latency %d out of expected band for %d hops", lat, p.Hops)
	}
}

func TestSelfDelivery(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, got := testNet(t, cfg)
	n.NI(5).Inject(&Packet{Dst: 5, VNet: VNetResponse, Size: 1})
	run(eng, n, 100)
	if len(got[5]) != 1 {
		t.Fatalf("self packet not delivered (got %d)", len(got[5]))
	}
}

func TestMultiFlitDataPacket(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, got := testNet(t, cfg)
	n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetResponse, Size: DataFlits})
	run(eng, n, 1000)
	if len(got[7]) != 1 {
		t.Fatalf("data packet not delivered")
	}
}

func TestAllPairsDelivery(t *testing.T) {
	cfg := Config{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4}
	eng, n, got := testNet(t, cfg)
	want := make([]int, cfg.Mesh.Nodes())
	for s := 0; s < cfg.Mesh.Nodes(); s++ {
		for d := 0; d < cfg.Mesh.Nodes(); d++ {
			n.NI(NodeID(s)).Inject(&Packet{Dst: NodeID(d), VNet: VNet(int(s+d) % int(NumVNets)), Size: 1})
			want[d]++
		}
	}
	run(eng, n, 20000)
	if n.InFlight() != 0 {
		t.Fatalf("network did not drain: %d in flight", n.InFlight())
	}
	for d := range want {
		if len(got[d]) != want[d] {
			t.Fatalf("node %d received %d packets, want %d", d, len(got[d]), want[d])
		}
	}
}

func TestHeavyHotspotDrains(t *testing.T) {
	// Everyone hammers node 0 with data packets: tests VC back-pressure and
	// credit flow under saturation. The network must drain without deadlock.
	cfg := Config{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 2}
	eng, n, got := testNet(t, cfg)
	total := 0
	for s := 1; s < cfg.Mesh.Nodes(); s++ {
		for k := 0; k < 8; k++ {
			n.NI(NodeID(s)).Inject(&Packet{Dst: 0, VNet: VNetResponse, Size: DataFlits})
			total++
		}
	}
	run(eng, n, 100000)
	if len(got[0]) != total {
		t.Fatalf("hotspot received %d/%d packets", len(got[0]), total)
	}
}

func TestPacketOrderingSameVNetSameFlow(t *testing.T) {
	// Two packets on the same vnet between the same pair must arrive in
	// injection order (XY routing is deterministic; single path).
	cfg := DefaultConfig()
	eng, n, got := testNet(t, cfg)
	for i := 0; i < 10; i++ {
		n.NI(3).Inject(&Packet{Dst: 42, VNet: VNetRequest, Size: 1, Addr: uint64(i)})
	}
	run(eng, n, 5000)
	if len(got[42]) != 10 {
		t.Fatalf("got %d packets, want 10", len(got[42]))
	}
	for i, p := range got[42] {
		if p.Addr != uint64(i) {
			t.Fatalf("packet %d has addr %d: reordered", i, p.Addr)
		}
	}
}

func TestInterceptorConsume(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, got := testNet(t, cfg)
	var seen []*Packet
	// Node (1,0)=1 sits on the XY path from 0 to 7.
	n.Router(1).SetInterceptor(interceptFunc(func(_ sim.Cycle, _ *Router, p *Packet) (bool, []*Packet) {
		seen = append(seen, p)
		return true, nil
	}))
	n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetRequest, Size: 1, LockReq: true})
	run(eng, n, 1000)
	if len(seen) != 1 {
		t.Fatalf("interceptor saw %d packets, want 1", len(seen))
	}
	if len(got[7]) != 0 {
		t.Fatal("consumed packet must not be delivered")
	}
	if n.InFlight() != 0 {
		t.Fatalf("in flight = %d after consumption, want 0", n.InFlight())
	}
}

func TestInterceptorGenerate(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, got := testNet(t, cfg)
	n.Router(1).SetInterceptor(interceptFunc(func(_ sim.Cycle, r *Router, p *Packet) (bool, []*Packet) {
		if p.LockReq {
			return false, []*Packet{{Dst: 32, VNet: VNetForward, Size: 1}}
		}
		return false, nil
	}))
	n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetRequest, Size: 1, LockReq: true})
	run(eng, n, 1000)
	if len(got[7]) != 1 {
		t.Fatal("original packet must still be delivered")
	}
	if len(got[32]) != 1 {
		t.Fatal("generated packet must be delivered")
	}
	if got[32][0].Src != 1 {
		t.Fatalf("generated packet Src = %d, want 1 (the generating router)", got[32][0].Src)
	}
}

func TestInterceptorSkipsMultiFlit(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, _ := testNet(t, cfg)
	calls := 0
	n.Router(1).SetInterceptor(interceptFunc(func(_ sim.Cycle, _ *Router, _ *Packet) (bool, []*Packet) {
		calls++
		return false, nil
	}))
	n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetResponse, Size: DataFlits})
	run(eng, n, 1000)
	if calls != 0 {
		t.Fatalf("interceptor called %d times for a data packet, want 0", calls)
	}
}

func TestPriorityArbitrationFavorsHighPriority(t *testing.T) {
	// Saturate one output link with low-priority traffic, then inject one
	// high-priority packet; under priority arbitration its latency must be
	// lower than the mean of the low-priority packets injected at the same
	// time from the competing port.
	mk := func(priorityArb bool) (hi sim.Cycle, lo float64) {
		cfg := Config{Mesh: Mesh{Width: 8, Height: 1}, VCsPerPort: 6, VCDepth: 2, PriorityArb: priorityArb}
		eng := sim.NewEngine(3)
		n, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var hiPkt *Packet
		var loSum, loN float64
		for id := 0; id < cfg.Mesh.Nodes(); id++ {
			n.NI(NodeID(id)).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) {
				if p.Priority > 0 {
					hiPkt = p
				} else if p.Size == 1 {
					loSum += float64(p.DeliveredAt - p.InjectedAt)
					loN++
				}
			}))
		}
		for k := 0; k < 30; k++ {
			n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetRequest, Size: 1})
		}
		hp := &Packet{Dst: 7, VNet: VNetRequest, Size: 1, Priority: 8}
		n.NI(1).Inject(hp)
		for k := 0; k < 30; k++ {
			n.NI(1).Inject(&Packet{Dst: 7, VNet: VNetRequest, Size: 1})
		}
		run(eng, n, 10000)
		if hiPkt == nil || loN == 0 {
			t.Fatal("packets not delivered")
		}
		return hiPkt.DeliveredAt - hiPkt.InjectedAt, loSum / loN
	}
	hiLat, loMean := mk(true)
	if float64(hiLat) >= loMean {
		t.Fatalf("priority arb: high-priority latency %d not better than low mean %.1f", hiLat, loMean)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	bad := []Config{
		{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 5, VCDepth: 4},
		{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 0},
		{Mesh: Mesh{Width: 0, Height: 4}, VCsPerPort: 6, VCDepth: 4},
	}
	for i, cfg := range bad {
		if _, err := New(eng, cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

// interceptFunc adapts a function to Interceptor for tests.
type interceptFunc func(now sim.Cycle, r *Router, p *Packet) (bool, []*Packet)

func (f interceptFunc) Intercept(now sim.Cycle, r *Router, p *Packet) (bool, []*Packet) {
	return f(now, r, p)
}
