package noc

import (
	"fmt"

	"inpg/internal/sim"
)

// VNet is a virtual network (message class). Separating request, forward
// and response traffic onto disjoint virtual-channel groups breaks
// protocol-level deadlock cycles in the coherence protocol.
type VNet int

// Virtual networks, matching the coherence protocol's message classes.
const (
	VNetRequest  VNet = iota // GetS/GetX/Upgrade/PutM from L1s
	VNetForward              // Inv/FwdGetS/FwdGetX from directories and big routers
	VNetResponse             // Data/InvAck/AckCount/Unblock/WBAck
	NumVNets
)

// Packet sizes in flits. A cache-block transfer is one 8-flit packet and a
// coherence control message is a single-flit packet (Table 1 of the paper;
// 128-bit data path, 128 B block).
const (
	ControlFlits = 1
	DataFlits    = 8
)

// Packet is the unit of transfer handed to and received from the network.
// The network treats Payload as opaque; interceptors (big routers) may
// inspect and rewrite it.
type Packet struct {
	ID  uint64
	Src NodeID
	Dst NodeID

	VNet VNet
	Size int // flits

	// Priority is the OCOR arbitration priority (higher wins). Zero for
	// plain traffic; routers ignore it unless priority arbitration is
	// enabled network-wide.
	Priority int

	// LockReq marks a request packet that carries an exclusive (GetX)
	// request issued by an atomic lock operation. Big routers key their
	// locking barrier table on (LockReq, Addr).
	LockReq bool
	// Addr is the memory address the payload concerns, exposed here so
	// interceptors need not understand the payload encoding.
	Addr uint64

	Payload any

	// InjectedAt is stamped by the NI when the packet enters its
	// injection queue; DeliveredAt when the tail flit is ejected.
	InjectedAt  sim.Cycle
	DeliveredAt sim.Cycle
	Hops        int
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d vnet=%d size=%d addr=%#x", p.ID, p.Src, p.Dst, p.VNet, p.Size, p.Addr)
}

// flit is one 128-bit phit-width slice of a packet. Flits of a packet
// always travel contiguously within one virtual channel.
type flit struct {
	pkt        *Packet
	idx        int // 0 = head
	tail       bool
	bufferedAt sim.Cycle // cycle the flit entered the current input VC
}

func (f flit) head() bool { return f.idx == 0 }
