package noc

import (
	"fmt"

	"inpg/internal/journey"
	"inpg/internal/sim"
)

// VNet is a virtual network (message class). Separating request, forward
// and response traffic onto disjoint virtual-channel groups breaks
// protocol-level deadlock cycles in the coherence protocol.
type VNet int

// Virtual networks, matching the coherence protocol's message classes.
const (
	VNetRequest  VNet = iota // GetS/GetX/Upgrade/PutM from L1s
	VNetForward              // Inv/FwdGetS/FwdGetX from directories and big routers
	VNetResponse             // Data/InvAck/AckCount/Unblock/WBAck
	NumVNets
)

// Packet sizes in flits. A cache-block transfer is one 8-flit packet and a
// coherence control message is a single-flit packet (Table 1 of the paper;
// 128-bit data path, 128 B block).
const (
	ControlFlits = 1
	DataFlits    = 8
)

// Packet is the unit of transfer handed to and received from the network.
// The network treats Payload as opaque; interceptors (big routers) may
// inspect and rewrite it.
type Packet struct {
	ID  uint64
	Src NodeID
	Dst NodeID

	VNet VNet
	Size int // flits

	// Priority is the OCOR arbitration priority (higher wins). Zero for
	// plain traffic; routers ignore it unless priority arbitration is
	// enabled network-wide.
	Priority int

	// LockReq marks a request packet that carries an exclusive (GetX)
	// request issued by an atomic lock operation. Big routers key their
	// locking barrier table on (LockReq, Addr).
	LockReq bool
	// Addr is the memory address the payload concerns, exposed here so
	// interceptors need not understand the payload encoding.
	Addr uint64

	Payload any

	// InjectedAt is stamped by the NI when the packet enters its
	// injection queue; DeliveredAt when the tail flit is ejected.
	InjectedAt  sim.Cycle
	DeliveredAt sim.Cycle
	Hops        int

	// Journey, when non-nil, ties this packet to a sampled lock-journey
	// record (internal/journey). The J* counters below are written inline
	// by the NI and routers only when Journey is set; like Hops they are
	// shard-safe because a packet's head flit has exactly one owning
	// router per cycle. The record itself is only touched from event
	// context (delivery), never from the sharded tick pass.
	Journey *journey.Record
	// JNIQueue is cycles the packet waited in the NI injection queue
	// before its head flit entered the mesh.
	JNIQueue uint64
	// JVCWait accumulates head-flit buffered-wait cycles across hops
	// (inclusive of retransmission backoff; JRetry carves that out).
	JVCWait uint64
	// JRetry accumulates link-retransmission backoff cycles.
	JRetry uint64
	// JIntercepted marks that a big router stopped and converted this
	// packet in-network.
	JIntercepted bool
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d vnet=%d size=%d addr=%#x", p.ID, p.Src, p.Dst, p.VNet, p.Size, p.Addr)
}

// flit is one 128-bit phit-width slice of a packet. Flits of a packet
// always travel contiguously within one virtual channel.
type flit struct {
	pkt        *Packet
	idx        int // 0 = head
	tail       bool
	bufferedAt sim.Cycle // cycle the flit entered the current input VC
}

func (f flit) head() bool { return f.idx == 0 }

// packetPool is a per-network free list of Packet shells. A network is
// owned by exactly one (single-threaded) simulation engine, so the pool
// needs no locking, and recycling is fully deterministic.
//
// Packets are zeroed when handed out, not when returned: released packets
// keep their fields until reuse, so a sink that merely reads a delivered
// packet after Receive returns (tests, tracing) still sees valid data.
// Sinks must not retain a packet past the cycle it was delivered in —
// the shell may be reissued for any later injection.
type packetPool struct {
	free []*Packet
}

// get returns a zeroed packet, recycling a released shell when available.
func (pp *packetPool) get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		*p = Packet{}
		return p
	}
	return new(Packet)
}

// put returns a dead packet shell to the free list. The payload reference
// is kept until reuse (see get); the pool is bounded by the maximum number
// of simultaneously in-flight packets.
func (pp *packetPool) put(p *Packet) {
	pp.free = append(pp.free, p)
}
