package noc

import (
	"fmt"

	"inpg/internal/sim"
)

// Spatial sharding: the mesh is partitioned into contiguous row stripes,
// one shard each, and the engine ticks the stripes on parallel goroutines
// (see internal/sim/shard.go). Every cross-shard interaction in the NoC
// is stamped at now+1 — link traversal and credit return both take one
// cycle — so the minimum cross-shard latency is the conservative
// lookahead bound, and staging those interactions until the end-of-cycle
// barrier cannot change what any router observes.
//
// What gets staged:
//
//   - Flit pushes whose destination router is a *boundary* router (one
//     with any neighbor in another shard). Inbox order is observable —
//     it drives interceptor invocation order — and a boundary inbox
//     receives appends from more than one shard, so every push to it is
//     staged and replayed at the barrier K-way merged by source router
//     handle. Shards tick their routers in ascending handle order and
//     partition the handle space, so the merge reproduces the exact
//     append order of the sequential pass. Pushes to interior routers
//     come only from the destination's own shard, already in sequential
//     order, and stay direct.
//   - Credits crossing a shard edge. Credit application is commutative
//     (due credits sum into a counter), so these need no merge — each
//     shard's staged credits apply in shard order.
//
// A staged push or credit also defers its destination wake to the
// barrier: a router that slept mid-pass because its work was in staging
// is re-woken before the next cycle, landing in exactly the awake set
// the sequential engine produces at that cycle boundary.
type stagedArrival struct {
	src sim.Handle // handle of the pushing router, the merge key
	dst *Router
	a   arrival
}

type stagedCredit struct {
	dst *Router
	c   creditMsg
}

// nocShard is one shard's staging buffers, padded against false sharing:
// neighboring shards append concurrently during a pass.
type nocShard struct {
	arrivals []stagedArrival
	credits  []stagedCredit
	_        [64]byte
}

// ShardingStats counts cross-boundary traffic handled by the staging
// machinery (both deterministic for a fixed configuration and seed).
type ShardingStats struct {
	BoundaryArrivals uint64 // flit pushes staged to boundary routers
	BoundaryCredits  uint64 // credits staged across shard edges
}

// SetShards partitions the mesh into up to `shards` contiguous row
// stripes and arms the engine's parallel tick pass. A count above the
// mesh height is clamped (a stripe must hold at least one row); counts
// below 2 leave the network — and the engine — exactly as built. It
// returns the shard count actually in effect.
//
// Must be called after New (and after any SetAlwaysTick), before the
// first Run, and only once; the engine must hold no tickers beyond this
// network's routers and NIs.
func (n *Network) SetShards(shards int) (int, error) {
	if shards < 0 {
		return 0, fmt.Errorf("noc: shard count %d is negative", shards)
	}
	if shards <= 1 {
		return 1, nil
	}
	if n.shards > 1 {
		return 0, fmt.Errorf("noc: SetShards called twice")
	}
	if shards > n.mesh.Height {
		shards = n.mesh.Height
	}
	nodes := n.mesh.Nodes()
	if got := n.eng.TickerCount(); got != 2*nodes {
		return 0, fmt.Errorf("noc: engine holds %d tickers, want %d: the network must own every ticker to shard the pass", got, 2*nodes)
	}

	// Row stripes over row-major node IDs: shard boundaries are whole
	// mesh rows, so every cross-shard link is a North/South link and each
	// shard's routers (and NIs) occupy contiguous handle ranges.
	shardOfNode := make([]int32, nodes)
	for id := range shardOfNode {
		row := id / n.mesh.Width
		shardOfNode[id] = int32(row * shards / n.mesh.Height)
	}
	for id, r := range n.routers {
		r.shard = shardOfNode[id]
		n.nis[id].shard = shardOfNode[id]
	}

	// A boundary router's inbox is a multi-shard append target: all
	// pushes toward it are staged, even same-shard ones, so the barrier
	// merge sees the complete per-cycle append set.
	boundary := make([]bool, nodes)
	for id, r := range n.routers {
		for p := North; p <= West; p++ {
			if nb := r.neighbors[p]; nb != nil && nb.shard != r.shard {
				boundary[id] = true
				break
			}
		}
	}
	for _, r := range n.routers {
		for p := North; p <= West; p++ {
			if nb := r.neighbors[p]; nb != nil {
				r.stagePush[p] = boundary[nb.ID]
				r.stageCred[p] = nb.shard != r.shard
			}
		}
	}

	// Per-shard packet free lists: recycling happens on the owning
	// shard's goroutine during passes. Pool identity is behaviorally
	// invisible (shells are zeroed on reuse), so this cannot perturb the
	// simulation.
	n.shardPools = make([]packetPool, shards)
	for id, r := range n.routers {
		r.pool = &n.shardPools[shardOfNode[id]]
		n.nis[id].pool = &n.shardPools[shardOfNode[id]]
	}

	n.shards = shards
	n.shardSt = make([]nocShard, shards)
	n.mergeIdx = make([]int, shards)
	if err := n.eng.SetShards(shards, func(h sim.Handle) int {
		// Registration order: routers 0..nodes-1, then NIs nodes..2*nodes-1.
		return int(shardOfNode[int(h)%nodes])
	}); err != nil {
		return 0, err
	}
	n.eng.SetPassFlush(n.flushStaged)
	return shards, nil
}

// ShardCount reports the shard count in effect (1 when unsharded).
func (n *Network) ShardCount() int {
	if n.shards < 2 {
		return 1
	}
	return n.shards
}

// ShardingStats returns cumulative boundary-traffic counters.
func (n *Network) ShardingStats() ShardingStats {
	return ShardingStats{BoundaryArrivals: n.boundaryArrivals, BoundaryCredits: n.boundaryCredits}
}

// stageArrival records a pass-time flit push to a boundary router for
// replay at the barrier. Called only from the staging shard's goroutine.
func (n *Network) stageArrival(shard int32, src sim.Handle, dst *Router, a arrival) {
	st := &n.shardSt[shard]
	st.arrivals = append(st.arrivals, stagedArrival{src: src, dst: dst, a: a})
}

// stageCredit records a pass-time cross-shard credit for replay.
func (n *Network) stageCredit(shard int32, dst *Router, c creditMsg) {
	st := &n.shardSt[shard]
	st.credits = append(st.credits, stagedCredit{dst: dst, c: c})
}

// flushStaged is the engine's pass-flush hook: it applies every staged
// credit and arrival on the main goroutine at the cycle barrier.
func (n *Network) flushStaged() {
	// Credits first or last — it cannot matter: they land in a different
	// per-router list than arrivals and application is commutative.
	for s := range n.shardSt {
		st := &n.shardSt[s]
		for i := range st.credits {
			sc := &st.credits[i]
			sc.dst.credits = append(sc.dst.credits, sc.c)
			sc.dst.wake()
		}
		n.boundaryCredits += uint64(len(st.credits))
	}

	// Arrivals replay in ascending source-router-handle order — the
	// order the sequential pass appends them. Each shard's list is
	// already ascending (shards tick ascending handles), so a K-way
	// merge on the heads suffices; sources are partitioned across
	// shards, so keys never tie.
	total := 0
	for s := range n.mergeIdx {
		n.mergeIdx[s] = 0
		total += len(n.shardSt[s].arrivals)
	}
	for done := 0; done < total; done++ {
		best := -1
		var bestSrc sim.Handle
		for s := range n.shardSt {
			if i := n.mergeIdx[s]; i < len(n.shardSt[s].arrivals) {
				if src := n.shardSt[s].arrivals[i].src; best == -1 || src < bestSrc {
					best, bestSrc = s, src
				}
			}
		}
		sa := &n.shardSt[best].arrivals[n.mergeIdx[best]]
		n.mergeIdx[best]++
		sa.dst.inbox = append(sa.dst.inbox, sa.a)
		sa.dst.wake()
	}
	n.boundaryArrivals += uint64(total)

	for s := range n.shardSt {
		st := &n.shardSt[s]
		for i := range st.arrivals {
			st.arrivals[i] = stagedArrival{}
		}
		st.arrivals = st.arrivals[:0]
		for i := range st.credits {
			st.credits[i] = stagedCredit{}
		}
		st.credits = st.credits[:0]
	}
}
