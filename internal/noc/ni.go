package noc

import "inpg/internal/sim"

// Sink receives whole packets ejected at a node. Each node registers one
// sink; the node wiring (package inpg root / internal/coherence) demuxes to
// the L1, directory or memory controller based on the payload.
type Sink interface {
	Receive(now sim.Cycle, p *Packet)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(now sim.Cycle, p *Packet)

// Receive implements Sink.
func (f SinkFunc) Receive(now sim.Cycle, p *Packet) { f(now, p) }

// injection tracks a packet mid-flight between the NI and a local input VC.
type injection struct {
	pkt  *Packet
	next int // next flit index to send
}

// pktFIFO is a head-indexed packet queue. Popping advances a cursor
// instead of reslicing, so the backing array keeps its capacity and
// steady-state push/pop cycles stop allocating; the buffer compacts once
// the dead prefix dominates.
type pktFIFO struct {
	buf  []*Packet
	head int
}

func (q *pktFIFO) push(p *Packet) { q.buf = append(q.buf, p) }

func (q *pktFIFO) len() int { return len(q.buf) - q.head }

func (q *pktFIFO) front() *Packet { return q.buf[q.head] }

func (q *pktFIFO) pop() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 32 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

// NI is a network interface: it serializes packets into flits toward the
// local input port of its router (one flit per cycle of injection
// bandwidth) and reassembles ejected flits back into packets for the sink.
type NI struct {
	ID   NodeID
	r    *Router
	eng  *sim.Engine
	sink Sink

	queues [NumVNets]pktFIFO
	active []injection // index = local input VC; pkt nil when idle
	rrVNet int

	// activeCount and queued mirror the population of active and queues so
	// an idle NI is O(1): Tick skips the slot and vnet scans entirely, and
	// their joint zero is the sleep condition. handle is the NI's
	// wake/sleep handle; Inject wakes it.
	activeCount int
	queued      int
	handle      sim.Handle

	// Delivery batching: at most one packet ejects per cycle (Local is a
	// single output port), so one pre-built flush closure per NI replaces
	// a fresh closure allocation per delivered packet.
	pendingDeliver []*Packet
	flushScheduled bool
	flushFn        func()

	// OnInject and OnDeliver, when set, observe every packet entering the
	// injection queue and every packet handed to the sink (tracing).
	OnInject  func(*Packet)
	OnDeliver func(*Packet)

	Injected  uint64
	Delivered uint64
	LatencySum

	// Sharding (see shard.go): the NI shares its node's shard and shard
	// packet pool; both stay at their unsharded defaults otherwise.
	shard int32
	pool  *packetPool
}

// LatencySum accumulates packet latency statistics.
type LatencySum struct {
	TotalCycles uint64
	Count       uint64
}

// Add records one packet latency sample.
func (l *LatencySum) Add(c sim.Cycle) {
	l.TotalCycles += uint64(c)
	l.Count++
}

// Mean returns the mean latency in cycles, or 0 with no samples.
func (l *LatencySum) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.TotalCycles) / float64(l.Count)
}

func newNI(id NodeID, r *Router, eng *sim.Engine) *NI {
	ni := &NI{ID: id, r: r, eng: eng}
	ni.active = make([]injection, r.net.cfg.VCsPerPort)
	ni.flushFn = ni.flushDeliveries
	ni.pool = &r.net.pool
	r.ni = ni
	return ni
}

// SetSink registers the packet receiver for this node.
func (ni *NI) SetSink(s Sink) { ni.sink = s }

// NewPacket returns a zeroed packet from the NI's free list (see
// Network.NewPacket); protocol controllers attached to this NI use it to
// build messages without a per-send heap allocation.
func (ni *NI) NewPacket() *Packet { return ni.pool.get() }

// Inject queues a packet for transmission. The packet's Src is forced to
// this node and its size derived from the vnet class if unset.
//
// During a sharded tick pass (interceptor-generated packets), the two
// effects on shared simulation state — drawing the network-unique packet
// ID and the OnInject trace hook — are deferred to the cycle barrier,
// where they replay in exactly the sequential engine's order. Deferring
// the ID is safe because no flit switches the cycle it was buffered
// (the router's 2-stage pipeline), so nothing can read p.ID before the
// barrier assigns it.
func (ni *NI) Inject(p *Packet) {
	if p.Size == 0 {
		p.Size = ControlFlits
	}
	p.Src = ni.ID
	if ni.eng.InPass() {
		p.InjectedAt = ni.eng.Now()
		ni.queues[p.VNet].push(p)
		ni.queued++
		ni.eng.Wake(ni.handle)
		ni.Injected++
		ni.eng.PassDefer(ni.shard, func() {
			p.ID = ni.r.net.nextPacketID()
			if ni.OnInject != nil {
				ni.OnInject(p)
			}
		})
		return
	}
	p.ID = ni.r.net.nextPacketID()
	p.InjectedAt = ni.eng.Now()
	ni.queues[p.VNet].push(p)
	ni.queued++
	ni.eng.Wake(ni.handle)
	ni.Injected++
	if ni.OnInject != nil {
		ni.OnInject(p)
	}
}

// Tick moves at most one flit from the NI into a local input VC, preferring
// to finish in-flight packets before starting new ones. An idle NI does no
// per-slot work: the counters short-circuit both scans, and when nothing is
// queued or in flight the NI leaves the tick set until the next Inject.
func (ni *NI) Tick(now sim.Cycle) {
	// Continue an in-flight injection.
	if ni.activeCount > 0 {
		for v := range ni.active {
			inj := &ni.active[v]
			if inj.pkt == nil {
				continue
			}
			if ni.r.localVCSpace(v) <= 0 {
				continue
			}
			ni.sendFlit(now, v, inj)
			return
		}
	}
	// Start a new packet: round-robin across vnets.
	if ni.queued > 0 {
		for i := 0; i < int(NumVNets); i++ {
			vn := VNet((ni.rrVNet + i) % int(NumVNets))
			if ni.queues[vn].len() == 0 {
				continue
			}
			p := ni.queues[vn].front()
			lo, hi := ni.r.vcClass(vn)
			for v := lo; v < hi; v++ {
				if ni.active[v].pkt != nil || ni.r.localVCSpace(v) <= 0 {
					continue
				}
				ni.queues[vn].pop()
				ni.queued--
				ni.active[v] = injection{pkt: p}
				ni.activeCount++
				ni.sendFlit(now, v, &ni.active[v])
				ni.rrVNet = (int(vn) + 1) % int(NumVNets)
				return
			}
		}
	}
	if ni.activeCount == 0 && ni.queued == 0 {
		ni.eng.Sleep(ni.handle)
	}
}

// sendFlit pushes the next flit of an in-flight injection into local VC v.
func (ni *NI) sendFlit(now sim.Cycle, v int, inj *injection) {
	p := inj.pkt
	if p.Journey != nil && inj.next == 0 {
		p.JNIQueue = uint64(now - p.InjectedAt)
	}
	f := flit{pkt: p, idx: inj.next, tail: inj.next == p.Size-1}
	consumed := ni.r.acceptFlit(now, Local, v, f)
	if consumed || f.tail {
		inj.pkt = nil
		inj.next = 0
		ni.activeCount--
		return
	}
	inj.next++
}

// eject receives one flit switched to the local output port. On the tail
// flit the whole packet is handed to the sink on the next cycle, modeling
// the ejection link.
func (ni *NI) eject(now sim.Cycle, f flit) {
	if !f.tail {
		return
	}
	ni.pendingDeliver = append(ni.pendingDeliver, f.pkt)
	if !ni.flushScheduled {
		ni.flushScheduled = true
		// Ejection happens mid-tick: under a sharded pass the Schedule
		// call itself is deferred to the barrier so event sequence
		// numbers come out identical to sequential execution.
		if ni.eng.InPass() {
			ni.eng.PassSchedule(ni.shard, 0, ni.flushFn)
		} else {
			ni.eng.Schedule(0, ni.flushFn)
		}
	}
}

// flushDeliveries hands every pending ejected packet to the sink in
// ejection order, then recycles the packet shells. It runs one cycle after
// the tail flit left the router (the ejection link), scheduled through the
// single reusable flushFn closure.
func (ni *NI) flushDeliveries() {
	ni.flushScheduled = false
	// Every packet delivery is liveness progress for the watchdog: a wedged
	// mesh (dead link, stuck protocol) stops delivering, while any healthy
	// run — even one merely spinning on a contended lock — keeps traffic
	// flowing somewhere.
	ni.eng.NoteProgress()
	for len(ni.pendingDeliver) > 0 {
		p := ni.pendingDeliver[0]
		n := copy(ni.pendingDeliver, ni.pendingDeliver[1:])
		ni.pendingDeliver[n] = nil
		ni.pendingDeliver = ni.pendingDeliver[:n]
		p.DeliveredAt = ni.eng.Now()
		ni.Delivered++
		ni.Add(p.DeliveredAt - p.InjectedAt)
		if p.Journey != nil {
			// Fold this leg into its journey before the sink can retag the
			// record for a response; flushDeliveries is an ordinary event,
			// so the record mutation happens off the sharded tick pass.
			p.Journey.FoldLeg(p.DeliveredAt, int(p.Src), int(p.Dst), p.Hops,
				p.JNIQueue, p.JVCWait, p.JRetry, p.JIntercepted)
		}
		if ni.OnDeliver != nil {
			ni.OnDeliver(p)
		}
		if ni.sink != nil {
			ni.sink.Receive(ni.eng.Now(), p)
		}
		ni.pool.put(p)
	}
}

// QueueLen reports queued (not yet serialized) packets, for tests.
func (ni *NI) QueueLen() int {
	n := 0
	for _, q := range ni.queues {
		n += q.len()
	}
	return n
}
