package noc

import (
	"fmt"

	"inpg/internal/fault"
	"inpg/internal/sim"
)

// Config holds the network parameters (Table 1 defaults are set by
// DefaultConfig).
type Config struct {
	Mesh       Mesh
	VCsPerPort int // must be a multiple of NumVNets
	VCDepth    int // flits per VC buffer
	// PriorityArb enables OCOR priority-based VC/switch arbitration on all
	// routers.
	PriorityArb bool

	// Fault configures deterministic fault injection on links and router
	// ports. The zero value disables injection entirely: no injector is
	// built and the routers' fault paths are never entered, so a rate-0
	// run is bit-identical to a build without the fault layer.
	Fault fault.Config
}

// DefaultConfig returns the paper's Table 1 network configuration for an
// 8×8 mesh: 6 VCs per port, 4-flit VC buffers.
func DefaultConfig() Config {
	return Config{Mesh: Mesh{Width: 8, Height: 8}, VCsPerPort: 6, VCDepth: 4}
}

// Network is the full mesh: routers, links and network interfaces, driven
// by the simulation engine.
type Network struct {
	cfg     Config
	mesh    Mesh
	eng     *sim.Engine
	routers []*Router
	nis     []*NI
	pktID   uint64
	pool    packetPool

	// fault is nil unless cfg.Fault enables injection; routers gate every
	// fault-path branch on this single pointer.
	fault *fault.Injector

	// Sharding state (see shard.go): zero until SetShards enables the
	// parallel tick pass. shardPools keeps the per-shard packet free
	// lists alive; shardSt holds each shard's cross-boundary staging.
	shards           int
	shardSt          []nocShard
	shardPools       []packetPool
	mergeIdx         []int
	boundaryArrivals uint64
	boundaryCredits  uint64

	// OnLinkRetry and OnLinkDead, when set, observe the link layer's
	// retransmission machinery: a faulted flit transmission scheduled for
	// retry (attempt counts from 1), and a link declared dead after its
	// bounded retries were exhausted. Both fire only on fault-injected
	// runs and follow the package's nil-check discipline — unset hooks
	// cost nothing. The packet must not be retained past the call.
	OnLinkRetry func(now sim.Cycle, at NodeID, toward Port, p *Packet, attempt int)
	OnLinkDead  func(now sim.Cycle, at NodeID, toward Port, p *Packet)
}

// New builds and wires a mesh network and registers it with the engine.
func New(eng *sim.Engine, cfg Config) (*Network, error) {
	if cfg.VCsPerPort%int(NumVNets) != 0 || cfg.VCsPerPort <= 0 {
		return nil, fmt.Errorf("noc: VCsPerPort=%d must be a positive multiple of %d", cfg.VCsPerPort, NumVNets)
	}
	if cfg.VCDepth <= 0 {
		return nil, fmt.Errorf("noc: VCDepth=%d must be positive", cfg.VCDepth)
	}
	if cfg.Mesh.Width <= 0 || cfg.Mesh.Height <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Mesh.Width, cfg.Mesh.Height)
	}
	n := &Network{cfg: cfg, mesh: cfg.Mesh, eng: eng, fault: fault.New(cfg.Fault)}
	nodes := cfg.Mesh.Nodes()
	n.routers = make([]*Router, nodes)
	n.nis = make([]*NI, nodes)
	for id := 0; id < nodes; id++ {
		n.routers[id] = newRouter(NodeID(id), n)
	}
	for id := 0; id < nodes; id++ {
		r := n.routers[id]
		for p := North; p <= West; p++ {
			if cfg.Mesh.hasNeighbor(NodeID(id), p) {
				r.neighbors[p] = n.routers[cfg.Mesh.neighbor(NodeID(id), p)]
				for v := 0; v < cfg.VCsPerPort; v++ {
					r.outCred[p][v] = cfg.VCDepth
				}
			}
		}
		// Local ejection is never back-pressured: the NI consumes flits
		// at link rate.
		for v := 0; v < cfg.VCsPerPort; v++ {
			r.outCred[Local][v] = 1 << 30
		}
		n.nis[id] = newNI(NodeID(id), r, eng)
	}
	// Routers and NIs participate in the engine's wake/sleep protocol:
	// each keeps its registration handle, wakes on new work (link
	// arrivals, credits, injections) and sleeps when quiescent, so an
	// idle mesh costs no tick work at all.
	for _, r := range n.routers {
		r.handle = eng.Register(r)
	}
	for _, ni := range n.nis {
		ni.handle = eng.Register(ni)
	}
	return n, nil
}

// Mesh returns the topology.
func (n *Network) Mesh() Mesh { return n.mesh }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Router returns the router at node id.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id NodeID) *NI { return n.nis[id] }

// FaultInjector returns the network's fault injector, or nil when fault
// injection is disabled.
func (n *Network) FaultInjector() *fault.Injector { return n.fault }

// FaultStats returns the injector's decision counters (zero when fault
// injection is disabled).
func (n *Network) FaultStats() fault.Stats {
	if n.fault == nil {
		return fault.Stats{}
	}
	return n.fault.Stats
}

// nextPacketID issues network-unique packet IDs.
func (n *Network) nextPacketID() uint64 {
	n.pktID++
	return n.pktID
}

// NewPacket returns a zeroed packet from the network's free list. Packets
// obtained here are recycled automatically once delivered to a sink or
// consumed by an interceptor, so senders on the steady-state protocol
// paths avoid a heap allocation per message. Callers may still inject
// packets they allocated themselves; those simply join the free list when
// they die.
func (n *Network) NewPacket() *Packet { return n.pool.get() }

// InFlight reports packets injected but not yet delivered or consumed by an
// interceptor, used by tests and the deadlock watchdog.
func (n *Network) InFlight() int {
	var injected, delivered, consumed uint64
	for _, ni := range n.nis {
		injected += ni.Injected
		delivered += ni.Delivered
	}
	for _, r := range n.routers {
		consumed += r.Stats.PacketsConsumed
	}
	return int(injected - delivered - consumed)
}

// MeanLatency returns the mean end-to-end packet latency in cycles across
// all NIs.
func (n *Network) MeanLatency() float64 {
	var l LatencySum
	for _, ni := range n.nis {
		l.TotalCycles += ni.TotalCycles
		l.Count += ni.Count
	}
	return l.Mean()
}
