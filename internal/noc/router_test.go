package noc

import (
	"testing"

	"inpg/internal/sim"
)

// These tests target router mechanics that the delivery-level tests in
// network_test.go cannot distinguish: credit accounting, virtual-network
// separation, wormhole contiguity and arbitration fairness.

func twoNodeNet(t *testing.T, depth int) (*sim.Engine, *Network, *[]*Packet) {
	t.Helper()
	eng := sim.NewEngine(9)
	n, err := New(eng, Config{Mesh: Mesh{Width: 2, Height: 1}, VCsPerPort: 6, VCDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	var got []*Packet
	n.NI(1).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) { got = append(got, p) }))
	n.NI(0).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) { got = append(got, p) }))
	return eng, n, &got
}

func TestCreditsConservedAfterDrain(t *testing.T) {
	eng, n, got := twoNodeNet(t, 4)
	for i := 0; i < 20; i++ {
		n.NI(0).Inject(&Packet{Dst: 1, VNet: VNetRequest, Size: 1})
	}
	eng.Run(5000, func() bool { return n.InFlight() == 0 })
	if len(*got) != 20 {
		t.Fatalf("delivered %d, want 20", len(*got))
	}
	// After draining, every output credit at router 0 toward router 1 must
	// be restored to the full buffer depth.
	r0 := n.Router(0)
	for v := 0; v < 6; v++ {
		if r0.outCred[East][v] != 4 {
			t.Fatalf("credit leak: outCred[East][%d] = %d, want 4", v, r0.outCred[East][v])
		}
	}
}

func TestWormholeFlitContiguityPerVC(t *testing.T) {
	// Two 8-flit packets on the same vnet from the same source: their
	// flits may interleave across VCs, but each packet must arrive intact
	// and in order (delivery happens only at the tail).
	eng, n, got := twoNodeNet(t, 2)
	n.NI(0).Inject(&Packet{Dst: 1, VNet: VNetResponse, Size: 8, Addr: 1})
	n.NI(0).Inject(&Packet{Dst: 1, VNet: VNetResponse, Size: 8, Addr: 2})
	eng.Run(5000, func() bool { return n.InFlight() == 0 })
	if len(*got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(*got))
	}
}

func TestVNetSeparationUnderBlockage(t *testing.T) {
	// Saturate the request class toward a non-consuming... we cannot stop
	// consumption (sinks always consume), so instead verify that heavy
	// 8-flit response traffic does not starve single-flit request packets:
	// the request must be delivered long before the response batch drains.
	eng := sim.NewEngine(3)
	n, err := New(eng, Config{Mesh: Mesh{Width: 8, Height: 1}, VCsPerPort: 6, VCDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var reqAt, lastRespAt sim.Cycle
	n.NI(7).SetSink(SinkFunc(func(now sim.Cycle, p *Packet) {
		if p.VNet == VNetRequest {
			reqAt = now
		} else {
			lastRespAt = now
		}
	}))
	for i := 0; i < 30; i++ {
		n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetResponse, Size: 8})
	}
	n.NI(0).Inject(&Packet{Dst: 7, VNet: VNetRequest, Size: 1})
	eng.Run(20000, func() bool { return n.InFlight() == 0 })
	if reqAt == 0 || lastRespAt == 0 {
		t.Fatal("traffic not delivered")
	}
	if reqAt >= lastRespAt {
		t.Fatalf("request delivered at %d, after the whole response batch (%d): vnet separation broken", reqAt, lastRespAt)
	}
}

func TestRoundRobinFairnessTwoFlows(t *testing.T) {
	// Two sources merging into one column must share the bottleneck link
	// roughly evenly without priority arbitration.
	eng := sim.NewEngine(4)
	n, err := New(eng, Config{Mesh: Mesh{Width: 3, Height: 3}, VCsPerPort: 6, VCDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[NodeID]int{}
	var order []NodeID
	dst := n.Mesh().ID(2, 2)
	n.NI(dst).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) {
		counts[p.Src]++
		order = append(order, p.Src)
	}))
	srcA := n.Mesh().ID(2, 0) // comes down the column
	srcB := n.Mesh().ID(0, 2) // comes across the row
	for i := 0; i < 40; i++ {
		n.NI(srcA).Inject(&Packet{Dst: dst, VNet: VNetRequest, Size: 1})
		n.NI(srcB).Inject(&Packet{Dst: dst, VNet: VNetRequest, Size: 1})
	}
	eng.Run(20000, func() bool { return n.InFlight() == 0 })
	if counts[srcA] != 40 || counts[srcB] != 40 {
		t.Fatalf("lost packets: %v", counts)
	}
	// Round-robin switch allocation gives eventual, not per-window,
	// fairness; the guarantee to test is freedom from starvation: both
	// flows must make progress in the first half of the deliveries.
	half := order[:40]
	a := 0
	for _, s := range half {
		if s == srcA {
			a++
		}
	}
	if a == 0 || a == 40 {
		t.Fatalf("starvation: %d/40 from column flow in first half", a)
	}
}

func TestInterceptorSeesLocallyInjectedPackets(t *testing.T) {
	// A GetX injected at a big router's own node must be inspected too.
	eng := sim.NewEngine(5)
	n, err := New(eng, Config{Mesh: Mesh{Width: 2, Height: 1}, VCsPerPort: 6, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	n.Router(0).SetInterceptor(interceptFunc(func(_ sim.Cycle, _ *Router, p *Packet) (bool, []*Packet) {
		if p.LockReq {
			seen++
		}
		return false, nil
	}))
	n.NI(1).SetSink(SinkFunc(func(sim.Cycle, *Packet) {}))
	n.NI(0).Inject(&Packet{Dst: 1, VNet: VNetRequest, Size: 1, LockReq: true})
	eng.Run(1000, func() bool { return n.InFlight() == 0 })
	if seen != 1 {
		t.Fatalf("interceptor saw %d local injections, want 1", seen)
	}
}

func TestHopsAndLatencyScaleWithDistance(t *testing.T) {
	eng := sim.NewEngine(6)
	n, err := New(eng, Config{Mesh: Mesh{Width: 8, Height: 8}, VCsPerPort: 6, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var lat1, lat14 sim.Cycle
	n.NI(1).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) { lat1 = p.DeliveredAt - p.InjectedAt }))
	n.NI(63).SetSink(SinkFunc(func(_ sim.Cycle, p *Packet) { lat14 = p.DeliveredAt - p.InjectedAt }))
	n.NI(0).Inject(&Packet{Dst: 1, VNet: VNetRequest, Size: 1})
	n.NI(0).Inject(&Packet{Dst: 63, VNet: VNetForward, Size: 1})
	eng.Run(2000, func() bool { return n.InFlight() == 0 })
	if lat14 <= lat1 {
		t.Fatalf("14-hop latency %d not above 1-hop %d", lat14, lat1)
	}
	if lat14 < 2*14 {
		t.Fatalf("14-hop latency %d below the 2-cycle/hop floor", lat14)
	}
}

func TestAgingPreventsPriorityStarvation(t *testing.T) {
	// A continuous stream of high-priority packets shares a link with one
	// low-priority packet; aging must get the low one through long before
	// the stream ends.
	eng := sim.NewEngine(8)
	n, err := New(eng, Config{Mesh: Mesh{Width: 3, Height: 1}, VCsPerPort: 6, VCDepth: 2, PriorityArb: true})
	if err != nil {
		t.Fatal(err)
	}
	var lowAt sim.Cycle
	delivered := 0
	n.NI(2).SetSink(SinkFunc(func(now sim.Cycle, p *Packet) {
		delivered++
		if p.Priority == 0 {
			lowAt = now
		}
	}))
	// The low-priority packet enters first...
	n.NI(0).Inject(&Packet{Dst: 2, VNet: VNetRequest, Size: 1, Priority: 0})
	// ...then a sustained high-priority stream from the middle node
	// competes for the same output link.
	hi := 0
	eng.Register(sim.TickFunc(func(now sim.Cycle) {
		if now < 2000 && hi < 500 {
			n.NI(1).Inject(&Packet{Dst: 2, VNet: VNetRequest, Size: 1, Priority: 8})
			hi++
		}
	}))
	eng.Run(10000, func() bool { return lowAt != 0 })
	if lowAt == 0 {
		t.Fatal("low-priority packet starved")
	}
	if lowAt > 2000 {
		t.Fatalf("low-priority packet delivered only at %d, after the stream ended: aging ineffective", lowAt)
	}
}
