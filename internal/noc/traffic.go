package noc

import (
	"fmt"
	"math/rand"
	"strings"

	"inpg/internal/sim"
)

// Synthetic traffic generation: the standard patterns used to validate an
// on-chip network independently of any coherence protocol — uniform
// random, transpose, bit-complement and hotspot — plus a load/latency
// sweep. This is how the router micro-architecture was brought up before
// the protocol layers existed, and it remains the fastest way to detect
// regressions in arbitration, credits or routing.

// Pattern selects a destination for each source node.
type Pattern int

// Classic synthetic patterns.
const (
	// UniformRandom sends each packet to a uniformly chosen node.
	UniformRandom Pattern = iota
	// Transpose sends (x, y) → (y, x): heavy diagonal pressure under XY.
	Transpose
	// BitComplement sends node i → N-1-i.
	BitComplement
	// Hotspot sends everything to node 0.
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bit-complement"
	case Hotspot:
		return "hotspot"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// TrafficConfig drives a synthetic run.
type TrafficConfig struct {
	Pattern Pattern
	// InjectionRate is packets per node per cycle (0 < rate ≤ 1).
	InjectionRate float64
	// PacketFlits sizes each packet.
	PacketFlits int
	// WarmupCycles are excluded from latency statistics.
	WarmupCycles sim.Cycle
	// MeasureCycles is the measured window; injection stops after it.
	MeasureCycles sim.Cycle
	Seed          int64
}

// TrafficResult summarizes a synthetic run.
type TrafficResult struct {
	Injected      uint64
	Delivered     uint64
	MeanLatency   float64
	MaxLatency    sim.Cycle
	DrainCycles   sim.Cycle // cycles needed to drain after injection stopped
	ThroughputFPC float64   // delivered flits per cycle over the window
}

// RunTraffic drives the network with synthetic traffic and reports
// latency/throughput. The network must have been freshly built (sinks are
// replaced).
func RunTraffic(eng *sim.Engine, n *Network, cfg TrafficConfig) (*TrafficResult, error) {
	if cfg.InjectionRate <= 0 || cfg.InjectionRate > 1 {
		return nil, fmt.Errorf("noc: injection rate %f out of (0,1]", cfg.InjectionRate)
	}
	if cfg.PacketFlits <= 0 {
		cfg.PacketFlits = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mesh := n.Mesh()
	nodes := mesh.Nodes()

	res := &TrafficResult{}
	var measured uint64
	var latSum uint64
	start := eng.Now()
	measureFrom := start + cfg.WarmupCycles
	stopAt := measureFrom + cfg.MeasureCycles

	for id := 0; id < nodes; id++ {
		n.NI(NodeID(id)).SetSink(SinkFunc(func(now sim.Cycle, p *Packet) {
			res.Delivered++
			if p.InjectedAt >= measureFrom {
				measured++
				lat := p.DeliveredAt - p.InjectedAt
				latSum += uint64(lat)
				if lat > res.MaxLatency {
					res.MaxLatency = lat
				}
			}
		}))
	}

	dest := func(src NodeID) NodeID {
		switch cfg.Pattern {
		case Transpose:
			x, y := mesh.Coord(src)
			if x < mesh.Height && y < mesh.Width {
				return mesh.ID(y%mesh.Width, x%mesh.Height)
			}
			return src
		case BitComplement:
			return NodeID(nodes - 1 - int(src))
		case Hotspot:
			return 0
		default:
			return NodeID(rng.Intn(nodes))
		}
	}

	// Injection process: one Bernoulli trial per node per cycle, run as a
	// self-rescheduling event rather than a busy ticker so the engine's
	// activity-driven scheduler sees a truly idle chip once injection
	// stops. The final firing lands exactly at stopAt, which also keeps
	// the idle fast-forward from overshooting the measurement window.
	var pump func()
	pump = func() {
		now := eng.Now()
		if now >= stopAt {
			return
		}
		for id := 0; id < nodes; id++ {
			if rng.Float64() < cfg.InjectionRate {
				d := dest(NodeID(id))
				if d == NodeID(id) {
					continue
				}
				p := n.NewPacket()
				p.Dst = d
				p.VNet = VNet(rng.Intn(int(NumVNets)))
				p.Size = cfg.PacketFlits
				n.NI(NodeID(id)).Inject(p)
				res.Injected++
			}
		}
		eng.Schedule(0, pump)
	}
	eng.Schedule(0, pump)

	if _, err := eng.Run(stopAt-start+1, func() bool { return eng.Now() >= stopAt }); err != nil {
		return nil, err
	}
	drainStart := eng.Now()
	if _, err := eng.Run(1_000_000, func() bool { return n.InFlight() == 0 }); err != nil {
		return nil, fmt.Errorf("noc: network failed to drain under %s at rate %.3f: %w",
			cfg.Pattern, cfg.InjectionRate, err)
	}
	res.DrainCycles = eng.Now() - drainStart
	if measured > 0 {
		res.MeanLatency = float64(latSum) / float64(measured)
	}
	if cfg.MeasureCycles > 0 {
		res.ThroughputFPC = float64(res.Delivered*uint64(cfg.PacketFlits)) / float64(eng.Now()-start)
	}
	return res, nil
}

// LatencyCurve sweeps injection rates and returns (rate, mean latency)
// pairs — the classic load/latency characterization of a network.
func LatencyCurve(cfg Config, pattern Pattern, rates []float64, seed int64) ([][2]float64, error) {
	var out [][2]float64
	for _, rate := range rates {
		eng := sim.NewEngine(seed)
		n, err := New(eng, cfg)
		if err != nil {
			return nil, err
		}
		res, err := RunTraffic(eng, n, TrafficConfig{
			Pattern:       pattern,
			InjectionRate: rate,
			PacketFlits:   1,
			WarmupCycles:  500,
			MeasureCycles: 2000,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, [2]float64{rate, res.MeanLatency})
	}
	return out, nil
}

// UtilizationHeatmap renders each router's switching activity as flits per
// cycle over the elapsed window — the quickest way to see where a pattern
// concentrates load (e.g. the hotspot's converging columns).
func UtilizationHeatmap(n *Network, elapsed sim.Cycle) string {
	if elapsed == 0 {
		return ""
	}
	var sb strings.Builder
	m := n.Mesh()
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			u := float64(n.Router(m.ID(x, y)).Stats.FlitsSwitched) / float64(elapsed)
			fmt.Fprintf(&sb, "%6.2f", u)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
