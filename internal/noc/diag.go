package noc

import (
	"fmt"

	"inpg/internal/fault"
	"inpg/internal/sim"
)

// VCDiag is a snapshot of one occupied router input virtual channel, taken
// when the liveness watchdog trips so the wedged state can be reported.
type VCDiag struct {
	Node int
	Port string // input port: "L","N","E","S","W"
	VC   int

	Flits   int       // buffered flits
	PktID   uint64    // packet at the front of the buffer
	PktSrc  int       // its source node
	PktDst  int       // its destination node
	OutPort string    // allocated output port ("?" if unrouted)
	Age     sim.Cycle // cycles the front flit has sat buffered

	Retries int  // retransmission attempts for the front flit
	Dead    bool // retries exhausted: the outgoing link has failed
}

func (d VCDiag) String() string {
	s := fmt.Sprintf("router %d in[%s][%d]: %d flit(s), pkt %d %d->%d via %s, head age %d",
		d.Node, d.Port, d.VC, d.Flits, d.PktID, d.PktSrc, d.PktDst, d.OutPort, d.Age)
	if d.Retries > 0 {
		s += fmt.Sprintf(", %d retries", d.Retries)
	}
	if d.Dead {
		s += " [LINK DEAD]"
	}
	return s
}

// NIDiag is a snapshot of one non-idle network interface.
type NIDiag struct {
	Node    int
	Queued  int // packets waiting for serialization
	Active  int // packets mid-serialization into local VCs
	Pending int // ejected packets awaiting sink delivery
}

func (d NIDiag) String() string {
	return fmt.Sprintf("ni %d: %d queued, %d serializing, %d pending delivery",
		d.Node, d.Queued, d.Active, d.Pending)
}

// NetDiag is the network half of a stall diagnosis: every occupied input VC
// and non-idle NI, in deterministic (node, port, vc) order.
type NetDiag struct {
	InFlight int
	VCs      []VCDiag
	NIs      []NIDiag
	Fault    fault.Stats
}

// Diagnostics captures the network state at cycle now. It is read-only and
// deterministic: slices are ordered by (node, port, vc).
func (n *Network) Diagnostics(now sim.Cycle) NetDiag {
	d := NetDiag{InFlight: n.InFlight(), Fault: n.FaultStats()}
	for _, r := range n.routers {
		for p := Port(0); p < NumPorts; p++ {
			for v := range r.in[p] {
				vc := &r.in[p][v]
				if len(vc.buf) == 0 {
					continue
				}
				f := vc.buf[0]
				out := "?"
				if vc.routed {
					out = vc.outPort.String()
				}
				d.VCs = append(d.VCs, VCDiag{
					Node:    int(r.ID),
					Port:    p.String(),
					VC:      v,
					Flits:   len(vc.buf),
					PktID:   f.pkt.ID,
					PktSrc:  int(f.pkt.Src),
					PktDst:  int(f.pkt.Dst),
					OutPort: out,
					Age:     now - f.bufferedAt,
					Retries: vc.retries,
					Dead:    vc.dead,
				})
			}
		}
	}
	for _, ni := range n.nis {
		if ni.queued == 0 && ni.activeCount == 0 && len(ni.pendingDeliver) == 0 {
			continue
		}
		d.NIs = append(d.NIs, NIDiag{
			Node:    int(ni.ID),
			Queued:  ni.queued,
			Active:  ni.activeCount,
			Pending: len(ni.pendingDeliver),
		})
	}
	return d
}

// DeadLinks returns the subset of diagnosed VCs whose outgoing link has
// failed (retries exhausted), the usual root cause of a watchdog trip under
// fault injection.
func (d NetDiag) DeadLinks() []VCDiag {
	var out []VCDiag
	for _, vc := range d.VCs {
		if vc.Dead {
			out = append(out, vc)
		}
	}
	return out
}
