package noc

import (
	"testing"

	"inpg/internal/sim"
)

func trafficNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(11)
	n, err := New(eng, Config{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestUniformTrafficDrains(t *testing.T) {
	eng, n := trafficNet(t)
	res, err := RunTraffic(eng, n, TrafficConfig{
		Pattern: UniformRandom, InjectionRate: 0.05, PacketFlits: 1,
		WarmupCycles: 200, MeasureCycles: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Delivered != res.Injected {
		t.Fatalf("injected %d delivered %d", res.Injected, res.Delivered)
	}
	if res.MeanLatency < 4 || res.MeanLatency > 60 {
		t.Fatalf("uniform low-load latency %.1f outside sane band", res.MeanLatency)
	}
}

func TestAllPatternsComplete(t *testing.T) {
	for _, p := range []Pattern{UniformRandom, Transpose, BitComplement, Hotspot} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			eng, n := trafficNet(t)
			rate := 0.03
			if p == Hotspot {
				rate = 0.01 // one sink: keep offered load below its capacity
			}
			res, err := RunTraffic(eng, n, TrafficConfig{
				Pattern: p, InjectionRate: rate, PacketFlits: 1,
				WarmupCycles: 100, MeasureCycles: 800, Seed: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered != res.Injected {
				t.Fatalf("%s lost packets: %d/%d", p, res.Delivered, res.Injected)
			}
		})
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	curve, err := LatencyCurve(
		Config{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4},
		UniformRandom, []float64{0.02, 0.25}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve has %d points", len(curve))
	}
	low, high := curve[0][1], curve[1][1]
	if high <= low {
		t.Fatalf("latency did not rise with load: %.1f -> %.1f", low, high)
	}
}

func TestHotspotSlowerThanUniform(t *testing.T) {
	run := func(p Pattern) float64 {
		eng, n := trafficNet(t)
		res, err := RunTraffic(eng, n, TrafficConfig{
			Pattern: p, InjectionRate: 0.04, PacketFlits: 1,
			WarmupCycles: 200, MeasureCycles: 1500, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	if hot, uni := run(Hotspot), run(UniformRandom); hot <= uni {
		t.Fatalf("hotspot latency %.1f not above uniform %.1f", hot, uni)
	}
}

func TestTrafficRejectsBadRate(t *testing.T) {
	eng, n := trafficNet(t)
	if _, err := RunTraffic(eng, n, TrafficConfig{Pattern: UniformRandom, InjectionRate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := RunTraffic(eng, n, TrafficConfig{Pattern: UniformRandom, InjectionRate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestMultiFlitTrafficThroughput(t *testing.T) {
	eng, n := trafficNet(t)
	res, err := RunTraffic(eng, n, TrafficConfig{
		Pattern: UniformRandom, InjectionRate: 0.02, PacketFlits: 8,
		WarmupCycles: 100, MeasureCycles: 1000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputFPC <= 0 {
		t.Fatal("no throughput measured")
	}
}
