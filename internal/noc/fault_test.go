package noc

import (
	"errors"
	"testing"

	"inpg/internal/fault"
	"inpg/internal/sim"
)

// Under moderate link fault rates every packet is still delivered — the
// retransmission layer absorbs drops and CRC failures — and the retry
// counters record the recovered faults.
func TestRetransmissionDeliversUnderFaults(t *testing.T) {
	cfg := Config{
		Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4,
		Fault: fault.Config{Seed: 3, DropRate: 0.05, CorruptRate: 0.05},
	}
	eng, n, got := testNet(t, cfg)
	const nodes = 16
	want := make([]int, nodes)
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			n.NI(NodeID(s)).Inject(&Packet{Dst: NodeID(d), VNet: VNet((s + d) % int(NumVNets)), Size: 1})
			want[d]++
		}
	}
	run(eng, n, 2_000_000)
	if fl := n.InFlight(); fl != 0 {
		t.Fatalf("%d packets still in flight under 10%% fault rate", fl)
	}
	for d := 0; d < nodes; d++ {
		if len(got[d]) != want[d] {
			t.Fatalf("node %d delivered %d, want %d", d, len(got[d]), want[d])
		}
	}
	var retries, failures uint64
	for id := 0; id < nodes; id++ {
		retries += n.Router(NodeID(id)).Stats.LinkRetries
		failures += n.Router(NodeID(id)).Stats.LinkFailures
	}
	if retries == 0 {
		t.Fatal("no retransmissions counted at 10% combined fault rate")
	}
	if failures != 0 {
		t.Fatalf("%d links died under transient faults with default retry bound", failures)
	}
	st := n.FaultStats()
	if st.FlitsDropped+st.FlitsCorrupted != retries {
		t.Fatalf("injector saw %d faults, routers retried %d times",
			st.FlitsDropped+st.FlitsCorrupted, retries)
	}
}

// Fault-injected runs are bit-identical given the same (sim seed, fault
// seed): decisions are keyed hashes, not a shared RNG stream.
func TestFaultedRunsDeterministic(t *testing.T) {
	trace := func() []uint64 {
		cfg := Config{
			Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4,
			Fault: fault.AtRate(0.05, 11),
		}
		eng, n, _ := testNet(t, cfg)
		var order []uint64
		for id := 0; id < 16; id++ {
			ni := n.NI(NodeID(id))
			ni.OnDeliver = func(p *Packet) {
				order = append(order, p.ID<<16|uint64(p.DeliveredAt)&0xffff)
			}
		}
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				n.NI(NodeID(s)).Inject(&Packet{Dst: NodeID(d), VNet: VNet((s + d) % int(NumVNets)), Size: 1})
			}
		}
		run(eng, n, 2_000_000)
		return order
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %x vs %x", i, a[i], b[i])
		}
	}
}

// A permanently stalled port exhausts the bounded retransmission, kills the
// channel, and the watchdog reports the stall — well before the cycle
// budget. The diagnosis names the dead link.
func TestPermanentStallWedgesAndWatchdogTrips(t *testing.T) {
	cfg := Config{
		Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4,
		Fault: fault.Config{
			Seed:            1,
			MaxRetries:      3,
			RetryTimeout:    8,
			PermanentStalls: []fault.PortStall{{Node: 5, Port: int(East)}},
		},
	}
	eng, n, _ := testNet(t, cfg)
	eng.SetWatchdog(10_000)
	// 4 -> 6 routes east through router 5's dead east port.
	n.NI(4).Inject(&Packet{Dst: 6, VNet: VNetRequest, Size: 1})
	_, err := eng.Run(50_000_000, func() bool { return n.InFlight() == 0 })
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want StallError", err)
	}
	if stall.Now > 100_000 {
		t.Fatalf("watchdog tripped at cycle %d, long after the wedge", stall.Now)
	}
	dead := n.Diagnostics(eng.Now()).DeadLinks()
	if len(dead) != 1 {
		t.Fatalf("diagnosed %d dead links, want 1", len(dead))
	}
	d := dead[0]
	if d.Node != 5 || d.OutPort != East.String() || !d.Dead {
		t.Fatalf("dead link diagnosis = %+v, want router 5 out east", d)
	}
	if d.Retries != 4 {
		t.Fatalf("dead VC retries = %d, want MaxRetries+1 = 4", d.Retries)
	}
	if n.Router(5).Stats.LinkFailures != 1 {
		t.Fatalf("LinkFailures = %d, want 1", n.Router(5).Stats.LinkFailures)
	}
}

// With fault injection disabled the network takes the exact legacy code
// path: no injector is built and no retransmission state changes.
func TestZeroRateBuildsNoInjector(t *testing.T) {
	cfg := DefaultConfig()
	eng, n, _ := testNet(t, cfg)
	if n.FaultInjector() != nil {
		t.Fatal("zero-rate config built an injector")
	}
	n.NI(0).Inject(&Packet{Dst: 63, VNet: VNetRequest, Size: 1})
	run(eng, n, 1000)
	if st := n.FaultStats(); st != (fault.Stats{}) {
		t.Fatalf("fault stats nonzero with injection disabled: %+v", st)
	}
}
