package noc

import (
	"inpg/internal/fault"
	"inpg/internal/sim"
)

// Interceptor is the hook through which big routers (package bigrouter)
// participate in packet switching. Intercept is invoked exactly once per
// router visit, at the moment the head flit of a single-flit packet enters
// an input virtual channel (multi-flit data packets are never lock-protocol
// control messages and pass through uninspected).
//
// The interceptor may mutate the packet in place (e.g. convert a stopped
// GetX into a FwdGetX bound for the home node), consume it entirely, and/or
// hand newly generated packets to the router, which injects them through
// the local network interface (the paper's "separate VC" for generated
// packets).
//
// A consumed packet's shell is recycled by the network: the interceptor
// must not retain it past the Intercept call and must not return it among
// the generated packets (its payload may be read, and reused in fresh
// packets, before returning).
type Interceptor interface {
	Intercept(now sim.Cycle, r *Router, p *Packet) (consume bool, generated []*Packet)
}

// inputVC is one virtual-channel FIFO on a router input port. The route
// state (outPort, outVC) always describes the packet at the front of the
// buffer.
type inputVC struct {
	buf       []flit
	routed    bool
	outPort   Port
	outVC     int
	headSince sim.Cycle

	// Link-level retransmission state for the front flit (fault injection
	// only; all three stay zero when no injector is installed). A faulted
	// transmission leaves the flit at buf[0] — retrying before dequeue is
	// what preserves wormhole flit order — and schedules the retry at
	// nextTry with exponential backoff. Once retries exceeds the injector's
	// bound the VC is declared dead: the link has failed, the wormhole
	// channel wedges, and the liveness watchdog reports it.
	retries int
	nextTry sim.Cycle
	dead    bool
}

func (vc *inputVC) reset() {
	vc.routed = false
	vc.outVC = -1
	vc.retries = 0
	vc.nextTry = 0
}

// arrival is a flit in flight on a link toward this router.
type arrival struct {
	f    flit
	port Port
	vc   int
	at   sim.Cycle
}

// creditMsg is a credit in flight back to this router's output port.
type creditMsg struct {
	port Port
	vc   int
	at   sim.Cycle
}

// RouterStats aggregates per-router activity counters.
type RouterStats struct {
	FlitsSwitched   uint64
	PacketsConsumed uint64 // removed by the interceptor
	PacketsSeen     uint64 // head flits accepted at input VCs
	LinkRetries     uint64 // flit transmissions that faulted and were retried
	LinkFailures    uint64 // input VCs declared dead after retries exhausted
	VCStalls        uint64 // switch requests denied for lack of downstream credit
}

// Router is one mesh router: NumPorts input ports × VCsPerPort virtual
// channels, credit-based flow control, XY routing and a 2-stage pipeline
// modeled as a minimum 2-cycle per-hop latency.
type Router struct {
	ID  NodeID
	net *Network

	neighbors [NumPorts]*Router
	in        [NumPorts][]inputVC
	outCred   [NumPorts][]int
	outOwner  [NumPorts][]*inputVC // nil = output VC free

	inbox   []arrival
	credits []creditMsg

	interceptor Interceptor
	ni          *NI

	saRR  int // round-robin pointer over (port,vc) pairs
	Stats RouterStats

	buffered int // flits currently buffered; 0 lets Tick exit early

	// occ lists the occupied input VCs as sorted slot ids
	// (slot = port*VCsPerPort + vc), so the allocation stages visit only
	// live VCs instead of scanning all NumPorts×VCsPerPort slots. The
	// ascending order preserves the exact visit order of the full scan.
	occ []int

	// handle is the router's wake/sleep handle; a router sleeps when it
	// holds no flits and its link queues are empty, and is woken by link
	// arrivals, returning credits and NI flit pushes.
	handle sim.Handle

	// Sharding (see shard.go). pool is the free list this router
	// allocates from and recycles to: the network-wide pool normally,
	// the owning shard's pool under SetShards. stagePush[p] routes
	// pushes through port p via the staging buffers (the neighbor is a
	// boundary router); stageCred[p] stages credits (the neighbor is in
	// another shard). All false unsharded, so the direct paths are
	// untouched.
	shard     int32
	pool      *packetPool
	stagePush [NumPorts]bool
	stageCred [NumPorts]bool
}

func newRouter(id NodeID, net *Network) *Router {
	r := &Router{ID: id, net: net}
	for p := Port(0); p < NumPorts; p++ {
		r.in[p] = make([]inputVC, net.cfg.VCsPerPort)
		for v := range r.in[p] {
			r.in[p][v].outVC = -1
			r.in[p][v].buf = make([]flit, 0, net.cfg.VCDepth)
		}
		r.outCred[p] = make([]int, net.cfg.VCsPerPort)
		r.outOwner[p] = make([]*inputVC, net.cfg.VCsPerPort)
	}
	r.occ = make([]int, 0, int(NumPorts)*net.cfg.VCsPerPort)
	r.pool = &net.pool
	return r
}

// wake puts the router back into the engine's tick set.
func (r *Router) wake() { r.net.eng.Wake(r.handle) }

// occInsert adds slot s to the occupied-VC list, keeping it sorted.
func (r *Router) occInsert(s int) {
	i := 0
	for i < len(r.occ) && r.occ[i] < s {
		i++
	}
	r.occ = append(r.occ, 0)
	copy(r.occ[i+1:], r.occ[i:])
	r.occ[i] = s
}

// occRemove drops slot s from the occupied-VC list.
func (r *Router) occRemove(s int) {
	for i, v := range r.occ {
		if v == s {
			r.occ = append(r.occ[:i], r.occ[i+1:]...)
			return
		}
	}
}

// SetInterceptor installs (or removes, with nil) the packet-generation hook
// that turns this normal router into a big router.
func (r *Router) SetInterceptor(i Interceptor) { r.interceptor = i }

// NI returns the network interface attached to this router's local port.
func (r *Router) NI() *NI { return r.ni }

// NewPacket returns a zeroed packet from the router's free list;
// interceptors use it to build generated packets allocation-free.
func (r *Router) NewPacket() *Packet { return r.pool.get() }

// InShardedPass reports whether a parallel tick pass is executing.
// Interceptors use it to route side effects on shared simulation state
// (trace buffers, histograms) through DeferToBarrier. Always false on an
// unsharded network.
func (r *Router) InShardedPass() bool { return r.net.eng.InPass() }

// DeferToBarrier defers fn to the end-of-cycle barrier of the current
// sharded pass. Deferred effects replay on the main goroutine in exactly
// the order inline execution would have produced (see sim.PassDefer).
func (r *Router) DeferToBarrier(fn func()) { r.net.eng.PassDefer(r.shard, fn) }

// vcClass returns the half-open VC index range reserved for a vnet.
func (r *Router) vcClass(v VNet) (lo, hi int) {
	per := r.net.cfg.VCsPerPort / int(NumVNets)
	return int(v) * per, (int(v) + 1) * per
}

// acceptFlit places an arriving flit into input VC (port, vcIdx), first
// giving the interceptor a chance to consume or rewrite the packet.
// It reports whether the flit was consumed (not buffered).
func (r *Router) acceptFlit(now sim.Cycle, port Port, vcIdx int, f flit) bool {
	if f.head() {
		r.Stats.PacketsSeen++
		if r.interceptor != nil && f.pkt.Size == 1 {
			consume, generated := r.interceptor.Intercept(now, r, f.pkt)
			for _, g := range generated {
				r.ni.Inject(g)
			}
			if consume {
				r.Stats.PacketsConsumed++
				r.pool.put(f.pkt)
				return true
			}
		}
	}
	f.bufferedAt = now
	vc := &r.in[port][vcIdx]
	vc.buf = append(vc.buf, f)
	if len(vc.buf) == 1 {
		r.occInsert(int(port)*r.net.cfg.VCsPerPort + vcIdx)
	}
	r.buffered++
	r.wake()
	return false
}

// Tick advances the router one cycle: drain link arrivals and returning
// credits, compute routes and allocate output VCs for new heads, then run
// switch allocation and traversal for one flit per input port and one flit
// per output (port, VC).
func (r *Router) Tick(now sim.Cycle) {
	// Returning credits.
	if len(r.credits) > 0 {
		kept := r.credits[:0]
		for _, c := range r.credits {
			if c.at <= now {
				r.outCred[c.port][c.vc]++
			} else {
				kept = append(kept, c)
			}
		}
		r.credits = kept
	}

	// Link arrivals.
	if len(r.inbox) > 0 {
		kept := r.inbox[:0]
		for _, a := range r.inbox {
			if a.at <= now {
				if r.acceptFlit(now, a.port, a.vc, a.f) {
					// Consumed by the interceptor: the buffer slot is free
					// again, so return the credit upstream immediately.
					r.returnCredit(now, a.port, a.vc)
				}
			} else {
				kept = append(kept, a)
			}
		}
		r.inbox = kept
	}

	if r.buffered == 0 {
		// Quiescent: no flits buffered, nothing in flight toward us. Drop
		// out of the tick set; arrivals, credits and NI pushes wake us.
		if len(r.inbox) == 0 && len(r.credits) == 0 {
			r.net.eng.Sleep(r.handle)
		}
		return
	}

	// Stage 1: route computation + output VC allocation for front heads.
	// Only occupied VCs are visited, in the same ascending (port, vc)
	// order as a full scan.
	nvc := r.net.cfg.VCsPerPort
	for _, s := range r.occ {
		vc := &r.in[s/nvc][s%nvc]
		if !vc.buf[0].head() {
			continue
		}
		pkt := vc.buf[0].pkt
		if !vc.routed {
			vc.outPort = r.net.mesh.RouteXY(r.ID, pkt.Dst)
			vc.routed = true
			vc.headSince = now
		}
		if vc.outVC < 0 {
			lo, hi := r.vcClass(pkt.VNet)
			for ov := lo; ov < hi; ov++ {
				if r.outOwner[vc.outPort][ov] == nil {
					r.outOwner[vc.outPort][ov] = vc
					vc.outVC = ov
					break
				}
			}
		}
	}

	// Stage 2: switch allocation + traversal. One flit per input port and
	// one flit per output port per cycle (single crossbar connection each).
	// The round-robin scan starts at saRR and wraps; restricting it to the
	// occupied-VC list visits the same candidates in the same order as the
	// full slot scan.
	var grantedIn [NumPorts]bool
	var grantedOut [NumPorts]bool
	total := int(NumPorts) * nvc
	type cand struct {
		port Port
		vcIx int
	}
	// Collect one winner per output port.
	var winners [NumPorts]cand
	var hasWinner [NumPorts]bool
	nocc := len(r.occ)
	first := 0
	for first < nocc && r.occ[first] < r.saRR {
		first++
	}
	for i := 0; i < nocc; i++ {
		slot := r.occ[(first+i)%nocc]
		p := Port(slot / nvc)
		v := slot % nvc
		vc := &r.in[p][v]
		if grantedIn[p] || !vc.routed || vc.outVC < 0 {
			continue
		}
		if vc.dead || vc.nextTry > now {
			continue // failed link, or retransmission backoff still running
		}
		f := vc.buf[0]
		if f.bufferedAt >= now {
			continue // models the 2-stage pipeline: never same-cycle switch
		}
		op := vc.outPort
		if r.net.fault != nil && op != Local && r.net.fault.PortStalled(now, int(r.ID), int(op)) {
			continue // output port transiently stalled: no grant crosses it
		}
		if r.outCred[op][vc.outVC] <= 0 {
			r.Stats.VCStalls++
			continue
		}
		if grantedOut[op] {
			// An earlier round-robin candidate holds this output; under
			// priority arbitration a strictly better packet may steal it.
			if !r.net.cfg.PriorityArb {
				continue
			}
			w := &r.in[winners[op].port][winners[op].vcIx]
			if !betterPriority(now, vc, w) || grantedIn[p] {
				continue
			}
			grantedIn[winners[op].port] = false
			winners[op] = cand{p, v}
			grantedIn[p] = true
			continue
		}
		grantedOut[op] = true
		grantedIn[p] = true
		winners[op] = cand{p, v}
		hasWinner[op] = true
	}
	for op := Port(0); op < NumPorts; op++ {
		if hasWinner[op] {
			r.traverse(now, winners[op].port, winners[op].vcIx)
		}
	}
	r.saRR = (r.saRR + 1) % total

	if r.buffered == 0 && len(r.inbox) == 0 && len(r.credits) == 0 {
		r.net.eng.Sleep(r.handle)
	}
}

// agingQuantum is the head-of-line wait that buys one effective priority
// level — the starvation-avoidance the paper attributes to the progress
// information OCOR embeds in request packets: a long-stalled low-priority
// packet eventually outranks fresh high-priority traffic.
const agingQuantum = 64

// betterPriority reports whether input VC a's front packet should beat b's
// under OCOR arbitration: higher aged priority first, then older head.
func betterPriority(now sim.Cycle, a, b *inputVC) bool {
	pa := effectivePriority(now, a)
	pb := effectivePriority(now, b)
	if pa != pb {
		return pa > pb
	}
	return a.headSince < b.headSince
}

// effectivePriority is the packet's priority plus its head-of-line age in
// aging quanta.
func effectivePriority(now sim.Cycle, vc *inputVC) int {
	return vc.buf[0].pkt.Priority + int(now-vc.headSince)/agingQuantum
}

// traverse moves the front flit of input VC (p, v) through the crossbar
// onto its output link (or into the local NI).
func (r *Router) traverse(now sim.Cycle, p Port, v int) {
	vc := &r.in[p][v]
	f := vc.buf[0]
	if r.net.fault != nil && vc.outPort != Local {
		// The link layer: transmit, CRC-check at the receiver, ack/nack. A
		// faulted flit (lost, or nacked on CRC failure) stays at the head of
		// its input VC — retry-before-dequeue keeps wormhole flit order —
		// and is retransmitted after an exponentially backed-off timeout.
		// Credits and buffer occupancy are untouched by a failed attempt.
		if k := r.net.fault.LinkFault(now, int(r.ID), int(vc.outPort), f.pkt.ID, f.idx); k != fault.None {
			vc.retries++
			r.Stats.LinkRetries++
			if r.net.OnLinkRetry != nil {
				// The hooks append to shared trace state; during a
				// sharded pass they replay at the barrier instead. The
				// faulted flit stays at the head of its VC, so the
				// captured packet is alive when the closure runs.
				if attempt := vc.retries; r.net.eng.InPass() {
					id, toward, pkt := r.ID, vc.outPort, f.pkt
					r.net.eng.PassDefer(r.shard, func() {
						r.net.OnLinkRetry(now, id, toward, pkt, attempt)
					})
				} else {
					r.net.OnLinkRetry(now, r.ID, vc.outPort, f.pkt, attempt)
				}
			}
			if vc.retries > r.net.fault.MaxRetries() {
				vc.dead = true
				r.Stats.LinkFailures++
				if r.net.OnLinkDead != nil {
					if r.net.eng.InPass() {
						id, toward, pkt := r.ID, vc.outPort, f.pkt
						r.net.eng.PassDefer(r.shard, func() {
							r.net.OnLinkDead(now, id, toward, pkt)
						})
					} else {
						r.net.OnLinkDead(now, r.ID, vc.outPort, f.pkt)
					}
				}
			} else {
				backoff := r.net.fault.Backoff(vc.retries)
				vc.nextTry = now + backoff
				if f.pkt.Journey != nil {
					f.pkt.JRetry += uint64(backoff)
				}
			}
			return
		}
		vc.retries = 0
	}
	if f.pkt.Journey != nil && f.head() {
		// Head-flit residency in this input VC beyond the mandatory
		// pipeline cycle is contention: time lost to switch allocation,
		// credit stalls and retransmission backoff (JRetry carves the
		// backoff share back out at fold time). Counted on every hop,
		// including the final Local ejection.
		if wait := uint64(now - f.bufferedAt); wait > 1 {
			f.pkt.JVCWait += wait - 1
		}
	}
	// Shift down instead of reslicing: vc.buf[1:] would strand the front
	// capacity and force append to reallocate on nearly every arrival (the
	// dominant steady-state allocation). Buffers are at most VCDepth flits,
	// so the copy is a few words.
	n := copy(vc.buf, vc.buf[1:])
	vc.buf = vc.buf[:n]
	if n == 0 {
		r.occRemove(int(p)*r.net.cfg.VCsPerPort + v)
	}
	r.buffered--
	r.Stats.FlitsSwitched++
	op := vc.outPort
	ov := vc.outVC

	if op == Local {
		r.ni.eject(now, f)
	} else {
		r.outCred[op][ov]--
		nb := r.neighbors[op]
		if r.stagePush[op] {
			// Boundary destination: the push (and its wake) applies at
			// the barrier, merged across shards into sequential order.
			r.net.stageArrival(r.shard, r.handle, nb, arrival{f: f, port: op.opposite(), vc: ov, at: now + 1})
		} else {
			nb.inbox = append(nb.inbox, arrival{f: f, port: op.opposite(), vc: ov, at: now + 1})
			nb.wake()
		}
		if f.head() {
			f.pkt.Hops++
		}
	}
	if f.tail {
		r.outOwner[op][ov] = nil
		vc.reset()
	}
	r.returnCredit(now, p, v)
}

// returnCredit sends one buffer credit for input VC (p, v) back upstream.
// Local-port occupancy is observed directly by the NI, so no credit message
// is needed there.
func (r *Router) returnCredit(now sim.Cycle, p Port, v int) {
	if p == Local {
		return
	}
	nb := r.neighbors[p]
	if r.stageCred[p] {
		// Cross-shard credit: staged, applied (and the neighbor woken)
		// at the barrier. Credit application is commutative, so staged
		// credits need no cross-shard ordering.
		r.net.stageCredit(r.shard, nb, creditMsg{port: p.opposite(), vc: v, at: now + 1})
		return
	}
	nb.credits = append(nb.credits, creditMsg{port: p.opposite(), vc: v, at: now + 1})
	nb.wake()
}

// localVCSpace reports the free slots in local input VC v, used by the NI
// in lieu of credit messages.
func (r *Router) localVCSpace(v int) int {
	return r.net.cfg.VCDepth - len(r.in[Local][v].buf)
}
