package noc

import (
	"testing"

	"inpg/internal/fault"
	"inpg/internal/sim"
)

func TestSetShardsValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	n, err := New(eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SetShards(-1); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
	if got, err := n.SetShards(0); err != nil || got != 1 {
		t.Fatalf("SetShards(0) = (%d, %v), want (1, nil)", got, err)
	}
	if got, err := n.SetShards(1); err != nil || got != 1 {
		t.Fatalf("SetShards(1) = (%d, %v), want (1, nil)", got, err)
	}
	if n.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d after no-op SetShards, want 1", n.ShardCount())
	}
	// A count above the mesh height clamps to one stripe per row.
	if got, err := n.SetShards(1000); err != nil || got != n.Mesh().Height {
		t.Fatalf("SetShards(1000) = (%d, %v), want (%d, nil)", got, err, n.Mesh().Height)
	}
	if _, err := n.SetShards(2); err == nil {
		t.Fatal("second SetShards call must be rejected")
	}
}

func TestSetShardsRejectsForeignTickers(t *testing.T) {
	eng := sim.NewEngine(1)
	n, err := New(eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(sim.TickFunc(func(sim.Cycle) {})) // not owned by the network
	if _, err := n.SetShards(2); err == nil {
		t.Fatal("SetShards must refuse an engine with tickers the network does not own")
	}
}

// delivery is a value snapshot of one delivered packet (the shells are
// recycled after the sink returns, so fields must be copied out).
type delivery struct {
	src, dst NodeID
	id       uint64
	injected sim.Cycle
	arrived  sim.Cycle
	hops     int
}

// shardRun drives an all-pairs workload (plus a hotspot burst onto node 0)
// under the given shard count and returns every node's delivered stream in
// arrival order.
func shardRun(t *testing.T, cfg Config, shards int) ([][]delivery, ShardingStats) {
	t.Helper()
	eng := sim.NewEngine(7)
	n, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	got := make([][]delivery, cfg.Mesh.Nodes())
	for id := 0; id < cfg.Mesh.Nodes(); id++ {
		id := id
		n.NI(NodeID(id)).SetSink(SinkFunc(func(now sim.Cycle, p *Packet) {
			got[id] = append(got[id], delivery{src: p.Src, dst: p.Dst, id: p.ID,
				injected: p.InjectedAt, arrived: now, hops: p.Hops})
		}))
	}
	total := 0
	for s := 0; s < cfg.Mesh.Nodes(); s++ {
		for d := 0; d < cfg.Mesh.Nodes(); d++ {
			n.NI(NodeID(s)).Inject(&Packet{Dst: NodeID(d), VNet: VNet(int(s+d) % int(NumVNets)), Size: 1})
			total++
		}
		n.NI(NodeID(s)).Inject(&Packet{Dst: 0, VNet: VNetResponse, Size: DataFlits})
		total++
	}
	if _, err := eng.Run(200000, func() bool { return n.InFlight() == 0 }); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, g := range got {
		count += len(g)
	}
	if count != total {
		t.Fatalf("delivered %d/%d packets under %d shards", count, total, shards)
	}
	return got, n.ShardingStats()
}

// TestShardedDeliveryBitIdentical runs the same traffic under 1, 2 and
// mesh-height shards and demands identical delivery streams — same packet
// IDs, same injection and arrival cycles, same per-node arrival order.
func TestShardedDeliveryBitIdentical(t *testing.T) {
	for _, cfg := range []Config{
		{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4},
		{Mesh: Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4,
			Fault: fault.AtRate(0.002, 99)},
	} {
		base, _ := shardRun(t, cfg, 1)
		for _, shards := range []int{2, cfg.Mesh.Height} {
			got, st := shardRun(t, cfg, shards)
			if st.BoundaryArrivals == 0 {
				t.Fatalf("%d shards: no arrivals were staged; boundary classification is wrong", shards)
			}
			for id := range base {
				if len(got[id]) != len(base[id]) {
					t.Fatalf("%d shards: node %d received %d packets, want %d", shards, id, len(got[id]), len(base[id]))
				}
				for i := range base[id] {
					if got[id][i] != base[id][i] {
						t.Fatalf("%d shards: node %d delivery %d = %+v, want %+v (faults=%v)",
							shards, id, i, got[id][i], base[id][i], cfg.Fault.Enabled())
					}
				}
			}
		}
	}
}
