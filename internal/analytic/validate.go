// Validation harness: runs the analytic model head-to-head against the
// cycle simulator over a lock × mechanism × contention grid and
// summarizes per-metric relative errors. The grid deliberately differs
// from the calibration grid (different contention levels, different
// seed) so the recorded bounds measure generalization, not memorization.
// validate_test.go pins the summary against RecordedBounds; the
// pre-screener stamps the same bounds into estimate manifests so
// downstream consumers know how much to trust a skipped cell.
package analytic

import (
	"fmt"
	"sort"

	"inpg"
)

// Metric names one validated quantity.
type Metric string

const (
	// MetricThroughput is critical sections per kilocycle.
	MetricThroughput Metric = "cs_throughput"
	// MetricLatency is mean end-to-end packet latency.
	MetricLatency Metric = "net_latency"
	// MetricRuntime is ROI runtime.
	MetricRuntime Metric = "runtime"
	// MetricCSTime is the COH+Sleep+CSE phase total.
	MetricCSTime Metric = "cs_time"
	// MetricLinkUtil is switched flits per router per cycle.
	MetricLinkUtil Metric = "link_util"
)

// Metrics lists every validated metric in stable order.
var Metrics = []Metric{MetricThroughput, MetricLatency, MetricRuntime, MetricCSTime, MetricLinkUtil}

// ValidationLevels are the grid's parallel-phase lengths (cycles):
// saturated, knee, and near-uncontended. None appears in the
// calibration grid.
var ValidationLevels = []int{400, 2400, 20000}

// ValidationSeed differs from the calibration seed (42) so the bounds
// measure generalization across the jitter stream too.
const ValidationSeed = 7

// ValidationGrid returns the full validation grid: every lock kind ×
// every mechanism × every contention level on the default 8×8 mesh.
func ValidationGrid() []inpg.Config {
	locks := append([]inpg.LockKind{}, inpg.LockKinds...)
	locks = append(locks, inpg.LockCLH) // the extension lock is calibrated too
	var out []inpg.Config
	for _, lk := range locks {
		for _, m := range inpg.Mechanisms {
			for _, pc := range ValidationLevels {
				cfg := inpg.DefaultConfig()
				cfg.Lock = lk
				cfg.Mechanism = m
				cfg.Seed = ValidationSeed
				cfg.CSPerThread = 4
				cfg.CSCycles = 100
				cfg.CSJitter = 33
				cfg.ParallelCycles = pc
				cfg.ParallelJitter = pc / 3
				out = append(out, cfg)
			}
		}
	}
	return out
}

// CellResult is one grid cell's model-vs-simulator comparison.
type CellResult struct {
	Cfg inpg.Config
	Est Estimate
	Sim *inpg.Results
	// Err maps each metric to |estimate-simulated| / simulated.
	Err map[Metric]float64
}

// CompareCell simulates one configuration and scores the model against
// it.
func CompareCell(cfg inpg.Config) (CellResult, error) {
	sys, err := inpg.New(cfg)
	if err != nil {
		return CellResult{}, err
	}
	res, err := sys.Run()
	if err != nil {
		return CellResult{}, fmt.Errorf("analytic: validation run %s/%s pc=%d: %w", cfg.Lock, cfg.Mechanism, cfg.ParallelCycles, err)
	}
	return Compare(cfg, res), nil
}

// Compare scores the model against an already-simulated result.
func Compare(cfg inpg.Config, res *inpg.Results) CellResult {
	est := For(cfg)
	nodes := float64(cfg.MeshWidth * cfg.MeshHeight)
	rel := func(e, s float64) float64 {
		if s == 0 {
			if e == 0 {
				return 0
			}
			return 1
		}
		d := e - s
		if d < 0 {
			d = -d
		}
		return d / s
	}
	simRuntime := float64(res.Runtime)
	return CellResult{Cfg: cfg, Est: est, Sim: res, Err: map[Metric]float64{
		MetricThroughput: rel(est.CSPerKCycle, 1000*float64(res.CSCompleted)/simRuntime),
		MetricLatency:    rel(est.NetMeanLatency, res.NetMeanLatency),
		MetricRuntime:    rel(est.Runtime, simRuntime),
		MetricCSTime:     rel(est.CSTime(), float64(res.CSTime())),
		MetricLinkUtil:   rel(est.LinkUtilization, float64(res.FlitsSwitched)/(simRuntime*nodes)),
	}}
}

// Report aggregates a validation sweep.
type Report struct {
	Cells []CellResult
}

// Validate runs the model against the simulator for every configuration.
func Validate(cfgs []inpg.Config) (*Report, error) {
	r := &Report{}
	for _, cfg := range cfgs {
		cell, err := CompareCell(cfg)
		if err != nil {
			return nil, err
		}
		r.Cells = append(r.Cells, cell)
	}
	return r, nil
}

// Mean returns the mean relative error of one metric across all cells.
func (r *Report) Mean(m Metric) float64 {
	if len(r.Cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range r.Cells {
		sum += c.Err[m]
	}
	return sum / float64(len(r.Cells))
}

// Max returns the worst relative error of one metric across all cells.
func (r *Report) Max(m Metric) float64 {
	worst := 0.0
	for _, c := range r.Cells {
		if c.Err[m] > worst {
			worst = c.Err[m]
		}
	}
	return worst
}

// LockMean returns the mean relative error of one metric across the
// cells of one lock kind.
func (r *Report) LockMean(lk inpg.LockKind, m Metric) float64 {
	sum, n := 0.0, 0
	for _, c := range r.Cells {
		if c.Cfg.Lock == lk {
			sum += c.Err[m]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the report as a fixed-width table: one row per lock
// kind plus an overall row, one column per metric (mean/max %).
func (r *Report) String() string {
	locks := map[inpg.LockKind]bool{}
	for _, c := range r.Cells {
		locks[c.Cfg.Lock] = true
	}
	var order []inpg.LockKind
	for lk := range locks {
		order = append(order, lk)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	s := fmt.Sprintf("%-8s", "lock")
	for _, m := range Metrics {
		s += fmt.Sprintf(" %16s", m)
	}
	s += "\n"
	for _, lk := range order {
		s += fmt.Sprintf("%-8s", lk)
		for _, m := range Metrics {
			s += fmt.Sprintf("    %5.1f%% mean  ", 100*r.LockMean(lk, m))
		}
		s += "\n"
	}
	s += fmt.Sprintf("%-8s", "all")
	for _, m := range Metrics {
		s += fmt.Sprintf("  %4.1f%%/%5.1f%%", 100*r.Mean(m), 100*r.Max(m))
	}
	s += "\n"
	return s
}

// Bound is a pinned error level: mean and worst-case relative error.
type Bound struct {
	Mean, Max float64
}

// RecordedBounds are the shipped calibration table's measured errors on
// the full validation grid (ValidationGrid, seed 7). Regenerated
// together with the table; validate_test.go fails when the live model
// drifts past them, and the pre-screener stamps them into estimate
// manifests.
//
// Throughput, latency and runtime are the strong metrics — they drive
// region selection. The phase decomposition (cs_time) and link
// utilization are coarser: TAS's invalidation-storm COH share and QSL's
// sharp sleep onset resist the smooth MVA wait term (DESIGN.md §11).
var RecordedBounds = map[Metric]Bound{
	MetricThroughput: {Mean: 0.035, Max: 0.19},
	MetricLatency:    {Mean: 0.09, Max: 0.60},
	MetricRuntime:    {Mean: 0.04, Max: 0.23},
	MetricCSTime:     {Mean: 0.22, Max: 2.15},
	MetricLinkUtil:   {Mean: 0.21, Max: 0.90},
}
