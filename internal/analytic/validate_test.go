package analytic

import (
	"testing"

	"inpg"
)

// driftSlack is the multiplicative headroom on every pinned bound: wide
// enough to absorb a deliberate re-fit's rounding, tight enough that a
// simulator change which actually moves the physics fails here.
const driftSlack = 1.15

// TestModelWithinRecordedBounds re-runs the full validation grid (a
// different contention ladder and seed than calibration) and pins the
// model's error against RecordedBounds per metric — plus the issue's
// hard acceptance gate: ≤15% mean relative error on CS throughput and
// mean packet latency.
func TestModelWithinRecordedBounds(t *testing.T) {
	grid := ValidationGrid()
	if testing.Short() {
		// Keep the race-enabled short run cheap: two locks spanning the
		// behavior space (spin-storm TAS, sleep-capable QSL).
		var sub []inpg.Config
		for _, cfg := range grid {
			if cfg.Lock == inpg.LockTAS || cfg.Lock == inpg.LockQSL {
				sub = append(sub, cfg)
			}
		}
		grid = sub
	}
	rep, err := Validate(grid)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("validation report (%d cells):\n%s", len(rep.Cells), rep)

	// The pinned bounds describe the FULL grid; subsetting in short mode
	// shifts the means, so drift detection runs on full test runs only.
	if !testing.Short() {
		for _, m := range Metrics {
			b, ok := RecordedBounds[m]
			if !ok {
				t.Fatalf("no recorded bound for metric %s", m)
			}
			if got := rep.Mean(m); got > b.Mean*driftSlack {
				t.Errorf("%s mean relative error %.1f%% exceeds recorded %.1f%% (+%.0f%% slack): model drifted — refit the table or fix the regression",
					m, 100*got, 100*b.Mean, 100*(driftSlack-1))
			}
			if got := rep.Max(m); got > b.Max*driftSlack {
				t.Errorf("%s worst relative error %.1f%% exceeds recorded %.1f%% (+%.0f%% slack)",
					m, 100*got, 100*b.Max, 100*(driftSlack-1))
			}
		}
	}

	// The acceptance gate is absolute, not drift-relative.
	for _, m := range []Metric{MetricThroughput, MetricLatency} {
		if got := rep.Mean(m); got > 0.15 {
			t.Errorf("%s mean relative error %.1f%% exceeds the 15%% acceptance bound", m, 100*got)
		}
	}

	// Per-lock pins: each lock kind's throughput estimate must stay
	// usable on its own, not just on average.
	for _, lk := range append(append([]inpg.LockKind{}, inpg.LockKinds...), inpg.LockCLH) {
		if got := rep.LockMean(lk, MetricThroughput); got > 0.20 {
			t.Errorf("%s cs_throughput mean relative error %.1f%% exceeds 20%%", lk, 100*got)
		}
	}
}

// TestEstimateDeterministic guards the pre-screener's byte-identity
// property at the source: the model is a pure function of the config.
func TestEstimateDeterministic(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.ParallelCycles = 1234
	a, b := For(cfg), For(cfg)
	if a != b {
		t.Fatalf("estimates differ across calls: %+v vs %+v", a, b)
	}
}

// TestEstimateShapes sanity-checks qualitative model behavior the
// figures depend on: contention rises as parallel work shrinks, and
// longer routes mean higher latency floors.
func TestEstimateShapes(t *testing.T) {
	hot := inpg.DefaultConfig()
	hot.ParallelCycles, hot.ParallelJitter = 200, 66
	cold := hot
	cold.ParallelCycles, cold.ParallelJitter = 51200, 17066
	eh, ec := For(hot), For(cold)
	if !eh.Contended {
		t.Errorf("pc=200 should be lock-serialized, got Contended=false")
	}
	if eh.CSPerKCycle <= ec.CSPerKCycle {
		t.Errorf("throughput per kcycle should be higher under contention: hot %.3f vs cold %.3f", eh.CSPerKCycle, ec.CSPerKCycle)
	}
	if eh.WaitPerAcquire <= ec.WaitPerAcquire {
		t.Errorf("wait per acquire should grow with contention: hot %.1f vs cold %.1f", eh.WaitPerAcquire, ec.WaitPerAcquire)
	}

	small := hot
	small.MeshWidth, small.MeshHeight = 4, 4
	if sm, lg := For(small), For(hot); sm.MeanHopsHome >= lg.MeanHopsHome {
		t.Errorf("4x4 mean hops %.2f should be below 8x8 %.2f", sm.MeanHopsHome, lg.MeanHopsHome)
	}
}

// TestPriorityWaits checks the non-preemptive priority queue model:
// higher classes wait less, and the highest class beats the FIFO wait.
func TestPriorityWaits(t *testing.T) {
	u := 0.8
	ws := PriorityWaits(u, 9)
	if len(ws) != 9 {
		t.Fatalf("want 9 classes, got %d", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] < ws[i-1] {
			t.Errorf("class %d waits less than class %d: %.3f < %.3f", i, i-1, ws[i], ws[i-1])
		}
	}
	if fifo := u / (1 - u); ws[0] >= fifo {
		t.Errorf("top class wait %.3f should beat FIFO %.3f", ws[0], fifo)
	}
}

// TestLockReqLatencyOCOR: under OCOR the lock-request class should see
// lower latency than the aggregate mean at the same operating point.
func TestLockReqLatencyOCOR(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.Lock = inpg.LockTAS
	cfg.Mechanism = inpg.OCOR
	cfg.ParallelCycles, cfg.ParallelJitter = 200, 66
	e := For(cfg)
	if e.HotLinkLoad <= 0 {
		t.Skip("operating point has no modeled hot-link contention")
	}
	if e.LockReqLatency >= e.NetMeanLatency {
		t.Errorf("OCOR top-class lock request latency %.2f should beat aggregate mean %.2f", e.LockReqLatency, e.NetMeanLatency)
	}
}
