// Package analytic is the queueing-theoretic fast model of the simulated
// platform: closed-form (plus one small fixed-point recursion) estimates
// of the quantities the cycle simulator measures — ROI runtime,
// critical-section throughput, phase breakdown, mean packet latency and
// link utilization — computed in microseconds instead of seconds.
//
// The model composes four classical pieces over the concrete platform
// geometry:
//
//   - XY route lengths on the mesh: every estimate starts from the exact
//     mean Manhattan distance of the traffic it concerns (threads → lock
//     home for the lock protocol, uniform pairs for background traffic),
//     times the router's 2-cycle per-hop pipeline.
//   - A machine-repairman closed queueing network for the lock itself:
//     N threads alternate between a "think" phase (parallel compute) and
//     a single serialized server (the critical section plus the lock
//     hand-off protocol). Mean value analysis (MVA) yields the lock
//     throughput and per-acquire waiting time, smoothly interpolating
//     between the serialized regime (runtime = totalCS × service period)
//     and the parallel-limited regime (runtime = slowest thread's own
//     program).
//   - An M/G/1-style contention term for the links around the lock's
//     home node: the hot-link utilization implied by the lock throughput
//     inflates mean packet latency by the familiar u/(1-u) factor. Under
//     OCOR the term is priority-aware: the nine remaining-times-of-retry
//     classes see the non-preemptive head-of-line priority waits, so the
//     model can quote the latency a nearly-exhausted spinner's request
//     experiences separately from the aggregate mean.
//   - A critical-section serialization term for lock throughput: the
//     per-primitive hand-off period (how long the lock is unavailable
//     per critical section, including the release/transfer coherence
//     protocol) is the service time of the MVA server.
//
// Protocol constants that no queueing argument can produce — the TAS
// invalidation-storm hand-off cost, MCS's pointer-chase transfer, QSL's
// sleep tail — live in a per-(lock, mechanism) calibration table
// (table.go) fitted once against the cycle simulator and re-validated
// continuously: the validation suite (validate.go, wired into go test)
// re-runs a lock × mechanism × contention grid through the real
// simulator and fails when model drift exceeds the recorded error
// bounds.
//
// The model deliberately ignores fault injection, multi-lock workloads
// and barrier phases (see DESIGN.md §11 for where it breaks); estimates
// for such configurations are still returned but carry no accuracy
// claim.
package analytic

import (
	"math"

	"inpg"
)

// Platform constants mirrored from the simulator (internal/noc,
// internal/lock). They are structural — changing them there without
// updating here trips the validation suite.
const (
	// hopCycles is the router's per-hop pipeline latency (2-stage router,
	// minimum 2 cycles per hop).
	hopCycles = 2.0
	// dataFlits and controlFlits are the two packet sizes.
	dataFlits    = 8.0
	controlFlits = 1.0
	// spinPollCycles is a spin iteration's cost: the poll interval plus an
	// L1 hit (lock.DefaultConfig SpinInterval 12 + 4).
	spinPollCycles = 16.0
	// defaultQSLRetries, defaultCtxSwitch, defaultWakeup mirror
	// lock.DefaultConfig.
	defaultQSLRetries = 128
	defaultCtxSwitch  = 2500.0
	defaultWakeup     = 1000.0
	// ocorClasses is the number of OCOR priority levels.
	ocorClasses = 9
)

// Estimate is the model's answer for one configuration: the same headline
// quantities inpg.Results reports, as expectations rather than one seeded
// sample, plus the model's internal operating point (service period,
// per-acquire wait, hot-link load) for callers that want to reason about
// *why* — the pre-screener keys its region selection on these.
type Estimate struct {
	// Runtime is the expected ROI finish time in cycles.
	Runtime float64
	// Phase totals across threads, in cycles (Results.Parallel etc.).
	Parallel, COH, Sleep, CSE float64
	// CSCompleted is the total critical sections (exact, not estimated).
	CSCompleted int
	// CSPerKCycle is the critical-section throughput per 1000 cycles.
	CSPerKCycle float64
	// NetMeanLatency is the expected mean end-to-end packet latency.
	NetMeanLatency float64
	// LockReqLatency is the expected latency of a lock-class request
	// packet. Under OCOR it is the highest-priority class's latency from
	// the non-preemptive priority queue; otherwise it equals the FIFO
	// expectation at the same load.
	LockReqLatency float64
	// LinkUtilization is expected switched flits per router per cycle
	// (Results.FlitsSwitched / (Runtime × routers)).
	LinkUtilization float64

	// MeanHopsHome is the mean XY distance from the competing threads to
	// the lock home; MeanHopsUniform the mean distance of a uniform pair.
	MeanHopsHome, MeanHopsUniform float64
	// ServicePeriod is the effective serialized period per critical
	// section (the MVA server's service time, cycles).
	ServicePeriod float64
	// WaitPerAcquire is the expected queueing delay per lock acquire
	// beyond the uncontended protocol cost (cycles).
	WaitPerAcquire float64
	// HotLinkLoad is the estimated utilization of the most loaded link
	// near the lock home, the M/G/1 term's u.
	HotLinkLoad float64
	// Contended reports which regime dominates the runtime estimate:
	// true when the serialized lock chain (MVA) bound exceeds the
	// parallel-limited bound.
	Contended bool
}

// CSTime returns COH+Sleep+CSE, the quantity Figures 8b/11/14 are built
// on (Results.CSTime).
func (e Estimate) CSTime() float64 { return e.COH + e.Sleep + e.CSE }

// For estimates one configuration. It is a pure function of cfg — no
// randomness, no simulation — and costs microseconds: one MVA recursion
// over the thread count plus constant work.
func For(cfg inpg.Config) Estimate {
	return CoefFor(cfg.Lock, cfg.Mechanism).Estimate(cfg)
}

// Estimate runs the model under an explicit calibration row — the
// calibration fit and sensitivity studies use it; normal callers use For.
func (c Coef) Estimate(cfg inpg.Config) Estimate {
	w, h := cfg.MeshWidth, cfg.MeshHeight
	if w <= 0 || h <= 0 {
		return Estimate{}
	}
	nodes := w * h
	threads := cfg.Threads
	if threads == 0 {
		threads = nodes
	}
	csPer := cfg.CSPerThread
	if csPer <= 0 {
		csPer = 1
	}
	totalCS := threads * csPer
	p := fmean(cfg.ParallelCycles)
	cs := fmean(cfg.CSCycles)
	pj := float64(cfg.ParallelJitter)
	cj := float64(cfg.CSJitter)

	e := Estimate{CSCompleted: totalCS}
	e.MeanHopsHome = meanHopsToHome(w, h, threads, homeNode(cfg))
	e.MeanHopsUniform = meanHopsUniform(w, h)
	rttHome := 2 * hopCycles * e.MeanHopsHome // request there + response back

	// Per-acquire protocol costs from the calibration row, scaled by the
	// home round trip the coefficients are structured on.
	aUnc := c.AUncBase + c.AUncHop*rttHome
	csePer := cs + c.ECseBase + c.ECseHop*rttHome
	s := c.SBase + c.SHop*rttHome
	if s < 1 {
		s = 1
	}
	// Multiple independent locks divide the serialization: each lock
	// serves ~threads/LockCount competitors. Coarse — the model's accuracy
	// claim covers the single-hot-lock workloads of the paper.
	if cfg.LockCount > 1 {
		k := float64(cfg.LockCount)
		if k > float64(threads) {
			k = float64(threads)
		}
		s /= k
	}

	// Serialized bound via machine-repairman MVA: think time Z (parallel
	// compute plus the uncontended share of the acquire), service
	// interpolated between the uncontended lock occupancy SFloor×S (the
	// lock is only truly held for the CS body and transfer; backoff gaps
	// in the contended hand-off period don't block a lone acquirer) and
	// the full hand-off period S at saturation. SFloor > 1 encodes the
	// opposite: protocols whose hand-off degrades as spinner density
	// falls. The contention level is the server's share of the cycle
	// N·S/(Z+N·S): 1 when everyone queues, → 0 when think time dominates.
	z := p + aUnc
	ns := float64(threads) * s
	load := ns / (z + ns)
	floorS := c.SFloor
	if floorS <= 0 {
		floorS = 1 // uncalibrated row: no load dependence
	}
	sEff := s * (floorS + (1-floorS)*load)
	if sEff < 1 {
		sEff = 1
	}
	x, wMVA := mva(threads, z, sEff)
	rSer := p + float64(totalCS)/x

	// Waiting beyond the uncontended acquire: MVA's residence time minus
	// the own-service share. Vanishes smoothly in the parallel-limited
	// regime (queue length → 0 ⇒ W → S).
	wc := wMVA - sEff
	if wc < 0 {
		wc = 0
	}
	e.WaitPerAcquire = wc

	// Parallel-limited bound: every thread runs its own program including
	// its per-acquire waits; the ROI ends when the slowest finishes. The
	// slowest of N i.i.d. per-thread sums exceeds the mean by zMax
	// standard deviations.
	sigma := math.Sqrt(float64(csPer) * (sq(2*pj) + sq(2*cj)) / 12)
	rUnc := float64(csPer)*(p+csePer+aUnc+c.FCoh*wc) + zMax(threads)*sigma

	e.ServicePeriod = sEff
	e.Contended = rSer > rUnc
	e.Runtime = rSer
	if !e.Contended {
		e.Runtime = rUnc
	}
	e.CSPerKCycle = 1000 * float64(totalCS) / e.Runtime

	// Phase totals. Parallel is exact in expectation; CSE is per-CS; the
	// competition overhead is the uncontended acquire cost plus the
	// accounting share FCoh of the queueing wait (threads that finish
	// early stop waiting, so the share is below 1 for unfair locks).
	e.Parallel = float64(totalCS) * p
	e.CSE = float64(totalCS) * csePer
	waitAgg := float64(totalCS) * (aUnc + c.FCoh*wc)

	// QSL sleeps: a waiter that outlives its spin budget context-switches
	// out. With an exponential tail on the per-acquire wait, the sleep
	// probability is exp(-budget/wait); each episode costs two context
	// switches plus the wakeup latency plus the calibrated tail share of
	// the wait itself.
	if cfg.Lock == inpg.LockQSL && wc > 1 {
		retries := cfg.QSLRetries
		if retries <= 0 {
			retries = defaultQSLRetries
		}
		budget := float64(retries) * spinPollCycles
		ctx := defaultCtxSwitch
		if cfg.CtxSwitchCycles > 0 {
			ctx = float64(cfg.CtxSwitchCycles)
		}
		wake := defaultWakeup
		if cfg.WakeupCycles > 0 {
			wake = float64(cfg.WakeupCycles)
		}
		pSleep := math.Exp(-budget / wc)
		sleeps := float64(totalCS) * pSleep
		sleep := sleeps * (2*ctx + wake + c.STail*wc)
		if max := 0.95 * waitAgg; sleep > max {
			sleep = max
		}
		e.Sleep = sleep
	}
	e.COH = waitAgg - e.Sleep

	// Network load: each critical section moves a fixed protocol exchange
	// (hop-scaled — longer routes switch more flits) plus polling traffic
	// proportional to the time its acquirer spent waiting.
	flitsPerCS := (c.FBase + c.FBaseHop*rttHome) + (c.FWait+c.FWaitHop*rttHome)*wc
	if flitsPerCS < controlFlits {
		flitsPerCS = controlFlits
	}
	e.LinkUtilization = float64(totalCS) * flitsPerCS / (e.Runtime * float64(nodes))

	// Mean packet latency: geometric floor (pipeline depth × mean hops of
	// the home/background traffic mix, plus the calibrated serialization
	// and NI overhead) plus the M/G/1 contention term on the hot links
	// around the lock home. u is the hot-link utilization implied by the
	// achieved lock throughput.
	hMix := (e.MeanHopsHome + e.MeanHopsUniform) / 2
	floor := hopCycles*hMix + c.LSer
	u := (float64(totalCS) / e.Runtime) * c.FHotHop * rttHome
	if u > maxHotLoad {
		u = maxHotLoad
	}
	e.HotLinkLoad = u
	q := c.LGain * u / (1 - u)
	e.NetMeanLatency = floor + q

	// Lock-request latency: under OCOR the request travels in one of nine
	// head-of-line priority classes; quote the top class's wait. Without
	// priority arbitration lock requests queue FIFO like everyone else.
	e.LockReqLatency = hopCycles*e.MeanHopsHome + c.LSer + q
	if cfg.Mechanism == inpg.OCOR || cfg.Mechanism == inpg.INPGOCOR {
		waits := PriorityWaits(u, ocorClasses)
		// Relative to the FIFO wait at equal load: scale the calibrated
		// contention term by the top class's advantage.
		fifo := u / (1 - u)
		if fifo > 0 {
			e.LockReqLatency = hopCycles*e.MeanHopsHome + c.LSer + q*(waits[0]/fifo)
		}
	}
	return e
}

// maxHotLoad caps the hot-link utilization fed to the u/(1-u) contention
// term: the real network saturates (back-pressure throttles injection)
// rather than diverging.
const maxHotLoad = 0.96

// mva runs exact mean value analysis for the single-server machine-
// repairman network: n customers, think time z, service time s. Returns
// the system throughput x (customers per cycle) and the mean residence
// time w at the server (queueing + own service).
func mva(n int, z, s float64) (x, w float64) {
	if n <= 0 || s <= 0 {
		return math.Inf(1), 0
	}
	q := 0.0
	for k := 1; k <= n; k++ {
		w = s * (1 + q)
		x = float64(k) / (z + w)
		q = x * w
	}
	return x, w
}

// PriorityWaits returns the per-class mean queueing delays of a
// non-preemptive head-of-line priority M/G/1 queue at total utilization
// u, split evenly across n classes (class 0 highest priority), in units
// of the mean residual service time: W_k = u / ((1-σ_{k-1})(1-σ_k)) with
// σ_k the cumulative utilization of classes 0..k. This is the OCOR
// arbitration model: the nine remaining-times-of-retry levels are the
// classes, and a nearly-exhausted spinner's request rides class 0.
func PriorityWaits(u float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if u >= maxHotLoad {
		u = maxHotLoad
	}
	waits := make([]float64, n)
	per := u / float64(n)
	prev := 0.0
	for k := 0; k < n; k++ {
		cur := prev + per
		waits[k] = u / ((1 - prev) * (1 - cur))
		prev = cur
	}
	return waits
}

// zMax approximates the expected maximum of n i.i.d. sums in units of
// their standard deviation. The Gaussian order-statistic value is scaled
// by a calibrated 0.92: per-thread programs are sums of a handful of
// uniforms, whose tails run lighter than normal.
func zMax(n int) float64 {
	if n <= 1 {
		return 0
	}
	p := 1 - 1/(2*float64(n))
	return 0.92 * math.Sqrt2 * math.Erfinv(2*p-1)
}

// homeNode resolves the primary lock home the way inpg.New does.
func homeNode(cfg inpg.Config) int {
	if cfg.LockHomeNode >= 0 {
		return cfg.LockHomeNode
	}
	if cfg.MeshWidth > 5 && cfg.MeshHeight > 6 {
		return 6*cfg.MeshWidth + 5 // core (5,6)
	}
	return (cfg.MeshHeight/2)*cfg.MeshWidth + cfg.MeshWidth/2
}

// meanHopsToHome is the exact mean Manhattan distance from the first
// `threads` node IDs to the home node.
func meanHopsToHome(w, h, threads, home int) float64 {
	if threads <= 0 {
		return 0
	}
	hx, hy := home%w, home/w
	sum := 0
	for id := 0; id < threads; id++ {
		x, y := id%w, id/w
		sum += abs(x-hx) + abs(y-hy)
	}
	return float64(sum) / float64(threads)
}

// meanHopsUniform is the exact mean Manhattan distance between two
// independently uniform nodes of the w×h mesh: E|X-X'| per axis is
// (k²-1)/(3k) for k points.
func meanHopsUniform(w, h int) float64 {
	return axisMeanAbs(w) + axisMeanAbs(h)
}

func axisMeanAbs(k int) float64 {
	if k <= 1 {
		return 0
	}
	return (float64(k)*float64(k) - 1) / (3 * float64(k))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sq(v float64) float64 { return v * v }

// fmean clamps a configured mean cycle count the way the simulator's
// jitter closure does (minimum 1).
func fmean(v int) float64 {
	if v <= 0 {
		return 1
	}
	return float64(v)
}
