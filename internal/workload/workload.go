// Package workload provides the synthetic benchmark profiles standing in
// for the paper's PARSEC (10 programs) and SPEC OMP2012 (14 programs)
// workloads. Running the real suites requires a gem5 full-system image;
// instead, each program is characterized the way the paper itself
// characterizes them in Figure 8: by total critical-section accesses,
// average CPU cycles per critical section, and the surrounding parallel
// compute. The lock traffic itself is not synthesized — it emerges from
// executing the lock primitives over the coherence protocol.
//
// Totals and cycle counts are calibrated to the paper's published anchors
// (fluidanimate: 10,240 CS of ~81 cycles; imagick: 4,000 CS of ~179
// cycles) and to the Figure 8b grouping: sorted by total CS time, the
// first 6 programs form Group 1, the next 12 Group 2 and the heaviest 6
// Group 3.
package workload

import (
	"fmt"
	"sort"
)

// Suite names.
const (
	PARSEC  = "PARSEC"
	OMP2012 = "OMP2012"
)

// Profile characterizes one benchmark program (Figure 8a).
type Profile struct {
	Name      string // full program name
	ShortName string // paper's short label
	Suite     string
	// TotalCS is the total number of critical-section accesses in the ROI
	// across all threads.
	TotalCS int
	// AvgCSCycles is the mean critical-section length in CPU cycles.
	AvgCSCycles int
	// ParallelCycles is the mean per-thread parallel compute between
	// consecutive critical sections.
	ParallelCycles int
	// Group is the Figure 8b total-CS-time group (1 low, 2 medium,
	// 3 high), derived from the sorted profile list.
	Group int
}

// TotalCSTime returns the Figure 8b x-axis quantity: CS accesses × average
// cycles per CS.
func (p Profile) TotalCSTime() int { return p.TotalCS * p.AvgCSCycles }

func (p Profile) String() string {
	return fmt.Sprintf("%s(%s): %d CS × %d cyc, parallel %d, group %d",
		p.ShortName, p.Suite, p.TotalCS, p.AvgCSCycles, p.ParallelCycles, p.Group)
}

// raw profile table. Groups are computed, not stated.
var table = []Profile{
	// PARSEC (blackscholes and swaptions excluded, as in the paper).
	{Name: "bodytrack", ShortName: "body", Suite: PARSEC, TotalCS: 2500, AvgCSCycles: 90, ParallelCycles: 18000},
	{Name: "canneal", ShortName: "can", Suite: PARSEC, TotalCS: 3000, AvgCSCycles: 85, ParallelCycles: 15600},
	{Name: "dedup", ShortName: "dedup", Suite: PARSEC, TotalCS: 4000, AvgCSCycles: 110, ParallelCycles: 12000},
	{Name: "facesim", ShortName: "face", Suite: PARSEC, TotalCS: 9000, AvgCSCycles: 160, ParallelCycles: 3000},
	{Name: "ferret", ShortName: "ferret", Suite: PARSEC, TotalCS: 2800, AvgCSCycles: 95, ParallelCycles: 16800},
	{Name: "fluidanimate", ShortName: "fluid", Suite: PARSEC, TotalCS: 10240, AvgCSCycles: 81, ParallelCycles: 4800},
	{Name: "freqmine", ShortName: "freq", Suite: PARSEC, TotalCS: 7200, AvgCSCycles: 120, ParallelCycles: 7200},
	{Name: "streamcluster", ShortName: "stream", Suite: PARSEC, TotalCS: 4500, AvgCSCycles: 100, ParallelCycles: 10800},
	{Name: "vips", ShortName: "vips", Suite: PARSEC, TotalCS: 1000, AvgCSCycles: 70, ParallelCycles: 38400},
	{Name: "x264", ShortName: "x264", Suite: PARSEC, TotalCS: 800, AvgCSCycles: 60, ParallelCycles: 43200},

	// SPEC OMP2012 (all 14 programs).
	{Name: "applu331", ShortName: "applu", Suite: OMP2012, TotalCS: 3200, AvgCSCycles: 100, ParallelCycles: 14400},
	{Name: "bt331", ShortName: "bt331", Suite: OMP2012, TotalCS: 7800, AvgCSCycles: 150, ParallelCycles: 4200},
	{Name: "botsalgn", ShortName: "botsa", Suite: OMP2012, TotalCS: 1300, AvgCSCycles: 70, ParallelCycles: 33600},
	{Name: "botsspar", ShortName: "botss", Suite: OMP2012, TotalCS: 2600, AvgCSCycles: 105, ParallelCycles: 16800},
	{Name: "bwaves", ShortName: "bwaves", Suite: OMP2012, TotalCS: 900, AvgCSCycles: 80, ParallelCycles: 40800},
	{Name: "fma3d", ShortName: "fma3d", Suite: OMP2012, TotalCS: 3500, AvgCSCycles: 95, ParallelCycles: 13200},
	{Name: "ilbdc", ShortName: "ilbdc", Suite: OMP2012, TotalCS: 1100, AvgCSCycles: 75, ParallelCycles: 36000},
	{Name: "imagick", ShortName: "imag", Suite: OMP2012, TotalCS: 4000, AvgCSCycles: 179, ParallelCycles: 9600},
	{Name: "kdtree", ShortName: "kdtree", Suite: OMP2012, TotalCS: 8000, AvgCSCycles: 140, ParallelCycles: 3600},
	{Name: "md", ShortName: "md", Suite: OMP2012, TotalCS: 3800, AvgCSCycles: 120, ParallelCycles: 12000},
	{Name: "mgrid331", ShortName: "mgrid", Suite: OMP2012, TotalCS: 3000, AvgCSCycles: 110, ParallelCycles: 15000},
	{Name: "nab", ShortName: "nab", Suite: OMP2012, TotalCS: 9500, AvgCSCycles: 170, ParallelCycles: 2400},
	{Name: "smithwa", ShortName: "smithwa", Suite: OMP2012, TotalCS: 1200, AvgCSCycles: 65, ParallelCycles: 37200},
	{Name: "swim", ShortName: "swim", Suite: OMP2012, TotalCS: 2700, AvgCSCycles: 100, ParallelCycles: 16200},
}

// Profiles returns all 24 programs with groups assigned, in a stable
// order: ascending total CS time (the Figure 8b presentation order).
func Profiles() []Profile {
	out := make([]Profile, len(table))
	copy(out, table)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalCSTime() < out[j].TotalCSTime() })
	for i := range out {
		switch {
		case i < 6:
			out[i].Group = 1
		case i < 18:
			out[i].Group = 2
		default:
			out[i].Group = 3
		}
	}
	return out
}

// ByName returns the profile for a program (full or short name).
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name || p.ShortName == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown program %q", name)
}

// Group returns the programs of one Figure 8b group.
func Group(g int) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Group == g {
			out = append(out, p)
		}
	}
	return out
}

// CSPerThread scales the ROI's total CS count down to a per-thread quota
// for a simulation of the given size: the full ROI is impractically long,
// so experiments run a representative slice (documented in DESIGN.md).
// The result is never below 2 so every thread contends at least twice.
func (p Profile) CSPerThread(threads int, scale float64) int {
	n := int(float64(p.TotalCS) / float64(threads) * scale)
	if n < 2 {
		n = 2
	}
	return n
}
