package workload

import "testing"

func TestTwentyFourPrograms(t *testing.T) {
	ps := Profiles()
	if len(ps) != 24 {
		t.Fatalf("got %d programs, want 24", len(ps))
	}
	parsec, omp := 0, 0
	for _, p := range ps {
		switch p.Suite {
		case PARSEC:
			parsec++
		case OMP2012:
			omp++
		default:
			t.Fatalf("%s has unknown suite %q", p.Name, p.Suite)
		}
	}
	if parsec != 10 || omp != 14 {
		t.Fatalf("suite split %d/%d, want 10 PARSEC / 14 OMP2012", parsec, omp)
	}
}

func TestGroupsAre6_12_6SortedByCSTime(t *testing.T) {
	ps := Profiles()
	counts := map[int]int{}
	for i, p := range ps {
		counts[p.Group]++
		if i > 0 && ps[i-1].TotalCSTime() > p.TotalCSTime() {
			t.Fatalf("profiles not sorted by total CS time at %d", i)
		}
	}
	if counts[1] != 6 || counts[2] != 12 || counts[3] != 6 {
		t.Fatalf("group sizes = %v, want 6/12/6", counts)
	}
	// Group boundaries must respect the ordering.
	for i, p := range ps {
		want := 2
		if i < 6 {
			want = 1
		} else if i >= 18 {
			want = 3
		}
		if p.Group != want {
			t.Fatalf("%s at rank %d has group %d, want %d", p.ShortName, i, p.Group, want)
		}
	}
}

func TestPaperAnchors(t *testing.T) {
	fluid, err := ByName("fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	if fluid.TotalCS != 10240 {
		t.Fatalf("fluidanimate CS = %d, want the paper's 10,240", fluid.TotalCS)
	}
	if fluid.AvgCSCycles < 75 || fluid.AvgCSCycles > 90 {
		t.Fatalf("fluidanimate cycles/CS = %d, want ≈81", fluid.AvgCSCycles)
	}
	imag, err := ByName("imagick")
	if err != nil {
		t.Fatal(err)
	}
	if imag.TotalCS != 4000 || imag.AvgCSCycles != 179 {
		t.Fatalf("imagick = %d×%d, want the paper's 4,000×179", imag.TotalCS, imag.AvgCSCycles)
	}
}

func TestHeadlinePlacements(t *testing.T) {
	// nab (max iNPG CS expedition) and bt331 (max ROI gain) are heavy
	// programs in the paper; they must land in Group 3.
	for _, name := range []string{"nab", "bt331", "facesim", "kdtree", "fluidanimate", "freqmine"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Group != 3 {
			t.Fatalf("%s in group %d, want 3", name, p.Group)
		}
	}
}

func TestByNameShortAndFull(t *testing.T) {
	a, err := ByName("freq")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("freqmine")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Fatal("short and full names must resolve to the same profile")
	}
	if _, err := ByName("quake3"); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestGroupSelector(t *testing.T) {
	for g := 1; g <= 3; g++ {
		for _, p := range Group(g) {
			if p.Group != g {
				t.Fatalf("Group(%d) returned %s with group %d", g, p.ShortName, p.Group)
			}
		}
	}
	if len(Group(1))+len(Group(2))+len(Group(3)) != 24 {
		t.Fatal("groups don't partition the programs")
	}
}

func TestCSPerThreadScaling(t *testing.T) {
	p, _ := ByName("fluid")
	if got := p.CSPerThread(64, 0.05); got != 8 {
		t.Fatalf("fluid quota = %d, want 8 (10240/64×0.05)", got)
	}
	small, _ := ByName("x264")
	if got := small.CSPerThread(64, 0.05); got != 2 {
		t.Fatalf("x264 quota = %d, want floor of 2", got)
	}
}

func TestDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if seen[p.ShortName] || seen[p.Name] {
			t.Fatalf("duplicate name %s/%s", p.Name, p.ShortName)
		}
		seen[p.ShortName] = true
		seen[p.Name] = true
	}
}
