package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// walPath creates a WAL in a temp dir and returns its path.
func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), WALFilename("w"))
}

// appendAll writes a sequence of events through a fresh WAL handle.
func appendAll(t *testing.T, path string, events ...Event) {
	t.Helper()
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, e := range events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALReplayRoundTrip: a full campaign's event sequence replays into
// the dispatch state the events describe — grants, acceptances,
// failures, reclaims, adoptions, quarantine and the surviving orphan.
func TestWALReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	appendAll(t, path,
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 4,
			Digests: map[int]string{0: "d0", 1: "d1", 2: "d2", 3: "d3"}},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "w-0000-1", Index: 0, Worker: "a", Digest: "d0"},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "w-0001-2", Index: 1, Worker: "b", Digest: "d1"},
		Event{Type: EventCompletionAccepted, Sweep: "w", Lease: "w-0000-1", Index: 0, Worker: "a", Digest: "d0", OK: true},
		Event{Type: EventLeaseReclaimed, Sweep: "w", Lease: "w-0001-2", Index: 1, Worker: "b"},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "w-0001-3", Index: 1, Worker: "a", Digest: "d1"},
		Event{Type: EventCompletionAccepted, Sweep: "w", Lease: "w-0001-3", Index: 1, Worker: "a", Digest: "d1", OK: true, Late: true},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "w-0002-4", Index: 2, Worker: "b", Digest: "d2"},
		Event{Type: EventCompletionAccepted, Sweep: "w", Lease: "w-0002-4", Index: 2, Worker: "b", Digest: "d2",
			OK: false, Cause: "error", Error: "boom", Attempt: 1},
		Event{Type: EventCellQuarantined, Sweep: "w", Index: 2, Worker: "b", Digest: "d2",
			Cause: "error", Error: "boom", Attempt: 1},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "w-0003-5", Index: 3, Worker: "b", Digest: "d3"},
	)
	rep, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sweep != "w" || rep.Cells != 4 || rep.Closed || rep.TornTail {
		t.Fatalf("replay header = %+v", rep)
	}
	if rep.Grants != 5 || rep.Reclaims != 1 || rep.LateAccepts != 1 {
		t.Fatalf("counters: grants=%d reclaims=%d late=%d", rep.Grants, rep.Reclaims, rep.LateAccepts)
	}
	if rep.Accepted[0] != 1 || rep.Accepted[1] != 1 || rep.Accepted[2] != 0 {
		t.Fatalf("accepted = %v", rep.Accepted)
	}
	if rep.Dispatches[1] != 2 {
		t.Fatalf("dispatches[1] = %d, want 2", rep.Dispatches[1])
	}
	if q := rep.Quarantined[2]; q == nil || q.Cause != "error" || q.Error != "boom" {
		t.Fatalf("quarantined[2] = %+v", rep.Quarantined[2])
	}
	if len(rep.Failures[2]) != 1 || rep.Failures[2][0].Worker != "b" {
		t.Fatalf("failures[2] = %+v", rep.Failures[2])
	}
	// Only cell 3's lease survives: 0/1 were accepted, 2 quarantined.
	if len(rep.Orphans) != 1 || rep.Orphans[0].Lease != "w-0003-5" ||
		rep.Orphans[0].Index != 3 || rep.Orphans[0].Worker != "b" || rep.Orphans[0].Digest != "d3" {
		t.Fatalf("orphans = %+v", rep.Orphans)
	}
	if rep.WorkerCompletions["a"] != 2 || rep.WorkerCompletions["b"] != 0 {
		t.Fatalf("worker completions = %v", rep.WorkerCompletions)
	}
}

// TestWALReplayTornTail: a crash mid-append leaves a final partial line;
// replay drops exactly that line, keeps everything before it, and flags
// TornTail. Replay is also pure — the file's bytes are untouched, so a
// crash *during* replay leaves the identical log for the next restart.
func TestWALReplayTornTail(t *testing.T) {
	path := walPath(t)
	appendAll(t, path,
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 1, Digests: map[int]string{0: "d0"}},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "L1", Index: 0, Worker: "a", Digest: "d0"},
	)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"completion-acc`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.Events != 2 {
		t.Fatalf("torn replay = events %d torn %v", rep.Events, rep.TornTail)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0].Lease != "L1" {
		t.Fatalf("orphans after torn tail = %+v", rep.Orphans)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("replay modified the log file")
	}
	// Replay again: same answer — a crash during replay changes nothing.
	rep2, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Events != rep.Events || !rep2.TornTail || len(rep2.Orphans) != 1 {
		t.Fatalf("second replay diverged: %+v", rep2)
	}
}

// TestWALReplayMidFileCorruption: everything before the tail was
// acknowledged as fsynced, so a corrupt record that is NOT the last line
// is an error, never silently skipped.
func TestWALReplayMidFileCorruption(t *testing.T) {
	path := walPath(t)
	appendAll(t, path,
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 1, Digests: map[int]string{0: "d0"}},
	)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{garbage\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	appendAll(t, path,
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "L1", Index: 0, Worker: "a", Digest: "d0"},
	)
	if _, err := ReplayWAL(path); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("mid-file corruption error = %v, want corrupt record", err)
	}
}

// TestWALReplayRejectsMalformedLogs: a log not starting with
// campaign-open, a duplicate open, and an unknown event type are all
// hard errors.
func TestWALReplayRejectsMalformedLogs(t *testing.T) {
	noOpen := walPath(t)
	appendAll(t, noOpen,
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "L1", Index: 0, Worker: "a", Digest: "d0"},
	)
	if _, err := ReplayWAL(noOpen); err == nil || !strings.Contains(err.Error(), "campaign-open") {
		t.Fatalf("missing open error = %v", err)
	}

	dupOpen := walPath(t)
	appendAll(t, dupOpen,
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 1, Digests: map[int]string{0: "d0"}},
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 1, Digests: map[int]string{0: "d0"}},
	)
	if _, err := ReplayWAL(dupOpen); err == nil || !strings.Contains(err.Error(), "duplicate campaign-open") {
		t.Fatalf("duplicate open error = %v", err)
	}

	unknown := walPath(t)
	appendAll(t, unknown,
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 1, Digests: map[int]string{0: "d0"}},
		Event{Type: EventType("mystery"), Sweep: "w"},
	)
	if _, err := ReplayWAL(unknown); err == nil || !strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("unknown type error = %v", err)
	}
}

// TestWALClosedAndAdoption: a close event marks the log sealed; an
// adoption re-keys the outstanding lease so a later acceptance on the
// adopted lease clears it.
func TestWALClosedAndAdoption(t *testing.T) {
	path := walPath(t)
	appendAll(t, path,
		Event{Type: EventCampaignOpen, Sweep: "w", Cells: 1, Digests: map[int]string{0: "d0"}},
		Event{Type: EventLeaseGranted, Sweep: "w", Lease: "L1", Index: 0, Worker: "a", Digest: "d0"},
		Event{Type: EventCoordinatorReplayed, Sweep: "w", Orphans: 1},
		Event{Type: EventLeaseAdopted, Sweep: "w", Lease: "L1", Index: 0, Worker: "a", Digest: "d0"},
		Event{Type: EventCompletionAccepted, Sweep: "w", Lease: "L1", Index: 0, Worker: "a", Digest: "d0", OK: true},
		Event{Type: EventCampaignClose, Sweep: "w"},
	)
	rep, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Restarts != 1 || rep.Adoptions != 1 {
		t.Fatalf("replay = closed %v restarts %d adoptions %d", rep.Closed, rep.Restarts, rep.Adoptions)
	}
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans = %+v, want none (accepted)", rep.Orphans)
	}
}
