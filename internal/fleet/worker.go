package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// discardLog swallows structured logs when no logger is configured.
var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// Worker defaults.
const (
	// DefaultPollInterval paces an idle worker's lease polls.
	DefaultPollInterval = 250 * time.Millisecond
	// DefaultReconnectBase / DefaultReconnectMax bound the exponential
	// backoff a worker applies while the coordinator is unreachable.
	DefaultReconnectBase = 100 * time.Millisecond
	DefaultReconnectMax  = 5 * time.Second
)

// WorkerConfig tunes a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port";
	// the scheme is added when missing).
	Coordinator string
	// ID identifies this worker to the coordinator; defaults to
	// "<hostname>-<pid>".
	ID string
	// Slots is how many cells this worker executes concurrently
	// (default 1). Each slot is an independent poll/execute loop, the
	// fleet's analogue of runner.Policy.Workers.
	Slots int
	// PollInterval paces lease polls while the coordinator has no work.
	PollInterval time.Duration
	// ReconnectBase and ReconnectMax bound the exponential backoff while
	// the coordinator is unreachable.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Token is the fleet's shared bearer secret; sent as
	// "Authorization: Bearer <token>" on every request when non-empty.
	Token string

	// ChaosKillAfter, when > 0, kills the worker (via Exit) immediately
	// after it acquires its Nth lease — mid-lease, before completing —
	// to exercise lease reclaim. Counted across slots.
	ChaosKillAfter int
	// ChaosDropRate, when > 0, is the probability that a completion's
	// response is "lost": the report is delivered, the acknowledgement
	// discarded, and the worker resends — exercising the coordinator's
	// duplicate detection. Decisions are a deterministic keyed hash of
	// (ChaosSeed, lease ID).
	ChaosDropRate float64
	// ChaosSeed keys the drop decisions.
	ChaosSeed int64

	// Exit is called to kill the process on chaos kill (default
	// os.Exit); tests inject a recorder so the "kill" stays in-process.
	Exit func(code int)
	// Sleep overrides the blocking waits in the poll/reconnect/deliver
	// loops (tests drive them with a fake clock); nil selects time.Sleep.
	Sleep func(d time.Duration)
	// Log, when set, receives structured worker lifecycle records; every
	// record carries a "worker" attribute and lease-scoped records add
	// cell/lease/digest. Nil discards.
	Log *slog.Logger
	// HTTPClient overrides the transport (tests); nil selects a plain
	// http.Client.
	HTTPClient *http.Client
}

// Worker polls a coordinator for leases and executes them through the
// resilient attempt machinery of internal/runner, streaming completions
// back. It survives coordinator restarts (exponential-backoff reconnect)
// and drains gracefully on request: the leased cell finishes, new ones
// are declined.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	log    *slog.Logger

	draining atomic.Bool
	killed   atomic.Bool

	leasesAcquired atomic.Int64
	completed      atomic.Int64

	// lastSnap caches the most recent completed cell's metric snapshot;
	// heartbeats attach it so the coordinator's /metrics endpoint has a
	// live fleet-wide telemetry view.
	lastSnap atomic.Pointer[metrics.Snapshot]
}

// NewWorker builds a worker; Run starts it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Coordinator != "" && !strings.Contains(cfg.Coordinator, "://") {
		cfg.Coordinator = "http://" + cfg.Coordinator
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = DefaultReconnectBase
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	if cfg.Exit == nil {
		cfg.Exit = os.Exit
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	log := cfg.Log
	if log == nil {
		log = discardLog
	}
	return &Worker{cfg: cfg, client: client, log: log.With("worker", cfg.ID)}
}

// ID returns the worker's fleet identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Completed returns how many leases this worker has completed (accepted
// or deduplicated).
func (w *Worker) Completed() int64 { return w.completed.Load() }

// Drain puts the worker into graceful-shutdown mode: slots finish the
// cell they hold and then decline further leases, so Run returns once
// in-flight work is delivered. Safe to call from a signal handler.
func (w *Worker) Drain() {
	if w.draining.CompareAndSwap(false, true) {
		w.log.Info("draining: finishing leased cells, declining new ones")
	}
}

// Draining reports whether Drain was called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Run serves leases until the coordinator orders shutdown, Drain
// finishes the in-flight cells, or chaos kills the worker. It blocks for
// the worker's lifetime.
func (w *Worker) Run() {
	var wg sync.WaitGroup
	for s := 0; s < w.cfg.Slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slotLoop(slot)
		}(s)
	}
	wg.Wait()
}

// slotLoop is one slot's poll/execute cycle.
func (w *Worker) slotLoop(slot int) {
	connectFails := 0
	for {
		if w.draining.Load() || w.killed.Load() {
			return
		}
		var resp LeaseResponse
		status, err := w.postJSON(PathLease, LeaseRequest{Worker: w.cfg.ID}, &resp)
		if err != nil || status/100 != 2 {
			connectFails++
			d := reconnectDelay(connectFails, w.cfg.ReconnectBase, w.cfg.ReconnectMax)
			if connectFails == 1 || connectFails%10 == 0 {
				w.log.Warn("coordinator unreachable; retrying",
					"tries", connectFails, "err", err, "retry_in", d)
			}
			w.cfg.Sleep(d)
			continue
		}
		if connectFails > 0 {
			w.log.Info("coordinator reachable again", "tries", connectFails)
			connectFails = 0
		}
		if resp.Shutdown {
			w.log.Info("coordinator ordered shutdown")
			return
		}
		if resp.Lease == nil {
			w.cfg.Sleep(w.cfg.PollInterval)
			continue
		}
		n := w.leasesAcquired.Add(1)
		if w.cfg.ChaosKillAfter > 0 && n >= int64(w.cfg.ChaosKillAfter) {
			// Die holding the lease: no completion, no more heartbeats —
			// the coordinator's reclaim machinery must recover the cell.
			w.killed.Store(true)
			w.log.Warn("chaos kill holding lease",
				"lease", resp.Lease.ID, "cell", resp.Lease.Index)
			w.cfg.Exit(1)
			return
		}
		w.execute(resp.Lease)
	}
}

// execute runs one leased cell under heartbeats and delivers the
// completion.
func (w *Worker) execute(l *Lease) {
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(l, stopHB)
	}()

	res, snap, wall, attempt, rerr := runner.RunOne(l.Config, runner.Policy{
		Retries:    l.Retries,
		RunTimeout: time.Duration(l.RunTimeoutNanos),
		Log:        w.log.With("cell", l.Index, "digest", l.Digest),
	})
	close(stopHB)
	hbWG.Wait()
	if snap != nil {
		w.lastSnap.Store(snap)
	}

	rep := CompletionReport{
		Worker: w.cfg.ID, LeaseID: l.ID, Sweep: l.Sweep, Index: l.Index,
		Digest: l.Digest, OK: rerr == nil, Res: res, Snapshot: snap,
		WallSeconds: wall, Attempt: attempt,
	}
	if rerr != nil {
		rep.Error = rerr.Error()
		rep.Cause = string(rerr.Cause)
	}
	w.deliver(l, rep)
	w.completed.Add(1)
}

// heartbeatLoop renews the lease at TTL/3 until stopped or the
// coordinator reports the lease gone (the run keeps going either way:
// a digest-matched late completion is still worth delivering). A
// Reannounce answer — a restarted coordinator replayed this lease from
// its log — triggers the adoption handshake: the worker re-registers the
// cell it holds (index + digest + attempt) so the new incarnation can
// cross-check and adopt it instead of reclaiming and redoing the work.
func (w *Worker) heartbeatLoop(l *Lease, stop chan struct{}) {
	interval := time.Duration(l.TTLMillis) * time.Millisecond / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			var resp HeartbeatResponse
			status, err := w.postJSON(PathHeartbeat, HeartbeatRequest{
				Worker: w.cfg.ID, LeaseID: l.ID,
				Snapshot: w.lastSnap.Load(),
			}, &resp)
			if err != nil || status/100 != 2 {
				continue // transient; the next tick retries
			}
			if resp.Reannounce {
				if !w.adopt(l) {
					w.log.Info("lease not adopted after coordinator restart; finishing anyway",
						"lease", l.ID, "cell", l.Index)
					return
				}
				continue
			}
			if resp.Gone {
				w.log.Info("lease gone (cell reclaimed); finishing anyway",
					"lease", l.ID, "cell", l.Index)
				return
			}
		}
	}
}

// adopt re-registers a held lease with a restarted coordinator. A
// transient delivery failure reports success (true) so the heartbeat
// loop keeps running and the next Reannounce retries the handshake; a
// definitive Gone reports false.
func (w *Worker) adopt(l *Lease) bool {
	var resp AdoptResponse
	status, err := w.postJSON(PathAdopt, AdoptRequest{
		Worker: w.cfg.ID, LeaseID: l.ID, Sweep: l.Sweep,
		Index: l.Index, Digest: l.Digest,
	}, &resp)
	if err != nil || status/100 != 2 {
		return true // transient; the next heartbeat re-announces
	}
	if resp.Adopted {
		w.log.Info("lease adopted by restarted coordinator",
			"lease", l.ID, "cell", l.Index)
		return true
	}
	return false
}

// deliver sends a completion report until the coordinator acknowledges
// it (or permanently rejects it with a digest conflict). Under
// ChaosDropRate the first acknowledgement is deterministically "lost"
// and the report resent, exercising duplicate detection.
func (w *Worker) deliver(l *Lease, rep CompletionReport) {
	dropOnce := w.chaosDrop(l.ID)
	connectFails := 0
	for {
		var resp CompletionResponse
		status, err := w.postJSON(PathComplete, rep, &resp)
		switch {
		case err == nil && status == http.StatusConflict:
			w.log.Error("completion rejected: digest conflict",
				"cell", l.Index, "digest", rep.Digest)
			return
		case err != nil || status/100 != 2:
			connectFails++
			w.cfg.Sleep(reconnectDelay(connectFails, w.cfg.ReconnectBase, w.cfg.ReconnectMax))
			continue
		}
		connectFails = 0
		if dropOnce {
			// Chaos: the report arrived but the acknowledgement is "lost";
			// resend and let the coordinator dedup.
			dropOnce = false
			w.log.Warn("chaos drop of completion ack; resending", "lease", l.ID)
			continue
		}
		if resp.Duplicate {
			w.log.Info("completion was a duplicate (first write won)", "cell", l.Index)
		}
		return
	}
}

// chaosDrop decides deterministically whether this lease's completion
// acknowledgement is dropped once.
func (w *Worker) chaosDrop(leaseID string) bool {
	if w.cfg.ChaosDropRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "drop/%d/%s", w.cfg.ChaosSeed, leaseID)
	return float64(h.Sum64()%1_000_000)/1_000_000 < w.cfg.ChaosDropRate
}

// reconnectDelay is the exponential backoff schedule for an unreachable
// coordinator.
func reconnectDelay(fails int, base, max time.Duration) time.Duration {
	if fails <= 0 {
		return 0
	}
	shift := uint(fails - 1)
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d <= 0 || d > max {
		d = max
	}
	return d
}

// postJSON posts a JSON body to the coordinator (with the bearer token
// when configured) and decodes the JSON response into out (when non-nil
// and the status is 2xx).
func (w *Worker) postJSON(path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
