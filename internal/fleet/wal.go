package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// The campaign write-ahead log.
//
// Every dispatch-state transition of a campaign is appended — and
// fsynced — to campaign-<sweep>.wal in the manifest directory *before*
// the worker that caused it sees the response. A coordinator that
// crashes mid-campaign can therefore be restarted against the same
// directory and reconstruct the queue, the resolved set, the quarantine
// ledger and the outstanding leases by replaying the log, cross-checked
// against the per-run manifests (which remain the source of truth for
// results: a logged acceptance whose manifest never landed is simply
// re-run, and digest-matched idempotency makes the rerun land on the
// identical bytes). The campaign-<sweep>.json journal is the log's
// compaction: it is written first, then the close event seals the log.
//
// Replay is deliberately order-tolerant across leases: concurrent
// handlers append their events outside the coordinator lock, so two
// events for *different* leases may land in either order. Per lease the
// order is fixed (grant before adopt before accept/reclaim, because the
// grant is durable before the worker learns the lease exists), and the
// replay state machine keys on lease IDs and cell indexes, never on
// global position.

// EventType tags one WAL record.
type EventType string

// The WAL event vocabulary.
const (
	// EventCampaignOpen is the first record of a fresh campaign: sweep
	// name, cell count and the full index→digest map, the fingerprint a
	// restart validates before trusting the log.
	EventCampaignOpen EventType = "campaign-open"
	// EventLeaseGranted records a cell handed to a worker, durable
	// before the lease response is sent.
	EventLeaseGranted EventType = "lease-granted"
	// EventLeaseAdopted records a restarted coordinator re-accepting a
	// lease granted by a previous incarnation (via /fleet/adopt or by a
	// completion arriving directly on the orphaned lease).
	EventLeaseAdopted EventType = "lease-adopted"
	// EventLeaseReclaimed records an expired lease's cell returning to
	// the queue.
	EventLeaseReclaimed EventType = "lease-reclaimed"
	// EventCompletionAccepted records a digest-matched completion being
	// folded into the campaign (OK or failed; duplicates are dropped
	// without a record — they change nothing).
	EventCompletionAccepted EventType = "completion-accepted"
	// EventCellQuarantined records a cell retired with a typed error
	// after enough distinct workers failed its digest.
	EventCellQuarantined EventType = "cell-quarantined"
	// EventCoordinatorReplayed is appended by each restarted incarnation
	// after it replayed the log — the durable trace of every outage.
	EventCoordinatorReplayed EventType = "coordinator-replayed"
	// EventCampaignClose seals the log after the journal snapshot
	// (the compaction) was durably written; a closed log is never
	// replayed.
	EventCampaignClose EventType = "campaign-close"
)

// Event is one WAL record. Field use depends on Type; unused fields are
// omitted from the JSON line.
type Event struct {
	Type EventType `json:"type"`

	// Campaign-scoped fields (campaign-open; Sweep on every
	// campaign-level event for auditability).
	Sweep   string         `json:"sweep,omitempty"`
	Cells   int            `json:"cells,omitempty"`
	Digests map[int]string `json:"digests,omitempty"`

	// Lease- and cell-scoped fields.
	Lease  string `json:"lease,omitempty"`
	Index  int    `json:"index"`
	Worker string `json:"worker,omitempty"`
	Digest string `json:"digest,omitempty"`

	// Completion fields (completion-accepted, cell-quarantined).
	OK      bool   `json:"ok,omitempty"`
	Late    bool   `json:"late,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// Replay summary fields (coordinator-replayed).
	Orphans  int `json:"orphans,omitempty"`
	Resolved int `json:"resolved,omitempty"`
}

// WALFilename returns the write-ahead log's conventional file name
// within a sweep output directory. The .wal extension keeps it out of
// manifest.ScanDir (which matches .json only) and of the journal reader.
func WALFilename(sweep string) string {
	return fmt.Sprintf("campaign-%s.wal", sweep)
}

// WAL is an append-only, fsync-per-record event log. Appends are
// serialized internally; the coordinator calls Append outside its own
// lock so fsync latency never blocks unrelated handlers.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, path: path}, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Append marshals the event as one JSON line, writes it and fsyncs
// before returning: once Append returns nil the event survives a crash.
func (w *WAL) Append(e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal %s: append after close", w.path)
	}
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close releases the file handle. Idempotent; it appends nothing — a
// log is sealed by an EventCampaignClose record, not by closing the fd
// (a crash closes the fd too).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Failure is one accepted failed completion, reconstructed from the log.
type Failure struct {
	Worker  string
	Cause   string
	Error   string
	Attempt int
}

// Orphan is a lease that was granted (or adopted) by a previous
// coordinator incarnation and never resolved: its worker may still be
// executing the cell. A restarted coordinator re-installs orphans so
// that in-flight work can be adopted instead of redone.
type Orphan struct {
	Lease  string
	Index  int
	Worker string
	Digest string
}

// Replay is the dispatch state reconstructed from a WAL.
type Replay struct {
	Sweep   string
	Cells   int
	Digests map[int]string
	// Closed reports an EventCampaignClose record: the campaign finished
	// and was compacted into the journal snapshot; there is nothing to
	// resume.
	Closed bool
	// Restarts counts coordinator-replayed records: how many prior
	// incarnations already replayed this log.
	Restarts int
	// Events is the number of well-formed records read; TornTail reports
	// that a final, partially written line was dropped (the signature of
	// a crash mid-append — everything before it is intact and fsynced).
	Events   int
	TornTail bool

	// Grants counts lease-granted records — the floor for the restarted
	// coordinator's lease sequence, so fresh lease IDs never collide
	// with replayed ones.
	Grants int
	// Accepted counts accepted OK completions per cell index. The cell
	// is only *resolved* if its manifest is on disk with the matching
	// digest; an acceptance without a manifest is re-run.
	Accepted map[int]int
	// Failures lists accepted failed completions per cell index
	// (restores the distinct-worker quarantine votes).
	Failures map[int][]Failure
	// Quarantined maps retired cells to their final typed failure.
	Quarantined map[int]*Failure
	// Dispatches counts grants per cell (restores attempt accounting).
	Dispatches map[int]int
	// Orphans are the leases still outstanding at the crash, minus any
	// whose cell was meanwhile resolved or quarantined.
	Orphans []Orphan

	Reclaims          int
	Adoptions         int
	LateAccepts       int
	WorkerCompletions map[string]int
}

// ReplayWAL reads a campaign log and reconstructs its dispatch state.
// It is read-only and pure: the file's bytes are never modified, so a
// crash *during* replay changes nothing and the next restart sees the
// identical log (pinned by test). A torn final line — a crash mid-append
// — is dropped with TornTail set; corruption anywhere else is an error,
// because everything before the tail was acknowledged as fsynced and
// must parse.
func ReplayWAL(path string) (*Replay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Replay{
		Digests:           map[int]string{},
		Accepted:          map[int]int{},
		Failures:          map[int][]Failure{},
		Quarantined:       map[int]*Failure{},
		Dispatches:        map[int]int{},
		WorkerCompletions: map[string]int{},
	}
	lines := bytes.Split(data, []byte("\n"))
	// Trim trailing empty fragments (a well-formed log ends with '\n').
	last := len(lines) - 1
	for last >= 0 && len(bytes.TrimSpace(lines[last])) == 0 {
		last--
	}
	outstanding := map[string]Orphan{}
	for i := 0; i <= last; i++ {
		line := bytes.TrimSpace(lines[i])
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			if i == last {
				rep.TornTail = true
				break
			}
			return nil, fmt.Errorf("wal %s: corrupt record %d (not the tail): %w", path, i+1, err)
		}
		rep.Events++
		switch e.Type {
		case EventCampaignOpen:
			if rep.Sweep != "" {
				return nil, fmt.Errorf("wal %s: duplicate campaign-open (record %d)", path, i+1)
			}
			rep.Sweep, rep.Cells = e.Sweep, e.Cells
			for idx, d := range e.Digests {
				rep.Digests[idx] = d
			}
		case EventLeaseGranted:
			rep.Grants++
			rep.Dispatches[e.Index]++
			outstanding[e.Lease] = Orphan{Lease: e.Lease, Index: e.Index, Worker: e.Worker, Digest: e.Digest}
		case EventLeaseAdopted:
			rep.Adoptions++
			outstanding[e.Lease] = Orphan{Lease: e.Lease, Index: e.Index, Worker: e.Worker, Digest: e.Digest}
		case EventLeaseReclaimed:
			rep.Reclaims++
			delete(outstanding, e.Lease)
		case EventCompletionAccepted:
			delete(outstanding, e.Lease)
			if e.Late {
				rep.LateAccepts++
			}
			if e.OK {
				rep.Accepted[e.Index]++
				rep.WorkerCompletions[e.Worker]++
			} else {
				rep.Failures[e.Index] = append(rep.Failures[e.Index],
					Failure{Worker: e.Worker, Cause: e.Cause, Error: e.Error, Attempt: e.Attempt})
			}
		case EventCellQuarantined:
			rep.Quarantined[e.Index] = &Failure{Worker: e.Worker, Cause: e.Cause, Error: e.Error, Attempt: e.Attempt}
		case EventCoordinatorReplayed:
			rep.Restarts++
		case EventCampaignClose:
			rep.Closed = true
		default:
			return nil, fmt.Errorf("wal %s: unknown event type %q (record %d)", path, e.Type, i+1)
		}
	}
	if rep.Events > 0 && rep.Sweep == "" {
		return nil, fmt.Errorf("wal %s: first record is not campaign-open", path)
	}
	// A lease whose cell was meanwhile resolved or quarantined is moot:
	// its worker's eventual completion will be deduplicated by digest.
	for id, o := range outstanding {
		if rep.Accepted[o.Index] > 0 || rep.Quarantined[o.Index] != nil {
			delete(outstanding, id)
		}
	}
	for _, o := range outstanding {
		rep.Orphans = append(rep.Orphans, o)
	}
	sort.Slice(rep.Orphans, func(i, j int) bool { return rep.Orphans[i].Lease < rep.Orphans[j].Lease })
	return rep, nil
}
