package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"inpg"
	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is how long a granted lease lives without a
	// heartbeat: long enough that an ordinary heartbeat cadence (TTL/3)
	// survives scheduling hiccups, short enough that a killed worker's
	// cells are re-dispatched within seconds.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultQuarantineAfter is how many distinct workers must fail the
	// same digest before the coordinator quarantines the cell instead of
	// re-dispatching it: two independent machines failing the same
	// configuration points at the cell, not the host.
	DefaultQuarantineAfter = 2
)

// Config tunes a Coordinator. The zero value selects every default.
type Config struct {
	// LeaseTTL is the lease time-to-live (DefaultLeaseTTL when 0).
	LeaseTTL time.Duration
	// QuarantineAfter quarantines a cell once this many distinct workers
	// have failed its digest (DefaultQuarantineAfter when 0). As a
	// backstop against a single-worker fleet bouncing one bad cell
	// forever, a cell is also quarantined after 2×QuarantineAfter total
	// failures regardless of how many workers produced them.
	QuarantineAfter int
	// ManifestDir, when set, receives the campaign journal
	// (campaign-<sweep>.json) at the end of every campaign. Per-run
	// manifests are written by the same observer plumbing local sweeps
	// use, not by the coordinator itself.
	ManifestDir string
	// Log, when set, receives structured records: one summary per
	// campaign and infrastructure warnings, tagged with sweep, cell,
	// worker and digest where applicable. Nil discards them.
	Log *slog.Logger
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

// cell is one sweep configuration's dispatch state.
type cell struct {
	index      int
	cfg        inpg.Config
	digest     string
	state      cellState
	leaseID    string // current lease, "" when pending/done
	dispatches int

	res  *inpg.Results
	err  *runner.RunError
	wall float64

	failedBy  map[string]bool // distinct workers that reported failure
	failCount int
}

// lease is one outstanding grant.
type lease struct {
	id      string
	index   int
	worker  string
	expires time.Time
}

// workerInfo is the coordinator's view of one worker.
type workerInfo struct {
	id        string
	num       int
	lastSeen  time.Time
	completed int
	failed    int
	// snap is the latest metric snapshot the worker attached to a
	// heartbeat — its most recent completed cell's telemetry, the live
	// component of the coordinator's /metrics view.
	snap *metrics.Snapshot
}

// campaign is one sweep's dispatch ledger.
type campaign struct {
	sweep      string
	cells      []*cell
	queue      []int // pending cell indexes, FIFO
	remaining  int
	retries    int
	runTimeout time.Duration
	observer   runner.Observer
	done       chan struct{}

	reclaims, duplicates, lateAccepts, conflicts int
	quarantined                                  []int
	skipped                                      int
	workerCompleted                              map[string]int
}

// Coordinator hands out sweep cells as leases over HTTP and folds worker
// completions back into index-aligned results. It implements
// http.Handler (mount at the server root) and the experiments package's
// CampaignRunner interface (RunCampaign).
type Coordinator struct {
	cfg Config
	log *slog.Logger

	mu       sync.Mutex
	camp     *campaign
	leases   map[string]*lease
	workers  map[string]*workerInfo
	leaseSeq int
	shutdown bool

	// Fleet-lifetime counters for the dashboard (campaign-scoped copies
	// live on the campaign for the journal).
	totReclaims, totDuplicates, totLate, totQuarantined, totConflicts int

	// counters aggregates the telemetry snapshots of every accepted
	// successful completion across campaigns (metrics.FoldSnapshot
	// naming), served on /metrics.
	counters map[string]uint64
}

// NewCoordinator builds a coordinator ready to serve workers; campaigns
// are started with RunCampaign.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	log := cfg.Log
	if log == nil {
		log = discardLog
	}
	return &Coordinator{
		cfg:      cfg,
		log:      log,
		leases:   map[string]*lease{},
		workers:  map[string]*workerInfo{},
		counters: map[string]uint64{},
	}
}

func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Shutdown orders the fleet down: subsequent lease polls answer
// Shutdown, on which workers exit their serve loops. It does not abort
// an active campaign — call it once the last campaign has returned.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	c.mu.Unlock()
}

// RunCampaign distributes one sweep across the fleet and blocks until
// every cell is resolved. It mirrors runner.RunResilient's contract: the
// returned slices are index-aligned with cfgs, results[i] is non-nil
// exactly when the cell succeeded (skipped cells stay nil for the caller
// to prefill), errs[i] is the final typed failure of a quarantined cell.
// Policy semantics carried over: Skip elides cells (one StatusSkipped
// outcome each), PreRun maps stored configurations before dispatch,
// Retries/RunTimeout ship to workers as the per-lease attempt policy,
// and Observer sees claim and completion outcomes exactly as local
// sweeps do — which is how manifest emission and the live monitor work
// unchanged. PreAttempt cannot cross the wire and is ignored;
// worker-side chaos uses the worker's own chaos flags.
//
// Dispatch is at-least-once: there is no campaign-wide deadline, and a
// cell is re-dispatched until some worker completes it or enough
// distinct workers fail it to quarantine. A fleet with no live workers
// therefore blocks until one connects.
func (c *Coordinator) RunCampaign(sweep string, cfgs []inpg.Config, p runner.Policy) ([]*inpg.Results, []*runner.RunError) {
	camp := &campaign{
		sweep:           sweep,
		retries:         p.Retries,
		runTimeout:      p.RunTimeout,
		observer:        p.Observer,
		done:            make(chan struct{}),
		workerCompleted: map[string]int{},
	}
	var skippedOutcomes []runner.Outcome
	for i, cfg := range cfgs {
		if p.PreRun != nil {
			cfg = p.PreRun(i, cfg)
		}
		cl := &cell{index: i, cfg: cfg, digest: cfg.Digest(), failedBy: map[string]bool{}}
		if p.Skip != nil && p.Skip(i) {
			cl.state = cellDone
			camp.skipped++
			skippedOutcomes = append(skippedOutcomes, runner.Outcome{
				Index: i, Done: true, Status: runner.StatusSkipped, Cfg: cfg})
		} else {
			camp.queue = append(camp.queue, i)
			camp.remaining++
		}
		camp.cells = append(camp.cells, cl)
	}

	// Captured before the campaign is published: once c.camp is set,
	// handlers mutate remaining under mu.
	hasWork := camp.remaining > 0

	c.mu.Lock()
	if c.camp != nil {
		c.mu.Unlock()
		panic("fleet: RunCampaign while another campaign is active")
	}
	c.camp = camp
	c.mu.Unlock()

	if p.Observer != nil {
		for _, o := range skippedOutcomes {
			p.Observer(o)
		}
	}

	if hasWork {
		stop := make(chan struct{})
		go c.reclaimLoop(stop)
		<-camp.done
		close(stop)
	}

	c.mu.Lock()
	c.camp = nil
	// Leases are campaign-scoped: whatever is still outstanding belongs
	// to workers whose completions will now be answered as duplicates.
	c.leases = map[string]*lease{}
	workerCount := len(camp.workerCompleted)
	c.mu.Unlock()

	c.log.Info("campaign done",
		"sweep", sweep, "cells", len(camp.cells), "skipped", camp.skipped,
		"workers", workerCount, "reclaimed", camp.reclaims,
		"quarantined", len(camp.quarantined), "duplicates", camp.duplicates,
		"late_accepts", camp.lateAccepts, "digest_conflicts", camp.conflicts)

	if c.cfg.ManifestDir != "" {
		if _, err := WriteJournal(c.cfg.ManifestDir, c.journal(camp)); err != nil {
			c.log.Error("journal write failed", "sweep", sweep, "err", err)
		}
	}

	results := make([]*inpg.Results, len(cfgs))
	errs := make([]*runner.RunError, len(cfgs))
	for i, cl := range camp.cells {
		results[i], errs[i] = cl.res, cl.err
	}
	return results, errs
}

// journal assembles the campaign's durable account.
func (c *Coordinator) journal(camp *campaign) *Journal {
	j := &Journal{
		SchemaVersion:     JournalSchemaVersion,
		Kind:              JournalKind,
		Sweep:             camp.sweep,
		Cells:             len(camp.cells),
		Digests:           make(map[int]string, len(camp.cells)),
		WorkerCompletions: camp.workerCompleted,
		Reclaims:          camp.reclaims,
		Duplicates:        camp.duplicates,
		LateAccepts:       camp.lateAccepts,
		DigestConflicts:   camp.conflicts,
		Quarantined:       camp.quarantined,
		Skipped:           camp.skipped,
	}
	for _, cl := range camp.cells {
		j.Digests[cl.index] = cl.digest
	}
	return j
}

// reclaimLoop periodically sweeps expired leases while a campaign runs.
func (c *Coordinator) reclaimLoop(stop chan struct{}) {
	interval := c.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.reclaimExpired()
		}
	}
}

// reclaimExpired re-queues cells whose lease deadline passed and emits
// the matching observer outcomes.
func (c *Coordinator) reclaimExpired() {
	c.mu.Lock()
	now := c.now()
	var emit []runner.Outcome
	var obs runner.Observer
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		if o, ok := c.reclaimLeaseLocked(l); ok {
			emit = append(emit, o)
		}
		delete(c.leases, id)
	}
	if c.camp != nil {
		obs = c.camp.observer
	}
	c.mu.Unlock()
	if obs != nil {
		for _, o := range emit {
			obs(o)
		}
	}
}

// reclaimLeaseLocked returns an expired lease's cell to the pending
// queue (when the lease still owns an open cell) and returns the
// StatusRetrying outcome to emit. The caller deletes the lease and holds
// mu.
func (c *Coordinator) reclaimLeaseLocked(l *lease) (runner.Outcome, bool) {
	camp := c.camp
	if camp == nil || l.index >= len(camp.cells) {
		return runner.Outcome{}, false
	}
	cl := camp.cells[l.index]
	if cl.state != cellLeased || cl.leaseID != l.id {
		// The cell was resolved (or re-leased) while this lease aged out;
		// nothing to reclaim.
		return runner.Outcome{}, false
	}
	cl.state = cellPending
	cl.leaseID = ""
	camp.queue = append(camp.queue, l.index)
	camp.reclaims++
	c.totReclaims++
	return runner.Outcome{
		Index: l.index, Worker: c.workerNumLocked(l.worker), Done: true,
		Status: runner.StatusRetrying, Attempt: cl.dispatches - 1, Cfg: cl.cfg,
		Err: &runner.RunError{
			Index: l.index, Attempt: cl.dispatches - 1, Cause: runner.CauseTimeout,
			Digest: cl.digest,
			Err:    fmt.Errorf("fleet: lease %s expired on worker %s", l.id, l.worker),
		},
	}, true
}

// touchWorker records a worker contact and returns its info. Caller
// holds mu.
func (c *Coordinator) touchWorkerLocked(id string) *workerInfo {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{id: id, num: len(c.workers)}
		c.workers[id] = w
	}
	w.lastSeen = c.now()
	return w
}

// workerNumLocked maps a worker ID to its small integer for
// runner.Outcome.Worker. Caller holds mu.
func (c *Coordinator) workerNumLocked(id string) int {
	if w := c.workers[id]; w != nil {
		return w.num
	}
	return 0
}

// ServeHTTP demultiplexes the fleet endpoints.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case PathLease:
		c.handleLease(w, r)
	case PathHeartbeat:
		c.handleHeartbeat(w, r)
	case PathComplete:
		c.handleComplete(w, r)
	case PathStatus:
		writeJSON(w, c.Status())
	case PathMetrics:
		c.handleMetrics(w, r)
	case PathHealthz:
		writeJSON(w, map[string]string{"status": "ok"})
	default:
		http.NotFound(w, r)
	}
}

// handleLease answers a worker poll: reclaim lazily, then grant the next
// pending cell, report idle, or order shutdown.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	c.reclaimExpired()

	c.mu.Lock()
	wi := c.touchWorkerLocked(req.Worker)
	var resp LeaseResponse
	var claim *runner.Outcome
	var obs runner.Observer
	switch {
	case c.shutdown:
		resp.Shutdown = true
	case c.camp == nil:
		// idle: no campaign active
	default:
		camp := c.camp
		obs = camp.observer
		for len(camp.queue) > 0 {
			idx := camp.queue[0]
			camp.queue = camp.queue[1:]
			cl := camp.cells[idx]
			if cl.state != cellPending {
				// Resolved while queued (a late completion landed); skip.
				continue
			}
			c.leaseSeq++
			id := fmt.Sprintf("%s-%04d-%d", camp.sweep, idx, c.leaseSeq)
			cl.state = cellLeased
			cl.leaseID = id
			cl.dispatches++
			c.leases[id] = &lease{id: id, index: idx, worker: req.Worker,
				expires: c.now().Add(c.cfg.LeaseTTL)}
			resp.Lease = &Lease{
				ID: id, Sweep: camp.sweep, Index: idx, Digest: cl.digest,
				Config: cl.cfg, TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
				Retries: camp.retries, RunTimeoutNanos: int64(camp.runTimeout),
			}
			claim = &runner.Outcome{Index: idx, Worker: wi.num,
				Status: runner.StatusRunning, Attempt: cl.dispatches - 1, Cfg: cl.cfg}
			break
		}
	}
	c.mu.Unlock()

	if claim != nil && obs != nil {
		obs(*claim)
	}
	writeJSON(w, resp)
}

// handleHeartbeat extends a live lease. A heartbeat arriving after the
// deadline — even before the periodic reclaimer noticed — is too late:
// the lease is reclaimed on the spot and the worker told it is gone, so
// expiry is deterministic rather than racing the sweep interval.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	wi := c.touchWorkerLocked(req.Worker)
	if req.Snapshot != nil {
		wi.snap = req.Snapshot
	}
	var emit *runner.Outcome
	var obs runner.Observer
	resp := HeartbeatResponse{}
	l := c.leases[req.LeaseID]
	switch {
	case l == nil:
		resp.Gone = true
	case c.now().Before(l.expires):
		l.expires = c.now().Add(c.cfg.LeaseTTL)
		resp.OK = true
	default:
		if o, ok := c.reclaimLeaseLocked(l); ok {
			emit = &o
		}
		delete(c.leases, req.LeaseID)
		resp.Gone = true
	}
	if c.camp != nil {
		obs = c.camp.observer
	}
	c.mu.Unlock()
	if emit != nil && obs != nil {
		obs(*emit)
	}
	writeJSON(w, resp)
}

// handleComplete folds a worker's completion into the campaign:
// first write wins per cell, duplicates are dropped and counted, and a
// digest mismatch is rejected outright.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var rep CompletionReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil || rep.Worker == "" {
		http.Error(w, "bad completion", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	wi := c.touchWorkerLocked(rep.Worker)
	camp := c.camp
	if camp == nil || camp.sweep != rep.Sweep || rep.Index < 0 || rep.Index >= len(camp.cells) {
		// A straggler from a finished campaign: its cell was resolved (or
		// never existed); drop as a duplicate so the worker stops.
		c.totDuplicates++
		c.mu.Unlock()
		writeJSON(w, CompletionResponse{Duplicate: true})
		return
	}
	cl := camp.cells[rep.Index]
	if rep.Digest != cl.digest {
		camp.conflicts++
		c.totConflicts++
		c.mu.Unlock()
		c.log.Warn("rejected completion: digest mismatch",
			"sweep", rep.Sweep, "cell", rep.Index, "worker", rep.Worker,
			"digest", rep.Digest, "want", cl.digest)
		http.Error(w, "digest mismatch", http.StatusConflict)
		return
	}
	l, hadLease := c.leases[rep.LeaseID]
	if hadLease {
		delete(c.leases, rep.LeaseID)
	}

	obs := camp.observer
	var emit []runner.Outcome
	resp := CompletionResponse{}

	if cl.state == cellDone {
		// Duplicate: the cell was already resolved (reclaimed and re-run
		// elsewhere, or a resent report). First write won; drop this one.
		camp.duplicates++
		c.totDuplicates++
		resp.Duplicate = true
		if hadLease && l.index == rep.Index {
			// The dropped worker held a live claim; balance it for
			// observers with the discarded-completion status.
			emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
				Done: true, Status: runner.StatusAbandoned, Cfg: cl.cfg,
				WallSeconds: rep.WallSeconds})
		}
	} else {
		resp.Accepted = true
		if !hadLease || cl.leaseID != rep.LeaseID {
			// The worker outlived its reclaimed lease; its work is still
			// valid (digest matched) and it got here first.
			camp.lateAccepts++
			c.totLate++
		}
		cl.leaseID = ""
		if rep.OK {
			cl.state = cellDone
			cl.res = rep.Res
			cl.wall = rep.WallSeconds
			camp.workerCompleted[rep.Worker]++
			wi.completed++
			camp.remaining--
			metrics.FoldSnapshot(c.counters, rep.Snapshot)
			emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
				Done: true, Status: runner.StatusOK, Attempt: rep.Attempt,
				Cfg: cl.cfg, Res: rep.Res, Snapshot: rep.Snapshot,
				WallSeconds: rep.WallSeconds})
		} else {
			cl.failCount++
			cl.failedBy[rep.Worker] = true
			wi.failed++
			rerr := &runner.RunError{Index: rep.Index, Attempt: rep.Attempt,
				Cause: runner.Cause(rep.Cause), Digest: cl.digest,
				Err: errors.New(rep.Error)}
			if len(cl.failedBy) >= c.cfg.QuarantineAfter ||
				cl.failCount >= 2*c.cfg.QuarantineAfter {
				cl.state = cellDone
				cl.err = rerr
				camp.quarantined = append(camp.quarantined, rep.Index)
				c.totQuarantined++
				camp.remaining--
				emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
					Done: true, Status: runner.StatusQuarantined, Attempt: rep.Attempt,
					Cfg: cl.cfg, Err: rerr, WallSeconds: rep.WallSeconds})
			} else {
				cl.state = cellPending
				camp.queue = append(camp.queue, rep.Index)
				emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
					Done: true, Status: runner.StatusRetrying, Attempt: rep.Attempt,
					Cfg: cl.cfg, Err: rerr, WallSeconds: rep.WallSeconds})
			}
		}
		if camp.remaining == 0 {
			defer close(camp.done)
		}
	}
	c.mu.Unlock()

	if obs != nil {
		for _, o := range emit {
			obs(o)
		}
	}
	writeJSON(w, resp)
}

// Status snapshots the coordinator's public state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Shutdown:          c.shutdown,
		LeasesOutstanding: len(c.leases),
		Reclaims:          c.totReclaims,
		Duplicates:        c.totDuplicates,
		LateAccepts:       c.totLate,
		Quarantined:       c.totQuarantined,
		DigestConflicts:   c.totConflicts,
	}
	if c.camp != nil {
		st.Sweep = c.camp.sweep
		st.Cells = len(c.camp.cells)
		done := 0
		for _, cl := range c.camp.cells {
			if cl.state == cellDone {
				done++
			}
		}
		st.Completed = done
	}
	held := map[string]int{}
	for _, l := range c.leases {
		held[l.worker]++
	}
	now := c.now()
	for _, wi := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: wi.id, Num: wi.num,
			LastSeenSeconds: now.Sub(wi.lastSeen).Seconds(),
			Completed:       wi.completed, Failed: wi.failed,
			Leases: held[wi.id],
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Num < st.Workers[j].Num })
	return st
}

// handleMetrics serves the coordinator's telemetry in the Prometheus
// text exposition format: cumulative counters folded from every accepted
// successful completion (inpg_<instrument>), fleet dispatch gauges
// (inpg_fleet_*), and a live view summed across each worker's latest
// heartbeat snapshot (inpg_live_<instrument>).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	counters := make(map[string]uint64, len(c.counters))
	for k, v := range c.counters {
		counters[k] = v
	}
	gauges := map[string]float64{
		"fleet.leases_outstanding": float64(len(c.leases)),
		"fleet.workers":            float64(len(c.workers)),
		"fleet.reclaims":           float64(c.totReclaims),
		"fleet.duplicates":         float64(c.totDuplicates),
		"fleet.late_accepts":       float64(c.totLate),
		"fleet.quarantined":        float64(c.totQuarantined),
		"fleet.digest_conflicts":   float64(c.totConflicts),
	}
	if c.camp != nil {
		done := 0
		for _, cl := range c.camp.cells {
			if cl.state == cellDone {
				done++
			}
		}
		gauges["fleet.cells"] = float64(len(c.camp.cells))
		gauges["fleet.cells_done"] = float64(done)
	}
	live := map[string]uint64{}
	for _, wi := range c.workers {
		metrics.FoldSnapshot(live, wi.snap)
	}
	c.mu.Unlock()
	for k, v := range live {
		gauges["live."+k] = float64(v)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, counters, gauges)
}

// writeJSON serializes a response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
