package fleet

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inpg"
	"inpg/internal/manifest"
	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is how long a granted lease lives without a
	// heartbeat: long enough that an ordinary heartbeat cadence (TTL/3)
	// survives scheduling hiccups, short enough that a killed worker's
	// cells are re-dispatched within seconds.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultQuarantineAfter is how many distinct workers must fail the
	// same digest before the coordinator quarantines the cell instead of
	// re-dispatching it: two independent machines failing the same
	// configuration points at the cell, not the host.
	DefaultQuarantineAfter = 2
)

// Config tunes a Coordinator. The zero value selects every default.
type Config struct {
	// LeaseTTL is the lease time-to-live (DefaultLeaseTTL when 0).
	LeaseTTL time.Duration
	// QuarantineAfter quarantines a cell once this many distinct workers
	// have failed its digest (DefaultQuarantineAfter when 0). As a
	// backstop against a single-worker fleet bouncing one bad cell
	// forever, a cell is also quarantined after 2×QuarantineAfter total
	// failures regardless of how many workers produced them.
	QuarantineAfter int
	// ManifestDir, when set, receives the campaign's write-ahead log
	// (campaign-<sweep>.wal, fsynced per event) while it runs and the
	// journal snapshot (campaign-<sweep>.json, the log's compaction) at
	// the end. It is also what makes the coordinator crash-safe: a
	// restarted coordinator replays the log against the manifests on
	// disk and resumes the campaign, adopting still-held worker leases.
	// Without a manifest dir there is no durable state and a crash loses
	// the campaign. Per-run manifests are written by the same observer
	// plumbing local sweeps use, not by the coordinator itself.
	ManifestDir string
	// Token, when non-empty, is the shared bearer secret every /fleet/*
	// request must present (Authorization: Bearer <token>, compared in
	// constant time). /healthz and /metrics stay open.
	Token string
	// ChaosKillAfter, when > 0, crashes the coordinator (via Exit)
	// immediately after granting its Nth lease — mirroring the worker's
	// chaos hook — to exercise WAL replay and lease adoption. The
	// response for the Nth lease is flushed first, so the worker
	// genuinely holds the lease across the crash.
	ChaosKillAfter int
	// Exit is called to kill the process on chaos crash (default
	// os.Exit); tests inject a no-op so the "crash" stays in-process
	// (the coordinator marks itself dead first either way: handlers
	// answer 503 and RunCampaign returns with typed errors).
	Exit func(code int)
	// Log, when set, receives structured records: one summary per
	// campaign and infrastructure warnings, tagged with sweep, cell,
	// worker and digest where applicable. Nil discards them.
	Log *slog.Logger
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

// cell is one sweep configuration's dispatch state.
type cell struct {
	index      int
	cfg        inpg.Config
	digest     string
	state      cellState
	leaseID    string // current lease, "" when pending/done
	dispatches int

	res  *inpg.Results
	err  *runner.RunError
	wall float64

	failedBy  map[string]bool // distinct workers that reported failure
	failCount int
}

// lease is one outstanding grant. An orphan lease was granted by a
// previous coordinator incarnation (reconstructed from the WAL): its
// worker may still be running the cell, so heartbeats on it are answered
// with Reannounce until the worker re-registers via /fleet/adopt or the
// orphan expires and is reclaimed like any lease.
type lease struct {
	id      string
	index   int
	worker  string
	expires time.Time
	orphan  bool
}

// workerInfo is the coordinator's view of one worker.
type workerInfo struct {
	id        string
	num       int
	lastSeen  time.Time
	completed int
	failed    int
	// snap is the latest metric snapshot the worker attached to a
	// heartbeat — its most recent completed cell's telemetry, the live
	// component of the coordinator's /metrics view.
	snap *metrics.Snapshot
}

// campaign is one sweep's dispatch ledger.
type campaign struct {
	sweep      string
	cells      []*cell
	queue      []int // pending cell indexes, FIFO
	remaining  int
	retries    int
	runTimeout time.Duration
	observer   runner.Observer
	done       chan struct{}

	// wal is the campaign's write-ahead log (nil without a manifest
	// dir, or if the log could not be opened — the campaign then runs
	// without crash safety, which is logged).
	wal *WAL
	// crash is closed when the coordinator chaos-crashes mid-campaign;
	// RunCampaign unblocks on it and returns typed errors for the
	// unresolved cells. crashed guards the close (under Coordinator.mu).
	crash   chan struct{}
	crashed bool
	// Replay bookkeeping: adopted counts leases carried across a restart
	// (via /fleet/adopt or a completion landing on the orphan), replays
	// is how many incarnations have run this campaign (1 + WAL restarts),
	// replayedCells is how many cells were resolved from manifests during
	// replay, replayGrants floors the lease sequence past the previous
	// incarnations' grants, and replayEmit holds the StatusSkipped
	// outcomes for replay-resolved cells (emitted at publish).
	adopted       int
	replays       int
	replayedCells int
	replayGrants  int
	replayEmit    []runner.Outcome

	reclaims, duplicates, lateAccepts, conflicts int
	quarantined                                  []int
	skipped                                      int
	workerCompleted                              map[string]int
}

// Coordinator hands out sweep cells as leases over HTTP and folds worker
// completions back into index-aligned results. It implements
// http.Handler (mount at the server root) and the experiments package's
// CampaignRunner interface (RunCampaign).
type Coordinator struct {
	cfg Config
	log *slog.Logger

	// dead is set by a chaos crash: every handler answers 503 from then
	// on, mirroring a killed process even when the test-injected Exit is
	// a no-op.
	dead atomic.Bool

	mu       sync.Mutex
	camp     *campaign
	leases   map[string]*lease
	workers  map[string]*workerInfo
	leaseSeq int
	shutdown bool
	// published flips once the first campaign is installed. Before that,
	// completions are answered 503 (retry) rather than Duplicate (drop):
	// a restarted coordinator's port may be reachable before the replayed
	// campaign is up, and a surviving worker's in-flight completion must
	// not be discarded in that window.
	published bool
	// grants counts leases granted over the coordinator's lifetime — the
	// chaos-kill trigger compares against it.
	grants int
	// journalErr is the typed error of the most recent campaign's journal
	// write, nil on success (see JournalError).
	journalErr error

	// Fleet-lifetime counters for the dashboard (campaign-scoped copies
	// live on the campaign for the journal).
	totReclaims, totDuplicates, totLate, totQuarantined, totConflicts int
	totAdopted, totReplays                                            int

	// counters aggregates the telemetry snapshots of every accepted
	// successful completion across campaigns (metrics.FoldSnapshot
	// naming), served on /metrics.
	counters map[string]uint64
}

// NewCoordinator builds a coordinator ready to serve workers; campaigns
// are started with RunCampaign.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	log := cfg.Log
	if log == nil {
		log = discardLog
	}
	return &Coordinator{
		cfg:      cfg,
		log:      log,
		leases:   map[string]*lease{},
		workers:  map[string]*workerInfo{},
		counters: map[string]uint64{},
	}
}

func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Shutdown orders the fleet down: subsequent lease polls answer
// Shutdown, on which workers exit their serve loops. It does not abort
// an active campaign — call it once the last campaign has returned.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	c.mu.Unlock()
}

// RunCampaign distributes one sweep across the fleet and blocks until
// every cell is resolved. It mirrors runner.RunResilient's contract: the
// returned slices are index-aligned with cfgs, results[i] is non-nil
// exactly when the cell succeeded (skipped cells stay nil for the caller
// to prefill), errs[i] is the final typed failure of a quarantined cell.
// Policy semantics carried over: Skip elides cells (one StatusSkipped
// outcome each), PreRun maps stored configurations before dispatch,
// Retries/RunTimeout ship to workers as the per-lease attempt policy,
// and Observer sees claim and completion outcomes exactly as local
// sweeps do — which is how manifest emission and the live monitor work
// unchanged. PreAttempt cannot cross the wire and is ignored;
// worker-side chaos uses the worker's own chaos flags.
//
// Dispatch is at-least-once: there is no campaign-wide deadline, and a
// cell is re-dispatched until some worker completes it or enough
// distinct workers fail it to quarantine. A fleet with no live workers
// therefore blocks until one connects.
func (c *Coordinator) RunCampaign(sweep string, cfgs []inpg.Config, p runner.Policy) ([]*inpg.Results, []*runner.RunError) {
	camp := &campaign{
		sweep:           sweep,
		retries:         p.Retries,
		runTimeout:      p.RunTimeout,
		observer:        p.Observer,
		done:            make(chan struct{}),
		crash:           make(chan struct{}),
		replays:         1,
		workerCompleted: map[string]int{},
	}
	var skippedOutcomes []runner.Outcome
	for i, cfg := range cfgs {
		if p.PreRun != nil {
			cfg = p.PreRun(i, cfg)
		}
		cl := &cell{index: i, cfg: cfg, digest: cfg.Digest(), failedBy: map[string]bool{}}
		if p.Skip != nil && p.Skip(i) {
			cl.state = cellDone
			camp.skipped++
			skippedOutcomes = append(skippedOutcomes, runner.Outcome{
				Index: i, Done: true, Status: runner.StatusSkipped, Cfg: cfg})
		} else {
			camp.queue = append(camp.queue, i)
			camp.remaining++
		}
		camp.cells = append(camp.cells, cl)
	}

	// Open (or replay) the write-ahead log before the campaign is
	// visible to workers: the open/replayed record must be durable
	// before the first grant can be.
	orphans := c.prepareCampaignWAL(camp)

	// Captured before the campaign is published: once c.camp is set,
	// handlers mutate remaining under mu.
	hasWork := camp.remaining > 0

	c.mu.Lock()
	if c.camp != nil {
		c.mu.Unlock()
		panic("fleet: RunCampaign while another campaign is active")
	}
	c.camp = camp
	c.published = true
	// Re-install leases a previous incarnation granted: their workers
	// may still be computing. They get a fresh TTL from now — if the
	// worker is gone they expire and reclaim normally; if it is alive
	// its next heartbeat is answered with Reannounce and the lease is
	// adopted.
	now := c.now()
	for _, o := range orphans {
		c.leases[o.Lease] = &lease{id: o.Lease, index: o.Index, worker: o.Worker,
			expires: now.Add(c.cfg.LeaseTTL), orphan: true}
	}
	// Fresh lease IDs embed a sequence number; float it past every grant
	// a previous incarnation made so IDs never collide across restarts.
	c.leaseSeq += camp.replayGrants
	// Fold the replayed campaign counters into the fleet-lifetime view.
	c.totReclaims += camp.reclaims
	c.totLate += camp.lateAccepts
	c.totAdopted += camp.adopted
	c.totQuarantined += len(camp.quarantined)
	if camp.replays > 1 {
		c.totReplays += camp.replays - 1
	}
	c.journalErr = nil
	c.mu.Unlock()

	if camp.replays > 1 {
		c.log.Info("campaign replayed from wal",
			"sweep", sweep, "replays", camp.replays, "resolved", camp.replayedCells,
			"orphans", len(orphans), "remaining", camp.remaining)
	}

	if p.Observer != nil {
		for _, o := range skippedOutcomes {
			p.Observer(o)
		}
		for _, o := range camp.replayEmit {
			p.Observer(o)
		}
	}

	crashed := false
	if hasWork {
		stop := make(chan struct{})
		go c.reclaimLoop(stop)
		select {
		case <-camp.done:
		case <-camp.crash:
			crashed = true
		}
		close(stop)
	}

	c.mu.Lock()
	c.camp = nil
	// Leases are campaign-scoped: whatever is still outstanding belongs
	// to workers whose completions will now be answered as duplicates.
	c.leases = map[string]*lease{}
	workerCount := len(camp.workerCompleted)
	c.mu.Unlock()

	if crashed {
		// The in-process equivalent of the process dying: return with
		// typed errors for everything unresolved, leaving the WAL exactly
		// as the crash left it (no journal, no close event) so a restart
		// replays it.
		results := make([]*inpg.Results, len(cfgs))
		errs := make([]*runner.RunError, len(cfgs))
		for i, cl := range camp.cells {
			if cl.state == cellDone {
				results[i], errs[i] = cl.res, cl.err
				continue
			}
			errs[i] = &runner.RunError{Index: i, Cause: runner.CauseCanceled,
				Digest: cl.digest,
				Err:    errors.New("fleet: coordinator crashed mid-campaign")}
		}
		return results, errs
	}

	c.log.Info("campaign done",
		"sweep", sweep, "cells", len(camp.cells), "skipped", camp.skipped,
		"workers", workerCount, "reclaimed", camp.reclaims,
		"quarantined", len(camp.quarantined), "duplicates", camp.duplicates,
		"late_accepts", camp.lateAccepts, "digest_conflicts", camp.conflicts,
		"adopted", camp.adopted, "replayed", camp.replayedCells,
		"replays", camp.replays)

	if c.cfg.ManifestDir != "" {
		err := c.writeJournalWithRetry(camp)
		c.mu.Lock()
		c.journalErr = err
		c.mu.Unlock()
		if err != nil {
			c.log.Error("journal write failed", "sweep", sweep, "err", err)
		} else {
			// The close event seals the log only after its compaction (the
			// journal) is durable: a closed WAL implies the journal exists.
			c.walAppend(camp.wal, Event{Type: EventCampaignClose, Sweep: sweep})
		}
	}
	if camp.wal != nil {
		camp.wal.Close()
	}

	results := make([]*inpg.Results, len(cfgs))
	errs := make([]*runner.RunError, len(cfgs))
	for i, cl := range camp.cells {
		results[i], errs[i] = cl.res, cl.err
	}
	return results, errs
}

// JournalError reports the typed failure of the most recent campaign's
// journal write, nil when it succeeded (or no campaign wrote one).
// Callers that need the durable record — CI, long campaigns — check it
// after RunCampaign and treat non-nil as a hard failure.
func (c *Coordinator) JournalError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journalErr
}

// JournalWriteError is the typed error surfaced when the campaign
// journal could not be written after bounded retries.
type JournalWriteError struct {
	Sweep    string
	Attempts int
	Err      error
}

func (e *JournalWriteError) Error() string {
	return fmt.Sprintf("fleet: journal for %s not written after %d attempts: %v",
		e.Sweep, e.Attempts, e.Err)
}

func (e *JournalWriteError) Unwrap() error { return e.Err }

// journalRetries bounds the journal write retry loop; backoff doubles
// from journalBackoff between attempts.
const (
	journalRetries = 3
	journalBackoff = 50 * time.Millisecond
)

// writeJournalWithRetry writes the campaign journal, retrying transient
// filesystem failures with bounded backoff. The journal is the
// campaign's only durable summary once the WAL is sealed, so a silent
// drop is not acceptable: the final failure comes back typed.
func (c *Coordinator) writeJournalWithRetry(camp *campaign) error {
	var err error
	for attempt := 0; attempt < journalRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(journalBackoff << (attempt - 1))
		}
		if _, err = WriteJournal(c.cfg.ManifestDir, c.journal(camp)); err == nil {
			return nil
		}
		c.log.Warn("journal write retry", "sweep", camp.sweep,
			"attempt", attempt+1, "err", err)
	}
	return &JournalWriteError{Sweep: camp.sweep, Attempts: journalRetries, Err: err}
}

// prepareCampaignWAL opens the campaign's write-ahead log, replaying a
// previous incarnation's log first when one is present. It returns the
// orphan leases to re-install at publish. Without a manifest dir (or if
// the log cannot be opened) the campaign runs with camp.wal == nil:
// fully functional, not crash-safe.
func (c *Coordinator) prepareCampaignWAL(camp *campaign) []Orphan {
	if c.cfg.ManifestDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.cfg.ManifestDir, 0o755); err != nil {
		c.log.Error("wal disabled: manifest dir", "sweep", camp.sweep, "err", err)
		return nil
	}
	path := filepath.Join(c.cfg.ManifestDir, WALFilename(camp.sweep))
	var orphans []Orphan
	fresh := true
	if _, err := os.Stat(path); err == nil {
		rep, rerr := ReplayWAL(path)
		switch {
		case rerr != nil:
			// Mid-file corruption: the log cannot be trusted. Preserve it
			// for forensics and start over — manifests still dedupe.
			c.log.Error("wal corrupt; rotating", "sweep", camp.sweep, "err", rerr)
			os.Rename(path, path+".corrupt")
		case rep.Events == 0:
			// Empty file (crash between create and first append).
		case rep.Closed:
			// Previous campaign finished and was compacted; a re-run of the
			// same sweep starts a fresh log.
			os.Remove(path)
		case rep.Sweep != camp.sweep || rep.Cells != len(camp.cells) || !digestsMatch(rep, camp):
			// The log describes a different campaign shape (changed sweep
			// definition): it cannot resume this one.
			c.log.Warn("wal stale (campaign shape changed); rotating",
				"sweep", camp.sweep, "logged_sweep", rep.Sweep, "logged_cells", rep.Cells)
			os.Rename(path, path+".stale")
		default:
			orphans = c.applyReplay(camp, rep)
			fresh = false
		}
	}
	if fresh {
		os.Remove(path)
	}
	wal, err := OpenWAL(path)
	if err != nil {
		c.log.Error("wal disabled: open failed", "sweep", camp.sweep, "err", err)
		return orphans
	}
	camp.wal = wal
	if fresh {
		digests := make(map[int]string, len(camp.cells))
		for _, cl := range camp.cells {
			digests[cl.index] = cl.digest
		}
		e := Event{Type: EventCampaignOpen, Sweep: camp.sweep,
			Cells: len(camp.cells), Digests: digests}
		if err := wal.Append(e); err != nil {
			c.log.Error("wal disabled: open event", "sweep", camp.sweep, "err", err)
			wal.Close()
			camp.wal = nil
		}
	} else {
		c.walAppend(wal, Event{Type: EventCoordinatorReplayed, Sweep: camp.sweep,
			Orphans: len(orphans), Resolved: camp.replayedCells})
	}
	return orphans
}

// digestsMatch verifies the replayed log fingerprints the same campaign:
// every logged digest must equal the cell the restarted coordinator
// built at that index.
func digestsMatch(rep *Replay, camp *campaign) bool {
	for idx, d := range rep.Digests {
		if idx < 0 || idx >= len(camp.cells) || camp.cells[idx].digest != d {
			return false
		}
	}
	return true
}

// applyReplay folds a replayed WAL into a freshly built campaign, before
// it is published: cells whose manifest is on disk (digest-matched) are
// resolved without re-running, quarantine verdicts are restored, per-cell
// dispatch and failure accounting carries over, and the queue is rebuilt
// from what is genuinely still pending. Returns the orphan leases whose
// cells remain unresolved. Manifests — not the WAL — decide resolution:
// a logged acceptance whose manifest never landed is re-run (determinism
// makes the rerun byte-identical).
func (c *Coordinator) applyReplay(camp *campaign, rep *Replay) []Orphan {
	byIndex, warnings, err := manifest.ScanDir(c.cfg.ManifestDir, camp.sweep)
	if err != nil {
		c.log.Warn("wal replay: manifest scan failed", "sweep", camp.sweep, "err", err)
		byIndex = map[int]*manifest.Manifest{}
	}
	for _, warn := range warnings {
		c.log.Warn("wal replay: manifest scan", "sweep", camp.sweep, "warning", warn)
	}

	camp.replays = rep.Restarts + 2 // prior incarnations + this one
	camp.reclaims = rep.Reclaims
	camp.lateAccepts = rep.LateAccepts
	camp.adopted = rep.Adoptions
	camp.replayGrants = rep.Grants
	for w, n := range rep.WorkerCompletions {
		camp.workerCompleted[w] = n
	}

	for _, cl := range camp.cells {
		if cl.state == cellDone { // skipped by policy
			continue
		}
		cl.dispatches = rep.Dispatches[cl.index]
		for _, f := range rep.Failures[cl.index] {
			cl.failedBy[f.Worker] = true
			cl.failCount++
		}
		if q := rep.Quarantined[cl.index]; q != nil {
			cl.state = cellDone
			cl.err = &runner.RunError{Index: cl.index, Attempt: q.Attempt,
				Cause: runner.Cause(q.Cause), Digest: cl.digest,
				Err: errors.New(q.Error)}
			camp.quarantined = append(camp.quarantined, cl.index)
			continue
		}
		m := byIndex[cl.index]
		if m != nil && m.Status == manifest.StatusOK && m.ConfigDigest == cl.digest {
			cl.state = cellDone
			cl.res = m.ToResults()
			cl.wall = m.WallSeconds
			camp.replayedCells++
			// StatusSkipped is the one claim-free Done status; observers
			// (and the manifest emitter, which ignores skips) treat the
			// cell as already settled.
			camp.replayEmit = append(camp.replayEmit, runner.Outcome{
				Index: cl.index, Done: true, Status: runner.StatusSkipped, Cfg: cl.cfg})
			continue
		}
		if rep.Accepted[cl.index] > 0 {
			c.log.Warn("wal replay: accepted completion has no manifest; re-running",
				"sweep", camp.sweep, "cell", cl.index, "digest", cl.digest)
		}
	}

	// Rebuild queue and remaining from the surviving pending set, leased
	// orphan cells stay out of the queue until reclaimed or adopted.
	camp.queue = camp.queue[:0]
	camp.remaining = 0
	var orphans []Orphan
	for _, o := range rep.Orphans {
		if o.Index < 0 || o.Index >= len(camp.cells) {
			continue
		}
		cl := camp.cells[o.Index]
		if cl.state != cellPending || cl.leaseID != "" {
			// Resolved above, or an earlier orphan already owns the cell
			// (first orphan wins; the loser's worker late-accepts by digest).
			continue
		}
		cl.state = cellLeased
		cl.leaseID = o.Lease
		orphans = append(orphans, o)
	}
	for _, cl := range camp.cells {
		if cl.state == cellPending {
			camp.queue = append(camp.queue, cl.index)
		}
		if cl.state != cellDone {
			camp.remaining++
		}
	}
	return orphans
}

// walAppend appends an event to the campaign log, tolerating a nil WAL.
// An append failure is logged and swallowed: the campaign stays correct
// without the record (a forgotten grant's completion still late-accepts
// by digest), only crash-recovery fidelity degrades.
func (c *Coordinator) walAppend(w *WAL, e Event) {
	if w == nil {
		return
	}
	if err := w.Append(e); err != nil {
		c.log.Error("wal append failed; crash-safety degraded",
			"type", string(e.Type), "err", err)
	}
}

// crash kills the coordinator mid-campaign (chaos hook): it marks the
// handler surface dead (503s), unblocks RunCampaign via camp.crash, and
// calls the configured Exit. With the default os.Exit the process dies
// here; tests inject a no-op and observe the dead coordinator in
// process.
func (c *Coordinator) crash(reason string) {
	if !c.dead.CompareAndSwap(false, true) {
		return
	}
	c.mu.Lock()
	camp := c.camp
	var wal *WAL
	if camp != nil && !camp.crashed {
		camp.crashed = true
		wal = camp.wal
		close(camp.crash)
	}
	c.mu.Unlock()
	c.log.Warn("coordinator crashing", "reason", reason)
	if wal != nil {
		wal.Close() // fd only; the log stays unsealed for replay
	}
	exit := c.cfg.Exit
	if exit == nil {
		exit = os.Exit
	}
	exit(1)
}

// journal assembles the campaign's durable account.
func (c *Coordinator) journal(camp *campaign) *Journal {
	j := &Journal{
		SchemaVersion:     JournalSchemaVersion,
		Kind:              JournalKind,
		Sweep:             camp.sweep,
		Cells:             len(camp.cells),
		Digests:           make(map[int]string, len(camp.cells)),
		WorkerCompletions: camp.workerCompleted,
		Reclaims:          camp.reclaims,
		Duplicates:        camp.duplicates,
		LateAccepts:       camp.lateAccepts,
		DigestConflicts:   camp.conflicts,
		Quarantined:       camp.quarantined,
		Skipped:           camp.skipped,
		Adopted:           camp.adopted,
		Replays:           camp.replays - 1,
		Replayed:          camp.replayedCells,
	}
	for _, cl := range camp.cells {
		j.Digests[cl.index] = cl.digest
	}
	return j
}

// reclaimLoop periodically sweeps expired leases while a campaign runs.
func (c *Coordinator) reclaimLoop(stop chan struct{}) {
	interval := c.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.reclaimExpired()
		}
	}
}

// reclaimExpired re-queues cells whose lease deadline passed and emits
// the matching observer outcomes.
func (c *Coordinator) reclaimExpired() {
	c.mu.Lock()
	now := c.now()
	var emit []runner.Outcome
	var events []Event
	var obs runner.Observer
	var wal *WAL
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		if o, e, ok := c.reclaimLeaseLocked(l); ok {
			emit = append(emit, o)
			events = append(events, e)
		}
		delete(c.leases, id)
	}
	if c.camp != nil {
		obs = c.camp.observer
		wal = c.camp.wal
	}
	c.mu.Unlock()
	for _, e := range events {
		c.walAppend(wal, e)
	}
	if obs != nil {
		for _, o := range emit {
			obs(o)
		}
	}
}

// reclaimLeaseLocked returns an expired lease's cell to the pending
// queue (when the lease still owns an open cell) and returns the
// StatusRetrying outcome plus the WAL reclaim event to emit (events are
// appended outside mu so fsync never blocks handlers). The caller
// deletes the lease and holds mu.
func (c *Coordinator) reclaimLeaseLocked(l *lease) (runner.Outcome, Event, bool) {
	camp := c.camp
	if camp == nil || l.index >= len(camp.cells) {
		return runner.Outcome{}, Event{}, false
	}
	cl := camp.cells[l.index]
	if cl.state != cellLeased || cl.leaseID != l.id {
		// The cell was resolved (or re-leased) while this lease aged out;
		// nothing to reclaim.
		return runner.Outcome{}, Event{}, false
	}
	cl.state = cellPending
	cl.leaseID = ""
	camp.queue = append(camp.queue, l.index)
	camp.reclaims++
	c.totReclaims++
	ev := Event{Type: EventLeaseReclaimed, Sweep: camp.sweep,
		Lease: l.id, Index: l.index, Worker: l.worker}
	return runner.Outcome{
		Index: l.index, Worker: c.workerNumLocked(l.worker), Done: true,
		Status: runner.StatusRetrying, Attempt: cl.dispatches - 1, Cfg: cl.cfg,
		Err: &runner.RunError{
			Index: l.index, Attempt: cl.dispatches - 1, Cause: runner.CauseTimeout,
			Digest: cl.digest,
			Err:    fmt.Errorf("fleet: lease %s expired on worker %s", l.id, l.worker),
		},
	}, ev, true
}

// touchWorker records a worker contact and returns its info. Caller
// holds mu.
func (c *Coordinator) touchWorkerLocked(id string) *workerInfo {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{id: id, num: len(c.workers)}
		c.workers[id] = w
	}
	w.lastSeen = c.now()
	return w
}

// workerNumLocked maps a worker ID to its small integer for
// runner.Outcome.Worker. Caller holds mu.
func (c *Coordinator) workerNumLocked(id string) int {
	if w := c.workers[id]; w != nil {
		return w.num
	}
	return 0
}

// ServeHTTP demultiplexes the fleet endpoints. Every /fleet/* route is
// behind the bearer token (when configured); /healthz and /metrics stay
// open for probes and scrapers.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.dead.Load() {
		http.Error(w, "coordinator down", http.StatusServiceUnavailable)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/fleet/") && !c.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	switch r.URL.Path {
	case PathLease:
		c.handleLease(w, r)
	case PathHeartbeat:
		c.handleHeartbeat(w, r)
	case PathComplete:
		c.handleComplete(w, r)
	case PathAdopt:
		c.handleAdopt(w, r)
	case PathStatus:
		writeJSON(w, c.Status())
	case PathMetrics:
		c.handleMetrics(w, r)
	case PathHealthz:
		writeJSON(w, map[string]string{"status": "ok"})
	default:
		http.NotFound(w, r)
	}
}

// authorized checks the shared-secret bearer token in constant time; an
// unset token leaves the fleet open (LAN-trust mode).
func (c *Coordinator) authorized(r *http.Request) bool {
	if c.cfg.Token == "" {
		return true
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(c.cfg.Token)) == 1
}

// handleLease answers a worker poll: reclaim lazily, then grant the next
// pending cell, report idle, or order shutdown.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	c.reclaimExpired()

	c.mu.Lock()
	wi := c.touchWorkerLocked(req.Worker)
	var resp LeaseResponse
	var claim *runner.Outcome
	var obs runner.Observer
	var wal *WAL
	var grant Event
	killNow := false
	switch {
	case c.shutdown:
		resp.Shutdown = true
	case c.camp == nil:
		// idle: no campaign active
	default:
		camp := c.camp
		obs = camp.observer
		for len(camp.queue) > 0 {
			idx := camp.queue[0]
			camp.queue = camp.queue[1:]
			cl := camp.cells[idx]
			if cl.state != cellPending {
				// Resolved while queued (a late completion landed); skip.
				continue
			}
			c.leaseSeq++
			id := fmt.Sprintf("%s-%04d-%d", camp.sweep, idx, c.leaseSeq)
			cl.state = cellLeased
			cl.leaseID = id
			cl.dispatches++
			c.leases[id] = &lease{id: id, index: idx, worker: req.Worker,
				expires: c.now().Add(c.cfg.LeaseTTL)}
			resp.Lease = &Lease{
				ID: id, Sweep: camp.sweep, Index: idx, Digest: cl.digest,
				Config: cl.cfg, TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
				Retries: camp.retries, RunTimeoutNanos: int64(camp.runTimeout),
			}
			claim = &runner.Outcome{Index: idx, Worker: wi.num,
				Status: runner.StatusRunning, Attempt: cl.dispatches - 1, Cfg: cl.cfg}
			wal = camp.wal
			grant = Event{Type: EventLeaseGranted, Sweep: camp.sweep,
				Lease: id, Index: idx, Worker: req.Worker, Digest: cl.digest}
			c.grants++
			killNow = c.cfg.ChaosKillAfter > 0 && c.grants == c.cfg.ChaosKillAfter
			break
		}
	}
	c.mu.Unlock()

	// Durability before announcement: the grant record is fsynced before
	// the worker learns the lease exists, so a replayed log can never be
	// missing a lease some worker holds.
	if wal != nil {
		c.walAppend(wal, grant)
	}
	if claim != nil && obs != nil {
		obs(*claim)
	}
	writeJSON(w, resp)
	if killNow {
		// Chaos: die after the grant response is flushed, so the worker
		// deterministically holds a lease across the crash — the scenario
		// lease adoption exists for.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		c.crash("chaos-kill-coordinator-after")
	}
}

// handleHeartbeat extends a live lease. A heartbeat arriving after the
// deadline — even before the periodic reclaimer noticed — is too late:
// the lease is reclaimed on the spot and the worker told it is gone, so
// expiry is deterministic rather than racing the sweep interval.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	wi := c.touchWorkerLocked(req.Worker)
	if req.Snapshot != nil {
		wi.snap = req.Snapshot
	}
	var emit *runner.Outcome
	var event *Event
	var obs runner.Observer
	var wal *WAL
	resp := HeartbeatResponse{}
	l := c.leases[req.LeaseID]
	switch {
	case l == nil:
		resp.Gone = true
	case l.orphan && c.now().Before(l.expires):
		// A lease granted by a previous incarnation: keep it alive and
		// ask the worker to re-announce its held cell so it can be
		// adopted (index + digest cross-checked in handleAdopt).
		l.expires = c.now().Add(c.cfg.LeaseTTL)
		resp.Reannounce = true
	case c.now().Before(l.expires):
		l.expires = c.now().Add(c.cfg.LeaseTTL)
		resp.OK = true
	default:
		if o, e, ok := c.reclaimLeaseLocked(l); ok {
			emit = &o
			event = &e
		}
		delete(c.leases, req.LeaseID)
		resp.Gone = true
	}
	if c.camp != nil {
		obs = c.camp.observer
		wal = c.camp.wal
	}
	c.mu.Unlock()
	if event != nil {
		c.walAppend(wal, *event)
	}
	if emit != nil && obs != nil {
		obs(*emit)
	}
	writeJSON(w, resp)
}

// handleAdopt completes the lease-adoption handshake: a worker whose
// heartbeat was answered with Reannounce re-registers its held cell, and
// the restarted coordinator adopts the lease when the cell's identity
// (index + digest) matches the replayed campaign. Anything else answers
// Gone — the worker finishes and delivers anyway; a digest-matched
// completion is still accepted (late) even without a live lease.
func (c *Coordinator) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var req AdoptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" || req.LeaseID == "" {
		http.Error(w, "bad adopt request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.Worker)
	camp := c.camp
	resp := AdoptResponse{}
	var event *Event
	var wal *WAL
	l := c.leases[req.LeaseID]
	switch {
	case camp == nil || camp.sweep != req.Sweep ||
		req.Index < 0 || req.Index >= len(camp.cells):
		resp.Gone = true
	case l == nil:
		// Expired and reclaimed (or never replayed); the worker's eventual
		// completion can still late-accept by digest.
		resp.Gone = true
	case l.index != req.Index || camp.cells[req.Index].digest != req.Digest ||
		camp.cells[req.Index].state == cellDone:
		// The lease does not describe the cell the worker claims to hold,
		// or the cell was resolved meanwhile: drop the lease entirely.
		delete(c.leases, req.LeaseID)
		resp.Gone = true
	case l.orphan:
		l.orphan = false
		l.worker = req.Worker
		l.expires = c.now().Add(c.cfg.LeaseTTL)
		camp.cells[req.Index].leaseID = req.LeaseID
		camp.adopted++
		c.totAdopted++
		resp.Adopted = true
		wal = camp.wal
		event = &Event{Type: EventLeaseAdopted, Sweep: camp.sweep,
			Lease: req.LeaseID, Index: req.Index, Worker: req.Worker,
			Digest: req.Digest, Attempt: req.Attempt}
	case l.worker == req.Worker && camp.cells[req.Index].leaseID == req.LeaseID:
		// Resent adopt (lost response): idempotent success.
		l.expires = c.now().Add(c.cfg.LeaseTTL)
		resp.Adopted = true
	default:
		resp.Gone = true
	}
	c.mu.Unlock()
	if event != nil {
		c.walAppend(wal, *event)
		c.log.Info("lease adopted", "sweep", req.Sweep, "cell", req.Index,
			"worker", req.Worker, "lease", req.LeaseID)
	}
	writeJSON(w, resp)
}

// handleComplete folds a worker's completion into the campaign:
// first write wins per cell, duplicates are dropped and counted, and a
// digest mismatch is rejected outright.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var rep CompletionReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil || rep.Worker == "" {
		http.Error(w, "bad completion", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	wi := c.touchWorkerLocked(rep.Worker)
	camp := c.camp
	if camp == nil && !c.published {
		// Startup window: the port is up but no campaign has ever been
		// installed — a restarted coordinator still replaying. Make the
		// worker retry instead of dropping its report.
		c.mu.Unlock()
		http.Error(w, "no campaign yet", http.StatusServiceUnavailable)
		return
	}
	if camp == nil || camp.sweep != rep.Sweep || rep.Index < 0 || rep.Index >= len(camp.cells) {
		// A straggler from a finished campaign: its cell was resolved (or
		// never existed); drop as a duplicate so the worker stops.
		c.totDuplicates++
		c.mu.Unlock()
		writeJSON(w, CompletionResponse{Duplicate: true})
		return
	}
	cl := camp.cells[rep.Index]
	if rep.Digest != cl.digest {
		camp.conflicts++
		c.totConflicts++
		c.mu.Unlock()
		c.log.Warn("rejected completion: digest mismatch",
			"sweep", rep.Sweep, "cell", rep.Index, "worker", rep.Worker,
			"digest", rep.Digest, "want", cl.digest)
		http.Error(w, "digest mismatch", http.StatusConflict)
		return
	}
	l, hadLease := c.leases[rep.LeaseID]
	if hadLease {
		delete(c.leases, rep.LeaseID)
	}

	obs := camp.observer
	wal := camp.wal
	var emit []runner.Outcome
	var events []Event
	resp := CompletionResponse{}

	if cl.state == cellDone {
		// Duplicate: the cell was already resolved (reclaimed and re-run
		// elsewhere, or a resent report). First write won; drop this one.
		camp.duplicates++
		c.totDuplicates++
		resp.Duplicate = true
		if hadLease && l.index == rep.Index {
			// The dropped worker held a live claim; balance it for
			// observers with the discarded-completion status.
			emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
				Done: true, Status: runner.StatusAbandoned, Cfg: cl.cfg,
				WallSeconds: rep.WallSeconds})
		}
	} else {
		resp.Accepted = true
		late := !hadLease || cl.leaseID != rep.LeaseID
		if late {
			// The worker outlived its reclaimed lease; its work is still
			// valid (digest matched) and it got here first.
			camp.lateAccepts++
			c.totLate++
		}
		if hadLease && l.orphan && l.index == rep.Index {
			// Implicit adoption: the completion arrived on a previous
			// incarnation's lease before (or instead of) the re-announce
			// handshake — the in-flight work still survived the outage.
			camp.adopted++
			c.totAdopted++
			events = append(events, Event{Type: EventLeaseAdopted,
				Sweep: camp.sweep, Lease: rep.LeaseID, Index: rep.Index,
				Worker: rep.Worker, Digest: rep.Digest, Attempt: rep.Attempt})
		}
		cl.leaseID = ""
		accept := Event{Type: EventCompletionAccepted, Sweep: camp.sweep,
			Lease: rep.LeaseID, Index: rep.Index, Worker: rep.Worker,
			Digest: rep.Digest, OK: rep.OK, Late: late,
			Cause: rep.Cause, Error: rep.Error, Attempt: rep.Attempt}
		events = append(events, accept)
		if rep.OK {
			cl.state = cellDone
			cl.res = rep.Res
			cl.wall = rep.WallSeconds
			camp.workerCompleted[rep.Worker]++
			wi.completed++
			camp.remaining--
			metrics.FoldSnapshot(c.counters, rep.Snapshot)
			emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
				Done: true, Status: runner.StatusOK, Attempt: rep.Attempt,
				Cfg: cl.cfg, Res: rep.Res, Snapshot: rep.Snapshot,
				WallSeconds: rep.WallSeconds})
		} else {
			cl.failCount++
			cl.failedBy[rep.Worker] = true
			wi.failed++
			rerr := &runner.RunError{Index: rep.Index, Attempt: rep.Attempt,
				Cause: runner.Cause(rep.Cause), Digest: cl.digest,
				Err: errors.New(rep.Error)}
			if len(cl.failedBy) >= c.cfg.QuarantineAfter ||
				cl.failCount >= 2*c.cfg.QuarantineAfter {
				cl.state = cellDone
				cl.err = rerr
				camp.quarantined = append(camp.quarantined, rep.Index)
				c.totQuarantined++
				camp.remaining--
				events = append(events, Event{Type: EventCellQuarantined,
					Sweep: camp.sweep, Index: rep.Index, Worker: rep.Worker,
					Digest: cl.digest, Cause: rep.Cause, Error: rep.Error,
					Attempt: rep.Attempt})
				emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
					Done: true, Status: runner.StatusQuarantined, Attempt: rep.Attempt,
					Cfg: cl.cfg, Err: rerr, WallSeconds: rep.WallSeconds})
			} else {
				cl.state = cellPending
				camp.queue = append(camp.queue, rep.Index)
				emit = append(emit, runner.Outcome{Index: rep.Index, Worker: wi.num,
					Done: true, Status: runner.StatusRetrying, Attempt: rep.Attempt,
					Cfg: cl.cfg, Err: rerr, WallSeconds: rep.WallSeconds})
			}
		}
		if camp.remaining == 0 {
			defer close(camp.done)
		}
	}
	c.mu.Unlock()

	// Durability before acknowledgement: the acceptance is on disk
	// before the worker is told it landed, so a crash after the ack can
	// never lose an acknowledged completion from the log.
	for _, e := range events {
		c.walAppend(wal, e)
	}
	if obs != nil {
		for _, o := range emit {
			obs(o)
		}
	}
	writeJSON(w, resp)
}

// Status snapshots the coordinator's public state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Shutdown:          c.shutdown,
		LeasesOutstanding: len(c.leases),
		Reclaims:          c.totReclaims,
		Duplicates:        c.totDuplicates,
		LateAccepts:       c.totLate,
		Quarantined:       c.totQuarantined,
		DigestConflicts:   c.totConflicts,
		Adopted:           c.totAdopted,
		Replays:           c.totReplays,
	}
	if c.camp != nil {
		st.Sweep = c.camp.sweep
		st.Cells = len(c.camp.cells)
		done := 0
		for _, cl := range c.camp.cells {
			if cl.state == cellDone {
				done++
			}
		}
		st.Completed = done
	}
	held := map[string]int{}
	for _, l := range c.leases {
		held[l.worker]++
	}
	now := c.now()
	for _, wi := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: wi.id, Num: wi.num,
			LastSeenSeconds: now.Sub(wi.lastSeen).Seconds(),
			Completed:       wi.completed, Failed: wi.failed,
			Leases: held[wi.id],
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Num < st.Workers[j].Num })
	return st
}

// handleMetrics serves the coordinator's telemetry in the Prometheus
// text exposition format: cumulative counters folded from every accepted
// successful completion (inpg_<instrument>), fleet dispatch gauges
// (inpg_fleet_*), and a live view summed across each worker's latest
// heartbeat snapshot (inpg_live_<instrument>).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	counters := make(map[string]uint64, len(c.counters))
	for k, v := range c.counters {
		counters[k] = v
	}
	gauges := map[string]float64{
		"fleet.leases_outstanding": float64(len(c.leases)),
		"fleet.workers":            float64(len(c.workers)),
		"fleet.reclaims":           float64(c.totReclaims),
		"fleet.duplicates":         float64(c.totDuplicates),
		"fleet.late_accepts":       float64(c.totLate),
		"fleet.quarantined":        float64(c.totQuarantined),
		"fleet.digest_conflicts":   float64(c.totConflicts),
		"fleet.adopted":            float64(c.totAdopted),
		"fleet.replays":            float64(c.totReplays),
	}
	if c.camp != nil {
		done := 0
		for _, cl := range c.camp.cells {
			if cl.state == cellDone {
				done++
			}
		}
		gauges["fleet.cells"] = float64(len(c.camp.cells))
		gauges["fleet.cells_done"] = float64(done)
	}
	live := map[string]uint64{}
	for _, wi := range c.workers {
		metrics.FoldSnapshot(live, wi.snap)
	}
	c.mu.Unlock()
	for k, v := range live {
		gauges["live."+k] = float64(v)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, counters, gauges)
}

// writeJSON serializes a response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
