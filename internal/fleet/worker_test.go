package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestReconnectDelaySchedule pins the worker's backoff schedule: doubling
// from ReconnectBase, capped at ReconnectMax, immune to shift overflow.
func TestReconnectDelaySchedule(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	for fails, want := range map[int]time.Duration{
		0:   0,
		1:   100 * time.Millisecond,
		2:   200 * time.Millisecond,
		3:   400 * time.Millisecond,
		6:   3200 * time.Millisecond,
		7:   5 * time.Second, // 6.4s capped
		100: 5 * time.Second, // shift clamped, no overflow
	} {
		if got := reconnectDelay(fails, base, max); got != want {
			t.Errorf("reconnectDelay(%d) = %v, want %v", fails, got, want)
		}
	}
	// Degenerate base with huge fail counts must still land on max, not
	// a negative (overflowed) duration.
	if got := reconnectDelay(64, time.Nanosecond, max); got <= 0 || got > max {
		t.Errorf("overflow-prone delay = %v", got)
	}
}

// TestWorkerResendAfterLostAckAcrossRestart: the coordinator accepts a
// completion's delivery attempts with 503 twice (down across a restart)
// before acknowledging. The worker must resend the byte-identical report
// each time, pacing the retries on the reconnect backoff schedule.
func TestWorkerResendAfterLostAckAcrossRestart(t *testing.T) {
	cfg := tinyCfg(1)
	var (
		mu        sync.Mutex
		leased    bool
		bodies    [][]byte
		completes int
	)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		defer mu.Unlock()
		enc := json.NewEncoder(rw)
		switch r.URL.Path {
		case PathLease:
			if leased {
				enc.Encode(LeaseResponse{Shutdown: true})
				return
			}
			leased = true
			enc.Encode(LeaseResponse{Lease: &Lease{ID: "L1", Sweep: "s", Index: 0,
				Digest: "d0", Config: cfg, TTLMillis: 60_000}})
		case PathHeartbeat:
			enc.Encode(HeartbeatResponse{OK: true})
		case PathComplete:
			completes++
			bodies = append(bodies, body)
			if completes <= 2 {
				http.Error(rw, "coordinator restarting", http.StatusServiceUnavailable)
				return
			}
			enc.Encode(CompletionResponse{Accepted: true})
		}
	}))
	defer srv.Close()

	var sleptMu sync.Mutex
	var slept []time.Duration
	w := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "resender",
		ReconnectBase: 10 * time.Millisecond, ReconnectMax: 40 * time.Millisecond,
		Sleep: func(d time.Duration) {
			sleptMu.Lock()
			slept = append(slept, d)
			sleptMu.Unlock()
		},
		Log: testLogger(t)})
	w.Run()

	mu.Lock()
	defer mu.Unlock()
	if completes != 3 {
		t.Fatalf("completion deliveries = %d, want 3 (two lost acks + accept)", completes)
	}
	if !bytes.Equal(bodies[0], bodies[1]) || !bytes.Equal(bodies[1], bodies[2]) {
		t.Fatal("resent completion reports differ from the original")
	}
	if w.Completed() != 1 {
		t.Fatalf("worker completed = %d, want 1 (resends are one cell)", w.Completed())
	}
	sleptMu.Lock()
	defer sleptMu.Unlock()
	// The only blocking waits were the two delivery retries, on the
	// backoff schedule (no idle polls: the restarted coordinator's next
	// lease answer was Shutdown).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
}

// TestWorkerDrainWhileCoordinatorDown: with the coordinator answering
// nothing but 503, the worker's reconnect backoff must cap at
// ReconnectMax, and Drain must still get it to exit promptly — the fake
// clock counts the waits so the test spends no real wall time backing
// off.
func TestWorkerDrainWhileCoordinatorDown(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	var w *Worker
	var slept []time.Duration
	w = NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "drainer",
		ReconnectBase: 100 * time.Millisecond, ReconnectMax: 400 * time.Millisecond,
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			if len(slept) == 6 {
				w.Drain()
			}
		},
		Log: testLogger(t)})
	done := make(chan struct{})
	go func() {
		w.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on Drain while the coordinator was down")
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
	}
	if !w.Draining() {
		t.Fatal("worker not draining")
	}
}

// TestWorkerHeartbeatReannounceAdopts: a Reannounce heartbeat answer
// makes the worker POST its held lease's full identity to /fleet/adopt;
// once adopted, heartbeats continue normally.
func TestWorkerHeartbeatReannounceAdopts(t *testing.T) {
	var (
		mu        sync.Mutex
		adoptReqs []AdoptRequest
		once      sync.Once
	)
	postAdoptHB := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		enc := json.NewEncoder(rw)
		switch r.URL.Path {
		case PathHeartbeat:
			if len(adoptReqs) == 0 {
				enc.Encode(HeartbeatResponse{Reannounce: true})
				return
			}
			once.Do(func() { close(postAdoptHB) })
			enc.Encode(HeartbeatResponse{OK: true})
		case PathAdopt:
			var req AdoptRequest
			json.NewDecoder(r.Body).Decode(&req)
			adoptReqs = append(adoptReqs, req)
			enc.Encode(AdoptResponse{Adopted: true})
		}
	}))
	defer srv.Close()

	w := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "hb", Log: testLogger(t)})
	l := &Lease{ID: "L9", Sweep: "s", Index: 3, Digest: "d3", TTLMillis: 9}
	stop := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		w.heartbeatLoop(l, stop)
		close(loopDone)
	}()
	select {
	case <-postAdoptHB:
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeats did not continue after adoption")
	}
	close(stop)
	<-loopDone

	mu.Lock()
	defer mu.Unlock()
	if len(adoptReqs) != 1 {
		t.Fatalf("adopt requests = %d, want exactly 1", len(adoptReqs))
	}
	req := adoptReqs[0]
	if req.Worker != "hb" || req.LeaseID != "L9" || req.Sweep != "s" ||
		req.Index != 3 || req.Digest != "d3" {
		t.Fatalf("adopt request = %+v", req)
	}
}

// TestWorkerAdoptDeniedStopsHeartbeats: when the restarted coordinator
// refuses the adoption (Gone — e.g. the cell was already resolved), the
// heartbeat loop ends on its own; the run itself still finishes and the
// completion is delivered for digest-matched late acceptance.
func TestWorkerAdoptDeniedStopsHeartbeats(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(rw)
		switch r.URL.Path {
		case PathHeartbeat:
			enc.Encode(HeartbeatResponse{Reannounce: true})
		case PathAdopt:
			enc.Encode(AdoptResponse{Gone: true})
		}
	}))
	defer srv.Close()

	w := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "denied", Log: testLogger(t)})
	l := &Lease{ID: "L0", Sweep: "s", Index: 0, Digest: "d0", TTLMillis: 9}
	stop := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		w.heartbeatLoop(l, stop)
		close(loopDone)
	}()
	select {
	case <-loopDone: // returned without stop being closed
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat loop kept running after adoption was denied")
	}
}
