// Package fleet turns the single-machine campaign runner into a
// coordinator/worker architecture over HTTP: the coordinator loads a
// sweep's full configuration list and hands out leases (cell index +
// config + digest + deadline) to workers that poll for work; workers wrap
// the resilient attempt machinery of internal/runner in a serve loop and
// stream outcomes back.
//
// The design goal is that the whole fleet inherits the resilience
// semantics PR 5 gave one process. Dispatch is at-least-once — a killed
// or wedged worker's lease expires and its cell is re-dispatched to a
// survivor — and made effectively-once by digest-matched idempotency:
// every completion names the configuration digest it ran, the first
// matching completion wins, and later duplicates are detected and
// dropped. Because every simulation is single-threaded and seeded,
// re-running a cell anywhere produces bit-identical results, so a sweep
// executed by a chaos-ridden fleet renders byte-identically to a
// single-process run (pinned by test and CI).
//
// The coordinator's manifest directory remains the durable store: run
// manifests land exactly as in local sweeps (via the same observer
// plumbing), a campaign journal (campaign-<sweep>.json) records the
// fleet-level account of who ran what, and -resume promotes a partially
// completed fleet run for free.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"inpg"
	"inpg/internal/manifest"
	"inpg/internal/metrics"
)

// Endpoint paths served by the coordinator (Coordinator implements
// http.Handler; mount it at the server root).
const (
	PathLease     = "/fleet/lease"
	PathHeartbeat = "/fleet/heartbeat"
	PathComplete  = "/fleet/complete"
	PathStatus    = "/fleet/status"
	// PathAdopt lets a worker re-register a lease it holds from a
	// coordinator incarnation that crashed: the restarted coordinator
	// answers its heartbeat with Reannounce, the worker posts the lease's
	// identity here, and the coordinator adopts the in-flight work if the
	// digest matches the replayed campaign.
	PathAdopt   = "/fleet/adopt"
	PathHealthz = "/healthz"
	// PathMetrics serves the coordinator's aggregated telemetry —
	// campaign counters folded from accepted completions plus a live view
	// assembled from worker heartbeat snapshots — in the Prometheus text
	// exposition format.
	PathMetrics = "/metrics"
)

// LeaseRequest is a worker's poll for work.
type LeaseRequest struct {
	// Worker identifies the polling worker across requests; lease
	// accounting, quarantine votes and the journal's per-worker completion
	// counts key on it.
	Worker string `json:"worker"`
}

// Lease grants one sweep cell to one worker until the deadline passes.
// The full configuration travels in the lease, so workers are
// sweep-agnostic: they execute whatever cell they are handed.
type Lease struct {
	ID     string `json:"id"`
	Sweep  string `json:"sweep"`
	Index  int    `json:"index"`
	Digest string `json:"digest"`
	// Config is the exact configuration to execute. Config.Shards is an
	// execution strategy excluded from the JSON encoding, so workers pick
	// their own shard count (auto) without perturbing results.
	Config inpg.Config `json:"config"`
	// TTLMillis is the lease's time-to-live; a worker must heartbeat
	// (comfortably) inside it or the coordinator reclaims the cell.
	TTLMillis int64 `json:"ttl_ms"`
	// Retries and RunTimeoutNanos ship the campaign's per-cell attempt
	// policy to the worker (runner.Policy.Retries / RunTimeout).
	Retries         int   `json:"retries"`
	RunTimeoutNanos int64 `json:"run_timeout_ns"`
}

// LeaseResponse answers a poll: a lease, "no work right now" (nil lease),
// or a shutdown order after which the worker should exit its serve loop.
type LeaseResponse struct {
	Lease    *Lease `json:"lease,omitempty"`
	Shutdown bool   `json:"shutdown,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Snapshot, when present, is the worker's most recent completed-cell
	// metric snapshot, piggybacked on the heartbeat so the coordinator
	// can serve a live fleet-wide telemetry view on /metrics without a
	// separate reporting channel. Purely observational: the coordinator
	// never acts on it.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. Gone reports that the lease
// no longer exists — expired and reclaimed, or completed by another
// worker — so the heartbeating worker should stop renewing (its eventual
// completion is still accepted or deduplicated by digest). Reannounce
// reports that the lease was granted by a coordinator incarnation that
// since crashed and restarted: the worker should POST the lease's
// identity to /fleet/adopt so its in-flight work survives the outage
// instead of being reclaimed and redone.
type HeartbeatResponse struct {
	OK         bool `json:"ok"`
	Gone       bool `json:"gone,omitempty"`
	Reannounce bool `json:"reannounce,omitempty"`
}

// AdoptRequest re-registers a lease with a restarted coordinator: which
// worker holds it, which cell it maps to, and the digest it is running —
// the coordinator adopts it only if the digest matches the replayed
// campaign (otherwise the worker finishes anyway and its completion is
// judged by the usual digest-matched idempotency).
type AdoptRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	Sweep   string `json:"sweep"`
	Index   int    `json:"index"`
	Digest  string `json:"digest"`
	Attempt int    `json:"attempt,omitempty"`
}

// AdoptResponse answers an adoption attempt. Adopted means the lease is
// live again (fresh TTL, heartbeats resume as normal); Gone means the
// cell was resolved meanwhile or the digest no longer matches — the
// worker stops renewing but still delivers its completion.
type AdoptResponse struct {
	Adopted bool `json:"adopted"`
	Gone    bool `json:"gone,omitempty"`
}

// CompletionReport is a worker's final word on a lease: the cell it ran
// (index + digest), the result or the typed failure, and the attempt
// accounting from the worker-local retry loop.
type CompletionReport struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	Sweep   string `json:"sweep"`
	Index   int    `json:"index"`
	Digest  string `json:"digest"`

	OK          bool              `json:"ok"`
	Res         *inpg.Results     `json:"res,omitempty"`
	Snapshot    *metrics.Snapshot `json:"snapshot,omitempty"`
	WallSeconds float64           `json:"wall_seconds"`

	// Error, Cause and Attempt describe the final failure when OK is
	// false (runner.RunError fields flattened for the wire).
	Error   string `json:"error,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// CompletionResponse acknowledges a completion. Duplicate reports that
// the cell was already resolved (first write won) and this report was
// dropped; the worker must not resend.
type CompletionResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// WorkerStatus is one fleet worker's liveness line on the dashboard.
type WorkerStatus struct {
	ID string `json:"id"`
	// Num is the small integer the coordinator assigned this worker for
	// runner.Outcome.Worker slots (monitor compatibility).
	Num             int     `json:"num"`
	LastSeenSeconds float64 `json:"last_seen_seconds"`
	Completed       int     `json:"completed"`
	Failed          int     `json:"failed"`
	Leases          int     `json:"leases"`
}

// Status is the coordinator's public state: the active campaign's
// progress plus fleet-lifetime counters, served on /fleet/status and
// embedded in the sweep monitor's /vars frame.
type Status struct {
	Sweep     string `json:"sweep,omitempty"`
	Cells     int    `json:"cells"`
	Completed int    `json:"completed"`
	Shutdown  bool   `json:"shutdown,omitempty"`

	LeasesOutstanding int `json:"leases_outstanding"`
	// Fleet-lifetime counters (across campaigns): leases reclaimed after
	// expiry, duplicate completions dropped, late completions accepted
	// after their lease was reclaimed, cells quarantined after distinct
	// workers failed the same digest, and completions rejected for a
	// digest mismatch.
	Reclaims        int `json:"reclaims"`
	Duplicates      int `json:"duplicates"`
	LateAccepts     int `json:"late_accepts"`
	Quarantined     int `json:"quarantined"`
	DigestConflicts int `json:"digest_conflicts"`
	// Adopted counts leases from crashed coordinator incarnations that
	// survived the outage (re-registered or completed on the orphaned
	// lease); Replays counts coordinator restarts that replayed a
	// campaign WAL (including restarts of earlier incarnations, read
	// back from the log).
	Adopted int `json:"adopted"`
	Replays int `json:"replays"`

	Workers []WorkerStatus `json:"workers,omitempty"`
}

// JournalSchemaVersion identifies the campaign journal layout. Version 2
// added the crash-recovery fields (Adopted, Replays, Replayed); version 1
// journals read back with those at zero.
const JournalSchemaVersion = 2

// journalSchemaMin is the oldest journal layout still readable.
const journalSchemaMin = 1

// JournalKind tags a campaign journal file.
const JournalKind = "inpg-campaign-journal"

// Journal is the coordinator's durable account of one fleet campaign,
// written into the manifest directory next to the per-run manifests. It
// is what lets inpgvalidate audit a fleet run: which digest every index
// was supposed to run (cross-checked against the manifests on disk), how
// much each worker completed, and how often the failure machinery fired.
type Journal struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	Sweep         string `json:"sweep"`
	Cells         int    `json:"cells"`
	// Digests maps every cell index to the config digest dispatched for
	// it — the idempotency key completions were matched on.
	Digests map[int]string `json:"digests"`
	// WorkerCompletions counts accepted completions per worker ID.
	WorkerCompletions map[string]int `json:"worker_completions"`
	Reclaims          int            `json:"reclaims"`
	Duplicates        int            `json:"duplicates"`
	LateAccepts       int            `json:"late_accepts"`
	DigestConflicts   int            `json:"digest_conflicts"`
	Quarantined       []int          `json:"quarantined,omitempty"`
	// Skipped counts cells satisfied without dispatch (resume hits and
	// pre-screened estimates).
	Skipped int `json:"skipped"`
	// Adopted counts leases that survived a coordinator crash (adopted by
	// a restarted incarnation instead of reclaimed); Replays counts the
	// coordinator restarts that replayed the campaign's WAL; Replayed
	// counts cells resolved at replay time from their on-disk manifests
	// instead of being re-dispatched.
	Adopted  int `json:"adopted"`
	Replays  int `json:"replays"`
	Replayed int `json:"replayed"`
}

// Validate checks the journal against its schema.
func (j *Journal) Validate() error {
	switch {
	case j.SchemaVersion < journalSchemaMin || j.SchemaVersion > JournalSchemaVersion:
		return fmt.Errorf("journal: schema_version %d, want %d..%d", j.SchemaVersion, journalSchemaMin, JournalSchemaVersion)
	case j.Kind != JournalKind:
		return fmt.Errorf("journal: kind %q, want %q", j.Kind, JournalKind)
	case j.Sweep == "":
		return fmt.Errorf("journal: empty sweep")
	case j.Cells < 0:
		return fmt.Errorf("journal: negative cell count %d", j.Cells)
	case len(j.Digests) != j.Cells:
		return fmt.Errorf("journal: %d digests for %d cells", len(j.Digests), j.Cells)
	}
	for idx, d := range j.Digests {
		if idx < 0 || idx >= j.Cells {
			return fmt.Errorf("journal: digest for out-of-range index %d", idx)
		}
		if d == "" {
			return fmt.Errorf("journal: empty digest for index %d", idx)
		}
	}
	return nil
}

// JournalFilename returns the journal's conventional file name within a
// sweep output directory. The distinct prefix keeps it out of
// manifest.ScanDir's resume scan.
func JournalFilename(sweep string) string {
	return fmt.Sprintf("campaign-%s.json", sweep)
}

// WriteJournal writes the journal as indented JSON into dir under its
// conventional name, creating dir if needed.
func WriteJournal(dir string, j *Journal) (string, error) {
	if err := j.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, JournalFilename(j.Sweep))
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return "", err
	}
	// Atomic: the journal is the WAL's compaction — a torn snapshot next
	// to a sealed log would be worse than no snapshot at all.
	return path, manifest.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// ReadJournal loads and validates a campaign journal from disk.
func ReadJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j Journal
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return &j, nil
}
