package fleet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"inpg/internal/manifest"
	"inpg/internal/runner"
)

// manifestPolicy mimics the experiments observer: every accepted OK
// completion lands a run manifest, which is what replay resolves cells
// from. (fakeWorker completions carry fake results; Build records them
// faithfully.)
func manifestPolicy(t *testing.T, dir, sweep string) runner.Policy {
	t.Helper()
	return runner.Policy{Observer: func(o runner.Outcome) {
		if o.Done && o.Status == runner.StatusOK {
			m := manifest.Build(sweep, o.Index, o.Cfg, o.Res, o.Snapshot, o.WallSeconds, nil)
			if _, err := m.WriteFile(dir); err != nil {
				t.Errorf("manifest write: %v", err)
			}
		}
	}}
}

func (f *fakeWorker) adopt(l *Lease) AdoptResponse {
	var resp AdoptResponse
	f.post(PathAdopt, AdoptRequest{Worker: f.id, LeaseID: l.ID, Sweep: l.Sweep,
		Index: l.Index, Digest: l.Digest}, &resp)
	return resp
}

// TestCoordinatorCrashReplayAdoptsLease is the tentpole scenario: the
// coordinator dies right after granting a lease, a restarted coordinator
// replays the WAL against the same manifest dir, resolves the already-
// manifested cell without re-running it, answers the surviving worker's
// heartbeat with Reannounce, adopts the lease, and finishes the campaign.
func TestCoordinatorCrashReplayAdoptsLease(t *testing.T) {
	dir := t.TempDir()
	cfgs := tinyCfgs(3)

	a := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: dir,
		ChaosKillAfter: 2, Exit: func(int) {}, Log: testLogger(t)})
	srvA := httptest.NewServer(a)
	defer srvA.Close()
	waitA := startCampaign(t, a, "crash", cfgs, manifestPolicy(t, dir, "crash"))

	w := &fakeWorker{t: t, url: srvA.URL, id: "survivor"}
	l0 := w.lease()
	if l0 == nil || l0.Index != 0 {
		t.Fatalf("first lease = %+v", l0)
	}
	if resp, _ := w.complete(l0, true, 100); !resp.Accepted {
		t.Fatalf("completion = %+v", resp)
	}
	// The second grant trips ChaosKillAfter: the response is flushed and
	// then the coordinator dies, so the worker genuinely holds the lease.
	l1 := w.lease()
	if l1 == nil || l1.Index != 1 {
		t.Fatalf("lease across crash = %+v", l1)
	}

	_, errsA := waitA()
	if errsA[0] != nil {
		t.Fatalf("pre-crash cell errored: %v", errsA[0])
	}
	if errsA[1] == nil || errsA[1].Cause != runner.CauseCanceled ||
		errsA[2] == nil || errsA[2].Cause != runner.CauseCanceled {
		t.Fatalf("crashed campaign errs = %v / %v, want canceled", errsA[1], errsA[2])
	}
	// The dead coordinator answers every request 503, like a dead process.
	var hb HeartbeatResponse
	if status := w.post(PathHeartbeat, HeartbeatRequest{Worker: w.id, LeaseID: l1.ID}, &hb); status != http.StatusServiceUnavailable {
		t.Fatalf("dead coordinator heartbeat status = %d, want 503", status)
	}

	// Restart against the same manifest dir.
	b := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: dir, Log: testLogger(t)})
	srvB := httptest.NewServer(b)
	defer srvB.Close()
	waitB := startCampaign(t, b, "crash", cfgs, manifestPolicy(t, dir, "crash"))

	w.url = srvB.URL
	// The replayed orphan lease answers Reannounce, not Gone.
	if hb := w.heartbeat(l1.ID); !hb.Reannounce || hb.Gone || hb.OK {
		t.Fatalf("orphan heartbeat = %+v, want reannounce", hb)
	}
	if ad := w.adopt(l1); !ad.Adopted {
		t.Fatalf("adopt = %+v", ad)
	}
	// Adopted: from here it is an ordinary lease.
	if hb := w.heartbeat(l1.ID); !hb.OK {
		t.Fatalf("post-adopt heartbeat = %+v", hb)
	}
	if resp, _ := w.complete(l1, true, 111); !resp.Accepted {
		t.Fatalf("adopted completion = %+v", resp)
	}
	l2 := w.lease()
	if l2 == nil || l2.Index != 2 {
		t.Fatalf("remaining lease = %+v", l2)
	}
	if strings.HasPrefix(l1.ID, l2.ID) || l2.ID == l1.ID {
		t.Fatalf("lease ID collision across restart: %s vs %s", l2.ID, l1.ID)
	}
	w.complete(l2, true, 222)

	resB, errsB := waitB()
	for i := range cfgs {
		if errsB[i] != nil || resB[i] == nil {
			t.Fatalf("cell %d after restart: res %v err %v", i, resB[i], errsB[i])
		}
	}
	// Cell 0 was resolved from its manifest, not re-run: the result is
	// the pre-crash one.
	if resB[0].Runtime != 100 || resB[1].Runtime != 111 || resB[2].Runtime != 222 {
		t.Fatalf("runtimes = %d/%d/%d", resB[0].Runtime, resB[1].Runtime, resB[2].Runtime)
	}
	st := b.Status()
	if st.Adopted != 1 || st.Replays != 1 || st.Reclaims != 0 {
		t.Fatalf("status = adopted %d replays %d reclaims %d, want 1/1/0 (adopted, not reclaimed)",
			st.Adopted, st.Replays, st.Reclaims)
	}

	j, err := ReadJournal(filepath.Join(dir, JournalFilename("crash")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Adopted != 1 || j.Replays != 1 || j.Replayed != 1 {
		t.Fatalf("journal adopted=%d replays=%d replayed=%d, want 1/1/1", j.Adopted, j.Replays, j.Replayed)
	}
	rep, err := ReplayWAL(filepath.Join(dir, WALFilename("crash")))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Adoptions != 1 || rep.Restarts != 1 || len(rep.Orphans) != 0 {
		t.Fatalf("final WAL replay = closed %v adoptions %d restarts %d orphans %d",
			rep.Closed, rep.Adoptions, rep.Restarts, len(rep.Orphans))
	}
}

// TestCoordinatorDoubleCrashReplay: the restarted coordinator crashes
// too — after adopting a lease and granting a new one — and a third
// incarnation replays a log that already contains a replay marker and an
// adoption. Mid-campaign the live WAL is also replayed read-only,
// modeling a crash *during* replay: replay is pure, so the interrupted
// incarnation leaves nothing behind.
func TestCoordinatorDoubleCrashReplay(t *testing.T) {
	dir := t.TempDir()
	cfgs := tinyCfgs(2)
	walFile := filepath.Join(dir, WALFilename("dc"))

	a := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: dir,
		ChaosKillAfter: 1, Exit: func(int) {}, Log: testLogger(t)})
	srvA := httptest.NewServer(a)
	defer srvA.Close()
	waitA := startCampaign(t, a, "dc", cfgs, manifestPolicy(t, dir, "dc"))
	w := &fakeWorker{t: t, url: srvA.URL, id: "survivor"}
	l0 := w.lease() // first grant kills A; the worker holds cell 0
	if l0 == nil || l0.Index != 0 {
		t.Fatalf("lease = %+v", l0)
	}
	waitA()

	b := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: dir,
		ChaosKillAfter: 1, Exit: func(int) {}, Log: testLogger(t)})
	srvB := httptest.NewServer(b)
	defer srvB.Close()
	waitB := startCampaign(t, b, "dc", cfgs, manifestPolicy(t, dir, "dc"))

	// Crash-during-replay model: replaying the live log mid-campaign is
	// read-only and must parse — an incarnation dying here changes nothing.
	before, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := ReplayWAL(walFile); err != nil || rep.Restarts != 1 {
		t.Fatalf("mid-campaign replay: rep %+v err %v", rep, err)
	}
	after, _ := os.ReadFile(walFile)
	if string(before) != string(after) {
		t.Fatal("mid-campaign replay modified the log")
	}

	w.url = srvB.URL
	if hb := w.heartbeat(l0.ID); !hb.Reannounce {
		t.Fatalf("heartbeat on B = %+v", hb)
	}
	if ad := w.adopt(l0); !ad.Adopted {
		t.Fatalf("adopt on B = %+v", ad)
	}
	if resp, _ := w.complete(l0, true, 100); !resp.Accepted {
		t.Fatalf("completion on B = %+v", resp)
	}
	l1 := w.lease() // B's first grant kills B; the worker holds cell 1
	if l1 == nil || l1.Index != 1 {
		t.Fatalf("lease across second crash = %+v", l1)
	}
	waitB()

	c := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: dir, Log: testLogger(t)})
	srvC := httptest.NewServer(c)
	defer srvC.Close()
	waitC := startCampaign(t, c, "dc", cfgs, manifestPolicy(t, dir, "dc"))

	w.url = srvC.URL
	if hb := w.heartbeat(l1.ID); !hb.Reannounce {
		t.Fatalf("heartbeat on C = %+v", hb)
	}
	if ad := w.adopt(l1); !ad.Adopted {
		t.Fatalf("adopt on C = %+v", ad)
	}
	if resp, _ := w.complete(l1, true, 200); !resp.Accepted {
		t.Fatalf("completion on C = %+v", resp)
	}

	res, errs := waitC()
	if errs[0] != nil || errs[1] != nil || res[0].Runtime != 100 || res[1].Runtime != 200 {
		t.Fatalf("final results = %v/%v errs %v/%v", res[0], res[1], errs[0], errs[1])
	}
	j, err := ReadJournal(filepath.Join(dir, JournalFilename("dc")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Adopted != 2 || j.Replays != 2 || j.Replayed != 1 {
		t.Fatalf("journal adopted=%d replays=%d replayed=%d, want 2/2/1", j.Adopted, j.Replays, j.Replayed)
	}
	rep, err := ReplayWAL(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Adoptions != 2 || rep.Restarts != 2 {
		t.Fatalf("final WAL = closed %v adoptions %d restarts %d", rep.Closed, rep.Adoptions, rep.Restarts)
	}
}

// TestFleetTokenAuth: with a token configured, every /fleet/* request
// without the bearer secret is 401; /healthz and /metrics stay open; a
// worker configured with the token completes a campaign normally.
func TestFleetTokenAuth(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Minute, Token: "s3cret", Log: testLogger(t)})
	srv := httptest.NewServer(c)
	defer srv.Close()

	post := func(token string) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+PathLease,
			strings.NewReader(`{"worker":"w"}`))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := post(""); status != http.StatusUnauthorized {
		t.Fatalf("tokenless lease status = %d, want 401", status)
	}
	if status := post("wrong"); status != http.StatusUnauthorized {
		t.Fatalf("wrong-token lease status = %d, want 401", status)
	}
	if status := post("s3cret"); status != http.StatusOK {
		t.Fatalf("authorized lease status = %d, want 200", status)
	}
	for _, open := range []string{PathHealthz, PathMetrics} {
		resp, err := http.Get(srv.URL + open)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d, want 200 without token", open, resp.StatusCode)
		}
	}

	wait := startCampaign(t, c, "auth", tinyCfgs(1), runner.Policy{})
	w := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "tokened", Token: "s3cret",
		PollInterval: 2 * time.Millisecond, Log: testLogger(t)})
	done := make(chan struct{})
	go func() {
		w.Run()
		close(done)
	}()
	res, errs := wait()
	if errs[0] != nil || res[0] == nil {
		t.Fatalf("authorized worker campaign: res %v err %v", res[0], errs[0])
	}
	c.Shutdown()
	<-done
}

// TestJournalWriteRetrySurfacesTypedError: when the journal cannot land
// (the manifest dir is a plain file), the campaign still completes, the
// write is retried a bounded number of times, and the failure surfaces
// as a typed *JournalWriteError on JournalError.
func TestJournalWriteRetrySurfacesTypedError(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: blocker, Log: testLogger(t)})
	srv := httptest.NewServer(c)
	defer srv.Close()
	wait := startCampaign(t, c, "jfail", tinyCfgs(1), runner.Policy{})

	w := &fakeWorker{t: t, url: srv.URL, id: "worker-j"}
	l := w.lease()
	if resp, _ := w.complete(l, true, 9); !resp.Accepted {
		t.Fatalf("completion = %+v", resp)
	}
	res, errs := wait()
	if errs[0] != nil || res[0] == nil {
		t.Fatalf("campaign should complete despite journal failure: res %v err %v", res[0], errs[0])
	}
	var jerr *JournalWriteError
	if err := c.JournalError(); !errors.As(err, &jerr) {
		t.Fatalf("JournalError = %v (%T), want *JournalWriteError", err, err)
	}
	if jerr.Sweep != "jfail" || jerr.Attempts != journalRetries || jerr.Unwrap() == nil {
		t.Fatalf("typed error = %+v", jerr)
	}
}
