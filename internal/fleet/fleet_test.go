package fleet

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"inpg"
	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// testLogger routes structured fleet logs into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// clock is a manually advanced time source for deterministic lease
// expiry tests.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// tinyCfg is a cheap real configuration (a 2×2 mesh finishes in
// milliseconds) for tests that actually execute cells.
func tinyCfg(seed int64) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 2, 2
	cfg.Threads = 4
	cfg.CSPerThread = 2
	cfg.Seed = seed
	return cfg
}

func tinyCfgs(n int) []inpg.Config {
	out := make([]inpg.Config, n)
	for i := range out {
		out[i] = tinyCfg(int64(100 + i))
	}
	return out
}

// startCampaign launches RunCampaign on a goroutine and returns a waiter;
// it blocks until the coordinator has registered the campaign so tests
// can immediately start leasing.
func startCampaign(t *testing.T, c *Coordinator, sweep string, cfgs []inpg.Config, p runner.Policy) func() ([]*inpg.Results, []*runner.RunError) {
	t.Helper()
	type out struct {
		res  []*inpg.Results
		errs []*runner.RunError
	}
	ch := make(chan out, 1)
	go func() {
		res, errs := c.RunCampaign(sweep, cfgs, p)
		ch <- out{res, errs}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Status().Cells != len(cfgs) {
		if time.Now().After(deadline) {
			t.Fatal("campaign never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return func() ([]*inpg.Results, []*runner.RunError) {
		select {
		case o := <-ch:
			return o.res, o.errs
		case <-time.After(30 * time.Second):
			t.Fatal("campaign did not finish")
			return nil, nil
		}
	}
}

// fakeWorker drives the coordinator's wire protocol by hand, so tests
// control exactly when leases, heartbeats and completions happen.
type fakeWorker struct {
	t   *testing.T
	url string
	id  string
}

func (f *fakeWorker) post(path string, in, out any) int {
	f.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.Post(f.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			f.t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func (f *fakeWorker) lease() *Lease {
	var resp LeaseResponse
	f.post(PathLease, LeaseRequest{Worker: f.id}, &resp)
	return resp.Lease
}

func (f *fakeWorker) heartbeat(leaseID string) HeartbeatResponse {
	var resp HeartbeatResponse
	f.post(PathHeartbeat, HeartbeatRequest{Worker: f.id, LeaseID: leaseID}, &resp)
	return resp
}

// complete reports a lease finished with a recognizable fake result.
func (f *fakeWorker) complete(l *Lease, ok bool, runtime uint64) (CompletionResponse, int) {
	rep := CompletionReport{Worker: f.id, LeaseID: l.ID, Sweep: l.Sweep,
		Index: l.Index, Digest: l.Digest, OK: ok, WallSeconds: 0.01}
	if ok {
		rep.Res = &inpg.Results{Runtime: runtime}
	} else {
		rep.Error = "injected failure"
		rep.Cause = string(runner.CauseError)
	}
	var resp CompletionResponse
	status := f.post(PathComplete, rep, &resp)
	return resp, status
}

// TestHeartbeatJustAfterExpiry: a heartbeat that arrives after the lease
// deadline — even before the periodic reclaimer ran — finds the lease
// gone and the cell back in the queue; the original holder's eventual
// completion is deduplicated after another worker resolves the cell.
func TestHeartbeatJustAfterExpiry(t *testing.T) {
	clk := newClock()
	dir := t.TempDir()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, ManifestDir: dir, Now: clk.Now})
	srv := httptest.NewServer(c)
	defer srv.Close()
	// Two cells so the campaign is still active when the duplicate
	// arrives — campaign-scoped counters land in the journal.
	cfgs := tinyCfgs(2)
	wait := startCampaign(t, c, "hb", cfgs, runner.Policy{})

	a := &fakeWorker{t: t, url: srv.URL, id: "worker-a"}
	b := &fakeWorker{t: t, url: srv.URL, id: "worker-b"}

	la := a.lease()
	if la == nil || la.Index != 0 {
		t.Fatalf("lease = %+v", la)
	}
	if hb := a.heartbeat(la.ID); !hb.OK {
		t.Fatalf("live heartbeat = %+v", hb)
	}
	clk.Advance(time.Minute + time.Second)
	if hb := a.heartbeat(la.ID); !hb.Gone || hb.OK {
		t.Fatalf("post-expiry heartbeat = %+v, want gone", hb)
	}
	if st := c.Status(); st.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1", st.Reclaims)
	}

	// The reclaimed cell re-queues behind the untouched cell 1, so b
	// drains the queue holding both leases at once.
	lb1 := b.lease()
	if lb1 == nil || lb1.Index != 1 {
		t.Fatalf("first lease after reclaim = %+v, want cell 1", lb1)
	}
	lb0 := b.lease()
	if lb0 == nil || lb0.Index != 0 || lb0.ID == la.ID {
		t.Fatalf("re-dispatched lease = %+v (original %s)", lb0, la.ID)
	}
	if resp, _ := b.complete(lb0, true, 222); !resp.Accepted {
		t.Fatalf("fresh completion = %+v", resp)
	}
	// The expired holder reports in anyway: dropped as a duplicate.
	if resp, _ := a.complete(la, true, 111); !resp.Duplicate || resp.Accepted {
		t.Fatalf("stale completion = %+v, want duplicate", resp)
	}
	b.complete(lb1, true, 333)

	res, errs := wait()
	if errs[0] != nil || res[0] == nil || res[0].Runtime != 222 {
		t.Fatalf("campaign result = %+v err %v, want worker-b's write to win", res[0], errs[0])
	}
	j, err := ReadJournal(filepath.Join(dir, JournalFilename("hb")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Reclaims != 1 || j.Duplicates != 1 || j.WorkerCompletions["worker-b"] != 2 ||
		j.WorkerCompletions["worker-a"] != 0 {
		t.Fatalf("journal = %+v", j)
	}
	if j.Digests[0] != cfgs[0].Digest() || j.Digests[1] != cfgs[1].Digest() {
		t.Fatalf("journal digests %v", j.Digests)
	}
}

// TestLateCompletionAfterReclaimWins: two workers race the same digest —
// the reclaimed original finishes first, its digest still matches, so it
// is accepted (late) and the re-dispatched worker's result is dropped.
func TestLateCompletionAfterReclaimWins(t *testing.T) {
	clk := newClock()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, Now: clk.Now})
	srv := httptest.NewServer(c)
	defer srv.Close()
	wait := startCampaign(t, c, "race", tinyCfgs(1), runner.Policy{})

	a := &fakeWorker{t: t, url: srv.URL, id: "worker-a"}
	b := &fakeWorker{t: t, url: srv.URL, id: "worker-b"}

	la := a.lease()
	clk.Advance(2 * time.Minute)
	lb := b.lease() // lazy reclaim happens on this poll
	if lb == nil || lb.Index != 0 {
		t.Fatalf("lease after reclaim = %+v", lb)
	}
	// The original worker gets there first: late but digest-matched.
	if resp, _ := a.complete(la, true, 111); !resp.Accepted {
		t.Fatalf("late completion = %+v, want accepted", resp)
	}
	if resp, _ := b.complete(lb, true, 222); !resp.Duplicate {
		t.Fatalf("second completion = %+v, want duplicate", resp)
	}

	res, errs := wait()
	if errs[0] != nil || res[0] == nil || res[0].Runtime != 111 {
		t.Fatalf("result = %+v err %v, want the first (late) write", res[0], errs[0])
	}
	st := c.Status()
	if st.Reclaims != 1 || st.LateAccepts != 1 || st.Duplicates != 1 {
		t.Fatalf("status = %+v", st)
	}
}

// TestDigestConflictRejected: a completion naming the wrong digest is
// rejected with 409 and does not resolve the cell.
func TestDigestConflictRejected(t *testing.T) {
	c := NewCoordinator(Config{})
	srv := httptest.NewServer(c)
	defer srv.Close()
	wait := startCampaign(t, c, "conflict", tinyCfgs(1), runner.Policy{})

	a := &fakeWorker{t: t, url: srv.URL, id: "worker-a"}
	l := a.lease()
	bad := *l
	bad.Digest = "deadbeef"
	if _, status := a.complete(&bad, true, 666); status != http.StatusConflict {
		t.Fatalf("conflicting completion status = %d, want 409", status)
	}
	if st := c.Status(); st.DigestConflicts != 1 || st.Completed != 0 {
		t.Fatalf("status after conflict = %+v", st)
	}
	if resp, _ := a.complete(l, true, 42); !resp.Accepted {
		t.Fatalf("correct completion = %+v", resp)
	}
	res, errs := wait()
	if errs[0] != nil || res[0] == nil || res[0].Runtime != 42 {
		t.Fatalf("result = %+v err %v", res[0], errs[0])
	}
}

// TestQuarantineAfterDistinctWorkerFailures: two different workers
// failing the same digest quarantines the cell with the final typed
// error; the campaign still completes.
func TestQuarantineAfterDistinctWorkerFailures(t *testing.T) {
	dir := t.TempDir()
	c := NewCoordinator(Config{QuarantineAfter: 2, ManifestDir: dir})
	srv := httptest.NewServer(c)
	defer srv.Close()
	cfgs := tinyCfgs(2)
	wait := startCampaign(t, c, "quar", cfgs, runner.Policy{})

	a := &fakeWorker{t: t, url: srv.URL, id: "worker-a"}
	b := &fakeWorker{t: t, url: srv.URL, id: "worker-b"}

	la := a.lease()
	if resp, _ := a.complete(la, false, 0); resp.Accepted != true {
		t.Fatalf("failure report = %+v", resp)
	}
	// The failed cell is re-queued behind cell 1.
	lb := b.lease()
	if lb.Index != 1 {
		t.Fatalf("lease index = %d, want 1", lb.Index)
	}
	b.complete(lb, true, 7)
	lb2 := b.lease()
	if lb2 == nil || lb2.Index != la.Index {
		t.Fatalf("re-dispatched lease = %+v, want cell %d", lb2, la.Index)
	}
	b.complete(lb2, false, 0)

	res, errs := wait()
	if errs[0] == nil || errs[0].Cause != runner.CauseError {
		t.Fatalf("quarantined cell error = %+v", errs[0])
	}
	if res[0] != nil || res[1] == nil {
		t.Fatalf("results = %v / %v", res[0], res[1])
	}
	j, err := ReadJournal(filepath.Join(dir, JournalFilename("quar")))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Quarantined) != 1 || j.Quarantined[0] != la.Index {
		t.Fatalf("journal quarantined = %v", j.Quarantined)
	}
}

// TestWorkerFleetMatchesLocalRun: two real workers executing real cells
// produce exactly the results a local RunResilient produces — the fleet's
// bit-identity contract.
func TestWorkerFleetMatchesLocalRun(t *testing.T) {
	cfgs := tinyCfgs(6)
	localRes, localErrs := runner.RunResilient(cfgs, runner.Policy{Workers: 2})
	for i, e := range localErrs {
		if e != nil {
			t.Fatalf("local cell %d failed: %v", i, e)
		}
	}

	c := NewCoordinator(Config{LeaseTTL: 5 * time.Second})
	srv := httptest.NewServer(c)
	defer srv.Close()
	wait := startCampaign(t, c, "fleet", cfgs, runner.Policy{})

	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		w := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: id,
			PollInterval: 2 * time.Millisecond, Log: testLogger(t)})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run()
		}()
	}

	res, errs := wait()
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("fleet cell %d failed: %v", i, errs[i])
		}
		if !reflect.DeepEqual(res[i], localRes[i]) {
			t.Fatalf("fleet cell %d diverges from local run:\n%+v\nvs\n%+v", i, res[i], localRes[i])
		}
	}
	st := c.Status()
	if len(st.Workers) != 2 {
		t.Fatalf("fleet workers = %+v", st.Workers)
	}
	c.Shutdown()
	wg.Wait() // workers observe the shutdown answer and exit
}

// TestWorkerChaosKillTriggersReclaim: a worker dying while holding a
// lease (chaos kill) loses its heartbeats; the lease expires, the cell is
// re-dispatched to a survivor, and the campaign completes with results
// identical to a clean local run.
func TestWorkerChaosKillTriggersReclaim(t *testing.T) {
	cfgs := tinyCfgs(3)
	localRes, _ := runner.RunResilient(cfgs, runner.Policy{Workers: 1})

	c := NewCoordinator(Config{LeaseTTL: 100 * time.Millisecond})
	srv := httptest.NewServer(c)
	defer srv.Close()
	wait := startCampaign(t, c, "kill", cfgs, runner.Policy{})

	killed := make(chan struct{})
	victim := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "victim",
		PollInterval: 2 * time.Millisecond, ChaosKillAfter: 1,
		Exit: func(int) { close(killed) }, Log: testLogger(t)})
	victimDone := make(chan struct{})
	go func() {
		victim.Run()
		close(victimDone)
	}()
	<-killed // the victim died holding its first lease
	<-victimDone

	survivor := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "survivor",
		PollInterval: 2 * time.Millisecond, Log: testLogger(t)})
	done := make(chan struct{})
	go func() {
		survivor.Run()
		close(done)
	}()

	res, errs := wait()
	for i := range cfgs {
		if errs[i] != nil || res[i] == nil {
			t.Fatalf("cell %d: res %v err %v", i, res[i], errs[i])
		}
		if !reflect.DeepEqual(res[i], localRes[i]) {
			t.Fatalf("cell %d diverges after chaos kill", i)
		}
	}
	if st := c.Status(); st.Reclaims < 1 {
		t.Fatalf("reclaims = %d, want >= 1 (the victim's lease)", st.Reclaims)
	}
	c.Shutdown()
	<-done
}

// TestWorkerChaosDropResendsAndDedups: with every completion ack dropped
// once, each cell's report is delivered twice; the first write wins and
// every resend is counted as a duplicate, with results unaffected.
func TestWorkerChaosDropResendsAndDedups(t *testing.T) {
	cfgs := tinyCfgs(3)
	c := NewCoordinator(Config{LeaseTTL: 5 * time.Second})
	srv := httptest.NewServer(c)
	defer srv.Close()
	wait := startCampaign(t, c, "drop", cfgs, runner.Policy{})

	w := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "dropper",
		PollInterval: 2 * time.Millisecond, ChaosDropRate: 1, Log: testLogger(t)})
	done := make(chan struct{})
	go func() {
		w.Run()
		close(done)
	}()

	res, errs := wait()
	for i := range cfgs {
		if errs[i] != nil || res[i] == nil {
			t.Fatalf("cell %d: res %v err %v", i, res[i], errs[i])
		}
	}
	c.Shutdown()
	<-done // the last resend is delivered before the worker exits
	if st := c.Status(); st.Duplicates != len(cfgs) {
		t.Fatalf("duplicates = %d, want %d (one resend per cell)", st.Duplicates, len(cfgs))
	}
}

// TestWorkerDrainFinishesInFlightCell: Drain during a leased cell lets
// the cell finish and be delivered, then the worker exits without taking
// more work.
func TestWorkerDrainFinishesInFlightCell(t *testing.T) {
	cfgs := tinyCfgs(1)
	c := NewCoordinator(Config{LeaseTTL: 5 * time.Second})
	srv := httptest.NewServer(c)
	defer srv.Close()

	var w *Worker
	claimed := make(chan struct{})
	var once sync.Once
	p := runner.Policy{Observer: func(o runner.Outcome) {
		if o.Status == runner.StatusRunning {
			once.Do(func() { close(claimed) })
		}
	}}
	wait := startCampaign(t, c, "drain", cfgs, p)

	w = NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "drainer",
		PollInterval: 2 * time.Millisecond, Log: testLogger(t)})
	done := make(chan struct{})
	go func() {
		w.Run()
		close(done)
	}()
	<-claimed // the worker holds the lease (it may or may not have started executing)
	w.Drain()

	res, errs := wait()
	if errs[0] != nil || res[0] == nil {
		t.Fatalf("drained worker's in-flight cell lost: res %v err %v", res[0], errs[0])
	}
	select {
	case <-done: // the worker exited on its own — no Shutdown required
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker never exited")
	}
	if w.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", w.Completed())
	}
}

// TestJournalRoundTripAndValidate pins the journal schema.
func TestJournalRoundTripAndValidate(t *testing.T) {
	dir := t.TempDir()
	j := &Journal{SchemaVersion: JournalSchemaVersion, Kind: JournalKind,
		Sweep: "rt", Cells: 2, Digests: map[int]string{0: "aa", 1: "bb"},
		WorkerCompletions: map[string]int{"w": 2}, Reclaims: 1}
	path, err := WriteJournal(dir, j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("round trip: %+v vs %+v", got, j)
	}
	for _, bad := range []Journal{
		{SchemaVersion: 99, Kind: JournalKind, Sweep: "x", Cells: 0, Digests: map[int]string{}},
		{SchemaVersion: JournalSchemaVersion, Kind: "nope", Sweep: "x", Cells: 0, Digests: map[int]string{}},
		{SchemaVersion: JournalSchemaVersion, Kind: JournalKind, Sweep: "", Cells: 0, Digests: map[int]string{}},
		{SchemaVersion: JournalSchemaVersion, Kind: JournalKind, Sweep: "x", Cells: 2, Digests: map[int]string{0: "aa"}},
		{SchemaVersion: JournalSchemaVersion, Kind: JournalKind, Sweep: "x", Cells: 1, Digests: map[int]string{3: "aa"}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("journal %+v validated", bad)
		}
	}
}

// TestCoordinatorMetricsEndpoint: worker heartbeats carry metric
// snapshots that surface as live gauges, accepted completions fold into
// cumulative counters, and both render on /metrics in Prometheus text
// exposition format alongside the fleet dispatch gauges.
func TestCoordinatorMetricsEndpoint(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Minute})
	srv := httptest.NewServer(c)
	defer srv.Close()
	cfgs := tinyCfgs(1)
	wait := startCampaign(t, c, "prom", cfgs, runner.Policy{})

	w := &fakeWorker{t: t, url: srv.URL, id: "worker-m"}
	l := w.lease()
	if l == nil {
		t.Fatal("no lease")
	}
	snap := &metrics.Snapshot{
		Values:     []metrics.KV{{Name: "journey.completed", Value: 7}},
		Histograms: []metrics.HistSummary{{Name: "journey.e2e_cycles", Count: 7, Sum: 350}},
	}
	var hb HeartbeatResponse
	w.post(PathHeartbeat, HeartbeatRequest{Worker: w.id, LeaseID: l.ID, Snapshot: snap}, &hb)
	if !hb.OK {
		t.Fatalf("heartbeat = %+v", hb)
	}

	page := func() string {
		resp, err := http.Get(srv.URL + PathMetrics)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	// Before any completion: the heartbeat snapshot shows up as live
	// gauges; no cumulative counters yet.
	got := page()
	for _, want := range []string{
		"# TYPE inpg_live_journey_completed gauge",
		"inpg_live_journey_completed 7",
		"inpg_live_journey_e2e_cycles_sum 350",
		"inpg_fleet_cells 1",
		"inpg_fleet_leases_outstanding 1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "# TYPE inpg_journey_completed counter") {
		t.Fatalf("/metrics has cumulative counters before any completion:\n%s", got)
	}

	// An accepted completion's snapshot folds into the cumulative
	// counters.
	rep := CompletionReport{Worker: w.id, LeaseID: l.ID, Sweep: l.Sweep,
		Index: l.Index, Digest: l.Digest, OK: true, WallSeconds: 0.01,
		Res: &inpg.Results{Runtime: 1}, Snapshot: snap}
	var cresp CompletionResponse
	w.post(PathComplete, rep, &cresp)
	if !cresp.Accepted {
		t.Fatalf("completion = %+v", cresp)
	}
	wait()
	got = page()
	for _, want := range []string{
		"# TYPE inpg_journey_completed counter",
		"inpg_journey_completed 7",
		"inpg_journey_e2e_cycles_count 7",
		"inpg_journey_e2e_cycles_sum 350",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("/metrics missing %q after completion:\n%s", want, got)
		}
	}
}
