package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// Ticket-word encoding: the next-ticket counter lives in the upper half of
// one 64-bit lock word and the now-serving counter in the lower half, the
// classic packed ticket-lock layout. Both counters sharing one cache line
// means every ticket grab and every release invalidates the copies all
// waiters poll — the lock coherence behaviour the paper measures for TTL.
const (
	ticketInc    = uint64(1) << 32
	servingMask  = ticketInc - 1
	ticketShift  = 32
	maxBackoffRT = 16 // cap on proportional backoff multiplier
)

// ticket is the ticket lock (TTL): fetch-and-increment on the packed
// ticket word hands out FIFO tickets; waiters poll the same word with an
// atomic fetch-add of zero (an exclusive read-modify-write, so the polls
// are in-flight GetX requests that big routers can stop), with
// proportional backoff by queue distance.
type ticket struct {
	word uint64
	cfg  Config
	mine []uint64 // ticket held per thread
}

func newTicket(alloc *AddrAlloc, home noc.NodeID, cfg Config) *ticket {
	return &ticket{
		word: alloc.BlockAt(home),
		cfg:  cfg,
		mine: make([]uint64, cfg.Threads),
	}
}

// Name implements cpu.Lock.
func (l *ticket) Name() string { return "TTL" }

// Acquire implements cpu.Lock.
func (l *ticket) Acquire(t *cpu.Thread, done func()) {
	t.Port.Atomic(l.word, coherence.FetchAdd, ticketInc, 0, t.LockPrio(), func(old uint64) {
		myTicket := old >> ticketShift
		l.mine[t.ID] = myTicket
		if old&servingMask == myTicket {
			done()
			return
		}
		var poll func()
		poll = func() {
			t.Port.Load(l.word, true, t.LockPrio(), func(v uint64) {
				serving := v & servingMask
				if serving == myTicket {
					done()
					return
				}
				t.CountRetry()
				// Proportional backoff: threads deep in the queue poll
				// less often (Mellor-Crummey & Scott's classic tuning).
				dist := myTicket - serving
				if dist > maxBackoffRT {
					dist = maxBackoffRT
				}
				t.Eng().Schedule(l.cfg.SpinInterval*sim.Cycle(dist), poll)
			})
		}
		poll()
	})
}

// Release implements cpu.Lock.
func (l *ticket) Release(t *cpu.Thread, done func()) {
	t.Port.Atomic(l.word, coherence.FetchAdd, 1, 0, releasePrio(t), func(uint64) { done() })
}
