package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
)

// clh is the Craig/Landin-Hagersten queue lock, included as an extension
// beyond the paper's five primitives: like MCS it spins on a per-thread
// location, but each waiter spins on its *predecessor's* node rather than
// its own, so no successor pointer (and no release-side spin) is needed.
// It rounds out the queue-lock family for cross-primitive studies: a
// predecessor-spinning counterpart to MCS's successor-signalling.
//
// Queue node encoding: each thread owns a rotating pair of flag lines
// (a node is "busy" while its owner waits or holds). The global tail
// pointer holds (threadID+1)<<1 | nodeIndex so 0 still means nil.
type clh struct {
	tail  uint64
	nodes [][2]uint64 // two flag lines per thread (reuse-safe rotation)
	cur   []int       // which of the two nodes the thread is using
	pred  []uint64    // predecessor node address captured at acquire
	cfg   Config
}

func newCLH(alloc *AddrAlloc, home noc.NodeID, cfg Config) *clh {
	l := &clh{
		tail: alloc.BlockAt(home),
		cur:  make([]int, cfg.Threads),
		pred: make([]uint64, cfg.Threads),
		cfg:  cfg,
	}
	for i := 0; i < cfg.Threads; i++ {
		l.nodes = append(l.nodes, [2]uint64{alloc.Block(), alloc.Block()})
	}
	return l
}

// Name implements cpu.Lock.
func (l *clh) Name() string { return "CLH" }

// encode packs a thread's current node into the tail word.
func (l *clh) encode(id int) uint64 { return uint64(id+1)<<1 | uint64(l.cur[id]) }

// nodeAddr resolves a tail encoding to its flag line.
func (l *clh) nodeAddr(enc uint64) uint64 {
	id := int(enc>>1) - 1
	return l.nodes[id][enc&1]
}

// Acquire implements cpu.Lock: mark my node busy, swap myself into the
// tail, and spin on the predecessor's node until it clears.
func (l *clh) Acquire(t *cpu.Thread, done func()) {
	me := t.ID
	myNode := l.nodes[me][l.cur[me]]
	t.Port.Store(myNode, 1, true, t.LockPrio(), func() {
		t.Port.Atomic(l.tail, coherence.Swap, l.encode(me), 0, t.LockPrio(), func(prev uint64) {
			if prev == 0 {
				done() // queue was empty
				return
			}
			predAddr := l.nodeAddr(prev)
			l.pred[me] = predAddr
			var poll func()
			poll = func() {
				t.Port.Load(predAddr, true, t.LockPrio(), func(v uint64) {
					if v == 0 {
						done()
						return
					}
					spinAgain(t, l.cfg, poll)
				})
			}
			poll()
		})
	})
}

// Release implements cpu.Lock: clear my node (waking my successor) and
// rotate to the spare node so the cleared one can be observed safely.
func (l *clh) Release(t *cpu.Thread, done func()) {
	me := t.ID
	myNode := l.nodes[me][l.cur[me]]
	l.cur[me] ^= 1
	t.Port.StoreRelease(myNode, 0, true, releasePrio(t), done)
}
