package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// qsl is the queue spin-lock of modern OSes (Linux 4.2 default): a bounded
// spin phase on the lock word — 128 retries by default — after which the
// thread context-switches out and sleeps on a software wait queue; the
// releasing holder wakes the queue head, which re-competes at the lowest
// OCOR priority. Sleeping frees the core but costs two context switches
// plus the wakeup latency, which is exactly the overhead OCOR tries to
// dodge by prioritizing nearly-exhausted spinners.
//
// The in-kernel MCS queuing of the Linux implementation is approximated by
// the FIFO software wait queue; the spin phase polls the lock word
// (test-and-test-and-set), see DESIGN.md.
type qsl struct {
	addr     uint64
	cfg      Config
	sleepers []*qslWaiter

	// spinStart marks when each thread's current spin phase began; the
	// retry budget is measured against it in nominal poll iterations.
	spinStart []sim.Cycle

	// SleepsTaken counts threads entering the sleep phase (OCOR's target).
	SleepsTaken uint64
}

// spinBudget converts the 128-retry budget into cycles of spinning: a
// retry iteration on a locally cached copy costs the poll interval plus
// the L1 hit, so the budget drains in roughly a thousand cycles whether
// or not invalidation storms slow individual polls down.
func (l *qsl) spinBudget() sim.Cycle {
	return sim.Cycle(l.cfg.QSLRetries) * (l.cfg.SpinInterval + 4)
}

type qslWaiter struct {
	t       *cpu.Thread
	wake    func()
	woken   bool // a release picked this waiter; wake is scheduled
	settled bool // the post-enqueue probe already acquired the lock
}

func newQSL(alloc *AddrAlloc, home noc.NodeID, cfg Config) *qsl {
	return &qsl{
		addr:      alloc.BlockAt(home),
		cfg:       cfg,
		spinStart: make([]sim.Cycle, cfg.Threads),
	}
}

// Name implements cpu.Lock.
func (l *qsl) Name() string { return "QSL" }

// Acquire implements cpu.Lock.
func (l *qsl) Acquire(t *cpu.Thread, done func()) {
	l.spinStart[t.ID] = t.Eng().Now()
	l.spinPhase(t, done)
}

// spinPhase polls with atomic SWAPs until acquired or the retry budget is
// spent — OCOR embeds the remaining-times-of-retry priority directly in
// the SWAP request packets, so every retry is a swap. The budget is also
// bounded in time (spinBudget) so heavily delayed polls still yield the
// core at roughly the Linux-4.2 cadence, keeping the number of awake
// spinners small as in a real OS.
func (l *qsl) spinPhase(t *cpu.Thread, done func()) {
	var poll func()
	poll = func() {
		if t.RetriesUsed() >= l.cfg.QSLRetries ||
			t.Eng().Now()-l.spinStart[t.ID] >= l.spinBudget() {
			l.sleep(t, done)
			return
		}
		t.Port.Load(l.addr, true, t.LockPrio(), func(v uint64) {
			if v != 0 {
				spinAgain(t, l.cfg, poll)
				return
			}
			t.Port.Atomic(l.addr, coherence.Swap, 1, 0, t.LockPrio(), func(old uint64) {
				if old == 0 {
					done()
					return
				}
				spinAgain(t, l.cfg, poll)
			})
		})
	}
	poll()
}

// sleep context-switches the thread out and parks it on the wait queue.
// After enqueueing, one last probe closes the lost-wakeup race: if the
// lock was freed while we were switching out (and nobody was queued to be
// woken), grab it now instead of sleeping forever.
func (l *qsl) sleep(t *cpu.Thread, done func()) {
	l.SleepsTaken++
	t.BeginSleep()
	t.Eng().Schedule(l.cfg.CtxSwitch, func() {
		w := &qslWaiter{t: t}
		w.wake = func() {
			if w.settled {
				return // the probe already acquired; nothing to resume
			}
			t.Eng().Schedule(l.cfg.CtxSwitch, func() {
				t.EndSleep()
				t.ResetRetries()
				l.spinStart[t.ID] = t.Eng().Now()
				l.spinPhase(t, done)
			})
		}
		l.sleepers = append(l.sleepers, w)
		t.Port.Load(l.addr, true, 0, func(v uint64) {
			if w.woken || v != 0 {
				return // a holder exists or a wakeup is already scheduled
			}
			t.Port.Atomic(l.addr, coherence.Swap, 1, 0, 0, func(old uint64) {
				if old != 0 {
					return // lost the probe; a release will wake us
				}
				// Acquired on the probe: leave the queue (if a release
				// raced and popped us, wake() no-ops via settled).
				w.settled = true
				l.remove(w)
				t.EndSleep()
				t.ResetRetries()
				done()
			})
		})
	})
}

// remove deletes a waiter from the queue.
func (l *qsl) remove(w *qslWaiter) {
	for i, x := range l.sleepers {
		if x == w {
			l.sleepers = append(l.sleepers[:i], l.sleepers[i+1:]...)
			return
		}
	}
}

// Release implements cpu.Lock.
func (l *qsl) Release(t *cpu.Thread, done func()) {
	t.Port.StoreRelease(l.addr, 0, true, releasePrio(t), func() {
		if len(l.sleepers) > 0 {
			w := l.sleepers[0]
			l.sleepers = l.sleepers[1:]
			w.woken = true
			t.Eng().Schedule(l.cfg.Wakeup, w.wake)
		}
		done()
	})
}
