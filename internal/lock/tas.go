package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
)

// tas is the test-and-set lock executed exactly as the paper's
// Algorithm 1: spin-read the lock word until it reads "available" (LD +
// BNEZ on a locally cached copy), then race an atomic SWAP to the home
// node; the thread whose SWAP returns 0 holds the lock, all others loop
// back to spinning. Every release invalidates all spinning copies and
// triggers a refill + SWAP storm — the highest lock coherence overhead of
// the five primitives (Figure 2), and the one iNPG accelerates most
// (Figure 13) since the losing SWAPs are in flight and stoppable.
type tas struct {
	addr uint64
	cfg  Config
}

func newTAS(alloc *AddrAlloc, home noc.NodeID, cfg Config) *tas {
	return &tas{addr: alloc.BlockAt(home), cfg: cfg}
}

// Name implements cpu.Lock.
func (l *tas) Name() string { return "TAS" }

// Acquire implements cpu.Lock, executing exactly the paper's Algorithm 1:
// spin on a locally cached copy of the lock word (LD + BNEZ) and race an
// atomic SWAP to the home whenever it reads available. Every release
// recalls the spinning copies, so each handoff triggers a refill burst
// followed by a SWAP storm — the losing SWAPs are the in-flight GetX
// requests iNPG stops and early-invalidates.
func (l *tas) Acquire(t *cpu.Thread, done func()) {
	var poll func()
	poll = func() {
		t.Port.Load(l.addr, true, t.LockPrio(), func(v uint64) {
			if v != 0 {
				spinAgain(t, l.cfg, poll)
				return
			}
			t.Port.Atomic(l.addr, coherence.Swap, 1, 0, t.LockPrio(), func(old uint64) {
				if old == 0 {
					done()
					return
				}
				spinAgain(t, l.cfg, poll)
			})
		})
	}
	poll()
}

// Release implements cpu.Lock.
func (l *tas) Release(t *cpu.Thread, done func()) {
	t.Port.StoreRelease(l.addr, 0, true, releasePrio(t), done)
}
