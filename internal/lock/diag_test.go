package lock

import (
	"fmt"
	"testing"

	"inpg/internal/sim"
)

func TestDiagTAS(t *testing.T) {
	r := newRig(t, TAS, 8, 4, false)
	for _, th := range r.threads {
		th.Start()
	}
	for i := 0; i < 10; i++ {
		r.eng.Run(sim.Cycle(20000), func() bool { return false })
		cs := 0
		for _, th := range r.threads {
			cs += th.CSCompleted
		}
		var txOpen, queued uint64
		for _, d := range r.fab.Dirs {
			txOpen += d.Stats.TxnStarted - d.Stats.TxnEnded
			queued += d.Stats.QueuedRequests
		}
		fmt.Printf("cyc=%d cs=%d inflight=%d txOpen=%d queued=%d\n", r.eng.Now(), cs, r.fab.Net.InFlight(), txOpen, queued)
	}
	// Dump directory line state for the lock address (home 5, block 0).
	addr := r.fab.Homes.AddrForHome(5, 0)
	v, owner, sharers, busy := r.fab.Dirs[5].LineInfo(addr)
	fmt.Printf("lock line: val=%d owner=%d sharers=%v busy=%v\n", v, owner, sharers, busy)
	for _, th := range r.threads {
		fmt.Printf("thread %d phase=%v cs=%d\n", th.ID, th.Phase(), th.CSCompleted)
	}
	for id, l1 := range r.fab.L1s[:8] {
		if ln := l1.Cache().Peek(addr); ln != nil {
			fmt.Printf("L1 %d: %v val=%d\n", id, ln.State, ln.Data)
		}
	}
}
