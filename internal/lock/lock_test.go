package lock

import (
	"fmt"
	"math/rand"
	"testing"

	"inpg/internal/cache"
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/memory"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// rig is a small full system for lock testing: fabric + threads + a
// mutual-exclusion checking wrapper around the lock under test.
type rig struct {
	t       *testing.T
	eng     *sim.Engine
	fab     *coherence.Fabric
	alloc   *AddrAlloc
	threads []*cpu.Thread
	me      *meChecker
}

// meChecker wraps a lock and asserts mutual exclusion at the
// acquire/release level, recording the handoff order.
type meChecker struct {
	inner  cpu.Lock
	t      *testing.T
	holder int
	order  []int
	grants int
}

func (m *meChecker) Name() string { return m.inner.Name() }

func (m *meChecker) Acquire(t *cpu.Thread, done func()) {
	m.inner.Acquire(t, func() {
		if m.holder != -1 {
			m.t.Errorf("mutual exclusion violated: %d acquired while %d holds", t.ID, m.holder)
		}
		m.holder = t.ID
		m.order = append(m.order, t.ID)
		m.grants++
		done()
	})
}

func (m *meChecker) Release(t *cpu.Thread, done func()) {
	if m.holder != t.ID {
		m.t.Errorf("thread %d released a lock held by %d", t.ID, m.holder)
	}
	m.holder = -1
	m.inner.Release(t, done)
}

// newRig builds a 4×4 system with `threads` competing threads running
// csEach critical sections under the given primitive.
func newRig(t *testing.T, kind Kind, threads, csEach int, ocor bool) *rig {
	t.Helper()
	eng := sim.NewEngine(23)
	fcfg := coherence.FabricConfig{
		Net: noc.Config{Mesh: noc.Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4, PriorityArb: ocor},
		L1:  coherence.L1Config{Cache: cache.Config{SizeBytes: 8192, Ways: 4, BlockBytes: 128}, MSHRs: 8, HitLatency: 2},
		Dir: coherence.DirConfig{L2Latency: 6},
		Mem: memory.Config{Controllers: 4, Latency: 30, MaxOutstanding: 16},
	}
	fab, err := coherence.NewFabric(eng, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	alloc := NewAddrAlloc(fab.Homes, fab.Mem)
	cfg := DefaultConfig(threads)
	cfg.CtxSwitch = 100
	cfg.Wakeup = 50
	cfg.QSLRetries = 16 // sleep early so tests exercise the sleep path
	inner, err := New(kind, alloc, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	me := &meChecker{inner: inner, t: t, holder: -1}
	r := &rig{t: t, eng: eng, fab: fab, alloc: alloc, me: me}
	prog := cpu.Program{
		CSCount:        csEach,
		CSCycles:       func(rng *rand.Rand) sim.Cycle { return sim.Cycle(20 + rng.Intn(20)) },
		ParallelCycles: func(rng *rand.Rand) sim.Cycle { return sim.Cycle(30 + rng.Intn(50)) },
	}
	for i := 0; i < threads; i++ {
		th := cpu.New(eng, i, fab.L1s[i], me, prog, int64(1000+i))
		th.OCOR = ocor
		th.QSLRetries = cfg.QSLRetries
		r.threads = append(r.threads, th)
	}
	return r
}

// run starts all threads and drives to completion.
func (r *rig) run(budget sim.Cycle) {
	r.t.Helper()
	for _, th := range r.threads {
		th.Start()
	}
	_, err := r.eng.Run(budget, func() bool {
		for _, th := range r.threads {
			if !th.Done() {
				return false
			}
		}
		return true
	})
	if err != nil {
		for _, th := range r.threads {
			if !th.Done() {
				r.t.Logf("thread %d stuck in %v (cs %d/%d)", th.ID, th.Phase(), th.CSCompleted, 0)
			}
		}
		r.t.Fatalf("lock %s did not complete: %v", r.me.Name(), err)
	}
}

func testPrimitive(t *testing.T, kind Kind) {
	threads, csEach := 8, 4
	r := newRig(t, kind, threads, csEach, false)
	r.run(3_000_000)
	if r.me.grants != threads*csEach {
		t.Fatalf("grants = %d, want %d", r.me.grants, threads*csEach)
	}
	for _, th := range r.threads {
		if th.CSCompleted != csEach {
			t.Fatalf("thread %d completed %d CS, want %d", th.ID, th.CSCompleted, csEach)
		}
		if th.Breakdown.COHTotal() == 0 {
			t.Fatalf("thread %d recorded no competition overhead", th.ID)
		}
		if th.Breakdown.CSE == 0 || th.Breakdown.Parallel == 0 {
			t.Fatalf("thread %d breakdown incomplete: %+v", th.ID, th.Breakdown)
		}
	}
}

func TestTASMutualExclusionAndProgress(t *testing.T)  { testPrimitive(t, TAS) }
func TestTTLMutualExclusionAndProgress(t *testing.T)  { testPrimitive(t, TTL) }
func TestABQLMutualExclusionAndProgress(t *testing.T) { testPrimitive(t, ABQL) }
func TestMCSMutualExclusionAndProgress(t *testing.T)  { testPrimitive(t, MCS) }
func TestQSLMutualExclusionAndProgress(t *testing.T)  { testPrimitive(t, QSL) }

func TestQSLWithOCORPriorities(t *testing.T) {
	r := newRig(t, QSL, 8, 3, true)
	r.run(3_000_000)
	if r.me.grants != 24 {
		t.Fatalf("grants = %d, want 24", r.me.grants)
	}
}

// TestTicketFIFO: under TTL, grant order must follow ticket order, which
// is the order of completed fetch-adds. With serialized home service this
// means no thread can be granted twice before a thread that drew an
// earlier ticket — i.e. between two grants to thread X every other waiting
// thread is granted at most once. The direct check: the i-th grant goes to
// the holder of ticket i, so grants never repeat a thread while another
// thread that requested earlier still waits. We verify the per-round
// structure: in every window of `threads` consecutive grants during the
// steady state no thread appears twice... which holds exactly when grant
// order == ticket order. We assert the weaker but telling property that
// between consecutive grants to the same thread, at least one full
// parallel phase elapsed (no double service).
func TestTicketFIFO(t *testing.T) {
	threads, csEach := 6, 3
	r := newRig(t, TTL, threads, csEach, false)
	r.run(3_000_000)
	last := make(map[int]int)
	for pos, id := range r.me.order {
		if prev, ok := last[id]; ok {
			if pos-prev < 2 {
				t.Fatalf("thread %d granted twice in a row at %d under FIFO ticket lock", id, pos)
			}
		}
		last[id] = pos
	}
}

func TestQSLSleepPathTaken(t *testing.T) {
	r := newRig(t, QSL, 8, 4, false)
	r.run(3_000_000)
	slept := 0
	for _, th := range r.threads {
		slept += th.SleepCount
	}
	if slept == 0 {
		t.Fatal("with a 16-retry budget and 8 threads, some thread must sleep")
	}
	for _, th := range r.threads {
		if th.SleepCount > 0 && th.Breakdown.Sleep == 0 {
			t.Fatalf("thread %d slept %d times but recorded no sleep cycles", th.ID, th.SleepCount)
		}
	}
}

func TestLockPrioMapping(t *testing.T) {
	eng := sim.NewEngine(1)
	th := cpu.New(eng, 0, nil, nil, cpu.Program{}, 1)
	th.OCOR = true
	th.QSLRetries = 128
	if got := th.LockPrio(); got != 1 {
		t.Fatalf("fresh spinner priority = %d, want 1", got)
	}
	for i := 0; i < 127; i++ {
		th.CountRetry()
	}
	if got := th.LockPrio(); got != 8 {
		t.Fatalf("nearly-exhausted spinner priority = %d, want 8", got)
	}
	th.OCOR = false
	if th.LockPrio() != 0 {
		t.Fatal("priority must be 0 without OCOR")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind must reject unknown names")
	}
}

func TestAddrAllocDistinctBlocks(t *testing.T) {
	h := coherence.HomeMap{Nodes: 16, BlockBytes: 128}
	a := NewAddrAlloc(h, nopPreloader{})
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		addr := a.Block()
		if seen[addr] {
			t.Fatalf("duplicate block %#x", addr)
		}
		seen[addr] = true
	}
	for n := noc.NodeID(0); n < 16; n++ {
		addr := a.BlockAt(n)
		if h.Home(addr) != n {
			t.Fatalf("BlockAt(%d) homed at %d", n, h.Home(addr))
		}
		if seen[addr] {
			t.Fatalf("BlockAt reused block %#x", addr)
		}
		seen[addr] = true
	}
}

type nopPreloader struct{}

func (nopPreloader) Preload(addr, val uint64) {}

// TestAllPrimitivesUnderContention runs every primitive with all 16 cores
// hammering the same lock (the paper's Section 3.2 scenario scaled down).
func TestAllPrimitivesUnderContention(t *testing.T) {
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			r := newRig(t, k, 16, 2, false)
			r.run(6_000_000)
			if r.me.grants != 32 {
				t.Fatalf("grants = %d, want 32", r.me.grants)
			}
			if err := r.fab.CheckInvariants(lockAddrs(r)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// lockAddrs lists the first blocks of each home for invariant checking.
func lockAddrs(r *rig) []uint64 {
	var addrs []uint64
	for n := 0; n < r.fab.Homes.Nodes; n++ {
		addrs = append(addrs, r.fab.Homes.AddrForHome(noc.NodeID(n), 0))
	}
	return addrs
}

func ExampleKind_String() {
	fmt.Println(TAS, TTL, ABQL, MCS, QSL)
	// Output: TAS TTL ABQL MCS QSL
}

func TestCLHMutualExclusionAndProgress(t *testing.T) { testPrimitive(t, CLH) }

func TestCLHQueueRotation(t *testing.T) {
	// Repeated handoffs between two threads exercise the two-node rotation
	// (a freed node must not be observed busy from a previous round).
	r := newRig(t, CLH, 2, 10, false)
	r.run(3_000_000)
	if r.me.grants != 20 {
		t.Fatalf("grants = %d, want 20", r.me.grants)
	}
}

func TestParseKindExtension(t *testing.T) {
	k, err := ParseKind("CLH")
	if err != nil || k != CLH {
		t.Fatalf("ParseKind(CLH) = %v, %v", k, err)
	}
	if len(Kinds) != 5 || len(KindsWithExtensions) != 6 {
		t.Fatal("kind lists wrong")
	}
}

func TestBarrierAllArriveBeforeAnyLeaves(t *testing.T) {
	threads := 6
	eng := sim.NewEngine(31)
	fcfg := coherence.FabricConfig{
		Net: noc.Config{Mesh: noc.Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4},
		L1:  coherence.L1Config{Cache: cache.Config{SizeBytes: 8192, Ways: 4, BlockBytes: 128}, MSHRs: 8, HitLatency: 2},
		Dir: coherence.DirConfig{L2Latency: 6},
		Mem: memory.Config{Controllers: 4, Latency: 30, MaxOutstanding: 16},
	}
	fab, err := coherence.NewFabric(eng, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	alloc := NewAddrAlloc(fab.Homes, fab.Mem)
	cfg := DefaultConfig(threads)
	b := NewBarrier(alloc, 3, threads, cfg)

	arrived, left := 0, 0
	done := 0
	for i := 0; i < threads; i++ {
		th := cpu.New(eng, i, fab.L1s[i], nil, cpu.Program{}, int64(i+1))
		// Stagger arrivals.
		delay := sim.Cycle(i * 40)
		eng.Schedule(delay, func() {
			arrived++
			b.Join(th, func() {
				if arrived != threads {
					t.Errorf("a thread left the barrier after only %d arrivals", arrived)
				}
				left++
				if left == threads {
					done = 1
				}
			})
		})
	}
	if _, err := eng.Run(1_000_000, func() bool { return done == 1 }); err != nil {
		t.Fatalf("barrier did not release: %v (arrived %d, left %d)", err, arrived, left)
	}
}

func TestBarrierReusableAcrossEpisodes(t *testing.T) {
	threads := 4
	eng := sim.NewEngine(17)
	fcfg := coherence.FabricConfig{
		Net: noc.Config{Mesh: noc.Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4},
		L1:  coherence.L1Config{Cache: cache.Config{SizeBytes: 8192, Ways: 4, BlockBytes: 128}, MSHRs: 8, HitLatency: 2},
		Dir: coherence.DirConfig{L2Latency: 6},
		Mem: memory.Config{Controllers: 4, Latency: 30, MaxOutstanding: 16},
	}
	fab, err := coherence.NewFabric(eng, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	alloc := NewAddrAlloc(fab.Homes, fab.Mem)
	b := NewBarrier(alloc, 9, threads, DefaultConfig(threads))
	const episodes = 5
	finished := 0
	for i := 0; i < threads; i++ {
		th := cpu.New(eng, i, fab.L1s[i], nil, cpu.Program{}, int64(i+100))
		var episode func(e int)
		episode = func(e int) {
			if e == episodes {
				finished++
				return
			}
			b.Join(th, func() { episode(e + 1) })
		}
		episode(0)
	}
	if _, err := eng.Run(2_000_000, func() bool { return finished == threads }); err != nil {
		t.Fatalf("barrier reuse failed: %v", err)
	}
}
