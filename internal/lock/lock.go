// Package lock implements the five locking primitives the paper evaluates
// (Section 2.1): the test-and-set lock TAS (as test-and-test-and-set per
// Algorithm 1), the ticket lock TTL, the array-based queuing lock ABQL,
// the Mellor-Crummey & Scott MCS lock, and the Linux-4.2-style queue
// spin-lock QSL with a bounded spin phase followed by a sleep queue.
//
// Every primitive is executed mechanistically as loads, stores and atomic
// read-modify-writes against the coherent memory system, so the lock
// coherence traffic the paper studies (GetX storms, invalidation fan-out,
// ack collection) emerges from the protocol rather than being modeled.
package lock

import (
	"fmt"

	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// Kind selects a primitive.
type Kind int

// The five locking primitives of the paper.
const (
	TAS Kind = iota
	TTL
	ABQL
	MCS
	QSL
	// CLH is an extension beyond the paper's five primitives: the
	// Craig/Landin-Hagersten predecessor-spinning queue lock.
	CLH
)

// Kinds lists all primitives in the paper's presentation order. CLH is an
// extension and is excluded; use KindsWithExtensions for the full set.
var Kinds = []Kind{TAS, TTL, ABQL, MCS, QSL}

// KindsWithExtensions includes the primitives added beyond the paper.
var KindsWithExtensions = []Kind{TAS, TTL, ABQL, MCS, QSL, CLH}

// String returns the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case TAS:
		return "TAS"
	case TTL:
		return "TTL"
	case ABQL:
		return "ABQL"
	case MCS:
		return "MCS"
	case QSL:
		return "QSL"
	case CLH:
		return "CLH"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a primitive name.
func ParseKind(s string) (Kind, error) {
	for _, k := range KindsWithExtensions {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("lock: unknown primitive %q", s)
}

// Config holds primitive-independent tuning.
type Config struct {
	// Threads is the number of competing threads (sizes per-thread
	// structures in ABQL and MCS).
	Threads int
	// SpinInterval is the delay between failed polls.
	SpinInterval sim.Cycle
	// QSLRetries is the spin budget before QSL sleeps (Linux 4.2: 128).
	QSLRetries int
	// CtxSwitch is the context-switch overhead paid on each side of a QSL
	// sleep.
	CtxSwitch sim.Cycle
	// Wakeup is the latency from a release to the sleeper resuming.
	Wakeup sim.Cycle
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig(threads int) Config {
	si := sim.Cycle(12)
	if TuneSpinInterval > 0 {
		si = sim.Cycle(TuneSpinInterval)
	}
	return Config{
		Threads:      threads,
		SpinInterval: si,
		QSLRetries:   128,
		// OS context-switch and wakeup costs at 2 GHz: sleeping a thread
		// and waking it back up burn microseconds, which is exactly the
		// overhead OCOR tries to avoid.
		CtxSwitch: 2500,
		Wakeup:    1000,
	}
}

// Preloader initializes memory words before first coherent access
// (implemented by memory.System).
type Preloader interface {
	Preload(addr, val uint64)
}

// AddrAlloc hands out distinct cache-block addresses with controlled home
// placement, so experiments can pin a lock's home node (Figure 10 places
// it at core (5,6)) while spreading secondary structures.
type AddrAlloc struct {
	Homes coherence.HomeMap
	Pre   Preloader
	next  map[noc.NodeID]int
	rr    int
}

// NewAddrAlloc builds an allocator over the fabric's home map.
func NewAddrAlloc(homes coherence.HomeMap, pre Preloader) *AddrAlloc {
	return &AddrAlloc{Homes: homes, Pre: pre, next: make(map[noc.NodeID]int)}
}

// BlockAt allocates the next unused block homed at node.
func (a *AddrAlloc) BlockAt(node noc.NodeID) uint64 {
	n := a.next[node]
	a.next[node] = n + 1
	return a.Homes.AddrForHome(node, n)
}

// Block allocates a block, spreading homes round-robin across the chip.
func (a *AddrAlloc) Block() uint64 {
	node := noc.NodeID(a.rr % a.Homes.Nodes)
	a.rr++
	return a.BlockAt(node)
}

// New builds a lock of the given kind whose primary variable is homed at
// home. Secondary per-thread structures spread across the chip. An unknown
// kind is a configuration error, reported rather than panicked so library
// callers (CLIs, experiment sweeps) can surface it.
func New(kind Kind, alloc *AddrAlloc, home noc.NodeID, cfg Config) (cpu.Lock, error) {
	switch kind {
	case TAS:
		return newTAS(alloc, home, cfg), nil
	case TTL:
		return newTicket(alloc, home, cfg), nil
	case ABQL:
		return newABQL(alloc, home, cfg), nil
	case MCS:
		return newMCS(alloc, home, cfg), nil
	case QSL:
		return newQSL(alloc, home, cfg), nil
	case CLH:
		return newCLH(alloc, home, cfg), nil
	}
	return nil, fmt.Errorf("lock: bad kind %d", kind)
}

// releasePrio is the OCOR priority of release-path requests: above every
// spin level so the holder's progress (and thus everyone's) is never
// starved by competing SWAP storms.
func releasePrio(t *cpu.Thread) int {
	if t.OCOR {
		return 9
	}
	return 0
}

// spinAgain schedules the next poll after the fixed spin interval: the
// paper's waiting cores "continually spin" on the lock, so at any instant
// nearly every competitor has a lock request in flight — the traffic
// iNPG's barriers stop and invalidate early.
func spinAgain(t *cpu.Thread, cfg Config, poll func()) {
	t.CountRetry()
	t.Eng().Schedule(cfg.SpinInterval, poll)
}

// TuneSpinInterval, when nonzero, overrides the default spin interval in
// DefaultConfig; it exists for calibration sweeps and tests.
var TuneSpinInterval int
