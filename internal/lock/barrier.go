package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
)

// Barrier is a sense-reversing centralized barrier executed over the
// coherent memory system — the synchronization points of the paper's
// Figure 1 program shape ("N threads ... encounter a synchronization
// point"). Each arriving thread atomically increments the count; the last
// arrival resets it and flips the shared sense word (a release
// write-through that recalls every waiter's cached sense copy at once),
// releasing the episode.
type Barrier struct {
	count uint64
	sense uint64
	n     int
	cfg   Config
	// local per-thread sense (what each thread waits for next).
	local []uint64
}

// NewBarrier builds a barrier for n threads with its words homed at home.
func NewBarrier(alloc *AddrAlloc, home noc.NodeID, n int, cfg Config) *Barrier {
	return &Barrier{
		count: alloc.BlockAt(home),
		sense: alloc.BlockAt(home),
		n:     n,
		cfg:   cfg,
		local: make([]uint64, cfg.Threads),
	}
}

// Join blocks the thread until all n participants arrive.
func (b *Barrier) Join(t *cpu.Thread, done func()) {
	want := b.local[t.ID] ^ 1
	b.local[t.ID] = want
	t.Port.Atomic(b.count, coherence.FetchAdd, 1, 0, t.LockPrio(), func(old uint64) {
		if int(old) == b.n-1 {
			// Last arrival: reset the count, then flip the sense. The
			// write-throughs recall all waiters' cached copies so every
			// spinner re-reads the new sense.
			t.Port.StoreRelease(b.count, 0, true, releasePrio(t), func() {
				t.Port.StoreRelease(b.sense, want, true, releasePrio(t), done)
			})
			return
		}
		var poll func()
		poll = func() {
			t.Port.Load(b.sense, true, t.LockPrio(), func(v uint64) {
				if v == want {
					done()
					return
				}
				spinAgain(t, b.cfg, poll)
			})
		}
		poll()
	})
}

// N returns the participant count.
func (b *Barrier) N() int { return b.n }
