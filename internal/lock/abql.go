package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
)

// abql is the array-based queuing lock: a fetch-and-increment tail counter
// assigns each waiter its own flag word (one cache line each), so waiters
// spin on distinct lines and a release invalidates exactly one waiter.
type abql struct {
	tail  uint64
	flags []uint64
	cfg   Config
	slot  []int
}

func newABQL(alloc *AddrAlloc, home noc.NodeID, cfg Config) *abql {
	l := &abql{
		tail: alloc.BlockAt(home),
		cfg:  cfg,
		slot: make([]int, cfg.Threads),
	}
	for i := 0; i < cfg.Threads; i++ {
		l.flags = append(l.flags, alloc.Block())
	}
	// Slot 0 starts available.
	alloc.Pre.Preload(l.flags[0], 1)
	return l
}

// Name implements cpu.Lock.
func (l *abql) Name() string { return "ABQL" }

// Acquire implements cpu.Lock.
func (l *abql) Acquire(t *cpu.Thread, done func()) {
	t.Port.Atomic(l.tail, coherence.FetchAdd, 1, 0, t.LockPrio(), func(ticket uint64) {
		idx := int(ticket) % l.cfg.Threads
		l.slot[t.ID] = idx
		// Poll the flag with an atomic swap-to-zero (Anderson's variant
		// protects the slots with test_and_set): swapping 0 over a 0 flag
		// is a failed poll; swapping 0 over the grant (1) acquires the
		// lock and consumes the grant in the same operation.
		var poll func()
		poll = func() {
			t.Port.Atomic(l.flags[idx], coherence.Swap, 0, 0, t.LockPrio(), func(old uint64) {
				if old == 1 {
					done()
					return
				}
				spinAgain(t, l.cfg, poll)
			})
		}
		poll()
	})
}

// Release implements cpu.Lock.
func (l *abql) Release(t *cpu.Thread, done func()) {
	next := (l.slot[t.ID] + 1) % l.cfg.Threads
	t.Port.StoreRelease(l.flags[next], 1, true, releasePrio(t), done)
}
