package lock

import (
	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/noc"
)

// mcs is the Mellor-Crummey & Scott queue lock: each thread has its own
// queue node (a locked flag line and a next-pointer line), a global tail
// pointer is updated by atomic swap/compare-and-swap, and each waiter
// spins only on its own locked flag — eliminating the cache-line bouncing
// of the global-word locks. Node IDs are encoded as id+1 so 0 means nil.
type mcs struct {
	tail   uint64
	locked []uint64
	next   []uint64
	cfg    Config
}

func newMCS(alloc *AddrAlloc, home noc.NodeID, cfg Config) *mcs {
	l := &mcs{tail: alloc.BlockAt(home), cfg: cfg}
	for i := 0; i < cfg.Threads; i++ {
		l.locked = append(l.locked, alloc.Block())
		l.next = append(l.next, alloc.Block())
	}
	return l
}

// Name implements cpu.Lock.
func (l *mcs) Name() string { return "MCS" }

// Acquire implements cpu.Lock.
func (l *mcs) Acquire(t *cpu.Thread, done func()) {
	me := uint64(t.ID + 1)
	// Reset the queue node: no successor, flag armed — the flag must be
	// armed before the predecessor can link to us.
	t.Port.Store(l.next[t.ID], 0, true, t.LockPrio(), func() {
		t.Port.Store(l.locked[t.ID], 1, true, t.LockPrio(), func() {
			t.Port.Atomic(l.tail, coherence.Swap, me, 0, t.LockPrio(), func(pred uint64) {
				if pred == 0 {
					done() // queue was empty: lock acquired
					return
				}
				// Link behind the predecessor, then spin locally.
				t.Port.Store(l.next[pred-1], me, true, t.LockPrio(), func() {
					var poll func()
					poll = func() {
						t.Port.Load(l.locked[t.ID], true, t.LockPrio(), func(v uint64) {
							if v == 0 {
								done()
								return
							}
							spinAgain(t, l.cfg, poll)
						})
					}
					poll()
				})
			})
		})
	})
}

// Release implements cpu.Lock.
func (l *mcs) Release(t *cpu.Thread, done func()) {
	me := uint64(t.ID + 1)
	t.Port.Load(l.next[t.ID], true, releasePrio(t), func(succ uint64) {
		if succ != 0 {
			t.Port.StoreRelease(l.locked[succ-1], 0, true, releasePrio(t), done)
			return
		}
		// No visible successor: try to close the queue.
		t.Port.Atomic(l.tail, coherence.CompareSwap, me, 0, releasePrio(t), func(old uint64) {
			if old == me {
				done() // queue closed
				return
			}
			// A successor is mid-link: wait for the pointer to appear.
			var poll func()
			poll = func() {
				t.Port.Load(l.next[t.ID], true, releasePrio(t), func(s uint64) {
					if s == 0 {
						t.Eng().Schedule(l.cfg.SpinInterval, poll)
						return
					}
					t.Port.StoreRelease(l.locked[s-1], 0, true, releasePrio(t), done)
				})
			}
			poll()
		})
	})
}
