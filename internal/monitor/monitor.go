// Package monitor serves a live view of a running experiment sweep: an
// expvar-style JSON endpoint, a plain-text progress page, a Server-Sent
// Events stream, and net/http/pprof — all on one address the user picks
// with inpgbench -monitor.
//
// The monitor never touches a simulation: runner workers hand finished
// Outcomes to the Observer, which forwards them over a buffered channel
// to a single aggregator goroutine. All shared state lives behind the
// aggregator's mutex, which only it and HTTP handlers take — there are no
// locks or channels on any sim hot path.
package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"inpg/internal/fleet"
	"inpg/internal/journey"
	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// rateWindow bounds the rolling-throughput window: runs per second is
// measured over completions in the last rateWindow.
const rateWindow = 30 * time.Second

// closeGrace bounds the graceful HTTP shutdown inside Close: in-flight
// handlers get this long to finish before the server is torn down hard.
const closeGrace = 2 * time.Second

// WorkerStatus is one worker goroutine's current activity.
type WorkerStatus struct {
	Worker int    `json:"worker"`
	Busy   bool   `json:"busy"`
	Index  int    `json:"index"`
	Label  string `json:"label,omitempty"`
}

// Status is the monitor's public state, served as JSON on /vars and as a
// data frame on every /events message.
type Status struct {
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	InFlight  int `json:"in_flight"`
	// Retried counts failed attempts that re-ran; Quarantined the runs
	// that exhausted every attempt; Skipped the cells resume satisfied
	// from prior manifests; Abandoned the clean completions whose results
	// were discarded because the sweep had already failed.
	Retried        int     `json:"retried"`
	Quarantined    int     `json:"quarantined"`
	Skipped        int     `json:"skipped"`
	Abandoned      int     `json:"abandoned"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// RunsPerSecond is throughput over the rolling window (not the whole
	// sweep), so it tracks slowdowns as heavier configurations start.
	RunsPerSecond float64        `json:"runs_per_second"`
	Workers       []WorkerStatus `json:"workers"`
	// Counters aggregates the final telemetry snapshots of completed
	// metered runs (empty when metrics are off).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Fleet is the coordinator's live state when this monitor fronts a
	// distributed campaign (SetFleet): per-worker liveness, leases
	// outstanding, reclaims, quarantines. Nil on local sweeps.
	Fleet *fleet.Status `json:"fleet,omitempty"`
}

// Monitor aggregates run outcomes and serves them over HTTP.
type Monitor struct {
	ch    chan runner.Outcome
	drain sync.WaitGroup

	mu          sync.Mutex
	start       time.Time
	workers     map[int]*WorkerStatus
	counters    map[string]uint64
	recent      []time.Time
	complete    int
	failed      int
	inFlight    int
	retried     int
	quarantined int
	skipped     int
	abandoned   int
	subs        map[chan []byte]struct{}
	closed      bool
	fleetFn     func() fleet.Status

	ln  net.Listener
	srv *http.Server
}

// New builds a monitor and starts its aggregator goroutine.
func New() *Monitor {
	m := &Monitor{
		ch:       make(chan runner.Outcome, 256),
		start:    time.Now(),
		workers:  map[int]*WorkerStatus{},
		counters: map[string]uint64{},
		subs:     map[chan []byte]struct{}{},
	}
	m.drain.Add(1)
	go m.loop()
	return m
}

// Observer returns the runner.Observer feeding this monitor. All it does
// on the worker's goroutine is a buffered channel send.
func (m *Monitor) Observer() runner.Observer {
	return func(o runner.Outcome) { m.ch <- o }
}

// SetFleet installs the fleet-status provider — the coordinator's Status
// method — turning /vars, /events and the progress page into the fleet
// dashboard. Call before the campaign starts.
func (m *Monitor) SetFleet(fn func() fleet.Status) {
	m.mu.Lock()
	m.fleetFn = fn
	m.mu.Unlock()
}

// Serve starts the HTTP server on addr (e.g. ":8080") and returns the
// bound address. Endpoints: / (plain-text progress), /vars (JSON),
// /metrics (Prometheus text exposition), /events (SSE), /debug/pprof/
// (profiling).
func (m *Monitor) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", m.handleText)
	mux.HandleFunc("/vars", m.handleVars)
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/events", m.handleEvents)
	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.ln = ln
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the monitor gracefully: the aggregator drains its queued
// outcomes, SSE subscribers are flushed and released (their channels
// closed, so streams end cleanly rather than mid-frame), and the HTTP
// server gets a bounded graceful shutdown (closeGrace) before being torn
// down hard. The caller must not invoke the Observer after Close — in
// practice: close after every sweep using it has returned.
func (m *Monitor) Close() error {
	close(m.ch)
	m.drain.Wait()
	m.mu.Lock()
	m.closed = true
	for sub := range m.subs {
		close(sub)
	}
	m.subs = map[chan []byte]struct{}{}
	m.mu.Unlock()
	if m.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
		defer cancel()
		if err := m.srv.Shutdown(ctx); err != nil {
			return m.srv.Close()
		}
	}
	return nil
}

// loop is the aggregator: the only writer of monitor state.
func (m *Monitor) loop() {
	defer m.drain.Done()
	for o := range m.ch {
		m.mu.Lock()
		m.apply(o)
		if len(m.subs) > 0 {
			frame, err := json.Marshal(m.statusLocked())
			if err == nil {
				for sub := range m.subs {
					select {
					case sub <- frame:
					default: // slow subscriber: drop the frame, not the sweep
					}
				}
			}
		}
		m.mu.Unlock()
	}
}

// apply folds one outcome into the state. Caller holds mu.
func (m *Monitor) apply(o runner.Outcome) {
	// Skipped cells were never claimed: they emit a single Done outcome
	// with no matching claim, so they must not touch in-flight or worker
	// state.
	if o.Status == runner.StatusSkipped {
		m.skipped++
		return
	}
	w := m.workers[o.Worker]
	if w == nil {
		w = &WorkerStatus{Worker: o.Worker}
		m.workers[o.Worker] = w
	}
	if !o.Done {
		m.inFlight++
		w.Busy, w.Index = true, o.Index
		w.Label = fmt.Sprintf("%s/%s seed %d", o.Cfg.Mechanism, o.Cfg.Lock, o.Cfg.Seed)
		return
	}
	m.inFlight--
	w.Busy, w.Label = false, ""
	if o.Status == runner.StatusRetrying {
		// The attempt finished but the run is unresolved: a fresh claim
		// for the next attempt follows.
		m.retried++
	} else {
		m.complete++
		if o.Err != nil {
			m.failed++
		}
		switch o.Status {
		case runner.StatusQuarantined:
			m.quarantined++
		case runner.StatusAbandoned:
			m.abandoned++
		}
	}
	now := time.Now()
	m.recent = append(m.recent, now)
	cut := 0
	for cut < len(m.recent) && now.Sub(m.recent[cut]) > rateWindow {
		cut++
	}
	m.recent = m.recent[cut:]
	// Counter values and histogram count/sum aggregates both fold in, so
	// the journey stage histograms survive aggregation (per-stage means
	// are derivable from <name>_sum / <name>_count).
	metrics.FoldSnapshot(m.counters, o.Snapshot)
}

// statusLocked assembles the public Status. Caller holds mu.
func (m *Monitor) statusLocked() Status {
	st := Status{
		Completed:      m.complete,
		Failed:         m.failed,
		InFlight:       m.inFlight,
		Retried:        m.retried,
		Quarantined:    m.quarantined,
		Skipped:        m.skipped,
		Abandoned:      m.abandoned,
		ElapsedSeconds: time.Since(m.start).Seconds(),
	}
	if n := len(m.recent); n > 0 {
		span := time.Since(m.recent[0]).Seconds()
		if span < 1 {
			span = 1
		}
		st.RunsPerSecond = float64(n) / span
	}
	for _, w := range m.workers {
		st.Workers = append(st.Workers, *w)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Worker < st.Workers[j].Worker })
	if len(m.counters) > 0 {
		st.Counters = make(map[string]uint64, len(m.counters))
		for k, v := range m.counters {
			st.Counters[k] = v
		}
	}
	if m.fleetFn != nil {
		fs := m.fleetFn()
		st.Fleet = &fs
	}
	return st
}

// Status returns a consistent copy of the current state.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statusLocked()
}

// handleVars serves the full status as JSON (expvar-style).
func (m *Monitor) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.Status())
}

// handleMetrics serves the monitor's state in the Prometheus text
// exposition format: the aggregated telemetry counters of completed runs
// (inpg_<instrument>, histograms as _count/_sum pairs) plus sweep
// progress gauges (inpg_sweep_*) and, on fleet campaigns, the
// coordinator's dispatch gauges (inpg_fleet_*).
func (m *Monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := m.Status()
	gauges := map[string]float64{
		"sweep.completed":       float64(st.Completed),
		"sweep.failed":          float64(st.Failed),
		"sweep.in_flight":       float64(st.InFlight),
		"sweep.retried":         float64(st.Retried),
		"sweep.quarantined":     float64(st.Quarantined),
		"sweep.skipped":         float64(st.Skipped),
		"sweep.abandoned":       float64(st.Abandoned),
		"sweep.elapsed_seconds": st.ElapsedSeconds,
		"sweep.runs_per_second": st.RunsPerSecond,
	}
	if fs := st.Fleet; fs != nil {
		gauges["fleet.cells"] = float64(fs.Cells)
		gauges["fleet.cells_done"] = float64(fs.Completed)
		gauges["fleet.leases_outstanding"] = float64(fs.LeasesOutstanding)
		gauges["fleet.workers"] = float64(len(fs.Workers))
		gauges["fleet.reclaims"] = float64(fs.Reclaims)
		gauges["fleet.duplicates"] = float64(fs.Duplicates)
		gauges["fleet.late_accepts"] = float64(fs.LateAccepts)
		gauges["fleet.quarantined"] = float64(fs.Quarantined)
		gauges["fleet.digest_conflicts"] = float64(fs.DigestConflicts)
		gauges["fleet.adopted"] = float64(fs.Adopted)
		gauges["fleet.replays"] = float64(fs.Replays)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, st.Counters, gauges)
}

// handleText serves the human-readable progress page.
func (m *Monitor) handleText(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	st := m.Status()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "inpg sweep monitor\n")
	fmt.Fprintf(&b, "completed %d (%d failed), %d in flight, elapsed %.1fs, %.2f runs/s\n",
		st.Completed, st.Failed, st.InFlight, st.ElapsedSeconds, st.RunsPerSecond)
	if st.Retried+st.Quarantined+st.Skipped+st.Abandoned > 0 {
		fmt.Fprintf(&b, "retried %d, quarantined %d, skipped %d, abandoned %d\n",
			st.Retried, st.Quarantined, st.Skipped, st.Abandoned)
	}
	b.WriteByte('\n')
	for _, ws := range st.Workers {
		if ws.Busy {
			fmt.Fprintf(&b, "worker %2d: run %4d  %s\n", ws.Worker, ws.Index, ws.Label)
		} else {
			fmt.Fprintf(&b, "worker %2d: idle\n", ws.Worker)
		}
	}
	if fs := st.Fleet; fs != nil {
		fmt.Fprintf(&b, "\nfleet: sweep %s, %d/%d cells, %d leases outstanding\n",
			fs.Sweep, fs.Completed, fs.Cells, fs.LeasesOutstanding)
		fmt.Fprintf(&b, "fleet: reclaimed %d, duplicates %d, late accepts %d, quarantined %d, digest conflicts %d\n",
			fs.Reclaims, fs.Duplicates, fs.LateAccepts, fs.Quarantined, fs.DigestConflicts)
		if fs.Replays > 0 || fs.Adopted > 0 {
			fmt.Fprintf(&b, "fleet: coordinator replays %d, leases adopted across restarts %d\n",
				fs.Replays, fs.Adopted)
		}
		for _, fw := range fs.Workers {
			fmt.Fprintf(&b, "fleet worker %-24s last seen %5.1fs ago, %d leases held, %d completed, %d failed\n",
				fw.ID, fw.LastSeenSeconds, fw.Leases, fw.Completed, fw.Failed)
		}
	}
	// Lock-journey stage breakdown: aggregated per-stage attribution over
	// every sampled acquisition of every completed run (journey tracing
	// on), with each stage's share of the mean end-to-end latency.
	if n := st.Counters["journey.e2e_cycles_count"]; n > 0 {
		e2e := st.Counters["journey.e2e_cycles_sum"]
		fmt.Fprintf(&b, "\nlock-journey stage breakdown (%d sampled acquisitions, mean cycles per stage):\n", n)
		for _, stg := range journey.Stages {
			sum := st.Counters["journey.stage."+stg.String()+"_cycles_sum"]
			pct := 0.0
			if e2e > 0 {
				pct = 100 * float64(sum) / float64(e2e)
			}
			fmt.Fprintf(&b, "  %-10s %12.1f  %5.1f%%\n", stg, float64(sum)/float64(n), pct)
		}
		fmt.Fprintf(&b, "  %-10s %12.1f\n", "e2e", float64(e2e)/float64(n))
	}
	if len(st.Counters) > 0 {
		names := make([]string, 0, len(st.Counters))
		for k := range st.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "\naggregated counters over completed runs:\n")
		for _, k := range names {
			fmt.Fprintf(&b, "  %-32s %d\n", k, st.Counters[k])
		}
	}
	fmt.Fprint(w, b.String())
}

// handleEvents serves an SSE stream: one status frame per drained
// outcome, until the client disconnects or the monitor closes.
func (m *Monitor) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	sub := make(chan []byte, 16)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		http.Error(w, "monitor closed", http.StatusServiceUnavailable)
		return
	}
	m.subs[sub] = struct{}{}
	first, _ := json.Marshal(m.statusLocked())
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.subs, sub)
		m.mu.Unlock()
	}()

	fmt.Fprintf(w, "data: %s\n\n", first)
	fl.Flush()
	for {
		select {
		case frame, ok := <-sub:
			if !ok {
				// Monitor closing: the stream ends cleanly after the last
				// flushed frame.
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", frame)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz answers liveness probes: the monitor is healthy exactly
// while its aggregator accepts outcomes.
func (m *Monitor) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}
