package monitor

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"inpg"
	"inpg/internal/fleet"
	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// feed pushes a claim+completion pair for run i through the observer.
func feed(obs runner.Observer, worker, i int, err error, snap *metrics.Snapshot) {
	cfg := inpg.DefaultConfig()
	cfg.Seed = int64(i)
	obs(runner.Outcome{Index: i, Worker: worker, Cfg: cfg})
	obs(runner.Outcome{Index: i, Worker: worker, Done: true, Cfg: cfg,
		Err: err, Snapshot: snap, WallSeconds: 0.01})
}

// waitFor polls the monitor until cond holds or the deadline passes —
// outcomes are applied asynchronously by the aggregator goroutine.
func waitFor(t *testing.T, m *Monitor, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor state never converged: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMonitorAggregatesOutcomes(t *testing.T) {
	m := New()
	defer m.Close()
	obs := m.Observer()

	snap := &metrics.Snapshot{Values: []metrics.KV{{Name: "noc.injected", Value: 10}}}
	feed(obs, 0, 0, nil, snap)
	feed(obs, 1, 1, nil, snap)
	feed(obs, 0, 2, errors.New("boom"), nil)
	// Leave run 3 in flight on worker 1.
	cfg := inpg.DefaultConfig()
	obs(runner.Outcome{Index: 3, Worker: 1, Cfg: cfg})

	st := waitFor(t, m, func(st Status) bool { return st.Completed == 3 && st.InFlight == 1 })
	if st.Failed != 1 {
		t.Fatalf("failed = %d, want 1", st.Failed)
	}
	if st.Counters["noc.injected"] != 20 {
		t.Fatalf("aggregated counter = %d, want 20", st.Counters["noc.injected"])
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %+v", st.Workers)
	}
	var busy *WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].Busy {
			busy = &st.Workers[i]
		}
	}
	if busy == nil || busy.Worker != 1 || busy.Index != 3 || busy.Label == "" {
		t.Fatalf("busy worker = %+v", busy)
	}
	if st.RunsPerSecond <= 0 {
		t.Fatalf("runs/s = %f", st.RunsPerSecond)
	}
}

func TestMonitorHTTPEndpoints(t *testing.T) {
	m := New()
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	obs := m.Observer()
	feed(obs, 0, 0, nil, nil)
	waitFor(t, m, func(st Status) bool { return st.Completed == 1 })

	// /vars serves the status as JSON.
	resp, err := http.Get("http://" + addr + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 1 {
		t.Fatalf("/vars completed = %d", st.Completed)
	}

	// / serves the plain-text progress page.
	resp, err = http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	var page strings.Builder
	if _, err := fmt.Fprint(&page, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.String(), "inpg sweep monitor") ||
		!strings.Contains(page.String(), "completed 1") {
		t.Fatalf("progress page:\n%s", page.String())
	}

	// /debug/pprof/ responds (registered on the monitor's own mux).
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

func TestMonitorSSEStream(t *testing.T) {
	m := New()
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)

	// The stream opens with the current state...
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &st); err != nil {
		t.Fatalf("first frame %q: %v", line, err)
	}

	// ...and pushes a frame when an outcome lands.
	feed(m.Observer(), 0, 0, nil, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		line, err = r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			if time.Now().After(deadline) {
				t.Fatal("no completion frame before deadline")
			}
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			t.Fatalf("frame %q: %v", line, err)
		}
		if st.Completed == 1 {
			return
		}
	}
}

// readAll drains a response body into a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}

// TestMonitorHealthzAndFleetStatus: /healthz answers liveness probes,
// and an installed fleet provider turns /vars and the progress page into
// the fleet dashboard.
func TestMonitorHealthzAndFleetStatus(t *testing.T) {
	m := New()
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetFleet(func() fleet.Status {
		return fleet.Status{Sweep: "fig2", Cells: 15, Completed: 7, Reclaims: 3,
			Workers: []fleet.WorkerStatus{{ID: "w1", Completed: 7, Leases: 1}}}
	})

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + addr + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Fleet == nil || st.Fleet.Sweep != "fig2" || st.Fleet.Reclaims != 3 {
		t.Fatalf("/vars fleet = %+v", st.Fleet)
	}

	resp, err = http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	page := readAll(t, resp)
	if !strings.Contains(page, "fleet: sweep fig2, 7/15 cells") ||
		!strings.Contains(page, "fleet worker w1") {
		t.Fatalf("progress page without fleet section:\n%s", page)
	}
}

// TestMonitorGracefulCloseNoLeaks: Close with a live SSE subscriber
// flushes and ends the stream cleanly (EOF, not an aborted connection)
// and leaves no goroutines behind.
func TestMonitorGracefulCloseNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	m := New()
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr}

	resp, err := client.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(resp.Body)
	if _, err := r.ReadString('\n'); err != nil { // initial frame
		t.Fatal(err)
	}
	feed(m.Observer(), 0, 0, nil, nil)
	waitFor(t, m, func(st Status) bool { return st.Completed == 1 })

	if err := m.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	// The subscriber's stream must end cleanly: reads drain any flushed
	// frames and then hit EOF rather than a reset.
	for {
		if _, err := r.ReadString('\n'); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("SSE stream ended with %v, want EOF", err)
			}
			break
		}
	}
	resp.Body.Close()
	tr.CloseIdleConnections()

	// A late subscriber is refused rather than left hanging.
	if _, err := http.Get("http://" + addr + "/events"); err == nil {
		t.Fatal("post-close connect should fail (listener closed)")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(),
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMonitorPrometheusAndJourneyBreakdown: completed runs' snapshots —
// counter values and histogram count/sum aggregates — surface on
// /metrics in Prometheus text exposition format with sweep progress
// gauges, and journey-traced runs add the per-stage breakdown block to
// the text dashboard.
func TestMonitorPrometheusAndJourneyBreakdown(t *testing.T) {
	m := New()
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	obs := m.Observer()
	snap := &metrics.Snapshot{
		Values: []metrics.KV{{Name: "journey.completed", Value: 5}},
		Histograms: []metrics.HistSummary{
			{Name: "journey.e2e_cycles", Count: 5, Sum: 1000},
			{Name: "journey.stage.stall_cycles", Count: 5, Sum: 600},
			{Name: "journey.stage.directory_cycles", Count: 5, Sum: 400},
		},
	}
	feed(obs, 0, 0, nil, snap)
	feed(obs, 0, 1, nil, snap)
	waitFor(t, m, func(st Status) bool { return st.Completed == 2 })

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom := readAll(t, resp)
	for _, want := range []string{
		"# TYPE inpg_journey_completed counter",
		"inpg_journey_completed 10",
		"inpg_journey_e2e_cycles_count 10",
		"inpg_journey_e2e_cycles_sum 2000",
		"inpg_journey_stage_stall_cycles_sum 1200",
		"# TYPE inpg_sweep_completed gauge",
		"inpg_sweep_completed 2",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}

	resp, err = http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	page := readAll(t, resp)
	if !strings.Contains(page, "lock-journey stage breakdown (10 sampled acquisitions") {
		t.Fatalf("dashboard missing journey breakdown:\n%s", page)
	}
	// stall: 1200 cycles over 10 journeys = 120.0 mean, 60% of e2e.
	if !strings.Contains(page, "stall") || !strings.Contains(page, "120.0") ||
		!strings.Contains(page, "60.0%") {
		t.Fatalf("stage line wrong:\n%s", page)
	}
}
