package journey

import (
	"testing"

	"inpg/internal/sim"
)

// TestRecordSumExact pins the core invariant: a finished record's stage
// cycles sum to its end-to-end latency exactly, milestone by milestone.
func TestRecordSumExact(t *testing.T) {
	r := &Record{Thread: 3, Acquire: 7}
	r.Begin(100)
	r.Issue(105)                                      // 5 stall
	r.FoldLeg(125, 0, 9, 4, 3, 8, 2, false)           // 20-cycle leg: 3 niq, 6 vcw, 2 retry, 9 link
	r.Remote(140)                                     // 15 directory
	r.FoldLeg(160, 9, 0, 4, 2, 5, 0, true)            // 20-cycle leg, intercepted
	r.Finish(163)                                     // 3 stall
	if !r.Finished() {
		t.Fatal("record not finished")
	}
	if got, want := r.E2E(), uint64(63); got != want {
		t.Fatalf("E2E = %d, want %d", got, want)
	}
	if r.StageSum() != r.E2E() {
		t.Fatalf("stage sum %d != e2e %d (stages %v)", r.StageSum(), r.E2E(), r.Stages)
	}
	if r.Stages[StageStall] != 8 {
		t.Errorf("stall = %d, want 8", r.Stages[StageStall])
	}
	if r.Stages[StageBigRouter] != 1 {
		t.Errorf("bigrouter = %d, want 1", r.Stages[StageBigRouter])
	}
	if !r.Intercepted || r.LegCount != 2 || r.Hops != 8 {
		t.Errorf("legs=%d hops=%d intercepted=%v", r.LegCount, r.Hops, r.Intercepted)
	}
	if len(r.Legs) != 2 {
		t.Fatalf("len(Legs) = %d, want 2", len(r.Legs))
	}
	for _, l := range r.Legs {
		legSum := l.NIQueue + l.VCWait + l.Link + l.BigRouter + l.Retry
		if legSum != uint64(l.End-l.Start) {
			t.Errorf("leg [%d,%d] parts sum %d != window %d", l.Start, l.End, legSum, l.End-l.Start)
		}
	}
}

// TestRecordOverlappingLegs checks the clamp: when two tagged packets'
// windows overlap (eager ack racing a data reply), folding the second
// only attributes cycles past the cursor, and the sum stays exact.
func TestRecordOverlappingLegs(t *testing.T) {
	r := &Record{}
	r.Begin(0)
	r.Issue(2)
	// First leg delivered at 50 with inflated measured parts.
	r.FoldLeg(50, 1, 2, 3, 100, 100, 100, false)
	// Second leg delivered at 53 — only 3 cycles of window remain even
	// though the packet measured 40 cycles of queueing.
	r.FoldLeg(53, 1, 2, 3, 40, 0, 0, false)
	r.Finish(60)
	if r.StageSum() != r.E2E() {
		t.Fatalf("stage sum %d != e2e %d (stages %v)", r.StageSum(), r.E2E(), r.Stages)
	}
}

// TestRecordLateMilestones checks that milestones after Finish — stale
// packets still in flight when the lock callback fires — are ignored.
func TestRecordLateMilestones(t *testing.T) {
	r := &Record{}
	r.Begin(10)
	r.Finish(20)
	r.FoldLeg(30, 0, 1, 1, 1, 1, 0, false)
	r.Remote(35)
	r.Issue(40)
	if r.E2E() != 10 || r.StageSum() != 10 {
		t.Fatalf("late milestones perturbed record: e2e=%d sum=%d", r.E2E(), r.StageSum())
	}
	if r.LegCount != 0 {
		t.Fatalf("late leg counted: %d", r.LegCount)
	}
}

// TestRecorderBounds checks the retention cap and counters.
func TestRecorderBounds(t *testing.T) {
	rec := NewRecorder(2)
	var seen int
	rec.OnFinish = func(*Record) { seen++ }
	for i := 0; i < 5; i++ {
		r := &Record{Thread: i}
		r.Begin(0)
		if i%2 == 0 {
			r.Intercepted = true
		}
		r.Finish(sim.Cycle(i + 1))
		rec.Finish(r)
	}
	if rec.Completed != 5 || rec.Dropped != 3 || len(rec.Records) != 2 {
		t.Fatalf("completed=%d dropped=%d kept=%d", rec.Completed, rec.Dropped, len(rec.Records))
	}
	if rec.InterceptedCount != 3 {
		t.Fatalf("intercepted = %d, want 3", rec.InterceptedCount)
	}
	if seen != 5 {
		t.Fatalf("OnFinish saw %d, want 5", seen)
	}
}

// TestSampledDeterministic pins the sampling function: pure in its
// inputs, 0 and 1 exact, intermediate rates monotone in acceptance.
func TestSampledDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		if Sampled(42, i, uint64(i), 0) {
			t.Fatal("rate 0 sampled")
		}
		if !Sampled(42, i, uint64(i), 1) {
			t.Fatal("rate 1 not sampled")
		}
		if Sampled(42, i, uint64(i), 0.25) != Sampled(42, i, uint64(i), 0.25) {
			t.Fatal("sampling not deterministic")
		}
		// Acceptance at a low rate implies acceptance at a higher one.
		if Sampled(42, i, uint64(i), 0.1) && !Sampled(42, i, uint64(i), 0.9) {
			t.Fatal("sampling not monotone in rate")
		}
	}
	// Different seeds must change the sampled set somewhere.
	diff := false
	for i := 0; i < 1000 && !diff; i++ {
		diff = Sampled(1, 0, uint64(i), 0.5) != Sampled(2, 0, uint64(i), 0.5)
	}
	if !diff {
		t.Fatal("seed does not key the sample set")
	}
}
