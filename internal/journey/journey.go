// Package journey implements causal lock-journey tracing: a sampled
// critical-section acquisition carries a Record from the cycle the thread
// asks for the lock to the cycle the lock callback fires, and every cycle
// in between is attributed to exactly one typed stage — thread stall, NI
// injection queueing, per-hop VC wait, link traversal, big-router
// interception, directory service, or retransmission backoff.
//
// The accounting is exact by construction. A Record keeps a monotonic
// cursor (`mark`); every milestone fires on the engine's single event
// goroutine with a nondecreasing `now`, attributes the window
// [mark, now) to one stage, and advances the cursor. The stage cycles of
// a finished journey therefore sum to the end-to-end latency with no
// rounding and no double counting, which is what the differential tests
// and `inpgvalidate` pin.
//
// The same zero-perturbation discipline as internal/trace and
// internal/metrics applies: nothing here schedules events, consumes
// randomness, or is observable by the simulation. Sampling decisions come
// from a keyed FNV hash of (seed, thread, acquire index), so whether a
// given acquisition is sampled is a pure function of configuration — two
// runs at the same rate sample the same journeys, and a rate-0 run is
// byte-identical to one without the package wired in.
package journey

import (
	"fmt"
	"hash/fnv"

	"inpg/internal/sim"
)

// Stage identifies where a journey's cycles were spent.
type Stage int

const (
	// StageStall is requester-side time with no tagged message in flight:
	// spin backoff, queue-lock sleep, L1 hit latency, and lock-algorithm
	// logic between network legs.
	StageStall Stage = iota
	// StageNIQueue is time a tagged packet waited in the network
	// interface's injection queue before its first flit entered the mesh.
	StageNIQueue
	// StageVCWait is time a tagged packet's head flit sat buffered in a
	// router VC waiting for the output link (minus retransmission
	// backoff, which StageRetry owns).
	StageVCWait
	// StageLink is wire and serialization time: the per-leg residual
	// after queueing, VC wait, and retries are carved out of the
	// injection-to-delivery window.
	StageLink
	// StageBigRouter is big-router interception work: one cycle per leg
	// whose lock request was stopped and converted in-network.
	StageBigRouter
	// StageDirectory is remote-side service time: L2 access, pending-queue
	// wait behind earlier transactions, and ack collection at the home
	// node — the component iNPG's packet generation attacks.
	StageDirectory
	// StageRetry is accumulated link-retransmission backoff on faulty
	// links.
	StageRetry

	// NumStages counts the stages above.
	NumStages
)

var stageNames = [NumStages]string{
	"stall", "ni_queue", "vc_wait", "link", "bigrouter", "directory", "retry",
}

// String returns the stage's snake_case instrument name.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Stages lists every stage in attribution order, for iteration.
var Stages = [NumStages]Stage{
	StageStall, StageNIQueue, StageVCWait, StageLink,
	StageBigRouter, StageDirectory, StageRetry,
}

// Leg is one network traversal of a journey: a tagged packet from
// injection to delivery. Legs become child spans in the Perfetto export.
type Leg struct {
	Start       sim.Cycle `json:"start"`
	End         sim.Cycle `json:"end"`
	Src         int       `json:"src"`
	Dst         int       `json:"dst"`
	Hops        int       `json:"hops"`
	NIQueue     uint64    `json:"niQueue"`
	VCWait      uint64    `json:"vcWait"`
	Link        uint64    `json:"link"`
	BigRouter   uint64    `json:"bigRouter"`
	Retry       uint64    `json:"retry"`
	Intercepted bool      `json:"intercepted,omitempty"`
}

// MaxLegs bounds the per-record leg list; stage totals keep accumulating
// past the cap, only the span detail is dropped.
const MaxLegs = 64

// Record is one sampled acquisition's causal journey. All mutation
// happens on the engine's event goroutine; milestones must be called with
// nondecreasing cycles.
type Record struct {
	Thread  int    `json:"thread"`
	Acquire uint64 `json:"acquire"`

	Start sim.Cycle `json:"start"`
	End   sim.Cycle `json:"end"`

	// Stages holds attributed cycles, indexed by Stage. For a finished
	// record their sum equals End-Start exactly.
	Stages [NumStages]uint64 `json:"stages"`

	// Legs holds per-traversal detail for up to MaxLegs network legs.
	Legs []Leg `json:"legs,omitempty"`

	LegCount    int  `json:"legCount"`
	Hops        int  `json:"hops"`
	Intercepted bool `json:"intercepted,omitempty"`

	mark     sim.Cycle
	finished bool
}

// Begin starts the journey at now (the cycle Acquire was called).
func (r *Record) Begin(now sim.Cycle) {
	r.Start, r.mark = now, now
}

// advance attributes [mark, now) to st and moves the cursor.
func (r *Record) advance(now sim.Cycle, st Stage) {
	if r.finished || now <= r.mark {
		return
	}
	r.Stages[st] += uint64(now - r.mark)
	r.mark = now
}

// Issue marks the cycle a tagged request left the requester's L1; the
// window since the last milestone was requester-side stall.
func (r *Record) Issue(now sim.Cycle) { r.advance(now, StageStall) }

// Remote marks the cycle a remote party (directory or owner L1) sent a
// tagged response; the window since the leg that delivered the request
// was remote service time.
func (r *Record) Remote(now sim.Cycle) { r.advance(now, StageDirectory) }

// FoldLeg folds one delivered tagged packet into the journey: the window
// from the last milestone to delivery is split into injection queueing,
// VC wait, retransmission backoff, big-router interception, and a link
// residual. The packet-measured parts are clamped in that order so the
// split can never exceed the window — the invariant that keeps stage
// sums exact even when tagged legs overlap (an eager AcksComplete racing
// a LockProbe's data reply folds only the cycles the cursor has not yet
// passed).
func (r *Record) FoldLeg(now sim.Cycle, src, dst, hops int, niq, vcwRaw, retry uint64, intercepted bool) {
	if r.finished {
		return
	}
	legStart := r.mark
	if now <= r.mark {
		return
	}
	rem := uint64(now - r.mark)
	if niq > rem {
		niq = rem
	}
	rem -= niq
	vcw := vcwRaw
	if vcw >= retry {
		vcw -= retry // retries sat in the same buffered window; don't double count
	} else {
		vcw = 0
	}
	if vcw > rem {
		vcw = rem
	}
	rem -= vcw
	if retry > rem {
		retry = rem
	}
	rem -= retry
	var br uint64
	if intercepted && rem > 0 {
		br = 1 // the big router's stop-and-convert costs the pipeline one cycle
		rem--
	}
	r.Stages[StageNIQueue] += niq
	r.Stages[StageVCWait] += vcw
	r.Stages[StageRetry] += retry
	r.Stages[StageBigRouter] += br
	r.Stages[StageLink] += rem
	r.mark = now

	r.LegCount++
	r.Hops += hops
	if intercepted {
		r.Intercepted = true
	}
	if len(r.Legs) < MaxLegs {
		r.Legs = append(r.Legs, Leg{
			Start: legStart, End: now, Src: src, Dst: dst, Hops: hops,
			NIQueue: niq, VCWait: vcw, Link: rem, BigRouter: br, Retry: retry,
			Intercepted: intercepted,
		})
	}
}

// Finish completes the journey at now (the cycle the acquire callback
// fired); the trailing window is requester-side stall. Milestones after
// Finish — a stale tagged packet still in flight — are ignored.
func (r *Record) Finish(now sim.Cycle) {
	r.advance(now, StageStall)
	r.End = now
	r.finished = true
}

// Finished reports whether Finish has run.
func (r *Record) Finished() bool { return r.finished }

// E2E returns the journey's end-to-end latency in cycles.
func (r *Record) E2E() uint64 { return uint64(r.End - r.Start) }

// StageSum returns the total attributed cycles; equals E2E for a
// finished record.
func (r *Record) StageSum() uint64 {
	var s uint64
	for _, v := range r.Stages {
		s += v
	}
	return s
}

// DefaultMaxRecords bounds a Recorder's retained journey list. Stage
// histograms (owned by the caller via OnFinish) keep aggregating past
// the cap; only span-level detail is dropped.
const DefaultMaxRecords = 4096

// Recorder collects finished journeys for one simulation.
type Recorder struct {
	// Records holds up to MaxRecords finished journeys in completion
	// order.
	Records []*Record
	// MaxRecords caps Records; <=0 means DefaultMaxRecords.
	MaxRecords int

	// Completed counts every finished journey, capped or not.
	Completed uint64
	// InterceptedCount counts finished journeys with at least one
	// big-router interception.
	InterceptedCount uint64
	// Dropped counts journeys finished after Records filled up.
	Dropped uint64

	// OnFinish, when non-nil, observes every finished record (the root
	// package feeds per-stage histograms here).
	OnFinish func(*Record)
}

// NewRecorder returns a Recorder retaining up to max records.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxRecords
	}
	return &Recorder{MaxRecords: max}
}

// Finish registers a completed journey.
func (rec *Recorder) Finish(r *Record) {
	rec.Completed++
	if r.Intercepted {
		rec.InterceptedCount++
	}
	if len(rec.Records) < rec.MaxRecords {
		rec.Records = append(rec.Records, r)
	} else {
		rec.Dropped++
	}
	if rec.OnFinish != nil {
		rec.OnFinish(r)
	}
}

// Sampled reports deterministically whether a thread's n-th acquisition
// is journey-sampled at the given rate. The decision is a keyed FNV-64a
// hash — no RNG state, no ordering dependence — so it is identical
// across shard counts, engine modes, and repeated runs.
func Sampled(seed int64, thread int, acquire uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "journey/%d/%d/%d", seed, thread, acquire)
	return float64(h.Sum64()%1_000_000)/1_000_000 < rate
}
