// Package bigrouter implements iNPG, the paper's contribution: "big"
// routers that enhance a normal NoC router with a packet generator and a
// locking barrier table (Section 4, Figure 6).
//
// When the first GetX for a lock variable traverses a big router, a
// temporary lock barrier is created. Subsequent (arbitration-losing or
// later-arriving) GetX requests for the same lock are stopped: the big
// router immediately generates an early invalidation (Inv) to the issuing
// thread's L1, converts the stopped GetX into a FwdGetX bound for the home
// node, and — when the InvAck for its early Inv returns — forwards the ack
// to the home, which credits it to the winning thread's transaction. The
// invalidation–acknowledgement round trip thus happens near the competing
// thread instead of at the (possibly distant) home node, turning
// long-range centralized coherence traffic into short-range distributed
// traffic and shortening the lock coherence overhead (LCO).
//
// Each lock barrier carries a time-to-live (default 128 cycles) that
// counts down only while the barrier has no live early-invalidation (EI)
// entries and resets whenever one is created; an EI entry lives through
// four phases (Inv generated, GetX forwarded, InvAck received, ack
// forwarded) and is freed after the last. A full table passes traffic
// through like a normal router.
package bigrouter

import (
	"inpg/internal/coherence"
	"inpg/internal/noc"
	"inpg/internal/sim"
	"inpg/internal/trace"
)

// Config sizes the locking barrier table (Table 1 defaults: 16 barriers,
// 16 EI entries per barrier, TTL 128 cycles).
type Config struct {
	Barriers  int
	EIEntries int
	TTL       sim.Cycle
}

// DefaultConfig returns the paper's default big-router configuration.
func DefaultConfig() Config {
	return Config{Barriers: 16, EIEntries: 16, TTL: 128}
}

// EI-entry phases (Figure 6). Generation and forwarding happen in the same
// switch-traversal slot, so a live entry is either awaiting its InvAck or
// being freed; the phase field exists for observability.
const (
	PhaseInvGenerated = iota
	PhaseGetXForwarded
	PhaseInvAckReceived
	PhaseAckForwarded
)

// eiEntry tracks one stopped GetX / early invalidation.
type eiEntry struct {
	issuer    noc.NodeID
	phase     int
	invSentAt sim.Cycle
}

// barrier is one locking-barrier-table row.
type barrier struct {
	addr   uint64
	expiry sim.Cycle // valid while len(eis) == 0
	eis    map[noc.NodeID]*eiEntry
}

// Stats counts packet-generator activity.
type Stats struct {
	BarriersCreated uint64
	BarriersExpired uint64
	GetXPassed      uint64 // lock GetX that created or bypassed a barrier
	GetXStopped     uint64 // converted to FwdGetX
	EarlyInvsSent   uint64
	AcksRelayed     uint64
	TableFullPasses uint64
	StrayAcks       uint64 // acks arriving with no matching EI entry
}

// Gen is the packet generator attached to one big router. It implements
// noc.Interceptor.
type Gen struct {
	Node  noc.NodeID
	eng   *sim.Engine
	homes coherence.HomeMap
	cfg   Config
	rtt   coherence.RTTRecorder

	barriers map[uint64]*barrier
	tokenSeq uint64

	// Tracer, when set, records stop / early-invalidation / ack-relay
	// events.
	Tracer *trace.Buffer

	Stats Stats
}

// New builds a packet generator for the big router at node.
func New(eng *sim.Engine, node noc.NodeID, homes coherence.HomeMap, cfg Config) *Gen {
	return &Gen{
		Node:     node,
		eng:      eng,
		homes:    homes,
		cfg:      cfg,
		barriers: make(map[uint64]*barrier),
	}
}

// SetRTTRecorder installs the early-invalidation round-trip sampler.
func (g *Gen) SetRTTRecorder(r coherence.RTTRecorder) { g.rtt = r }

// Intercept implements noc.Interceptor: it examines every single-flit
// packet whose head flit enters this router.
func (g *Gen) Intercept(now sim.Cycle, r *noc.Router, p *noc.Packet) (bool, []*noc.Packet) {
	m, ok := p.Payload.(*coherence.Message)
	if !ok {
		return false, nil
	}
	switch {
	case p.LockReq && m.Type == coherence.MsgGetX:
		return g.onLockGetX(now, r, p, m)
	case m.Type == coherence.MsgInvAck && m.EarlyInv && !m.ToDir && p.Dst == g.Node:
		// An InvAck answering one of our early Invs. Acks with ToDir set
		// are already relayed and belong to the destination's directory,
		// even when that directory shares a node with a big router.
		return g.onEarlyInvAck(now, r, m)
	}
	return false, nil
}

// onLockGetX applies the barrier logic to a traversing lock GetX.
func (g *Gen) onLockGetX(now sim.Cycle, r *noc.Router, p *noc.Packet, m *coherence.Message) (bool, []*noc.Packet) {
	g.expire(now)
	b := g.barriers[m.Addr]
	if b == nil {
		if len(g.barriers) >= g.cfg.Barriers {
			// Locking barrier table full: behave like a normal router.
			g.Stats.TableFullPasses++
			return false, nil
		}
		g.barriers[m.Addr] = &barrier{
			addr:   m.Addr,
			expiry: now + g.cfg.TTL,
			eis:    make(map[noc.NodeID]*eiEntry),
		}
		g.Stats.BarriersCreated++
		g.Stats.GetXPassed++
		return false, nil
	}
	if len(b.eis) >= g.cfg.EIEntries {
		g.Stats.TableFullPasses++
		return false, nil
	}
	if _, dup := b.eis[m.Requestor]; dup {
		// One outstanding request per L1 makes this unreachable; pass
		// defensively rather than corrupt the entry.
		g.Stats.GetXPassed++
		return false, nil
	}

	// Stop the request: early-invalidate the issuer, convert the GetX into
	// a FwdGetX toward the home, and remember the EI entry. The token ties
	// this stop's invalidation, acknowledgement and relay together.
	g.tokenSeq++
	token := uint64(g.Node)<<32 | g.tokenSeq
	b.eis[m.Requestor] = &eiEntry{issuer: m.Requestor, phase: PhaseGetXForwarded, invSentAt: now}
	g.Stats.GetXStopped++
	g.Stats.EarlyInvsSent++

	m.Type = coherence.MsgFwdGetX
	m.EarlyInv = true
	m.ToDir = true
	m.Token = token
	p.LockReq = false // other big routers must not stop the forward
	if p.Journey != nil {
		// A sampled journey notes the in-network stop inline; the packet's
		// head flit has one owning router per cycle, so this is shard-safe
		// (the same discipline as the m rewrite above).
		p.JIntercepted = true
	}
	if g.Tracer != nil {
		stop := trace.Event{Cycle: now, Kind: trace.PktStop, Node: g.Node,
			Src: m.Requestor, Dst: p.Dst, Addr: m.Addr, Detail: "GetX->FwdGetX"}
		einv := trace.Event{Cycle: now, Kind: trace.EarlyInv, Node: g.Node,
			Src: g.Node, Dst: m.Requestor, Addr: m.Addr, Detail: "generated Inv"}
		if r != nil && r.InShardedPass() {
			// The trace buffer is shared across nodes: under a sharded
			// tick pass, appends replay at the cycle barrier in the
			// sequential engine's order. The events are captured by
			// value, so later packet rewrites cannot alter them.
			r.DeferToBarrier(func() {
				g.Tracer.Add(stop)
				g.Tracer.Add(einv)
			})
		} else {
			g.Tracer.Add(stop)
			g.Tracer.Add(einv)
		}
	}

	inv := &coherence.Message{
		Type:      coherence.MsgInv,
		Addr:      m.Addr,
		From:      g.Node,
		Requestor: m.Requestor,
		AckTo:     g.Node,
		EarlyInv:  true,
		Token:     token,
	}
	return false, []*noc.Packet{genPacket(r, inv, m.Requestor)}
}

// onEarlyInvAck consumes an InvAck returning to this big router and relays
// it to the home node of the lock.
func (g *Gen) onEarlyInvAck(now sim.Cycle, r *noc.Router, m *coherence.Message) (bool, []*noc.Packet) {
	if b := g.barriers[m.Addr]; b != nil {
		if ei := b.eis[m.AckFor]; ei != nil {
			if g.rtt != nil {
				// The RTT collector is shared across big routers; same
				// barrier-deferral discipline as the tracer.
				if core, rtt := m.AckFor, now-ei.invSentAt; r != nil && r.InShardedPass() {
					r.DeferToBarrier(func() { g.rtt.RecordRTT(core, rtt) })
				} else {
					g.rtt.RecordRTT(core, rtt)
				}
			}
			ei.phase = PhaseAckForwarded
			delete(b.eis, m.AckFor)
			if len(b.eis) == 0 {
				b.expiry = now + g.cfg.TTL
			}
		} else {
			g.Stats.StrayAcks++
		}
	} else {
		g.Stats.StrayAcks++
	}
	// Always relay: the home must never lose an acknowledgement.
	g.Stats.AcksRelayed++
	if g.Tracer != nil {
		ev := trace.Event{Cycle: now, Kind: trace.AckRelay, Node: g.Node,
			Src: m.AckFor, Dst: g.homes.Home(m.Addr), Addr: m.Addr, Detail: "InvAck relayed"}
		if r != nil && r.InShardedPass() {
			r.DeferToBarrier(func() { g.Tracer.Add(ev) })
		} else {
			g.Tracer.Add(ev)
		}
	}
	fwd := &coherence.Message{
		Type:     coherence.MsgInvAck,
		Addr:     m.Addr,
		From:     g.Node,
		AckFor:   m.AckFor,
		EarlyInv: true,
		ToDir:    true,
		Token:    m.Token,
	}
	return true, []*noc.Packet{genPacket(r, fwd, g.homes.Home(m.Addr))}
}

// expire deletes barriers whose TTL ran out with no live EI entries.
func (g *Gen) expire(now sim.Cycle) {
	for addr, b := range g.barriers {
		if len(b.eis) == 0 && b.expiry <= now {
			delete(g.barriers, addr)
			g.Stats.BarriersExpired++
		}
	}
}

// Barriers reports the live barrier count (tests, observability).
func (g *Gen) Barriers(now sim.Cycle) int {
	g.expire(now)
	return len(g.barriers)
}

// genPacket wraps a generated message in a packet recycled from r's
// network. Generated packets use the same priority as protocol responses
// so they are never starved under OCOR.
func genPacket(r *noc.Router, m *coherence.Message, dst noc.NodeID) *noc.Packet {
	p := new(noc.Packet)
	if r != nil { // unit tests intercept without a live network
		p = r.NewPacket()
	}
	p.Dst = dst
	p.VNet = m.Type.VNet()
	p.Size = noc.ControlFlits
	p.Priority = 100
	p.Addr = m.Addr
	p.Payload = m
	return p
}

// Deployment returns the node set for n big routers on mesh m, distributed
// evenly. n = half the nodes gives the paper's Figure 3 checkerboard (a
// big router between every two normal routers); other counts spread with
// a uniform stride.
func Deployment(m noc.Mesh, n int) []noc.NodeID {
	total := m.Nodes()
	if n >= total {
		all := make([]noc.NodeID, total)
		for i := range all {
			all[i] = noc.NodeID(i)
		}
		return all
	}
	if n <= 0 {
		return nil
	}
	if n*2 == total {
		var nodes []noc.NodeID
		for y := 0; y < m.Height; y++ {
			for x := 0; x < m.Width; x++ {
				if (x+y)%2 == 1 {
					nodes = append(nodes, m.ID(x, y))
				}
			}
		}
		return nodes
	}
	nodes := make([]noc.NodeID, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, noc.NodeID(i*total/n+total/(2*n)))
	}
	return nodes
}

// Attach builds generators for the given nodes, installs them as
// interceptors and returns them.
func Attach(eng *sim.Engine, net *noc.Network, homes coherence.HomeMap, cfg Config, nodes []noc.NodeID) []*Gen {
	gens := make([]*Gen, 0, len(nodes))
	for _, id := range nodes {
		g := New(eng, id, homes, cfg)
		net.Router(id).SetInterceptor(g)
		gens = append(gens, g)
	}
	return gens
}
