package bigrouter

import (
	"testing"

	"inpg/internal/coherence"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

func testGen(cfg Config) *Gen {
	eng := sim.NewEngine(1)
	homes := coherence.HomeMap{Nodes: 16, BlockBytes: 128}
	return New(eng, 5, homes, cfg)
}

// lockGetX builds a swap GetX packet from node src for addr.
func lockGetX(src noc.NodeID, addr uint64) (*noc.Packet, *coherence.Message) {
	m := &coherence.Message{
		Type: coherence.MsgGetX, Addr: addr, Requestor: src,
		LockAddr: true, IsSwap: true, Operand: 1, ToDir: true,
	}
	p := &noc.Packet{Dst: 3, VNet: noc.VNetRequest, Size: 1, LockReq: true, Addr: addr, Payload: m}
	return p, m
}

func TestFirstGetXCreatesBarrierAndPasses(t *testing.T) {
	g := testGen(DefaultConfig())
	p, m := lockGetX(7, 0x1000)
	consume, gen := g.Intercept(10, nil, p)
	if consume || len(gen) != 0 {
		t.Fatal("first lock GetX must pass untouched")
	}
	if m.Type != coherence.MsgGetX {
		t.Fatal("first GetX must not be converted")
	}
	if g.Barriers(10) != 1 {
		t.Fatalf("barriers = %d, want 1", g.Barriers(10))
	}
}

func TestSecondGetXIsStoppedAndConverted(t *testing.T) {
	g := testGen(DefaultConfig())
	p1, _ := lockGetX(7, 0x1000)
	g.Intercept(10, nil, p1)
	p2, m2 := lockGetX(9, 0x1000)
	consume, gen := g.Intercept(12, nil, p2)
	if consume {
		t.Fatal("stopped GetX is converted, not consumed")
	}
	if m2.Type != coherence.MsgFwdGetX || !m2.EarlyInv || !m2.ToDir {
		t.Fatalf("conversion wrong: %+v", m2)
	}
	if p2.LockReq {
		t.Fatal("converted packet must not be stoppable again")
	}
	if len(gen) != 1 {
		t.Fatalf("generated %d packets, want 1 early Inv", len(gen))
	}
	inv := gen[0].Payload.(*coherence.Message)
	if inv.Type != coherence.MsgInv || !inv.EarlyInv || inv.AckTo != 5 {
		t.Fatalf("early Inv wrong: %+v", inv)
	}
	if gen[0].Dst != 9 {
		t.Fatalf("early Inv sent to %d, want issuer 9", gen[0].Dst)
	}
	if g.Stats.GetXStopped != 1 || g.Stats.EarlyInvsSent != 1 {
		t.Fatalf("stats wrong: %+v", g.Stats)
	}
}

func TestDistinctLocksGetDistinctBarriers(t *testing.T) {
	g := testGen(DefaultConfig())
	pa, _ := lockGetX(1, 0x1000)
	pb, mb := lockGetX(2, 0x2000)
	g.Intercept(10, nil, pa)
	g.Intercept(10, nil, pb)
	if g.Barriers(10) != 2 {
		t.Fatalf("barriers = %d, want 2", g.Barriers(10))
	}
	if mb.Type != coherence.MsgGetX {
		t.Fatal("first GetX of second lock must pass")
	}
}

func TestBarrierTTLExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	g := testGen(cfg)
	p, _ := lockGetX(1, 0x1000)
	g.Intercept(10, nil, p)
	if g.Barriers(50) != 1 {
		t.Fatal("barrier should survive before TTL")
	}
	if g.Barriers(111) != 0 {
		t.Fatal("barrier should expire after TTL with no EI entries")
	}
	if g.Stats.BarriersExpired != 1 {
		t.Fatalf("expired = %d, want 1", g.Stats.BarriersExpired)
	}
}

func TestTTLFrozenWhileEIEntriesLive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	g := testGen(cfg)
	p1, _ := lockGetX(1, 0x1000)
	g.Intercept(10, nil, p1)
	p2, _ := lockGetX(2, 0x1000)
	g.Intercept(20, nil, p2) // stopped: live EI entry
	if g.Barriers(500) != 1 {
		t.Fatal("barrier with live EI entry must not expire")
	}
	// The InvAck for the early Inv frees the entry and restarts the TTL.
	ack := &coherence.Message{Type: coherence.MsgInvAck, Addr: 0x1000, AckFor: 2, EarlyInv: true}
	ap := &noc.Packet{Dst: 5, VNet: noc.VNetResponse, Size: 1, Addr: 0x1000, Payload: ack}
	consume, gen := g.Intercept(600, nil, ap)
	if !consume {
		t.Fatal("early InvAck addressed to the big router must be consumed")
	}
	if len(gen) != 1 || gen[0].Payload.(*coherence.Message).Type != coherence.MsgInvAck {
		t.Fatal("consumed ack must be relayed to the home")
	}
	relayed := gen[0].Payload.(*coherence.Message)
	if !relayed.ToDir || !relayed.EarlyInv || relayed.AckFor != 2 {
		t.Fatalf("relayed ack wrong: %+v", relayed)
	}
	if gen[0].Dst != 0 { // home of 0x1000 = (0x1000/128)%16 = 32%16 = 0
		t.Fatalf("relayed to %d, want home 0", gen[0].Dst)
	}
	if g.Barriers(600) != 1 {
		t.Fatal("TTL restarts at ack; barrier still alive immediately")
	}
	if g.Barriers(701) != 0 {
		t.Fatal("barrier should expire TTL cycles after last EI freed")
	}
}

func TestRelayedAcksNotInterceptedAtHomeBigRouter(t *testing.T) {
	g := testGen(DefaultConfig())
	// An already-relayed ack (ToDir) addressed to this node's directory
	// must pass through even though Dst matches the router.
	ack := &coherence.Message{Type: coherence.MsgInvAck, Addr: 0x1000, AckFor: 2, EarlyInv: true, ToDir: true}
	ap := &noc.Packet{Dst: 5, VNet: noc.VNetResponse, Size: 1, Addr: 0x1000, Payload: ack}
	consume, gen := g.Intercept(10, nil, ap)
	if consume || len(gen) != 0 {
		t.Fatal("relayed ack bound for the directory must pass through")
	}
}

func TestBarrierTableCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Barriers = 2
	g := testGen(cfg)
	for i, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		p, m := lockGetX(noc.NodeID(i), addr)
		g.Intercept(10, nil, p)
		if addr == 0x3000 && m.Type != coherence.MsgGetX {
			t.Fatal("GetX must pass when the barrier table is full")
		}
	}
	if g.Barriers(10) != 2 {
		t.Fatalf("barriers = %d, want capacity 2", g.Barriers(10))
	}
	if g.Stats.TableFullPasses != 1 {
		t.Fatalf("full passes = %d, want 1", g.Stats.TableFullPasses)
	}
}

func TestEIEntryCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EIEntries = 2
	g := testGen(cfg)
	p0, _ := lockGetX(0, 0x1000)
	g.Intercept(10, nil, p0)
	stopped := 0
	for i := 1; i <= 3; i++ {
		p, m := lockGetX(noc.NodeID(i), 0x1000)
		g.Intercept(10, nil, p)
		if m.Type == coherence.MsgFwdGetX {
			stopped++
		}
	}
	if stopped != 2 {
		t.Fatalf("stopped %d, want 2 (EI capacity)", stopped)
	}
}

func TestNonLockTrafficIgnored(t *testing.T) {
	g := testGen(DefaultConfig())
	m := &coherence.Message{Type: coherence.MsgGetS, Addr: 0x1000, Requestor: 1, ToDir: true}
	p := &noc.Packet{Dst: 3, VNet: noc.VNetRequest, Size: 1, Addr: 0x1000, Payload: m}
	consume, gen := g.Intercept(10, nil, p)
	if consume || len(gen) != 0 || g.Barriers(10) != 0 {
		t.Fatal("GetS must be ignored by the barrier table")
	}
}

func TestDeploymentCheckerboard(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	nodes := Deployment(m, 32)
	if len(nodes) != 32 {
		t.Fatalf("deployed %d, want 32", len(nodes))
	}
	for _, id := range nodes {
		x, y := m.Coord(id)
		if (x+y)%2 != 1 {
			t.Fatalf("node %d (%d,%d) breaks the checkerboard", id, x, y)
		}
	}
}

func TestDeploymentCounts(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	for _, n := range []int{0, 4, 16, 64, 100} {
		got := Deployment(m, n)
		want := n
		if n > 64 {
			want = 64
		}
		if len(got) != want {
			t.Fatalf("Deployment(%d) = %d nodes, want %d", n, len(got), want)
		}
		seen := map[noc.NodeID]bool{}
		for _, id := range got {
			if seen[id] || !m.Contains(id) {
				t.Fatalf("Deployment(%d) invalid node set", n)
			}
			seen[id] = true
		}
	}
}

// TestGeneratedPacketWakesSleepingNetwork deploys a generator on a real
// mesh under activity-driven scheduling: once the idle network has gone
// fully to sleep, a stopped GetX must still trigger an early Inv whose
// injection wakes the big router's NI and every router on the path, and
// the mesh must return to sleep after draining.
func TestGeneratedPacketWakesSleepingNetwork(t *testing.T) {
	eng := sim.NewEngine(1)
	n, err := noc.New(eng, noc.Config{Mesh: noc.Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TTL = 10_000 // keep the barrier alive across the idle gap
	g := New(eng, 2, coherence.HomeMap{Nodes: 16, BlockBytes: 128}, cfg)
	n.Router(2).SetInterceptor(g)

	gotInv := false
	n.NI(1).SetSink(noc.SinkFunc(func(now sim.Cycle, p *noc.Packet) {
		m, ok := p.Payload.(*coherence.Message)
		if ok && m.Type == coherence.MsgInv && m.EarlyInv {
			gotInv = true
		}
	}))

	// With no traffic every router and NI sleeps within a few cycles.
	for i := 0; i < 5; i++ {
		eng.Step()
	}
	if eng.ActiveTickers() != 0 {
		t.Fatalf("%d tickers still awake on an idle mesh", eng.ActiveTickers())
	}

	// Two lock GetX requests for the same line, both routed 0/1 → 3
	// through the big router at node 2. The first opens a barrier; the
	// second is stopped there and generates the early Inv back to its
	// issuer, node 1.
	eng.Schedule(20, func() {
		p, _ := lockGetX(0, 0x1000)
		n.NI(0).Inject(p)
	})
	eng.Schedule(80, func() {
		p, _ := lockGetX(1, 0x1000)
		n.NI(1).Inject(p)
	})
	if _, err := eng.Run(1000, func() bool { return gotInv }); err != nil {
		t.Fatalf("early Inv never delivered: %v", err)
	}
	if g.Stats.GetXStopped != 1 || g.Stats.EarlyInvsSent != 1 {
		t.Fatalf("generator stats wrong: %+v", g.Stats)
	}

	// Drain the converted FwdGetX and verify the mesh sleeps again.
	if _, err := eng.Run(1000, func() bool { return n.InFlight() == 0 }); err != nil {
		t.Fatalf("network failed to drain: %v", err)
	}
	for i := 0; i < 5; i++ {
		eng.Step()
	}
	if eng.ActiveTickers() != 0 {
		t.Fatalf("%d tickers still awake after drain", eng.ActiveTickers())
	}
}
