// Package fault provides deterministic, seeded fault injection for the
// mesh NoC: per-flit link faults (drops and CRC-detected corruptions),
// transient per-cycle router port stalls, and configured permanent port
// stalls for wedge/recovery testing.
//
// Every decision is a pure function of (seed, event identity) computed by a
// keyed splitmix64-style hash — there is no sequential RNG stream — so the
// outcome of any individual decision does not depend on the order in which
// decisions are asked for. Runs with the same (Config.Seed, simulation
// seed) are therefore bit-identical regardless of engine scheduling mode or
// how many worker goroutines execute sibling simulations, and a simulation
// that replays the same cycles replays the same faults.
//
// The injector is owned by exactly one simulation; only its Stats are
// mutated. Decisions being stateless, the only shared writes are the
// counter increments, which are atomic so the engine's sharded tick pass
// may consult the injector from several shard goroutines concurrently
// (order-independent sums, hence still deterministic).
package fault

import (
	"fmt"
	"math"
	"sync/atomic"

	"inpg/internal/sim"
)

// Kind classifies one link-fault decision.
type Kind int

// Link fault outcomes.
const (
	// None: the flit traverses the link intact.
	None Kind = iota
	// Dropped: the flit is lost on the link (no flit reaches the receiver;
	// the sender's link layer times out and retransmits).
	Dropped
	// Corrupted: the flit arrives but fails the receiver's CRC check and is
	// discarded (the link layer nacks and the sender retransmits). Effects
	// are identical to a drop; the two are distinguished for statistics.
	Corrupted
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// PortStall pins one router output port permanently faulty: from cycle From
// on, every flit sent through (Node, Port) fails its CRC, so the sender's
// bounded retransmission exhausts and the wormhole channel wedges — the
// deliberate-fault scenario the liveness watchdog must diagnose.
type PortStall struct {
	Node int
	Port int
	From uint64
}

// Config describes the fault model. The zero value injects nothing.
type Config struct {
	// Seed keys every fault decision. Independent of the simulation seed:
	// the same workload can be rerun under different fault patterns and
	// vice versa.
	Seed int64

	// DropRate and CorruptRate are per-flit-traversal probabilities of the
	// flit being lost on an inter-router link, respectively arriving
	// CRC-broken. Both trigger link-level retransmission.
	DropRate    float64
	CorruptRate float64

	// StallRate is the per-cycle probability that a router output port
	// transiently stalls (no switch grant crosses it); each stall event
	// holds the port for StallCycles cycles.
	StallRate float64
	// StallCycles is the duration of one transient stall; 0 selects 4.
	StallCycles int

	// MaxRetries bounds link-level retransmission attempts per flit; once
	// exhausted the link is declared failed and the channel wedges (the
	// watchdog reports it). 0 selects 8.
	MaxRetries int
	// RetryTimeout is the base nack/timeout delay before the first
	// retransmission; successive attempts back off exponentially
	// (timeout << attempt, capped at 64×). 0 selects 16 cycles.
	RetryTimeout int

	// PermanentStalls lists output ports that fail every transmission from
	// their From cycle on.
	PermanentStalls []PortStall
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.CorruptRate > 0 || c.StallRate > 0 || len(c.PermanentStalls) > 0
}

// AtRate returns a Config exercising all three transient fault classes at
// one combined intensity: flit drops and corruptions each at rate/2 per
// link traversal and transient port stalls at rate/4 per port-cycle. It is
// the mapping behind the CLIs' -faultrate flag.
func AtRate(rate float64, seed int64) Config {
	if rate <= 0 {
		return Config{Seed: seed}
	}
	return Config{
		Seed:        seed,
		DropRate:    rate / 2,
		CorruptRate: rate / 2,
		StallRate:   rate / 4,
	}
}

// Stats counts the injector's decisions over one simulation.
type Stats struct {
	FlitsDropped   uint64 // link-fault decisions of kind Dropped
	FlitsCorrupted uint64 // link-fault decisions of kind Corrupted
	PortStallHits  uint64 // switch grants blocked by a transient stall
	PermanentHits  uint64 // transmissions killed by a configured permanent stall
}

// Injector makes fault decisions for one simulation.
type Injector struct {
	cfg      Config
	seed     uint64
	dropT    uint64 // hash threshold for drops
	corruptT uint64 // threshold for drop+corrupt (cumulative)
	stallT   uint64

	Stats Stats
}

// New builds an injector; it returns nil for a disabled configuration so
// callers can gate the fault path on a single pointer test.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.StallCycles <= 0 {
		cfg.StallCycles = 4
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 16
	}
	in := &Injector{cfg: cfg, seed: mix(uint64(cfg.Seed) ^ 0x6a09e667f3bcc909)}
	in.dropT = threshold(cfg.DropRate)
	in.corruptT = threshold(cfg.DropRate + cfg.CorruptRate)
	in.stallT = threshold(cfg.StallRate)
	return in
}

// Config returns the normalized configuration.
func (in *Injector) Config() Config { return in.cfg }

// MaxRetries returns the retransmission bound.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// Backoff returns the retransmission delay after the attempt-th failed
// transmission (attempt ≥ 1): RetryTimeout << (attempt-1), capped at 64×.
func (in *Injector) Backoff(attempt int) sim.Cycle {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	if shift < 0 {
		shift = 0
	}
	return sim.Cycle(in.cfg.RetryTimeout) << uint(shift)
}

// threshold converts a probability to a 64-bit hash threshold.
func threshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return math.MaxUint64
	}
	return uint64(rate * math.MaxUint64)
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll hashes an event identity into a uniform 64-bit value. Each decision
// category uses a distinct kind constant so drop, corrupt and stall streams
// are independent.
func (in *Injector) roll(kind, a, b, c uint64) uint64 {
	h := in.seed
	h = mix(h ^ kind)
	h = mix(h ^ a)
	h = mix(h ^ b)
	h = mix(h ^ c)
	return h
}

// fault-decision categories for roll.
const (
	rollLink  = 1
	rollStall = 2
)

// LinkFault decides the fate of one flit transmission attempt across the
// inter-router link leaving (node, port) at cycle now. pktID and flitIdx
// identify the flit so sibling flits on the same cycle fault independently;
// retransmission attempts of the same flit occur at later cycles and are
// re-rolled, which is what lets transient faults clear.
func (in *Injector) LinkFault(now sim.Cycle, node, port int, pktID uint64, flitIdx int) Kind {
	for _, s := range in.cfg.PermanentStalls {
		if s.Node == node && s.Port == port && sim.Cycle(s.From) <= now {
			atomic.AddUint64(&in.Stats.PermanentHits, 1)
			return Dropped
		}
	}
	if in.corruptT == 0 {
		return None
	}
	h := in.roll(rollLink, uint64(now), uint64(node)<<8|uint64(port), pktID<<8|uint64(flitIdx))
	switch {
	case h < in.dropT:
		atomic.AddUint64(&in.Stats.FlitsDropped, 1)
		return Dropped
	case h < in.corruptT:
		atomic.AddUint64(&in.Stats.FlitsCorrupted, 1)
		return Corrupted
	}
	return None
}

// PortStalled reports whether output port (node, port) is transiently
// stalled at cycle now: a stall event begins with probability StallRate on
// any cycle and holds the port for StallCycles cycles, so the check scans
// the preceding window for a stall onset. Stateless, hence order- and
// scheduling-independent.
func (in *Injector) PortStalled(now sim.Cycle, node, port int) bool {
	if in.stallT == 0 {
		return false
	}
	for i := 0; i < in.cfg.StallCycles && uint64(i) <= uint64(now); i++ {
		if in.roll(rollStall, uint64(now)-uint64(i), uint64(node)<<8|uint64(port), 0) < in.stallT {
			atomic.AddUint64(&in.Stats.PortStallHits, 1)
			return true
		}
	}
	return false
}
