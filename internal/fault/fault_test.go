package fault

import (
	"math"
	"testing"

	"inpg/internal/sim"
)

func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	if New(Config{}) != nil {
		t.Fatal("zero config must build no injector")
	}
	if New(Config{Seed: 7}) != nil {
		t.Fatal("seed alone must not enable injection")
	}
	if New(AtRate(0, 3)) != nil {
		t.Fatal("AtRate(0) must stay disabled")
	}
	if New(Config{DropRate: 0.1}) == nil {
		t.Fatal("nonzero drop rate must enable injection")
	}
	if New(Config{PermanentStalls: []PortStall{{Node: 1, Port: 2}}}) == nil {
		t.Fatal("permanent stalls must enable injection")
	}
}

// Decisions are pure functions of (seed, event identity): the same query
// answers identically however often and in whatever order it is asked, and
// two injectors with the same seed agree everywhere.
func TestDecisionsAreOrderIndependent(t *testing.T) {
	cfg := Config{Seed: 99, DropRate: 0.3, CorruptRate: 0.2, StallRate: 0.1}
	a, b := New(cfg), New(cfg)
	type q struct {
		now        sim.Cycle
		node, port int
		pktID      uint64
		flit       int
	}
	var queries []q
	for i := 0; i < 500; i++ {
		queries = append(queries, q{sim.Cycle(i * 3), i % 16, i % 5, uint64(i * 7), i % 8})
	}
	// a answers in order; b answers in reverse.
	fwd := make([]Kind, len(queries))
	for i, s := range queries {
		fwd[i] = a.LinkFault(s.now, s.node, s.port, s.pktID, s.flit)
	}
	for i := len(queries) - 1; i >= 0; i-- {
		s := queries[i]
		if got := b.LinkFault(s.now, s.node, s.port, s.pktID, s.flit); got != fwd[i] {
			t.Fatalf("query %d: %v in reverse order, %v forward", i, got, fwd[i])
		}
	}
	// Re-asking a — decisions must be stable.
	for i, s := range queries {
		if got := a.LinkFault(s.now, s.node, s.port, s.pktID, s.flit); got != fwd[i] {
			t.Fatalf("query %d: unstable decision", i)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := New(Config{Seed: 1, DropRate: 0.5})
	b := New(Config{Seed: 2, DropRate: 0.5})
	diff := 0
	for i := 0; i < 1000; i++ {
		if a.LinkFault(sim.Cycle(i), 0, 1, uint64(i), 0) != b.LinkFault(sim.Cycle(i), 0, 1, uint64(i), 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds never disagreed over 1000 decisions")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := New(Config{Seed: 5, DropRate: 0.25, CorruptRate: 0.25})
	const n = 20000
	var drop, corrupt int
	for i := 0; i < n; i++ {
		switch in.LinkFault(sim.Cycle(i), i%16, i%5, uint64(i), 0) {
		case Dropped:
			drop++
		case Corrupted:
			corrupt++
		}
	}
	for name, got := range map[string]int{"drop": drop, "corrupt": corrupt} {
		frac := float64(got) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("%s rate %.3f, want ≈0.25", name, frac)
		}
	}
	if in.Stats.FlitsDropped != uint64(drop) || in.Stats.FlitsCorrupted != uint64(corrupt) {
		t.Fatalf("stats %+v disagree with observed %d/%d", in.Stats, drop, corrupt)
	}
}

func TestPermanentStallKillsEveryAttempt(t *testing.T) {
	in := New(Config{Seed: 1, PermanentStalls: []PortStall{{Node: 3, Port: 2, From: 100}}})
	if got := in.LinkFault(99, 3, 2, 1, 0); got != None {
		t.Fatalf("stall active before From: %v", got)
	}
	for c := sim.Cycle(100); c < 200; c++ {
		if got := in.LinkFault(c, 3, 2, uint64(c), 0); got != Dropped {
			t.Fatalf("cycle %d: %v, want every attempt dropped", c, got)
		}
	}
	if got := in.LinkFault(150, 3, 1, 1, 0); got != None {
		t.Fatalf("other port affected: %v", got)
	}
}

func TestTransientStallHoldsWindow(t *testing.T) {
	in := New(Config{Seed: 11, StallRate: 0.05, StallCycles: 4})
	// Find a stall onset, then verify it holds for the window.
	onset := sim.Cycle(0)
	for c := sim.Cycle(1); c < 10000; c++ {
		if in.roll(rollStall, uint64(c), 1<<8|2, 0) < in.stallT {
			onset = c
			break
		}
	}
	if onset == 0 {
		t.Fatal("no stall onset found at 5% rate in 10k cycles")
	}
	for i := sim.Cycle(0); i < 4; i++ {
		if !in.PortStalled(onset+i, 1, 2) {
			t.Fatalf("port not stalled %d cycles after onset", i)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	in := New(Config{Seed: 1, DropRate: 0.1, RetryTimeout: 16})
	want := []sim.Cycle{16, 32, 64, 128, 256, 512, 1024, 1024, 1024}
	for i, w := range want {
		if got := in.Backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestAtRateSplitsBudget(t *testing.T) {
	c := AtRate(0.01, 42)
	if c.DropRate != 0.005 || c.CorruptRate != 0.005 || c.StallRate != 0.0025 {
		t.Fatalf("AtRate split = %+v", c)
	}
	if c.Seed != 42 || !c.Enabled() {
		t.Fatal("AtRate lost seed or enablement")
	}
}
