package report

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inpg"
	"inpg/internal/experiments"
)

func sampleSuite() *experiments.SuiteResult {
	return &experiments.SuiteResult{Rows: []experiments.SuiteRow{
		{Program: "freq", Group: 3,
			Runtime: [4]uint64{1000, 900, 800, 750},
			CSTime:  [4]uint64{400, 350, 200, 150}},
		{Program: "x264", Group: 1,
			Runtime: [4]uint64{500, 500, 500, 500},
			CSTime:  [4]uint64{50, 50, 50, 50}},
	}}
}

func TestWriteSuiteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSuiteCSV(&buf, sampleSuite()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(recs))
	}
	head := strings.Join(recs[0], ",")
	for _, want := range []string{"runtime_Original", "cstime_iNPG", "cs_expedite_iNPG", "roi_pct_iNPG+OCOR"} {
		if !strings.Contains(head, want) {
			t.Fatalf("header missing %q: %s", want, head)
		}
	}
	// freq: CS expedition for iNPG = 400/200 = 2.0; ROI = 800/1000 = 80%.
	row := recs[1]
	if row[0] != "freq" || row[11] != "2.0000" {
		t.Fatalf("freq row wrong: %v", row)
	}
	if row[14] != "80.00" {
		t.Fatalf("freq ROI = %s, want 80.00", row[14])
	}
}

func TestWriteRTTCSV(t *testing.T) {
	var buf bytes.Buffer
	c := experiments.Fig10Case{
		Mechanism: inpg.INPG,
		HistBins:  [][2]uint64{{0, 12}, {5, 30}},
	}
	if err := WriteRTTCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bin_low_cycles,count") || !strings.Contains(out, "5,30") {
		t.Fatalf("rtt csv wrong:\n%s", out)
	}
}

func TestSummarizeAndJSON(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.Mechanism = inpg.INPG
	cfg.Lock = inpg.LockTAS
	res := &inpg.Results{Runtime: 1234, COH: 500, CSCompleted: 7, RTTMean: 12.5, EarlyInvs: 9}
	sum := Summarize(cfg, res)
	if sum.Mechanism != "iNPG" || sum.Lock != "TAS" || sum.Runtime != 1234 || sum.EarlyInvs != 9 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sum); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mechanism": "iNPG"`, `"cs_completed": 7`, `"rtt_mean_cycles": 12.5`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("json missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSaveAll(t *testing.T) {
	dir := t.TempDir()
	fig10 := &experiments.Fig10Result{Cases: []experiments.Fig10Case{
		{Mechanism: inpg.Original, HistBins: [][2]uint64{{0, 1}}},
		{Mechanism: inpg.INPG, HistBins: [][2]uint64{{0, 2}}},
	}}
	if err := SaveAll(dir, sampleSuite(), fig10); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"suite.csv", "rtt_Original.csv", "rtt_iNPG.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing export %s: %v", f, err)
		}
	}
}
