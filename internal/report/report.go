// Package report exports experiment results as CSV and JSON so the
// regenerated figures can be plotted or diffed outside the simulator —
// the artifact-evaluation workflow a reproduction repository needs.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"inpg"
	"inpg/internal/experiments"
)

// WriteSuiteCSV writes the Figures 11/12 sweep as one CSV row per program:
// runtime and CS time per mechanism plus the derived ratios.
func WriteSuiteCSV(w io.Writer, s *experiments.SuiteResult) error {
	cw := csv.NewWriter(w)
	head := []string{"program", "group"}
	for _, m := range inpg.Mechanisms {
		head = append(head, "runtime_"+m.String(), "cstime_"+m.String())
	}
	head = append(head, "cs_expedite_OCOR", "cs_expedite_iNPG", "cs_expedite_iNPG+OCOR",
		"roi_pct_OCOR", "roi_pct_iNPG", "roi_pct_iNPG+OCOR")
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, r := range s.Rows {
		rec := []string{r.Program, fmt.Sprint(r.Group)}
		for i := range inpg.Mechanisms {
			rec = append(rec, fmt.Sprint(r.Runtime[i]), fmt.Sprint(r.CSTime[i]))
		}
		for i := 1; i <= 3; i++ {
			rec = append(rec, fmt.Sprintf("%.4f", r.CSExpedition(i)))
		}
		for i := 1; i <= 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", r.ROIPercent(i)))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRTTCSV writes a Figure 10 case's histogram bins as CSV.
func WriteRTTCSV(w io.Writer, c experiments.Fig10Case) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bin_low_cycles", "count"}); err != nil {
		return err
	}
	for _, b := range c.HistBins {
		if err := cw.Write([]string{fmt.Sprint(b[0]), fmt.Sprint(b[1])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunSummary is the JSON shape of one simulation's results.
type RunSummary struct {
	Mechanism   string  `json:"mechanism"`
	Lock        string  `json:"lock"`
	Runtime     uint64  `json:"runtime_cycles"`
	Parallel    uint64  `json:"parallel_cycles"`
	COH         uint64  `json:"coh_cycles"`
	Sleep       uint64  `json:"sleep_cycles"`
	CSE         uint64  `json:"cse_cycles"`
	CSCompleted int     `json:"cs_completed"`
	LCOPercent  float64 `json:"lco_percent"`
	RTTMean     float64 `json:"rtt_mean_cycles"`
	RTTMax      uint64  `json:"rtt_max_cycles"`
	EarlyInvs   uint64  `json:"early_invalidations"`
	Stopped     uint64  `json:"stopped_requests"`
	NoCEnergyNJ float64 `json:"noc_energy_nj"`
}

// Summarize converts Results for export.
func Summarize(cfg inpg.Config, r *inpg.Results) RunSummary {
	return RunSummary{
		Mechanism:   cfg.Mechanism.String(),
		Lock:        cfg.Lock.String(),
		Runtime:     r.Runtime,
		Parallel:    r.Parallel,
		COH:         r.COH,
		Sleep:       r.Sleep,
		CSE:         r.CSE,
		CSCompleted: r.CSCompleted,
		LCOPercent:  r.LCOPercent,
		RTTMean:     r.RTTMean,
		RTTMax:      r.RTTMax,
		EarlyInvs:   r.EarlyInvs,
		Stopped:     r.Stopped,
		NoCEnergyNJ: r.Energy.TotalPJ / 1e3,
	}
}

// WriteJSON writes any value as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// SaveAll writes the suite CSV and Figure 10 histograms into dir.
func SaveAll(dir string, suite *experiments.SuiteResult, fig10 *experiments.Fig10Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if suite != nil {
		f, err := os.Create(filepath.Join(dir, "suite.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := WriteSuiteCSV(f, suite); err != nil {
			return err
		}
	}
	if fig10 != nil {
		for _, c := range fig10.Cases {
			f, err := os.Create(filepath.Join(dir, "rtt_"+c.Mechanism.String()+".csv"))
			if err != nil {
				return err
			}
			if err := WriteRTTCSV(f, c); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
	}
	return nil
}
