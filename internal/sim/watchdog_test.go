package sim

import (
	"errors"
	"testing"
)

// A run that keeps noting progress never trips the watchdog and finishes on
// its condition.
func TestWatchdogQuietWhileProgressing(t *testing.T) {
	e := NewEngine(1)
	e.SetWatchdog(50)
	n := 0
	var pump func()
	pump = func() {
		n++
		e.NoteProgress()
		if n < 20 {
			e.Schedule(30, pump) // gaps well inside the window
		}
	}
	e.Schedule(0, pump)
	if _, err := e.Run(100_000, func() bool { return n == 20 }); err != nil {
		t.Fatalf("progressing run tripped: %v", err)
	}
}

// A run whose progress stops trips at exactly lastProgress+window, not at
// the cycle budget.
func TestWatchdogTripsAtWindowBoundary(t *testing.T) {
	for _, busy := range []bool{false, true} {
		e := NewEngine(1)
		if busy {
			// A permanently awake ticker forces cycle-by-cycle stepping;
			// without it the idle fast-forward path is exercised instead.
			e.Register(TickFunc(func(Cycle) {}))
		}
		e.SetWatchdog(100)
		e.Schedule(40, func() { e.NoteProgress() })
		_, err := e.Run(1_000_000, nil)
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("busy=%v: err = %v, want StallError", busy, err)
		}
		if stall.LastProgress != 41 || stall.Now != 141 || stall.Window != 100 {
			t.Fatalf("busy=%v: stall = %+v, want trip at 41+100", busy, stall)
		}
	}
}

// Budget exhaustion is a typed error carrying the bound.
func TestBudgetErrorTyped(t *testing.T) {
	e := NewEngine(1)
	_, err := e.Run(64, nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if be.Budget != 64 || be.Now != 64 {
		t.Fatalf("budget error = %+v", be)
	}
}

// Fail from inside a callback surfaces through Run as the given error, and
// the engine is reusable afterwards.
func TestFailSurfacesThroughRun(t *testing.T) {
	e := NewEngine(1)
	boom := errors.New("protocol violation")
	e.Schedule(10, func() { e.Fail(boom) })
	_, err := e.Run(1000, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A later Run starts clean.
	done := false
	e.Schedule(5, func() { done = true })
	if _, err := e.Run(1000, func() bool { return done }); err != nil {
		t.Fatalf("engine poisoned after Fail: %v", err)
	}
}

// The first Fail wins; Fail(nil) is a programmer error.
func TestFailFirstWinsAndNilPanics(t *testing.T) {
	e := NewEngine(1)
	first := errors.New("first")
	e.Schedule(1, func() {
		e.Fail(first)
		e.Fail(errors.New("second"))
	})
	_, err := e.Run(100, nil)
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want first failure", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fail(nil) must panic")
		}
	}()
	e.Fail(nil)
}

// SetWatchdog(0) disarms: the run dies on the budget instead.
func TestWatchdogDisarm(t *testing.T) {
	e := NewEngine(1)
	e.SetWatchdog(10)
	e.SetWatchdog(0)
	_, err := e.Run(200, nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError with watchdog disarmed", err)
	}
}
