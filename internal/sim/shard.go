// Sharded tick-pass execution: conservative-lookahead parallelism inside
// one simulation.
//
// The engine stays single-threaded for everything that carries global
// ordering — the clock, the event heap, the RNG, Schedule sequence
// numbers. Only the per-cycle tick pass fans out: tickers are partitioned
// into shards, each shard ticks its components (in ascending handle
// order) on its own goroutine, and a barrier at the end of the pass
// replays every cross-shard side effect in the exact order the
// single-threaded engine would have produced.
//
// The lookahead bound making this safe is the mesh's minimum cross-shard
// link latency: one cycle. Every cross-shard handoff in this codebase is
// stamped at now+1 (router link traversal, credit return), so work done
// by shard A during cycle T can only become visible to shard B at T+1 —
// after the barrier. With a one-cycle lookahead the conservative window
// degenerates into cycle-lockstep: tick all shards for cycle T in
// parallel, barrier, advance to T+1. Correctness then rests on three
// contracts, enforced by the users of this API (internal/noc):
//
//  1. During a pass, a shard mutates only its own components' state.
//     Anything aimed at another shard — packet arrivals, credits, wakes —
//     is staged and applied at the barrier (SetPassFlush).
//  2. Side effects on shared single-threaded state (trace buffers,
//     histograms, the event heap, global ID counters) are deferred with
//     PassDefer/PassSchedule. The barrier replays them merged across
//     shards by the handle of the ticker that raised them, FIFO within a
//     ticker — exactly the order inline execution produces, because the
//     sequential pass visits tickers in ascending handle order.
//  3. Pass-time Wake/Sleep calls touch only the caller's own shard
//     (cross-shard wakes ride on staged work instead), so the per-shard
//     awake counters need no synchronization.
//
// Everything outside the pass — events, Run bookkeeping, the barrier
// itself — runs on the caller's goroutine, untouched.
package sim

import (
	"fmt"
	"time"
)

// taggedFn is a deferred side effect tagged with the handle of the ticker
// that raised it, for cross-shard order-restoring merge at the barrier.
type taggedFn struct {
	tag Handle
	fn  func()
}

// taggedSched is a deferred Schedule call. Replaying these in merged tag
// order assigns the same sequence numbers the inline calls would have.
type taggedSched struct {
	tag   Handle
	delay Cycle
	fn    func()
}

// passState is one shard's scratch state for the current pass. Padded so
// concurrently-appending shards do not false-share cache lines.
type passState struct {
	cur    Handle // handle of the ticker currently being ticked
	defers []taggedFn
	scheds []taggedSched
	_      [64]byte
}

// shardAwake is a padded per-shard awake-ticker count.
type shardAwake struct {
	n int
	_ [56]byte
}

// ShardStats exposes host-side sharding telemetry. Dispatches and
// InlinePasses are deterministic for a fixed configuration and machine
// core count; BarrierWaitNs is wall-clock and inherently nondeterministic
// (it never feeds back into simulation state).
type ShardStats struct {
	Dispatches    uint64 // passes fanned out to worker goroutines
	InlinePasses  uint64 // passes run inline (too little work to dispatch)
	BarrierWaitNs uint64 // main-goroutine wall time blocked on workers
}

// shardRT is the engine's sharding runtime, nil on unsharded engines.
type shardRT struct {
	n       int
	shardOf []int32 // ticker handle -> shard
	lists   [][]Handle
	awake   []shardAwake
	pass    []passState
	inPass  bool
	flush   func()

	// minDispatch gates worker fan-out: passes with fewer awake tickers
	// run inline, since dispatch overhead would dwarf the work.
	minDispatch int

	started  bool
	start    []chan struct{} // one per worker (shards 1..n-1)
	done     chan struct{}
	quit     chan struct{}
	nWorkers int
	exited   chan struct{} // worker exit acknowledgements for join

	stats    ShardStats
	mergeIdx []int // reused scratch for the barrier K-way merge
}

// shardDispatchFactor sets minDispatch = factor * shards: a pass is worth
// dispatching only when each worker would average this many awake tickers.
const shardDispatchFactor = 8

// SetShards partitions the engine's tickers into n shards for parallel
// tick-pass execution. shardOf maps every registered handle to its shard
// in [0, n). n < 2 clears sharding (the engine runs exactly as before).
// Must be called after all Register calls and outside Run.
func (e *Engine) SetShards(n int, shardOf func(Handle) int) error {
	if e.sh != nil && e.sh.inPass {
		panic("sim: SetShards during tick pass")
	}
	if n < 2 {
		e.sh = nil
		return nil
	}
	sh := &shardRT{
		n:           n,
		shardOf:     make([]int32, len(e.tickers)),
		lists:       make([][]Handle, n),
		awake:       make([]shardAwake, n),
		pass:        make([]passState, n),
		minDispatch: shardDispatchFactor * n,
		done:        make(chan struct{}, n-1),
		mergeIdx:    make([]int, n),
	}
	for h := range e.tickers {
		s := shardOf(Handle(h))
		if s < 0 || s >= n {
			return fmt.Errorf("sim: shardOf(%d) = %d, want [0,%d)", h, s, n)
		}
		sh.shardOf[h] = int32(s)
		sh.lists[s] = append(sh.lists[s], Handle(h))
		if e.awake[h] {
			sh.awake[s].n++
		}
	}
	sh.start = make([]chan struct{}, n-1)
	for i := range sh.start {
		sh.start[i] = make(chan struct{}, 1)
	}
	e.sh = sh
	return nil
}

// ShardCount reports the number of shards (1 when unsharded).
func (e *Engine) ShardCount() int {
	if e.sh == nil {
		return 1
	}
	return e.sh.n
}

// TickerCount reports the number of registered tickers.
func (e *Engine) TickerCount() int { return len(e.tickers) }

// SetPassFlush installs the barrier's first phase: fn runs after all
// shards finish ticking a cycle and before deferred side effects replay.
// The network uses it to apply staged cross-shard arrivals and credits.
func (e *Engine) SetPassFlush(fn func()) {
	if e.sh == nil {
		panic("sim: SetPassFlush without SetShards")
	}
	e.sh.flush = fn
}

// InPass reports whether a sharded tick pass is executing. Components use
// it to route cross-shard side effects through PassDefer/PassSchedule.
// Always false on an unsharded engine, so single-shard runs take zero new
// branches with observable effects.
func (e *Engine) InPass() bool { return e.sh != nil && e.sh.inPass }

// PassDefer defers fn to the barrier of the current pass. shard must be
// the calling ticker's own shard. Replay order across shards is by the
// raising ticker's handle (FIFO within one ticker) — the inline order.
func (e *Engine) PassDefer(shard int32, fn func()) {
	ps := &e.sh.pass[shard]
	ps.defers = append(ps.defers, taggedFn{tag: ps.cur, fn: fn})
}

// PassSchedule is Schedule for pass-time callers: the actual Schedule call
// replays at the barrier in merged tag order, so event sequence numbers
// come out identical to inline execution.
func (e *Engine) PassSchedule(shard int32, delay Cycle, fn func()) {
	ps := &e.sh.pass[shard]
	ps.scheds = append(ps.scheds, taggedSched{tag: ps.cur, delay: delay, fn: fn})
}

// ShardStats returns a copy of the sharding telemetry (zero when
// unsharded).
func (e *Engine) ShardStats() ShardStats {
	if e.sh == nil {
		return ShardStats{}
	}
	return e.sh.stats
}

// awakeTotal is the engine-wide awake-ticker count regardless of sharding.
func (e *Engine) awakeTotal() int {
	if e.sh == nil {
		return e.nAwake
	}
	total := 0
	for s := range e.sh.awake {
		total += e.sh.awake[s].n
	}
	return total
}

// runShardPass ticks shard s's awake components in ascending handle order
// for the current cycle. Runs on a worker goroutine (or inline on the
// main goroutine for shard 0 and undispatched passes).
func (e *Engine) runShardPass(s int) {
	ps := &e.sh.pass[s]
	now := e.now
	for _, h := range e.sh.lists[s] {
		if e.awake[h] {
			ps.cur = h
			e.tickers[h].Tick(now)
		}
	}
}

// shardedPass executes one cycle's tick pass across all shards, then runs
// the barrier. Dispatch to workers only pays off when enough tickers are
// awake; otherwise the shards run inline, in order, on this goroutine —
// the two paths are semantically identical because staging decisions are
// static per component, not per execution mode.
func (e *Engine) shardedPass() {
	sh := e.sh
	sh.inPass = true
	if sh.started && e.awakeTotal() >= sh.minDispatch {
		sh.stats.Dispatches++
		for i := range sh.start {
			sh.start[i] <- struct{}{}
		}
		e.runShardPass(0)
		t0 := time.Now()
		for i := 0; i < sh.n-1; i++ {
			<-sh.done
		}
		sh.stats.BarrierWaitNs += uint64(time.Since(t0))
	} else {
		sh.stats.InlinePasses++
		for s := 0; s < sh.n; s++ {
			e.runShardPass(s)
		}
	}
	sh.inPass = false
	e.applyBarrier()
}

// applyBarrier replays the pass's cross-shard effects in inline order:
// staged network traffic first (the flush hook), then deferred side
// effects, then deferred Schedule calls, each K-way merged by raising
// ticker handle. Shards partition the handle space, so tags never collide
// across shards and each shard's lists are already tag-sorted.
func (e *Engine) applyBarrier() {
	sh := e.sh
	if sh.flush != nil {
		sh.flush()
	}
	for s := range sh.mergeIdx {
		sh.mergeIdx[s] = 0
	}
	for {
		best := -1
		var bestTag Handle
		for s := 0; s < sh.n; s++ {
			i := sh.mergeIdx[s]
			if i < len(sh.pass[s].defers) {
				if t := sh.pass[s].defers[i].tag; best == -1 || t < bestTag {
					best, bestTag = s, t
				}
			}
		}
		if best == -1 {
			break
		}
		fn := sh.pass[best].defers[sh.mergeIdx[best]].fn
		sh.mergeIdx[best]++
		fn()
	}
	for s := range sh.mergeIdx {
		sh.mergeIdx[s] = 0
	}
	for {
		best := -1
		var bestTag Handle
		for s := 0; s < sh.n; s++ {
			i := sh.mergeIdx[s]
			if i < len(sh.pass[s].scheds) {
				if t := sh.pass[s].scheds[i].tag; best == -1 || t < bestTag {
					best, bestTag = s, t
				}
			}
		}
		if best == -1 {
			break
		}
		sc := sh.pass[best].scheds[sh.mergeIdx[best]]
		sh.mergeIdx[best]++
		e.Schedule(sc.delay, sc.fn)
	}
	for s := range sh.pass {
		ps := &sh.pass[s]
		for i := range ps.defers {
			ps.defers[i] = taggedFn{}
		}
		ps.defers = ps.defers[:0]
		for i := range ps.scheds {
			ps.scheds[i] = taggedSched{}
		}
		ps.scheds = ps.scheds[:0]
	}
}

// startShardWorkers launches the worker goroutines (shards 1..n-1; shard
// 0 always runs on the caller's goroutine). Returns whether it started
// them, so Run can pair the call with stopShardWorkers.
func (e *Engine) startShardWorkers() bool {
	sh := e.sh
	if sh == nil || sh.started || sh.n < 2 {
		return false
	}
	sh.quit = make(chan struct{})
	sh.exited = make(chan struct{}, sh.n-1)
	sh.nWorkers = sh.n - 1
	for i := 1; i < sh.n; i++ {
		s := i
		go func() {
			defer func() { sh.exited <- struct{}{} }()
			for {
				select {
				case <-sh.quit:
					return
				case <-sh.start[s-1]:
					e.runShardPass(s)
					sh.done <- struct{}{}
				}
			}
		}()
	}
	sh.started = true
	return true
}

// stopShardWorkers shuts the workers down and joins them. Called with no
// pass in flight (every dispatched pass fully drains at its barrier), so
// each worker is parked in its select and exits promptly — shard teardown
// leaks no goroutines even when Run aborts, stalls out, or times out.
func (e *Engine) stopShardWorkers() {
	sh := e.sh
	if sh == nil || !sh.started {
		return
	}
	close(sh.quit)
	for i := 0; i < sh.nWorkers; i++ {
		<-sh.exited
	}
	sh.started = false
}
