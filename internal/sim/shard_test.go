package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// shardEngine builds an engine with n tickers striped across k shards
// (handle h -> shard h*k/n, contiguous blocks like the mesh row stripes).
func shardEngine(t *testing.T, n, k int, mk func(h int) Ticker) *Engine {
	t.Helper()
	e := NewEngine(1)
	for h := 0; h < n; h++ {
		e.Register(mk(h))
	}
	if err := e.SetShards(k, func(h Handle) int { return int(h) * k / n }); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSetShardsValidation(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(Cycle) {}))
	if err := e.SetShards(2, func(Handle) int { return 7 }); err == nil {
		t.Fatal("out-of-range shardOf must be rejected")
	}
	if err := e.SetShards(2, func(Handle) int { return -1 }); err == nil {
		t.Fatal("negative shardOf must be rejected")
	}
	// n < 2 clears sharding.
	if err := e.SetShards(1, nil); err != nil || e.ShardCount() != 1 {
		t.Fatalf("SetShards(1) = %v, ShardCount %d; want nil, 1", err, e.ShardCount())
	}
}

func TestRegisterAfterSetShardsPanics(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(Cycle) {}))
	e.Register(TickFunc(func(Cycle) {}))
	if err := e.SetShards(2, func(h Handle) int { return int(h) }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Register after SetShards should panic")
		}
	}()
	e.Register(TickFunc(func(Cycle) {}))
}

func TestScheduleDuringShardedPassPanics(t *testing.T) {
	var e *Engine
	e = shardEngine(t, 2, 2, func(h int) Ticker {
		return TickFunc(func(Cycle) { e.Schedule(0, func() {}) })
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule during a sharded tick pass should panic")
		}
	}()
	e.Step()
}

// TestPassDeferMergesInHandleOrder interleaves shards across the handle
// space (contiguous stripes) and checks the barrier replays deferred
// effects in ascending handle order — the inline sequential order —
// regardless of which shard raised them.
func TestPassDeferMergesInHandleOrder(t *testing.T) {
	const n, k = 12, 3
	var order []int
	var e *Engine
	e = shardEngine(t, n, k, func(h int) Ticker {
		shard := int32(h * k / n)
		return TickFunc(func(Cycle) {
			e.PassDefer(shard, func() { order = append(order, h) })
			// A second defer from the same ticker must stay FIFO after the
			// first at the barrier.
			e.PassDefer(shard, func() { order = append(order, h+100) })
		})
	})
	e.Step()
	if len(order) != 2*n {
		t.Fatalf("replayed %d defers, want %d", len(order), 2*n)
	}
	for h := 0; h < n; h++ {
		if order[2*h] != h || order[2*h+1] != h+100 {
			t.Fatalf("order = %v: position %d should replay ticker %d's two defers in FIFO order", order, 2*h, h)
		}
	}
}

// TestPassScheduleAssignsInlineSequenceNumbers verifies deferred Schedule
// calls replay in merged handle order, so same-cycle events fire exactly
// as if each ticker had called Schedule inline during the sequential pass.
func TestPassScheduleAssignsInlineSequenceNumbers(t *testing.T) {
	const n, k = 8, 2
	var fired []int
	var e *Engine
	e = shardEngine(t, n, k, func(h int) Ticker {
		shard := int32(h * k / n)
		return TickFunc(func(now Cycle) {
			if now == 1 {
				e.PassSchedule(shard, 0, func() { fired = append(fired, h) })
			}
		})
	})
	e.Step() // cycle 1: every ticker schedules
	e.Step() // cycle 2: events fire before ticks, in seq order
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i, h := range fired {
		if h != i {
			t.Fatalf("fired = %v, want ascending handles", fired)
		}
	}
}

func TestShardedWakeSleepBookkeeping(t *testing.T) {
	const n, k = 8, 4
	e := NewEngine(1)
	handles := make([]Handle, n)
	for i := range handles {
		handles[i] = e.Register(TickFunc(func(Cycle) {}))
	}
	e.Sleep(handles[5]) // pre-SetShards sleep must carry over
	if err := e.SetShards(k, func(h Handle) int { return int(h) * k / n }); err != nil {
		t.Fatal(err)
	}
	if got := e.ActiveTickers(); got != n-1 {
		t.Fatalf("ActiveTickers = %d after pre-shard sleep, want %d", got, n-1)
	}
	e.Sleep(handles[0])
	e.Sleep(handles[7])
	if got := e.ActiveTickers(); got != n-3 {
		t.Fatalf("ActiveTickers = %d, want %d", got, n-3)
	}
	e.Wake(handles[5])
	e.Wake(handles[5]) // idempotent
	if got := e.ActiveTickers(); got != n-2 {
		t.Fatalf("ActiveTickers = %d after wake, want %d", got, n-2)
	}
	if e.Awake(handles[0]) || !e.Awake(handles[5]) {
		t.Fatal("per-handle awake state diverged from shard counters")
	}
}

func TestShardedStepSkipsSleepingTickers(t *testing.T) {
	const n, k = 6, 2
	ticks := make([]int, n)
	var e *Engine
	e = shardEngine(t, n, k, func(h int) Ticker {
		return TickFunc(func(Cycle) { ticks[h]++ })
	})
	e.Sleep(Handle(1))
	e.Sleep(Handle(4))
	e.Step()
	e.Step()
	for h, got := range ticks {
		want := 2
		if h == 1 || h == 4 {
			want = 0
		}
		if got != want {
			t.Fatalf("ticker %d ticked %d times, want %d", h, got, want)
		}
	}
}

// TestShardedRunDispatchesWorkers drives a sharded engine through Run with
// enough awake tickers to clear the dispatch threshold, so the worker
// goroutines and the barrier K-way merge execute for real (the race
// detector patrols this test). The deferred log must still come out in
// perfect sequential order every cycle.
func TestShardedRunDispatchesWorkers(t *testing.T) {
	const n, k, cycles = 64, 4, 50
	var order []int
	var e *Engine
	e = shardEngine(t, n, k, func(h int) Ticker {
		shard := int32(h * k / n)
		return TickFunc(func(Cycle) {
			e.PassDefer(shard, func() { order = append(order, h) })
		})
	})
	done := false
	e.Schedule(cycles-1, func() { done = true })
	if _, err := e.Run(10*cycles, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	if e.ShardStats().Dispatches == 0 {
		t.Fatal("no pass was dispatched to workers; the threshold gate is wrong")
	}
	if len(order) != n*cycles {
		t.Fatalf("logged %d defers, want %d", len(order), n*cycles)
	}
	for i, h := range order {
		if h != i%n {
			t.Fatalf("defer %d replayed ticker %d, want %d: parallel pass broke sequential order", i, h, i%n)
		}
	}
}

// waitForGoroutines polls until the goroutine count drops back to base
// (worker exit acknowledgements land just before the goroutines unwind).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d live, want at most %d — shard workers leaked", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShardWorkersJoinAfterRun(t *testing.T) {
	base := runtime.NumGoroutine()
	var e *Engine
	e = shardEngine(t, 64, 4, func(h int) Ticker { return TickFunc(func(Cycle) {}) })
	done := false
	e.Schedule(20, func() { done = true })
	if _, err := e.Run(1000, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base)
	// A second Run must restart and re-join the workers cleanly.
	done = false
	e.Schedule(20, func() { done = true })
	if _, err := e.Run(1000, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base)
}

func TestShardWorkersJoinAfterAbort(t *testing.T) {
	base := runtime.NumGoroutine()
	var e *Engine
	e = shardEngine(t, 64, 4, func(h int) Ticker { return TickFunc(func(Cycle) {}) })
	cause := errors.New("deliberate mid-run abort")
	e.SetAbortCheck(10, func() error {
		if e.Now() >= 30 {
			return cause
		}
		return nil
	})
	_, err := e.Run(100_000, nil)
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	waitForGoroutines(t, base)
}

func TestShardWorkersJoinAfterBudgetExhaustion(t *testing.T) {
	base := runtime.NumGoroutine()
	var e *Engine
	e = shardEngine(t, 64, 4, func(h int) Ticker { return TickFunc(func(Cycle) {}) })
	if _, err := e.Run(50, nil); err == nil {
		t.Fatal("Run should report budget exhaustion")
	}
	waitForGoroutines(t, base)
}
