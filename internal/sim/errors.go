package sim

import "fmt"

// BudgetError reports that Run exhausted its cycle budget before its
// condition held — the coarse deadlock bound that predates the liveness
// watchdog, kept as the outermost safety net.
type BudgetError struct {
	// Budget is the maxCycles Run was given; Now the cycle it gave up at.
	Budget Cycle
	Now    Cycle
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget %d exhausted at cycle %d", e.Budget, e.Now)
}

// StallError reports a liveness watchdog trip: no component noted progress
// (NoteProgress) for a full watchdog window. The simulation is wedged —
// callers capture diagnostics while the stuck state is still inspectable.
type StallError struct {
	// Now is the cycle the watchdog tripped; LastProgress the last cycle
	// any progress was noted; Window the configured watchdog window.
	Now          Cycle
	LastProgress Cycle
	Window       Cycle
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("sim: liveness watchdog: no progress since cycle %d (window %d, now %d)",
		e.LastProgress, e.Window, e.Now)
}

// AbortError reports that Run was stopped by the cooperative-cancellation
// hook (SetAbortCheck): a wall-clock deadline elapsed or an outside
// controller canceled the run. The simulation itself is healthy — it was
// told to stop — so callers can still capture diagnostics from the intact
// state. Unwrap exposes the abort cause (e.g. context.DeadlineExceeded).
type AbortError struct {
	// Now is the cycle the abort check fired on; Err its reported cause.
	Now Cycle
	Err error
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("sim: run aborted at cycle %d: %v", e.Now, e.Err)
}

// Unwrap exposes the abort cause for errors.Is/As.
func (e *AbortError) Unwrap() error { return e.Err }
