// Package sim provides the deterministic cycle-driven simulation engine
// that underlies the whole iNPG reproduction: a global clock, tickable
// components, a lightweight future-event scheduler and a seeded random
// number source.
//
// The engine is strictly single-threaded. Every component is ticked once
// per cycle in registration order, which makes runs bit-reproducible for a
// given seed and configuration. Components that need to act at a future
// cycle (timeouts, DRAM completions, thread wake-ups) use Schedule instead
// of busy-ticking.
package sim

import (
	"fmt"
	"math/rand"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Ticker is a component that acts once per simulated cycle.
//
// Tick is called with the current cycle. Components must not assume any
// particular ordering relative to other components beyond what the system
// wiring guarantees (messages sent during cycle N are visible at their
// destination no earlier than cycle N+1).
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback.
type event struct {
	at  Cycle
	seq uint64 // tie-break so same-cycle events fire in schedule order
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Engine drives the simulation: it advances the clock, ticks registered
// components and fires scheduled events.
type Engine struct {
	now     Cycle
	tickers []Ticker
	events  eventHeap
	seq     uint64
	rng     *rand.Rand

	// Stopped is set by Stop; Run loops exit at the end of the current
	// cycle once it is set.
	stopped bool
}

// eventHeapPrealloc sizes the event heap's initial backing array. A full
// Table 1 platform keeps a few hundred events outstanding (thread wakeups,
// DRAM completions, NI deliveries); starting near that bound avoids the
// doubling reallocations of a cold heap on every run.
const eventHeapPrealloc = 1024

// NewEngine returns an engine with its clock at cycle 0 and a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		events: make(eventHeap, 0, eventHeapPrealloc),
	}
}

// Now returns the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Register adds a component to the per-cycle tick list. Components are
// ticked in registration order.
func (e *Engine) Register(t Ticker) {
	if t == nil {
		panic("sim: Register(nil)")
	}
	e.tickers = append(e.tickers, t)
}

// Schedule arranges for fn to run delay cycles from now, before the tickers
// of that cycle. A delay of 0 fires at the start of the next cycle: the
// current cycle's tick pass is never re-entered.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("sim: Schedule(nil)")
	}
	e.seq++
	e.events.push(event{at: e.now + 1 + delay, seq: e.seq, fn: fn})
}

// ScheduleAt arranges for fn to run at absolute cycle at. Scheduling at or
// before the current cycle fires on the next cycle.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at <= e.now {
		e.Schedule(0, fn)
		return
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// Stop requests that the current Run loop exit at the end of this cycle.
func (e *Engine) Stop() { e.stopped = true }

// Step advances the simulation by exactly one cycle: the clock is
// incremented, due events fire (in schedule order), then every ticker runs.
func (e *Engine) Step() {
	e.now++
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := e.events.pop()
		ev.fn()
	}
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// Run steps the engine until cond reports true (checked after each cycle),
// Stop is called, or maxCycles elapse. It returns the number of cycles
// executed and an error if the cycle budget was exhausted first.
func (e *Engine) Run(maxCycles Cycle, cond func() bool) (Cycle, error) {
	start := e.now
	e.stopped = false
	for e.now-start < maxCycles {
		e.Step()
		if e.stopped || (cond != nil && cond()) {
			return e.now - start, nil
		}
	}
	return e.now - start, fmt.Errorf("sim: cycle budget %d exhausted at cycle %d", maxCycles, e.now)
}

// PendingEvents reports the number of scheduled events not yet fired.
// It is intended for tests and diagnostics.
func (e *Engine) PendingEvents() int { return len(e.events) }
