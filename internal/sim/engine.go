// Package sim provides the deterministic cycle-driven simulation engine
// that underlies the whole iNPG reproduction: a global clock, tickable
// components, a lightweight future-event scheduler and a seeded random
// number source.
//
// The engine is strictly single-threaded. Every component in the active
// set is ticked once per cycle in registration order, which makes runs
// bit-reproducible for a given seed and configuration. Components that
// need to act at a future cycle (timeouts, DRAM completions, thread
// wake-ups) use Schedule instead of busy-ticking.
//
// # Activity-driven scheduling
//
// Ticking every component every cycle wastes most of the work on a
// quiescent chip (threads in backoff, everyone waiting on a DRAM event).
// Register therefore returns a Handle through which a component can take
// itself out of the per-cycle tick set with Sleep and be put back with
// Wake. The contract is:
//
//   - A component may call Sleep only on itself, and only when ticking it
//     would be a no-op for every future cycle until one of its wake
//     conditions occurs (no buffered work, no pending input).
//   - Whoever hands a sleeping component new work — a neighbouring
//     component, an event callback, an injection path — must call Wake.
//     Wake and Sleep are idempotent.
//   - Components that never call Sleep are permanently active: Register
//     leaves every component awake, so the protocol is strictly opt-in
//     and plain busy tickers keep their historical behaviour.
//
// Awake components still tick in registration-index order, and a
// component woken during a tick pass by a lower-index component is ticked
// in the same pass — exactly the cycle it would have ticked had it never
// slept. Runs under activity-driven scheduling are therefore
// bit-identical to always-tick runs as long as components honour the
// sleep contract; SetAlwaysTick(true) disables the protocol entirely to
// check precisely that (see the differential tests at the repository
// root).
//
// When the active set is empty, Run fast-forwards the clock directly to
// the next scheduled event instead of stepping through empty cycles.
// Run's cond must therefore be a function of simulation state (which only
// changes on event or tick activity), not of wall-clock-like inspection
// of Now() at cycles where nothing runs; every caller in this repository
// satisfies that, keeping fast-forwarded runs cycle-exact.
package sim

import (
	"math/rand"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Ticker is a component that acts once per simulated cycle while awake.
//
// Tick is called with the current cycle. Components must not assume any
// particular ordering relative to other components beyond what the system
// wiring guarantees (messages sent during cycle N are visible at their
// destination no earlier than cycle N+1).
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// Handle identifies a registered component to Wake and Sleep. Handles are
// dense indices issued by Register in registration order.
type Handle int

// event is a scheduled callback.
type event struct {
	at  Cycle
	seq uint64 // tie-break so same-cycle events fire in schedule order
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Engine drives the simulation: it advances the clock, ticks awake
// components and fires scheduled events.
type Engine struct {
	now     Cycle
	tickers []Ticker
	awake   []bool
	nAwake  int
	events  eventHeap
	seq     uint64
	rng     *rand.Rand

	// alwaysTick disables activity-driven scheduling: Sleep becomes a
	// no-op and Run never fast-forwards. The reference mode differential
	// tests compare against.
	alwaysTick bool

	// Stopped is set by Stop; Run loops exit at the end of the current
	// cycle once it is set.
	stopped bool

	// failErr is set by Fail: a component-reported fatal error (e.g. a
	// coherence protocol violation) that the current Run returns instead
	// of panicking mid-callback.
	failErr error

	// watchWindow, when nonzero, arms the liveness watchdog: Run returns a
	// *StallError once watchWindow cycles elapse with no NoteProgress.
	// lastProgressAt is the cycle progress was last noted.
	watchWindow    Cycle
	lastProgressAt Cycle

	// abortCheck, when non-nil, is the cooperative-cancellation hook: Run
	// invokes it every abortEvery cycles and returns an *AbortError around
	// whatever error it reports. nextAbortAt is the next cycle it is due.
	abortCheck  func() error
	abortEvery  Cycle
	nextAbortAt Cycle

	// sh, when non-nil, is the sharded tick-pass runtime (see shard.go).
	// Unsharded engines never allocate it, so the single-threaded paths
	// stay byte-identical in behaviour.
	sh *shardRT
}

// eventHeapPrealloc sizes the event heap's initial backing array. A full
// Table 1 platform keeps a few hundred events outstanding (thread wakeups,
// DRAM completions, NI deliveries); starting near that bound avoids the
// doubling reallocations of a cold heap on every run.
const eventHeapPrealloc = 1024

// NewEngine returns an engine with its clock at cycle 0 and a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		events: make(eventHeap, 0, eventHeapPrealloc),
	}
}

// Now returns the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetAlwaysTick, when on, makes every registered component tick every
// cycle regardless of Sleep calls and disables Run's idle fast-forward —
// the pre-activity-scheduling engine behaviour. It exists to validate
// that activity-driven runs are bit-identical to always-tick runs.
func (e *Engine) SetAlwaysTick(on bool) {
	e.alwaysTick = on
	if on {
		for i := range e.awake {
			e.awake[i] = true
		}
		e.nAwake = len(e.tickers)
		if e.sh != nil {
			for s := range e.sh.awake {
				e.sh.awake[s].n = len(e.sh.lists[s])
			}
		}
	}
}

// Register adds a component to the tick list and returns its handle.
// Components are ticked in registration order and start awake.
func (e *Engine) Register(t Ticker) Handle {
	if t == nil {
		panic("sim: Register(nil)")
	}
	if e.sh != nil {
		panic("sim: Register after SetShards")
	}
	e.tickers = append(e.tickers, t)
	e.awake = append(e.awake, true)
	e.nAwake++
	return Handle(len(e.tickers) - 1)
}

// Wake puts the component back into the per-cycle tick set. Idempotent.
// Anyone handing work to a possibly-sleeping component must call it.
// During a sharded pass a caller may wake only components of its own
// shard; cross-shard wakes ride on staged work applied at the barrier.
func (e *Engine) Wake(h Handle) {
	if !e.awake[h] {
		e.awake[h] = true
		if e.sh != nil {
			e.sh.awake[e.sh.shardOf[h]].n++
		} else {
			e.nAwake++
		}
	}
}

// Sleep drops the component from the per-cycle tick set until the next
// Wake. Idempotent; a no-op in always-tick mode. A component may only
// sleep itself, and only when ticking it would remain a no-op until a
// wake condition occurs.
func (e *Engine) Sleep(h Handle) {
	if e.alwaysTick {
		return
	}
	if e.awake[h] {
		e.awake[h] = false
		if e.sh != nil {
			e.sh.awake[e.sh.shardOf[h]].n--
		} else {
			e.nAwake--
		}
	}
}

// Awake reports whether the component is in the tick set (tests,
// diagnostics).
func (e *Engine) Awake(h Handle) bool { return e.awake[h] }

// ActiveTickers reports the current size of the tick set (tests,
// diagnostics).
func (e *Engine) ActiveTickers() int { return e.awakeTotal() }

// Schedule arranges for fn to run delay cycles from now, before the tickers
// of that cycle. A delay of 0 fires at the start of the next cycle: the
// current cycle's tick pass is never re-entered.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("sim: Schedule(nil)")
	}
	if e.sh != nil && e.sh.inPass {
		panic("sim: Schedule during sharded tick pass; use PassSchedule")
	}
	e.seq++
	e.events.push(event{at: e.now + 1 + delay, seq: e.seq, fn: fn})
}

// ScheduleAt arranges for fn to run at absolute cycle at. Scheduling at or
// before the current cycle fires on the next cycle.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at <= e.now {
		e.Schedule(0, fn)
		return
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// Stop requests that the current Run loop exit at the end of this cycle.
func (e *Engine) Stop() { e.stopped = true }

// Fail records a fatal component error and stops the run: the current Run
// call returns err instead of a panic unwinding through the tick pass.
// Protocol controllers use it for "impossible" message sequences so a
// corrupted simulation dies with a typed, diagnosable error. The first
// failure wins; later ones are dropped.
func (e *Engine) Fail(err error) {
	if err == nil {
		panic("sim: Fail(nil)")
	}
	if e.failErr == nil {
		e.failErr = err
	}
	e.stopped = true
}

// NoteProgress marks the current cycle as having made forward progress
// toward simulation completion — a packet delivery, a coherence transaction
// boundary, a thread phase change. The liveness watchdog (SetWatchdog)
// trips when a full window passes without one.
func (e *Engine) NoteProgress() { e.lastProgressAt = e.now }

// SetWatchdog arms (window > 0) or disarms (window == 0) the liveness
// watchdog and restarts its window at the current cycle. While armed, Run
// returns a *StallError as soon as window cycles elapse with no
// NoteProgress — long before any outer cycle budget — so callers can dump
// the wedged state.
func (e *Engine) SetWatchdog(window Cycle) {
	e.watchWindow = window
	e.lastProgressAt = e.now
}

// WatchdogWindow returns the armed watchdog window (0 when disarmed).
func (e *Engine) WatchdogWindow() Cycle { return e.watchWindow }

// SetAbortCheck installs (fn != nil) or removes (fn == nil) the
// cooperative-cancellation hook: while a Run loop is active, fn is invoked
// at most once every `every` cycles, and the first non-nil error it returns
// makes Run stop immediately with an *AbortError wrapping it. The check
// runs outside every component tick — simulation state is never consulted
// and never perturbed — and its coarse cadence keeps the hot-path cost to
// one predictable comparison per cycle. Wall-clock deadlines and
// context.Context cancellation ride on this hook (see inpg.System.AbortOn).
func (e *Engine) SetAbortCheck(every Cycle, fn func() error) {
	if every == 0 {
		every = 1
	}
	e.abortCheck = fn
	e.abortEvery = every
	e.nextAbortAt = e.now + every
}

// Step advances the simulation by exactly one cycle: the clock is
// incremented, due events fire (in schedule order), then every awake
// ticker runs in registration order. A component woken mid-pass by a
// lower-index component still ticks this cycle; one woken by a
// higher-index component ticks from the next cycle, matching when its
// first non-no-op tick would have landed under always-tick.
func (e *Engine) Step() {
	e.now++
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := e.events.pop()
		ev.fn()
	}
	if e.sh != nil {
		e.shardedPass()
		return
	}
	if e.nAwake == len(e.tickers) {
		for _, t := range e.tickers {
			t.Tick(e.now)
		}
		return
	}
	for i, t := range e.tickers {
		if e.awake[i] {
			t.Tick(e.now)
		}
	}
}

// Run steps the engine until cond reports true (checked after each cycle),
// Stop is called, or maxCycles elapse. It returns the number of cycles
// executed and an error if the cycle budget was exhausted first.
//
// While the active tick set is empty the clock fast-forwards directly to
// the next scheduled event (or the budget boundary), skipping cycles in
// which nothing could run; cond is evaluated at every cycle where any
// event or tick fires, so state-driven conditions see the exact same
// cycles they would under always-tick stepping.
func (e *Engine) Run(maxCycles Cycle, cond func() bool) (Cycle, error) {
	start := e.now
	end := start + maxCycles
	e.stopped = false
	e.failErr = nil
	if e.startShardWorkers() {
		defer e.stopShardWorkers()
	}
	for e.now < end {
		if e.awakeTotal() == 0 && !e.alwaysTick {
			next := end
			if len(e.events) > 0 && e.events[0].at < next {
				next = e.events[0].at
			}
			// The watchdog boundary caps the jump too: a fully quiescent
			// but wedged simulation must still trip at exactly
			// lastProgress+window instead of sailing to the budget bound.
			if e.watchWindow > 0 {
				if wd := e.lastProgressAt + e.watchWindow; wd < next {
					next = wd
				}
			}
			// Land one cycle short so the ordinary Step below performs
			// the event-firing cycle itself.
			if next > e.now+1 {
				e.now = next - 1
			}
		}
		e.Step()
		if e.failErr != nil {
			err := e.failErr
			e.failErr = nil
			return e.now - start, err
		}
		if e.stopped || (cond != nil && cond()) {
			return e.now - start, nil
		}
		if e.watchWindow > 0 && e.now-e.lastProgressAt >= e.watchWindow {
			return e.now - start, &StallError{Now: e.now, LastProgress: e.lastProgressAt, Window: e.watchWindow}
		}
		// Cooperative cancellation: coarse-grained so a healthy run pays one
		// comparison per cycle, yet an idle fast-forward (which jumps many
		// cycles in one iteration) still lands on a due check immediately.
		if e.abortCheck != nil && e.now >= e.nextAbortAt {
			e.nextAbortAt = e.now + e.abortEvery
			if aerr := e.abortCheck(); aerr != nil {
				return e.now - start, &AbortError{Now: e.now, Err: aerr}
			}
		}
	}
	return e.now - start, &BudgetError{Budget: maxCycles, Now: e.now}
}

// PendingEvents reports the number of scheduled events not yet fired.
// It is intended for tests and diagnostics.
func (e *Engine) PendingEvents() int { return len(e.events) }
