package sim

import "testing"

// BenchmarkScheduleStep measures the event-heap round trip: schedule one
// future callback, advance one cycle, fire it. With the preallocated heap
// backing, steady-state push/pop must not grow the slice.
func BenchmarkScheduleStep(b *testing.B) {
	e := NewEngine(1)
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, func() { sink++ })
		e.Step()
	}
	if sink != b.N {
		b.Fatalf("fired %d of %d events", sink, b.N)
	}
}

// BenchmarkScheduleBurst pushes a burst of same-cycle events and drains
// it, the shape the NoC produces under contention (many deliveries landing
// on one cycle). Exercises heap growth up to the burst size and reuse of
// the backing array across iterations.
func BenchmarkScheduleBurst(b *testing.B) {
	e := NewEngine(1)
	sink := 0
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(0, fn)
		}
		e.Step()
	}
	if sink != 64*b.N {
		b.Fatalf("fired %d of %d events", sink, 64*b.N)
	}
}

// BenchmarkIdleFastForward measures Run crossing a long idle gap: many
// registered-but-sleeping tickers and one far-future event. The cost must
// be independent of the gap length (one jump, not a million empty steps)
// and must not scale with the number of sleeping components.
func BenchmarkIdleFastForward(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 128; i++ {
		h := e.Register(TickFunc(func(Cycle) {}))
		e.Sleep(h)
	}
	fired := false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fired = false
		e.Schedule(1_000_000, func() { fired = true })
		if _, err := e.Run(2_000_000, func() bool { return fired }); err != nil {
			b.Fatal(err)
		}
	}
}
