package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

// errAbortTest is the sentinel cause the abort-check tests report.
var errAbortTest = errors.New("abort test cause")

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestStepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 5; i++ {
		e.Step()
		if e.Now() != Cycle(i) {
			t.Fatalf("after %d steps Now() = %d", i, e.Now())
		}
	}
}

func TestTickersRunEveryCycleInOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Register(TickFunc(func(Cycle) { order = append(order, 1) }))
	e.Register(TickFunc(func(Cycle) { order = append(order, 2) }))
	e.Step()
	e.Step()
	want := []int{1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleFiresAtRequestedCycle(t *testing.T) {
	e := NewEngine(1)
	var fired Cycle
	e.Schedule(4, func() { fired = e.Now() })
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if fired != 5 {
		t.Fatalf("fired at %d, want 5 (delay 4 from cycle 0 fires at start of cycle 5)", fired)
	}
}

func TestScheduleZeroFiresNextCycle(t *testing.T) {
	e := NewEngine(1)
	var fired Cycle
	e.Register(TickFunc(func(now Cycle) {
		if now == 3 {
			e.Schedule(0, func() { fired = e.Now() })
		}
	}))
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if fired != 4 {
		t.Fatalf("fired at %d, want 4", fired)
	}
}

func TestScheduleAtPastFiresNextCycle(t *testing.T) {
	e := NewEngine(1)
	e.Step()
	e.Step()
	var fired Cycle
	e.ScheduleAt(1, func() { fired = e.Now() })
	e.Step()
	if fired != 3 {
		t.Fatalf("fired at %d, want 3", fired)
	}
}

func TestSameCycleEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		e.Schedule(2, func() { order = append(order, i) })
	}
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if len(order) != 16 {
		t.Fatalf("fired %d events, want 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestEventsBeforeTickers(t *testing.T) {
	e := NewEngine(1)
	var seen []string
	e.Register(TickFunc(func(now Cycle) {
		if now == 2 {
			seen = append(seen, "tick")
		}
	}))
	e.Schedule(1, func() { seen = append(seen, "event") }) // fires cycle 2
	e.Step()
	e.Step()
	if len(seen) != 2 || seen[0] != "event" || seen[1] != "tick" {
		t.Fatalf("seen = %v, want [event tick]", seen)
	}
}

func TestRunStopsOnCondition(t *testing.T) {
	// cond must be driven by simulation state (the engine only evaluates
	// it at cycles where events or ticks run), so the flag flips via a
	// scheduled event rather than by inspecting Now().
	e := NewEngine(1)
	done := false
	e.Schedule(6, func() { done = true }) // fires at cycle 7
	n, err := e.Run(100, func() bool { return done })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 7 || e.Now() != 7 {
		t.Fatalf("ran %d cycles to %d, want 7", n, e.Now())
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.Run(10, func() bool { return false }); err == nil {
		t.Fatal("Run should report budget exhaustion")
	}
}

func TestStopEndsRun(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(now Cycle) {
		if now == 3 {
			e.Stop()
		}
	}))
	n, err := e.Run(100, nil)
	if err != nil || n != 3 {
		t.Fatalf("ran %d cycles, err=%v; want 3, nil", n, err)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed must give identical random streams")
		}
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) should panic")
		}
	}()
	NewEngine(1).Register(nil)
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) should panic")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

// countingTicker records the cycles it was ticked and can put itself to
// sleep after each tick.
type countingTicker struct {
	e         *Engine
	h         Handle
	ticks     []Cycle
	sleepEach bool
}

func (c *countingTicker) Tick(now Cycle) {
	c.ticks = append(c.ticks, now)
	if c.sleepEach {
		c.e.Sleep(c.h)
	}
}

func newCounting(e *Engine, sleepEach bool) *countingTicker {
	c := &countingTicker{e: e, sleepEach: sleepEach}
	c.h = e.Register(c)
	return c
}

func TestSleepDropsTickerUntilWake(t *testing.T) {
	e := NewEngine(1)
	c := newCounting(e, true)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if len(c.ticks) != 1 || c.ticks[0] != 1 {
		t.Fatalf("slept ticker ran at %v, want [1]", c.ticks)
	}
	if e.Awake(c.h) || e.ActiveTickers() != 0 {
		t.Fatalf("component still counted awake after Sleep")
	}
	// Re-wake: the component must tick again from the next cycle, then
	// drop out again after its one tick.
	e.Wake(c.h)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if len(c.ticks) != 2 || c.ticks[1] != 6 {
		t.Fatalf("re-woken ticker ran at %v, want [1 6]", c.ticks)
	}
}

func TestWakeFromEventCallbackTicksSameCycle(t *testing.T) {
	// Events fire before tickers, so a wake issued from an event callback
	// must tick the component in that same cycle — exactly when its first
	// productive tick would have landed under always-tick.
	e := NewEngine(1)
	c := newCounting(e, true)
	e.Schedule(9, func() { e.Wake(c.h) }) // fires at cycle 10
	for i := 0; i < 12; i++ {
		e.Step()
	}
	if len(c.ticks) != 2 || c.ticks[0] != 1 || c.ticks[1] != 10 {
		t.Fatalf("ticks = %v, want [1 10]", c.ticks)
	}
}

func TestRunFastForwardsIdleGapsToNextEvent(t *testing.T) {
	e := NewEngine(1)
	c := newCounting(e, true)
	fired := false
	e.Schedule(999, func() { fired = true }) // fires at cycle 1000
	n, err := e.Run(5000, func() bool { return fired })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 1000 || e.Now() != 1000 {
		t.Fatalf("ran %d cycles to %d, want exactly 1000", n, e.Now())
	}
	if len(c.ticks) != 1 {
		t.Fatalf("idle ticker ran %d times during fast-forward, want 1", len(c.ticks))
	}
}

func TestScheduleDuringFastForward(t *testing.T) {
	// An event fired at a fast-forwarded cycle schedules a follow-up; the
	// follow-up must fire at its exact cycle, not be skipped by a stale
	// jump target.
	e := NewEngine(1)
	var fired []Cycle
	done := false
	e.Schedule(99, func() {
		fired = append(fired, e.Now())
		e.Schedule(49, func() {
			fired = append(fired, e.Now())
			done = true
		})
	})
	n, err := e.Run(10_000, func() bool { return done })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 150 || len(fired) != 2 || fired[0] != 100 || fired[1] != 150 {
		t.Fatalf("ran %d cycles, events at %v; want 150 cycles, events [100 150]", n, fired)
	}
}

func TestStopDuringFastForward(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(499, func() { e.Stop() }) // fires at cycle 500
	n, err := e.Run(10_000, nil)
	if err != nil || n != 500 {
		t.Fatalf("ran %d cycles, err=%v; want 500, nil", n, err)
	}
}

func TestFastForwardRespectsCycleBudget(t *testing.T) {
	// A fully idle engine (no events, empty tick set) must exhaust the
	// budget at exactly the same cycle as per-cycle stepping would.
	e := NewEngine(1)
	newCounting(e, true)
	n, err := e.Run(100, nil)
	if err == nil {
		t.Fatal("Run should report budget exhaustion")
	}
	if n != 100 || e.Now() != 100 {
		t.Fatalf("budget exhausted after %d cycles at %d, want 100", n, e.Now())
	}
	// An event beyond the budget boundary must not be reached.
	fired := false
	e.Schedule(500, func() { fired = true })
	n, err = e.Run(100, nil)
	if err == nil || n != 100 || fired {
		t.Fatalf("ran %d cycles (err=%v, fired=%v); want budget error at 100 with event unfired", n, err, fired)
	}
}

func TestAlwaysTickDisablesSleepAndFastForward(t *testing.T) {
	e := NewEngine(1)
	e.SetAlwaysTick(true)
	c := newCounting(e, true) // tries to sleep every tick
	fired := false
	e.Schedule(49, func() { fired = true }) // fires at cycle 50
	n, err := e.Run(1000, func() bool { return fired })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 50 {
		t.Fatalf("ran %d cycles, want 50", n)
	}
	if len(c.ticks) != 50 {
		t.Fatalf("always-tick component ran %d times, want every one of 50 cycles", len(c.ticks))
	}
}

func TestWakeFromLowerIndexTicksSameCycle(t *testing.T) {
	// Component A (registered first) wakes sleeping component B mid-pass:
	// B must tick in the same cycle, matching always-tick behaviour where
	// B's tick runs after A's every cycle.
	e := NewEngine(1)
	b := &countingTicker{e: e, sleepEach: true}
	var aTicks []Cycle
	e.Register(TickFunc(func(now Cycle) {
		aTicks = append(aTicks, now)
		if now == 3 {
			e.Wake(b.h)
		}
	}))
	b.h = e.Register(b)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if len(b.ticks) != 2 || b.ticks[0] != 1 || b.ticks[1] != 3 {
		t.Fatalf("b ticks = %v, want [1 3] (same-cycle wake from lower index)", b.ticks)
	}
}

// TestEventHeapOrdering property-checks that events always fire in
// nondecreasing (cycle, seq) order regardless of insertion order.
func TestEventHeapOrdering(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(1)
		var fired []Cycle
		for _, d := range delays {
			d := Cycle(d % 64)
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		for i := 0; i < 80; i++ {
			e.Step()
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.PendingEvents() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortCheckStopsRunWithAbortError(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(Cycle) {}))
	cause := errAbortTest
	calls := 0
	e.SetAbortCheck(100, func() error {
		calls++
		if e.Now() >= 250 {
			return cause
		}
		return nil
	})
	_, err := e.Run(10_000, nil)
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("AbortError does not unwrap to its cause: %v", err)
	}
	// Checks run every 100 cycles: the trip lands on the first check at or
	// after cycle 250, i.e. cycle 300.
	if abort.Now != 300 || e.Now() != 300 {
		t.Fatalf("aborted at cycle %d (engine at %d), want 300", abort.Now, e.Now())
	}
	if calls != 3 {
		t.Fatalf("abort check ran %d times over 300 cycles at every=100, want 3", calls)
	}
}

func TestAbortCheckCoarseCadence(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(Cycle) {}))
	calls := 0
	e.SetAbortCheck(1000, func() error { calls++; return nil })
	if _, err := e.Run(5000, func() bool { return e.Now() == 5000 }); err != nil {
		t.Fatal(err)
	}
	// Checks are due at 1000..5000, but Run's condition exits the loop at
	// cycle 5000 before that cycle's check: four invocations total.
	if calls != 4 {
		t.Fatalf("abort check ran %d times over 5000 cycles at every=1000, want 4", calls)
	}
}

func TestAbortCheckFiresAcrossFastForward(t *testing.T) {
	// A fully quiescent engine fast-forwards over the check boundary in one
	// jump; the abort check must still run when the clock lands past it.
	e := NewEngine(1)
	h := e.Register(TickFunc(func(Cycle) {}))
	e.Sleep(h)
	e.Schedule(9_999, func() {})
	aborted := false
	e.SetAbortCheck(500, func() error {
		aborted = true
		return errAbortTest
	})
	_, err := e.Run(100_000, nil)
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	if !aborted {
		t.Fatal("abort check never ran under fast-forward")
	}
	// The idle jump goes straight to the scheduled event's cycle; the check
	// fires there, not thousands of cycles later.
	if e.Now() > 10_000 {
		t.Fatalf("abort landed at cycle %d, want at most the event cycle 10000", e.Now())
	}
}

func TestAbortCheckRemovable(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(Cycle) {}))
	e.SetAbortCheck(10, func() error { return errAbortTest })
	e.SetAbortCheck(10, nil)
	if _, err := e.Run(100, func() bool { return e.Now() == 100 }); err != nil {
		t.Fatalf("removed abort check still fired: %v", err)
	}
}
