package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestStepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 5; i++ {
		e.Step()
		if e.Now() != Cycle(i) {
			t.Fatalf("after %d steps Now() = %d", i, e.Now())
		}
	}
}

func TestTickersRunEveryCycleInOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Register(TickFunc(func(Cycle) { order = append(order, 1) }))
	e.Register(TickFunc(func(Cycle) { order = append(order, 2) }))
	e.Step()
	e.Step()
	want := []int{1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleFiresAtRequestedCycle(t *testing.T) {
	e := NewEngine(1)
	var fired Cycle
	e.Schedule(4, func() { fired = e.Now() })
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if fired != 5 {
		t.Fatalf("fired at %d, want 5 (delay 4 from cycle 0 fires at start of cycle 5)", fired)
	}
}

func TestScheduleZeroFiresNextCycle(t *testing.T) {
	e := NewEngine(1)
	var fired Cycle
	e.Register(TickFunc(func(now Cycle) {
		if now == 3 {
			e.Schedule(0, func() { fired = e.Now() })
		}
	}))
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if fired != 4 {
		t.Fatalf("fired at %d, want 4", fired)
	}
}

func TestScheduleAtPastFiresNextCycle(t *testing.T) {
	e := NewEngine(1)
	e.Step()
	e.Step()
	var fired Cycle
	e.ScheduleAt(1, func() { fired = e.Now() })
	e.Step()
	if fired != 3 {
		t.Fatalf("fired at %d, want 3", fired)
	}
}

func TestSameCycleEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		e.Schedule(2, func() { order = append(order, i) })
	}
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if len(order) != 16 {
		t.Fatalf("fired %d events, want 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestEventsBeforeTickers(t *testing.T) {
	e := NewEngine(1)
	var seen []string
	e.Register(TickFunc(func(now Cycle) {
		if now == 2 {
			seen = append(seen, "tick")
		}
	}))
	e.Schedule(1, func() { seen = append(seen, "event") }) // fires cycle 2
	e.Step()
	e.Step()
	if len(seen) != 2 || seen[0] != "event" || seen[1] != "tick" {
		t.Fatalf("seen = %v, want [event tick]", seen)
	}
}

func TestRunStopsOnCondition(t *testing.T) {
	e := NewEngine(1)
	n, err := e.Run(100, func() bool { return e.Now() == 7 })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 7 || e.Now() != 7 {
		t.Fatalf("ran %d cycles to %d, want 7", n, e.Now())
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.Run(10, func() bool { return false }); err == nil {
		t.Fatal("Run should report budget exhaustion")
	}
}

func TestStopEndsRun(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickFunc(func(now Cycle) {
		if now == 3 {
			e.Stop()
		}
	}))
	n, err := e.Run(100, nil)
	if err != nil || n != 3 {
		t.Fatalf("ran %d cycles, err=%v; want 3, nil", n, err)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed must give identical random streams")
		}
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) should panic")
		}
	}()
	NewEngine(1).Register(nil)
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) should panic")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

// TestEventHeapOrdering property-checks that events always fire in
// nondecreasing (cycle, seq) order regardless of insertion order.
func TestEventHeapOrdering(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(1)
		var fired []Cycle
		for _, d := range delays {
			d := Cycle(d % 64)
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		for i := 0; i < 80; i++ {
			e.Step()
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.PendingEvents() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
