package cpu

import (
	"math/rand"
	"testing"

	"inpg/internal/coherence"
	"inpg/internal/sim"
)

// fakePort completes every operation after a fixed delay.
type fakePort struct {
	eng   *sim.Engine
	delay sim.Cycle
}

func (f *fakePort) Load(addr uint64, lock bool, p int, cb func(uint64)) {
	f.eng.Schedule(f.delay, func() { cb(0) })
}
func (f *fakePort) Store(addr, val uint64, lock bool, p int, cb func()) {
	f.eng.Schedule(f.delay, cb)
}
func (f *fakePort) StoreRelease(addr, val uint64, lock bool, p int, cb func()) {
	f.eng.Schedule(f.delay, cb)
}
func (f *fakePort) Atomic(addr uint64, op coherence.AtomicOp, a, b uint64, p int, cb func(uint64)) {
	f.eng.Schedule(f.delay, func() { cb(0) })
}

// fakeLock acquires and releases after fixed waits.
type fakeLock struct {
	eng     *sim.Engine
	acqWait sim.Cycle
	holds   int
}

func (l *fakeLock) Name() string { return "fake" }
func (l *fakeLock) Acquire(t *Thread, done func()) {
	l.eng.Schedule(l.acqWait, func() { l.holds++; done() })
}
func (l *fakeLock) Release(t *Thread, done func()) {
	l.eng.Schedule(1, done)
}

func constProg(cs int, csCyc, parCyc sim.Cycle) Program {
	return Program{
		CSCount:        cs,
		CSCycles:       func(*rand.Rand) sim.Cycle { return csCyc },
		ParallelCycles: func(*rand.Rand) sim.Cycle { return parCyc },
	}
}

func runThread(t *testing.T, prog Program, acq sim.Cycle) (*Thread, *fakeLock) {
	t.Helper()
	eng := sim.NewEngine(1)
	port := &fakePort{eng: eng, delay: 2}
	lk := &fakeLock{eng: eng, acqWait: acq}
	th := New(eng, 0, port, lk, prog, 7)
	th.Start()
	if _, err := eng.Run(1_000_000, th.Done); err != nil {
		t.Fatal(err)
	}
	return th, lk
}

func TestThreadCompletesProgram(t *testing.T) {
	th, lk := runThread(t, constProg(5, 50, 200), 10)
	if th.CSCompleted != 5 || lk.holds != 5 {
		t.Fatalf("completed %d CS (lock held %d), want 5", th.CSCompleted, lk.holds)
	}
	if !th.Done() || th.Phase() != PhaseDone {
		t.Fatal("thread not done")
	}
}

func TestPhaseAccounting(t *testing.T) {
	th, _ := runThread(t, constProg(4, 60, 300), 25)
	b := th.Breakdown
	// 4 iterations × 300 parallel.
	if b.Parallel != 4*300 {
		t.Fatalf("parallel = %d, want 1200", b.Parallel)
	}
	// COH = acquire waits: 4 × (25+1) (schedule delay semantics put the
	// acquire completion at start+wait+1).
	if b.COH < 4*25 || b.COH > 4*30 {
		t.Fatalf("COH = %d, want ≈104", b.COH)
	}
	// CSE = CS compute + release each iteration.
	if b.CSE < 4*60 || b.CSE > 4*65 {
		t.Fatalf("CSE = %d, want ≈246", b.CSE)
	}
	if b.Total() == 0 || b.Sleep != 0 {
		t.Fatalf("unexpected breakdown %+v", b)
	}
}

func TestSleepAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	port := &fakePort{eng: eng, delay: 1}
	// A lock that parks the thread in the sleep phase for 100 cycles.
	lk := &sleepyLock{eng: eng}
	th := New(eng, 3, port, lk, constProg(1, 10, 10), 1)
	th.Start()
	if _, err := eng.Run(10000, th.Done); err != nil {
		t.Fatal(err)
	}
	if th.SleepCount != 1 {
		t.Fatalf("sleeps = %d, want 1", th.SleepCount)
	}
	if th.Breakdown.Sleep < 95 || th.Breakdown.Sleep > 105 {
		t.Fatalf("sleep cycles = %d, want ≈100", th.Breakdown.Sleep)
	}
	if th.Breakdown.COHTotal() <= th.Breakdown.Sleep {
		t.Fatal("COHTotal must include sleep plus spin time")
	}
}

type sleepyLock struct{ eng *sim.Engine }

func (l *sleepyLock) Name() string { return "sleepy" }
func (l *sleepyLock) Acquire(t *Thread, done func()) {
	l.eng.Schedule(10, func() {
		t.BeginSleep()
		l.eng.Schedule(99, func() {
			t.EndSleep()
			done()
		})
	})
}
func (l *sleepyLock) Release(t *Thread, done func()) { l.eng.Schedule(1, done) }

func TestPhaseHookObservesTransitions(t *testing.T) {
	eng := sim.NewEngine(1)
	port := &fakePort{eng: eng, delay: 1}
	lk := &fakeLock{eng: eng, acqWait: 5}
	th := New(eng, 0, port, lk, constProg(2, 20, 50), 1)
	var seq []Phase
	th.PhaseHook = func(_ *Thread, _ sim.Cycle, _, to Phase) { seq = append(seq, to) }
	th.Start()
	if _, err := eng.Run(10000, th.Done); err != nil {
		t.Fatal(err)
	}
	// After the last release the thread briefly re-enters Parallel while
	// checking its quota, then finishes.
	want := []Phase{PhaseParallel, PhaseCOH, PhaseCSE, PhaseParallel, PhaseCOH, PhaseCSE, PhaseParallel, PhaseDone}
	if len(seq) != len(want) {
		t.Fatalf("transitions %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestLockPrioLevels(t *testing.T) {
	eng := sim.NewEngine(1)
	th := New(eng, 0, nil, nil, Program{}, 1)
	th.OCOR = true
	th.QSLRetries = 128
	prios := map[int]int{0: 1, 15: 1, 16: 2, 127: 8, 500: 8}
	for retries, want := range prios {
		th.ResetRetries()
		for i := 0; i < retries; i++ {
			th.CountRetry()
		}
		if got := th.LockPrio(); got != want {
			t.Fatalf("prio after %d retries = %d, want %d", retries, got, want)
		}
	}
	th.EndSleep() // woken: lowest priority
	if th.LockPrio() != 0 {
		t.Fatal("woken thread must have priority 0")
	}
}

func TestOnDoneCallback(t *testing.T) {
	eng := sim.NewEngine(1)
	port := &fakePort{eng: eng, delay: 1}
	lk := &fakeLock{eng: eng, acqWait: 1}
	th := New(eng, 0, port, lk, constProg(1, 5, 5), 1)
	fired := false
	th.SetOnDone(func(x *Thread) { fired = x == th })
	th.Start()
	if _, err := eng.Run(1000, th.Done); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("onDone not fired with the thread")
	}
}

func TestPhaseStrings(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseInit: "init", PhaseParallel: "parallel", PhaseCOH: "coh",
		PhaseSleep: "sleep", PhaseCSE: "cse", PhaseDone: "done",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
