// Package cpu models the cores of the target many-core: one thread per
// core executing the canonical multi-threaded program shape of the paper's
// Figure 1 — parallel compute, then serialized critical-section access
// through a lock, repeated — over asynchronous memory operations issued to
// the node's L1 controller.
//
// Threads account their time into the three phases the paper profiles
// (parallel, competition overhead COH, critical-section execution CSE; the
// queue spin-lock's sleep time is a sub-phase of COH), which the stats and
// experiment layers aggregate into Figures 2, 8, 9, 11 and 12.
package cpu

import (
	"math/rand"

	"inpg/internal/coherence"
	"inpg/internal/sim"
)

// MemPort is the core-facing interface of the L1 cache controller
// (implemented by coherence.L1). All operations complete asynchronously.
type MemPort interface {
	Load(addr uint64, lock bool, priority int, cb func(uint64))
	Store(addr uint64, val uint64, lock bool, priority int, cb func())
	// StoreRelease is a synchronization store: written through to the home
	// node, which recalls all cached copies (the paper's lock release).
	StoreRelease(addr uint64, val uint64, lock bool, priority int, cb func())
	Atomic(addr uint64, op coherence.AtomicOp, a, b uint64, priority int, cb func(old uint64))
}

// Lock is a critical-section lock primitive (implementations live in
// internal/lock). Acquire and Release complete asynchronously and may
// issue any number of memory operations through the thread's port.
type Lock interface {
	Acquire(t *Thread, done func())
	Release(t *Thread, done func())
	// Name returns the primitive's short name (TAS, TTL, ABQL, MCS, QSL).
	Name() string
}

// Barrier is a global synchronization point all threads join together
// (Figure 1's synchronization points; implemented by lock.Barrier).
type Barrier interface {
	Join(t *Thread, done func())
}

// Phase classifies what a thread is doing, for time accounting.
type Phase int

// Thread phases. Sleep is the queue spin-lock's blocked state and counts
// as competition overhead in paper-style breakdowns.
const (
	PhaseInit Phase = iota
	PhaseParallel
	PhaseCOH
	PhaseSleep
	PhaseCSE
	PhaseDone
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseParallel:
		return "parallel"
	case PhaseCOH:
		return "coh"
	case PhaseSleep:
		return "sleep"
	case PhaseCSE:
		return "cse"
	case PhaseDone:
		return "done"
	}
	return "?"
}

// PhaseBreakdown accumulates cycles per phase.
type PhaseBreakdown struct {
	Parallel, COH, Sleep, CSE uint64
}

// COHTotal returns competition overhead including sleep time.
func (b PhaseBreakdown) COHTotal() uint64 { return b.COH + b.Sleep }

// Total returns all accounted cycles.
func (b PhaseBreakdown) Total() uint64 { return b.Parallel + b.COH + b.Sleep + b.CSE }

// Program is the per-thread workload script: CSCount critical sections,
// each preceded by a parallel-compute span and containing CSCycles of
// work. The closures draw from the thread's deterministic RNG.
type Program struct {
	CSCount        int
	CSCycles       func(r *rand.Rand) sim.Cycle
	ParallelCycles func(r *rand.Rand) sim.Cycle
}

// Thread is one software thread pinned to one core.
type Thread struct {
	ID   int
	eng  *sim.Engine
	Port MemPort
	lock Lock
	prog Program
	rng  *rand.Rand

	// OCOR enables remaining-times-of-retry priority on lock requests.
	OCOR bool
	// QSLRetries is the spin budget before the queue spin-lock sleeps; it
	// also scales the OCOR priority mapping (16 retries per level).
	QSLRetries int
	// retriesUsed counts failed polls in the current acquire.
	retriesUsed int
	// woken marks a thread re-acquiring after a wakeup (lowest priority).
	woken bool

	phase      Phase
	phaseStart sim.Cycle
	Breakdown  PhaseBreakdown

	CSCompleted  int
	AcquireCount int
	SleepCount   int

	// Barrier, when set with BarrierEvery > 0, is joined after every
	// BarrierEvery completed critical sections — the Figure 1 program
	// shape with interleaved synchronization points. Barrier wait time
	// accounts as competition overhead.
	Barrier      Barrier
	BarrierEvery int
	BarrierJoins int

	// PhaseHook, when set, observes every phase transition (Figure 9
	// timelines).
	PhaseHook func(t *Thread, now sim.Cycle, from, to Phase)

	onDone func(*Thread)
	done   bool
}

// New builds a thread on core id driving port, synchronizing on lock.
func New(eng *sim.Engine, id int, port MemPort, lock Lock, prog Program, seed int64) *Thread {
	return &Thread{
		ID:         id,
		eng:        eng,
		Port:       port,
		lock:       lock,
		prog:       prog,
		rng:        rand.New(rand.NewSource(seed)),
		QSLRetries: 128,
	}
}

// SetOnDone registers a completion callback.
func (t *Thread) SetOnDone(fn func(*Thread)) { t.onDone = fn }

// Done reports whether the thread finished its program.
func (t *Thread) Done() bool { return t.done }

// Phase returns the thread's current phase.
func (t *Thread) Phase() Phase { return t.phase }

// PhaseStart returns the cycle the current phase began, for stall
// diagnostics.
func (t *Thread) PhaseStart() sim.Cycle { return t.phaseStart }

// Rand exposes the thread's deterministic RNG (lock backoff jitter).
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Eng exposes the engine for lock implementations.
func (t *Thread) Eng() *sim.Engine { return t.eng }

// Start launches the thread at the current cycle.
func (t *Thread) Start() {
	t.phaseStart = t.eng.Now()
	t.setPhase(PhaseParallel)
	t.iterate(0)
}

// iterate runs critical-section iteration i.
func (t *Thread) iterate(i int) {
	if i >= t.prog.CSCount {
		t.setPhase(PhaseDone)
		t.done = true
		if t.onDone != nil {
			t.onDone(t)
		}
		return
	}
	t.compute(t.prog.ParallelCycles(t.rng), func() {
		t.setPhase(PhaseCOH)
		t.retriesUsed = 0
		t.woken = false
		t.AcquireCount++
		t.lock.Acquire(t, func() {
			t.setPhase(PhaseCSE)
			t.compute(t.prog.CSCycles(t.rng), func() {
				t.lock.Release(t, func() {
					t.CSCompleted++
					if t.Barrier != nil && t.BarrierEvery > 0 && t.CSCompleted%t.BarrierEvery == 0 {
						t.setPhase(PhaseCOH)
						t.BarrierJoins++
						t.Barrier.Join(t, func() {
							t.setPhase(PhaseParallel)
							t.iterate(i + 1)
						})
						return
					}
					t.setPhase(PhaseParallel)
					t.iterate(i + 1)
				})
			})
		})
	})
}

// compute burns cycles of local work.
func (t *Thread) compute(c sim.Cycle, next func()) {
	if c == 0 {
		t.eng.Schedule(0, next)
		return
	}
	t.eng.Schedule(c-1, next)
}

// setPhase closes the current phase's accounting and opens the next.
func (t *Thread) setPhase(p Phase) {
	now := t.eng.Now()
	d := uint64(now - t.phaseStart)
	switch t.phase {
	case PhaseParallel:
		t.Breakdown.Parallel += d
	case PhaseCOH:
		t.Breakdown.COH += d
	case PhaseSleep:
		t.Breakdown.Sleep += d
	case PhaseCSE:
		t.Breakdown.CSE += d
	}
	if p != t.phase {
		// A phase transition is liveness progress: threads stuck spinning on
		// an unreachable lock stop transitioning, which the engine's watchdog
		// detects.
		t.eng.NoteProgress()
		if t.PhaseHook != nil {
			t.PhaseHook(t, now, t.phase, p)
		}
	}
	t.phase = p
	t.phaseStart = now
}

// BeginSleep moves a QSL thread into the sleep sub-phase.
func (t *Thread) BeginSleep() {
	t.SleepCount++
	t.setPhase(PhaseSleep)
}

// EndSleep returns a woken thread to the competition phase with wakeup
// (lowest) priority.
func (t *Thread) EndSleep() {
	t.woken = true
	t.setPhase(PhaseCOH)
}

// CountRetry records one failed lock poll.
func (t *Thread) CountRetry() { t.retriesUsed++ }

// RetriesUsed reports failed polls in the current acquire.
func (t *Thread) RetriesUsed() int { return t.retriesUsed }

// ResetRetries restarts the spin budget (after a QSL wakeup).
func (t *Thread) ResetRetries() { t.retriesUsed = 0 }

// LockPrio computes the OCOR arbitration priority for the thread's next
// lock request packet: 9 levels, the lowest (0) for wakeup requests and
// levels 1-8 for spinning threads mapped from the remaining times of
// retry, 16 retries per level — the closer a thread is to sleeping, the
// higher its priority.
func (t *Thread) LockPrio() int {
	if !t.OCOR {
		return 0
	}
	if t.woken {
		return 0
	}
	per := t.QSLRetries / 8
	if per == 0 {
		per = 1
	}
	lvl := 1 + t.retriesUsed/per
	if lvl > 8 {
		lvl = 8
	}
	return lvl
}
