package coherence

import (
	"testing"

	"inpg/internal/cache"
	"inpg/internal/memory"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// smallFabric builds a 4×4 fabric with fast DRAM for protocol tests.
func smallFabric(t *testing.T) *Fabric {
	t.Helper()
	eng := sim.NewEngine(11)
	cfg := FabricConfig{
		Net: noc.Config{Mesh: noc.Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4},
		L1:  L1Config{Cache: cache.Config{SizeBytes: 4096, Ways: 4, BlockBytes: 128}, MSHRs: 8, HitLatency: 2},
		Dir: DirConfig{L2Latency: 6},
		Mem: memory.Config{Controllers: 4, Latency: 30, MaxOutstanding: 16},
	}
	f, err := NewFabric(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runUntil steps the engine until done() or the budget is exhausted.
func runUntil(t *testing.T, f *Fabric, budget sim.Cycle, done func() bool) {
	t.Helper()
	if _, err := f.Eng.Run(budget, done); err != nil {
		t.Fatalf("simulation did not converge: %v", err)
	}
}

func TestColdLoadReturnsZero(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(5, 0)
	got := uint64(99)
	doneF := false
	f.L1s[0].Load(addr, false, 0, func(v uint64) { got = v; doneF = true })
	runUntil(t, f, 10000, func() bool { return doneF })
	if got != 0 {
		t.Fatalf("cold load = %d, want 0", got)
	}
	// First reader of an uncached line is granted Exclusive.
	ln := f.L1s[0].Cache().Peek(addr)
	if ln == nil || ln.State != cache.Exclusive {
		t.Fatalf("line after cold load = %+v, want Exclusive", ln)
	}
}

func TestStoreThenRemoteLoad(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(3, 0)
	step := 0
	f.L1s[0].Store(addr, 42, false, 0, func() { step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	var got uint64
	f.L1s[7].Load(addr, false, 0, func(v uint64) { got = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if got != 42 {
		t.Fatalf("remote load after store = %d, want 42", got)
	}
	// The writer downgraded to Shared (forward + copyback), reader Shared.
	if ln := f.L1s[0].Cache().Peek(addr); ln == nil || ln.State != cache.Shared {
		t.Fatalf("writer line = %+v, want Shared", ln)
	}
	if ln := f.L1s[7].Cache().Peek(addr); ln == nil || ln.State != cache.Shared {
		t.Fatalf("reader line = %+v, want Shared", ln)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(0, 1)
	// Three readers pull shared copies.
	got := 0
	for _, id := range []int{1, 2, 3} {
		f.L1s[id].Load(addr, false, 0, func(uint64) { got++ })
	}
	runUntil(t, f, 20000, func() bool { return got == 3 })
	// A fourth core writes: all shared copies must be invalidated.
	doneW := false
	f.L1s[8].Store(addr, 7, false, 0, func() { doneW = true })
	runUntil(t, f, 20000, func() bool { return doneW })
	for _, id := range []int{1, 2, 3} {
		if ln := f.L1s[id].Cache().Peek(addr); ln != nil {
			t.Fatalf("core %d still holds %v after remote write", id, ln.State)
		}
	}
	if ln := f.L1s[8].Cache().Peek(addr); ln == nil || ln.State != cache.Modified || ln.Data != 7 {
		t.Fatalf("writer line = %+v, want M/7", ln)
	}
	if err := f.CheckInvariants([]uint64{addr}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicSwapReturnsOldValue(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(9, 0)
	step := 0
	f.L1s[2].Store(addr, 5, false, 0, func() { step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	var old uint64
	f.L1s[4].Atomic(addr, Swap, 11, 0, 0, func(v uint64) { old = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if old != 5 {
		t.Fatalf("swap old = %d, want 5", old)
	}
	var readBack uint64
	f.L1s[2].Load(addr, false, 0, func(v uint64) { readBack = v; step = 3 })
	runUntil(t, f, 10000, func() bool { return step == 3 })
	if readBack != 11 {
		t.Fatalf("read back = %d, want 11", readBack)
	}
}

func TestCompareSwapSemantics(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(1, 2)
	step := 0
	var old1, old2 uint64
	f.L1s[0].Atomic(addr, CompareSwap, 0, 9, 0, func(v uint64) { old1 = v; step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	f.L1s[1].Atomic(addr, CompareSwap, 3, 77, 0, func(v uint64) { old2 = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if old1 != 0 || old2 != 9 {
		t.Fatalf("CAS olds = %d,%d want 0,9", old1, old2)
	}
	var final uint64
	f.L1s[2].Load(addr, false, 0, func(v uint64) { final = v; step = 3 })
	runUntil(t, f, 10000, func() bool { return step == 3 })
	if final != 9 {
		t.Fatalf("failed CAS must not write: value = %d, want 9", final)
	}
}

// TestFetchAddAtomicity is the core serialization property: N cores each
// fetch-add 1 to the same word K times, concurrently. Every increment must
// be preserved.
func TestFetchAddAtomicity(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(10, 0)
	const perCore = 8
	cores := len(f.L1s)
	finished := 0
	for id := 0; id < cores; id++ {
		l1 := f.L1s[id]
		var step func(k int)
		step = func(k int) {
			if k == perCore {
				finished++
				return
			}
			l1.Atomic(addr, FetchAdd, 1, 0, 0, func(uint64) { step(k + 1) })
		}
		step(0)
	}
	runUntil(t, f, 2_000_000, func() bool { return finished == cores })
	var final uint64
	got := false
	f.L1s[0].Load(addr, false, 0, func(v uint64) { final = v; got = true })
	runUntil(t, f, 100000, func() bool { return got })
	if final != uint64(cores*perCore) {
		t.Fatalf("final = %d, want %d: increments lost", final, cores*perCore)
	}
	if err := f.CheckInvariants([]uint64{addr}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSwapOneWinner mirrors the paper's Step 2-4: all cores swap
// 1 into a zero-initialized lock; exactly one must observe the old value 0.
func TestConcurrentSwapOneWinner(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(6, 3)
	winners, done := 0, 0
	for id := range f.L1s {
		f.L1s[id].Atomic(addr, Swap, 1, 0, 0, func(old uint64) {
			if old == 0 {
				winners++
			}
			done++
		})
	}
	runUntil(t, f, 1_000_000, func() bool { return done == len(f.L1s) })
	if winners != 1 {
		t.Fatalf("%d cores won the swap race, want exactly 1", winners)
	}
}

func TestEvictionWritebackPreservesData(t *testing.T) {
	f := smallFabric(t)
	// L1: 4096 B, 4-way, 128 B blocks → 8 sets; set stride 1024, wrap 8192.
	// Write 5 conflicting lines (same set) to force eviction of the first.
	base := f.Homes.AddrForHome(2, 0)
	conflict := func(i int) uint64 { return base + uint64(i)*8192*2 } // same set, same home parity
	step := 0
	var chain func(i int)
	chain = func(i int) {
		if i == 5 {
			step = 1
			return
		}
		f.L1s[3].Store(conflict(i), uint64(100+i), false, 0, func() { chain(i + 1) })
	}
	chain(0)
	runUntil(t, f, 200000, func() bool { return step == 1 })
	if ln := f.L1s[3].Cache().Peek(conflict(0)); ln != nil {
		t.Fatalf("first line should be evicted, still %v", ln.State)
	}
	// Read it back from another core: the writeback must have carried 100.
	var got uint64
	f.L1s[12].Load(conflict(0), false, 0, func(v uint64) { got = v; step = 2 })
	runUntil(t, f, 200000, func() bool { return step == 2 })
	if got != 100 {
		t.Fatalf("read after writeback = %d, want 100", got)
	}
}

func TestSpinReadersSeeRelease(t *testing.T) {
	// A waiter spins on a cached copy; the holder's release (store 0) must
	// invalidate it and the next read must see the new value.
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(8, 0)
	step := 0
	f.L1s[0].Store(addr, 1, false, 0, func() { step = 1 }) // lock held
	runUntil(t, f, 10000, func() bool { return step == 1 })
	var v1 uint64
	f.L1s[5].Load(addr, true, 0, func(v uint64) { v1 = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if v1 != 1 {
		t.Fatalf("spin read = %d, want 1", v1)
	}
	// Spin locally: hit.
	hits0 := f.L1s[5].Stats.Hits
	f.L1s[5].Load(addr, true, 0, func(uint64) { step = 3 })
	runUntil(t, f, 10000, func() bool { return step == 3 })
	if f.L1s[5].Stats.Hits != hits0+1 {
		t.Fatal("second spin read should hit locally")
	}
	// Release.
	f.L1s[0].Store(addr, 0, false, 0, func() { step = 4 })
	runUntil(t, f, 10000, func() bool { return step == 4 })
	if ln := f.L1s[5].Cache().Peek(addr); ln != nil {
		t.Fatalf("waiter copy not invalidated by release: %v", ln.State)
	}
	var v2 uint64
	f.L1s[5].Load(addr, true, 0, func(v uint64) { v2 = v; step = 5 })
	runUntil(t, f, 10000, func() bool { return step == 5 })
	if v2 != 0 {
		t.Fatalf("read after release = %d, want 0", v2)
	}
}

func TestHomeMapRoundTrip(t *testing.T) {
	h := HomeMap{Nodes: 64, BlockBytes: 128}
	for node := noc.NodeID(0); node < 64; node++ {
		for n := 0; n < 4; n++ {
			a := h.AddrForHome(node, n)
			if h.Home(a) != node {
				t.Fatalf("AddrForHome(%d,%d)=%#x maps to %d", node, n, a, h.Home(a))
			}
		}
	}
}

func TestMsgTypeVNets(t *testing.T) {
	if MsgGetX.VNet() != noc.VNetRequest || MsgInv.VNet() != noc.VNetForward || MsgData.VNet() != noc.VNetResponse {
		t.Fatal("message class mapping broken")
	}
}

func TestLCOStatAccumulates(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(4, 0)
	done := false
	f.L1s[0].Atomic(addr, Swap, 1, 0, 0, func(uint64) { done = true })
	runUntil(t, f, 10000, func() bool { return done })
	if f.L1s[0].Stats.LockStallCycles == 0 {
		t.Fatal("atomic miss must accumulate lock stall cycles")
	}
}
