package coherence

import (
	"os"
	"strings"
	"testing"
)

// corpusEntry is the committed fuzz corpus file pinning the floating-
// AcksComplete regression (see FuzzCoherence): a delayed ack from the
// lock-probe fast path once completed a later transaction by the same
// requester and stranded its ack wait, until Message.Seq matching fixed it.
const corpusEntry = "testdata/fuzz/FuzzCoherence/bb103527b348d162"

// TestFuzzCorpusRegressionReplay replays the committed corpus entry — seed
// 186, fault-rate byte 0x1d — as a plain unit test, so the regression stays
// covered by every `go test` run and by -run filters that never reach the
// fuzz target. The file is parsed first so the replay cannot silently
// drift from what the corpus actually pins.
func TestFuzzCorpusRegressionReplay(t *testing.T) {
	data, err := os.ReadFile(corpusEntry)
	if err != nil {
		t.Fatalf("committed fuzz corpus entry missing: %v", err)
	}
	for _, want := range []string{"int64(186)", `byte('\x1d')`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("corpus entry no longer encodes %s; update this replay:\n%s", want, data)
		}
	}
	// The fuzz target maps the rate byte as ratePct%16 per cent.
	fuzzRun(t, 186, float64(0x1d%16)/100)
}
