package coherence

import (
	"errors"
	"math/rand"
	"testing"

	"inpg/internal/cache"
	"inpg/internal/fault"
	"inpg/internal/memory"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// The protocol fuzzer drives a random mix of loads, stores, atomics and
// release write-throughs from every core against a small set of hot
// addresses, then checks the system-level guarantees that survive any
// interleaving:
//
//  1. progress — every operation completes (no protocol deadlock);
//  2. coherence — at quiesce, at most one owner per line and all shared
//     copies equal (Fabric.CheckInvariants);
//  3. agreement — two fresh readers observe the same final value;
//  4. counting — on addresses restricted to fetch-add, no increment is
//     ever lost.
//
// This is the harness that caught the fill-race, ghost-record and
// floating-ack bugs during development.

type fuzzOpKind int

const (
	fuzzLoad fuzzOpKind = iota
	fuzzStore
	fuzzSwap
	fuzzFAA
	fuzzCAS
	fuzzRelease
	fuzzKinds
)

func fuzzFabric(t *testing.T, seed int64) *Fabric {
	t.Helper()
	return fuzzFaultedFabric(t, seed, fault.Config{})
}

func fuzzFaultedFabric(t *testing.T, seed int64, fc fault.Config) *Fabric {
	t.Helper()
	eng := sim.NewEngine(seed)
	cfg := FabricConfig{
		Net: noc.Config{Mesh: noc.Mesh{Width: 4, Height: 4}, VCsPerPort: 6, VCDepth: 4, Fault: fc},
		L1:  L1Config{Cache: cache.Config{SizeBytes: 4096, Ways: 4, BlockBytes: 128}, MSHRs: 8, HitLatency: 2},
		Dir: DirConfig{L2Latency: 6},
		Mem: memory.Config{Controllers: 4, Latency: 20, MaxOutstanding: 16},
	}
	f, err := NewFabric(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestProtocolFuzzMixedOps(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) { fuzzOnce(t, seed) })
	}
}

func fuzzOnce(t *testing.T, seed int64) {
	fuzzRun(t, seed, 0)
}

// TestProtocolFuzzWithFaults repeats the mixed-op fuzz under transient link
// and port faults: the retransmission layer must keep every protocol
// guarantee intact. Every run completes (and passes the full invariant
// suite) or returns a structured stall diagnosis naming a dead link — never
// a panic, never a silent crawl to the cycle budget.
func TestProtocolFuzzWithFaults(t *testing.T) {
	type cse struct {
		seed int64
		rate float64
	}
	cases := []cse{{1, 0.02}, {2, 0.05}, {3, 0.10}, {5, 0.02}, {8, 0.08}}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, c := range cases {
		c := c
		t.Run("", func(t *testing.T) { fuzzRun(t, c.seed, c.rate) })
	}
}

// FuzzCoherence is the native fuzz target: the engine seed and fault rate
// come from the fuzzer, and any input must end in a clean completion (with
// invariants) or a structured, diagnosed error. Run with
// go test -fuzz=FuzzCoherence ./internal/coherence.
func FuzzCoherence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(3))
	f.Add(int64(42), uint8(12))
	// Regression: this input once wedged the home directory — a floating
	// AcksComplete from the lock-probe fast path, delayed by retransmission
	// backoff, completed a later transaction by the same requester and
	// stranded its ack wait. Fixed by Seq matching (Message.Seq).
	f.Add(int64(186), uint8(0x1d))
	f.Fuzz(func(t *testing.T, seed int64, ratePct uint8) {
		fuzzRun(t, seed, float64(ratePct%16)/100)
	})
}

// fuzzRun drives the mixed-op fuzz at the given combined fault rate. At
// rate 0 it must complete and satisfy every invariant; at nonzero rates a
// watchdog-diagnosed stall with a dead link is also an accepted outcome
// (bounded retransmission is allowed to declare a link failed), but any
// error without that diagnosis — or any panic — is a bug.
func fuzzRun(t *testing.T, seed int64, faultRate float64) {
	fc := fault.AtRate(faultRate, seed^0x5bf03635)
	f := fuzzFaultedFabric(t, seed, fc)
	if faultRate > 0 {
		f.Eng.SetWatchdog(1_000_000)
	}
	rng := rand.New(rand.NewSource(seed * 7919))

	// Hot addresses: a few mixed-use lines plus one FAA-only counter.
	var addrs []uint64
	for i := 0; i < 4; i++ {
		addrs = append(addrs, f.Homes.AddrForHome(noc.NodeID(rng.Intn(16)), i))
	}
	counter := f.Homes.AddrForHome(noc.NodeID(rng.Intn(16)), 9)

	const opsPerCore = 20
	cores := len(f.L1s)
	finished := 0
	var faaCount uint64

	for id := 0; id < cores; id++ {
		l1 := f.L1s[id]
		r := rand.New(rand.NewSource(seed + int64(id)*104729))
		var step func(k int)
		step = func(k int) {
			if k == opsPerCore {
				finished++
				return
			}
			next := func() { step(k + 1) }
			if r.Intn(4) == 0 {
				// Hammer the FAA-only counter.
				faaCount++
				l1.Atomic(counter, FetchAdd, 1, 0, 0, func(uint64) { next() })
				return
			}
			addr := addrs[r.Intn(len(addrs))]
			switch fuzzOpKind(r.Intn(int(fuzzKinds))) {
			case fuzzLoad:
				l1.Load(addr, r.Intn(2) == 0, 0, func(uint64) { next() })
			case fuzzStore:
				l1.Store(addr, uint64(r.Intn(8)), false, 0, next)
			case fuzzSwap:
				l1.Atomic(addr, Swap, uint64(r.Intn(3)), 0, 0, func(uint64) { next() })
			case fuzzFAA:
				l1.Atomic(addr, FetchAdd, uint64(r.Intn(3)), 0, 0, func(uint64) { next() })
			case fuzzCAS:
				l1.Atomic(addr, CompareSwap, uint64(r.Intn(3)), uint64(r.Intn(8)), 0, func(uint64) { next() })
			case fuzzRelease:
				l1.StoreRelease(addr, uint64(r.Intn(8)), true, 0, next)
			}
		}
		step(0)
	}

	if _, err := f.Eng.Run(20_000_000, func() bool { return finished == cores }); err != nil {
		var stall *sim.StallError
		if faultRate > 0 && errors.As(err, &stall) {
			// A stall under fault injection is legitimate only when bounded
			// retransmission actually declared a link dead; the watchdog must
			// have reported it long before the cycle budget, and the network
			// diagnosis must name the failed link.
			dead := f.Net.Diagnostics(f.Eng.Now()).DeadLinks()
			if len(dead) == 0 {
				t.Fatalf("seed %d rate %.2f: stalled with no dead link: %v (finished %d/%d)",
					seed, faultRate, err, finished, cores)
			}
			return
		}
		t.Fatalf("seed %d rate %.2f: protocol stalled: %v (finished %d/%d)",
			seed, faultRate, err, finished, cores)
	}

	// Quiesce the network, then check invariants and reader agreement.
	if err := f.Quiesce(100_000); err != nil {
		t.Fatalf("seed %d: network did not drain: %v", seed, err)
	}
	if err := f.CheckInvariants(append(addrs, counter)); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	for _, addr := range addrs {
		var v1, v2 uint64
		got := 0
		f.L1s[0].Load(addr, false, 0, func(v uint64) { v1 = v; got++ })
		f.L1s[15].Load(addr, false, 0, func(v uint64) { v2 = v; got++ })
		if _, err := f.Eng.Run(100_000, func() bool { return got == 2 }); err != nil {
			t.Fatalf("seed %d: final reads stalled: %v", seed, err)
		}
		if v1 != v2 {
			t.Fatalf("seed %d: readers disagree on %#x: %d vs %d", seed, addr, v1, v2)
		}
	}
	// The FAA-only counter must have every increment.
	var final uint64
	done := false
	f.L1s[3].Load(counter, false, 0, func(v uint64) { final = v; done = true })
	if _, err := f.Eng.Run(100_000, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	if final != faaCount {
		t.Fatalf("seed %d: counter = %d, want %d: increments lost", seed, final, faaCount)
	}
}

// TestProtocolFuzzWithBigRouters repeats the fuzz with interceptors
// present so iNPG's stop/convert/relay path is exercised under random
// traffic, not just lock workloads.
func TestProtocolFuzzWithBigRouters(t *testing.T) {
	// The big routers live in their own package; rather than import it
	// (cycle), emulate a pass-through interceptor here to at least cover
	// the interceptor code path in the router under fuzz traffic. The
	// full-stack iNPG fuzz lives in the root package's system tests.
	f := fuzzFabric(t, 99)
	for n := 0; n < 16; n += 2 {
		f.Net.Router(noc.NodeID(n)).SetInterceptor(passThrough{})
	}
	rng := rand.New(rand.NewSource(4242))
	addr := f.Homes.AddrForHome(5, 0)
	finished := 0
	for id := 0; id < len(f.L1s); id++ {
		l1 := f.L1s[id]
		r := rand.New(rand.NewSource(int64(id) + 1))
		var step func(k int)
		step = func(k int) {
			if k == 10 {
				finished++
				return
			}
			if r.Intn(2) == 0 {
				l1.Atomic(addr, Swap, 1, 0, 0, func(uint64) { step(k + 1) })
			} else {
				l1.StoreRelease(addr, 0, true, 0, func() { step(k + 1) })
			}
		}
		step(0)
	}
	_ = rng
	if _, err := f.Eng.Run(5_000_000, func() bool { return finished == len(f.L1s) }); err != nil {
		t.Fatalf("stalled with interceptors: %v", err)
	}
	if err := f.CheckInvariants([]uint64{addr}); err != nil {
		t.Fatal(err)
	}
}

type passThrough struct{}

func (passThrough) Intercept(now sim.Cycle, r *noc.Router, p *noc.Packet) (bool, []*noc.Packet) {
	return false, nil
}
