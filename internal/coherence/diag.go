package coherence

import (
	"fmt"
	"sort"

	"inpg/internal/sim"
)

// DirLineDiag is a snapshot of one in-progress directory line, taken when
// the liveness watchdog trips.
type DirLineDiag struct {
	Home    int
	Addr    uint64
	Busy    bool
	Fetch   bool
	Cur     string // active transaction ("-" when idle)
	Waiting int    // invalidation acks outstanding
	Queued  int    // requests queued behind the active transaction
	State   string // full DebugLine rendering
}

func (d DirLineDiag) String() string {
	return fmt.Sprintf("dir %d line %#x: busy=%v fetch=%v cur=%s waiting=%d queued=%d [%s]",
		d.Home, d.Addr, d.Busy, d.Fetch, d.Cur, d.Waiting, d.Queued, d.State)
}

// Diagnostics returns the directory's unfinished business: every line that
// is mid-transaction, fetching from memory, waiting on acks or holding
// queued requests, in ascending address order.
func (d *Dir) Diagnostics() []DirLineDiag {
	addrs := make([]uint64, 0, len(d.lines))
	for a, ln := range d.lines {
		if ln.busy || ln.fetching || len(ln.waiting) > 0 || len(ln.pending) > 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]DirLineDiag, 0, len(addrs))
	for _, a := range addrs {
		ln := d.lines[a]
		cur := "-"
		if ln.cur != nil {
			cur = ln.cur.String()
		}
		out = append(out, DirLineDiag{
			Home:    int(d.Node),
			Addr:    a,
			Busy:    ln.busy,
			Fetch:   ln.fetching,
			Cur:     cur,
			Waiting: len(ln.waiting),
			Queued:  len(ln.pending),
			State:   d.DebugLine(a),
		})
	}
	return out
}

// MSHRDiag is a snapshot of one outstanding L1 transaction.
type MSHRDiag struct {
	Node  int
	Addr  uint64
	State string    // transient protocol state: IS, IM or REL
	Age   sim.Cycle // cycles since the CPU op was issued
	Lock  bool      // part of a lock-acquire protocol
}

func (d MSHRDiag) String() string {
	s := fmt.Sprintf("l1 %d mshr %#x: state %s, outstanding %d cycles", d.Node, d.Addr, d.State, d.Age)
	if d.Lock {
		s += " (lock op)"
	}
	return s
}

// trStateName names a transient protocol state.
func trStateName(s int) string {
	switch s {
	case trIS:
		return "IS"
	case trIM:
		return "IM"
	case trREL:
		return "REL"
	}
	return fmt.Sprintf("tr(%d)", s)
}

// Diagnostics returns this L1's outstanding transactions in ascending
// address order.
func (l *L1) Diagnostics(now sim.Cycle) []MSHRDiag {
	entries := l.mshr.Entries()
	out := make([]MSHRDiag, 0, len(entries))
	for _, e := range entries {
		d := MSHRDiag{Node: int(l.Node), Addr: e.Addr, State: trStateName(e.State)}
		if op, ok := e.Aux.(*pendingOp); ok {
			d.Age = now - op.issued
			d.Lock = op.lock
		}
		out = append(out, d)
	}
	return out
}

// Diagnostics collects the unfinished protocol state across every
// controller: directory lines mid-transaction and outstanding L1 MSHRs, in
// deterministic node order.
func (f *Fabric) Diagnostics(now sim.Cycle) (dirs []DirLineDiag, mshrs []MSHRDiag) {
	for _, d := range f.Dirs {
		dirs = append(dirs, d.Diagnostics()...)
	}
	for _, l := range f.L1s {
		mshrs = append(mshrs, l.Diagnostics(now)...)
	}
	return dirs, mshrs
}
