package coherence

import (
	"testing"

	"inpg/internal/cache"
)

// Targeted transition tests for the lock-specific protocol paths: the
// failed-swap fast path, the owner peek (downgrade and yield outcomes),
// the release write-through recall, and the fill/invalidation race.

func TestFailedSwapFastPath(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(6, 0)
	step := 0
	// Seed the lock word to 1 via the home (release write-through), so no
	// owner exists and the home's value is current.
	f.L1s[0].StoreRelease(addr, 1, true, 0, func() { step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	// A swap of 1 over 1 is a no-op: it must fail fast at the home with a
	// shared peek copy and NO ownership transfer.
	var old uint64
	f.L1s[9].Atomic(addr, Swap, 1, 0, 0, func(v uint64) { old = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if old != 1 {
		t.Fatalf("failed swap returned %d, want 1", old)
	}
	ln := f.L1s[9].Cache().Peek(addr)
	if ln == nil || ln.State != cache.Shared {
		t.Fatalf("loser's line = %+v, want a Shared peek copy", ln)
	}
	_, owner, sharers, _ := f.Dirs[6].LineInfo(addr)
	if owner != -1 {
		t.Fatalf("owner = %d, want none (no ownership transfer)", owner)
	}
	if len(sharers) == 0 {
		t.Fatal("loser not registered as sharer")
	}
	if f.Dirs[6].Stats.SwapFails != 1 {
		t.Fatalf("SwapFails = %d, want 1", f.Dirs[6].Stats.SwapFails)
	}
}

func TestOwnerPeekDowngrade(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(2, 0)
	step := 0
	// Winner takes the lock for real: swap 1 over 0 via full GetX.
	f.L1s[4].Atomic(addr, Swap, 1, 0, 0, func(old uint64) {
		if old != 0 {
			t.Errorf("winner's swap old = %d, want 0", old)
		}
		step = 1
	})
	runUntil(t, f, 10000, func() bool { return step == 1 })
	if ln := f.L1s[4].Cache().Peek(addr); ln == nil || ln.State != cache.Modified {
		t.Fatalf("winner's line = %+v, want Modified", ln)
	}
	// A loser's swap is forwarded to the owner, which downgrades and
	// serves a shared copy; the home's value becomes current via CopyBack.
	var old uint64
	f.L1s[11].Atomic(addr, Swap, 1, 0, 0, func(v uint64) { old = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if err := f.Settle(10000); err != nil { // let the CopyBack land
		t.Fatal(err)
	}
	if old != 1 {
		t.Fatalf("loser's swap old = %d, want 1", old)
	}
	if ln := f.L1s[4].Cache().Peek(addr); ln == nil || ln.State != cache.Shared {
		t.Fatalf("owner after peek = %+v, want downgraded to Shared", ln)
	}
	val, owner, _, _ := f.Dirs[2].LineInfo(addr)
	if owner != -1 || val != 1 {
		t.Fatalf("home after copyback: owner=%d val=%d, want none/1", owner, val)
	}
	if f.L1s[4].Stats.ProbesServed != 1 {
		t.Fatalf("ProbesServed = %d, want 1", f.L1s[4].Stats.ProbesServed)
	}
}

func TestOwnerPeekYieldOnReleasedLock(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(3, 0)
	step := 0
	// Owner holds the line in M with value 0 (acquired then locally
	// released — a plain store keeps it M).
	f.L1s[1].Atomic(addr, Swap, 1, 0, 0, func(uint64) {
		f.L1s[1].Store(addr, 0, false, 0, func() { step = 1 })
	})
	runUntil(t, f, 10000, func() bool { return step == 1 })
	// Another swap probes the owner, finds 0 != 1, so the owner yields:
	// the prober wins the lock outright.
	var old uint64
	f.L1s[14].Atomic(addr, Swap, 1, 0, 0, func(v uint64) { old = v; step = 2 })
	runUntil(t, f, 10000, func() bool { return step == 2 })
	if old != 0 {
		t.Fatalf("prober's swap old = %d, want 0 (lock acquired)", old)
	}
	if ln := f.L1s[14].Cache().Peek(addr); ln == nil || ln.State != cache.Modified || ln.Data != 1 {
		t.Fatalf("prober's line = %+v, want M/1", ln)
	}
	if ln := f.L1s[1].Cache().Peek(addr); ln != nil {
		t.Fatalf("yielding owner still holds %v", ln.State)
	}
}

func TestReleaseRecallsAllCopies(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(7, 0)
	// Three spinners hold shared copies of value 1.
	step := 0
	f.L1s[0].StoreRelease(addr, 1, true, 0, func() { step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	got := 0
	for _, id := range []int{2, 5, 9} {
		f.L1s[id].Load(addr, true, 0, func(uint64) { got++ })
	}
	runUntil(t, f, 10000, func() bool { return got == 3 })
	// Release write-through of 0: all three copies recalled, value at home.
	done := false
	f.L1s[0].StoreRelease(addr, 0, true, 0, func() { done = true })
	runUntil(t, f, 10000, func() bool { return done })
	for _, id := range []int{2, 5, 9} {
		if ln := f.L1s[id].Cache().Peek(addr); ln != nil {
			t.Fatalf("core %d copy not recalled: %v", id, ln.State)
		}
	}
	val, owner, sharers, busy := f.Dirs[7].LineInfo(addr)
	if val != 0 || owner != -1 || len(sharers) != 0 || busy {
		t.Fatalf("home after release: val=%d owner=%d sharers=%v busy=%v", val, owner, sharers, busy)
	}
	if f.Dirs[7].Stats.Releases != 2 {
		t.Fatalf("Releases = %d, want 2", f.Dirs[7].Stats.Releases)
	}
}

func TestReleaseRecallsOwnerCopy(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(4, 0)
	step := 0
	// Another core owns the line (took the lock for real).
	f.L1s[8].Atomic(addr, Swap, 1, 0, 0, func(uint64) { step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	// A different core (the logical holder in a bounced-ownership
	// scenario) releases by write-through: the owner's M copy must be
	// recalled, not ignored.
	done := false
	f.L1s[3].StoreRelease(addr, 0, true, 0, func() { done = true })
	runUntil(t, f, 10000, func() bool { return done })
	if ln := f.L1s[8].Cache().Peek(addr); ln != nil {
		t.Fatalf("owner copy survived release recall: %v", ln.State)
	}
	val, owner, _, _ := f.Dirs[4].LineInfo(addr)
	if val != 0 || owner != -1 {
		t.Fatalf("home after recall: val=%d owner=%d", val, owner)
	}
}

func TestFillInvalidationRace(t *testing.T) {
	f := smallFabric(t)
	addr := f.Homes.AddrForHome(10, 0)
	// Reader 6 starts a fill; before the data can arrive we complete a
	// release write-through that invalidates it in flight. The reader's
	// load completes (with the pre-release value) but must NOT install a
	// stale line.
	step := 0
	f.L1s[0].StoreRelease(addr, 1, true, 0, func() { step = 1 })
	runUntil(t, f, 10000, func() bool { return step == 1 })
	loaded := false
	f.L1s[6].Load(addr, true, 0, func(uint64) { loaded = true })
	released := false
	// Issue the racing release a few cycles later, while the fill travels.
	f.Eng.Schedule(2, func() {
		f.L1s[0].StoreRelease(addr, 0, true, 0, func() { released = true })
	})
	runUntil(t, f, 20000, func() bool { return loaded && released })
	// Whatever the interleaving, a surviving copy at reader 6 must not be
	// stale: if present it must hold the post-release value.
	if ln := f.L1s[6].Cache().Peek(addr); ln != nil && ln.Data != 0 {
		t.Fatalf("reader kept a stale copy: %+v", ln)
	}
	if err := f.CheckInvariants([]uint64{addr}); err != nil {
		t.Fatal(err)
	}
}

func TestStrayWritebackAcknowledged(t *testing.T) {
	f := smallFabric(t)
	// Force an eviction of a dirty line while a conflicting address is
	// written, then confirm the evicting L1's writeback buffer drains.
	base := f.Homes.AddrForHome(1, 0)
	conflict := func(i int) uint64 { return base + uint64(i)*8192*2 }
	step := 0
	var chain func(i int)
	chain = func(i int) {
		if i == 5 {
			step = 1
			return
		}
		f.L1s[2].Store(conflict(i), uint64(i), false, 0, func() { chain(i + 1) })
	}
	chain(0)
	runUntil(t, f, 200000, func() bool { return step == 1 })
	if err := f.Settle(50000); err != nil {
		t.Fatal(err)
	}
	if n := len(f.L1s[2].evict); n != 0 {
		t.Fatalf("writeback buffer holds %d entries after quiesce", n)
	}
}
