package coherence

import (
	"fmt"
	"sort"

	"inpg/internal/noc"
	"inpg/internal/sim"
)

// Memory is the DRAM access interface the directory uses on a miss in its
// backing map (a cold block). internal/memory provides the implementation.
type Memory interface {
	Read(addr uint64, done func(value uint64))
}

// RTTRecorder receives one sample per completed invalidation round trip
// (Inv sent → InvAck received at the generator). Both directories and big
// routers report into it; internal/stats implements it.
type RTTRecorder interface {
	RecordRTT(core noc.NodeID, rtt sim.Cycle)
}

// earlyRec tracks iNPG early-invalidation state for one sharer of a line:
// its existence means a big router has invalidated (or is invalidating)
// that sharer; ackArrived means the relayed InvAck already reached home.
// The token pairs the record with exactly one stop event's ack.
type earlyRec struct {
	token      uint64
	ackArrived bool
}

// dirLine is the directory's view of one block.
type dirLine struct {
	present bool
	value   uint64
	owner   noc.NodeID // noInvalidNode when unowned
	sharers map[noc.NodeID]struct{}

	busy     bool
	fetching bool
	cur      *Message
	waiting  map[noc.NodeID]struct{}
	pending  []*Message

	early map[noc.NodeID]*earlyRec
}

// noNode marks the absence of an owner.
const noNode = noc.NodeID(-1)

// sortedSharers returns the sharer set in ascending node order so
// invalidation fan-out is deterministic for a given seed.
func sortedSharers(set map[noc.NodeID]struct{}) []noc.NodeID {
	out := make([]noc.NodeID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func newDirLine() *dirLine {
	return &dirLine{
		owner:   noNode,
		sharers: make(map[noc.NodeID]struct{}),
		waiting: make(map[noc.NodeID]struct{}),
		early:   make(map[noc.NodeID]*earlyRec),
	}
}

// DirStats counts directory activity.
type DirStats struct {
	GetS, GetX, PutM      uint64
	Releases              uint64 // synchronization-store write-throughs
	CopyBacks             uint64 // owner downgrades absorbed
	SwapFails             uint64 // losing SWAPs satisfied with shared copies
	LockPeeks             uint64 // losing SWAPs forwarded to the owner
	EarlyFwdGetX          uint64 // stopped-swap notifications from big routers
	InvsSent              uint64
	EarlyInvSkipped       uint64 // invalidations not sent thanks to iNPG
	AcksDropped           uint64
	ForwardedGetX         uint64
	MemFetches            uint64
	QueuedRequests        uint64
	TxnStarted, TxnEnded  uint64
	AckWaitCyclesTotal    uint64 // GetX service → last ack, summed
	AckWaitCount          uint64
	EarlyRecsUsed         uint64
	EarlyAckBeforeService uint64
	RelayedAckHits        uint64 // winner waits satisfied by relayed early acks
	StaleUnblocks         uint64 // unblocks whose Seq outlived their transaction
	StaleCopyBacks        uint64 // copy-backs whose Seq outlived their transaction
}

// DirConfig configures a directory/L2-bank controller.
type DirConfig struct {
	// L2Latency is the bank access latency applied to every message.
	L2Latency sim.Cycle
	// DisableAckOverlap turns off the iNPG ack-overlap optimization: a
	// relayed early acknowledgement may then satisfy only its own token
	// wait, never a pending direct-invalidation wait. Exists for the
	// mechanism-component ablation (experiments.AblationAckOverlap).
	DisableAckOverlap bool
}

// DefaultDirConfig returns Table 1's shared L2: 6-cycle bank latency.
func DefaultDirConfig() DirConfig { return DirConfig{L2Latency: 6} }

// Dir is the home-node directory controller for the blocks interleaved to
// this node, colocated with the local shared L2 bank.
type Dir struct {
	Node noc.NodeID
	eng  *sim.Engine
	ni   *noc.NI
	mem  Memory
	cfg  DirConfig
	rtt  RTTRecorder

	lines   map[uint64]*dirLine
	invSent map[invKey]sim.Cycle
	ackWait map[uint64]sim.Cycle // GetX service time per busy line
	// floating holds the tokens of early-invalidation acks still in
	// flight whose records were consumed unacked (the issuer's own request
	// was serviced, giving it a fresh copy); such acks refer to a copy
	// that no longer exists and are discarded on arrival.
	floating map[uint64]struct{}
	// waitTokens maps a waited-on sharer to the stop token whose relayed
	// ack satisfies it (eiSkip waits); direct-invalidation waits have no
	// entry and are satisfied by direct acks.
	waitTokens map[invKey]uint64

	Stats DirStats
}

type invKey struct {
	addr   uint64
	target noc.NodeID
}

// NewDir builds the directory controller for node.
func NewDir(eng *sim.Engine, node noc.NodeID, ni *noc.NI, mem Memory, cfg DirConfig) *Dir {
	return &Dir{
		Node:       node,
		eng:        eng,
		ni:         ni,
		mem:        mem,
		cfg:        cfg,
		lines:      make(map[uint64]*dirLine),
		invSent:    make(map[invKey]sim.Cycle),
		ackWait:    make(map[uint64]sim.Cycle),
		floating:   make(map[uint64]struct{}),
		waitTokens: make(map[invKey]uint64),
	}
}

// SetRTTRecorder installs the invalidation round-trip sampler.
func (d *Dir) SetRTTRecorder(r RTTRecorder) { d.rtt = r }

// line returns (creating if needed) the directory entry for addr.
func (d *Dir) line(addr uint64) *dirLine {
	ln := d.lines[addr]
	if ln == nil {
		ln = newDirLine()
		d.lines[addr] = ln
	}
	return ln
}

// send wraps and injects a message.
func (d *Dir) send(m *Message, dst noc.NodeID, priority int) {
	m.From = d.Node
	d.ni.Inject(packetFor(d.ni, m, dst, priority))
}

// relayJourney carries a tagged request's journey onto a message the home
// sends on its behalf — the forward/probe toward the owner, the data
// grant, the completion ack — and closes the home-service window: the
// cycles between the request's delivery (or the previous relayed send)
// and this send are directory-stage time, which is where L2 latency,
// pending-queue wait behind earlier transactions and invalidation-ack
// collection all land.
func (d *Dir) relayJourney(resp, req *Message) {
	if req == nil || req.Journey == nil {
		return
	}
	resp.Journey = req.Journey
	req.Journey.Remote(d.eng.Now())
}

// Receive queues a message for handling after the L2 bank latency.
func (d *Dir) Receive(now sim.Cycle, m *Message) {
	d.eng.Schedule(d.cfg.L2Latency-1, func() { d.handle(m) })
}

// handle dispatches one message at the bank.
func (d *Dir) handle(m *Message) {
	ln := d.line(m.Addr)
	switch m.Type {
	case MsgGetS, MsgGetX, MsgPutM, MsgPutRelease:
		d.admit(ln, m)
	case MsgFwdGetX:
		// A big router stopped this lock request and invalidated its
		// issuer in-network. Record that (the next exclusive transaction
		// neither re-invalidates the issuer nor pays a long-range round
		// trip for its ack), then service the issuer's request normally —
		// the stop delays and re-routes the request, it never cancels it,
		// so a request that would have won (the lock went free under a
		// live barrier) still wins here.
		d.Stats.EarlyFwdGetX++
		if old, ok := ln.early[m.Requestor]; ok && !old.ackArrived {
			// A superseded record's ack is still in flight: float it.
			d.floating[old.token] = struct{}{}
		}
		ln.early[m.Requestor] = &earlyRec{token: m.Token}
		req := &Message{
			Type: MsgGetX, Addr: m.Addr, From: m.Requestor, Requestor: m.Requestor,
			LockAddr: m.LockAddr, IsSwap: m.IsSwap, Operand: m.Operand, Seq: m.Seq,
			Journey: m.Journey,
		}
		d.admit(ln, req)
	case MsgInvAck:
		d.onAck(ln, m)
	case MsgUnblock:
		d.onUnblock(ln, m)
	case MsgCopyBack:
		d.onCopyBack(ln, m)
	default:
		d.eng.Fail(&ProtocolError{Node: int(d.Node), Component: "dir",
			Detail: fmt.Sprintf("unexpected %v", m)})
	}
}

// txnStarted and txnEnded bracket every blocking directory transaction.
// Both are liveness progress for the watchdog: a wedged system — dead link,
// unreachable home — stops starting and ending transactions.
func (d *Dir) txnStarted() {
	d.Stats.TxnStarted++
	d.eng.NoteProgress()
}

func (d *Dir) txnEnded() {
	d.Stats.TxnEnded++
	d.eng.NoteProgress()
}

// admit services a request now or queues it behind the active transaction.
func (d *Dir) admit(ln *dirLine, m *Message) {
	if ln.busy || ln.fetching {
		d.Stats.QueuedRequests++
		ln.pending = append(ln.pending, m)
		return
	}
	d.service(ln, m)
	d.drain(ln)
}

// drain services queued requests for as long as the line stays idle
// (non-blocking services — shared reads, failed-swap replies, writebacks —
// keep the queue moving without waiting for an unblock).
func (d *Dir) drain(ln *dirLine) {
	for !ln.busy && !ln.fetching && len(ln.pending) > 0 {
		next := ln.pending[0]
		ln.pending = ln.pending[1:]
		d.service(ln, next)
	}
}

// service begins a transaction for m. The line must be idle.
func (d *Dir) service(ln *dirLine, m *Message) {
	if !ln.present {
		// Cold block: fetch from DRAM first.
		ln.fetching = true
		d.Stats.MemFetches++
		addr := m.Addr
		d.mem.Read(addr, func(v uint64) {
			ln.fetching = false
			ln.present = true
			ln.value = v
			d.service(ln, m)
			d.drain(ln)
		})
		return
	}
	switch m.Type {
	case MsgGetS:
		d.serviceGetS(ln, m)
	case MsgGetX:
		d.serviceGetX(ln, m)
	case MsgPutM:
		d.servicePutM(ln, m)
	case MsgPutRelease:
		d.servicePutRelease(ln, m)
	}
}

// servicePutRelease applies a synchronization store: the home takes the
// released value, recalls every cached copy — owner included — and
// acknowledges the releaser once all invalidation acks are in. This is
// THE lock coherence event iNPG attacks: competing threads with SWAPs in
// flight were already invalidated by big routers (their relayed acks
// satisfy the wait), so only passive copies pay the full home round trip.
func (d *Dir) servicePutRelease(ln *dirLine, m *Message) {
	d.Stats.Releases++
	req := m.Requestor
	ln.busy = true
	ln.cur = m
	d.txnStarted()
	d.ackWait[m.Addr] = d.eng.Now()
	ln.value = m.Data

	targets := sortedSharers(ln.sharers)
	if ln.owner != noNode && ln.owner != req {
		targets = append(targets, ln.owner)
	}
	for _, s := range targets {
		if s == req {
			continue
		}
		d.invalidateSharer(ln, m.Addr, req, s, true)
	}
	ln.sharers = make(map[noc.NodeID]struct{})
	ln.owner = noNode

	if len(ln.waiting) == 0 {
		d.finishAcks(ln, m.Addr)
	}
}

// serviceGetS grants a read copy. Uncached lines are granted exclusively
// (blocking until the requester unblocks); owned lines are forwarded to
// the owner, which downgrades to Shared and copies the value back to the
// home (blocking until that CopyBack); plain shared reads are answered
// directly and do not block the line.
func (d *Dir) serviceGetS(ln *dirLine, m *Message) {
	d.Stats.GetS++
	req := m.Requestor
	// The requester is about to get a fresh copy: any early-invalidation
	// record for it is now history (its relayed ack, if still in flight,
	// becomes floating and will be dropped).
	d.consumeEarlyRec(ln, m.Addr, req)
	switch {
	case ln.owner != noNode && ln.owner != req:
		ln.busy = true
		ln.cur = m
		d.txnStarted()
		fwd := &Message{Type: MsgFwdGetS, Addr: m.Addr, Requestor: req, Data: ln.value, LockAddr: m.LockAddr, Seq: m.Seq}
		d.relayJourney(fwd, m)
		d.send(fwd, ln.owner, respPriority)
	case ln.owner == noNode && len(ln.sharers) == 0 && !m.LockAddr:
		// Exclusive grant for ordinary cold reads. Lock-word reads are
		// always granted Shared: an exclusive copy would let the first
		// spinner's SWAP upgrade silently in its own cache, serializing
		// the competition the protocol is supposed to arbitrate.
		ln.busy = true
		ln.cur = m
		d.txnStarted()
		ln.owner = req
		grant := &Message{Type: MsgData, Addr: m.Addr, Data: ln.value, Requestor: req, Excl: true, Seq: m.Seq}
		d.relayJourney(grant, m)
		d.send(grant, req, respPriority)
	default:
		ln.sharers[req] = struct{}{}
		grant := &Message{Type: MsgData, Addr: m.Addr, Data: ln.value, Requestor: req, Peek: m.LockAddr, Seq: m.Seq}
		d.relayJourney(grant, m)
		d.send(grant, req, respPriority)
	}
}

// onCopyBack absorbs an owner's downgrade (after FwdGetS or a lock peek):
// the old owner and the requester of the active forward both become
// sharers, nobody owns the line, and the transaction ends.
func (d *Dir) onCopyBack(ln *dirLine, m *Message) {
	if ln.busy && ln.cur != nil && m.Seq != ln.cur.Seq {
		// A copy-back from an already-ended forward must not end the
		// active transaction (or clobber its ownership bookkeeping).
		d.Stats.StaleCopyBacks++
		return
	}
	d.Stats.CopyBacks++
	ln.value = m.Data
	ln.sharers[m.From] = struct{}{}
	ln.owner = noNode
	if ln.busy && ln.cur != nil {
		ln.sharers[ln.cur.Requestor] = struct{}{}
		ln.busy = false
		ln.cur = nil
		d.txnEnded()
		d.drain(ln)
	}
}

// serviceGetX grants exclusive ownership: the previous owner (if any)
// forwards the data, every other sharer is invalidated — directly by the
// home, or already in-network by a big router (early records) — and the
// home releases the requester with AcksComplete once every ack arrives.
func (d *Dir) serviceGetX(ln *dirLine, m *Message) {
	d.Stats.GetX++
	req := m.Requestor

	// The requester is about to get a fresh (exclusive) copy: consume any
	// early record it still has.
	d.consumeEarlyRec(ln, m.Addr, req)

	// Failed-swap fast paths (the paper's Step 3-4): a SWAP that would
	// write the value already present is a no-op, so the loser receives a
	// valid shared copy instead of ownership and retries at the spin
	// level. With no owner the home decides from its own (current) value;
	// with an owner the peek is forwarded and the owner decides.
	if m.IsSwap && ln.owner == noNode && ln.value == m.Operand {
		d.Stats.SwapFails++
		ln.sharers[req] = struct{}{}
		fail := &Message{Type: MsgData, Addr: m.Addr, Data: ln.value, Requestor: req, Peek: true, Seq: m.Seq}
		d.relayJourney(fail, m)
		d.send(fail, req, respPriority)
		return
	}
	if m.IsSwap && ln.owner != noNode && ln.owner != req {
		// Forward the losing swap to the owner (the paper's Step 4): if
		// the lock is occupied the owner downgrades and serves the loser a
		// shared copy directly (CopyBack ends the transaction and leaves
		// the value at the home, so subsequent losers fast-fail above);
		// if it was released in the meantime the owner yields ownership
		// and the requester completes like a plain GetX.
		d.Stats.LockPeeks++
		ln.busy = true
		ln.cur = m
		d.txnStarted()
		probe := &Message{Type: MsgLockProbe, Addr: m.Addr, Requestor: req, Operand: m.Operand, LockAddr: m.LockAddr, Seq: m.Seq}
		d.relayJourney(probe, m)
		d.send(probe, ln.owner, respPriority)
		// An owner implies no sharers: no acks needed either way. The
		// eager AcksComplete carries the transaction Seq: if the probe is
		// served with a shared copy instead, this message goes unconsumed,
		// and the Seq match is what keeps the floater from completing a
		// later transaction by the same requester.
		ln.owner = req
		eager := &Message{Type: MsgAcksComplete, Addr: m.Addr, Requestor: req, Seq: m.Seq}
		d.relayJourney(eager, m)
		d.send(eager, req, respPriority)
		return
	}

	ln.busy = true
	ln.cur = m
	d.txnStarted()
	d.ackWait[m.Addr] = d.eng.Now()

	if ln.owner != noNode && ln.owner != req {
		d.Stats.ForwardedGetX++
		fwd := &Message{Type: MsgFwdGetX, Addr: m.Addr, Requestor: req, Data: ln.value, LockAddr: m.LockAddr, Seq: m.Seq}
		d.relayJourney(fwd, m)
		d.send(fwd, ln.owner, respPriority)
	} else {
		grant := &Message{Type: MsgDataExcl, Addr: m.Addr, Data: ln.value, Requestor: req, Peek: m.LockAddr, Seq: m.Seq}
		d.relayJourney(grant, m)
		d.send(grant, req, respPriority)
	}

	for _, s := range sortedSharers(ln.sharers) {
		if s == req {
			continue
		}
		d.invalidateSharer(ln, m.Addr, req, s, false)
	}
	ln.sharers = make(map[noc.NodeID]struct{})
	ln.owner = req

	if len(ln.waiting) == 0 {
		d.finishAcks(ln, m.Addr)
	}
}

// servicePutM absorbs a writeback. Writebacks complete immediately (no
// Unblock): stale ones — the line moved on while the PutM was in flight —
// are acknowledged without touching state.
func (d *Dir) servicePutM(ln *dirLine, m *Message) {
	d.Stats.PutM++
	if ln.owner == m.Requestor {
		ln.value = m.Data
		ln.owner = noNode
	}
	d.send(&Message{Type: MsgWBAck, Addr: m.Addr, Requestor: m.Requestor}, m.Requestor, respPriority)
}

// consumeEarlyRec retires node's early-invalidation record because it is
// about to receive a fresh copy; an unarrived relayed ack turns floating.
func (d *Dir) consumeEarlyRec(ln *dirLine, addr uint64, node noc.NodeID) {
	rec, ok := ln.early[node]
	if !ok {
		return
	}
	delete(ln.early, node)
	if !rec.ackArrived {
		d.floating[rec.token] = struct{}{}
	}
}

// invalidateSharer arranges for sharer s to drop its copy during the
// active transaction: a live early record means a big router already
// invalidated it (its relayed ack — matched by token — either arrived or
// is awaited); otherwise the home sends a direct invalidation.
func (d *Dir) invalidateSharer(ln *dirLine, addr uint64, req, s noc.NodeID, recall bool) {
	if rec, ok := ln.early[s]; ok {
		d.Stats.EarlyRecsUsed++
		delete(ln.early, s)
		if rec.ackArrived {
			d.Stats.EarlyAckBeforeService++
			return // ack already in hand
		}
		d.Stats.EarlyInvSkipped++
		ln.waiting[s] = struct{}{}
		d.waitTokens[invKey{addr, s}] = rec.token
		return
	}
	d.Stats.InvsSent++
	d.invSent[invKey{addr, s}] = d.eng.Now()
	d.send(&Message{Type: MsgInv, Addr: addr, AckTo: d.Node, Requestor: req, Recall: recall}, s, respPriority)
	ln.waiting[s] = struct{}{}
}

// onAck consumes an invalidation acknowledgement. Acks for sharers the
// active transaction is waiting on count toward completion; early-relayed
// acks that beat their FwdGetX to the home are remembered; anything else
// is a duplicate from a doubly-invalidated sharer and is dropped.
func (d *Dir) onAck(ln *dirLine, m *Message) {
	s := m.AckFor
	key := invKey{m.Addr, s}
	if m.EarlyInv {
		// Relayed acks pair with their stop event by token.
		if _, ok := d.floating[m.Token]; ok {
			delete(d.floating, m.Token)
			d.Stats.AcksDropped++
			return
		}
		if ln.busy {
			_, waited := ln.waiting[s]
			tok, tokenWait := d.waitTokens[key]
			// A relayed ack satisfies a token wait with its own token, and
			// may also satisfy a direct-invalidation wait: the early Inv
			// invalidated the very copy the direct Inv targets, and it
			// usually returns by the shorter path — the paper's overlap.
			// The direct ack that arrives later is dropped, and the
			// record (if its request is still queued) is marked acked so
			// it never turns into a phantom floating token.
			allowOverlap := !tokenWait && !d.cfg.DisableAckOverlap
			if waited && (allowOverlap || (tokenWait && tok == m.Token)) {
				delete(ln.waiting, s)
				delete(d.waitTokens, key)
				d.Stats.RelayedAckHits++
				if rec, ok := ln.early[s]; ok && rec.token == m.Token {
					rec.ackArrived = true
				}
				if len(ln.waiting) == 0 {
					d.finishAcks(ln, m.Addr)
				}
				return
			}
		}
		if rec, ok := ln.early[s]; ok && rec.token == m.Token {
			rec.ackArrived = true
			return
		}
		// The relayed ack overtook its FwdGetX; remember it for the
		// service pass.
		ln.early[s] = &earlyRec{token: m.Token, ackArrived: true}
		return
	}
	// Direct acks satisfy direct-invalidation waits (those without a
	// token expectation).
	if ln.busy {
		if _, ok := ln.waiting[s]; ok {
			if _, tokenWait := d.waitTokens[key]; !tokenWait {
				delete(ln.waiting, s)
				if t0, ok := d.invSent[key]; ok {
					if d.rtt != nil {
						d.rtt.RecordRTT(s, d.eng.Now()-t0)
					}
					delete(d.invSent, key)
				}
				if len(ln.waiting) == 0 {
					d.finishAcks(ln, m.Addr)
				}
				return
			}
		}
	}
	d.Stats.AcksDropped++
	delete(d.invSent, key)
}

// finishAcks releases the active GetX requester.
func (d *Dir) finishAcks(ln *dirLine, addr uint64) {
	if t0, ok := d.ackWait[addr]; ok {
		d.Stats.AckWaitCyclesTotal += uint64(d.eng.Now() - t0)
		d.Stats.AckWaitCount++
		delete(d.ackWait, addr)
	}
	if ln.cur == nil {
		return
	}
	switch ln.cur.Type {
	case MsgGetX:
		done := &Message{Type: MsgAcksComplete, Addr: addr, Requestor: ln.cur.Requestor, Seq: ln.cur.Seq}
		d.relayJourney(done, ln.cur)
		d.send(done, ln.cur.Requestor, respPriority)
	case MsgPutRelease:
		// The recall storm is over: acknowledge the releaser and free the
		// line (no unblock follows a release).
		done := &Message{Type: MsgReleaseAck, Addr: addr, Requestor: ln.cur.Requestor, Seq: ln.cur.Seq}
		d.relayJourney(done, ln.cur)
		d.send(done, ln.cur.Requestor, respPriority)
		ln.busy = false
		ln.cur = nil
		d.txnEnded()
		d.drain(ln)
	}
}

// onUnblock ends the active transaction and services the next queued
// request.
func (d *Dir) onUnblock(ln *dirLine, m *Message) {
	if !ln.busy {
		return
	}
	if ln.cur != nil && (m.Requestor != ln.cur.Requestor || m.Seq != ln.cur.Seq) {
		// An unblock for a transaction that already ended must not end
		// the one now active — it may still be collecting acks, and
		// ending it here would strand the wait set.
		d.Stats.StaleUnblocks++
		return
	}
	ln.busy = false
	ln.cur = nil
	d.txnEnded()
	d.drain(ln)
}

// DebugLine renders a line's full directory state for diagnostics.
func (d *Dir) DebugLine(addr uint64) string {
	ln, ok := d.lines[addr]
	if !ok {
		return "no line"
	}
	cur := "nil"
	if ln.cur != nil {
		cur = ln.cur.String()
	}
	return fmt.Sprintf("val=%d owner=%d sharers=%v busy=%v fetching=%v cur=%s waiting=%v pending=%d early=%v floating=%v",
		ln.value, ln.owner, sortedSharers(ln.sharers), ln.busy, ln.fetching, cur,
		sortedSharers(ln.waiting), len(ln.pending), len(ln.early), d.floating)
}

// LineInfo reports a line's directory state for tests and invariant
// checkers: its value, owner (or -1) and sharer set.
func (d *Dir) LineInfo(addr uint64) (value uint64, owner noc.NodeID, sharers []noc.NodeID, busy bool) {
	ln, ok := d.lines[addr]
	if !ok {
		return 0, noNode, nil, false
	}
	for s := range ln.sharers {
		sharers = append(sharers, s)
	}
	return ln.value, ln.owner, sharers, ln.busy
}
