package coherence

import (
	"fmt"

	"inpg/internal/cache"
	"inpg/internal/journey"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// AtomicOp selects the read-modify-write performed by L1.Atomic.
type AtomicOp int

// Atomic operation kinds used by the lock primitives.
const (
	// Swap atomically exchanges the word with operand A (the paper's SWAP
	// instruction / gem5 GetX path).
	Swap AtomicOp = iota
	// FetchAdd atomically adds operand A and returns the old value
	// (ticket and ABQL tail counters).
	FetchAdd
	// CompareSwap writes operand B if the word equals operand A, returning
	// the old value (MCS tail updates).
	CompareSwap
)

// opKind distinguishes the pending CPU operation held in an MSHR entry.
type opKind int

const (
	opLoad opKind = iota
	opStore
	opAtomic
)

// pendingOp is the CPU operation bound to an outstanding transaction.
type pendingOp struct {
	kind    opKind
	atomic  AtomicOp
	a, b    uint64
	loadCB  func(uint64)
	storeCB func()
	rmwCB   func(uint64)
	issued  sim.Cycle
	lock    bool
}

// trState is the transient protocol state of an MSHR entry.
const (
	trIS  = iota // GetS outstanding, waiting for Data
	trIM         // GetX outstanding, waiting for DataExcl + AcksComplete
	trREL        // PutRelease outstanding, waiting for ReleaseAck
)

// L1Stats counts controller activity.
type L1Stats struct {
	Loads, Stores, Atomics uint64
	Hits, Misses           uint64
	InvsReceived           uint64
	StaleInvsIgnored       uint64
	WritebacksSent         uint64
	SwapsFailed            uint64 // atomics completed as failed via shared copies
	ProbesServed           uint64 // losing swaps this owner answered directly
	ProbesFailed           uint64 // probes that missed (lock state changed)
	StaleResponsesIgnored  uint64 // responses whose Seq outlived their transaction
	LockStallCycles        uint64 // cycles lock-flagged ops spent outstanding
	TotalStallCycles       uint64
}

// L1Config configures one private L1 controller.
type L1Config struct {
	Cache      cache.Config
	MSHRs      int
	HitLatency sim.Cycle
}

// DefaultL1Config returns the paper's Table 1 L1: 32 KB, 4-way, 128 B
// blocks, 2-cycle latency, 32 MSHRs.
func DefaultL1Config() L1Config {
	return L1Config{
		Cache:      cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 128},
		MSHRs:      32,
		HitLatency: 2,
	}
}

// L1 is a private, coherent L1 cache controller. The attached core issues
// Load/Store/Atomic operations with completion callbacks; the controller
// exchanges protocol messages with directory controllers through the NoC.
type L1 struct {
	Node  noc.NodeID
	eng   *sim.Engine
	arr   *cache.Cache
	mshr  *cache.MSHR
	ni    *noc.NI
	homes HomeMap
	cfg   L1Config

	// evict holds data of dirty lines between PutM and WBAck so in-flight
	// forwards can still be serviced.
	evict map[uint64]uint64

	// seq stamps each transaction; responses must echo it (Message.Seq).
	seq uint64

	// journey, when armed (SetJourney), tags every request this L1 issues
	// with the active lock-journey record until disarmed at acquire
	// completion. Purely observational: it rides beside Seq and changes
	// no protocol decision.
	journey *journey.Record

	Stats L1Stats
}

// NewL1 builds an L1 controller for node, injecting through ni.
func NewL1(eng *sim.Engine, node noc.NodeID, ni *noc.NI, homes HomeMap, cfg L1Config) (*L1, error) {
	arr, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, fmt.Errorf("l1 node %d: %w", node, err)
	}
	return &L1{
		Node:  node,
		eng:   eng,
		arr:   arr,
		mshr:  cache.NewMSHR(cfg.MSHRs),
		ni:    ni,
		homes: homes,
		cfg:   cfg,
		evict: make(map[uint64]uint64),
	}, nil
}

// Cache exposes the underlying array for invariant checkers and tests.
func (l *L1) Cache() *cache.Cache { return l.arr }

// MSHR exposes the miss status holding register file (diagnostics,
// telemetry occupancy gauges).
func (l *L1) MSHR() *cache.MSHR { return l.mshr }

// nextSeq stamps a new transaction. Starting at 1 keeps the zero value
// distinct from any real transaction.
func (l *L1) nextSeq() uint64 {
	l.seq++
	return l.seq
}

// SetJourney arms (or with nil disarms) lock-journey tagging for this
// L1's future requests; the root package's journey lock decorator calls
// it around each sampled acquisition.
func (l *L1) SetJourney(r *journey.Record) { l.journey = r }

// tagJourney attaches the armed journey record to an outgoing request
// and closes the requester-side stall window at the issue milestone.
func (l *L1) tagJourney(m *Message) {
	if l.journey == nil {
		return
	}
	m.Journey = l.journey
	l.journey.Issue(l.eng.Now())
}

// relayJourney carries an incoming tagged probe's journey onto the
// response it triggers and closes the remote-service window: the cycles
// between the probe's delivery and this send are attributed to the
// directory/owner service stage.
func (l *L1) relayJourney(resp, req *Message) {
	if req.Journey == nil {
		return
	}
	resp.Journey = req.Journey
	req.Journey.Remote(l.eng.Now())
}

// send wraps m in a packet and injects it.
func (l *L1) send(m *Message, dst noc.NodeID, priority int) {
	m.From = l.Node
	l.ni.Inject(packetFor(l.ni, m, dst, priority))
}

// respPriority is the fixed arbitration priority of forward/response
// traffic under OCOR, keeping protocol completion ahead of new requests.
const respPriority = 100

// Load issues a read. cb fires with the value when the access completes.
// lock marks the access as part of a lock-acquire protocol for statistics;
// priority is the OCOR arbitration priority for any request packet sent.
func (l *L1) Load(addr uint64, lock bool, priority int, cb func(uint64)) {
	l.Stats.Loads++
	addr = l.arr.BlockAlign(addr)
	if line := l.arr.Lookup(addr); line != nil {
		l.Stats.Hits++
		v := line.Data
		l.eng.Schedule(l.cfg.HitLatency-1, func() { cb(v) })
		return
	}
	l.Stats.Misses++
	e := l.mshr.Allocate(addr)
	if e == nil {
		// One outstanding op per core keeps this unreachable in practice;
		// retry next cycle if a torture test ever gets here.
		l.eng.Schedule(0, func() { l.Load(addr, lock, priority, cb) })
		return
	}
	e.State = trIS
	e.Seq = l.nextSeq()
	e.Aux = &pendingOp{kind: opLoad, loadCB: cb, issued: l.eng.Now(), lock: lock}
	m := &Message{Type: MsgGetS, Addr: addr, Requestor: l.Node, ToDir: true, LockAddr: lock, Seq: e.Seq}
	l.tagJourney(m)
	l.send(m, l.homes.Home(addr), priority)
}

// Store issues a write. cb fires when the write is globally performed.
func (l *L1) Store(addr uint64, val uint64, lock bool, priority int, cb func()) {
	l.Stats.Stores++
	addr = l.arr.BlockAlign(addr)
	if line := l.arr.Lookup(addr); line != nil {
		switch line.State {
		case cache.Modified, cache.Exclusive:
			l.Stats.Hits++
			line.State = cache.Modified
			line.Data = val
			l.eng.Schedule(l.cfg.HitLatency-1, func() { cb() })
			return
		}
	}
	l.Stats.Misses++
	l.issueGetX(addr, &pendingOp{kind: opStore, a: val, storeCB: cb, issued: l.eng.Now(), lock: lock}, false, priority)
}

// StoreRelease performs a synchronization store: the value is written
// through to the home node (the paper's Step 4 release), which recalls
// every cached copy of the line and acknowledges when the invalidation
// storm completes. The local copy is dropped — the released value lives
// at the home.
func (l *L1) StoreRelease(addr uint64, val uint64, lock bool, priority int, cb func()) {
	l.Stats.Stores++
	addr = l.arr.BlockAlign(addr)
	l.arr.Invalidate(addr)
	e := l.mshr.Allocate(addr)
	if e == nil {
		l.eng.Schedule(0, func() { l.StoreRelease(addr, val, lock, priority, cb) })
		return
	}
	e.State = trREL
	e.Seq = l.nextSeq()
	e.Aux = &pendingOp{kind: opStore, a: val, storeCB: cb, issued: l.eng.Now(), lock: lock}
	m := &Message{Type: MsgPutRelease, Addr: addr, Requestor: l.Node, Data: val, ToDir: true, LockAddr: lock, Seq: e.Seq}
	l.tagJourney(m)
	l.send(m, l.homes.Home(addr), priority)
}

// Atomic issues a read-modify-write. All atomics are lock operations: the
// GetX they issue is flagged LockAddr so big routers can key their barrier
// tables on it. cb fires with the pre-operation value.
func (l *L1) Atomic(addr uint64, op AtomicOp, a, b uint64, priority int, cb func(old uint64)) {
	l.Stats.Atomics++
	addr = l.arr.BlockAlign(addr)
	if line := l.arr.Lookup(addr); line != nil {
		switch line.State {
		case cache.Modified, cache.Exclusive:
			l.Stats.Hits++
			line.State = cache.Modified
			old := line.Data
			line.Data = applyAtomic(op, old, a, b)
			l.eng.Schedule(l.cfg.HitLatency-1, func() { cb(old) })
			return
		}
	}
	l.Stats.Misses++
	l.issueGetX(addr, &pendingOp{kind: opAtomic, atomic: op, a: a, b: b, rmwCB: cb, issued: l.eng.Now(), lock: true}, true, priority)
}

// issueGetX allocates a transaction and sends the exclusive request.
func (l *L1) issueGetX(addr uint64, op *pendingOp, lockAddr bool, priority int) {
	e := l.mshr.Allocate(addr)
	if e == nil {
		l.eng.Schedule(0, func() { l.issueGetX(addr, op, lockAddr, priority) })
		return
	}
	e.State = trIM
	e.Seq = l.nextSeq()
	e.Aux = op
	m := &Message{Type: MsgGetX, Addr: addr, Requestor: l.Node, ToDir: true, LockAddr: lockAddr, Seq: e.Seq}
	if op.kind == opAtomic && op.atomic == Swap {
		m.IsSwap = true
		m.Operand = op.a
	}
	l.tagJourney(m)
	l.send(m, l.homes.Home(addr), priority)
}

// applyAtomic computes the post-operation value.
func applyAtomic(op AtomicOp, old, a, b uint64) uint64 {
	switch op {
	case Swap:
		return a
	case FetchAdd:
		return old + a
	case CompareSwap:
		if old == a {
			return b
		}
		return old
	}
	return old
}

// Receive handles a coherence message delivered to this L1.
func (l *L1) Receive(now sim.Cycle, m *Message) {
	switch m.Type {
	case MsgData:
		l.onData(now, m)
	case MsgDataExcl:
		l.onDataExcl(now, m)
	case MsgAcksComplete:
		l.onAcksComplete(now, m)
	case MsgInv:
		l.onInv(now, m)
	case MsgFwdGetS:
		l.onFwdGetS(m)
	case MsgFwdGetX:
		l.onFwdGetX(m)
	case MsgLockProbe:
		l.onLockProbe(m)
	case MsgWBAck:
		delete(l.evict, m.Addr)
	case MsgReleaseAck:
		l.onReleaseAck(now, m)
	case MsgInvAck:
		// A stray relayed ack (its barrier expired mid-flight); harmless.
		l.Stats.StaleInvsIgnored++
	default:
		l.eng.Fail(&ProtocolError{Node: int(l.Node), Component: "l1",
			Detail: fmt.Sprintf("unexpected %v", m)})
	}
}

// onData completes a GetS transaction, or — for an outstanding SWAP — a
// failed-swap downgrade: the loser receives a valid shared copy whose
// value equals its operand, so the swap completes as a no-op returning
// the observed (occupied) value, exactly the paper's losing-thread flow.
func (l *L1) onData(now sim.Cycle, m *Message) {
	e := l.mshr.Get(m.Addr)
	if e == nil {
		return // stale response
	}
	if m.Seq != e.Seq {
		l.Stats.StaleResponsesIgnored++
		return // response to an earlier transaction on this address
	}
	op := e.Aux.(*pendingOp)
	switch e.State {
	case trIS:
		if !e.Invalidated {
			st := cache.Shared
			if m.Excl {
				st = cache.Exclusive
			}
			l.insert(m.Addr, st, m.Data)
		}
		l.finishStall(now, op)
		l.mshr.Free(m.Addr)
		if m.Excl {
			// Exclusive grants block the home until this unblock.
			l.send(&Message{Type: MsgUnblock, Addr: m.Addr, Requestor: l.Node, ToDir: true, Seq: e.Seq}, l.homes.Home(m.Addr), respPriority)
		}
		op.loadCB(m.Data)
	case trIM:
		if op.kind != opAtomic || op.atomic != Swap {
			l.eng.Fail(&ProtocolError{Node: int(l.Node), Component: "l1",
				Detail: fmt.Sprintf("shared data for non-swap exclusive request at %#x", m.Addr)})
			return
		}
		l.Stats.SwapsFailed++
		if !e.Invalidated {
			l.insert(m.Addr, cache.Shared, m.Data)
		}
		l.finishStall(now, op)
		l.mshr.Free(m.Addr)
		op.rmwCB(m.Data)
	}
}

// onDataExcl records arrival of data+ownership for a GetX transaction.
func (l *L1) onDataExcl(now sim.Cycle, m *Message) {
	e := l.mshr.Get(m.Addr)
	if e == nil || e.State != trIM {
		return
	}
	if m.Seq != e.Seq {
		l.Stats.StaleResponsesIgnored++
		return
	}
	e.DataReady = true
	e.PendingData = m.Data
	l.tryCompleteX(now, m.Addr, e)
}

// onAcksComplete records that the home collected every invalidation ack.
func (l *L1) onAcksComplete(now sim.Cycle, m *Message) {
	e := l.mshr.Get(m.Addr)
	if e == nil || e.State != trIM {
		return
	}
	if m.Seq != e.Seq {
		// A floating AcksComplete — e.g. from a lock-probe fast path whose
		// requester completed via a shared copy — must never satisfy a
		// later transaction's ack wait: consuming it would unblock the
		// home while it is still collecting invalidation acks and strand
		// the wait forever.
		l.Stats.StaleResponsesIgnored++
		return
	}
	e.AcksDone = true
	l.tryCompleteX(now, m.Addr, e)
}

// tryCompleteX finishes a GetX transaction once both the data and the
// ack-completion have arrived: the line becomes Modified, the pending
// operation executes atomically, the home is unblocked.
func (l *L1) tryCompleteX(now sim.Cycle, addr uint64, e *cache.MSHREntry) {
	if !e.DataReady || !e.AcksDone {
		return
	}
	val := e.PendingData
	// A surviving local copy (upgrade path) is always current in an
	// invalidation protocol; prefer it over the (possibly stale when the
	// previous owner forwarded data directly) home value.
	if line := l.arr.Peek(addr); line != nil {
		val = line.Data
	}
	op := e.Aux.(*pendingOp)
	old := val
	switch op.kind {
	case opStore:
		l.insert(addr, cache.Modified, op.a)
	case opAtomic:
		l.insert(addr, cache.Modified, applyAtomic(op.atomic, old, op.a, op.b))
	default:
		l.eng.Fail(&ProtocolError{Node: int(l.Node), Component: "l1",
			Detail: fmt.Sprintf("load operation bound to exclusive transaction at %#x", addr)})
		return
	}
	l.finishStall(now, op)
	l.mshr.Free(addr)
	l.send(&Message{Type: MsgUnblock, Addr: addr, Requestor: l.Node, ToDir: true, Seq: e.Seq}, l.homes.Home(addr), respPriority)
	switch op.kind {
	case opStore:
		op.storeCB()
	case opAtomic:
		op.rmwCB(old)
	}
}

// finishStall accounts outstanding-time statistics for a completed op. Every
// miss-path completion is liveness progress: a core whose transaction is
// stuck behind a dead link or a wedged home stops completing, which is what
// the watchdog watches for.
func (l *L1) finishStall(now sim.Cycle, op *pendingOp) {
	l.eng.NoteProgress()
	d := uint64(now - op.issued)
	l.Stats.TotalStallCycles += d
	if op.lock {
		l.Stats.LockStallCycles += d
	}
}

// insert fills the line, sending a writeback for any dirty victim.
func (l *L1) insert(addr uint64, st cache.State, data uint64) {
	_, ev := l.arr.Insert(addr, st, data)
	if ev == nil {
		return
	}
	switch ev.State {
	case cache.Modified, cache.Owned, cache.Exclusive:
		l.Stats.WritebacksSent++
		l.evict[ev.Addr] = ev.Data
		l.send(&Message{Type: MsgPutM, Addr: ev.Addr, Requestor: l.Node, Data: ev.Data, ToDir: true}, l.homes.Home(ev.Addr), respPriority)
	}
}

// onInv invalidates a shared copy and acknowledges to m.AckTo. Invalidation
// of an owned (M/E/O) line can only be a stale early invalidation that
// raced with this node winning the line; it is acknowledged but ignored.
func (l *L1) onInv(now sim.Cycle, m *Message) {
	l.Stats.InvsReceived++
	if e := l.mshr.Get(m.Addr); e != nil {
		// The invalidation raced with an in-flight fill: the shared copy
		// about to arrive is already stale and must not be installed.
		e.Invalidated = true
	}
	if line := l.arr.Peek(m.Addr); line != nil {
		switch {
		case m.Recall:
			// A release write-through supersedes any cached copy,
			// including dirty ones.
			line.State = cache.Invalid
		case line.State == cache.Shared:
			line.State = cache.Invalid
		default:
			l.Stats.StaleInvsIgnored++
		}
	}
	l.sendInvAck(m)
}

// onReleaseAck completes a synchronization store: the home holds the
// released value and every stale copy has been recalled.
func (l *L1) onReleaseAck(now sim.Cycle, m *Message) {
	e := l.mshr.Get(m.Addr)
	if e == nil || e.State != trREL {
		return
	}
	if m.Seq != e.Seq {
		l.Stats.StaleResponsesIgnored++
		return
	}
	op := e.Aux.(*pendingOp)
	l.finishStall(now, op)
	l.mshr.Free(m.Addr)
	op.storeCB()
}

// sendInvAck acknowledges an invalidation to whoever generated it.
func (l *L1) sendInvAck(m *Message) {
	ack := &Message{Type: MsgInvAck, Addr: m.Addr, AckFor: l.Node, EarlyInv: m.EarlyInv, ToDir: !m.EarlyInv, Token: m.Token}
	l.send(ack, m.AckTo, respPriority)
}

// onFwdGetS services a read on a line this node owns: send a shared copy
// to the requester, downgrade to Shared and copy the dirty value back to
// the home so it can answer subsequent readers directly.
func (l *L1) onFwdGetS(m *Message) {
	data, ok := l.lineOrEvictData(m.Addr)
	if !ok {
		// Lost the line entirely (should not happen under a blocking
		// directory); fall back to letting the home's value stand.
		data = m.Data
	}
	if line := l.arr.Peek(m.Addr); line != nil {
		line.State = cache.Shared
	}
	resp := &Message{Type: MsgData, Addr: m.Addr, Data: data, Requestor: m.Requestor, Peek: m.LockAddr, Seq: m.Seq}
	l.relayJourney(resp, m)
	l.send(resp, m.Requestor, respPriority)
	l.send(&Message{Type: MsgCopyBack, Addr: m.Addr, Data: data, Requestor: m.Requestor, ToDir: true, Seq: m.Seq}, l.homes.Home(m.Addr), respPriority)
}

// onLockProbe arbitrates a losing SWAP at the owner: if the swap would be
// a no-op (the lock is occupied with the very value the loser is writing),
// the owner downgrades to Shared, serves the loser a valid copy directly
// and copies the value back to the home, which unblocks the line and
// fast-fails subsequent losers itself; if the lock state changed, the
// owner yields ownership and the requester completes like a plain GetX.
func (l *L1) onLockProbe(m *Message) {
	home := l.homes.Home(m.Addr)
	data, ok := l.lineOrEvictData(m.Addr)
	if ok && data == m.Operand {
		l.Stats.ProbesServed++
		if line := l.arr.Peek(m.Addr); line != nil {
			line.State = cache.Shared
		}
		resp := &Message{Type: MsgData, Addr: m.Addr, Data: data, Requestor: m.Requestor, Peek: true, Seq: m.Seq}
		l.relayJourney(resp, m)
		l.send(resp, m.Requestor, respPriority)
		l.send(&Message{Type: MsgCopyBack, Addr: m.Addr, Data: data, Requestor: m.Requestor, ToDir: true, Seq: m.Seq}, home, respPriority)
		return
	}
	l.Stats.ProbesFailed++
	if !ok {
		data = m.Data
	}
	l.arr.Invalidate(m.Addr)
	resp := &Message{Type: MsgDataExcl, Addr: m.Addr, Data: data, Requestor: m.Requestor, Peek: m.LockAddr, Seq: m.Seq}
	l.relayJourney(resp, m)
	l.send(resp, m.Requestor, respPriority)
}

// onFwdGetX yields ownership: send data+ownership to the requester and
// drop the local copy.
func (l *L1) onFwdGetX(m *Message) {
	data, ok := l.lineOrEvictData(m.Addr)
	if !ok {
		data = m.Data
	}
	l.arr.Invalidate(m.Addr)
	resp := &Message{Type: MsgDataExcl, Addr: m.Addr, Data: data, Requestor: m.Requestor, Peek: m.LockAddr, Seq: m.Seq}
	l.relayJourney(resp, m)
	l.send(resp, m.Requestor, respPriority)
}

// lineOrEvictData fetches the current value from the live line or the
// writeback buffer.
func (l *L1) lineOrEvictData(addr uint64) (uint64, bool) {
	if line := l.arr.Peek(addr); line != nil {
		return line.Data, true
	}
	if v, ok := l.evict[addr]; ok {
		return v, true
	}
	return 0, false
}
