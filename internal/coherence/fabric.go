package coherence

import (
	"fmt"

	"inpg/internal/cache"
	"inpg/internal/memory"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// Fabric assembles the coherent memory system: one L1 controller and one
// directory/L2-bank controller per mesh node, a memory-controller system,
// and the per-node sink demux that routes delivered packets to the right
// controller. It is the substrate the CPU/lock layers and the iNPG big
// routers plug into.
type Fabric struct {
	Eng   *sim.Engine
	Net   *noc.Network
	Homes HomeMap
	L1s   []*L1
	Dirs  []*Dir
	Mem   *memory.System
}

// FabricConfig collects the per-component configurations.
type FabricConfig struct {
	Net noc.Config
	L1  L1Config
	Dir DirConfig
	Mem memory.Config
}

// DefaultFabricConfig returns the paper's Table 1 platform.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{
		Net: noc.DefaultConfig(),
		L1:  DefaultL1Config(),
		Dir: DefaultDirConfig(),
		Mem: memory.DefaultConfig(),
	}
}

// NewFabric builds and wires the full memory system onto eng.
func NewFabric(eng *sim.Engine, cfg FabricConfig) (*Fabric, error) {
	net, err := noc.New(eng, cfg.Net)
	if err != nil {
		return nil, err
	}
	nodes := cfg.Net.Mesh.Nodes()
	mem, err := memory.NewSystem(eng, cfg.Mem, cfg.L1.Cache.BlockBytes)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		Eng:   eng,
		Net:   net,
		Homes: HomeMap{Nodes: nodes, BlockBytes: cfg.L1.Cache.BlockBytes},
		Mem:   mem,
	}
	for id := 0; id < nodes; id++ {
		ni := net.NI(noc.NodeID(id))
		l1, err := NewL1(eng, noc.NodeID(id), ni, f.Homes, cfg.L1)
		if err != nil {
			return nil, err
		}
		dir := NewDir(eng, noc.NodeID(id), ni, mem, cfg.Dir)
		f.L1s = append(f.L1s, l1)
		f.Dirs = append(f.Dirs, dir)
		ni.SetSink(demux{eng, l1, dir})
	}
	return f, nil
}

// demux routes delivered coherence packets to the L1 or the directory.
type demux struct {
	eng *sim.Engine
	l1  *L1
	dir *Dir
}

// Receive implements noc.Sink.
func (d demux) Receive(now sim.Cycle, p *noc.Packet) {
	m, ok := p.Payload.(*Message)
	if !ok {
		d.eng.Fail(&ProtocolError{Node: int(d.l1.Node), Component: "sink",
			Detail: fmt.Sprintf("non-protocol packet %v delivered", p)})
		return
	}
	if m.ToDir {
		d.dir.Receive(now, m)
	} else {
		d.l1.Receive(now, m)
	}
}

// SetRTTRecorder installs the invalidation round-trip sampler on every
// directory.
func (f *Fabric) SetRTTRecorder(r RTTRecorder) {
	for _, d := range f.Dirs {
		d.SetRTTRecorder(r)
	}
}

// CheckInvariants validates single-writer/value coherence across all L1s
// for the given addresses, returning a descriptive error on violation.
// Lines mid-transaction at a busy home are skipped: transient states may
// legitimately disagree until the transaction completes.
func (f *Fabric) CheckInvariants(addrs []uint64) error {
	for _, addr := range addrs {
		home := f.Dirs[f.Homes.Home(addr)]
		_, _, _, busy := home.LineInfo(addr)
		if busy {
			continue
		}
		owners := 0
		var ownerVal uint64
		var shared []*cache.Line
		for _, l1 := range f.L1s {
			ln := l1.Cache().Peek(addr)
			if ln == nil {
				continue
			}
			switch ln.State {
			case cache.Modified, cache.Exclusive, cache.Owned:
				owners++
				ownerVal = ln.Data
			case cache.Shared:
				shared = append(shared, ln)
			}
		}
		if owners > 1 {
			return fmt.Errorf("addr %#x: %d owners", addr, owners)
		}
		if owners == 1 {
			for _, s := range shared {
				if s.Data != ownerVal {
					return fmt.Errorf("addr %#x: shared copy %d != owner value %d", addr, s.Data, ownerVal)
				}
			}
		}
	}
	return nil
}

// Quiesce runs the engine until the network drains and no directory
// transaction is outstanding, up to maxCycles.
func (f *Fabric) Quiesce(maxCycles sim.Cycle) error {
	_, err := f.Eng.Run(maxCycles, func() bool { return f.Net.InFlight() == 0 })
	return err
}

// Settle runs until both the network and the engine's event queue are
// empty — including controller pipeline stages (directory handling is
// scheduled behind the bank latency) and the responses they trigger. It is
// only meaningful when no threads are running (protocol-level tests).
func (f *Fabric) Settle(maxCycles sim.Cycle) error {
	_, err := f.Eng.Run(maxCycles, func() bool {
		return f.Net.InFlight() == 0 && f.Eng.PendingEvents() == 0
	})
	return err
}
