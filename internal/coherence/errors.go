package coherence

import "fmt"

// ProtocolError reports a coherence protocol violation — a message a
// controller cannot legally receive in its current state, or a non-protocol
// packet delivered to a coherence sink. Controllers report it through
// sim.Engine.Fail instead of panicking, so a violation (reachable under
// fault injection or fuzzing) surfaces as a structured error from Run with
// the simulation state still inspectable for diagnostics.
type ProtocolError struct {
	Node      int    // node the violation was observed at
	Component string // "l1", "dir" or "sink"
	Detail    string // what arrived and why it is illegal
}

// Error implements error.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("coherence: %s %d: %s", e.Component, e.Node, e.Detail)
}
