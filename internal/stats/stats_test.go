package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"inpg/internal/cpu"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []uint64{0, 3, 7, 12, 12, 97} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 97 {
		t.Fatalf("max = %d", h.Max())
	}
	wantMean := float64(0+3+7+12+12+97) / 6
	if h.Mean() != wantMean {
		t.Fatalf("mean = %f, want %f", h.Mean(), wantMean)
	}
	bins := h.Bins()
	// bins: [0,5)→2, [5,10)→1, [10,15)→2, [95,100)→1
	if len(bins) != 4 || bins[0][1] != 2 || bins[1][1] != 1 || bins[2][1] != 2 || bins[3][0] != 95 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestHistogramZeroBinWidth(t *testing.T) {
	h := NewHistogram(0)
	h.Add(3)
	if h.BinWidth != 1 || h.Count() != 1 {
		t.Fatal("zero bin width must default to 1")
	}
}

// TestHistogramConservation property-checks that bin counts always sum to
// the sample count and the mean stays within [0, max].
func TestHistogramConservation(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(7)
		for _, v := range vals {
			h.Add(uint64(v))
		}
		var sum uint64
		for _, b := range h.Bins() {
			sum += b[1]
		}
		if sum != uint64(len(vals)) {
			return false
		}
		return h.Mean() <= float64(h.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(10)
	h.Add(5)
	h.Add(15)
	h.Add(15)
	out := h.Render(10)
	if !strings.Contains(out, "#") || !strings.Contains(out, "10-19") {
		t.Fatalf("render output unexpected:\n%s", out)
	}
}

func TestRTTCollector(t *testing.T) {
	c := NewRTTCollector()
	c.RecordRTT(3, 10)
	c.RecordRTT(3, 20)
	c.RecordRTT(7, 40)
	if c.Samples() != 3 {
		t.Fatalf("samples = %d", c.Samples())
	}
	if c.CoreMean(3) != 15 {
		t.Fatalf("core 3 mean = %f, want 15", c.CoreMean(3))
	}
	if c.CoreMean(99) != 0 {
		t.Fatal("unknown core must report 0")
	}
	if c.Mean() != (10+20+40)/3.0 {
		t.Fatalf("mean = %f", c.Mean())
	}
	if c.Max() != 40 {
		t.Fatalf("max = %d", c.Max())
	}
}

func TestRTTCoreMap(t *testing.T) {
	c := NewRTTCollector()
	m := noc.Mesh{Width: 2, Height: 2}
	c.RecordRTT(m.ID(1, 0), 8)
	out := c.CoreMap(m)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("map rows = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "8.0") {
		t.Fatalf("row 0 missing sample: %q", lines[0])
	}
}

func TestTimelineWindowBreakdown(t *testing.T) {
	tl := &Timeline{}
	// Thread 0: parallel 0-100, coh 100-150, cse 150-200, parallel 200-...
	ev := func(cyc sim.Cycle, from, to cpu.Phase) PhaseEvent {
		return PhaseEvent{Thread: 0, Cycle: cyc, From: from, To: to}
	}
	tl.Events = []PhaseEvent{
		ev(0, cpu.PhaseInit, cpu.PhaseParallel),
		ev(100, cpu.PhaseParallel, cpu.PhaseCOH),
		ev(150, cpu.PhaseCOH, cpu.PhaseCSE),
		ev(200, cpu.PhaseCSE, cpu.PhaseParallel),
	}
	par, coh, cse, cs := tl.WindowBreakdown(0, 300, 1)
	if par != 100+100 || coh != 50 || cse != 50 || cs != 1 {
		t.Fatalf("breakdown = %d %d %d cs=%d", par, coh, cse, cs)
	}
	// Clipped window.
	par, coh, cse, cs = tl.WindowBreakdown(120, 180, 1)
	if par != 0 || coh != 30 || cse != 30 || cs != 0 {
		t.Fatalf("clipped breakdown = %d %d %d cs=%d", par, coh, cse, cs)
	}
}

func TestTimelineSleepCountsAsCOH(t *testing.T) {
	tl := &Timeline{}
	tl.Events = []PhaseEvent{
		{Thread: 0, Cycle: 0, From: cpu.PhaseInit, To: cpu.PhaseCOH},
		{Thread: 0, Cycle: 10, From: cpu.PhaseCOH, To: cpu.PhaseSleep},
		{Thread: 0, Cycle: 60, From: cpu.PhaseSleep, To: cpu.PhaseCOH},
	}
	_, coh, _, _ := tl.WindowBreakdown(0, 100, 1)
	if coh != 100 {
		t.Fatalf("coh = %d, want 100 (sleep folds into COH)", coh)
	}
}

func TestTimelineMaxThreadFilter(t *testing.T) {
	tl := &Timeline{MaxThread: 2}
	hook := tl.Hook()
	eng := sim.NewEngine(1)
	for id := 0; id < 4; id++ {
		th := cpu.New(eng, id, nil, nil, cpu.Program{}, 1)
		hook(th, 5, cpu.PhaseInit, cpu.PhaseParallel)
	}
	if len(tl.Events) != 2 {
		t.Fatalf("recorded %d events, want 2 (threads 0,1)", len(tl.Events))
	}
}

// A single pathological sample — a watchdog-scale cycle count — must fold
// into the overflow bin instead of allocating v/BinWidth slots.
func TestHistogramPathologicalSampleCapped(t *testing.T) {
	h := NewHistogram(5)
	h.Add(3)
	h.Add(1 << 40) // would be ~2^37 bins uncapped
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if len(h.bins) > DefaultMaxBins {
		t.Fatalf("bins grew to %d despite cap %d", len(h.bins), DefaultMaxBins)
	}
	if h.Count() != 2 || h.Max() != 1<<40 || h.Sum() != 3+1<<40 {
		t.Fatalf("count/max/sum wrong: %d %d %d", h.Count(), h.Max(), h.Sum())
	}
	bins := h.Bins()
	last := bins[len(bins)-1]
	if last[0] != uint64(DefaultMaxBins)*5 || last[1] != 1 {
		t.Fatalf("overflow bin = %v, want edge %d count 1", last, DefaultMaxBins*5)
	}
	// Conservation: bin counts still sum to the sample count.
	var sum uint64
	for _, b := range bins {
		sum += b[1]
	}
	if sum != h.Count() {
		t.Fatalf("bin sum %d != count %d", sum, h.Count())
	}
	// A percentile rank landing in the overflow bin reports the true max.
	if p := h.Percentile(1.0); p != 1<<40 {
		t.Fatalf("p100 = %d, want the max", p)
	}
}

func TestHistogramExplicitMaxBins(t *testing.T) {
	h := NewHistogram(1)
	h.MaxBins = 4
	for v := uint64(0); v < 10; v++ {
		h.Add(v)
	}
	if len(h.bins) != 4 {
		t.Fatalf("bins = %d, want 4", len(h.bins))
	}
	if h.Overflow() != 6 {
		t.Fatalf("overflow = %d, want 6 (samples 4..9)", h.Overflow())
	}
}

// Percentile must use the ceiling rank: with 150 unit-bin samples, p99
// targets the ceil(0.99*150)=149th ordered sample, not the truncated
// 148th. Bin width 1 makes the expected edges exact.
func TestHistogramPercentileExactRank(t *testing.T) {
	h := NewHistogram(1)
	for v := uint64(0); v < 150; v++ {
		h.Add(v)
	}
	// ceil(0.99*150) = 149 → 149th ordered sample is value 148, in bin
	// [148,149) whose reported upper edge is 148.
	if p := h.Percentile(0.99); p != 148 {
		t.Fatalf("p99 over 150 samples = %d, want 148", p)
	}
	// ceil(0.5*150) = 75 → value 74.
	if p := h.Percentile(0.50); p != 74 {
		t.Fatalf("p50 over 150 samples = %d, want 74", p)
	}
	// A two-sample histogram: p=0.51 must already select the second sample.
	h2 := NewHistogram(1)
	h2.Add(10)
	h2.Add(20)
	if p := h2.Percentile(0.51); p != 20 {
		t.Fatalf("p51 of {10,20} = %d, want 20", p)
	}
	if p := h2.Percentile(0.50); p != 10 {
		t.Fatalf("p50 of {10,20} = %d, want 10", p)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(1)
	for v := uint64(1); v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(0.50); p < 49 || p > 51 {
		t.Fatalf("p50 = %d, want ≈50", p)
	}
	if p := h.Percentile(0.95); p < 94 || p > 96 {
		t.Fatalf("p95 = %d, want ≈95", p)
	}
	if p := h.Percentile(1.0); p < 99 {
		t.Fatalf("p100 = %d, want ≥99", p)
	}
	empty := NewHistogram(5)
	if empty.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile must be 0")
	}
}
