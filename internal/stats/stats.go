// Package stats provides the measurement instruments of the evaluation:
// histograms, per-core invalidation round-trip samplers (Figure 10), and
// per-thread phase timelines (Figure 9).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"inpg/internal/cpu"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// DefaultMaxBins bounds a histogram's bin array. One pathological sample —
// a watchdog-scale cycle count landing in an RTT histogram — must not
// allocate v/BinWidth slots; anything at or past the cap is folded into a
// single overflow bin instead.
const DefaultMaxBins = 1 << 12

// Histogram is a fixed-bin-width histogram of cycle counts.
type Histogram struct {
	BinWidth uint64
	// MaxBins caps len(bins); samples at or beyond MaxBins*BinWidth land
	// in the overflow bin. 0 selects DefaultMaxBins.
	MaxBins  int
	bins     []uint64
	overflow uint64 // samples >= MaxBins*BinWidth
	count    uint64
	sum      uint64
	max      uint64
}

// NewHistogram builds a histogram with the given bin width.
func NewHistogram(binWidth uint64) *Histogram {
	if binWidth == 0 {
		binWidth = 1
	}
	return &Histogram{BinWidth: binWidth}
}

// maxBins resolves the bin cap.
func (h *Histogram) maxBins() int {
	if h.MaxBins > 0 {
		return h.MaxBins
	}
	return DefaultMaxBins
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	b := int(v / h.BinWidth)
	if cap := h.maxBins(); b >= cap {
		h.overflow++
		return
	}
	for len(h.bins) <= b {
		h.bins = append(h.bins, 0)
	}
	h.bins[b]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Overflow returns the number of samples folded into the overflow bin.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns the smallest bin upper edge below which at least
// fraction p (0 < p ≤ 1) of the samples fall. With no samples it returns 0.
//
// The rank is the ceiling of p*count: p=0.99 over 150 samples targets the
// 149th ordered sample, not the 148th a truncating conversion would pick.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return uint64(i+1)*h.BinWidth - 1
		}
	}
	// The rank lands in the overflow bin (or numeric slack left the
	// cumulative count short): the best bound we hold is the true maximum.
	return h.max
}

// Bins returns (low-edge, count) pairs for non-empty bins in order,
// with any overflow samples reported as one final bin at the cap edge.
func (h *Histogram) Bins() [][2]uint64 {
	var out [][2]uint64
	for i, c := range h.bins {
		if c > 0 {
			out = append(out, [2]uint64{uint64(i) * h.BinWidth, c})
		}
	}
	if h.overflow > 0 {
		out = append(out, [2]uint64{uint64(h.maxBins()) * h.BinWidth, h.overflow})
	}
	return out
}

// Render draws a paper-style ASCII histogram.
func (h *Histogram) Render(width int) string {
	var sb strings.Builder
	var peak uint64
	for _, b := range h.Bins() {
		if b[1] > peak {
			peak = b[1]
		}
	}
	for _, b := range h.Bins() {
		n := int(b[1] * uint64(width) / peak)
		fmt.Fprintf(&sb, "%6d-%-6d |%s %d\n", b[0], b[0]+h.BinWidth-1, strings.Repeat("#", n), b[1])
	}
	return sb.String()
}

// RTTCollector aggregates invalidation–acknowledgement round trips per
// issuing core and overall; it implements coherence.RTTRecorder for both
// directories and big routers.
type RTTCollector struct {
	perCore map[noc.NodeID]*meanAgg
	Hist    *Histogram
}

type meanAgg struct {
	sum   uint64
	count uint64
}

// NewRTTCollector builds a collector with 5-cycle histogram bins.
func NewRTTCollector() *RTTCollector {
	return &RTTCollector{perCore: make(map[noc.NodeID]*meanAgg), Hist: NewHistogram(5)}
}

// RecordRTT implements coherence.RTTRecorder.
func (c *RTTCollector) RecordRTT(core noc.NodeID, rtt sim.Cycle) {
	a := c.perCore[core]
	if a == nil {
		a = &meanAgg{}
		c.perCore[core] = a
	}
	a.sum += uint64(rtt)
	a.count++
	c.Hist.Add(uint64(rtt))
}

// Mean returns the overall mean round trip.
func (c *RTTCollector) Mean() float64 { return c.Hist.Mean() }

// Max returns the largest observed round trip.
func (c *RTTCollector) Max() uint64 { return c.Hist.Max() }

// Samples returns the number of round trips recorded.
func (c *RTTCollector) Samples() uint64 { return c.Hist.Count() }

// CoreMean returns the mean round trip for one core (0 if none).
func (c *RTTCollector) CoreMean(core noc.NodeID) float64 {
	a := c.perCore[core]
	if a == nil || a.count == 0 {
		return 0
	}
	return float64(a.sum) / float64(a.count)
}

// CoreMap renders the per-core mean RTT as a W×H grid (Figure 10a/10c).
func (c *RTTCollector) CoreMap(m noc.Mesh) string {
	var sb strings.Builder
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			fmt.Fprintf(&sb, "%6.1f", c.CoreMean(m.ID(x, y)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PhaseEvent is one thread phase transition.
type PhaseEvent struct {
	Thread int
	Cycle  sim.Cycle
	From   cpu.Phase
	To     cpu.Phase
}

// Timeline records phase transitions for a set of threads (Figure 9).
type Timeline struct {
	Events []PhaseEvent
	// MaxThread limits recording to threads with ID < MaxThread (the
	// paper profiles the first 8); 0 records all.
	MaxThread int
}

// Hook returns a cpu.Thread PhaseHook feeding this timeline.
func (tl *Timeline) Hook() func(t *cpu.Thread, now sim.Cycle, from, to cpu.Phase) {
	return func(t *cpu.Thread, now sim.Cycle, from, to cpu.Phase) {
		if tl.MaxThread > 0 && t.ID >= tl.MaxThread {
			return
		}
		tl.Events = append(tl.Events, PhaseEvent{Thread: t.ID, Cycle: now, From: from, To: to})
	}
}

// WindowBreakdown sums per-phase cycles inside [start, end) across the
// recorded threads and counts critical sections completed in the window
// (CSE→ phase exits).
func (tl *Timeline) WindowBreakdown(start, end sim.Cycle, threads int) (parallel, coh, cse uint64, csDone int) {
	// Reconstruct per-thread phase intervals from events.
	perThread := make(map[int][]PhaseEvent)
	for _, e := range tl.Events {
		perThread[e.Thread] = append(perThread[e.Thread], e)
	}
	for id := 0; id < threads; id++ {
		evs := perThread[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
		cur := cpu.PhaseInit
		curStart := sim.Cycle(0)
		account := func(p cpu.Phase, a, b sim.Cycle) {
			lo, hi := a, b
			if lo < start {
				lo = start
			}
			if hi > end {
				hi = end
			}
			if hi <= lo {
				return
			}
			d := uint64(hi - lo)
			switch p {
			case cpu.PhaseParallel:
				parallel += d
			case cpu.PhaseCOH, cpu.PhaseSleep:
				coh += d
			case cpu.PhaseCSE:
				cse += d
			}
		}
		for _, e := range evs {
			account(cur, curStart, e.Cycle)
			if e.From == cpu.PhaseCSE && e.Cycle >= start && e.Cycle < end {
				csDone++
			}
			cur = e.To
			curStart = e.Cycle
		}
		account(cur, curStart, end)
	}
	return parallel, coh, cse, csDone
}

// PhaseAt replays the event list to find a thread's phase at a cycle.
func (tl *Timeline) PhaseAt(thread int, at sim.Cycle) cpu.Phase {
	cur := cpu.PhaseInit
	for _, e := range tl.Events {
		if e.Thread != thread {
			continue
		}
		if e.Cycle > at {
			break
		}
		cur = e.To
	}
	return cur
}

// phaseGlyph maps a phase to its strip-chart character.
func phaseGlyph(p cpu.Phase) byte {
	switch p {
	case cpu.PhaseParallel:
		return '.'
	case cpu.PhaseCOH:
		return 'c'
	case cpu.PhaseSleep:
		return 'z'
	case cpu.PhaseCSE:
		return '#'
	case cpu.PhaseDone:
		return ' '
	}
	return '?'
}

// StripChart renders threads' phases over [start, end) as one text row per
// thread, width columns wide — the visual form of the paper's Figure 9
// ('.' parallel, 'c' competition, 'z' sleep, '#' critical section).
func (tl *Timeline) StripChart(start, end sim.Cycle, threads, width int) string {
	if width <= 0 || end <= start {
		return ""
	}
	perCol := (end - start) / sim.Cycle(width)
	if perCol == 0 {
		perCol = 1
	}
	var sb strings.Builder
	for id := 0; id < threads; id++ {
		fmt.Fprintf(&sb, "t%-3d |", id)
		for col := 0; col < width; col++ {
			sb.WriteByte(phaseGlyph(tl.PhaseAt(id, start+sim.Cycle(col)*perCol)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
