// Package memory models the off-chip DRAM and the eight on-chip memory
// controllers of the target architecture. Controllers sit at the middle
// nodes of the top and bottom mesh rows (Figure 3); addresses interleave
// across them at block granularity.
//
// Each controller applies a fixed DRAM access latency and bounds the number
// of outstanding requests (Table 1: up to 16); excess requests queue. The
// directory at a block's home node is the only client, and after the first
// fetch the home's copy is authoritative — DRAM contents are not written
// back, which is safe because every subsequent access is serviced by the
// home (documented substitution in DESIGN.md).
package memory

import (
	"fmt"

	"inpg/internal/noc"
	"inpg/internal/sim"
)

// Config describes the DRAM subsystem.
type Config struct {
	Controllers    int       // number of memory controllers
	Latency        sim.Cycle // fixed access latency per request
	MaxOutstanding int       // per-controller in-service cap
}

// DefaultConfig returns the paper's Table 1 memory system: 8 controllers,
// 16 outstanding requests each. The 100-cycle latency folds the average
// home↔controller NoC traversal into the DRAM access time.
func DefaultConfig() Config {
	return Config{Controllers: 8, Latency: 100, MaxOutstanding: 16}
}

// request is one queued DRAM access.
type request struct {
	addr uint64
	done func(uint64)
}

// Controller is one memory controller: a latency pipe with bounded
// concurrency over a zero-initialized backing store.
type Controller struct {
	ID        int
	eng       *sim.Engine
	cfg       Config
	store     map[uint64]uint64
	inService int
	queue     []request

	Reads       uint64
	QueuedPeak  int
	BusyCycles  uint64
	lastService sim.Cycle
}

// NewController builds one controller.
func NewController(eng *sim.Engine, id int, cfg Config) *Controller {
	return &Controller{ID: id, eng: eng, cfg: cfg, store: make(map[uint64]uint64)}
}

// Read fetches the value at addr, invoking done after the DRAM latency
// (plus any queueing delay when MaxOutstanding requests are in service).
func (c *Controller) Read(addr uint64, done func(uint64)) {
	c.Reads++
	if c.inService >= c.cfg.MaxOutstanding {
		c.queue = append(c.queue, request{addr, done})
		if len(c.queue) > c.QueuedPeak {
			c.QueuedPeak = len(c.queue)
		}
		return
	}
	c.start(request{addr, done})
}

// start launches one access.
func (c *Controller) start(r request) {
	c.inService++
	c.eng.Schedule(c.cfg.Latency, func() {
		c.inService--
		v := c.store[r.addr]
		r.done(v)
		if len(c.queue) > 0 {
			next := c.queue[0]
			c.queue = c.queue[1:]
			c.start(next)
		}
	})
}

// Preload sets the backing value for addr (workload initialization).
func (c *Controller) Preload(addr, val uint64) { c.store[addr] = val }

// System is the set of controllers with the address interleaving and the
// physical placement used by the chip model.
type System struct {
	cfg         Config
	controllers []*Controller
	blockBytes  int
}

// NewSystem builds cfg.Controllers controllers.
func NewSystem(eng *sim.Engine, cfg Config, blockBytes int) (*System, error) {
	if cfg.Controllers <= 0 || cfg.MaxOutstanding <= 0 || blockBytes <= 0 {
		return nil, fmt.Errorf("memory: invalid config %+v", cfg)
	}
	s := &System{cfg: cfg, blockBytes: blockBytes}
	for i := 0; i < cfg.Controllers; i++ {
		s.controllers = append(s.controllers, NewController(eng, i, cfg))
	}
	return s, nil
}

// ControllerFor returns the controller owning addr.
func (s *System) ControllerFor(addr uint64) *Controller {
	return s.controllers[(addr/uint64(s.blockBytes))%uint64(len(s.controllers))]
}

// Read implements coherence.Memory over the interleaved controllers.
func (s *System) Read(addr uint64, done func(uint64)) {
	s.ControllerFor(addr).Read(addr, done)
}

// Controllers exposes the controller list for statistics.
func (s *System) Controllers() []*Controller { return s.controllers }

// Preload sets the backing value of addr before first use (lock and
// workload initialization).
func (s *System) Preload(addr, val uint64) { s.ControllerFor(addr).Preload(addr, val) }

// Placement returns the mesh nodes hosting the controllers for an W×H
// mesh: symmetrically on the middle of the top and bottom rows, as in
// Figure 3 (SCORPIO/KNL-style layout).
func Placement(m noc.Mesh, controllers int) []noc.NodeID {
	nodes := make([]noc.NodeID, 0, controllers)
	half := controllers / 2
	if half == 0 {
		half = 1
	}
	start := (m.Width - half) / 2
	for i := 0; i < half && len(nodes) < controllers; i++ {
		x := (start + i) % m.Width
		nodes = append(nodes, m.ID(x, 0))
	}
	for i := 0; i < controllers-half; i++ {
		x := (start + i) % m.Width
		nodes = append(nodes, m.ID(x, m.Height-1))
	}
	return nodes
}
