package memory

import (
	"testing"

	"inpg/internal/noc"
	"inpg/internal/sim"
)

func TestReadLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewController(eng, 0, Config{Controllers: 1, Latency: 50, MaxOutstanding: 4})
	var at sim.Cycle
	c.Read(0x100, func(v uint64) { at = eng.Now() })
	for i := 0; i < 100; i++ {
		eng.Step()
	}
	if at != 51 {
		t.Fatalf("completed at %d, want 51 (50-cycle latency)", at)
	}
}

func TestPreloadValue(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewController(eng, 0, Config{Controllers: 1, Latency: 10, MaxOutstanding: 4})
	c.Preload(0x40, 99)
	var got uint64
	c.Read(0x40, func(v uint64) { got = v })
	c.Read(0x80, func(v uint64) { got += v }) // unknown address reads 0
	for i := 0; i < 50; i++ {
		eng.Step()
	}
	if got != 99 {
		t.Fatalf("value = %d, want 99", got)
	}
}

func TestOutstandingCapQueues(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewController(eng, 0, Config{Controllers: 1, Latency: 20, MaxOutstanding: 2})
	var done []sim.Cycle
	for i := 0; i < 4; i++ {
		c.Read(uint64(i*128), func(uint64) { done = append(done, eng.Now()) })
	}
	for i := 0; i < 200; i++ {
		eng.Step()
	}
	if len(done) != 4 {
		t.Fatalf("completed %d, want 4", len(done))
	}
	// First two at ~21, the queued two one latency later.
	if done[2] < done[0]+20 {
		t.Fatalf("third request completed at %d, expected a queueing delay after %d", done[2], done[0])
	}
	if c.QueuedPeak != 2 {
		t.Fatalf("queued peak = %d, want 2", c.QueuedPeak)
	}
}

func TestSystemInterleaving(t *testing.T) {
	eng := sim.NewEngine(1)
	s, err := NewSystem(eng, Config{Controllers: 4, Latency: 10, MaxOutstanding: 4}, 128)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for blk := 0; blk < 8; blk++ {
		c := s.ControllerFor(uint64(blk * 128))
		seen[c.ID] = true
	}
	if len(seen) != 4 {
		t.Fatalf("blocks hit %d controllers, want 4", len(seen))
	}
	// Same block always maps to the same controller.
	if s.ControllerFor(0) != s.ControllerFor(64) {
		t.Fatal("addresses within one block split across controllers")
	}
}

func TestSystemPreloadRouting(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _ := NewSystem(eng, Config{Controllers: 4, Latency: 5, MaxOutstanding: 4}, 128)
	s.Preload(3*128, 7)
	var got uint64
	s.Read(3*128, func(v uint64) { got = v })
	for i := 0; i < 20; i++ {
		eng.Step()
	}
	if got != 7 {
		t.Fatalf("preload through system failed: got %d", got)
	}
}

func TestRejectBadConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := NewSystem(eng, Config{Controllers: 0, Latency: 1, MaxOutstanding: 1}, 128); err == nil {
		t.Fatal("zero controllers accepted")
	}
	if _, err := NewSystem(eng, Config{Controllers: 2, Latency: 1, MaxOutstanding: 0}, 128); err == nil {
		t.Fatal("zero outstanding accepted")
	}
}

func TestPlacementTopBottom(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	nodes := Placement(m, 8)
	if len(nodes) != 8 {
		t.Fatalf("placed %d, want 8", len(nodes))
	}
	top, bottom := 0, 0
	for _, id := range nodes {
		_, y := m.Coord(id)
		switch y {
		case 0:
			top++
		case 7:
			bottom++
		default:
			t.Fatalf("controller at row %d, want top or bottom row", y)
		}
	}
	if top != 4 || bottom != 4 {
		t.Fatalf("split %d/%d, want 4/4", top, bottom)
	}
}
