package runner

import (
	"errors"
	"fmt"

	"inpg"
	"inpg/internal/coherence"
	"inpg/internal/sim"
)

// Cause classifies why a run failed, the coarse taxonomy sweeps and
// manifests key retry/quarantine/reporting decisions on.
type Cause string

// The cause classes, ordered roughly from "infrastructure" to "simulation".
const (
	// CausePanic: the run's goroutine panicked; RunError.Stack holds the
	// captured stack.
	CausePanic Cause = "panic"
	// CauseConfig: inpg.New rejected the configuration before any cycle ran.
	CauseConfig Cause = "config"
	// CauseStall: the liveness watchdog diagnosed a wedged simulation.
	CauseStall Cause = "stall"
	// CauseProtocol: a coherence controller reported an impossible message
	// sequence.
	CauseProtocol Cause = "protocol"
	// CauseTimeout: the run overran its wall-clock deadline (runner
	// cancellation or Config.WallTimeBudget).
	CauseTimeout Cause = "timeout"
	// CauseCanceled: an outside controller canceled the run.
	CauseCanceled Cause = "canceled"
	// CauseBudget: the cycle budget (Config.MaxCycles) was exhausted.
	CauseBudget Cause = "cycle-budget"
	// CauseError: any other failure.
	CauseError Cause = "error"
)

// Classify maps a run failure to its Cause class. Panics are classified at
// the recovery site (they never surface as plain errors), so this covers
// the error-shaped causes.
func Classify(err error) Cause {
	if err == nil {
		return ""
	}
	var runErr *RunError
	if errors.As(err, &runErr) {
		return runErr.Cause
	}
	var simErr *inpg.SimulationError
	if errors.As(err, &simErr) {
		switch simErr.Reason {
		case "watchdog":
			return CauseStall
		case "protocol":
			return CauseProtocol
		case "timeout":
			return CauseTimeout
		case "canceled":
			return CauseCanceled
		case "cycle-budget":
			return CauseBudget
		}
		return CauseError
	}
	// Bare engine/protocol errors (callers that bypass System.Run).
	var stall *sim.StallError
	var abort *sim.AbortError
	var budget *sim.BudgetError
	var proto *coherence.ProtocolError
	switch {
	case errors.As(err, &stall):
		return CauseStall
	case errors.As(err, &abort):
		return CauseTimeout
	case errors.As(err, &budget):
		return CauseBudget
	case errors.As(err, &proto):
		return CauseProtocol
	}
	return CauseError
}

// RunError is the typed per-run failure every runner mode reports: which
// run failed, on which attempt, why (cause class), under which
// configuration (digest), and — for panics — the captured stack. It wraps
// the underlying error for errors.Is/As chains (e.g. down to
// *inpg.SimulationError and its Diagnostics).
type RunError struct {
	// Index is the run's submission index within its batch; Attempt the
	// 0-based attempt that produced this error.
	Index   int
	Attempt int
	// Cause is the failure class.
	Cause Cause
	// Digest fingerprints the run's configuration (inpg.Config.Digest);
	// empty when the runner mode does not know the config (plain ForEach).
	Digest string
	// Stack is the recovered goroutine stack, non-nil only for panics.
	Stack []byte
	// Err is the underlying failure. For panics it is a synthesized error
	// carrying the panic value.
	Err error
}

// Error implements error. The attempt is shown only once retries exist.
func (e *RunError) Error() string {
	if e.Attempt > 0 {
		return fmt.Sprintf("runner: run %d [%s, attempt %d]: %v", e.Index, e.Cause, e.Attempt+1, e.Err)
	}
	return fmt.Sprintf("runner: run %d [%s]: %v", e.Index, e.Cause, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *RunError) Unwrap() error { return e.Err }

// AsRunError returns err as a *RunError, or nil when it is not one.
func AsRunError(err error) *RunError {
	var runErr *RunError
	if errors.As(err, &runErr) {
		return runErr
	}
	return nil
}

// asRunError coerces any per-run failure into a *RunError, classifying and
// wrapping plain errors; nil stays nil.
func asRunError(index int, err error) *RunError {
	if err == nil {
		return nil
	}
	if runErr := AsRunError(err); runErr != nil {
		return runErr
	}
	return &RunError{Index: index, Cause: Classify(err), Err: err}
}
