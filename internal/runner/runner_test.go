package runner

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"inpg"
)

// tinyConfig returns a fast 2x2-mesh run distinguishable by thread count.
func tinyConfig(threads int, seed int64) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 2, 2
	cfg.Threads = threads
	cfg.CSPerThread = 2
	cfg.CSCycles = 40
	cfg.ParallelCycles = 150
	cfg.Seed = seed
	return cfg
}

func TestWorkersDefault(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}

func TestRunSubmissionOrder(t *testing.T) {
	cfgs := []inpg.Config{
		tinyConfig(2, 1), tinyConfig(3, 2), tinyConfig(4, 3), tinyConfig(2, 4),
	}
	res, err := Run(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 2}
	for i, r := range res {
		if r == nil || r.Threads != want[i] {
			t.Fatalf("result %d has %v threads, want %d: results out of submission order", i, r, want[i])
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var cfgs []inpg.Config
	for i := 0; i < 6; i++ {
		cfgs = append(cfgs, tinyConfig(4, int64(i+1)))
	}
	serial, err := Run(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("run %d differs between workers=1 and workers=8:\n%+v\nvs\n%+v",
				i, serial[i], parallel[i])
		}
	}
}

func TestRunPropagatesLowestIndexError(t *testing.T) {
	bad := tinyConfig(2, 1)
	bad.CSPerThread = 0 // rejected by inpg.New
	cfgs := []inpg.Config{tinyConfig(2, 1), tinyConfig(2, 2), bad, tinyConfig(2, 3)}
	if _, err := Run(cfgs, 2); err == nil || !strings.Contains(err.Error(), "run 2") {
		t.Fatalf("error = %v, want wrapped failure of run 2", err)
	}
}

func TestForEachAbandonsAfterFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(100, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks with one worker, want exactly 4 (abandon after failure)", got)
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var seen []int
	if err := ForEach(5, 1, func(i int) error {
		seen = append(seen, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("serial order = %v", seen)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
