// Package runner fans independent iNPG simulations out across CPU cores.
//
// The paper's evaluation is a large sweep of mutually independent runs —
// programs × mechanisms × lock primitives × seeds — and every sim.Engine
// is strictly single-threaded and seeded, so whole simulations are the
// natural unit of parallelism: each run executes on its own goroutine and
// produces results bit-identical to a serial execution of the same
// configuration. The runner bounds concurrency (default GOMAXPROCS),
// returns results in submission order for deterministic aggregation, and
// propagates the error of the lowest-index failing run.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"inpg"
)

// Workers resolves a worker-count setting: values > 0 are used as given,
// anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) across at most workers
// goroutines and blocks until all invocations return. Indices are claimed
// in order, so with workers == 1 the calls happen exactly in sequence.
// The first error by index order is returned; once any invocation fails,
// unstarted indices are abandoned (in-flight ones run to completion).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runner: run %d: %w", i, err)
		}
	}
	return nil
}

// Run executes every configuration, each complete simulation on its own
// goroutine with at most workers concurrent (Workers semantics), and
// returns the results in submission order. On failure the remaining
// unstarted runs are abandoned and the lowest-index error is returned.
func Run(cfgs []inpg.Config, workers int) ([]*inpg.Results, error) {
	results := make([]*inpg.Results, len(cfgs))
	err := ForEach(len(cfgs), workers, func(i int) error {
		sys, err := inpg.New(cfgs[i])
		if err != nil {
			return err
		}
		results[i], err = sys.Run()
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
