// Package runner fans independent iNPG simulations out across CPU cores.
//
// The paper's evaluation is a large sweep of mutually independent runs —
// programs × mechanisms × lock primitives × seeds — and every sim.Engine
// is strictly single-threaded and seeded, so whole simulations are the
// natural unit of parallelism: each run executes on its own goroutine and
// produces results bit-identical to a serial execution of the same
// configuration. The runner bounds concurrency (default GOMAXPROCS) and
// returns results in submission order for deterministic aggregation.
//
// Two failure disciplines are offered. The fail-fast modes (ForEach,
// ForEachWorker, Run, RunObserved) abandon unstarted runs once any run
// fails and propagate the lowest-index error. The keep-going modes
// (ForEachAll, RunResilient) isolate every failure — including panics,
// which are recovered and converted to typed *RunError values with their
// stacks — and report a complete per-index outcome vector, so one bad
// cell cannot take down a thousand-run sweep.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"inpg"
	"inpg/internal/metrics"
)

// Workers resolves a worker-count setting: values > 0 are used as given,
// anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// protect invokes fn with panic isolation: a panic is recovered and
// converted into a *RunError carrying the panic value and the goroutine
// stack captured at the recovery site. Error returns are coerced through
// asRunError, so callers always see a typed (or nil) failure.
func protect(index int, fn func() error) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Index: index,
				Cause: CausePanic,
				Stack: debug.Stack(),
				Err:   fmt.Errorf("panic: %v", r),
			}
		}
	}()
	return asRunError(index, fn())
}

// forEachWorker is the shared claiming loop: indices are claimed in order
// by at most `workers` goroutines, each invocation runs under protect, and
// per-index failures land in the returned slice. With keepGoing false a
// failure abandons all unstarted indices (in-flight ones run to
// completion); with keepGoing true every index executes regardless.
// fn's failedSoFar reports whether any earlier-completing run has failed,
// letting callers tag post-failure completions.
func forEachWorker(n, workers int, keepGoing bool, fn func(worker, i int, failedSoFar func() bool) error) []*RunError {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]*RunError, n)
	var next atomic.Int64
	var failed atomic.Bool
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || (!keepGoing && failed.Load()) {
					return
				}
				if err := protect(i, func() error { return fn(g, i, failed.Load) }); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return errs
}

// ForEach invokes fn(i) for every i in [0, n) across at most workers
// goroutines and blocks until all invocations return. Indices are claimed
// in order, so with workers == 1 the calls happen exactly in sequence.
// The first error by index order is returned as a *RunError; once any
// invocation fails, unstarted indices are abandoned (in-flight ones run
// to completion). Panics in fn are recovered and reported the same way.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachWorker(n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the claiming worker's index (0-based,
// stable for the call's duration) passed alongside the run index, for
// callers that report per-worker status.
func ForEachWorker(n, workers int, fn func(worker, i int) error) error {
	errs := forEachWorker(n, workers, false, func(worker, i int, _ func() bool) error {
		return fn(worker, i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachAll is the keep-going ForEachWorker: every index in [0, n) is
// executed even after failures, and the result is the complete per-index
// error vector (nil entries for successes). Panics are isolated per index.
func ForEachAll(n, workers int, fn func(worker, i int) error) []*RunError {
	return forEachWorker(n, workers, true, func(worker, i int, _ func() bool) error {
		return fn(worker, i)
	})
}

// Status is an Outcome's position in the run lifecycle.
type Status string

const (
	// StatusRunning: a worker has claimed the run (the Done == false
	// outcome).
	StatusRunning Status = "running"
	// StatusOK: the run completed and its results are used.
	StatusOK Status = "ok"
	// StatusFailed: the run failed with no retry to follow.
	StatusFailed Status = "failed"
	// StatusRetrying: the attempt failed and a later attempt will re-run
	// this configuration.
	StatusRetrying Status = "retrying"
	// StatusQuarantined: every configured attempt failed; the cell is
	// excluded from aggregation and reported as missing.
	StatusQuarantined Status = "quarantined"
	// StatusAbandoned: the run completed without error, but only after the
	// sweep had already failed — in fail-fast mode its results are
	// discarded, so observers must not count it as a clean completion.
	StatusAbandoned Status = "abandoned"
	// StatusSkipped: the run was never executed (resume found a valid
	// prior result). Skipped runs emit a single Done outcome.
	StatusSkipped Status = "skipped"
)

// Outcome reports one run's lifecycle to an observer. Each executed run
// produces two outcomes: one with Done == false when a worker claims it,
// one with Done == true when it finishes; skipped runs produce only the
// Done outcome. Snapshot is the run's final telemetry counter snapshot,
// nil unless the configuration enabled metrics.
type Outcome struct {
	Index  int
	Worker int
	Done   bool
	// Status refines Done: StatusRunning on claim; StatusOK, StatusFailed,
	// StatusRetrying, StatusQuarantined, StatusAbandoned or StatusSkipped
	// on completion. Zero ("") in outcomes from legacy hand-rolled loops.
	Status Status
	// Attempt is the 0-based retry attempt (always 0 outside RunResilient).
	Attempt int
	Cfg     inpg.Config
	Res     *inpg.Results
	Err     error
	// Snapshot and WallSeconds are meaningful only when Done.
	Snapshot    *metrics.Snapshot
	WallSeconds float64
}

// Observer receives run outcomes. It is invoked from worker goroutines —
// up to `workers` concurrently — so implementations must be safe for
// concurrent use (the sweep monitor forwards into a channel; the manifest
// writer touches only per-index files). The simulations themselves never
// see the observer: there are no locks or channels on any sim hot path.
type Observer func(Outcome)

// Run executes every configuration, each complete simulation on its own
// goroutine with at most workers concurrent (Workers semantics), and
// returns the results in submission order. On failure the remaining
// unstarted runs are abandoned and the lowest-index error is returned.
func Run(cfgs []inpg.Config, workers int) ([]*inpg.Results, error) {
	return RunObserved(cfgs, workers, nil)
}

// RunObserved is Run with per-run lifecycle reporting: obs (when non-nil)
// sees a claim outcome and a completion outcome for every run, carrying
// the run's results, error, wall time and — on metered configurations —
// its final counter snapshot. Runs that complete cleanly after another
// run has already failed are tagged StatusAbandoned: their results are
// about to be discarded, so observers must not count them as clean.
func RunObserved(cfgs []inpg.Config, workers int, obs Observer) ([]*inpg.Results, error) {
	results := make([]*inpg.Results, len(cfgs))
	errs := forEachWorker(len(cfgs), workers, false, func(worker, i int, failedSoFar func() bool) error {
		if obs != nil {
			obs(Outcome{Index: i, Worker: worker, Status: StatusRunning, Cfg: cfgs[i]})
		}
		start := time.Now()
		var res *inpg.Results
		var snap *metrics.Snapshot
		rerr := protect(i, func() error {
			sys, err := inpg.New(cfgs[i])
			if err != nil {
				return &RunError{Index: i, Cause: CauseConfig, Err: err}
			}
			res, err = sys.Run()
			results[i] = res
			snap = sys.MetricsSnapshot()
			return err
		})
		if rerr != nil && rerr.Digest == "" {
			rerr.Digest = cfgs[i].Digest()
		}
		if obs != nil {
			status := StatusOK
			switch {
			case rerr != nil:
				status = StatusFailed
			case failedSoFar():
				status = StatusAbandoned
			}
			var err error
			if rerr != nil {
				err = rerr
			}
			obs(Outcome{Index: i, Worker: worker, Done: true, Status: status,
				Cfg: cfgs[i], Res: res, Err: err, Snapshot: snap,
				WallSeconds: time.Since(start).Seconds()})
		}
		if rerr != nil {
			return rerr
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
