// Package runner fans independent iNPG simulations out across CPU cores.
//
// The paper's evaluation is a large sweep of mutually independent runs —
// programs × mechanisms × lock primitives × seeds — and every sim.Engine
// is strictly single-threaded and seeded, so whole simulations are the
// natural unit of parallelism: each run executes on its own goroutine and
// produces results bit-identical to a serial execution of the same
// configuration. The runner bounds concurrency (default GOMAXPROCS),
// returns results in submission order for deterministic aggregation, and
// propagates the error of the lowest-index failing run.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"inpg"
	"inpg/internal/metrics"
)

// Workers resolves a worker-count setting: values > 0 are used as given,
// anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) across at most workers
// goroutines and blocks until all invocations return. Indices are claimed
// in order, so with workers == 1 the calls happen exactly in sequence.
// The first error by index order is returned; once any invocation fails,
// unstarted indices are abandoned (in-flight ones run to completion).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachWorker(n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the claiming worker's index (0-based,
// stable for the call's duration) passed alongside the run index, for
// callers that report per-worker status.
func ForEachWorker(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(g, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runner: run %d: %w", i, err)
		}
	}
	return nil
}

// Outcome reports one run's lifecycle to an observer. Each run produces
// two outcomes: one with Done == false when a worker claims it, one with
// Done == true when it finishes (successfully or not). Snapshot is the
// run's final telemetry counter snapshot, nil unless the configuration
// enabled metrics.
type Outcome struct {
	Index  int
	Worker int
	Done   bool
	Cfg    inpg.Config
	Res    *inpg.Results
	Err    error
	// Snapshot and WallSeconds are meaningful only when Done.
	Snapshot    *metrics.Snapshot
	WallSeconds float64
}

// Observer receives run outcomes. It is invoked from worker goroutines —
// up to `workers` concurrently — so implementations must be safe for
// concurrent use (the sweep monitor forwards into a channel; the manifest
// writer touches only per-index files). The simulations themselves never
// see the observer: there are no locks or channels on any sim hot path.
type Observer func(Outcome)

// Run executes every configuration, each complete simulation on its own
// goroutine with at most workers concurrent (Workers semantics), and
// returns the results in submission order. On failure the remaining
// unstarted runs are abandoned and the lowest-index error is returned.
func Run(cfgs []inpg.Config, workers int) ([]*inpg.Results, error) {
	return RunObserved(cfgs, workers, nil)
}

// RunObserved is Run with per-run lifecycle reporting: obs (when non-nil)
// sees a claim outcome and a completion outcome for every run, carrying
// the run's results, error, wall time and — on metered configurations —
// its final counter snapshot.
func RunObserved(cfgs []inpg.Config, workers int, obs Observer) ([]*inpg.Results, error) {
	results := make([]*inpg.Results, len(cfgs))
	err := ForEachWorker(len(cfgs), workers, func(worker, i int) error {
		if obs != nil {
			obs(Outcome{Index: i, Worker: worker, Cfg: cfgs[i]})
		}
		start := time.Now()
		sys, err := inpg.New(cfgs[i])
		var res *inpg.Results
		var snap *metrics.Snapshot
		if err == nil {
			res, err = sys.Run()
			results[i] = res
			snap = sys.MetricsSnapshot()
		}
		if obs != nil {
			obs(Outcome{Index: i, Worker: worker, Done: true, Cfg: cfgs[i],
				Res: res, Err: err, Snapshot: snap,
				WallSeconds: time.Since(start).Seconds()})
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
