package runner

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inpg"
)

// longConfig returns a run guaranteed to cross the engine's first
// cooperative abort check (cycle 4096) before finishing, so a tight
// wall-clock deadline reliably trips.
func longConfig(seed int64) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 2, 2
	cfg.Threads = 4
	cfg.CSPerThread = 8
	cfg.CSCycles = 100
	cfg.ParallelCycles = 2000
	cfg.Seed = seed
	return cfg
}

func TestForEachAllKeepGoingIsolatesPanics(t *testing.T) {
	var ran atomic.Int64
	errs := ForEachAll(6, 2, func(_, i int) error {
		ran.Add(1)
		switch i {
		case 2:
			panic("chaos")
		case 4:
			return errors.New("plain failure")
		}
		return nil
	})
	if got := ran.Load(); got != 6 {
		t.Fatalf("ran %d of 6 indexes: keep-going mode must execute all", got)
	}
	if errs[2] == nil || errs[2].Cause != CausePanic {
		t.Fatalf("errs[2] = %v, want a CausePanic RunError", errs[2])
	}
	if len(errs[2].Stack) == 0 {
		t.Fatal("panic RunError must carry the recovered stack")
	}
	if !strings.Contains(errs[2].Error(), "panic") || !strings.Contains(errs[2].Error(), "run 2") {
		t.Fatalf("panic error text = %q", errs[2].Error())
	}
	if errs[4] == nil || errs[4].Cause != CauseError {
		t.Fatalf("errs[4] = %v, want a CauseError RunError", errs[4])
	}
	for _, i := range []int{0, 1, 3, 5} {
		if errs[i] != nil {
			t.Fatalf("clean index %d has error %v", i, errs[i])
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	if Backoff("abc", 0, 0, 0) != 0 {
		t.Fatal("attempt 0 (the first try) must not wait")
	}
	if a, b := Backoff("abc", 3, 0, 0), Backoff("abc", 3, 0, 0); a != b {
		t.Fatalf("same (digest, attempt) gave %v then %v: backoff must be deterministic", a, b)
	}
	// Exponential growth with jitter in [0.5, 1.5): each attempt's delay
	// stays within those factors of base<<(attempt-1) until the cap binds.
	base, max := 10*time.Millisecond, time.Hour
	prev := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		raw := base << uint(attempt-1)
		d := Backoff("abc", attempt, base, max)
		if d < raw/2 || d >= raw+raw/2 {
			t.Fatalf("attempt %d delay %v outside jitter bounds [%v, %v)", attempt, d, raw/2, raw+raw/2)
		}
		if d <= prev/2 {
			t.Fatalf("attempt %d delay %v did not grow from %v", attempt, d, prev)
		}
		prev = d
	}
	// The cap binds arbitrarily deep schedules, including shift overflow
	// territory.
	for _, attempt := range []int{8, 21, 1000} {
		if d := Backoff("abc", attempt, base, 50*time.Millisecond); d > 50*time.Millisecond {
			t.Fatalf("attempt %d delay %v exceeds the 50ms cap", attempt, d)
		}
	}
	// Different cells decorrelate: distinct digests jitter differently.
	if Backoff("abc", 1, base, max) == Backoff("xyz", 1, base, max) {
		t.Fatal("digests abc and xyz produced identical jitter")
	}
}

func TestRunResilientTimeoutCarriesDiagnostics(t *testing.T) {
	before := runtime.NumGoroutine()
	results, errs := RunResilient([]inpg.Config{longConfig(1)}, Policy{
		Workers:    1,
		RunTimeout: time.Nanosecond,
	})
	if results[0] != nil {
		t.Fatal("timed-out run must not produce results")
	}
	rerr := errs[0]
	if rerr == nil || rerr.Cause != CauseTimeout {
		t.Fatalf("error = %v, want CauseTimeout", rerr)
	}
	var simErr *inpg.SimulationError
	if !errors.As(rerr, &simErr) {
		t.Fatalf("error %v does not unwrap to *inpg.SimulationError", rerr)
	}
	if simErr.Diag == nil {
		t.Fatal("timeout SimulationError must carry full Diagnostics")
	}
	if simErr.Threads == 0 || simErr.Unfinished == 0 || len(simErr.Diag.Threads) == 0 {
		t.Fatalf("diagnosis empty: %d/%d unfinished, %d thread dumps",
			simErr.Unfinished, simErr.Threads, len(simErr.Diag.Threads))
	}
	// The deadline machinery (context timer, worker goroutines) must not
	// leak; poll because timer teardown is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// outcomeLog is a concurrency-safe observer recording completion outcomes.
type outcomeLog struct {
	mu   sync.Mutex
	done []Outcome
}

func (l *outcomeLog) observer() Observer {
	return func(o Outcome) {
		if !o.Done {
			return
		}
		l.mu.Lock()
		l.done = append(l.done, o)
		l.mu.Unlock()
	}
}

func TestRunResilientRetryThenSucceed(t *testing.T) {
	log := &outcomeLog{}
	results, errs := RunResilient([]inpg.Config{longConfig(2)}, Policy{
		Workers:     1,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Observer:    log.observer(),
		PreAttempt: func(_, attempt int) {
			if attempt == 0 {
				panic("transient chaos on the first attempt")
			}
		},
	})
	if results[0] == nil || errs[0] != nil {
		t.Fatalf("retry did not recover: results=%v errs=%v", results[0], errs[0])
	}
	var statuses []Status
	var attempts []int
	for _, o := range log.done {
		statuses = append(statuses, o.Status)
		attempts = append(attempts, o.Attempt)
	}
	if !reflect.DeepEqual(statuses, []Status{StatusRetrying, StatusOK}) {
		t.Fatalf("completion statuses = %v, want [retrying ok]", statuses)
	}
	if !reflect.DeepEqual(attempts, []int{0, 1}) {
		t.Fatalf("attempts = %v, want [0 1]", attempts)
	}
}

func TestRunResilientQuarantineAfterRetries(t *testing.T) {
	log := &outcomeLog{}
	results, errs := RunResilient([]inpg.Config{longConfig(3)}, Policy{
		Workers:     1,
		Retries:     1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Observer:    log.observer(),
		PreAttempt:  func(i, attempt int) { panic("persistent chaos") },
	})
	if results[0] != nil {
		t.Fatal("quarantined cell must not produce results")
	}
	rerr := errs[0]
	if rerr == nil || rerr.Cause != CausePanic || rerr.Attempt != 1 {
		t.Fatalf("final error = %+v, want CausePanic on attempt 1", rerr)
	}
	if rerr.Digest == "" {
		t.Fatal("quarantine error must carry the config digest")
	}
	var statuses []Status
	for _, o := range log.done {
		statuses = append(statuses, o.Status)
	}
	if !reflect.DeepEqual(statuses, []Status{StatusRetrying, StatusQuarantined}) {
		t.Fatalf("completion statuses = %v, want [retrying quarantined]", statuses)
	}
}

func TestRunResilientSkip(t *testing.T) {
	log := &outcomeLog{}
	cfgs := []inpg.Config{tinyConfig(2, 1), tinyConfig(2, 2)}
	results, errs := RunResilient(cfgs, Policy{
		Workers:  1,
		Observer: log.observer(),
		Skip:     func(i int) bool { return i == 0 },
	})
	if results[0] != nil || errs[0] != nil {
		t.Fatal("skipped cell must stay empty for the caller to prefill")
	}
	if results[1] == nil || errs[1] != nil {
		t.Fatalf("unskipped cell failed: %v", errs[1])
	}
	if len(log.done) != 2 || log.done[0].Status != StatusSkipped || log.done[0].Index != 0 {
		t.Fatalf("outcomes = %+v, want a StatusSkipped for index 0 first", log.done)
	}
}

// TestRunResilientMatchesRunOnCleanSweep pins the fault-free guarantee:
// with no failures, the resilient path (retries armed and all) produces
// results bit-identical to the fail-fast runner at any worker count.
func TestRunResilientMatchesRunOnCleanSweep(t *testing.T) {
	var cfgs []inpg.Config
	for i := 0; i < 4; i++ {
		cfgs = append(cfgs, tinyConfig(3, int64(i+1)))
	}
	ref, err := Run(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		results, errs := RunResilient(cfgs, Policy{Workers: workers, Retries: 2})
		for i := range cfgs {
			if errs[i] != nil {
				t.Fatalf("workers=%d: clean run %d failed: %v", workers, i, errs[i])
			}
			if !reflect.DeepEqual(results[i], ref[i]) {
				t.Fatalf("workers=%d: run %d differs from fail-fast runner:\n%+v\nvs\n%+v",
					workers, i, results[i], ref[i])
			}
		}
	}
}

// TestForEachWorkerReportsFailedSoFar exercises the tagging primitive
// deterministically: run 0 spins until run 1's failure is visible through
// failedSoFar, proving in-flight runs observe earlier failures.
func TestForEachWorkerReportsFailedSoFar(t *testing.T) {
	errs := forEachWorker(2, 2, false, func(_, i int, failedSoFar func() bool) error {
		if i == 1 {
			return errors.New("boom")
		}
		deadline := time.Now().Add(10 * time.Second)
		for !failedSoFar() {
			if time.Now().After(deadline) {
				return errors.New("never observed the sweep failure")
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatalf("run 0: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("run 1's failure was lost")
	}
}

// TestRunObservedTagsAbandoned: the slow clean run at index 0 completes
// after index 1 has already failed, so its completion outcome must be
// tagged StatusAbandoned — its results are about to be discarded.
func TestRunObservedTagsAbandoned(t *testing.T) {
	slow := inpg.DefaultConfig() // full 8x8 run: plenty of wall time
	slow.Seed = 11
	bad := tinyConfig(2, 1)
	bad.CSPerThread = 0 // rejected by inpg.New in microseconds
	statuses := map[int]Status{}
	var mu sync.Mutex
	_, err := RunObserved([]inpg.Config{slow, bad}, 2, func(o Outcome) {
		if !o.Done {
			return
		}
		mu.Lock()
		statuses[o.Index] = o.Status
		mu.Unlock()
	})
	if err == nil {
		t.Fatal("sweep with an invalid config must fail")
	}
	if statuses[1] != StatusFailed {
		t.Fatalf("index 1 status = %q, want failed", statuses[1])
	}
	if statuses[0] != StatusAbandoned {
		t.Fatalf("index 0 status = %q, want abandoned (clean completion after the sweep failed)", statuses[0])
	}
}

func TestRunOneSingleCellBuildingBlock(t *testing.T) {
	// A clean cell succeeds on the first attempt and matches what the
	// full campaign machinery produces for the same configuration.
	cfg := longConfig(9)
	res, _, wall, attempt, rerr := RunOne(cfg, Policy{})
	if rerr != nil {
		t.Fatalf("clean run failed: %v", rerr)
	}
	if res == nil || attempt != 0 || wall < 0 {
		t.Fatalf("res=%v attempt=%d wall=%v", res, attempt, wall)
	}
	ref, errs := RunResilient([]inpg.Config{cfg}, Policy{Workers: 1})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !reflect.DeepEqual(res, ref[0]) {
		t.Fatal("RunOne and RunResilient disagree on the same cell")
	}

	// A chaos hook that panics on the first two attempts is absorbed by
	// the retry loop; the third attempt lands.
	res, _, _, attempt, rerr = RunOne(cfg, Policy{
		Retries:     2,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
		PreAttempt: func(_, attempt int) {
			if attempt < 2 {
				panic("chaos")
			}
		},
	})
	if rerr != nil || res == nil || attempt != 2 {
		t.Fatalf("after 2 injected panics: res=%v attempt=%d err=%v", res, attempt, rerr)
	}

	// A config inpg.New rejects burns every retry, classifies as
	// CauseConfig, and reports the last attempt number.
	bad := cfg
	bad.MeshWidth = 0
	res, _, _, attempt, rerr = RunOne(bad, Policy{
		Retries:     1,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
	})
	if res != nil || rerr == nil || rerr.Cause != CauseConfig || attempt != 1 {
		t.Fatalf("bad config: res=%v attempt=%d err=%v", res, attempt, rerr)
	}
}
