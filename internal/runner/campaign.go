package runner

import (
	"context"
	"hash/fnv"
	"io"
	"log/slog"
	"time"

	"inpg"
	"inpg/internal/metrics"
)

// discardLog swallows structured logs when no Policy.Log is configured.
var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// Default backoff bounds for Policy. The base is long enough to let a
// transient host hiccup (page cache pressure, a co-scheduled burst) pass,
// short enough that a three-attempt cell adds well under a second of
// sweep latency.
const (
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// Policy configures a resilient sweep: how wide, how patient, and how
// stubborn. The zero value runs every cell once with GOMAXPROCS workers,
// no deadline and no retries.
type Policy struct {
	// Workers bounds concurrency (Workers semantics: <= 0 means
	// GOMAXPROCS).
	Workers int
	// Retries is the number of re-attempts after a failed run: a cell is
	// executed at most Retries+1 times before being quarantined.
	Retries int
	// BackoffBase and BackoffMax bound the deterministic jittered
	// exponential backoff between attempts (defaults when <= 0:
	// DefaultBackoffBase, DefaultBackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RunTimeout, when positive, is each attempt's wall-clock deadline,
	// enforced via cooperative cancellation (System.AbortOn): an
	// overrunning attempt fails with a timeout-reason *SimulationError
	// carrying full Diagnostics.
	RunTimeout time.Duration
	// Observer, when non-nil, sees every attempt's claim and completion
	// outcomes (Status distinguishes ok / retrying / quarantined /
	// skipped).
	Observer Observer
	// Skip, when non-nil and true for an index, elides that run entirely
	// (resume mode): a single StatusSkipped Done outcome is emitted and
	// the result slot stays nil for the caller to prefill.
	Skip func(i int) bool
	// PreRun, when non-nil, maps the stored configuration to the one
	// actually executed (chaos injection, per-cell overrides). Digest and
	// observer outcomes use the mapped configuration.
	PreRun func(i int, cfg inpg.Config) inpg.Config
	// PreAttempt, when non-nil, runs at the start of every attempt inside
	// the panic-isolation boundary — the chaos-injection hook: it may
	// panic to exercise a crashing cell through the full retry and
	// quarantine path.
	PreAttempt func(i, attempt int)
	// Log, when non-nil, receives structured records for the failure
	// machinery — one per failed attempt, tagged with cell, digest,
	// attempt and cause — so a long sweep's retries and quarantines are
	// diagnosable after the fact. Nil discards.
	Log *slog.Logger
}

// logger returns the policy's structured logger, or a discarder.
func (p Policy) logger() *slog.Logger {
	if p.Log != nil {
		return p.Log
	}
	return discardLog
}

// Backoff returns the delay before retry `attempt` (1-based: attempt 0 is
// the first try and never waits) of the run whose configuration hashes to
// digest. The schedule is exponential — base doubling per attempt, capped
// at max — with a deterministic jitter factor in [0.5, 1.5) derived from
// (digest, attempt), so concurrent retries of different cells decorrelate
// while any given cell's schedule is exactly reproducible.
func Backoff(digest string, attempt int, base, max time.Duration) time.Duration {
	if attempt <= 0 {
		return 0
	}
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	shift := uint(attempt - 1)
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d <= 0 || d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(digest))
	h.Write([]byte{'#', byte(attempt), byte(attempt >> 8)})
	jitter := 0.5 + float64(h.Sum64()%1024)/1024
	d = time.Duration(float64(d) * jitter)
	if d > max {
		d = max
	}
	return d
}

// attemptOne executes a single attempt of one configuration under panic
// isolation and (when timeout > 0) a cooperative wall-clock deadline.
func attemptOne(i, attempt int, cfg inpg.Config, digest string, timeout time.Duration, preAttempt func(i, attempt int)) (res *inpg.Results, snap *metrics.Snapshot, wall float64, rerr *RunError) {
	start := time.Now()
	rerr = protect(i, func() error {
		if preAttempt != nil {
			preAttempt(i, attempt)
		}
		sys, err := inpg.New(cfg)
		if err != nil {
			return &RunError{Index: i, Cause: CauseConfig, Err: err}
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			sys.AbortOn(ctx)
		}
		res, err = sys.Run()
		snap = sys.MetricsSnapshot()
		return err
	})
	if rerr != nil {
		rerr.Attempt = attempt
		if rerr.Digest == "" {
			rerr.Digest = digest
		}
	}
	return res, snap, time.Since(start).Seconds(), rerr
}

// RunOne executes a single configuration under the policy's retry
// machinery — panic isolation, per-attempt deadline (p.RunTimeout),
// deterministic digest-seeded backoff, up to p.Retries re-attempts — and
// returns the final attempt's result, telemetry snapshot, wall time and
// 0-based attempt number. It is the fleet worker's building block: one
// leased cell, executed with exactly the semantics a local sweep would
// apply, with the lifecycle reporting left to the caller. Workers,
// Observer and Skip are ignored.
func RunOne(cfg inpg.Config, p Policy) (*inpg.Results, *metrics.Snapshot, float64, int, *RunError) {
	digest := cfg.Digest()
	var (
		res  *inpg.Results
		snap *metrics.Snapshot
		wall float64
		rerr *RunError
	)
	attempt := 0
	for ; attempt <= p.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(Backoff(digest, attempt, p.BackoffBase, p.BackoffMax))
		}
		// A lone run has no sweep index; RunError.Index is 0 and callers
		// relabel it with their own cell index.
		res, snap, wall, rerr = attemptOne(0, attempt, cfg, digest, p.RunTimeout, p.PreAttempt)
		if rerr == nil {
			break
		}
		p.logger().Warn("attempt failed",
			"digest", digest, "attempt", attempt, "cause", string(rerr.Cause),
			"retries_left", p.Retries-attempt, "err", rerr.Err)
	}
	if attempt > p.Retries {
		attempt = p.Retries
	}
	return res, snap, wall, attempt, rerr
}

// RunResilient executes every configuration in keep-going mode: each cell
// runs under panic isolation and an optional per-attempt deadline, failed
// cells are retried up to p.Retries times with deterministic jittered
// backoff, and a cell that exhausts its attempts is quarantined rather
// than aborting the sweep. The returned slices are index-aligned with
// cfgs: results[i] is non-nil exactly when the cell succeeded (or was
// skipped and prefilled by the caller), errs[i] is the final typed
// failure of a quarantined cell.
//
// On a fault-free sweep RunResilient produces results identical to Run:
// retries never engage, deadlines never fire, and the simulations
// themselves are untouched single-threaded deterministic runs.
func RunResilient(cfgs []inpg.Config, p Policy) ([]*inpg.Results, []*RunError) {
	results := make([]*inpg.Results, len(cfgs))
	finalErrs := make([]*RunError, len(cfgs))
	loopErrs := forEachWorker(len(cfgs), p.Workers, true, func(worker, i int, _ func() bool) error {
		cfg := cfgs[i]
		if p.PreRun != nil {
			cfg = p.PreRun(i, cfg)
		}
		if p.Skip != nil && p.Skip(i) {
			if p.Observer != nil {
				p.Observer(Outcome{Index: i, Worker: worker, Done: true,
					Status: StatusSkipped, Cfg: cfg})
			}
			return nil
		}
		digest := cfg.Digest()
		for attempt := 0; attempt <= p.Retries; attempt++ {
			if attempt > 0 {
				time.Sleep(Backoff(digest, attempt, p.BackoffBase, p.BackoffMax))
			}
			if p.Observer != nil {
				p.Observer(Outcome{Index: i, Worker: worker,
					Status: StatusRunning, Attempt: attempt, Cfg: cfg})
			}
			res, snap, wall, rerr := attemptOne(i, attempt, cfg, digest, p.RunTimeout, p.PreAttempt)
			status := StatusOK
			switch {
			case rerr != nil && attempt < p.Retries:
				status = StatusRetrying
			case rerr != nil && p.Retries > 0:
				status = StatusQuarantined
			case rerr != nil:
				status = StatusFailed
			}
			if rerr != nil {
				p.logger().Warn("attempt failed",
					"cell", i, "digest", digest, "attempt", attempt,
					"cause", string(rerr.Cause), "status", string(status),
					"err", rerr.Err)
			}
			if p.Observer != nil {
				var err error
				if rerr != nil {
					err = rerr
				}
				p.Observer(Outcome{Index: i, Worker: worker, Done: true,
					Status: status, Attempt: attempt, Cfg: cfg, Res: res,
					Err: err, Snapshot: snap, WallSeconds: wall})
			}
			if rerr == nil {
				// A success voids the errors of earlier attempts: the cell
				// recovered and must not be reported missing.
				results[i], finalErrs[i] = res, nil
				return nil
			}
			finalErrs[i] = rerr
		}
		return nil
	})
	// Safety net: a panic escaping the per-attempt isolation (e.g. from an
	// observer) still lands in the per-index vector.
	for i, err := range loopErrs {
		if err != nil && finalErrs[i] == nil {
			finalErrs[i] = err
			results[i] = nil
		}
	}
	return results, finalErrs
}
