package experiments

import (
	"strings"
	"testing"

	"inpg"
	"inpg/internal/workload"
)

// tiny returns heavily reduced options so every figure runs in CI time.
func tiny() Options {
	return Options{Scale: 0.02, Seed: 5, Quick: true}
}

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"8x8 mesh", "MOESI", "OCOR", "iNPG"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestFig2ShapesMatchPaper(t *testing.T) {
	r, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Programs) != 3 {
		t.Fatalf("programs = %d, want 3", len(r.Programs))
	}
	for i, prog := range r.Programs {
		tas := r.LCOPercent[i][0]
		mcs := r.LCOPercent[i][3]
		if tas <= 0 || tas >= 100 {
			t.Fatalf("%s TAS LCO%% = %f out of range", prog, tas)
		}
		// The paper's ordering: TAS has the heaviest LCO, MCS the lightest.
		if mcs >= tas {
			t.Fatalf("%s: MCS LCO %.1f not below TAS %.1f", prog, mcs, tas)
		}
	}
}

func TestFig7Headline(t *testing.T) {
	r := Fig7()
	if r.BigGatesK != 22.4 || r.NormalGatesK != 19.9 {
		t.Fatal("gate counts diverge from the paper")
	}
	if !strings.Contains(r.Render(), "Packet generator") {
		t.Fatal("render incomplete")
	}
}

func TestFig8CoversAllPrograms(t *testing.T) {
	r, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MeasuredCOH == 0 && row.MeasuredCSE == 0 {
			t.Fatalf("%s measured nothing", row.Program)
		}
	}
	if !strings.Contains(r.Render(), "group") {
		t.Fatal("render incomplete")
	}
}

func TestFig9FourCases(t *testing.T) {
	r, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 4 {
		t.Fatalf("cases = %d, want 4", len(r.Cases))
	}
	for _, c := range r.Cases {
		total := c.ParallelPct + c.COHPct + c.CSEPct
		if total < 99 || total > 101 {
			t.Fatalf("%s percentages sum to %f", c.Mechanism, total)
		}
	}
}

func TestFig10INPGReducesRTT(t *testing.T) {
	r, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	orig, with := r.Cases[0], r.Cases[1]
	if orig.Samples == 0 || with.Samples == 0 {
		t.Fatal("no RTT samples recorded")
	}
	if with.MeanRTT >= orig.MeanRTT {
		t.Fatalf("iNPG mean RTT %.1f not below Original %.1f", with.MeanRTT, orig.MeanRTT)
	}
	if !strings.Contains(r.Render(), "per-core mean RTT map") {
		t.Fatal("render incomplete")
	}
}

func TestFig14MonotoneDeploymentSamples(t *testing.T) {
	r, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mean) != len(Fig14Deployments) {
		t.Fatal("deployment sweep incomplete")
	}
	if r.Mean[0] != 1.0 {
		t.Fatalf("baseline expedition = %f, want 1.0", r.Mean[0])
	}
}

func TestConfigForUsesProfile(t *testing.T) {
	o := DefaultOptions()
	cfg := ConfigFor(mustProfile(t, "fluid"), inpg.INPG, inpg.LockTAS, o)
	if cfg.Mechanism != inpg.INPG || cfg.Lock != inpg.LockTAS {
		t.Fatal("mechanism/lock not applied")
	}
	if cfg.CSPerThread != 8 {
		t.Fatalf("fluid quota = %d, want 8 at scale 0.05", cfg.CSPerThread)
	}
	if cfg.CSCycles != 81 {
		t.Fatalf("CS cycles = %d, want the profile's 81", cfg.CSCycles)
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeanMaxHelpers(t *testing.T) {
	if meanOf(nil) != 0 || maxOf(nil) != 0 {
		t.Fatal("empty helpers must return 0")
	}
	if meanOf([]float64{1, 2, 3}) != 2 || maxOf([]float64{1, 9, 3}) != 9 {
		t.Fatal("helpers broken")
	}
	if maxOf([]float64{-5, -2, -9}) != -2 {
		t.Fatal("maxOf wrong on all-negative input")
	}
	if mustRatio(4, 0) != 0 || mustRatio(6, 3) != 2 {
		t.Fatal("ratio helper broken")
	}
}

func TestFig13SmallSubset(t *testing.T) {
	saved := Fig13Programs
	Fig13Programs = []string{"x264", "freq"}
	defer func() { Fig13Programs = saved }()
	r, err := Fig13(tiny(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || len(r.MeanReductionPct) != len(inpg.LockKinds) {
		t.Fatalf("rows=%d means=%d", len(r.Rows), len(r.MeanReductionPct))
	}
	if !strings.Contains(r.Render(), "mean") {
		t.Fatal("render incomplete")
	}
}

func TestFig15SmallDims(t *testing.T) {
	savedD, savedP := Fig15Dims, Fig15Programs
	Fig15Dims = []int{2, 4}
	Fig15Programs = []string{"x264"}
	defer func() { Fig15Dims, Fig15Programs = savedD, savedP }()
	r, err := Fig15(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reduction) != 2 || len(r.Reduction[0]) != len(Fig15Tables) {
		t.Fatal("matrix shape wrong")
	}
	if !strings.Contains(r.Render(), "2x2") {
		t.Fatal("render incomplete")
	}
}

func TestAblationDeployment(t *testing.T) {
	r, err := AblationDeployment(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	// The iNPG rows must show packet-generation activity; Original none.
	if r.Rows[0].EarlyInvs != 0 || r.Rows[1].EarlyInvs == 0 {
		t.Fatalf("early-inv accounting wrong: %+v", r.Rows)
	}
	if !strings.Contains(r.Render(), "Ablation mechanism") {
		t.Fatal("render incomplete")
	}
}

func TestSuiteRowMath(t *testing.T) {
	row := SuiteRow{Runtime: [4]uint64{1000, 800, 500, 400}, CSTime: [4]uint64{600, 300, 200, 150}}
	if row.CSExpedition(2) != 3.0 {
		t.Fatalf("expedition = %f, want 3.0", row.CSExpedition(2))
	}
	if row.ROIPercent(1) != 80.0 {
		t.Fatalf("roi = %f, want 80", row.ROIPercent(1))
	}
	s := &SuiteResult{Rows: []SuiteRow{row}}
	if m, _, _ := s.INPGOverOCOR(); m != 1.5 {
		t.Fatalf("iNPG/OCOR = %f, want 1.5", m)
	}
	if e, _ := s.MaxExpedition(3); e != 4.0 {
		t.Fatalf("max expedition = %f, want 4.0", e)
	}
	if !strings.Contains(s.RenderFig11(), "iNPG over OCOR") || !strings.Contains(s.RenderFig12(), "overall mean") {
		t.Fatal("suite renders incomplete")
	}
}

// TestSuiteDeterministicAcrossWorkerCounts is the harness's core guarantee:
// the rendered figures are byte-identical no matter how many workers ran the
// batch, because each simulation is seeded and single-threaded and results
// are aggregated in submission order.
func TestSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	o := tiny()
	o.Programs = []string{"freq", "kdtree"}
	o.Seeds = 2

	o.Workers = 1
	serial, err := RunSuite(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	parallel, err := RunSuite(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parallel.RenderFig11(), serial.RenderFig11(); got != want {
		t.Fatalf("Fig11 differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", want, got)
	}
	if got, want := parallel.RenderFig12(), serial.RenderFig12(); got != want {
		t.Fatalf("Fig12 differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", want, got)
	}
}

func TestOptionsProfilesSubset(t *testing.T) {
	o := tiny()
	ps, err := o.profiles()
	if err != nil || len(ps) != 24 {
		t.Fatalf("default profiles = %d, err %v; want all 24", len(ps), err)
	}
	o.Programs = []string{"kdtree", "freq"}
	ps, err = o.profiles()
	if err != nil || len(ps) != 2 {
		t.Fatalf("subset profiles = %d, err %v", len(ps), err)
	}
	o.Programs = []string{"no-such-program"}
	if _, err = o.profiles(); err == nil {
		t.Fatal("unknown program must error")
	}
}

func TestSeedList(t *testing.T) {
	o := Options{Seed: 10}
	if got := o.seedList(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("default seed list = %v", got)
	}
	o.Seeds = 3
	got := o.seedList()
	if len(got) != 3 || got[0] != 10 || got[1] == got[0] {
		t.Fatalf("seed list = %v", got)
	}
}

func TestResilienceSweep(t *testing.T) {
	r, err := Resilience(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != len(inpg.Mechanisms)*len(r.Rates) {
		t.Fatalf("cases = %d, want %d", len(r.Cases), len(inpg.Mechanisms)*len(r.Rates))
	}
	for _, c := range r.Cases {
		if c.Reason != "" {
			t.Fatalf("%s at rate %.3f failed: %s", c.Mechanism, c.Rate, c.Reason)
		}
		if c.CSPerKCyc <= 0 {
			t.Fatalf("%s at rate %.3f: zero throughput", c.Mechanism, c.Rate)
		}
		if c.Rate == 0 && (c.Faults != 0 || c.Retries != 0) {
			t.Fatalf("fault counters nonzero at rate 0: %+v", c)
		}
		if c.Rate > 0 && c.Faults == 0 {
			t.Fatalf("%s at rate %.3f: no faults injected", c.Mechanism, c.Rate)
		}
		if c.Failures != 0 {
			t.Fatalf("%s at rate %.3f: %d links died under transient faults", c.Mechanism, c.Rate, c.Failures)
		}
	}
	out := r.Render()
	for _, want := range []string{"Resilience", "mechanism", "retransmission effort"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
