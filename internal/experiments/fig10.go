package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/noc"
	"inpg/internal/runner"
	"inpg/internal/workload"
)

// Fig10Case is one mechanism's invalidation round-trip statistics.
type Fig10Case struct {
	Mechanism inpg.Mechanism
	MeanRTT   float64
	MaxRTT    uint64
	P50, P95  uint64
	Samples   uint64
	CoreMap   string // W×H grid of per-core mean RTT
	Histogram string
	HistBins  [][2]uint64
}

// Fig10Result compares Original and iNPG.
type Fig10Result struct {
	Cases []Fig10Case
	// Missing annotates mechanisms whose run failed; their rows are
	// absent from Cases.
	Missing []Missing
}

// Fig10 reproduces Figure 10: the coherence Inv–Ack round-trip delay —
// per-core means over the 8×8 grid and the delay histogram — for Original
// and iNPG, in the paper's hot-lock scenario: all 64 threads compete for a
// lock hosted at the shared L2 bank of core (5,6). Without iNPG the home
// performs every invalidation, so far cores pay long, distance-dependent
// round trips with a long-tail histogram; with iNPG the invalidations of
// threads with in-flight SWAPs happen at nearby big routers, cutting both
// the mean and the tail.
func Fig10(o Options) (*Fig10Result, error) {
	p, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}
	r := &Fig10Result{}
	for mi, mech := range []inpg.Mechanism{inpg.Original, inpg.INPG} {
		cfg := ConfigFor(p, mech, inpg.LockQSL, o)
		// Maximum competition: negligible parallel phase, everyone at the
		// lock; home pinned at core (5,6).
		cfg.ParallelCycles = 50
		cfg.ParallelJitter = 20
		cfg.LockHomeNode = int(noc.Mesh{Width: 8, Height: 8}.ID(5, 6))
		cfg.WallTimeBudget = o.RunTimeout
		sys, err := inpg.New(cfg)
		var res *inpg.Results
		if err == nil {
			res, err = sys.Run()
		}
		if err != nil {
			r.Missing = append(r.Missing, Missing{Sweep: "fig10", Index: mi,
				Cause: runner.Classify(err), Err: err})
			continue
		}
		rtt := sys.RTT()
		r.Cases = append(r.Cases, Fig10Case{
			Mechanism: mech,
			MeanRTT:   res.RTTMean,
			MaxRTT:    res.RTTMax,
			P50:       rtt.Hist.Percentile(0.50),
			P95:       rtt.Hist.Percentile(0.95),
			Samples:   res.RTTSamples,
			CoreMap:   rtt.CoreMap(noc.Mesh{Width: 8, Height: 8}),
			Histogram: rtt.Hist.Render(40),
			HistBins:  rtt.Hist.Bins(),
		})
	}
	return r, nil
}

// Render prints per-core maps and histograms.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 10: coherence Inv-Ack round-trip delay (lock homed at core (5,6))")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "\n[%s] mean %.1f cycles, p50 %d, p95 %d, max %d, samples %d\n",
			c.Mechanism, c.MeanRTT, c.P50, c.P95, c.MaxRTT, c.Samples)
		b.WriteString("per-core mean RTT map:\n")
		b.WriteString(c.CoreMap)
		b.WriteString("round-trip delay histogram:\n")
		b.WriteString(c.Histogram)
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
