package experiments

import (
	"sync"
	"testing"

	"inpg"
	"inpg/internal/fault"
	"inpg/internal/noc"
	"inpg/internal/runner"
)

// chaosCell returns a clean sweep cell guaranteed to cross the engine's
// first cooperative abort check (cycle 4096) before finishing, so a
// deadline-chaos cell reliably times out instead of completing first.
func chaosCell(seed int64) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 2, 2
	cfg.Threads = 4
	cfg.CSPerThread = 4
	cfg.CSCycles = 60
	cfg.ParallelCycles = 2000
	cfg.Seed = seed
	return cfg
}

// wedgeCell is the deterministic wedge of TestWedgedRunDiagnosedByWatchdog:
// every port into the lock's home node permanently stalled, bounded
// retransmissions exhausted, so the liveness watchdog diagnoses a stall.
func wedgeCell() inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Lock = inpg.LockTAS
	cfg.CSPerThread = 2
	cfg.LockHomeNode = 10
	cfg.WatchdogWindow = 50_000
	cfg.MaxCycles = 50_000_000
	mesh := noc.Mesh{Width: 4, Height: 4}
	home := noc.NodeID(10)
	for _, nb := range []noc.NodeID{6, 9, 11, 14} {
		cfg.Fault.PermanentStalls = append(cfg.Fault.PermanentStalls, fault.PortStall{
			Node: int(nb), Port: int(mesh.RouteXY(nb, home)), From: 1000,
		})
	}
	cfg.Fault.MaxRetries = 3
	cfg.Fault.RetryTimeout = 8
	return cfg
}

// TestChaosSweepQuarantinesAndResumes is the end-to-end resilience check:
// a sweep with a wedging cell, a panicking cell and a deadline cell
// completes without an infrastructure error, reports exactly those three
// cells MISSING with three distinct cause classes, and a -resume-style
// second pass re-executes only the three failed cells, skipping every
// clean one from its manifest.
func TestChaosSweepQuarantinesAndResumes(t *testing.T) {
	dir := t.TempDir()
	cfgs := []inpg.Config{
		chaosCell(1), wedgeCell(), chaosCell(3), chaosCell(4), chaosCell(5), chaosCell(6),
	}
	o := Options{
		Workers:            2,
		ManifestDir:        dir,
		ChaosPanicCells:    []int{2},
		ChaosDeadlineCells: []int{3},
	}
	results, missing, err := runAll(o, "chaos", cfgs)
	if err != nil {
		t.Fatalf("chaos sweep must keep going, got infrastructure error: %v", err)
	}
	wantCause := map[int]runner.Cause{
		1: runner.CauseStall, 2: runner.CausePanic, 3: runner.CauseTimeout,
	}
	if len(missing) != len(wantCause) {
		t.Fatalf("missing = %v, want exactly cells 1, 2, 3", missing)
	}
	for _, m := range missing {
		want, ok := wantCause[m.Index]
		if !ok || m.Cause != want {
			t.Fatalf("cell %d cause = %s, want %s (%v)", m.Index, m.Cause, want, m.Err)
		}
		delete(wantCause, m.Index)
		if got := m.String(); got == "" || got[:len("MISSING(chaos/")] != "MISSING(chaos/" {
			t.Fatalf("annotation format: %q", got)
		}
	}
	for _, i := range []int{0, 4, 5} {
		if results[i] == nil {
			t.Fatalf("clean cell %d lost its results", i)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if results[i] != nil {
			t.Fatalf("failed cell %d has results", i)
		}
	}

	// Second pass: chaos lifted and the wedge replaced by a fixed
	// configuration — the resume of a repaired sweep. Only the three
	// failed cells may execute; the clean three are satisfied from their
	// manifests.
	cfgs[1] = chaosCell(2)
	var mu sync.Mutex
	claimed, skipped := map[int]int{}, map[int]int{}
	o2 := Options{
		Workers:     2,
		ManifestDir: dir,
		Resume:      dir,
		Observer: func(out runner.Outcome) {
			mu.Lock()
			defer mu.Unlock()
			switch {
			case out.Status == runner.StatusSkipped:
				skipped[out.Index]++
			case !out.Done:
				claimed[out.Index]++
			}
		},
	}
	results2, missing2, err := runAll(o2, "chaos", cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing2) != 0 {
		t.Fatalf("resumed sweep still missing cells: %v", missing2)
	}
	for i, r := range results2 {
		if r == nil {
			t.Fatalf("resumed sweep has no results for cell %d", i)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if claimed[i] != 1 || skipped[i] != 0 {
			t.Fatalf("failed cell %d: claimed %d, skipped %d; want exactly one re-execution",
				i, claimed[i], skipped[i])
		}
	}
	for _, i := range []int{0, 4, 5} {
		if claimed[i] != 0 || skipped[i] != 1 {
			t.Fatalf("clean cell %d: claimed %d, skipped %d; want a manifest skip",
				i, claimed[i], skipped[i])
		}
	}

	// The reused results must match a fresh execution bit for bit: the
	// manifest round-trips every field the figures aggregate.
	fresh, err := Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if results2[0].Runtime != fresh.Runtime || results2[0].LCOPercent != fresh.LCOPercent ||
		results2[0].CSCompleted != fresh.CSCompleted {
		t.Fatalf("manifest-reconstructed results diverge:\n%+v\nvs fresh\n%+v", results2[0], fresh)
	}
}

// TestFig2DeterministicWithRetriesEnabled pins the acceptance bar: on a
// fault-free sweep, enabling retries changes nothing, at any worker count.
func TestFig2DeterministicWithRetriesEnabled(t *testing.T) {
	ref, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		o := tiny()
		o.Retries, o.Workers = 2, workers
		r, err := Fig2(o)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := r.Render(), ref.Render(); got != want {
			t.Fatalf("Fig2 with retries at workers=%d differs from baseline:\n%s\nvs\n%s",
				workers, got, want)
		}
	}
}
