package experiments

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inpg/internal/fleet"
	"inpg/internal/manifest"
	"inpg/internal/runner"
)

// testLogger routes structured fleet logs into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// startFleet serves a coordinator over loopback HTTP with n real workers
// and returns it with a teardown that shuts the fleet down cleanly.
func startFleet(t *testing.T, cfg fleet.Config, n int, worker fleet.WorkerConfig) (*fleet.Coordinator, func()) {
	t.Helper()
	coord := fleet.NewCoordinator(cfg)
	srv := httptest.NewServer(coord)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := worker
		w.Coordinator = srv.URL
		w.ID = string(rune('a'+i)) + "-worker"
		w.PollInterval = 2 * time.Millisecond
		w.Log = testLogger(t)
		wk := fleet.NewWorker(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk.Run()
		}()
	}
	return coord, func() {
		coord.Shutdown()
		wg.Wait()
		srv.Close()
	}
}

// TestFleetFig2ByteIdentical is the PR's acceptance bar: a figure sweep
// distributed over a coordinator and two workers renders byte-identically
// to the single-process run.
func TestFleetFig2ByteIdentical(t *testing.T) {
	ref, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}

	coord, stop := startFleet(t, fleet.Config{LeaseTTL: 10 * time.Second}, 2, fleet.WorkerConfig{})
	defer stop()
	o := tiny()
	o.Campaign = coord
	got, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != ref.Render() {
		t.Fatalf("fleet Fig2 differs from single-process run:\n%s\nvs\n%s", got.Render(), ref.Render())
	}
}

// TestFleetChaosKillByteIdentical kills one worker mid-lease and demands
// the sweep still complete — through lease reclaim onto the survivor —
// with figure bytes unchanged, plus at least one reclaim on the books.
func TestFleetChaosKillByteIdentical(t *testing.T) {
	ref, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}

	coord := fleet.NewCoordinator(fleet.Config{LeaseTTL: 300 * time.Millisecond, Log: testLogger(t)})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	// The victim dies holding its second lease; its heartbeats stop and
	// the lease must be reclaimed for the sweep to finish.
	killed := make(chan struct{})
	victim := fleet.NewWorker(fleet.WorkerConfig{Coordinator: srv.URL, ID: "victim",
		PollInterval: 2 * time.Millisecond, ChaosKillAfter: 2,
		Exit: func(int) { close(killed) }, Log: testLogger(t)})
	survivor := fleet.NewWorker(fleet.WorkerConfig{Coordinator: srv.URL, ID: "survivor",
		PollInterval: 2 * time.Millisecond, Log: testLogger(t)})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); victim.Run() }()
	go func() { defer wg.Done(); survivor.Run() }()

	o := tiny()
	o.Campaign = coord
	got, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("chaos kill never fired")
	}
	if st := coord.Status(); st.Reclaims < 1 {
		t.Fatalf("reclaims = %d, want >= 1 (the victim's abandoned lease)", st.Reclaims)
	}
	if got.Render() != ref.Render() {
		t.Fatalf("chaos-ridden fleet Fig2 differs from single-process run:\n%s\nvs\n%s",
			got.Render(), ref.Render())
	}
	coord.Shutdown()
	wg.Wait()
}

// TestFleetManifestsAndResume: a fleet campaign writes the same per-run
// manifests a local sweep does (via the shared observer plumbing) plus a
// campaign journal, and a local -resume run promotes the fleet's
// manifest directory without re-executing anything.
func TestFleetManifestsAndResume(t *testing.T) {
	dir := t.TempDir()
	coord, stop := startFleet(t, fleet.Config{LeaseTTL: 10 * time.Second, ManifestDir: dir}, 2, fleet.WorkerConfig{})
	o := tiny()
	o.Campaign = coord
	o.ManifestDir = dir
	ref, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	stop()

	prior, warnings, err := manifest.ScanDir(dir, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("scan warnings: %v", warnings)
	}
	if len(prior) == 0 {
		t.Fatal("fleet campaign wrote no manifests")
	}
	j, err := fleet.ReadJournal(dir + "/" + fleet.JournalFilename("fig2"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Cells != len(prior) {
		t.Fatalf("journal cells = %d, manifests = %d", j.Cells, len(prior))
	}
	total := 0
	for _, n := range j.WorkerCompletions {
		total += n
	}
	if total != j.Cells {
		t.Fatalf("worker completions %v, want %d total", j.WorkerCompletions, j.Cells)
	}

	// Resume locally from the fleet's directory: every cell is a skip.
	var mu sync.Mutex
	claimed := 0
	o2 := tiny()
	o2.Resume = dir
	o2.ManifestDir = dir
	o2.Observer = func(out runner.Outcome) {
		if !out.Done {
			mu.Lock()
			claimed++
			mu.Unlock()
		}
	}
	got, err := Fig2(o2)
	if err != nil {
		t.Fatal(err)
	}
	if claimed != 0 {
		t.Fatalf("resume from fleet manifests re-executed %d cells, want 0", claimed)
	}
	if got.Render() != ref.Render() {
		t.Fatalf("resumed figure differs from fleet run")
	}
}

// TestFleetCoordinatorCrashRestartByteIdentical is the crash-safety
// acceptance bar: the coordinator is chaos-killed mid-sweep while
// workers hold live leases, a fresh coordinator replays the campaign
// WAL against the same manifest dir, the surviving leases are adopted
// (not reclaimed and redone), and the finished figure is byte-identical
// to the single-process run. The fleet runs token-authenticated
// end-to-end.
func TestFleetCoordinatorCrashRestartByteIdentical(t *testing.T) {
	ref, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Both coordinator incarnations serve behind one URL — the swappable
	// pointer is the test's stand-in for a restarted process reclaiming
	// its listen address — so workers reconnect without reconfiguration.
	var current atomic.Pointer[fleet.Coordinator]
	a := fleet.NewCoordinator(fleet.Config{LeaseTTL: 10 * time.Second, ManifestDir: dir,
		Token: "s3cret", ChaosKillAfter: 2, Exit: func(int) {}, Log: testLogger(t)})
	current.Store(a)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wk := fleet.NewWorker(fleet.WorkerConfig{Coordinator: srv.URL,
			ID: string(rune('a'+i)) + "-worker", Token: "s3cret",
			PollInterval:  2 * time.Millisecond,
			ReconnectBase: 2 * time.Millisecond, ReconnectMax: 10 * time.Millisecond,
			Log: testLogger(t)})
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk.Run()
		}()
	}

	// First incarnation: dies on its second grant, with that lease
	// outstanding on a worker. The interrupted sweep reports its
	// unresolved cells as canceled, not as results.
	oA := tiny()
	oA.Campaign = a
	oA.ManifestDir = dir
	figA, err := Fig2(oA)
	if err != nil {
		t.Fatal(err)
	}
	if len(figA.Missing) == 0 {
		t.Fatal("crashed campaign reported no missing cells")
	}
	for _, m := range figA.Missing {
		if m.Cause != runner.CauseCanceled {
			t.Fatalf("missing cell %d cause = %s, want canceled", m.Index, m.Cause)
		}
	}

	// Second incarnation: same manifest dir, no chaos.
	b := fleet.NewCoordinator(fleet.Config{LeaseTTL: 10 * time.Second, ManifestDir: dir,
		Token: "s3cret", Log: testLogger(t)})
	oB := tiny()
	oB.Campaign = b
	oB.ManifestDir = dir
	var renderB string
	errCh := make(chan error, 1)
	go func() {
		fig, err := Fig2(oB)
		if err == nil {
			renderB = fig.Render()
		}
		errCh <- err
	}()
	// Swap the URL over to B only once its campaign is published, so the
	// orphaned leases are answered with adoption, never Gone.
	deadline := time.Now().Add(30 * time.Second)
	for b.Status().Cells == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted coordinator never published the campaign")
		}
		time.Sleep(time.Millisecond)
	}
	current.Store(b)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	if renderB != ref.Render() {
		t.Fatalf("post-crash fleet Fig2 differs from single-process run:\n%s\nvs\n%s",
			renderB, ref.Render())
	}
	st := b.Status()
	if st.Adopted < 1 {
		t.Fatalf("adopted = %d, want >= 1 (survivor leases must be adopted, not redone)", st.Adopted)
	}
	if st.Replays != 1 {
		t.Fatalf("replays = %d, want 1", st.Replays)
	}
	j, err := fleet.ReadJournal(filepath.Join(dir, fleet.JournalFilename("fig2")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Adopted < 1 || j.Replays != 1 {
		t.Fatalf("journal adopted=%d replays=%d, want >=1 / 1", j.Adopted, j.Replays)
	}
	rep, err := fleet.ReplayWAL(filepath.Join(dir, fleet.WALFilename("fig2")))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Adoptions != j.Adopted {
		t.Fatalf("WAL closed=%v adoptions=%d vs journal %d", rep.Closed, rep.Adoptions, j.Adopted)
	}
	b.Shutdown()
	wg.Wait()
}
