package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/runner"
	"inpg/internal/sim"
	"inpg/internal/workload"
)

// Fig9Case is the execution-timing profile of one mechanism.
type Fig9Case struct {
	Mechanism   inpg.Mechanism
	ParallelPct float64
	COHPct      float64
	CSEPct      float64
	CSCompleted int
	// ProgressVsOriginal is CSCompleted relative to the Original case.
	ProgressVsOriginal float64
	// Strip is the per-thread phase strip chart of the window.
	Strip string
}

// Fig9Result profiles freqmine over a fixed window for the four cases.
type Fig9Result struct {
	Program      string
	WindowCycles uint64
	Threads      int
	Cases        []Fig9Case
	// Missing annotates mechanisms whose profiling run failed; their rows
	// are absent from Cases.
	Missing []Missing
}

// Fig9Window is the profiling window. The paper profiles 30,000 CPU
// cycles of the first 8 threads; this reproduction's scaled platform has
// longer handoffs, so the window is proportionally wider to keep enough
// critical sections inside it for stable percentages.
const (
	Fig9Window  = 200000
	Fig9Threads = 8
)

// Fig9 reproduces Figure 9: the execution timing profile of freqmine under
// Original, OCOR, iNPG and iNPG+OCOR — per-phase cycle shares inside a
// 30,000-cycle window of the first 8 threads, and critical sections
// completed in that window.
func Fig9(o Options) (*Fig9Result, error) {
	p, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}
	r := &Fig9Result{Program: p.ShortName, WindowCycles: Fig9Window, Threads: Fig9Threads}
	baseCS := 0
	for mi, mech := range inpg.Mechanisms {
		cfg := ConfigFor(p, mech, inpg.LockQSL, o)
		cfg.RecordTimeline = true
		cfg.TimelineThreads = Fig9Threads
		cfg.WallTimeBudget = o.RunTimeout
		sys, err := inpg.New(cfg)
		if err == nil {
			_, err = sys.Run()
		}
		if err != nil {
			r.Missing = append(r.Missing, Missing{Sweep: "fig9", Index: mi,
				Cause: runner.Classify(err), Err: err})
			continue
		}
		// Profile a steady-state window: skip the cold start.
		start := sim.Cycle(2000)
		end := start + Fig9Window
		par, coh, cse, cs := sys.Timeline().WindowBreakdown(start, end, Fig9Threads)
		strip := sys.Timeline().StripChart(start, end, Fig9Threads, 96)
		total := par + coh + cse
		c := Fig9Case{Mechanism: mech, CSCompleted: cs, Strip: strip}
		if total > 0 {
			c.ParallelPct = 100 * float64(par) / float64(total)
			c.COHPct = 100 * float64(coh) / float64(total)
			c.CSEPct = 100 * float64(cse) / float64(total)
		}
		if mech == inpg.Original {
			baseCS = cs
		}
		if baseCS > 0 {
			c.ProgressVsOriginal = float64(cs) / float64(baseCS)
		}
		r.Cases = append(r.Cases, c)
	}
	return r, nil
}

// Render prints the Figure 9 phase table.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Figure 9: %s timing profile (%d-cycle window, first %d threads)",
		r.Program, r.WindowCycles, r.Threads))
	fmt.Fprintf(&b, "%-11s %10s %8s %8s %10s %10s\n",
		"mechanism", "parallel%", "COH%", "CSE%", "CS done", "progress")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-11s %9.1f%% %7.1f%% %7.1f%% %10d %9.2fx\n",
			c.Mechanism, c.ParallelPct, c.COHPct, c.CSEPct, c.CSCompleted, c.ProgressVsOriginal)
	}
	b.WriteString("\nphase strips ('.' parallel, 'c' competition, 'z' sleep, '#' critical section):\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "\n[%s]\n%s", c.Mechanism, c.Strip)
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
