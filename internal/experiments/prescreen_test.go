package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inpg"
	"inpg/internal/analytic"
	"inpg/internal/manifest"
)

// TestPrescreenLevelsSelection exercises the pure selection pass on a
// hand-built estimate grid: a mechanism crossover and a serialization
// boundary must be bracketed, the cap must hold, and the choice must be
// deterministic and ladder-ordered.
func TestPrescreenLevelsSelection(t *testing.T) {
	levels := []int{100, 200, 400, 800, 1600, 3200}
	est := make([][]analytic.Estimate, len(levels))
	for i := range est {
		est[i] = make([]analytic.Estimate, 4)
		for m := range est[i] {
			est[i][m] = analytic.Estimate{Runtime: 1000, Contended: i < 2}
		}
		// Original wins at low contention, iNPG+OCOR at high: crossover
		// between rungs 2 and 3.
		if i >= 3 {
			est[i][3].Runtime = 500
		} else {
			est[i][0].Runtime = 900
		}
	}
	sel := PrescreenLevels(levels, est)
	if want := len(levels) / 3; len(sel.Selected) != want {
		t.Fatalf("selected %d levels, want exactly %d", len(sel.Selected), want)
	}
	for i := 1; i < len(sel.Selected); i++ {
		if sel.Selected[i] <= sel.Selected[i-1] {
			t.Fatalf("selection not ascending: %v", sel.Selected)
		}
	}
	// The crossover pair (2,3) outranks everything else here.
	if sel.Selected[0] != 2 || sel.Selected[1] != 3 {
		t.Errorf("selected %v, want the crossover pair [2 3]; scores %v", sel.Selected, sel.Score)
	}
	if r := sel.Reason(3); !strings.Contains(r, "crossover") {
		t.Errorf("rung 3 reason %q should name the crossover", r)
	}
	if r := sel.Reason(1); !strings.Contains(r, "serialization") {
		t.Errorf("rung 1 reason %q should name the serialization boundary", r)
	}

	again := PrescreenLevels(levels, est)
	if len(again.Selected) != len(sel.Selected) {
		t.Fatalf("selection not deterministic")
	}
	for i := range sel.Selected {
		if again.Selected[i] != sel.Selected[i] {
			t.Fatalf("selection not deterministic: %v vs %v", sel.Selected, again.Selected)
		}
	}
}

// TestPreByteIdenticalAndEstimates is the acceptance pin for the hybrid
// sweep: the pre-screened run renders byte-for-byte what the exhaustive
// run renders while simulating at most a third of the cells, and every
// skipped cell is covered by a valid estimate manifest alongside the
// selected cells' run manifests.
func TestPreByteIdenticalAndEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick contention ladder twice")
	}
	o := Options{Scale: 0.05, Seed: 42, Quick: true}
	ex, err := RunPre(o, false)
	if err != nil {
		t.Fatal(err)
	}
	if ex.SimCells != ex.TotalCells {
		t.Errorf("exhaustive mode simulated %d of %d cells, want all", ex.SimCells, ex.TotalCells)
	}

	op := o
	op.ManifestDir = t.TempDir()
	pre, err := RunPre(op, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pre.Render(), ex.Render(); got != want {
		t.Errorf("pre-screened render differs from exhaustive:\n--- exhaustive ---\n%s--- prescreened ---\n%s", want, got)
	}
	if pre.SimCells*3 > pre.TotalCells {
		t.Errorf("pre-screening simulated %d of %d cells; want at least a 3x reduction", pre.SimCells, pre.TotalCells)
	}

	// Skipped cells carry estimate manifests, selected cells run
	// manifests; together they cover the grid exactly.
	entries, err := os.ReadDir(op.ManifestDir)
	if err != nil {
		t.Fatal(err)
	}
	runs, ests := 0, 0
	for _, e := range entries {
		path := filepath.Join(op.ManifestDir, e.Name())
		switch {
		case strings.HasPrefix(e.Name(), "manifest-pre-"):
			runs++
		case strings.HasPrefix(e.Name(), "estimate-pre-"):
			ests++
			m, err := manifest.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if m.Kind != manifest.EstimateKind || m.Status != manifest.StatusEstimated {
				t.Errorf("%s: kind=%q status=%q, want estimate/estimated", path, m.Kind, m.Status)
			}
			if m.Estimate.Reason == "" || len(m.Estimate.Bounds) == 0 {
				t.Errorf("%s: estimate record missing reason or bounds", path)
			}
		default:
			t.Errorf("unexpected artifact %s", e.Name())
		}
	}
	if runs != pre.SimCells {
		t.Errorf("%d run manifests, want %d (one per simulated cell)", runs, pre.SimCells)
	}
	if ests != pre.TotalCells-pre.SimCells {
		t.Errorf("%d estimate manifests, want %d (one per skipped cell)", ests, pre.TotalCells-pre.SimCells)
	}
}

// TestAutoShardsResolution pins the -shards 0 auto mode: classic engine
// on the default 8×8 mesh, sharded on a 16×16 mesh when cores allow.
func TestAutoShardsResolution(t *testing.T) {
	if got := resolvedShards(0, 8, 8); got != 1 {
		t.Errorf("auto shards on 8x8 = %d, want 1 (below the %d-node floor)", got, inpg.AutoShardMinNodes)
	}
	if got := resolvedShards(3, 8, 8); got != 3 {
		t.Errorf("explicit shard count must pass through, got %d", got)
	}
	if got, want := resolvedShards(0, 16, 16), inpg.AutoShards(16, 16); got != want {
		t.Errorf("auto shards on 16x16 = %d, want %d", got, want)
	}
}
