package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/workload"
)

// Fig15Dims are the mesh dimensions swept.
var Fig15Dims = []int{2, 4, 8, 16}

// Fig15Tables are the locking-barrier-table sizes swept (lock barriers and
// EI entries per big router).
var Fig15Tables = []int{4, 16, 64}

// Fig15Result is the NoC-dimension × barrier-table-size sensitivity study:
// ReductionPct[dimIdx][tableIdx] is the mean ROI finish-time reduction of
// iNPG over Original.
type Fig15Result struct {
	Dims       []int
	Tables     []int
	Reduction  [][]float64
	Programs   []string
	TotalRuns  int
	QuickScale float64
	// Missing annotates runs that produced no results; a cell with either
	// run of a pair missing contributes zero reduction.
	Missing []Missing
}

// Fig15Programs keeps the 16×16 (256-core) runs tractable.
var Fig15Programs = []string{"freq", "kdtree"}

// Fig15 reproduces Figure 15: iNPG's ROI reduction as the mesh grows from
// 2×2 to 16×16 and as the locking barrier table is sized 4/16/64. Larger
// meshes put more threads farther from the home, so in-network early
// invalidation saves more; tiny barrier tables throttle big routers once
// enough locks/threads contend.
func Fig15(o Options) (*Fig15Result, error) {
	r := &Fig15Result{Dims: Fig15Dims, Tables: Fig15Tables, Programs: Fig15Programs}
	mk := func(p workload.Profile, dim, tbl int, mech inpg.Mechanism) inpg.Config {
		cfg := ConfigFor(p, mech, inpg.LockQSL, o)
		cfg.MeshWidth, cfg.MeshHeight = dim, dim
		threads := dim * dim
		scale := o.quickScale()
		if threads > 64 {
			scale /= 4 // keep 256-core runs tractable
		}
		cfg.CSPerThread = p.CSPerThread(threads, scale)
		cfg.BarrierEntries = tbl
		// Several concurrent hot locks are what makes the barrier-table
		// capacity bind: with one lock even a 4-entry table never fills.
		cfg.LockCount = 8
		return cfg
	}
	// Submit the whole dim × table × program × mechanism matrix at once:
	// the 256-core cells dominate wall clock, so letting them run while
	// the small meshes finish is where the parallel win is largest.
	var cfgs []inpg.Config
	for _, dim := range Fig15Dims {
		for _, tbl := range Fig15Tables {
			for _, name := range Fig15Programs {
				p, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				cfgs = append(cfgs, mk(p, dim, tbl, inpg.Original), mk(p, dim, tbl, inpg.INPG))
			}
		}
	}
	results, missing, err := runAll(o, "fig15", cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	r.Missing = missing
	next := 0
	for range Fig15Dims {
		var row []float64
		for range Fig15Tables {
			var reductions []float64
			for range Fig15Programs {
				orig, with := results[next], results[next+1]
				next += 2
				var red float64
				if orig != nil && with != nil {
					red = 100 * (1 - mustRatio(float64(with.Runtime), float64(orig.Runtime)))
				}
				reductions = append(reductions, red)
				r.TotalRuns += 2
			}
			row = append(row, meanOf(reductions))
		}
		r.Reduction = append(r.Reduction, row)
	}
	return r, nil
}

// Render prints the sensitivity matrix.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 15: iNPG ROI reduction vs NoC dimension and barrier-table size")
	fmt.Fprintf(&b, "%-8s", "mesh")
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "%7d-entry", t)
	}
	b.WriteByte('\n')
	for i, d := range r.Dims {
		fmt.Fprintf(&b, "%dx%-6d", d, d)
		for _, v := range r.Reduction[i] {
			fmt.Fprintf(&b, "%11.1f%%", v)
		}
		b.WriteByte('\n')
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
