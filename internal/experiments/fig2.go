package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/workload"
)

// Fig2Programs are the three motivational benchmarks of Figure 2.
var Fig2Programs = []string{"kdtree", "facesim", "fluidanimate"}

// Fig2Result holds the percentage of lock coherence overhead (LCO) in
// application running time per program and locking primitive.
type Fig2Result struct {
	Programs []string
	Locks    []inpg.LockKind
	// LCOPercent[programIdx][lockIdx]
	LCOPercent [][]float64
	// Missing annotates cells that produced no results (zero in the table).
	Missing []Missing
}

// Fig2 reproduces Figure 2: %LCO of application running time under the
// five locking primitives for kdtree, facesim and fluidanimate. The
// program × primitive grid is submitted to the parallel runner as one
// batch and aggregated from the ordered results.
func Fig2(o Options) (*Fig2Result, error) {
	r := &Fig2Result{Programs: Fig2Programs, Locks: inpg.LockKinds}
	var cfgs []inpg.Config
	for _, name := range Fig2Programs {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, lk := range inpg.LockKinds {
			cfgs = append(cfgs, ConfigFor(p, inpg.Original, lk, o))
		}
	}
	results, missing, err := runAll(o, "fig2", cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	r.Missing = missing
	for i := range Fig2Programs {
		row := make([]float64, 0, len(inpg.LockKinds))
		for j := range inpg.LockKinds {
			row = append(row, cell(results, i*len(inpg.LockKinds)+j).LCOPercent)
		}
		r.LCOPercent = append(r.LCOPercent, row)
	}
	return r, nil
}

// Render prints the Figure 2 table.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 2: percentage of LCO in application running time")
	fmt.Fprintf(&b, "%-14s", "program")
	for _, lk := range r.Locks {
		fmt.Fprintf(&b, "%8s", lk)
	}
	b.WriteByte('\n')
	for i, p := range r.Programs {
		fmt.Fprintf(&b, "%-14s", p)
		for _, v := range r.LCOPercent[i] {
			fmt.Fprintf(&b, "%7.1f%%", v)
		}
		b.WriteByte('\n')
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
