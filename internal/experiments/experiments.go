// Package experiments regenerates every figure of the paper's evaluation
// (Section 5): one runner per figure, each returning a typed result with a
// paper-style textual rendering. cmd/inpgbench drives them from the
// command line and the root benchmark suite exposes one testing.B
// benchmark per figure.
//
// Runs are scaled-down slices of the ROI (see DESIGN.md): the per-thread
// critical-section quota is profile.CSPerThread(threads, Scale), so the
// full suite completes in minutes while preserving contention structure.
package experiments

import (
	"fmt"
	"os"
	"strings"

	"inpg"
	"inpg/internal/fault"
	"inpg/internal/manifest"
	"inpg/internal/runner"
	"inpg/internal/workload"
)

// Options tunes experiment size.
type Options struct {
	// Scale multiplies each program's ROI critical-section count
	// (per-thread quota = TotalCS/threads × Scale, min 2).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Seeds, when > 1, averages seed-sensitive sweeps (Figures 11/12/13)
	// over that many seeds starting at Seed.
	Seeds int
	// Quick shrinks runs further for benchmarks and smoke tests.
	Quick bool
	// Workers bounds how many simulations of a sweep run concurrently;
	// 0 selects GOMAXPROCS. Every simulation stays single-threaded and
	// seeded, so figure outputs are identical for any worker count.
	Workers int
	// Programs, when non-empty, restricts the program-sweep figures
	// (8, 11/12) to the named workload profiles.
	Programs []string
	// Compat runs every simulation with the engine's always-tick
	// reference mode instead of activity-driven scheduling. Figure
	// outputs are identical either way (the scheduler is cycle-exact);
	// this exists to demonstrate that and to debug scheduler changes.
	Compat bool
	// FaultRate injects transient link and port faults at this combined
	// per-flit rate (see fault.AtRate). Zero — the default — leaves the
	// fault layer entirely out of the build, keeping figure outputs
	// byte-identical to fault-free baselines.
	FaultRate float64
	// FaultSeed seeds the fault injector's keyed hash independently of
	// the simulation seed; zero derives it from Seed.
	FaultSeed int64
	// WatchdogWindow overrides the liveness watchdog (cycles without
	// progress before a run is declared wedged): 0 keeps the default
	// window, negative disables the watchdog.
	WatchdogWindow int64
	// Metrics enables the per-run telemetry registry (internal/metrics)
	// on every configuration a sweep builds. Registered instruments are
	// read only at snapshot time, so figure outputs are byte-identical
	// with metrics on or off (pinned by test).
	Metrics bool
	// MetricsSampleEvery, when positive with Metrics on, samples the
	// registry into a per-run time series at this cycle interval.
	MetricsSampleEvery int
	// ManifestDir, when set, writes one JSON run manifest per simulation
	// (internal/manifest) into this directory, named after the sweep and
	// the run's submission index.
	ManifestDir string
	// Observer, when set, receives every run's lifecycle outcomes — the
	// live sweep monitor's feed. It is called from worker goroutines and
	// must be safe for concurrent use.
	Observer runner.Observer
}

// DefaultOptions returns the options used for the published EXPERIMENTS.md
// numbers.
func DefaultOptions() Options { return Options{Scale: 0.05, Seed: 42} }

// quickScale reduces the CS quota under Quick mode.
func (o Options) quickScale() float64 {
	if o.Quick {
		return o.Scale / 2
	}
	return o.Scale
}

// ConfigFor builds the simulation configuration for one program under one
// mechanism and lock primitive on the default 8×8 platform.
func ConfigFor(p workload.Profile, mech inpg.Mechanism, lk inpg.LockKind, o Options) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.Mechanism = mech
	cfg.Lock = lk
	cfg.Seed = o.Seed
	threads := cfg.MeshWidth * cfg.MeshHeight
	cfg.CSPerThread = p.CSPerThread(threads, o.quickScale())
	cfg.CSCycles = p.AvgCSCycles
	cfg.CSJitter = p.AvgCSCycles / 3
	cfg.ParallelCycles = p.ParallelCycles
	cfg.ParallelJitter = p.ParallelCycles / 3
	cfg.AlwaysTick = o.Compat
	cfg.WatchdogWindow = o.WatchdogWindow
	cfg.Metrics = o.Metrics
	cfg.MetricsSampleEvery = o.MetricsSampleEvery
	if o.FaultRate > 0 {
		cfg.Fault = fault.AtRate(o.FaultRate, o.faultSeed())
	}
	return cfg
}

// faultSeed resolves the injector seed: explicit, or derived from Seed.
func (o Options) faultSeed() int64 {
	if o.FaultSeed != 0 {
		return o.FaultSeed
	}
	return o.Seed ^ 0x66a0_17fa
}

// seedList expands Options into the seeds to average over.
func (o Options) seedList() []int64 {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = o.Seed + int64(i)*1009
	}
	return out
}

// Run executes one configuration.
func Run(cfg inpg.Config) (*inpg.Results, error) {
	sys, err := inpg.New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// runAll executes a batch of configurations across Options.Workers cores
// and returns the results in submission order. Sweeps build their full
// configuration list up front, submit it here, and aggregate from the
// ordered results, so their figures are identical for any worker count.
// sweep names the batch in run manifests and monitor feeds.
func runAll(o Options, sweep string, cfgs []inpg.Config) ([]*inpg.Results, error) {
	return runner.RunObserved(cfgs, o.Workers, o.observer(sweep))
}

// observer composes manifest emission with the caller-installed observer;
// nil when neither is configured, so unobserved sweeps take the plain
// path. Manifest write failures are reported to stderr rather than
// aborting a sweep that already holds valid results.
func (o Options) observer(sweep string) runner.Observer {
	if o.ManifestDir == "" && o.Observer == nil {
		return nil
	}
	return func(out runner.Outcome) {
		if out.Done && o.ManifestDir != "" {
			m := manifest.Build(sweep, out.Index, out.Cfg, out.Res, out.Snapshot, out.WallSeconds, out.Err)
			if _, err := m.WriteFile(o.ManifestDir); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: manifest %s/%d: %v\n", sweep, out.Index, err)
			}
		}
		if o.Observer != nil {
			o.Observer(out)
		}
	}
}

// profiles returns the workload set a program sweep covers: all 24
// profiles, or the Options.Programs subset.
func (o Options) profiles() ([]workload.Profile, error) {
	if len(o.Programs) == 0 {
		return workload.Profiles(), nil
	}
	out := make([]workload.Profile, 0, len(o.Programs))
	for _, name := range o.Programs {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// mustRatio returns num/den, guarding zero denominators.
func mustRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// meanOf averages a slice.
func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// maxOf returns the maximum of a slice (0 when empty). Unlike a
// zero-seeded fold it is correct for all-negative inputs.
func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// header renders a section banner.
func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
}
