// Package experiments regenerates every figure of the paper's evaluation
// (Section 5): one runner per figure, each returning a typed result with a
// paper-style textual rendering. cmd/inpgbench drives them from the
// command line and the root benchmark suite exposes one testing.B
// benchmark per figure.
//
// Runs are scaled-down slices of the ROI (see DESIGN.md): the per-thread
// critical-section quota is profile.CSPerThread(threads, Scale), so the
// full suite completes in minutes while preserving contention structure.
package experiments

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"inpg"
	"inpg/internal/fault"
	"inpg/internal/manifest"
	"inpg/internal/runner"
	"inpg/internal/workload"
)

// Options tunes experiment size.
type Options struct {
	// Scale multiplies each program's ROI critical-section count
	// (per-thread quota = TotalCS/threads × Scale, min 2).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Seeds, when > 1, averages seed-sensitive sweeps (Figures 11/12/13)
	// over that many seeds starting at Seed.
	Seeds int
	// Quick shrinks runs further for benchmarks and smoke tests.
	Quick bool
	// Workers bounds how many simulations of a sweep run concurrently;
	// 0 selects GOMAXPROCS. Every simulation stays single-threaded and
	// seeded, so figure outputs are identical for any worker count.
	Workers int
	// Programs, when non-empty, restricts the program-sweep figures
	// (8, 11/12) to the named workload profiles.
	Programs []string
	// Shards splits each simulation's mesh into this many row stripes
	// ticked by parallel shard workers (Config.Shards). Like Workers it is
	// an execution strategy, not a simulation parameter: figure outputs are
	// bit-identical for every value. 0 — the default — resolves per run
	// via inpg.AutoShards (one shard per core, capped at the mesh height,
	// and the classic engine on meshes under inpg.AutoShardMinNodes
	// nodes, so the default 8×8 sweeps are unchanged); 1 forces the
	// classic single-threaded engine. Combining Shards > 1 with
	// Workers > 1 oversubscribes the host — prefer sharding single long
	// runs and worker-parallelism for sweeps.
	Shards int
	// Compat runs every simulation with the engine's always-tick
	// reference mode instead of activity-driven scheduling. Figure
	// outputs are identical either way (the scheduler is cycle-exact);
	// this exists to demonstrate that and to debug scheduler changes.
	Compat bool
	// FaultRate injects transient link and port faults at this combined
	// per-flit rate (see fault.AtRate). Zero — the default — leaves the
	// fault layer entirely out of the build, keeping figure outputs
	// byte-identical to fault-free baselines.
	FaultRate float64
	// FaultSeed seeds the fault injector's keyed hash independently of
	// the simulation seed; zero derives it from Seed.
	FaultSeed int64
	// WatchdogWindow overrides the liveness watchdog (cycles without
	// progress before a run is declared wedged): 0 keeps the default
	// window, negative disables the watchdog.
	WatchdogWindow int64
	// Metrics enables the per-run telemetry registry (internal/metrics)
	// on every configuration a sweep builds. Registered instruments are
	// read only at snapshot time, so figure outputs are byte-identical
	// with metrics on or off (pinned by test).
	Metrics bool
	// MetricsSampleEvery, when positive with Metrics on, samples the
	// registry into a per-run time series at this cycle interval.
	MetricsSampleEvery int
	// JourneyRate samples this fraction of critical-section acquisitions
	// into causal lock-journey records (internal/journey). A nonzero rate
	// implies Metrics (the per-stage histograms live in the registry);
	// sampling never perturbs simulation results, so figures other than
	// the latency breakdown are byte-identical at any rate.
	JourneyRate float64
	// ManifestDir, when set, writes one JSON run manifest per simulation
	// (internal/manifest) into this directory, named after the sweep and
	// the run's submission index.
	ManifestDir string
	// Observer, when set, receives every run's lifecycle outcomes — the
	// live sweep monitor's feed. It is called from worker goroutines and
	// must be safe for concurrent use.
	Observer runner.Observer
	// Retries re-attempts each failed run up to this many times with
	// deterministic jittered backoff before quarantining its cell. Zero —
	// the default — fails a cell on its first error. Retries never engage
	// on clean runs, so figure outputs stay byte-identical.
	Retries int
	// RunTimeout, when positive, bounds each run's wall-clock time via
	// cooperative cancellation; an overrunning run fails its cell with a
	// timeout-class error carrying full diagnostics.
	RunTimeout time.Duration
	// Resume, when set, names a manifest directory from a prior
	// invocation: cells whose manifest records a successful run of a
	// configuration with a matching digest are skipped and their results
	// reconstructed from the manifest; only the gaps re-run.
	Resume string
	// ChaosPanicCells and ChaosDeadlineCells inject failures into the
	// named sweep cells (by submission index) — panics at attempt start,
	// or a wall-time budget so tight the run always times out. They exist
	// for chaos smoke tests of the keep-going machinery; empty slices —
	// the default — leave every sweep untouched.
	ChaosPanicCells    []int
	ChaosDeadlineCells []int
	// Campaign, when set, dispatches every sweep through a distributed
	// campaign runner — the fleet coordinator — instead of the local
	// worker pool. The runner receives the same Policy a local sweep
	// would (Skip/PreRun/Observer, so resume, pre-screening, manifests
	// and the monitor work unchanged); Workers and PreAttempt apply only
	// to local execution.
	Campaign CampaignRunner
	// Log, when set, receives the retry machinery's structured records
	// (runner.Policy.Log). Nil discards.
	Log *slog.Logger
}

// CampaignRunner distributes one sweep across external executors under
// runner.RunResilient's contract: index-aligned results and final typed
// errors. internal/fleet's Coordinator implements it.
type CampaignRunner interface {
	RunCampaign(sweep string, cfgs []inpg.Config, p runner.Policy) ([]*inpg.Results, []*runner.RunError)
}

// chaosDeadline is the wall-time budget ChaosDeadlineCells impose: below
// any real run's first cooperative abort check, so the cell always fails
// with a timeout regardless of host speed.
const chaosDeadline = time.Nanosecond

// Missing annotates one sweep cell that produced no results after every
// configured attempt: which cell, and the final typed failure. Figures
// carry their Missing list and render it after the table instead of dying
// on the first bad cell.
type Missing struct {
	Sweep string
	Index int
	Cause runner.Cause
	Err   error
}

// String renders the annotation in the stable MISSING(cell, cause) form.
func (m Missing) String() string {
	return fmt.Sprintf("MISSING(%s/%d, %s): %v", m.Sweep, m.Index, m.Cause, m.Err)
}

// missingCells converts a per-index error vector into Missing annotations.
func missingCells(sweep string, errs []*runner.RunError) []Missing {
	var out []Missing
	for i, err := range errs {
		if err != nil {
			out = append(out, Missing{Sweep: sweep, Index: i, Cause: err.Cause, Err: err})
		}
	}
	return out
}

// renderMissing appends the annotations to a figure rendering; a clean
// sweep appends nothing, keeping fault-free output byte-identical.
func renderMissing(b *strings.Builder, missing []Missing) {
	for _, m := range missing {
		fmt.Fprintf(b, "%s\n", m)
	}
}

// cell returns the i'th result, substituting an empty Results for a
// missing cell so partial aggregation can proceed; the gap itself is
// reported through the sweep's Missing annotations.
func cell(results []*inpg.Results, i int) *inpg.Results {
	if i < len(results) && results[i] != nil {
		return results[i]
	}
	return &inpg.Results{}
}

// DefaultOptions returns the options used for the published EXPERIMENTS.md
// numbers.
func DefaultOptions() Options { return Options{Scale: 0.05, Seed: 42} }

// quickScale reduces the CS quota under Quick mode.
func (o Options) quickScale() float64 {
	if o.Quick {
		return o.Scale / 2
	}
	return o.Scale
}

// ConfigFor builds the simulation configuration for one program under one
// mechanism and lock primitive on the default 8×8 platform.
func ConfigFor(p workload.Profile, mech inpg.Mechanism, lk inpg.LockKind, o Options) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.Mechanism = mech
	cfg.Lock = lk
	cfg.Seed = o.Seed
	threads := cfg.MeshWidth * cfg.MeshHeight
	cfg.CSPerThread = p.CSPerThread(threads, o.quickScale())
	cfg.CSCycles = p.AvgCSCycles
	cfg.CSJitter = p.AvgCSCycles / 3
	cfg.ParallelCycles = p.ParallelCycles
	cfg.ParallelJitter = p.ParallelCycles / 3
	cfg.AlwaysTick = o.Compat
	cfg.Shards = resolvedShards(o.Shards, cfg.MeshWidth, cfg.MeshHeight)
	cfg.WatchdogWindow = o.WatchdogWindow
	cfg.Metrics = o.Metrics
	cfg.MetricsSampleEvery = o.MetricsSampleEvery
	cfg.JourneyRate = o.JourneyRate
	if cfg.JourneyRate > 0 {
		// Journey stage histograms live in the telemetry registry.
		cfg.Metrics = true
	}
	if o.FaultRate > 0 {
		cfg.Fault = fault.AtRate(o.FaultRate, o.faultSeed())
	}
	return cfg
}

// resolvedShards maps the shard-count auto sentinel (0) onto
// inpg.AutoShards for the run's mesh; explicit counts pass through.
func resolvedShards(shards, meshWidth, meshHeight int) int {
	if shards == 0 {
		return inpg.AutoShards(meshWidth, meshHeight)
	}
	return shards
}

// faultSeed resolves the injector seed: explicit, or derived from Seed.
func (o Options) faultSeed() int64 {
	if o.FaultSeed != 0 {
		return o.FaultSeed
	}
	return o.Seed ^ 0x66a0_17fa
}

// seedList expands Options into the seeds to average over.
func (o Options) seedList() []int64 {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = o.Seed + int64(i)*1009
	}
	return out
}

// Run executes one configuration.
func Run(cfg inpg.Config) (*inpg.Results, error) {
	sys, err := inpg.New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// runAll executes a batch of configurations across Options.Workers cores
// in keep-going mode and returns the results in submission order, one nil
// slot plus one Missing annotation per cell that failed every configured
// attempt. Sweeps build their full configuration list up front, submit it
// here, and aggregate from the ordered results, so their figures are
// identical for any worker count; on fault-free sweeps the Missing list
// is empty and results match the fail-fast path bit for bit. sweep names
// the batch in run manifests and monitor feeds. The error return is
// reserved for infrastructure failures (an unreadable resume directory),
// never for individual runs.
func runAll(o Options, sweep string, cfgs []inpg.Config) ([]*inpg.Results, []Missing, error) {
	return runAllSkip(o, sweep, cfgs, nil)
}

// runAllSkip is runAll with a caller-supplied skip predicate: cells
// where skip(i) is true never execute and return nil results with no
// Missing annotation. The analytic pre-screener uses it to dispatch
// only a sweep's interesting cells while keeping submission indexes —
// and thus manifest filenames and resume digests — identical to the
// exhaustive grid.
func runAllSkip(o Options, sweep string, cfgs []inpg.Config, skip func(int) bool) ([]*inpg.Results, []Missing, error) {
	p := runner.Policy{
		Workers:    o.Workers,
		Retries:    o.Retries,
		RunTimeout: o.RunTimeout,
		Observer:   o.observer(sweep),
		PreRun:     o.chaosPreRun(),
		PreAttempt: o.chaosPreAttempt(),
		Skip:       skip,
		Log:        o.Log,
	}
	var prefill []*inpg.Results
	if o.Resume != "" {
		prior, warnings, err := manifest.ScanDir(o.Resume, sweep)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: resume scan %s: %w", sweep, o.Resume, err)
		}
		for _, warning := range warnings {
			fmt.Fprintf(os.Stderr, "experiments: resume: %s\n", warning)
		}
		prefill = make([]*inpg.Results, len(cfgs))
		for i, cfg := range cfgs {
			if m, ok := prior[i]; ok && m.Status == manifest.StatusOK && m.ConfigDigest == cfg.Digest() {
				prefill[i] = m.ToResults()
			}
		}
		p.Skip = func(i int) bool { return prefill[i] != nil || (skip != nil && skip(i)) }
	}
	var results []*inpg.Results
	var errs []*runner.RunError
	if o.Campaign != nil {
		results, errs = o.Campaign.RunCampaign(sweep, cfgs, p)
	} else {
		results, errs = runner.RunResilient(cfgs, p)
	}
	for i, r := range prefill {
		if r != nil && results[i] == nil {
			results[i] = r
		}
	}
	return results, missingCells(sweep, errs), nil
}

// chaosPreRun maps ChaosDeadlineCells onto a Policy.PreRun that imposes
// an unmeetable wall-time budget on the named cells; nil when unused.
func (o Options) chaosPreRun() func(int, inpg.Config) inpg.Config {
	if len(o.ChaosDeadlineCells) == 0 {
		return nil
	}
	cells := intSet(o.ChaosDeadlineCells)
	return func(i int, cfg inpg.Config) inpg.Config {
		if cells[i] {
			cfg.WallTimeBudget = chaosDeadline
		}
		return cfg
	}
}

// chaosPreAttempt maps ChaosPanicCells onto a Policy.PreAttempt that
// panics at the start of the named cells' attempts; nil when unused.
func (o Options) chaosPreAttempt() func(i, attempt int) {
	if len(o.ChaosPanicCells) == 0 {
		return nil
	}
	cells := intSet(o.ChaosPanicCells)
	return func(i, attempt int) {
		if cells[i] {
			panic(fmt.Sprintf("chaos: injected panic in cell %d (attempt %d)", i, attempt))
		}
	}
}

// intSet builds a membership set from a cell-index list.
func intSet(v []int) map[int]bool {
	s := make(map[int]bool, len(v))
	for _, x := range v {
		s[x] = true
	}
	return s
}

// observer composes manifest emission with the caller-installed observer;
// nil when neither is configured, so unobserved sweeps take the plain
// path. Manifest write failures are reported to stderr rather than
// aborting a sweep that already holds valid results.
func (o Options) observer(sweep string) runner.Observer {
	if o.ManifestDir == "" && o.Observer == nil {
		return nil
	}
	return func(out runner.Outcome) {
		// Skipped cells are resume hits: their manifest on disk is the
		// good record being reused — never overwrite it with a blank one.
		if out.Done && out.Status != runner.StatusSkipped && o.ManifestDir != "" {
			m := manifest.Build(sweep, out.Index, out.Cfg, out.Res, out.Snapshot, out.WallSeconds, out.Err)
			if _, err := m.WriteFile(o.ManifestDir); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: manifest %s/%d: %v\n", sweep, out.Index, err)
			}
		}
		if o.Observer != nil {
			o.Observer(out)
		}
	}
}

// profiles returns the workload set a program sweep covers: all 24
// profiles, or the Options.Programs subset.
func (o Options) profiles() ([]workload.Profile, error) {
	if len(o.Programs) == 0 {
		return workload.Profiles(), nil
	}
	out := make([]workload.Profile, 0, len(o.Programs))
	for _, name := range o.Programs {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// mustRatio returns num/den, guarding zero denominators.
func mustRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// meanOf averages a slice.
func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// maxOf returns the maximum of a slice (0 when empty). Unlike a
// zero-seeded fold it is correct for all-negative inputs.
func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// header renders a section banner.
func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
}
