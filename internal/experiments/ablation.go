package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/workload"
)

// Ablation studies for the design choices DESIGN.md calls out beyond the
// paper's own sensitivity figures: the barrier time-to-live, the queue
// spin-lock's sleep economics (context-switch cost), and the spin
// interval. Each sweep varies exactly one knob on a fixed contended
// workload and reports the iNPG-relevant metrics.

// AblationRow is one knob setting's outcome.
type AblationRow struct {
	Setting   string
	Runtime   uint64
	COH       uint64
	RTTMean   float64
	EarlyInvs uint64
	Sleeps    int
}

// AblationResult is one sweep.
type AblationResult struct {
	Name string
	What string // one-line description of the knob
	Rows []AblationRow
	// Missing annotates settings whose run produced no results.
	Missing []Missing
}

// baseAblationConfig returns the contended reference point.
func baseAblationConfig(o Options) inpg.Config {
	p, _ := workload.ByName("freqmine")
	cfg := ConfigFor(p, inpg.INPG, inpg.LockQSL, o)
	cfg.ParallelCycles = 2000
	cfg.ParallelJitter = 600
	return cfg
}

func ablate(name, what string, settings []string, mk func(i int, cfg *inpg.Config)) func(Options) (*AblationResult, error) {
	return func(o Options) (*AblationResult, error) {
		out := &AblationResult{Name: name, What: what}
		cfgs := make([]inpg.Config, len(settings))
		for i := range settings {
			cfgs[i] = baseAblationConfig(o)
			mk(i, &cfgs[i])
		}
		// Each knob gets its own sweep name so manifests from different
		// ablations never collide on (sweep, index).
		results, missing, err := runAll(o, "ablation-"+name, cfgs)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", name, err)
		}
		out.Missing = missing
		for i, s := range settings {
			res := cell(results, i)
			out.Rows = append(out.Rows, AblationRow{
				Setting:   s,
				Runtime:   res.Runtime,
				COH:       res.COHTotal(),
				RTTMean:   res.RTTMean,
				EarlyInvs: res.EarlyInvs,
				Sleeps:    res.Sleeps,
			})
		}
		return out, nil
	}
}

// AblationBarrierTTL sweeps the locking-barrier time-to-live: too short
// and barriers expire before the competition burst arrives (few stops);
// too long and stale barriers stop winners pointlessly.
var AblationBarrierTTL = ablate("barrier-ttl",
	"locking barrier time-to-live in cycles (paper default 128)",
	[]string{"ttl=16", "ttl=64", "ttl=128", "ttl=512", "ttl=2048"},
	func(i int, cfg *inpg.Config) {
		cfg.BarrierTTL = []int{16, 64, 128, 512, 2048}[i]
	})

// AblationCtxSwitch sweeps the QSL sleep economics: cheap sleeps shrink
// OCOR's and iNPG's sleep-avoidance value, expensive sleeps amplify it.
var AblationCtxSwitch = ablate("ctx-switch",
	"context-switch cost around a QSL sleep, in cycles",
	[]string{"ctx=300", "ctx=1200", "ctx=2500", "ctx=5000"},
	func(i int, cfg *inpg.Config) {
		v := []int{300, 1200, 2500, 5000}[i]
		cfg.CtxSwitchCycles = v
		cfg.WakeupCycles = v / 2
	})

// AblationSpinInterval sweeps the poll pacing of the spinning primitives.
var AblationSpinInterval = ablate("spin-interval",
	"cycles between failed lock polls (via QSL retries scaling)",
	[]string{"retries=32", "retries=128", "retries=512"},
	func(i int, cfg *inpg.Config) {
		cfg.QSLRetries = []int{32, 128, 512}[i]
	})

// AblationDeployment compares mechanism off/on at fixed everything else —
// the reference delta every other ablation row is judged against.
var AblationDeployment = ablate("mechanism",
	"Original vs iNPG vs iNPG+OCOR on the reference workload",
	[]string{"Original", "iNPG", "iNPG+OCOR"},
	func(i int, cfg *inpg.Config) {
		cfg.Mechanism = []inpg.Mechanism{inpg.Original, inpg.INPG, inpg.INPGOCOR}[i]
	})

// AblationAckOverlap isolates the ack-overlap component of iNPG: with the
// overlap disabled, an early invalidation still happens near the loser but
// its relayed ack can no longer pre-satisfy the home's direct-invalidation
// wait — quantifying how much of the round-trip saving comes from the
// overlap versus the in-network invalidation alone.
var AblationAckOverlap = ablate("ack-overlap",
	"iNPG with and without relayed acks satisfying direct waits",
	[]string{"overlap=on", "overlap=off"},
	func(i int, cfg *inpg.Config) {
		cfg.DisableAckOverlap = i == 1
	})

// Ablations runs every sweep.
func Ablations(o Options) ([]*AblationResult, error) {
	var out []*AblationResult
	for _, run := range []func(Options) (*AblationResult, error){
		AblationDeployment, AblationBarrierTTL, AblationCtxSwitch,
		AblationSpinInterval, AblationAckOverlap,
	} {
		r, err := run(o)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Render prints one ablation table.
func (a *AblationResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Ablation %s: %s", a.Name, a.What))
	fmt.Fprintf(&b, "%-12s %10s %12s %9s %10s %7s\n",
		"setting", "runtime", "COH", "rtt", "earlyInv", "sleeps")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s %10d %12d %9.1f %10d %7d\n",
			r.Setting, r.Runtime, r.COH, r.RTTMean, r.EarlyInvs, r.Sleeps)
	}
	renderMissing(&b, a.Missing)
	return b.String()
}
