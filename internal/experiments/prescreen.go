package experiments

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"inpg"
	"inpg/internal/analytic"
	"inpg/internal/fault"
	"inpg/internal/manifest"
)

// The pre-screened contention sweep: the analytic fast model
// (internal/analytic) evaluates the full contention ladder in
// microseconds, a pure selection pass picks the interesting levels —
// mechanism crossovers, serialization boundaries, the gain-curve knee,
// and the band around peak iNPG+OCOR gain — and only those levels'
// cells are dispatched to the detailed cycle simulator. Every other
// cell is covered by an estimate manifest carrying the model's answer
// and its recorded error bounds.
//
// The figure output is byte-identical between the exhaustive and
// pre-screened modes, pinned by test: selection reads only analytic
// estimates (identical either way, the model being a pure function of
// the config) and the rendering reads only the selected cells'
// simulated values. Exhaustive mode still simulates every cell — the
// extras land in run manifests but never in the figure.

// PreLadder is the full contention ladder: parallel-phase lengths from
// total lock serialization to near-zero contention, geometric so the
// knee of the gain curve cannot fall between rungs.
var PreLadder = []int{200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400, 204800, 409600}

// preLevels returns the ladder for one run: every other rung under
// Quick, which preserves the endpoints and the knee region while
// halving the grid.
func preLevels(o Options) []int {
	if !o.Quick {
		return PreLadder
	}
	var out []int
	for i := 0; i < len(PreLadder); i += 2 {
		out = append(out, PreLadder[i])
	}
	return out
}

// preConfig builds one ladder cell: the default 8×8 platform under the
// paper's default QSL lock, with a fixed synthetic critical-section
// shape (the analytic table's calibration family) so the ladder varies
// contention and nothing else.
func preConfig(pc int, mech inpg.Mechanism, o Options) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.Mechanism = mech
	cfg.Lock = inpg.LockQSL
	cfg.Seed = o.Seed
	cfg.CSPerThread = 4
	if o.Quick {
		cfg.CSPerThread = 2
	}
	cfg.CSCycles = 100
	cfg.CSJitter = 33
	cfg.ParallelCycles = pc
	cfg.ParallelJitter = pc / 3
	cfg.AlwaysTick = o.Compat
	cfg.Shards = resolvedShards(o.Shards, cfg.MeshWidth, cfg.MeshHeight)
	cfg.WatchdogWindow = o.WatchdogWindow
	cfg.Metrics = o.Metrics
	cfg.MetricsSampleEvery = o.MetricsSampleEvery
	if o.FaultRate > 0 {
		cfg.Fault = fault.AtRate(o.FaultRate, o.faultSeed())
	}
	return cfg
}

// PreSelection is the analytic screening decision for one ladder: which
// levels the detailed simulator must run and why. It is a pure function
// of the ladder's analytic estimates, so the exhaustive and pre-screened
// modes always agree on it.
type PreSelection struct {
	// Levels is the contention ladder (parallel cycles per rung).
	Levels []int
	// Selected indexes Levels, ascending: the rungs whose cells run in
	// the detailed simulator. At most len(Levels)/3 rungs are selected,
	// so pre-screening always cuts detailed cells by at least 3×.
	Selected []int
	// Score is each rung's interest score (diagnostics and manifests).
	Score []float64
	// Reasons lists each rung's qualitative selection markers.
	Reasons [][]string
}

// IsSelected reports whether rung li survives the screen.
func (s PreSelection) IsSelected(li int) bool {
	for _, i := range s.Selected {
		if i == li {
			return true
		}
	}
	return false
}

// Reason renders rung li's selection markers for the figure header.
func (s PreSelection) Reason(li int) string {
	if len(s.Reasons[li]) == 0 {
		return "ranked by analytic interest score"
	}
	return strings.Join(s.Reasons[li], "; ")
}

// PrescreenLevels scores every ladder rung from the analytic estimates
// (est[level][mechanism], mechanism-indexed like inpg.Mechanisms) and
// selects the top len(levels)/3: rungs adjacent to a change in the
// best-estimated mechanism, rungs where the lock leaves (or enters) the
// fully serialized regime, the rung at the knee of the iNPG+OCOR gain
// curve, and rungs within 5% of that curve's peak.
func PrescreenLevels(levels []int, est [][]analytic.Estimate) PreSelection {
	n := len(levels)
	sel := PreSelection{Levels: levels, Score: make([]float64, n), Reasons: make([][]string, n)}
	mark := func(i int, pts float64, why string) {
		sel.Score[i] += pts
		for _, r := range sel.Reasons[i] {
			if r == why {
				return
			}
		}
		sel.Reasons[i] = append(sel.Reasons[i], why)
	}

	// Best mechanism per rung by estimated runtime; a change between
	// adjacent rungs brackets a crossover the figure must resolve.
	best := make([]int, n)
	for i := range est {
		for m := 1; m < len(est[i]); m++ {
			if est[i][m].Runtime < est[i][best[i]].Runtime {
				best[i] = m
			}
		}
	}
	for i := 0; i+1 < n; i++ {
		if best[i] != best[i+1] {
			mark(i, 3, "mechanism crossover")
			mark(i+1, 3, "mechanism crossover")
		}
		if est[i][0].Contended != est[i+1][0].Contended {
			mark(i, 2, "serialization boundary")
			mark(i+1, 2, "serialization boundary")
		}
	}

	// iNPG+OCOR gain over Original: the band near the peak, and the
	// knee (largest curvature of the log-gain curve).
	sp := make([]float64, n)
	maxSp := 0.0
	for i := range est {
		sp[i] = mustRatio(est[i][0].Runtime, est[i][len(est[i])-1].Runtime)
		if sp[i] > maxSp {
			maxSp = sp[i]
		}
	}
	for i := range sp {
		if maxSp > 0 && sp[i] >= 0.95*maxSp {
			mark(i, 2, "within 5% of peak iNPG+OCOR gain")
		}
	}
	curv := make([]float64, n)
	maxCurv := 0.0
	for i := 1; i+1 < n; i++ {
		if sp[i-1] > 0 && sp[i] > 0 && sp[i+1] > 0 {
			curv[i] = math.Abs(math.Log(sp[i-1]) - 2*math.Log(sp[i]) + math.Log(sp[i+1]))
			if curv[i] > maxCurv {
				maxCurv = curv[i]
			}
		}
	}
	for i := range curv {
		if maxCurv == 0 {
			break
		}
		if curv[i] == maxCurv {
			mark(i, 1, "gain-curve knee")
		} else {
			// Fractional curvature breaks ties among unmarked rungs
			// without earning a qualitative reason line.
			sel.Score[i] += curv[i] / maxCurv
		}
	}

	// Keep the k most interesting rungs, index-ascending on ties so the
	// choice is deterministic, then restore ladder order for rendering.
	k := n / 3
	if k < 1 {
		k = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if sel.Score[order[a]] != sel.Score[order[b]] {
			return sel.Score[order[a]] > sel.Score[order[b]]
		}
		return order[a] < order[b]
	})
	sel.Selected = append(sel.Selected, order[:k]...)
	sort.Ints(sel.Selected)
	return sel
}

// PreRow is one selected rung's simulated figure values.
type PreRow struct {
	// Level is the rung's parallel-phase length in cycles.
	Level int
	// CSPerK and ROIPct are indexed like inpg.Mechanisms: critical
	// sections per kilocycle, and runtime normalized to Original (%).
	CSPerK [4]float64
	ROIPct [4]float64
}

// PreResult is the pre-screened contention sweep's output.
type PreResult struct {
	Sel  PreSelection
	Rows []PreRow
	// Missing annotates selected cells that produced no results;
	// non-selected cells cannot go missing in either mode.
	Missing []Missing
	// SimCells and TotalCells report how much detailed simulation the
	// run actually bought: equal in exhaustive mode, SimCells ≤
	// TotalCells/3 under -prescreen. Diagnostics only — never rendered,
	// so figure output stays byte-identical across modes.
	SimCells, TotalCells int
}

// RunPre executes the contention sweep. With prescreen false every cell
// runs in the detailed simulator (the reference mode); with prescreen
// true only the analytically selected levels run and every skipped cell
// is covered by an estimate manifest (when Options.ManifestDir is set).
// Both modes render the same bytes.
func RunPre(o Options, prescreen bool) (*PreResult, error) {
	levels := preLevels(o)
	nm := len(inpg.Mechanisms)
	est := make([][]analytic.Estimate, len(levels))
	var cfgs []inpg.Config
	for li, pc := range levels {
		est[li] = make([]analytic.Estimate, nm)
		for mi, mech := range inpg.Mechanisms {
			cfg := preConfig(pc, mech, o)
			est[li][mi] = analytic.For(cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	sel := PrescreenLevels(levels, est)
	selSet := intSet(sel.Selected)
	var skip func(int) bool
	if prescreen {
		skip = func(i int) bool { return !selSet[i/nm] }
	}
	results, missing, err := runAllSkip(o, "pre", cfgs, skip)
	if err != nil {
		return nil, fmt.Errorf("pre: %w", err)
	}
	if prescreen && o.ManifestDir != "" {
		writeEstimates(o.ManifestDir, cfgs, est, sel, nm)
	}

	out := &PreResult{Sel: sel, SimCells: len(cfgs), TotalCells: len(cfgs)}
	if prescreen {
		out.SimCells = len(sel.Selected) * nm
	}
	for _, m := range missing {
		if selSet[m.Index/nm] {
			out.Missing = append(out.Missing, m)
		}
	}
	for _, li := range sel.Selected {
		row := PreRow{Level: levels[li]}
		base := cell(results, li*nm)
		for mi := 0; mi < nm; mi++ {
			res := cell(results, li*nm+mi)
			row.CSPerK[mi] = mustRatio(1000*float64(res.CSCompleted), float64(res.Runtime))
			row.ROIPct[mi] = 100 * mustRatio(float64(res.Runtime), float64(base.Runtime))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// writeEstimates emits one estimate manifest per skipped cell: the
// analytic answer, why the screen passed over the cell, and the model's
// recorded validation error bounds. Write failures are reported rather
// than fatal, matching the run-manifest observer.
func writeEstimates(dir string, cfgs []inpg.Config, est [][]analytic.Estimate, sel PreSelection, nm int) {
	bounds := make(map[string]manifest.EstimateBound, len(analytic.RecordedBounds))
	for m, b := range analytic.RecordedBounds {
		bounds[string(m)] = manifest.EstimateBound{Mean: b.Mean, Max: b.Max}
	}
	for i, cfg := range cfgs {
		li := i / nm
		if sel.IsSelected(li) {
			continue
		}
		e := est[li][i%nm]
		rec := manifest.EstimateRecord{
			Runtime:         e.Runtime,
			CSPerKCycle:     e.CSPerKCycle,
			NetMeanLatency:  e.NetMeanLatency,
			LinkUtilization: e.LinkUtilization,
			CSTime:          e.CSTime(),
			Contended:       e.Contended,
			Reason:          fmt.Sprintf("analytic pre-screen: pc=%d outside the selected interest region (score %.2f)", cfg.ParallelCycles, sel.Score[li]),
			Bounds:          bounds,
		}
		m := manifest.BuildEstimate("pre", i, cfg, rec)
		if _, err := m.WriteFile(dir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: estimate pre/%d: %v\n", i, err)
		}
	}
}

// Render prints the selection header (analytic, mode-independent) and
// the selected rungs' simulated throughput and normalized runtime.
func (r *PreResult) Render() string {
	var b strings.Builder
	header(&b, "Pre-screened contention sweep (QSL lock, four mechanisms)")
	fmt.Fprintf(&b, "analytic screen: %d of %d contention levels selected (%d of %d detailed cells)\n",
		len(r.Sel.Selected), len(r.Sel.Levels), len(r.Sel.Selected)*4, len(r.Sel.Levels)*4)
	for _, li := range r.Sel.Selected {
		fmt.Fprintf(&b, "  pc=%-7d %s\n", r.Sel.Levels[li], r.Sel.Reason(li))
	}
	fmt.Fprintf(&b, "%-8s %35s %30s\n", "parallel", "CS per kcycle", "ROI vs Original")
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %9s %9s %9s\n", "cycles", "Orig", "OCOR", "iNPG", "iN+OC", "OCOR", "iNPG", "iN+OC")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %8.3f %8.3f %8.3f %8.3f %8.1f%% %8.1f%% %8.1f%%\n",
			row.Level, row.CSPerK[0], row.CSPerK[1], row.CSPerK[2], row.CSPerK[3],
			row.ROIPct[1], row.ROIPct[2], row.ROIPct[3])
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
