package experiments

import (
	"fmt"
	"strings"

	"inpg"
)

// Table1 renders the simulation platform configuration in the shape of the
// paper's Table 1, reading the actual defaults so the printout can never
// drift from the implementation.
func Table1() string {
	cfg := inpg.DefaultConfig()
	var b strings.Builder
	header(&b, "Table 1: simulation platform configuration")
	row := func(item, amount, desc string) {
		fmt.Fprintf(&b, "%-8s %-10s %s\n", item, amount, desc)
	}
	nodes := cfg.MeshWidth * cfg.MeshHeight
	row("Core", fmt.Sprintf("%d cores", nodes),
		"one thread per core; synthetic parallel/CS program (see internal/workload)")
	row("L1", fmt.Sprintf("%d banks", nodes),
		"private 32 KB, 4-way, 128 B blocks, 2-cycle latency, 32 MSHRs")
	row("L2", fmt.Sprintf("%d banks", nodes),
		"chip-wide shared, directory colocated, 6-cycle bank latency")
	row("Memory", "8 ctrl",
		"100-cycle DRAM, up to 16 outstanding per controller, top/bottom placement")
	row("NoC", fmt.Sprintf("%dx%d mesh", cfg.MeshWidth, cfg.MeshHeight),
		"XY routing, 2-stage routers, 6 VCs/port, 4-flit VCs, 3 vnets, 128-bit links")
	row("Coherence", "MOESI",
		"directory-based; blocks: 8-flit packets; control: 1-flit packets")
	row("OCOR", "9 levels",
		fmt.Sprintf("%d retries in spin phase, 16 retries per priority level, wakeups lowest", 128))
	row("iNPG", fmt.Sprintf("%d big", nodes/2),
		"one big router between every two normal routers; 16-entry barrier table, TTL 128")
	return b.String()
}
