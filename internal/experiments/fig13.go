package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/workload"
)

// Fig13Row is one program's iNPG ROI reduction per locking primitive.
type Fig13Row struct {
	Program string
	// ReductionPct[lockIdx] = 100 × (1 − runtime_iNPG/runtime_Original).
	ReductionPct []float64
}

// Fig13Result sweeps iNPG's effectiveness across the five primitives.
type Fig13Result struct {
	Locks []inpg.LockKind
	Rows  []Fig13Row
	// MeanReductionPct[lockIdx] averages over programs.
	MeanReductionPct []float64
	// Missing annotates runs that produced no results; a cell with either
	// run missing reports zero reduction.
	Missing []Missing
}

// Fig13Programs selects the evaluated programs. The full paper figure runs
// all 24; by default a representative subset of each group keeps the
// 5-primitive × 2-mechanism sweep tractable, and Full24 enables the rest.
var Fig13Programs = []string{"x264", "vips", "can", "dedup", "stream", "imag", "freq", "kdtree", "nab"}

// Fig13 reproduces Figure 13: application ROI finish-time reduction
// achieved by iNPG under TAS, TTL, ABQL, MCS and QSL.
func Fig13(o Options, full24 bool) (*Fig13Result, error) {
	r := &Fig13Result{Locks: inpg.LockKinds}
	var profiles []workload.Profile
	if full24 {
		profiles = workload.Profiles()
	} else {
		for _, name := range Fig13Programs {
			p, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	}
	// Submit every (program, lock, mechanism) run as one parallel batch:
	// two configs per cell, Original first then iNPG.
	var cfgs []inpg.Config
	for _, p := range profiles {
		for _, lk := range inpg.LockKinds {
			cfgs = append(cfgs, ConfigFor(p, inpg.Original, lk, o))
			cfgs = append(cfgs, ConfigFor(p, inpg.INPG, lk, o))
		}
	}
	results, missing, err := runAll(o, "fig13", cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	r.Missing = missing
	sums := make([]float64, len(inpg.LockKinds))
	next := 0
	for _, p := range profiles {
		row := Fig13Row{Program: p.ShortName}
		for li := range inpg.LockKinds {
			orig, with := results[next], results[next+1]
			next += 2
			var red float64
			if orig != nil && with != nil {
				red = 100 * (1 - mustRatio(float64(with.Runtime), float64(orig.Runtime)))
			}
			row.ReductionPct = append(row.ReductionPct, red)
			sums[li] += red
		}
		r.Rows = append(r.Rows, row)
	}
	for _, s := range sums {
		r.MeanReductionPct = append(r.MeanReductionPct, s/float64(len(profiles)))
	}
	return r, nil
}

// Render prints the per-primitive reduction table.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 13: ROI finish-time reduction by iNPG per locking primitive")
	fmt.Fprintf(&b, "%-9s", "program")
	for _, lk := range r.Locks {
		fmt.Fprintf(&b, "%9s", lk)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s", row.Program)
		for _, v := range row.ReductionPct {
			fmt.Fprintf(&b, "%8.1f%%", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-9s", "mean")
	for _, v := range r.MeanReductionPct {
		fmt.Fprintf(&b, "%8.1f%%", v)
	}
	b.WriteByte('\n')
	renderMissing(&b, r.Missing)
	return b.String()
}
