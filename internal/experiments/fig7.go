package experiments

import (
	"strings"

	"inpg/internal/chipmodel"
)

// Fig7Result carries the chip model summary.
type Fig7Result struct {
	NormalGatesK, BigGatesK float64
	PacketGenGatesK         float64
	PacketGenOverhead       float64 // fraction of normal-router power
	BigTileMW, NormalTileMW float64
	Rendered                string
}

// Fig7 regenerates the synthesis/floorplan summary of Figure 7 from the
// analytical chip model (see DESIGN.md for the EDA-flow substitution).
func Fig7() *Fig7Result {
	return &Fig7Result{
		NormalGatesK:      chipmodel.NormalRouter.GateCountK,
		BigGatesK:         chipmodel.BigRouter.GateCountK,
		PacketGenGatesK:   chipmodel.PacketGenGatesK,
		PacketGenOverhead: chipmodel.PacketGenPowerOverhead(),
		BigTileMW:         chipmodel.TilePowerMW(true),
		NormalTileMW:      chipmodel.TilePowerMW(false),
		Rendered:          chipmodel.RenderFigure7(64, 32),
	}
}

// Render prints the Figure 7 summary.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 7: router synthesis and chip floorplan (analytical model)")
	b.WriteString(r.Rendered)
	return b.String()
}
