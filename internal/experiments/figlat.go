package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/journey"
	"inpg/internal/manifest"
	"inpg/internal/metrics"
	"inpg/internal/runner"
	"inpg/internal/workload"
)

// LatCase is one mechanism × contention rung of the latency-breakdown
// sweep: the mean end-to-end lock-acquisition latency and its per-stage
// decomposition over every sampled journey of the run.
type LatCase struct {
	Mechanism inpg.Mechanism
	// ParallelCycles is the mean parallel-compute gap between critical
	// sections — the contention knob: smaller gap, hotter lock.
	ParallelCycles int
	// Journeys is how many sampled acquisitions the cell aggregated.
	Journeys    uint64
	Intercepted uint64
	E2EMean     float64
	// StageMean holds mean cycles per journey attributed to each stage,
	// indexed by journey.Stage; the stage means sum to E2EMean (journey
	// accounting is exact).
	StageMean [journey.NumStages]float64
	// Reason is empty for a completed run, otherwise the cell's failure
	// cause.
	Reason string
}

// LatResult is the full latency-breakdown sweep: where each mechanism's
// lock-acquisition cycles go — thread stall, injection queueing, VC wait,
// link traversal, big-router interception, directory service, retries —
// as contention climbs. This is the observability companion to the
// paper's LCO argument: iNPG's win should appear specifically as shrunken
// directory-stage time.
type LatResult struct {
	Program string
	Threads int
	Lock    inpg.LockKind
	Rate    float64
	Gaps    []int
	// Cases is mechanism-major: for each mechanism, one case per gap.
	Cases   []LatCase
	Missing []Missing
}

// latGaps returns the contention ladder (mean parallel-compute cycles
// between critical sections, descending = rising contention).
func latGaps(quick bool) []int {
	if quick {
		return []int{2000, 200}
	}
	return []int{3000, 1000, 300, 100}
}

// LatencyBreakdown sweeps the four mechanisms across a contention ladder
// with journey tracing on and aggregates each cell's per-stage latency
// attribution. Options.JourneyRate selects the sampling fraction (<= 0
// defaults to 1: every acquisition journey-traced). Results and the
// non-journey metric instruments are identical to an untraced sweep —
// sampling is observability, never perturbation.
func LatencyBreakdown(o Options) (*LatResult, error) {
	p, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}
	if o.JourneyRate <= 0 {
		o.JourneyRate = 1
	}
	gaps := latGaps(o.Quick)
	r := &LatResult{Program: p.ShortName, Lock: inpg.LockQSL, Rate: o.JourneyRate, Gaps: gaps}

	var cfgs []inpg.Config
	var cases []LatCase
	for _, mech := range inpg.Mechanisms {
		for _, gap := range gaps {
			cfg := ConfigFor(p, mech, r.Lock, o)
			cfg.ParallelCycles = gap
			cfg.ParallelJitter = gap / 3
			cfgs = append(cfgs, cfg)
			cases = append(cases, LatCase{Mechanism: mech, ParallelCycles: gap})
		}
	}
	r.Threads = cfgs[0].MeshWidth * cfgs[0].MeshHeight

	// The journey aggregates ride the metric snapshot, which runAll's
	// result vector does not carry — capture per-cell snapshots through
	// the observer chain. Each index is written at most once, from the
	// worker goroutine that owns the cell, so a plain slice is safe.
	snaps := make([]*metrics.Snapshot, len(cfgs))
	inner := o.Observer
	o.Observer = func(out runner.Outcome) {
		if out.Done && out.Snapshot != nil {
			snaps[out.Index] = out.Snapshot
		}
		if inner != nil {
			inner(out)
		}
	}
	results, missing, err := runAll(o, "lat", cfgs)
	if err != nil {
		return nil, err
	}
	r.Missing = missing
	for _, m := range missing {
		cases[m.Index].Reason = string(m.Cause)
	}
	for i := range cases {
		c := &cases[i]
		if results[i] == nil && c.Reason == "" {
			continue
		}
		js := manifest.JourneyFromSnapshot(snaps[i])
		if js == nil || js.Completed == 0 {
			continue
		}
		c.Journeys = js.Completed
		c.Intercepted = js.Intercepted
		n := float64(js.Completed)
		c.E2EMean = float64(js.E2E.Sum) / n
		for st, stage := range journey.Stages {
			c.StageMean[st] = float64(js.Stages[stage.String()].Sum) / n
		}
	}
	r.Cases = cases
	return r, nil
}

// Render prints the latency-breakdown figure: a per-stage mean-cycles
// table plus proportional stacked bars, one row per mechanism × gap.
func (r *LatResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Latency breakdown: %s lock-journey stages vs contention (%d threads, %s, rate %.2f)",
		r.Program, r.Threads, r.Lock, r.Rate))
	fmt.Fprintf(&b, "%-11s %6s %9s %9s", "mechanism", "gap", "journeys", "e2e")
	for _, st := range journey.Stages {
		fmt.Fprintf(&b, " %9s", st)
	}
	b.WriteString("\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-11s %6d", c.Mechanism, c.ParallelCycles)
		if c.Reason != "" {
			fmt.Fprintf(&b, " %9s\n", "["+c.Reason+"]")
			continue
		}
		fmt.Fprintf(&b, " %9d %9.1f", c.Journeys, c.E2EMean)
		for _, v := range c.StageMean {
			fmt.Fprintf(&b, " %9.1f", v)
		}
		b.WriteString("\n")
	}

	// Stacked bars: each row scaled to the sweep's largest mean E2E, one
	// letter per stage (legend below), so the eye can compare both the
	// absolute journey length and where it went.
	maxE2E := 0.0
	for _, c := range r.Cases {
		if c.E2EMean > maxE2E {
			maxE2E = c.E2EMean
		}
	}
	if maxE2E > 0 {
		const width = 60
		letters := [journey.NumStages]byte{'s', 'n', 'v', 'l', 'B', 'D', 'r'}
		b.WriteString("\nstacked per-stage shares (s=stall n=ni_queue v=vc_wait l=link B=bigrouter D=directory r=retry):\n")
		for _, c := range r.Cases {
			if c.Reason != "" || c.Journeys == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-11s %6d |", c.Mechanism, c.ParallelCycles)
			total := 0
			for st, v := range c.StageMean {
				n := int(v / maxE2E * width)
				b.WriteString(strings.Repeat(string(letters[st]), n))
				total += n
			}
			b.WriteString(strings.Repeat(" ", width-total))
			b.WriteString("|\n")
		}
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
