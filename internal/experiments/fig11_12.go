package experiments

import (
	"fmt"
	"strings"

	"inpg"
)

// SuiteRow holds one program's results across the four mechanisms.
type SuiteRow struct {
	Program string
	Group   int
	// Runtime and CSTime (COH+sleep+CSE) per mechanism, indexed like
	// inpg.Mechanisms.
	Runtime [4]uint64
	CSTime  [4]uint64
}

// CSExpedition returns how much faster critical sections complete under
// mechanism i relative to Original (Figure 11's y-axis).
func (r SuiteRow) CSExpedition(i int) float64 {
	return mustRatio(float64(r.CSTime[0]), float64(r.CSTime[i]))
}

// ROIPercent returns mechanism i's ROI finish time normalized to Original
// (Figure 12's y-axis, as a percentage).
func (r SuiteRow) ROIPercent(i int) float64 {
	return 100 * mustRatio(float64(r.Runtime[i]), float64(r.Runtime[0]))
}

// SuiteResult is the shared output of the full 24-program × 4-mechanism
// sweep that Figures 11 and 12 are read from.
type SuiteResult struct {
	Rows []SuiteRow
	// Missing annotates runs that produced no results; their cells
	// aggregate as zero.
	Missing []Missing
}

// RunSuite executes all 24 programs (or the Options.Programs subset)
// under the four comparative cases with the default queue spin-lock,
// averaging over Options.Seeds seeds. The full program × mechanism × seed
// cross product — 96 independent simulations at defaults — is submitted
// to the parallel runner as one batch; aggregation reads the ordered
// results, so the figures are identical for any worker count.
func RunSuite(o Options) (*SuiteResult, error) {
	seeds := o.seedList()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	var cfgs []inpg.Config
	for _, p := range profiles {
		for _, mech := range inpg.Mechanisms {
			for _, seed := range seeds {
				so := o
				so.Seed = seed
				cfgs = append(cfgs, ConfigFor(p, mech, inpg.LockQSL, so))
			}
		}
	}
	results, missing, err := runAll(o, "fig11_12", cfgs)
	if err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	out := &SuiteResult{Missing: missing}
	next := 0
	for _, p := range profiles {
		row := SuiteRow{Program: p.ShortName, Group: p.Group}
		for i := range inpg.Mechanisms {
			var rtSum, csSum uint64
			for range seeds {
				res := cell(results, next)
				next++
				rtSum += res.Runtime
				csSum += res.CSTime()
			}
			row.Runtime[i] = rtSum / uint64(len(seeds))
			row.CSTime[i] = csSum / uint64(len(seeds))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// GroupMeanExpedition averages CS expedition over one group (0 = all).
func (s *SuiteResult) GroupMeanExpedition(group, mech int) float64 {
	var v []float64
	for _, r := range s.Rows {
		if group == 0 || r.Group == group {
			v = append(v, r.CSExpedition(mech))
		}
	}
	return meanOf(v)
}

// GroupMeanROI averages the normalized ROI finish time over one group.
func (s *SuiteResult) GroupMeanROI(group, mech int) float64 {
	var v []float64
	for _, r := range s.Rows {
		if group == 0 || r.Group == group {
			v = append(v, r.ROIPercent(mech))
		}
	}
	return meanOf(v)
}

// MaxExpedition returns the best per-program CS expedition for a mechanism
// and the program achieving it.
func (s *SuiteResult) MaxExpedition(mech int) (float64, string) {
	best, name := 0.0, ""
	for _, r := range s.Rows {
		if e := r.CSExpedition(mech); e > best {
			best, name = e, r.Program
		}
	}
	return best, name
}

// INPGOverOCOR returns iNPG's mean and max CS-access speedup over OCOR
// (the paper's headline 1.35× average / 2.03× maximum).
func (s *SuiteResult) INPGOverOCOR() (mean, max float64, maxProg string) {
	var v []float64
	for _, r := range s.Rows {
		sp := mustRatio(float64(r.CSTime[1]), float64(r.CSTime[2]))
		v = append(v, sp)
		if sp > max {
			max, maxProg = sp, r.Program
		}
	}
	return meanOf(v), max, maxProg
}

// RenderFig11 prints the CS expedition table.
func (s *SuiteResult) RenderFig11() string {
	var b strings.Builder
	header(&b, "Figure 11: critical section expedition (relative to Original)")
	fmt.Fprintf(&b, "%-9s %5s %9s %9s %9s %9s\n", "program", "group", "Original", "OCOR", "iNPG", "iNPG+OCOR")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-9s %5d %8.2fx %8.2fx %8.2fx %8.2fx\n",
			r.Program, r.Group, 1.0, r.CSExpedition(1), r.CSExpedition(2), r.CSExpedition(3))
	}
	for g := 1; g <= 3; g++ {
		fmt.Fprintf(&b, "group %d mean       %8.2fx %8.2fx %8.2fx\n",
			g, s.GroupMeanExpedition(g, 1), s.GroupMeanExpedition(g, 2), s.GroupMeanExpedition(g, 3))
	}
	fmt.Fprintf(&b, "overall mean       %8.2fx %8.2fx %8.2fx\n",
		s.GroupMeanExpedition(0, 1), s.GroupMeanExpedition(0, 2), s.GroupMeanExpedition(0, 3))
	m, mx, prog := s.INPGOverOCOR()
	fmt.Fprintf(&b, "iNPG over OCOR: %.2fx mean, %.2fx max (%s)\n", m, mx, prog)
	renderMissing(&b, s.Missing)
	return b.String()
}

// RenderFig12 prints the ROI finish-time table.
func (s *SuiteResult) RenderFig12() string {
	var b strings.Builder
	header(&b, "Figure 12: application ROI finish time (normalized to Original)")
	fmt.Fprintf(&b, "%-9s %5s %9s %9s %9s %9s\n", "program", "group", "Original", "OCOR", "iNPG", "iNPG+OCOR")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-9s %5d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Program, r.Group, 100.0, r.ROIPercent(1), r.ROIPercent(2), r.ROIPercent(3))
	}
	for g := 1; g <= 3; g++ {
		fmt.Fprintf(&b, "group %d mean       %8.1f%% %8.1f%% %8.1f%%\n",
			g, s.GroupMeanROI(g, 1), s.GroupMeanROI(g, 2), s.GroupMeanROI(g, 3))
	}
	fmt.Fprintf(&b, "overall mean       %8.1f%% %8.1f%% %8.1f%%\n",
		s.GroupMeanROI(0, 1), s.GroupMeanROI(0, 2), s.GroupMeanROI(0, 3))
	renderMissing(&b, s.Missing)
	return b.String()
}
