package experiments

import (
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/workload"
)

// Fig14Deployments are the big-router counts swept (0 = Original).
var Fig14Deployments = []int{0, 4, 16, 32, 64}

// Fig14Row is one program's CS expedition per deployment.
type Fig14Row struct {
	Program string
	// Expedition[i] = CSTime(0 big routers)/CSTime(deployment i).
	Expedition []float64
}

// Fig14Result is the big-router deployment sensitivity study.
type Fig14Result struct {
	Deployments []int
	Rows        []Fig14Row
	Mean        []float64
	// Missing annotates runs that produced no results (zero expedition).
	Missing []Missing
}

// Fig14Programs picks one representative per Figure 8b group.
var Fig14Programs = []string{"can", "freq", "nab"}

// Fig14 reproduces Figure 14: critical-section expedition as the number of
// evenly distributed big routers grows from 0 to 64. The paper's
// observation — gains rise with deployment but flatten beyond 32 routers —
// follows from every competing request crossing a big router within a hop
// or two once half the routers are big.
func Fig14(o Options) (*Fig14Result, error) {
	r := &Fig14Result{Deployments: Fig14Deployments}
	sums := make([]float64, len(Fig14Deployments))
	var cfgs []inpg.Config
	var names []string
	for _, name := range Fig14Programs {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		names = append(names, p.ShortName)
		for _, n := range Fig14Deployments {
			mech := inpg.INPG
			if n == 0 {
				mech = inpg.Original
			}
			cfg := ConfigFor(p, mech, inpg.LockQSL, o)
			cfg.BigRouters = n
			cfgs = append(cfgs, cfg)
		}
	}
	results, missing, err := runAll(o, "fig14", cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig14: %w", err)
	}
	r.Missing = missing
	next := 0
	for _, name := range names {
		row := Fig14Row{Program: name}
		var base float64
		for i := range Fig14Deployments {
			cs := float64(cell(results, next).CSTime())
			next++
			if i == 0 {
				base = cs
			}
			e := mustRatio(base, cs)
			row.Expedition = append(row.Expedition, e)
			sums[i] += e
		}
		r.Rows = append(r.Rows, row)
	}
	for _, s := range sums {
		r.Mean = append(r.Mean, s/float64(len(Fig14Programs)))
	}
	return r, nil
}

// Render prints the deployment sweep.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 14: CS expedition vs big-router deployment")
	fmt.Fprintf(&b, "%-9s", "program")
	for _, n := range r.Deployments {
		fmt.Fprintf(&b, "%7dBR", n)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s", row.Program)
		for _, v := range row.Expedition {
			fmt.Fprintf(&b, "%8.2fx", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-9s", "mean")
	for _, v := range r.Mean {
		fmt.Fprintf(&b, "%8.2fx", v)
	}
	b.WriteByte('\n')
	renderMissing(&b, r.Missing)
	return b.String()
}
