package experiments

import (
	"fmt"
	"strings"

	"inpg"
)

// Fig8Row characterizes one program's critical sections.
type Fig8Row struct {
	Program     string
	Suite       string
	Group       int
	TotalCS     int // ROI CS accesses (profile)
	AvgCSCycles int // profile
	// Measured on the scaled run under Original/QSL:
	MeasuredCOH uint64 // competition overhead cycles
	MeasuredCSE uint64 // critical-section execution cycles
}

// COHShare returns COH/(COH+CSE).
func (r Fig8Row) COHShare() float64 {
	t := r.MeasuredCOH + r.MeasuredCSE
	if t == 0 {
		return 0
	}
	return float64(r.MeasuredCOH) / float64(t)
}

// Fig8Result is the full benchmark characterization.
type Fig8Result struct {
	Rows []Fig8Row
	// Missing annotates programs whose run produced no results.
	Missing []Missing
}

// Fig8 reproduces Figure 8: per-program CS access counts and average CS
// length (8a), and the breakdown of total CS time into competition
// overhead and CS execution (8b) with the three total-CS-time groups.
func Fig8(o Options) (*Fig8Result, error) {
	r := &Fig8Result{}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	cfgs := make([]inpg.Config, len(profiles))
	for i, p := range profiles {
		cfgs[i] = ConfigFor(p, inpg.Original, inpg.LockQSL, o)
	}
	results, missing, err := runAll(o, "fig8", cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	r.Missing = missing
	for i, p := range profiles {
		res := cell(results, i)
		r.Rows = append(r.Rows, Fig8Row{
			Program:     p.ShortName,
			Suite:       p.Suite,
			Group:       p.Group,
			TotalCS:     p.TotalCS,
			AvgCSCycles: p.AvgCSCycles,
			MeasuredCOH: res.COHTotal(),
			MeasuredCSE: res.CSE,
		})
	}
	return r, nil
}

// Render prints Figure 8a/8b as one table, ordered by total CS time.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	header(&b, "Figure 8: benchmark CS characteristics (ordered by total CS time)")
	fmt.Fprintf(&b, "%-9s %-8s %5s %9s %9s %11s %12s %12s %6s\n",
		"program", "suite", "group", "CS total", "cyc/CS", "CS time", "COH cyc", "CSE cyc", "COH%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %-8s %5d %9d %9d %11d %12d %12d %5.1f%%\n",
			row.Program, row.Suite, row.Group, row.TotalCS, row.AvgCSCycles,
			row.TotalCS*row.AvgCSCycles, row.MeasuredCOH, row.MeasuredCSE, 100*row.COHShare())
	}
	renderMissing(&b, r.Missing)
	return b.String()
}
