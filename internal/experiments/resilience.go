package experiments

import (
	"errors"
	"fmt"
	"strings"

	"inpg"
	"inpg/internal/fault"
	"inpg/internal/runner"
	"inpg/internal/workload"
)

// ResilienceCase is one mechanism × fault-rate cell of the sweep.
type ResilienceCase struct {
	Mechanism inpg.Mechanism
	Rate      float64
	// CSPerKCyc is critical sections completed per thousand cycles —
	// the throughput metric the sweep compares across fault rates.
	CSPerKCyc   float64
	Runtime     uint64
	CSCompleted uint64
	Faults      uint64 // flit transmissions dropped or corrupted
	Retries     uint64 // retransmission attempts that recovered them
	Failures    uint64 // links declared dead (bounded retries exhausted)
	// Reason is empty for a completed run, otherwise the structured
	// failure reason from *inpg.SimulationError ("watchdog", ...).
	Reason string
}

// ResilienceResult is the full resilience sweep: critical-section
// throughput of every mechanism as transient link/port fault rates climb.
type ResilienceResult struct {
	Program string
	Threads int
	Rates   []float64
	// Cases is mechanism-major: for each mechanism, one case per rate.
	Cases []ResilienceCase
}

// resilienceRates returns the fault-rate ladder for the sweep.
func resilienceRates(quick bool) []float64 {
	if quick {
		return []float64{0, 0.01, 0.05}
	}
	return []float64{0, 0.005, 0.01, 0.02, 0.05}
}

// Resilience sweeps combined transient fault rates across the four
// mechanisms and reports critical-section throughput, retransmission
// effort and any structured failures. A wedged run (a link declared dead
// under an extreme rate) is a data point, not a sweep error: its cell
// records the watchdog's diagnosis. All runs execute under the default
// liveness watchdog so nothing can silently crawl to the cycle budget.
func Resilience(o Options) (*ResilienceResult, error) {
	p, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}
	rates := resilienceRates(o.Quick)
	r := &ResilienceResult{Program: p.ShortName, Rates: rates}

	var cfgs []inpg.Config
	var cases []ResilienceCase
	for _, mech := range inpg.Mechanisms {
		for _, rate := range rates {
			cfg := ConfigFor(p, mech, inpg.LockQSL, o)
			if rate > 0 {
				cfg.Fault = fault.AtRate(rate, o.faultSeed())
			}
			cfgs = append(cfgs, cfg)
			cases = append(cases, ResilienceCase{Mechanism: mech, Rate: rate})
		}
	}
	r.Threads = cfgs[0].MeshWidth * cfgs[0].MeshHeight

	// Fan out in keep-going mode: a failed run — a wedged simulation under
	// an extreme rate, even a panic — fills its cell's Reason instead of
	// aborting the sweep. No retries: a deterministic wedge is a data
	// point, and re-running it would only reproduce it.
	results, errs := runner.RunResilient(cfgs, runner.Policy{
		Workers:    o.Workers,
		RunTimeout: o.RunTimeout,
		Observer:   o.observer("resilience"),
	})
	for i := range cases {
		c := &cases[i]
		if err := errs[i]; err != nil {
			var simErr *inpg.SimulationError
			if errors.As(err, &simErr) {
				c.Reason = simErr.Reason
			} else {
				c.Reason = string(err.Cause)
			}
		}
		res := results[i]
		if res == nil {
			continue
		}
		c.Runtime = res.Runtime
		c.CSCompleted = uint64(res.CSCompleted)
		c.Faults = res.FaultsInjected
		c.Retries = res.LinkRetries
		c.Failures = res.LinkFailures
		if res.Runtime > 0 {
			c.CSPerKCyc = 1000 * float64(res.CSCompleted) / float64(res.Runtime)
		}
	}
	r.Cases = cases
	return r, nil
}

// Render prints the resilience table: one row per mechanism, one column
// per fault rate, cells showing CS/kcycle (or the failure reason).
func (r *ResilienceResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Resilience: %s CS throughput vs transient fault rate (%d threads)",
		r.Program, r.Threads))
	fmt.Fprintf(&b, "%-11s", "mechanism")
	for _, rate := range r.Rates {
		fmt.Fprintf(&b, " %11s", fmt.Sprintf("%.1f%%", 100*rate))
	}
	b.WriteString("\n")
	i := 0
	for _, mech := range inpg.Mechanisms {
		fmt.Fprintf(&b, "%-11s", mech)
		for range r.Rates {
			c := r.Cases[i]
			i++
			if c.Reason != "" {
				fmt.Fprintf(&b, " %11s", "["+c.Reason+"]")
				continue
			}
			fmt.Fprintf(&b, " %11.3f", c.CSPerKCyc)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nretransmission effort (faults injected / retries / links died):\n")
	i = 0
	for _, mech := range inpg.Mechanisms {
		fmt.Fprintf(&b, "%-11s", mech)
		for range r.Rates {
			c := r.Cases[i]
			i++
			fmt.Fprintf(&b, " %11s", fmt.Sprintf("%d/%d/%d", c.Faults, c.Retries, c.Failures))
		}
		b.WriteString("\n")
	}
	return b.String()
}
