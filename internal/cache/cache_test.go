package cache

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: 2048, Ways: 4, BlockBytes: 128}) // 4 sets
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	cfg := Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 128}
	if cfg.Sets() != 64 {
		t.Fatalf("L1 sets = %d, want 64", cfg.Sets())
	}
}

func TestRejectBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 4, BlockBytes: 128},
		{SizeBytes: 3000, Ways: 4, BlockBytes: 128}, // non-power-of-two sets
		{SizeBytes: 2048, Ways: 4, BlockBytes: 100}, // non-power-of-two block
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted, want error", i)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	if c.Lookup(0x1000) != nil {
		t.Fatal("cold cache must miss")
	}
	c.Insert(0x1000, Shared, 7)
	l := c.Lookup(0x1000)
	if l == nil || l.Data != 7 || l.State != Shared {
		t.Fatalf("lookup after insert = %+v", l)
	}
}

func TestBlockAlignSharing(t *testing.T) {
	c := small(t)
	c.Insert(0x1008, Modified, 1)
	if c.Lookup(0x1000) == nil || c.Lookup(0x107f) == nil {
		t.Fatal("addresses within one block must hit the same line")
	}
	if c.Lookup(0x1080) != nil {
		t.Fatal("next block must not hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 4 sets, 4 ways; set stride = 128 bytes, wrap = 512.
	// Fill one set (set 0): addresses 0, 512, 1024, 1536.
	for i := 0; i < 4; i++ {
		c.Insert(uint64(i*512), Shared, uint64(i))
	}
	c.Lookup(0) // make line 0 most recently used
	_, ev := c.Insert(4*512, Shared, 99)
	if ev == nil {
		t.Fatal("full set must evict")
	}
	if ev.Addr != 512 {
		t.Fatalf("evicted %#x, want %#x (LRU, not MRU)", ev.Addr, 512)
	}
	if c.Lookup(0) == nil {
		t.Fatal("MRU line must survive")
	}
}

func TestInsertPrefersInvalidWay(t *testing.T) {
	c := small(t)
	c.Insert(0, Shared, 0)
	c.Insert(512, Shared, 0)
	c.Invalidate(0)
	_, ev := c.Insert(1024, Shared, 0)
	if ev != nil {
		t.Fatalf("insert with invalid way available evicted %+v", ev)
	}
	if c.Lookup(512) == nil {
		t.Fatal("valid line lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	c.Insert(0x40, Modified, 3)
	c.Invalidate(0x40)
	if c.Lookup(0x40) != nil {
		t.Fatal("line still present after invalidate")
	}
	c.Invalidate(0xdead00) // absent: must not panic
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := small(t)
	for i := 0; i < 4; i++ {
		c.Insert(uint64(i*512), Shared, 0)
	}
	c.Peek(0) // must NOT refresh
	_, ev := c.Insert(4*512, Shared, 0)
	if ev == nil || ev.Addr != 0 {
		t.Fatalf("evicted %+v, want line 0 (Peek must not refresh LRU)", ev)
	}
}

func TestOccupancy(t *testing.T) {
	c := small(t)
	if c.Occupancy() != 0 {
		t.Fatal("new cache not empty")
	}
	c.Insert(0, Shared, 0)
	c.Insert(128, Shared, 0)
	if c.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", c.Occupancy())
	}
}

// TestCacheVsMapModel property-checks the cache against a reference model:
// any value inserted and not since evicted or invalidated must read back
// exactly; any hit must return the last written data.
func TestCacheVsMapModel(t *testing.T) {
	type op struct {
		Kind byte
		Addr uint16
		Data uint64
	}
	f := func(ops []op) bool {
		c, err := New(Config{SizeBytes: 1024, Ways: 2, BlockBytes: 64})
		if err != nil {
			return false
		}
		model := map[uint64]uint64{}
		for _, o := range ops {
			addr := c.BlockAlign(uint64(o.Addr))
			switch o.Kind % 3 {
			case 0: // insert
				_, ev := c.Insert(addr, Modified, o.Data)
				model[addr] = o.Data
				if ev != nil {
					if want, ok := model[ev.Addr]; !ok || want != ev.Data {
						return false // evicted line must carry last written data
					}
					delete(model, ev.Addr)
				}
			case 1: // lookup
				l := c.Lookup(addr)
				want, ok := model[addr]
				if (l != nil) != ok {
					return false
				}
				if l != nil && l.Data != want {
					return false
				}
			case 2: // invalidate
				c.Invalidate(addr)
				delete(model, addr)
			}
		}
		return c.Occupancy() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRAllocateGetFree(t *testing.T) {
	m := NewMSHR(2)
	e := m.Allocate(0x100)
	if e == nil {
		t.Fatal("allocate failed on empty MSHR")
	}
	if m.Allocate(0x100) != nil {
		t.Fatal("duplicate allocation must fail")
	}
	if m.Get(0x100) != e {
		t.Fatal("Get returned wrong entry")
	}
	m.Allocate(0x200)
	if !m.Full() || m.Allocate(0x300) != nil {
		t.Fatal("capacity not enforced")
	}
	m.Free(0x100)
	if m.Len() != 1 || m.Get(0x100) != nil {
		t.Fatal("free did not release entry")
	}
	if m.Allocate(0x300) == nil {
		t.Fatal("allocation after free must succeed")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}
