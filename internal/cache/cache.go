// Package cache implements the storage structures shared by the L1 and L2
// controllers: set-associative arrays with LRU replacement, per-line
// coherence state and data, and MSHR (miss status holding register) tables.
//
// The coherence protocol itself lives in internal/coherence; this package
// only stores state. Lines carry a single 64-bit data word: the simulator
// tracks real values (locks need them) but not full 128-byte block
// contents.
package cache

import "fmt"

// State is a MOESI coherence state. Transient states are tracked by the
// controllers, not the array.
type State int

// MOESI stable states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String returns the one-letter MOESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Line is one cache line.
type Line struct {
	Addr  uint64 // block-aligned address
	State State
	Data  uint64
	lru   uint64 // larger = more recently used
}

// Config describes one cache level's geometry.
type Config struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Cache is a set-associative array with true-LRU replacement.
type Cache struct {
	cfg     Config
	sets    [][]Line
	clock   uint64
	blkOff  uint // log2(BlockBytes)
	setMask uint64
}

// New builds a cache. The geometry must give a power-of-two number of sets
// and a power-of-two block size.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %+v", cfg)
	}
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a positive power of two", sets)
	}
	if cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d is not a power of two", cfg.BlockBytes)
	}
	c := &Cache{cfg: cfg, setMask: uint64(sets - 1)}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blkOff++
	}
	c.sets = make([][]Line, sets)
	for i := range c.sets {
		c.sets[i] = make([]Line, cfg.Ways)
	}
	return c, nil
}

// BlockAlign returns addr rounded down to its block boundary.
func (c *Cache) BlockAlign(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

// setIndex maps a block address to its set.
func (c *Cache) setIndex(addr uint64) uint64 {
	return (addr >> c.blkOff) & c.setMask
}

// Lookup returns the line holding addr (block-aligned internally), or nil.
// A hit refreshes LRU state.
func (c *Cache) Lookup(addr uint64) *Line {
	addr = c.BlockAlign(addr)
	set := c.sets[c.setIndex(addr)]
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == addr {
			c.clock++
			set[i].lru = c.clock
			return &set[i]
		}
	}
	return nil
}

// Peek is Lookup without touching LRU state; for invariant checks.
func (c *Cache) Peek(addr uint64) *Line {
	addr = c.BlockAlign(addr)
	set := c.sets[c.setIndex(addr)]
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Victim returns the line that would be evicted to make room for addr:
// an invalid way if one exists, otherwise the LRU way. The returned line
// may still hold live state; the caller is responsible for writeback.
func (c *Cache) Victim(addr uint64) *Line {
	addr = c.BlockAlign(addr)
	set := c.sets[c.setIndex(addr)]
	var victim *Line
	for i := range set {
		if set[i].State == Invalid {
			return &set[i]
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Insert fills a way with a new line for addr, evicting the victim. It
// returns the inserted line and, if a valid line was displaced, a copy of
// it for writeback handling. Inserting an address already present updates
// the existing line in place instead of duplicating it.
func (c *Cache) Insert(addr uint64, st State, data uint64) (*Line, *Line) {
	addr = c.BlockAlign(addr)
	if l := c.Lookup(addr); l != nil {
		l.State = st
		l.Data = data
		return l, nil
	}
	v := c.Victim(addr)
	var evicted *Line
	if v.State != Invalid {
		cp := *v
		evicted = &cp
	}
	c.clock++
	*v = Line{Addr: addr, State: st, Data: data, lru: c.clock}
	return v, evicted
}

// Invalidate drops addr from the cache if present.
func (c *Cache) Invalidate(addr uint64) {
	if l := c.Peek(addr); l != nil {
		l.State = Invalid
	}
}

// ForEach visits every valid line; used by invariant checkers.
func (c *Cache) ForEach(fn func(*Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].State != Invalid {
				fn(&c.sets[s][w])
			}
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	c.ForEach(func(*Line) { n++ })
	return n
}
