package cache

import "sort"

// MSHR is a miss status holding register file: it tracks outstanding
// transactions per block address and bounds their number, mirroring the
// 32-MSHR L1/L2 configuration in the paper's Table 1.
type MSHR struct {
	capacity int
	entries  map[uint64]*MSHREntry
	peak     int
	allocs   uint64
	rejects  uint64
}

// MSHREntry is the controller-visible record of one outstanding
// transaction. The coherence controllers stash their transient state here.
type MSHREntry struct {
	Addr uint64
	// Transient protocol state, owned by the controller.
	State       int
	AcksNeeded  int
	AcksGot     int
	DataReady   bool
	AcksDone    bool
	PendingData uint64
	// Invalidated records an invalidation that raced with the fill: the
	// response completes the operation but must not install the line.
	Invalidated bool
	// Seq is the transaction sequence number stamped by the controller;
	// responses echoing a different Seq are stale and must not complete
	// this entry.
	Seq uint64
	// Aux carries controller-specific context (e.g. the pending CPU op).
	Aux any
}

// NewMSHR returns an MSHR file with the given entry capacity.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity, entries: make(map[uint64]*MSHREntry)}
}

// Allocate creates an entry for addr. It returns nil when the file is full
// or the address already has an entry (one outstanding transaction per
// block).
func (m *MSHR) Allocate(addr uint64) *MSHREntry {
	if len(m.entries) >= m.capacity {
		m.rejects++
		return nil
	}
	if _, dup := m.entries[addr]; dup {
		m.rejects++
		return nil
	}
	e := &MSHREntry{Addr: addr}
	m.entries[addr] = e
	m.allocs++
	if len(m.entries) > m.peak {
		m.peak = len(m.entries)
	}
	return e
}

// Get returns the entry for addr, or nil.
func (m *MSHR) Get(addr uint64) *MSHREntry { return m.entries[addr] }

// Free releases addr's entry.
func (m *MSHR) Free(addr uint64) { delete(m.entries, addr) }

// Entries returns every outstanding entry in ascending address order, for
// deterministic diagnostic snapshots.
func (m *MSHR) Entries() []*MSHREntry {
	out := make([]*MSHREntry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Len reports outstanding entries.
func (m *MSHR) Len() int { return len(m.entries) }

// Full reports whether a new allocation would fail for capacity reasons.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Peak reports the high-water mark of concurrently outstanding entries.
func (m *MSHR) Peak() int { return m.peak }

// Allocs reports successful allocations over the file's lifetime.
func (m *MSHR) Allocs() uint64 { return m.allocs }

// Rejects reports allocations denied for capacity or duplicate address.
func (m *MSHR) Rejects() uint64 { return m.rejects }
