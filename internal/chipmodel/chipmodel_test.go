package chipmodel

import (
	"math"
	"strings"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperGateCounts(t *testing.T) {
	if NormalRouter.GateCountK != 19.9 || BigRouter.GateCountK != 22.4 {
		t.Fatal("router gate counts diverge from Figure 7a")
	}
	if !approx(PacketGenGatesK, 2.5, 1e-9) {
		t.Fatalf("packet generator = %.2fK gates, want 2.5K", PacketGenGatesK)
	}
}

func TestPacketGenPowerOverhead(t *testing.T) {
	// The paper reports 9.9% (8.4 mW over an 84.2 mW normal router).
	got := 100 * PacketGenPowerOverhead()
	if !approx(got, 9.9, 0.2) {
		t.Fatalf("overhead = %.2f%%, want ≈9.9%%", got)
	}
}

func TestTilePower(t *testing.T) {
	if !approx(TilePowerMW(true), 716.1, 0.01) {
		t.Fatalf("big tile = %.1f mW, want 716.1", TilePowerMW(true))
	}
	if !approx(TilePowerMW(false), 707.7, 0.01) {
		t.Fatalf("normal tile = %.1f mW, want 707.7", TilePowerMW(false))
	}
}

func TestChipTotals(t *testing.T) {
	sum, err := Chip(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	// 64 cores × 152.5K + 32 × 22.4K + 32 × 19.9K = 11113.6K gates.
	if !approx(sum.TotalGatesK, 11113.6, 0.1) {
		t.Fatalf("gates = %.1fK", sum.TotalGatesK)
	}
	// Paper's die edge: 11395 µm; our square-tile estimate must land close.
	if sum.EdgeUM < 10500 || sum.EdgeUM > 12500 {
		t.Fatalf("edge = %.0f µm, want near the paper's 11395", sum.EdgeUM)
	}
	if sum.TotalPowerW < 40 || sum.TotalPowerW > 50 {
		t.Fatalf("power = %.1f W out of plausible band", sum.TotalPowerW)
	}
}

func TestChipValidation(t *testing.T) {
	if _, err := Chip(0, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := Chip(4, 5); err == nil {
		t.Fatal("more big routers than cores accepted")
	}
}

func TestLinkWidth(t *testing.T) {
	// 128 wires × 0.007 µm ≈ 0.9 µm, well under the 1.8 µm tile gap.
	if w := LinkWidthUM(); w <= 0 || w >= TileGapUM {
		t.Fatalf("link width %.3f µm must fit the %.1f µm gap", w, TileGapUM)
	}
}

func TestRenderFigure7(t *testing.T) {
	out := RenderFigure7(64, 32)
	for _, want := range []string{"TSMC 40 nm", "Big router", "22.4", "716.1", "9.98%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}
