// Package chipmodel is the analytical stand-in for the paper's RTL
// synthesis and physical design flow (Section 4.2, Figure 7). The paper
// synthesized normal and big routers with Synopsys Design Compiler and
// placed them with Cadence SoC Encounter in TSMC 40 nm LP; without EDA
// tools, this package encodes the published primitive quantities (gate
// counts, standard-cell counts, power, densities) and regenerates the
// derived rows of Figure 7 — per-module area, tile power, chip-level
// totals — from the same arithmetic the paper uses, for any mesh size and
// big-router deployment.
package chipmodel

import (
	"fmt"
	"strings"
)

// Technology constants (TSMC 40 nm low power, typical case).
const (
	Technology  = "TSMC 40 nm Low power, Typical case (lpbwptc)"
	CoreVoltage = 1.1 // V
	ChipInputV  = 1.7 // V
	ClockGHz    = 2.0

	TotalLayers    = 28
	MetalLayers    = 10
	ViaLayers      = 11
	ImplantLayers  = 5
	MasterSliceLay = 1
	APLayers       = 1
)

// Module is one synthesized block with its Figure 7a characteristics.
type Module struct {
	Name        string
	GateCountK  float64 // equivalent NAND gates, thousands
	SCCountK    float64 // standard cells, thousands
	NetCountK   float64
	SCAreaMM2   float64
	CellDensity float64 // fraction before filler insertion
	WireLengthM float64
	AreaMM2     float64
	DynPowerMW  float64
}

// The paper's synthesized modules (Figure 7a plus Section 4.2 power
// numbers). The OpenRISC 1200 core is configured per Table 1.
var (
	Core = Module{
		Name: "Core (OR1200)", GateCountK: 152.5, SCCountK: 23.2, NetCountK: 60.9,
		SCAreaMM2: 0.97, CellDensity: 0.4826, WireLengthM: 8.81, AreaMM2: 2.03,
		DynPowerMW: 623.5,
	}
	NormalRouter = Module{
		Name: "Normal router", GateCountK: 19.9, SCCountK: 3.6, NetCountK: 10.0,
		SCAreaMM2: 0.13, CellDensity: 0.6190, WireLengthM: 1.28, AreaMM2: 0.21,
		DynPowerMW: 84.2,
	}
	BigRouter = Module{
		Name: "Big router", GateCountK: 22.4, SCCountK: 4.0, NetCountK: 11.1,
		SCAreaMM2: 0.14, CellDensity: 0.6667, WireLengthM: 1.42, AreaMM2: 0.21,
		DynPowerMW: 92.6,
	}
)

// Packet-generator overheads derived in Section 4.2.
const (
	PacketGenGatesK   = 22.4 - 19.9 // 2.5K gates
	PacketGenPowerMW  = 8.4
	RouterDimensionUM = 460
	TileGapUM         = 1.8
	LinkWiresPerDir   = 128
	WireWidthUM       = 0.007
)

// PacketGenPowerOverhead is the generator's dynamic power relative to a
// normal router (the paper reports 9.9%).
func PacketGenPowerOverhead() float64 {
	return PacketGenPowerMW / NormalRouter.DynPowerMW
}

// TilePowerMW returns a tile's dynamic power: one core plus its router.
// The paper: big tile 716.1 mW, normal tile 707.7 mW.
func TilePowerMW(big bool) float64 {
	if big {
		return Core.DynPowerMW + BigRouter.DynPowerMW
	}
	return Core.DynPowerMW + NormalRouter.DynPowerMW
}

// ChipSummary aggregates a whole-chip estimate for a given configuration.
type ChipSummary struct {
	Cores        int
	BigRouters   int
	TotalGatesK  float64
	TotalAreaMM2 float64
	TotalPowerW  float64
	EdgeUM       float64 // square die edge estimate
}

// Chip computes chip-level totals for cores tiles of which bigRouters are
// big. The paper's 8×8 instance reports an 11395 µm edge.
func Chip(cores, bigRouters int) (ChipSummary, error) {
	if cores <= 0 || bigRouters < 0 || bigRouters > cores {
		return ChipSummary{}, fmt.Errorf("chipmodel: invalid configuration cores=%d big=%d", cores, bigRouters)
	}
	normal := cores - bigRouters
	s := ChipSummary{Cores: cores, BigRouters: bigRouters}
	s.TotalGatesK = float64(cores)*Core.GateCountK +
		float64(bigRouters)*BigRouter.GateCountK +
		float64(normal)*NormalRouter.GateCountK
	tileArea := Core.AreaMM2 + NormalRouter.AreaMM2 // routers share one dimension
	s.TotalAreaMM2 = float64(cores) * tileArea
	s.TotalPowerW = (float64(bigRouters)*TilePowerMW(true) +
		float64(normal)*TilePowerMW(false)) / 1000
	// Square-die edge: tiles in a √cores × √cores grid with the paper's
	// inter-tile wiring gap.
	side := 1
	for side*side < cores {
		side++
	}
	tileEdgeUM := 1000 * sqrtMM2(tileArea)
	s.EdgeUM = float64(side)*tileEdgeUM + float64(side-1)*TileGapUM
	return s, nil
}

// sqrtMM2 returns the edge in mm of a square of the given area.
func sqrtMM2(area float64) float64 {
	if area <= 0 {
		return 0
	}
	x := area
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + area/x)
	}
	return x
}

// LinkWidthUM returns the physical width of one inter-router link bundle
// (128 wires per direction at the paper's wire pitch).
func LinkWidthUM() float64 { return LinkWiresPerDir * WireWidthUM }

// RenderFigure7 prints the module table and derived values in the shape of
// Figure 7a.
func RenderFigure7(cores, bigRouters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Technology        %s\n", Technology)
	fmt.Fprintf(&b, "Total layers      %d (metal %d, via %d, implant %d, master-slice %d, AP %d)\n",
		TotalLayers, MetalLayers, ViaLayers, ImplantLayers, MasterSliceLay, APLayers)
	fmt.Fprintf(&b, "%-18s %10s %8s %8s %10s %9s %8s %8s\n",
		"Module", "Gates(K)", "SC(K)", "Nets(K)", "SCmm2", "Density", "Wire(m)", "mW")
	for _, m := range []Module{Core, BigRouter, NormalRouter} {
		fmt.Fprintf(&b, "%-18s %10.1f %8.1f %8.1f %10.2f %8.2f%% %8.2f %8.1f\n",
			m.Name, m.GateCountK, m.SCCountK, m.NetCountK, m.SCAreaMM2,
			100*m.CellDensity, m.WireLengthM, m.DynPowerMW)
	}
	fmt.Fprintf(&b, "Packet generator  %10.1fK gates, %.1f mW (%.2f%% of a normal router)\n",
		PacketGenGatesK, PacketGenPowerMW, 100*PacketGenPowerOverhead())
	fmt.Fprintf(&b, "Tile power        big %.1f mW, normal %.1f mW\n", TilePowerMW(true), TilePowerMW(false))
	if sum, err := Chip(cores, bigRouters); err == nil {
		fmt.Fprintf(&b, "Chip (%d cores, %d big routers): %.1fK gates, %.1f mm2, %.2f W, edge %.0f um\n",
			sum.Cores, sum.BigRouters, sum.TotalGatesK, sum.TotalAreaMM2, sum.TotalPowerW, sum.EdgeUM)
	}
	return b.String()
}
