// Package metrics is the simulator's unified telemetry registry: named
// counters, gauges and cycle histograms that every subsystem — the engine,
// the NoC, the coherence fabric, the memory controllers, the big routers
// and the threads — registers into at construction time.
//
// The design rule is the same nil-check discipline as internal/trace: the
// hot path never pays for telemetry it did not ask for. Counters are not
// incremented through the registry at all — components keep their existing
// plain-field Stats structs (a single-threaded simulation needs no
// atomics), and the registry holds *reader closures* over those fields.
// Reading happens only at snapshot or sample time, so a run with metrics
// disabled is byte- and allocation-identical to one without the package
// compiled in, and a run with metrics enabled perturbs nothing the
// simulation can observe.
//
// Cross-run aggregation is the runner's concern: one Registry belongs to
// exactly one simulation and is read from its single thread.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"inpg/internal/stats"
)

// Reader yields the current value of a registered counter or gauge.
type Reader func() uint64

// entry is one registered scalar series.
type entry struct {
	name string
	read Reader
	// gauge marks instantaneous values (occupancies) as opposed to
	// monotonically nondecreasing counters; the distinction matters only
	// to exporters (Perfetto renders both as counter tracks).
	gauge bool
}

// histEntry is one registered histogram.
type histEntry struct {
	name string
	h    *stats.Histogram
}

// Registry holds a simulation's registered instruments. The zero value is
// unusable; use NewRegistry. Registration order is irrelevant: snapshots
// and samples are always emitted in sorted-name order, so two runs that
// register the same instruments in different orders still produce
// byte-identical output.
type Registry struct {
	entries []entry
	hists   []histEntry
	sealed  bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a monotonically nondecreasing series under name.
// Duplicate names panic: they would silently shadow each other in
// snapshots and the mistake is always a wiring bug.
func (r *Registry) Counter(name string, read Reader) {
	r.add(name, read, false)
}

// Gauge registers an instantaneous-value series (an occupancy, a queue
// depth) under name.
func (r *Registry) Gauge(name string, read Reader) {
	r.add(name, read, true)
}

func (r *Registry) add(name string, read Reader, gauge bool) {
	if r.sealed {
		panic("metrics: registration after first snapshot/sample")
	}
	if read == nil {
		panic("metrics: nil reader for " + name)
	}
	for _, e := range r.entries {
		if e.name == name {
			panic("metrics: duplicate instrument " + name)
		}
	}
	r.entries = append(r.entries, entry{name: name, read: read, gauge: gauge})
}

// Histogram registers a cycle histogram under name. The histogram is
// owned by the caller; the registry only reads it at snapshot time.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	if r.sealed {
		panic("metrics: registration after first snapshot/sample")
	}
	if h == nil {
		panic("metrics: nil histogram for " + name)
	}
	for _, e := range r.hists {
		if e.name == name {
			panic("metrics: duplicate histogram " + name)
		}
	}
	r.hists = append(r.hists, histEntry{name: name, h: h})
}

// seal sorts the instrument tables and freezes registration; called on the
// first read so every snapshot and sample shares one stable order.
func (r *Registry) seal() {
	if r.sealed {
		return
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].name < r.entries[j].name })
	sort.Slice(r.hists, func(i, j int) bool { return r.hists[i].name < r.hists[j].name })
	r.sealed = true
}

// Names returns the registered scalar instrument names in snapshot order.
func (r *Registry) Names() []string {
	r.seal()
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// Len reports the number of registered scalar instruments.
func (r *Registry) Len() int { return len(r.entries) }

// KV is one snapshotted value.
type KV struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
	Gauge bool   `json:"gauge,omitempty"`
}

// HistSummary is one histogram's snapshotted shape.
type HistSummary struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
}

// Snapshot is a full, deterministic read of every instrument: values in
// sorted-name order, histograms summarized. Equal simulations produce
// byte-identical snapshots regardless of worker count or engine
// scheduling mode.
type Snapshot struct {
	Cycle      uint64        `json:"cycle"`
	Values     []KV          `json:"values"`
	Histograms []HistSummary `json:"histograms,omitempty"`
}

// Snapshot reads every instrument at the given cycle.
func (r *Registry) Snapshot(cycle uint64) Snapshot {
	r.seal()
	s := Snapshot{Cycle: cycle, Values: make([]KV, len(r.entries))}
	for i, e := range r.entries {
		s.Values[i] = KV{Name: e.name, Value: e.read(), Gauge: e.gauge}
	}
	for _, he := range r.hists {
		s.Histograms = append(s.Histograms, HistSummary{
			Name:  he.name,
			Count: he.h.Count(),
			Sum:   he.h.Sum(),
			Max:   he.h.Max(),
			P50:   he.h.Percentile(0.50),
			P99:   he.h.Percentile(0.99),
		})
	}
	return s
}

// Text renders the snapshot one "name value" line at a time, the
// canonical byte-comparable form the determinism tests pin.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle %d\n", s.Cycle)
	for _, kv := range s.Values {
		fmt.Fprintf(&sb, "%s %d\n", kv.Name, kv.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&sb, "%s count=%d sum=%d max=%d p50=%d p99=%d\n",
			h.Name, h.Count, h.Sum, h.Max, h.P50, h.P99)
	}
	return sb.String()
}

// Get returns the value recorded for name, and whether it exists.
func (s Snapshot) Get(name string) (uint64, bool) {
	i := sort.Search(len(s.Values), func(i int) bool { return s.Values[i].Name >= name })
	if i < len(s.Values) && s.Values[i].Name == name {
		return s.Values[i].Value, true
	}
	return 0, false
}
