// Chrome trace-event ("Perfetto JSON") export: converts a protocol trace
// and a sampled metric series into a .trace.json that loads directly in
// ui.perfetto.dev or chrome://tracing. One simulated cycle maps to one
// microsecond of trace time, so the Perfetto timeline reads in cycles.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"inpg/internal/trace"
)

// Process IDs in the exported trace: protocol events render one thread
// row per mesh node, lock events one row per competing thread, and each
// sampled metric becomes its own counter track.
const (
	pidNodes   = 1
	pidThreads = 2
	pidMetrics = 3
)

// chromeEvent is one trace-event JSON object. Field order follows the
// struct, and encoding/json sorts map keys, so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace converts protocol events (oldest-first, as returned by
// trace.Buffer.Events) and an optional sampled series into Chrome
// trace-event JSON. Either input may be empty/nil. Events are emitted in
// nondecreasing ts order.
func WriteChromeTrace(w io.Writer, events []trace.Event, sampler *Sampler) error {
	var out []chromeEvent

	// Lock sessions: pair each node's acquire with its following release
	// into a complete ("X") event so held sections render as spans.
	heldSince := make(map[int]uint64)
	for _, e := range events {
		switch e.Kind {
		case trace.LockAcquire:
			heldSince[int(e.Node)] = uint64(e.Cycle)
		case trace.LockRelease:
			tid := int(e.Node)
			if at, ok := heldSince[tid]; ok {
				out = append(out, chromeEvent{
					Name: "lock-held", Ph: "X", Ts: at, Dur: uint64(e.Cycle) - at,
					Pid: pidThreads, Tid: tid,
				})
				delete(heldSince, tid)
			}
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: uint64(e.Cycle),
				Pid: pidNodes, Tid: int(e.Node), S: "t",
				Args: map[string]any{
					"src":    int(e.Src),
					"dst":    int(e.Dst),
					"addr":   fmt.Sprintf("%#x", e.Addr),
					"detail": e.Detail,
				},
			})
		}
	}
	// Unmatched acquires (still held at trace end) degrade to instants.
	for tid, at := range heldSince {
		out = append(out, chromeEvent{
			Name: "lock-acquire", Ph: "i", Ts: at,
			Pid: pidThreads, Tid: tid, S: "t",
		})
	}

	// Sampled series: one counter track per instrument.
	if sampler != nil {
		for _, s := range sampler.Series {
			for i, name := range sampler.Names {
				out = append(out, chromeEvent{
					Name: name, Ph: "C", Ts: s.Cycle,
					Pid: pidMetrics, Tid: 0,
					Args: map[string]any{"value": s.Values[i]},
				})
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	// Metadata names render the rows readably; ts 0 keeps them ahead of
	// everything after the sort above (they are prepended post-sort).
	meta := []chromeEvent{
		processName(pidNodes, "mesh nodes"),
		processName(pidThreads, "threads (lock sessions)"),
		processName(pidMetrics, "metrics"),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     append(meta, out...),
	})
}

// processName builds a process_name metadata event.
func processName(pid int, name string) chromeEvent {
	return chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": name},
	}
}

// ValidateChromeTrace structurally checks an exported .trace.json: it must
// be valid JSON, every event must carry name/ph/pid/tid, and timestamps of
// non-metadata events must be nondecreasing. This is the checker the tests
// and CI run against generated traces.
func ValidateChromeTrace(data []byte) error {
	var t struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("trace: no events")
	}
	lastTs := -1.0
	for i, e := range t.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				return fmt.Errorf("trace: event %d missing %q", i, key)
			}
		}
		var ph string
		if err := json.Unmarshal(e["ph"], &ph); err != nil || ph == "" {
			return fmt.Errorf("trace: event %d has invalid ph", i)
		}
		if ph == "M" {
			continue
		}
		raw, ok := e["ts"]
		if !ok {
			return fmt.Errorf("trace: event %d (%s) missing ts", i, ph)
		}
		var ts float64
		if err := json.Unmarshal(raw, &ts); err != nil {
			return fmt.Errorf("trace: event %d ts: %w", i, err)
		}
		if ts < lastTs {
			return fmt.Errorf("trace: event %d ts %v before %v", i, ts, lastTs)
		}
		lastTs = ts
	}
	return nil
}
