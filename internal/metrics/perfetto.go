// Chrome trace-event ("Perfetto JSON") export: converts a protocol trace
// and a sampled metric series into a .trace.json that loads directly in
// ui.perfetto.dev or chrome://tracing. One simulated cycle maps to one
// microsecond of trace time, so the Perfetto timeline reads in cycles.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"inpg/internal/journey"
	"inpg/internal/trace"
)

// Process IDs in the exported trace: protocol events render one thread
// row per mesh node, lock events one row per competing thread, each
// sampled metric becomes its own counter track, and sampled lock
// journeys render one row per thread with per-leg child spans.
const (
	pidNodes    = 1
	pidThreads  = 2
	pidMetrics  = 3
	pidJourneys = 4
)

// chromeEvent is one trace-event JSON object. Field order follows the
// struct, and encoding/json sorts map keys, so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace converts protocol events (oldest-first, as returned by
// trace.Buffer.Events) and an optional sampled series into Chrome
// trace-event JSON. Either input may be empty/nil. Events are emitted in
// nondecreasing ts order.
func WriteChromeTrace(w io.Writer, events []trace.Event, sampler *Sampler) error {
	return WriteChromeTraceJourneys(w, events, sampler, nil)
}

// WriteChromeTraceJourneys is WriteChromeTrace plus lock-journey spans:
// each finished journey record becomes a complete ("X") span on the
// journeys process (one row per thread), with one nested child span per
// network leg. A nil or empty recorder produces output byte-identical to
// WriteChromeTrace.
func WriteChromeTraceJourneys(w io.Writer, events []trace.Event, sampler *Sampler, journeys *journey.Recorder) error {
	var out []chromeEvent

	// Lock sessions: pair each node's acquire with its following release
	// into a complete ("X") event so held sections render as spans.
	heldSince := make(map[int]uint64)
	for _, e := range events {
		switch e.Kind {
		case trace.LockAcquire:
			heldSince[int(e.Node)] = uint64(e.Cycle)
		case trace.LockRelease:
			tid := int(e.Node)
			if at, ok := heldSince[tid]; ok {
				out = append(out, chromeEvent{
					Name: "lock-held", Ph: "X", Ts: at, Dur: uint64(e.Cycle) - at,
					Pid: pidThreads, Tid: tid,
				})
				delete(heldSince, tid)
			}
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: uint64(e.Cycle),
				Pid: pidNodes, Tid: int(e.Node), S: "t",
				Args: map[string]any{
					"src":    int(e.Src),
					"dst":    int(e.Dst),
					"addr":   fmt.Sprintf("%#x", e.Addr),
					"detail": e.Detail,
				},
			})
		}
	}
	// Unmatched acquires (still held at trace end) degrade to instants.
	for tid, at := range heldSince {
		out = append(out, chromeEvent{
			Name: "lock-acquire", Ph: "i", Ts: at,
			Pid: pidThreads, Tid: tid, S: "t",
		})
	}

	// Lock journeys: one parent span per sampled acquisition, one child
	// span per network leg. Legs are attributed inside the parent window
	// by construction (the record's cursor is monotonic), so containment
	// — which is what makes Perfetto render them nested — always holds.
	haveJourneys := false
	if journeys != nil {
		for _, r := range journeys.Records {
			if !r.Finished() {
				continue
			}
			haveJourneys = true
			stages := make(map[string]any, len(journey.Stages))
			for _, st := range journey.Stages {
				stages[st.String()] = r.Stages[st]
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("journey #%d", r.Acquire),
				Ph:   "X", Ts: uint64(r.Start), Dur: uint64(r.End - r.Start),
				Pid: pidJourneys, Tid: r.Thread,
				Args: map[string]any{
					"acquire":     r.Acquire,
					"hops":        r.Hops,
					"legs":        r.LegCount,
					"intercepted": r.Intercepted,
					"stages":      stages,
				},
			})
			for _, l := range r.Legs {
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("leg %d->%d", l.Src, l.Dst),
					Ph:   "X", Ts: uint64(l.Start), Dur: uint64(l.End - l.Start),
					Pid: pidJourneys, Tid: r.Thread,
					Args: map[string]any{
						"hops":        l.Hops,
						"ni_queue":    l.NIQueue,
						"vc_wait":     l.VCWait,
						"link":        l.Link,
						"bigrouter":   l.BigRouter,
						"retry":       l.Retry,
						"intercepted": l.Intercepted,
					},
				})
			}
		}
	}

	// Sampled series: one counter track per instrument.
	if sampler != nil {
		for _, s := range sampler.Series {
			for i, name := range sampler.Names {
				out = append(out, chromeEvent{
					Name: name, Ph: "C", Ts: s.Cycle,
					Pid: pidMetrics, Tid: 0,
					Args: map[string]any{"value": s.Values[i]},
				})
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	// Metadata names render the rows readably; ts 0 keeps them ahead of
	// everything after the sort above (they are prepended post-sort).
	meta := []chromeEvent{
		processName(pidNodes, "mesh nodes"),
		processName(pidThreads, "threads (lock sessions)"),
		processName(pidMetrics, "metrics"),
	}
	if haveJourneys {
		meta = append(meta, processName(pidJourneys, "lock journeys"))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     append(meta, out...),
	})
}

// processName builds a process_name metadata event.
func processName(pid int, name string) chromeEvent {
	return chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": name},
	}
}

// ValidateChromeTrace structurally checks an exported .trace.json: it must
// be valid JSON, every event must carry name/ph/pid/tid, timestamps of
// non-metadata events must be nondecreasing, durations must be
// nonnegative, and complete ("X") spans sharing a row must be properly
// nested — a span either contains or is disjoint from every other span on
// its (pid, tid), never partially overlapping. This is the checker the
// tests, CI, and inpgvalidate run against generated traces.
func ValidateChromeTrace(data []byte) error {
	var t struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("trace: no events")
	}
	lastTs := -1.0
	// open tracks, per (pid, tid) row, the end timestamps of X spans that
	// are still open at the cursor — a containment stack. Events arrive
	// sorted by ts, so a new span on a row must either start at or after
	// the innermost open span's end (disjoint: pop it) or end within it
	// (nested: push).
	type row struct{ pid, tid float64 }
	open := make(map[row][]float64)
	for i, e := range t.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				return fmt.Errorf("trace: event %d missing %q", i, key)
			}
		}
		var ph string
		if err := json.Unmarshal(e["ph"], &ph); err != nil || ph == "" {
			return fmt.Errorf("trace: event %d has invalid ph", i)
		}
		if ph == "M" {
			continue
		}
		raw, ok := e["ts"]
		if !ok {
			return fmt.Errorf("trace: event %d (%s) missing ts", i, ph)
		}
		var ts float64
		if err := json.Unmarshal(raw, &ts); err != nil {
			return fmt.Errorf("trace: event %d ts: %w", i, err)
		}
		if ts < lastTs {
			return fmt.Errorf("trace: event %d ts %v before %v", i, ts, lastTs)
		}
		lastTs = ts
		if ph != "X" {
			continue
		}
		var dur float64
		if raw, ok := e["dur"]; ok {
			if err := json.Unmarshal(raw, &dur); err != nil {
				return fmt.Errorf("trace: event %d dur: %w", i, err)
			}
			if dur < 0 {
				return fmt.Errorf("trace: event %d has negative dur %v", i, dur)
			}
		}
		var pid, tid float64
		if err := json.Unmarshal(e["pid"], &pid); err != nil {
			return fmt.Errorf("trace: event %d pid: %w", i, err)
		}
		if err := json.Unmarshal(e["tid"], &tid); err != nil {
			return fmt.Errorf("trace: event %d tid: %w", i, err)
		}
		k := row{pid, tid}
		stack := open[k]
		for len(stack) > 0 && stack[len(stack)-1] <= ts {
			stack = stack[:len(stack)-1]
		}
		if end := ts + dur; len(stack) > 0 && end > stack[len(stack)-1] {
			return fmt.Errorf("trace: event %d [%v, %v) partially overlaps an enclosing span ending at %v on pid %v tid %v",
				i, ts, end, stack[len(stack)-1], pid, tid)
		}
		open[k] = append(stack, ts+dur)
	}
	return nil
}
