package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"inpg/internal/journey"
	"inpg/internal/sim"
	"inpg/internal/stats"
	"inpg/internal/trace"
)

func TestRegistrySnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	var b, a uint64 = 2, 1
	// Register out of order: snapshots must still come out sorted.
	r.Counter("zeta", func() uint64 { return b })
	r.Counter("alpha", func() uint64 { return a })
	r.Gauge("mid.gauge", func() uint64 { return 7 })
	h := stats.NewHistogram(1)
	h.Add(10)
	h.Add(20)
	r.Histogram("lat", h)

	s := r.Snapshot(123)
	if s.Cycle != 123 {
		t.Fatalf("cycle = %d", s.Cycle)
	}
	names := []string{"alpha", "mid.gauge", "zeta"}
	for i, kv := range s.Values {
		if kv.Name != names[i] {
			t.Fatalf("value %d = %q, want %q", i, kv.Name, names[i])
		}
	}
	if !s.Values[1].Gauge || s.Values[0].Gauge {
		t.Fatal("gauge flag misplaced")
	}
	if v, ok := s.Get("zeta"); !ok || v != 2 {
		t.Fatalf("Get(zeta) = %d,%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) succeeded")
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 2 || s.Histograms[0].Max != 20 {
		t.Fatalf("histogram summary = %+v", s.Histograms)
	}

	// Readers are live: a counter bump shows in the next snapshot only.
	a = 42
	if v, _ := r.Snapshot(124).Get("alpha"); v != 42 {
		t.Fatalf("live reader = %d, want 42", v)
	}

	// Text is the canonical byte-comparable form.
	txt := s.Text()
	want := "cycle 123\nalpha 1\nmid.gauge 7\nzeta 2\nlat count=2 sum=30 max=20 p50=10 p99=20\n"
	if txt != want {
		t.Fatalf("Text:\n%q\nwant:\n%q", txt, want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", func() uint64 { return 0 })
}

func TestRegistrySealedPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", func() uint64 { return 0 })
	r.Snapshot(0)
	defer func() {
		if recover() == nil {
			t.Fatal("post-snapshot registration did not panic")
		}
	}()
	r.Counter("y", func() uint64 { return 0 })
}

// The sampler reads the registry exactly every interval cycles through the
// engine's ordinary event heap.
func TestSamplerPeriod(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRegistry()
	var ticks uint64
	r.Counter("ticks", func() uint64 { return ticks })
	s := NewSampler(eng, r, 10)
	s.Start()

	done := false
	eng.Schedule(94, func() { done = true }) // fires at cycle 95
	if _, err := eng.Run(1000, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	if len(s.Series) != 9 {
		t.Fatalf("%d samples, want 9 (cycles 10..90)", len(s.Series))
	}
	for i, sm := range s.Series {
		if want := uint64(10 * (i + 1)); sm.Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, sm.Cycle, want)
		}
		if len(sm.Values) != 1 {
			t.Fatalf("sample %d has %d values", i, len(sm.Values))
		}
	}
	if len(s.Names) != 1 || s.Names[0] != "ticks" {
		t.Fatalf("names = %v", s.Names)
	}
}

// The exported Chrome trace is structurally valid and pairs lock
// acquire/release into complete ("X") span events.
func TestWriteChromeTraceStructure(t *testing.T) {
	events := []trace.Event{
		{Cycle: 5, Kind: trace.PktInject, Node: 1, Src: 1, Dst: 9, Addr: 0x80, Detail: "GETX"},
		{Cycle: 100, Kind: trace.LockAcquire, Node: 2},
		{Cycle: 150, Kind: trace.LockRelease, Node: 2},
		{Cycle: 160, Kind: trace.LinkRetry, Node: 3, Detail: "retry 1 toward East"},
		{Cycle: 200, Kind: trace.LockAcquire, Node: 4}, // unmatched: degrades to instant
	}

	eng := sim.NewEngine(1)
	r := NewRegistry()
	var v uint64
	r.Counter("c", func() uint64 { return v })
	s := NewSampler(eng, r, 50)
	s.Start()
	done := false
	eng.Schedule(119, func() { done = true })
	if _, err := eng.Run(1000, func() bool { return done }); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, s); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var spans, instants, counters, metas int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Ts != 100 || e.Dur != 50 || e.Tid != 2 {
				t.Fatalf("lock span = %+v", e)
			}
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			metas++
		}
	}
	if spans != 1 {
		t.Fatalf("spans = %d, want 1", spans)
	}
	// Instants: inject, link-retry, and the unmatched acquire.
	if instants != 3 {
		t.Fatalf("instants = %d, want 3", instants)
	}
	// Counter samples at cycles 50 and 100, one instrument.
	if counters != 2 {
		t.Fatalf("counter events = %d, want 2", counters)
	}
	if metas != 3 {
		t.Fatalf("metadata events = %d, want 3", metas)
	}
}

// Journey records export as nested spans on the journeys process: one
// parent per record, one child per leg, contained in time, and a nil
// recorder leaves the output byte-identical to WriteChromeTrace.
func TestWriteChromeTraceJourneyspans(t *testing.T) {
	r := &journey.Record{Thread: 3, Acquire: 7}
	r.Begin(100)
	r.Issue(105)                              // 5 cycles stall
	r.FoldLeg(125, 3, 12, 4, 6, 3, 0, false)  // request leg
	r.Remote(140)                             // directory service
	r.FoldLeg(160, 12, 3, 4, 2, 0, 5, false)  // response leg
	r.Finish(163)
	rec := journey.NewRecorder(0)
	rec.Finish(r)

	var buf bytes.Buffer
	if err := WriteChromeTraceJourneys(&buf, nil, nil, rec); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var parents, legs int
	for _, e := range out.TraceEvents {
		if e.Ph != "X" || e.Pid != pidJourneys {
			continue
		}
		if e.Tid != 3 {
			t.Fatalf("journey span on tid %d, want 3", e.Tid)
		}
		if e.Name == "journey #7" {
			parents++
			if e.Ts != 100 || e.Dur != 63 {
				t.Fatalf("parent span = %+v", e)
			}
		} else {
			legs++
			if e.Ts < 100 || e.Ts+e.Dur > 163 {
				t.Fatalf("leg span %+v escapes its journey", e)
			}
		}
	}
	if parents != 1 || legs != 2 {
		t.Fatalf("parents = %d legs = %d, want 1 and 2", parents, legs)
	}

	// nil recorder ≡ the journey-less writer, byte for byte.
	var plain, nilRec bytes.Buffer
	events := []trace.Event{{Cycle: 5, Kind: trace.PktInject, Node: 1}}
	if err := WriteChromeTrace(&plain, events, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceJourneys(&nilRec, events, nil, journey.NewRecorder(0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), nilRec.Bytes()) {
		t.Fatal("empty recorder changed trace bytes")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	if err := ValidateChromeTrace([]byte("not json")); err == nil {
		t.Fatal("accepted invalid JSON")
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("accepted empty trace")
	}
	missing := []byte(`{"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":1}]}`)
	if err := ValidateChromeTrace(missing); err == nil {
		t.Fatal("accepted event missing tid")
	}
	backwards := []byte(`{"traceEvents":[
		{"name":"a","ph":"i","ts":10,"pid":1,"tid":0},
		{"name":"b","ph":"i","ts":5,"pid":1,"tid":0}]}`)
	if err := ValidateChromeTrace(backwards); err == nil {
		t.Fatal("accepted nonmonotonic ts")
	}
	overlap := []byte(`{"traceEvents":[
		{"name":"a","ph":"X","ts":0,"dur":10,"pid":4,"tid":0},
		{"name":"b","ph":"X","ts":5,"dur":10,"pid":4,"tid":0}]}`)
	if err := ValidateChromeTrace(overlap); err == nil {
		t.Fatal("accepted partially overlapping spans")
	}
	negative := []byte(`{"traceEvents":[
		{"name":"a","ph":"X","ts":0,"dur":-3,"pid":4,"tid":0}]}`)
	if err := ValidateChromeTrace(negative); err == nil {
		t.Fatal("accepted negative duration")
	}
}
