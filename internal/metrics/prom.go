// Prometheus text-exposition export: renders aggregated counters and
// gauges in the text format Prometheus scrapes, under the inpg_
// namespace. The sweep monitor and the fleet coordinator serve it on
// /metrics, which is what makes a long campaign's telemetry — including
// the per-stage lock-journey instruments — visible to standard
// dashboards without any new dependency.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromName maps an instrument name onto the Prometheus metric-name
// alphabet: dots and any other illegal characters become underscores and
// the inpg_ namespace is prefixed ("journey.stage.vc_wait_cycles" →
// "inpg_journey_stage_vc_wait_cycles").
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("inpg_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// FoldSnapshot accumulates a run's final snapshot into an aggregate
// counter map: every counter value adds under its own name, and every
// histogram contributes <name>_count and <name>_sum. Max and quantiles
// do not aggregate additively and are left to the per-run artifacts.
// The sweep monitor and the fleet coordinator both fold completed runs
// through this, so their /metrics endpoints agree on naming.
func FoldSnapshot(dst map[string]uint64, snap *Snapshot) {
	if snap == nil {
		return
	}
	for _, kv := range snap.Values {
		dst[kv.Name] += kv.Value
	}
	for _, h := range snap.Histograms {
		dst[h.Name+"_count"] += h.Count
		dst[h.Name+"_sum"] += h.Sum
	}
}

// WritePrometheus renders counters (monotonic aggregates) and gauges
// (instantaneous values) in the Prometheus text exposition format,
// sorted by name for stable output. Either map may be nil.
func WritePrometheus(w io.Writer, counters map[string]uint64, gauges map[string]float64) {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, gauges[name])
	}
}
