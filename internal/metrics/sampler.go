package metrics

import (
	"inpg/internal/sim"
)

// Sample is one periodic reading of every scalar instrument, values in
// the registry's snapshot (sorted-name) order.
type Sample struct {
	Cycle  uint64   `json:"cycle"`
	Values []uint64 `json:"values"`
}

// Sampler reads the registry every Interval cycles into an in-memory
// time series, through the engine's ordinary event scheduler. Sampling is
// invisible to the simulation: the sampler owns no component, wakes
// nothing, consumes no randomness and notes no progress, so a sampled run
// is cycle-for-cycle identical to an unsampled one.
type Sampler struct {
	reg      *Registry
	eng      *sim.Engine
	interval sim.Cycle

	// Names lists the sampled instruments, index-aligned with every
	// Sample's Values.
	Names []string
	// Series holds the collected samples in cycle order.
	Series []Sample

	fire func()
}

// NewSampler builds a sampler reading reg every interval cycles
// (minimum 1). Call Start to begin sampling.
func NewSampler(eng *sim.Engine, reg *Registry, interval sim.Cycle) *Sampler {
	if interval < 1 {
		interval = 1
	}
	s := &Sampler{reg: reg, eng: eng, interval: interval}
	s.fire = func() {
		s.record()
		// Schedule(d) fires d+1 cycles later, so interval-1 keeps the
		// period exact.
		s.eng.Schedule(s.interval-1, s.fire)
	}
	return s
}

// Start freezes the instrument set and schedules the first sample one
// interval from now.
func (s *Sampler) Start() {
	s.Names = s.reg.Names()
	s.eng.Schedule(s.interval-1, s.fire)
}

// record appends one sample at the current cycle.
func (s *Sampler) record() {
	vals := make([]uint64, len(s.reg.entries))
	for i, e := range s.reg.entries {
		vals[i] = e.read()
	}
	s.Series = append(s.Series, Sample{Cycle: uint64(s.eng.Now()), Values: vals})
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() sim.Cycle { return s.interval }
