package manifest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"inpg"
)

// smallRun executes a tiny metered simulation for manifest fixtures.
func smallRun(t *testing.T) (inpg.Config, *inpg.System, *inpg.Results) {
	t.Helper()
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Lock = inpg.LockTAS
	cfg.CSPerThread = 2
	cfg.Metrics = true
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sys, res
}

func TestManifestRoundTrip(t *testing.T) {
	cfg, sys, res := smallRun(t)
	m := Build("fig2", 7, cfg, res, sys.MetricsSnapshot(), 0.25, nil)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Mechanism != "Original" || m.Lock != "TAS" {
		t.Fatalf("mechanism/lock = %q/%q", m.Mechanism, m.Lock)
	}
	if m.Summary.Runtime != res.Runtime || m.Summary.CSCompleted != res.CSCompleted {
		t.Fatalf("summary mismatch: %+v vs %+v", m.Summary, res)
	}
	if m.Metrics == nil || len(m.Metrics.Values) == 0 {
		t.Fatal("metered run produced no metrics in manifest")
	}

	dir := t.TempDir()
	path, err := m.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "manifest-fig2-0007.json" {
		t.Fatalf("file name = %s", filepath.Base(path))
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Canonical(), m.Canonical()) {
		t.Fatal("manifest changed across write/read round trip")
	}
	// The embedded config alone reproduces the run.
	sys2, err := inpg.New(got.Config)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sys2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Runtime != got.Summary.Runtime {
		t.Fatalf("replayed runtime %d != manifest %d", res2.Runtime, got.Summary.Runtime)
	}
}

func TestEstimateManifestRoundTrip(t *testing.T) {
	cfg := inpg.DefaultConfig()
	rec := EstimateRecord{
		Runtime:        123456,
		CSPerKCycle:    2.5,
		NetMeanLatency: 31.5,
		CSTime:         4200,
		Contended:      true,
		Reason:         "analytic pre-screen: outside the interest region",
		Bounds:         map[string]EstimateBound{"cs_throughput": {Mean: 0.035, Max: 0.19}},
	}
	m := BuildEstimate("pre", 11, cfg, rec)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Kind != EstimateKind || m.Status != StatusEstimated {
		t.Fatalf("kind/status = %q/%q", m.Kind, m.Status)
	}
	if m.ConfigDigest != cfg.Digest() {
		t.Fatal("estimate manifest must carry the config digest for promotion checks")
	}

	dir := t.TempDir()
	path, err := m.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate prefix keeps ScanDir-driven resume from ever reading
	// an estimated cell as a completed detailed run.
	if filepath.Base(path) != "estimate-pre-0011.json" {
		t.Fatalf("file name = %s", filepath.Base(path))
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Estimate, m.Estimate) {
		t.Fatalf("estimate record changed across round trip: %+v vs %+v", got.Estimate, m.Estimate)
	}
	prior, skipped, err := ScanDir(dir, "pre")
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 || len(skipped) != 0 {
		t.Fatalf("resume scan picked up an estimate manifest: prior=%v skipped=%v", prior, skipped)
	}
}

func TestEstimateManifestValidateRejects(t *testing.T) {
	good := BuildEstimate("pre", 0, inpg.DefaultConfig(), EstimateRecord{
		Runtime: 1000,
		Bounds:  map[string]EstimateBound{"runtime": {Mean: 0.04, Max: 0.23}},
	})
	cases := map[string]func(*Manifest){
		"status":      func(m *Manifest) { m.Status = StatusOK },
		"no-record":   func(m *Manifest) { m.Estimate = nil },
		"zero-rt":     func(m *Manifest) { m.Estimate.Runtime = 0 },
		"no-bounds":   func(m *Manifest) { m.Estimate.Bounds = nil },
		"run-kind":    func(m *Manifest) { m.Kind = Kind },
		"wrong-kind2": func(m *Manifest) { m.Kind = "bogus" },
	}
	for name, mutate := range cases {
		m := good
		rec := *good.Estimate
		m.Estimate = &rec
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: invalid estimate manifest accepted", name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
}

func TestManifestFailedRun(t *testing.T) {
	cfg := inpg.DefaultConfig()
	m := Build("res", 0, cfg, nil, nil, 0.1, os.ErrDeadlineExceeded)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Error == "" || m.Summary.Runtime != 0 {
		t.Fatalf("failed-run manifest = %+v", m)
	}
}

func TestManifestValidateRejects(t *testing.T) {
	cfg, sys, res := smallRun(t)
	good := Build("fig2", 0, cfg, res, sys.MetricsSnapshot(), 0, nil)

	cases := map[string]func(*Manifest){
		"schema":      func(m *Manifest) { m.SchemaVersion = 99 },
		"kind":        func(m *Manifest) { m.Kind = "bogus" },
		"sweep":       func(m *Manifest) { m.Sweep = "" },
		"index":       func(m *Manifest) { m.Index = -1 },
		"mechanism":   func(m *Manifest) { m.Mechanism = "warp-drive" },
		"lock":        func(m *Manifest) { m.Lock = "chewing-gum" },
		"wall":        func(m *Manifest) { m.WallSeconds = -1 },
		"zero-run":    func(m *Manifest) { m.Error = ""; m.Summary.Runtime = 0 },
		"metrics-ord": func(m *Manifest) { m.Metrics.Values[0], m.Metrics.Values[1] = m.Metrics.Values[1], m.Metrics.Values[0] },
	}
	for name, mutate := range cases {
		m := good
		// Deep-copy the snapshot so mutations don't leak across cases.
		cp := *good.Metrics
		cp.Values = append(cp.Values[:0:0], cp.Values...)
		m.Metrics = &cp
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: invalid manifest accepted", name)
		} else if !strings.HasPrefix(err.Error(), "manifest") {
			t.Errorf("%s: error %q not prefixed", name, err)
		}
	}
}

func TestScanDirQuarantinesCorruptManifests(t *testing.T) {
	cfg, sys, res := smallRun(t)
	dir := t.TempDir()
	good := Build("fig2", 3, cfg, res, sys.MetricsSnapshot(), 0.25, nil)
	if _, err := good.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	// A half-written manifest from a killed worker: truncated JSON under
	// a matching filename.
	corrupt := filepath.Join(dir, "manifest-fig2-0004.json")
	if err := os.WriteFile(corrupt, []byte(`{"schema_version":1,"sweep":"fi`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A valid manifest whose contents record a different sweep: someone
	// else's good data under a misleading name.
	other := Build("fig4", 5, cfg, res, nil, 0.25, nil)
	otherPath, err := other.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	misnamed := filepath.Join(dir, "manifest-fig2-0005.json")
	if err := os.Rename(otherPath, misnamed); err != nil {
		t.Fatal(err)
	}

	found, warnings, err := ScanDir(dir, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[3] == nil {
		t.Fatalf("found = %v, want only index 3", found)
	}
	if len(warnings) != 2 {
		t.Fatalf("warnings = %v, want 2", warnings)
	}
	var sawQuarantine, sawIgnore bool
	for _, w := range warnings {
		if strings.Contains(w, "quarantined corrupt manifest") && strings.Contains(w, corrupt) {
			sawQuarantine = true
		}
		if strings.Contains(w, "ignoring manifest") && strings.Contains(w, `sweep "fig4"`) {
			sawIgnore = true
		}
	}
	if !sawQuarantine || !sawIgnore {
		t.Fatalf("warnings missing quarantine/ignore notices: %v", warnings)
	}
	// The corrupt file was renamed out of the way; the misnamed one —
	// valid data for another sweep — was left in place.
	if _, err := os.Stat(corrupt); !os.IsNotExist(err) {
		t.Fatalf("corrupt manifest still present: %v", err)
	}
	if _, err := os.Stat(corrupt + ".bad"); err != nil {
		t.Fatalf(".bad quarantine file missing: %v", err)
	}
	if _, err := os.Stat(misnamed); err != nil {
		t.Fatalf("other-sweep manifest should stay put: %v", err)
	}

	// A rescan is clean: the quarantined file no longer triggers
	// warnings, so resume never wedges on the same corruption twice.
	found, warnings, err = ScanDir(dir, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 {
		t.Fatalf("rescan found = %v", found)
	}
	for _, w := range warnings {
		if strings.Contains(w, "corrupt") {
			t.Fatalf("rescan re-warned about quarantined file: %v", warnings)
		}
	}
}

// TestWriteFileAtomicNoTornWrites pins the crash-safety contract of
// every artifact write: an overwrite never mixes old and new bytes, a
// crash between temp-write and rename leaves only a dot-prefixed temp
// file, and such an orphan is invisible to ScanDir — never warned about,
// never quarantined as .bad.
func TestWriteFileAtomicNoTornWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest-fig2-0001.json")
	long := []byte(`{"a":"` + strings.Repeat("x", 4096) + `"}`)
	if err := WriteFileAtomic(path, long, 0o644); err != nil {
		t.Fatal(err)
	}
	// Overwrite with strictly shorter content: a torn (in-place,
	// truncate-then-write) implementation would leave a tail of the old
	// bytes on crash; atomic replace leaves exactly the new content.
	short := []byte(`{"b":1}`)
	if err := WriteFileAtomic(path, short, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(short) {
		t.Fatalf("overwrite left %d bytes, want %q", len(got), short)
	}
	// No temp residue after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir entries after write = %d, want 1 (no temp residue)", len(entries))
	}

	// A crash between write and rename: an orphaned temp file with the
	// same naming scheme WriteFileAtomic uses. ScanDir must not see it.
	orphan := filepath.Join(dir, ".manifest-fig2-0002.json.tmp-12345")
	if err := os.WriteFile(orphan, []byte(`{"schema_ver`), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, sys, res := smallRun(t)
	m := Build("fig2", 1, cfg, res, sys.MetricsSnapshot(), 0.25, nil)
	if _, err := m.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	found, warnings, err := ScanDir(dir, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[1] == nil {
		t.Fatalf("found = %v, want only index 1", found)
	}
	if len(warnings) != 0 {
		t.Fatalf("orphaned temp file triggered warnings: %v", warnings)
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatalf("orphaned temp file was touched: %v", err)
	}
	if _, err := os.Stat(orphan + ".bad"); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file was quarantined as .bad")
	}
}
