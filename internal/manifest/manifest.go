// Package manifest emits one machine-readable JSON artifact per
// experiment run: the configuration that produced it, the mechanism and
// lock under test, the headline results, the final telemetry counter
// snapshot, and the wall time it took — the record that makes a figure
// auditable after the fact (which run produced this bar, under which
// seed, with which counters). Manifests are written next to figure
// outputs by internal/experiments and cmd/inpgsim.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"inpg"
	"inpg/internal/metrics"
)

// SchemaVersion identifies the manifest layout; bump on breaking change.
const SchemaVersion = 1

// Kind is the manifest's fixed type tag.
const Kind = "inpg-run-manifest"

// EngineStats records what the engine did over the run.
type EngineStats struct {
	FinalCycle    uint64 `json:"final_cycle"`
	PendingEvents int    `json:"pending_events"`
}

// Summary carries the headline results (a subset of inpg.Results chosen
// for stability across schema versions).
type Summary struct {
	Runtime        uint64  `json:"runtime_cycles"`
	Threads        int     `json:"threads"`
	Parallel       uint64  `json:"parallel_cycles"`
	COH            uint64  `json:"coh_cycles"`
	Sleep          uint64  `json:"sleep_cycles"`
	CSE            uint64  `json:"cse_cycles"`
	CSCompleted    int     `json:"cs_completed"`
	LCOPercent     float64 `json:"lco_percent"`
	RTTMean        float64 `json:"rtt_mean_cycles"`
	RTTMax         uint64  `json:"rtt_max_cycles"`
	EarlyInvs      uint64  `json:"early_invalidations"`
	Stopped        uint64  `json:"stopped_requests"`
	FaultsInjected uint64  `json:"faults_injected"`
	LinkRetries    uint64  `json:"link_retries"`
}

// Manifest is one run's full record.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`

	// Sweep and Index locate the run inside its experiment: the sweep
	// name (e.g. "fig11", "single") and the run's submission index.
	Sweep string `json:"sweep"`
	Index int    `json:"index"`

	Mechanism string `json:"mechanism"`
	Lock      string `json:"lock"`
	Seed      int64  `json:"seed"`

	// Config is the full simulation configuration, embedded verbatim so a
	// manifest alone suffices to reproduce its run.
	Config inpg.Config `json:"config"`

	// WallSeconds is host time, the one deliberately nondeterministic
	// field; determinism comparisons must exclude it (see Canonical).
	WallSeconds float64 `json:"wall_seconds"`

	// Error is the run's failure, empty on success. Summary and Engine
	// are zero when the run failed before producing results.
	Error   string      `json:"error,omitempty"`
	Engine  EngineStats `json:"engine"`
	Summary Summary     `json:"summary"`

	// Metrics is the final counter snapshot (empty when the run was not
	// metered).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// Build assembles a manifest from one finished run. res and snap may be
// nil (failed or unmetered runs); runErr may be nil.
func Build(sweep string, index int, cfg inpg.Config, res *inpg.Results, snap *metrics.Snapshot, wallSeconds float64, runErr error) Manifest {
	m := Manifest{
		SchemaVersion: SchemaVersion,
		Kind:          Kind,
		Sweep:         sweep,
		Index:         index,
		Mechanism:     cfg.Mechanism.String(),
		Lock:          cfg.Lock.String(),
		Seed:          cfg.Seed,
		Config:        cfg,
		WallSeconds:   wallSeconds,
		Metrics:       snap,
	}
	if runErr != nil {
		m.Error = runErr.Error()
	}
	if res != nil {
		m.Summary = Summary{
			Runtime:        res.Runtime,
			Threads:        res.Threads,
			Parallel:       res.Parallel,
			COH:            res.COH,
			Sleep:          res.Sleep,
			CSE:            res.CSE,
			CSCompleted:    res.CSCompleted,
			LCOPercent:     res.LCOPercent,
			RTTMean:        res.RTTMean,
			RTTMax:         res.RTTMax,
			EarlyInvs:      res.EarlyInvs,
			Stopped:        res.Stopped,
			FaultsInjected: res.FaultsInjected,
			LinkRetries:    res.LinkRetries,
		}
		m.Engine = EngineStats{FinalCycle: res.Runtime}
	}
	return m
}

// Validate checks the manifest against the schema: the small Go checker
// CI and the tests run instead of an external JSON-schema tool.
func (m *Manifest) Validate() error {
	switch {
	case m.SchemaVersion != SchemaVersion:
		return fmt.Errorf("manifest: schema_version %d, want %d", m.SchemaVersion, SchemaVersion)
	case m.Kind != Kind:
		return fmt.Errorf("manifest: kind %q, want %q", m.Kind, Kind)
	case m.Sweep == "":
		return fmt.Errorf("manifest: empty sweep")
	case m.Index < 0:
		return fmt.Errorf("manifest: negative index %d", m.Index)
	case m.Mechanism == "":
		return fmt.Errorf("manifest: empty mechanism")
	case m.Lock == "":
		return fmt.Errorf("manifest: empty lock")
	case m.WallSeconds < 0:
		return fmt.Errorf("manifest: negative wall_seconds")
	}
	if _, err := inpg.ParseMechanism(m.Mechanism); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if _, err := inpg.ParseLockKind(m.Lock); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if m.Error == "" && m.Summary.Runtime == 0 {
		return fmt.Errorf("manifest: successful run with zero runtime")
	}
	if m.Metrics != nil {
		for i := 1; i < len(m.Metrics.Values); i++ {
			if m.Metrics.Values[i-1].Name >= m.Metrics.Values[i].Name {
				return fmt.Errorf("manifest: metrics not in sorted order at %q", m.Metrics.Values[i].Name)
			}
		}
	}
	return nil
}

// Canonical returns the manifest with its nondeterministic field zeroed,
// for byte-comparison across worker counts and scheduling modes.
func (m Manifest) Canonical() Manifest {
	m.WallSeconds = 0
	return m
}

// Filename returns the manifest's conventional file name within a sweep
// output directory.
func Filename(sweep string, index int) string {
	return fmt.Sprintf("manifest-%s-%04d.json", sweep, index)
}

// WriteFile writes the manifest as indented JSON into dir under its
// conventional name, creating dir if needed.
func (m *Manifest) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, Filename(m.Sweep, m.Index))
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a manifest from disk.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}
