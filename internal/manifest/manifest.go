// Package manifest emits one machine-readable JSON artifact per
// experiment run: the configuration that produced it, the mechanism and
// lock under test, the headline results, the final telemetry counter
// snapshot, and the wall time it took — the record that makes a figure
// auditable after the fact (which run produced this bar, under which
// seed, with which counters). Manifests are written next to figure
// outputs by internal/experiments and cmd/inpgsim.
package manifest

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inpg"
	"inpg/internal/metrics"
	"inpg/internal/runner"
)

// SchemaVersion identifies the manifest layout; bump on breaking change.
// v2 added failure records: status, cause class, attempt, config digest
// and the diagnostics summary. v3 added the network switching-activity
// summary field and the estimate manifest kind (analytic pre-screening).
// v4 added the lock-journey summary (per-stage latency attribution);
// Validate still accepts v3 manifests, which predate journeys.
const SchemaVersion = 4

// minSchemaVersion is the oldest layout Validate accepts: v3 manifests
// on disk stay resumable, they just carry no journey summary.
const minSchemaVersion = 3

// Kind is the detailed-run manifest's type tag.
const Kind = "inpg-run-manifest"

// EstimateKind tags a cell the pre-screener answered with the analytic
// fast model instead of a detailed simulation: the cell is covered — by
// an estimate with recorded error bounds, not by cycle-accurate results.
// Estimate manifests live under a distinct filename prefix
// (EstimateFilename) so ScanDir-driven resume never mistakes one for a
// completed detailed run.
const EstimateKind = "inpg-estimate-manifest"

// Run statuses recorded in a manifest.
const (
	// StatusOK marks a run that completed and produced results.
	StatusOK = "ok"
	// StatusFailed marks a run whose final attempt failed; Error, Cause
	// and (when available) Diag describe how.
	StatusFailed = "failed"
	// StatusEstimated marks an EstimateKind manifest: no simulation ran;
	// Estimate carries the model's answer and its error bounds.
	StatusEstimated = "estimated"
)

// EngineStats records what the engine did over the run.
type EngineStats struct {
	FinalCycle    uint64 `json:"final_cycle"`
	PendingEvents int    `json:"pending_events"`
}

// Summary carries the headline results (a subset of inpg.Results chosen
// for stability across schema versions).
type Summary struct {
	Runtime        uint64  `json:"runtime_cycles"`
	Threads        int     `json:"threads"`
	Parallel       uint64  `json:"parallel_cycles"`
	COH            uint64  `json:"coh_cycles"`
	Sleep          uint64  `json:"sleep_cycles"`
	CSE            uint64  `json:"cse_cycles"`
	CSCompleted    int     `json:"cs_completed"`
	LCOPercent     float64 `json:"lco_percent"`
	RTTMean        float64 `json:"rtt_mean_cycles"`
	RTTMax         uint64  `json:"rtt_max_cycles"`
	EarlyInvs      uint64  `json:"early_invalidations"`
	Stopped        uint64  `json:"stopped_requests"`
	FaultsInjected uint64  `json:"faults_injected"`
	LinkRetries    uint64  `json:"link_retries"`
	Sleeps         int     `json:"sleeps"`
	RTTSamples     uint64  `json:"rtt_samples"`
	NetMeanLatency float64 `json:"net_mean_latency_cycles"`
	LinkFailures   uint64  `json:"link_failures"`
	PortStallHits  uint64  `json:"port_stall_hits"`
	FlitsSwitched  uint64  `json:"flits_switched"`
}

// DiagSummary is the compact failure diagnosis embedded in a failed run's
// manifest: enough to triage a wedged cell from the artifact alone (the
// full Diagnostics dump stays on stderr).
type DiagSummary struct {
	Cycle      uint64 `json:"cycle"`
	Unfinished int    `json:"unfinished_threads"`
	Threads    int    `json:"threads"`
	InFlight   int    `json:"packets_in_flight"`
	DeadLinks  int    `json:"dead_links"`
}

// Manifest is one run's full record.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`

	// Sweep and Index locate the run inside its experiment: the sweep
	// name (e.g. "fig11", "single") and the run's submission index.
	Sweep string `json:"sweep"`
	Index int    `json:"index"`

	Mechanism string `json:"mechanism"`
	Lock      string `json:"lock"`
	Seed      int64  `json:"seed"`

	// Config is the full simulation configuration, embedded verbatim so a
	// manifest alone suffices to reproduce its run.
	Config inpg.Config `json:"config"`

	// ConfigDigest fingerprints Config (inpg.Config.Digest); resume
	// matches it against the current sweep's configurations to decide
	// which cells a prior run's manifests still cover.
	ConfigDigest string `json:"config_digest"`

	// WallSeconds is host time, the one deliberately nondeterministic
	// field; determinism comparisons must exclude it (see Canonical).
	WallSeconds float64 `json:"wall_seconds"`

	// Status is StatusOK or StatusFailed. Failed manifests carry the
	// error text, its cause class (runner.Cause), the 0-based attempt
	// that produced this record, and — when the failure yielded a
	// diagnosis — a compact DiagSummary. Summary and Engine are zero when
	// the run failed before producing results.
	Status  string       `json:"status"`
	Error   string       `json:"error,omitempty"`
	Cause   string       `json:"cause,omitempty"`
	Attempt int          `json:"attempt,omitempty"`
	Diag    *DiagSummary `json:"diag,omitempty"`
	Engine  EngineStats  `json:"engine"`
	Summary Summary      `json:"summary"`

	// Metrics is the final counter snapshot (empty when the run was not
	// metered).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`

	// Journey summarizes the run's sampled lock journeys (schema v4).
	// Present only when the run was journey-traced with metrics on; the
	// per-stage histogram summaries are lifted out of the snapshot's
	// journey.* instruments so a figure's latency breakdown is auditable
	// from the manifest alone.
	Journey *JourneySummary `json:"journey,omitempty"`

	// Estimate is present on EstimateKind manifests only: the analytic
	// model's answer for this cell and the model's recorded error bounds.
	Estimate *EstimateRecord `json:"estimate,omitempty"`
}

// JourneySummary aggregates a run's sampled lock journeys: how many
// completed, how many saw a big-router interception, and the end-to-end
// plus per-stage cycle histograms. For a well-formed record the stage
// sums add up to the end-to-end sum exactly (journey accounting is exact
// by construction); Validate enforces it within one cycle per journey of
// rounding slack.
type JourneySummary struct {
	Completed   uint64 `json:"completed"`
	Intercepted uint64 `json:"intercepted"`
	Dropped     uint64 `json:"dropped"`

	E2E    metrics.HistSummary            `json:"e2e_cycles"`
	Stages map[string]metrics.HistSummary `json:"stage_cycles"`
}

// JourneyFromSnapshot lifts a JourneySummary out of a metric snapshot's
// journey.* instruments; nil when the run was not journey-traced.
func JourneyFromSnapshot(snap *metrics.Snapshot) *JourneySummary {
	if snap == nil {
		return nil
	}
	js := &JourneySummary{Stages: make(map[string]metrics.HistSummary)}
	present := false
	for _, kv := range snap.Values {
		switch kv.Name {
		case "journey.completed":
			js.Completed, present = kv.Value, true
		case "journey.intercepted":
			js.Intercepted = kv.Value
		case "journey.dropped":
			js.Dropped = kv.Value
		}
	}
	for _, h := range snap.Histograms {
		switch {
		case h.Name == "journey.e2e_cycles":
			js.E2E, present = h, true
		case strings.HasPrefix(h.Name, "journey.stage."):
			stage := strings.TrimSuffix(strings.TrimPrefix(h.Name, "journey.stage."), "_cycles")
			js.Stages[stage] = h
		}
	}
	if !present {
		return nil
	}
	return js
}

// EstimateBound is one metric's recorded relative error level (mean and
// worst case over the analytic model's validation grid).
type EstimateBound struct {
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// EstimateRecord is the analytic fast model's answer for a pre-screened
// cell. Fields mirror the Summary quantities the figure drivers consume,
// as model expectations; Bounds says how far each may sit from a
// detailed simulation (keyed by the analytic package's metric names).
type EstimateRecord struct {
	Runtime         float64                  `json:"runtime_cycles"`
	CSPerKCycle     float64                  `json:"cs_per_kcycle"`
	NetMeanLatency  float64                  `json:"net_mean_latency_cycles"`
	LinkUtilization float64                  `json:"link_utilization"`
	CSTime          float64                  `json:"cs_time_cycles"`
	Contended       bool                     `json:"contended"`
	Reason          string                   `json:"reason,omitempty"`
	Bounds          map[string]EstimateBound `json:"error_bounds"`
}

// Build assembles a manifest from one finished run. res and snap may be
// nil (failed or unmetered runs); runErr may be nil. Failures are
// recorded with their cause class (runner.Classify), the attempt that
// produced them (when runErr is a *runner.RunError) and a compact
// diagnostics summary (when the failure carries one).
func Build(sweep string, index int, cfg inpg.Config, res *inpg.Results, snap *metrics.Snapshot, wallSeconds float64, runErr error) Manifest {
	m := Manifest{
		SchemaVersion: SchemaVersion,
		Kind:          Kind,
		Sweep:         sweep,
		Index:         index,
		Mechanism:     cfg.Mechanism.String(),
		Lock:          cfg.Lock.String(),
		Seed:          cfg.Seed,
		Config:        cfg,
		ConfigDigest:  cfg.Digest(),
		WallSeconds:   wallSeconds,
		Status:        StatusOK,
		Metrics:       snap,
		Journey:       JourneyFromSnapshot(snap),
	}
	if runErr != nil {
		m.Status = StatusFailed
		m.Error = runErr.Error()
		m.Cause = string(runner.Classify(runErr))
		if runErr := runner.AsRunError(runErr); runErr != nil {
			m.Attempt = runErr.Attempt
		}
		var simErr *inpg.SimulationError
		if errors.As(runErr, &simErr) && simErr.Diag != nil {
			m.Diag = &DiagSummary{
				Cycle:      uint64(simErr.Cycle),
				Unfinished: simErr.Unfinished,
				Threads:    simErr.Threads,
				InFlight:   simErr.Diag.Net.InFlight,
				DeadLinks:  len(simErr.Diag.Net.DeadLinks()),
			}
		}
	}
	if res != nil {
		m.Summary = Summary{
			Runtime:        res.Runtime,
			Threads:        res.Threads,
			Parallel:       res.Parallel,
			COH:            res.COH,
			Sleep:          res.Sleep,
			CSE:            res.CSE,
			CSCompleted:    res.CSCompleted,
			LCOPercent:     res.LCOPercent,
			RTTMean:        res.RTTMean,
			RTTMax:         res.RTTMax,
			EarlyInvs:      res.EarlyInvs,
			Stopped:        res.Stopped,
			FaultsInjected: res.FaultsInjected,
			LinkRetries:    res.LinkRetries,
			Sleeps:         res.Sleeps,
			RTTSamples:     res.RTTSamples,
			NetMeanLatency: res.NetMeanLatency,
			LinkFailures:   res.LinkFailures,
			PortStallHits:  res.PortStallHits,
			FlitsSwitched:  res.FlitsSwitched,
		}
		m.Engine = EngineStats{FinalCycle: res.Runtime}
	}
	return m
}

// BuildEstimate assembles an EstimateKind manifest for a cell the
// pre-screener covered with the analytic model instead of a detailed
// run. The caller supplies the model's answer; no simulation is implied.
func BuildEstimate(sweep string, index int, cfg inpg.Config, rec EstimateRecord) Manifest {
	return Manifest{
		SchemaVersion: SchemaVersion,
		Kind:          EstimateKind,
		Sweep:         sweep,
		Index:         index,
		Mechanism:     cfg.Mechanism.String(),
		Lock:          cfg.Lock.String(),
		Seed:          cfg.Seed,
		Config:        cfg,
		ConfigDigest:  cfg.Digest(),
		Status:        StatusEstimated,
		Estimate:      &rec,
	}
}

// ToResults reconstructs an inpg.Results from the manifest's summary, the
// inverse of Build for every field the figure drivers consume. PerThread
// and Energy are not carried by manifests and stay zero; resume callers
// aggregate only summary-level quantities. Returns nil for failed runs.
func (m *Manifest) ToResults() *inpg.Results {
	if m.Status != StatusOK {
		return nil
	}
	s := m.Summary
	return &inpg.Results{
		Runtime:        s.Runtime,
		Threads:        s.Threads,
		Parallel:       s.Parallel,
		COH:            s.COH,
		Sleep:          s.Sleep,
		CSE:            s.CSE,
		CSCompleted:    s.CSCompleted,
		LCOPercent:     s.LCOPercent,
		RTTMean:        s.RTTMean,
		RTTMax:         s.RTTMax,
		EarlyInvs:      s.EarlyInvs,
		Stopped:        s.Stopped,
		FaultsInjected: s.FaultsInjected,
		LinkRetries:    s.LinkRetries,
		Sleeps:         s.Sleeps,
		RTTSamples:     s.RTTSamples,
		NetMeanLatency: s.NetMeanLatency,
		LinkFailures:   s.LinkFailures,
		PortStallHits:  s.PortStallHits,
		FlitsSwitched:  s.FlitsSwitched,
	}
}

// Validate checks the manifest against the schema: the small Go checker
// CI and the tests run instead of an external JSON-schema tool.
func (m *Manifest) Validate() error {
	switch {
	case m.SchemaVersion < minSchemaVersion || m.SchemaVersion > SchemaVersion:
		return fmt.Errorf("manifest: schema_version %d, want %d..%d", m.SchemaVersion, minSchemaVersion, SchemaVersion)
	case m.SchemaVersion < 4 && m.Journey != nil:
		return fmt.Errorf("manifest: journey summary on schema_version %d (needs 4)", m.SchemaVersion)
	case m.Kind != Kind && m.Kind != EstimateKind:
		return fmt.Errorf("manifest: kind %q, want %q or %q", m.Kind, Kind, EstimateKind)
	case m.Sweep == "":
		return fmt.Errorf("manifest: empty sweep")
	case m.Index < 0:
		return fmt.Errorf("manifest: negative index %d", m.Index)
	case m.Mechanism == "":
		return fmt.Errorf("manifest: empty mechanism")
	case m.Lock == "":
		return fmt.Errorf("manifest: empty lock")
	case m.WallSeconds < 0:
		return fmt.Errorf("manifest: negative wall_seconds")
	}
	if _, err := inpg.ParseMechanism(m.Mechanism); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if _, err := inpg.ParseLockKind(m.Lock); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if m.Kind == EstimateKind {
		switch {
		case m.Status != StatusEstimated:
			return fmt.Errorf("manifest: estimate with status %q, want %q", m.Status, StatusEstimated)
		case m.Estimate == nil:
			return fmt.Errorf("manifest: estimate manifest without estimate record")
		case m.Estimate.Runtime <= 0:
			return fmt.Errorf("manifest: estimate with non-positive runtime")
		case len(m.Estimate.Bounds) == 0:
			return fmt.Errorf("manifest: estimate without error bounds")
		}
		return nil
	}
	switch m.Status {
	case StatusOK:
		if m.Error != "" {
			return fmt.Errorf("manifest: status ok with error %q", m.Error)
		}
		if m.Summary.Runtime == 0 {
			return fmt.Errorf("manifest: successful run with zero runtime")
		}
	case StatusFailed:
		if m.Error == "" {
			return fmt.Errorf("manifest: failed run without error text")
		}
	case StatusEstimated:
		return fmt.Errorf("manifest: status %q requires kind %q", m.Status, EstimateKind)
	default:
		return fmt.Errorf("manifest: status %q, want %q or %q", m.Status, StatusOK, StatusFailed)
	}
	if m.Metrics != nil {
		for i := 1; i < len(m.Metrics.Values); i++ {
			if m.Metrics.Values[i-1].Name >= m.Metrics.Values[i].Name {
				return fmt.Errorf("manifest: metrics not in sorted order at %q", m.Metrics.Values[i].Name)
			}
		}
	}
	if js := m.Journey; js != nil {
		if js.E2E.Count != js.Completed {
			return fmt.Errorf("manifest: journey e2e histogram has %d samples, %d journeys completed",
				js.E2E.Count, js.Completed)
		}
		var stageSum uint64
		for name, h := range js.Stages {
			if h.Count != js.Completed {
				return fmt.Errorf("manifest: journey stage %q has %d samples, %d journeys completed",
					name, h.Count, js.Completed)
			}
			stageSum += h.Sum
		}
		// Per-stage cycles must account for the end-to-end latency: exact
		// by construction, with one cycle per journey of rounding slack.
		if diff := absDiff(stageSum, js.E2E.Sum); diff > js.Completed {
			return fmt.Errorf("manifest: journey stage cycles %d do not sum to e2e %d (diff %d > %d journeys)",
				stageSum, js.E2E.Sum, diff, js.Completed)
		}
	}
	return nil
}

// absDiff returns |a-b| without underflow.
func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Canonical returns the manifest with its nondeterministic field zeroed,
// for byte-comparison across worker counts and scheduling modes.
func (m Manifest) Canonical() Manifest {
	m.WallSeconds = 0
	return m
}

// Filename returns the detailed-run manifest's conventional file name
// within a sweep output directory.
func Filename(sweep string, index int) string {
	return fmt.Sprintf("manifest-%s-%04d.json", sweep, index)
}

// EstimateFilename returns an estimate manifest's conventional file
// name. The distinct prefix keeps estimates out of ScanDir's resume
// scan, which matches the detailed "manifest-" prefix only — a resumed
// sweep re-runs estimated cells in full rather than trusting the model.
func EstimateFilename(sweep string, index int) string {
	return fmt.Sprintf("estimate-%s-%04d.json", sweep, index)
}

// WriteFile writes the manifest as indented JSON into dir under its
// conventional name, creating dir if needed.
func (m *Manifest) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := Filename(m.Sweep, m.Index)
	if m.Kind == EstimateKind {
		name = EstimateFilename(m.Sweep, m.Index)
	}
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	return path, WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// WriteFileAtomic writes data to path so that a crash — of the writer or
// the whole host — can never leave a torn file under the final name: the
// bytes land in a dot-prefixed temp file in the same directory, are
// fsynced, and only then renamed over path (a same-directory rename is
// atomic on POSIX). The dot prefix and non-.json extension keep an
// orphaned temp file — a crash between write and rename — invisible to
// ScanDir and inpgvalidate, so it can never be quarantined as .bad or
// mistaken for a manifest. The directory is fsynced best-effort so the
// rename itself is durable too.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ScanDir loads every valid manifest for the named sweep from dir, keyed
// by run index. Files that fail to read or validate are quarantined —
// renamed to <name>.bad so they never block a rescan — and reported in
// the returned warnings; a half-written manifest from a killed worker
// must not block resume. A valid manifest recorded for a different sweep
// is left in place (it is someone else's good data) but warned about.
// Either way the scan keeps going and the affected indexes are simply
// gaps to re-run. The only hard error is failing to read the directory.
func ScanDir(dir, sweep string) (map[int]*Manifest, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	found := make(map[int]*Manifest)
	var warnings []string
	prefix := fmt.Sprintf("manifest-%s-", sweep)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) <= len(prefix) ||
			name[:len(prefix)] != prefix || filepath.Ext(name) != ".json" {
			continue
		}
		path := filepath.Join(dir, name)
		m, err := ReadFile(path)
		switch {
		case err != nil:
			bad := path + ".bad"
			if renameErr := os.Rename(path, bad); renameErr != nil {
				warnings = append(warnings,
					fmt.Sprintf("corrupt manifest %s (quarantine to %s failed: %v): %v", path, bad, renameErr, err))
			} else {
				warnings = append(warnings,
					fmt.Sprintf("quarantined corrupt manifest %s -> %s: %v", path, bad, err))
			}
		case m.Sweep != sweep:
			warnings = append(warnings,
				fmt.Sprintf("ignoring manifest %s: records sweep %q, scanning %q", path, m.Sweep, sweep))
		default:
			found[m.Index] = m
		}
	}
	return found, warnings, nil
}

// ReadFile loads and validates a manifest from disk.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}
