// Package trace records message-level protocol activity into a bounded
// ring buffer, cheap enough to leave compiled in: every hook is a nil
// check when tracing is off. It exists because understanding a lock
// handoff — who swapped, where the request was stopped, which router
// generated the early invalidation, when the home collected which ack —
// requires seeing the actual message interleaving, not aggregate counters.
//
// cmd/inpgtrace renders a competition's trace as a timeline; tests use the
// buffer to assert protocol-level orderings that counters cannot express.
package trace

import (
	"fmt"
	"strings"

	"inpg/internal/noc"
	"inpg/internal/sim"
)

// Kind classifies a traced event.
type Kind int

// Event kinds.
const (
	// PktInject: a packet entered an NI injection queue.
	PktInject Kind = iota
	// PktDeliver: a packet was delivered to a node's sink.
	PktDeliver
	// PktStop: a big router stopped a lock request (converted to FwdGetX).
	PktStop
	// EarlyInv: a big router generated an early invalidation.
	EarlyInv
	// AckRelay: a big router relayed an InvAck to the home.
	AckRelay
	// LockAcquire / LockRelease: thread-level lock transitions.
	LockAcquire
	LockRelease
	// LinkRetry: a flit transmission faulted on a link and was scheduled
	// for retransmission (fault injection, PR 3's link layer).
	LinkRetry
	// LinkDead: a link exhausted its bounded retries and was declared
	// dead; the wormhole channel through it is wedged for good.
	LinkDead
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case PktInject:
		return "inject"
	case PktDeliver:
		return "deliver"
	case PktStop:
		return "stop"
	case EarlyInv:
		return "early-inv"
	case AckRelay:
		return "ack-relay"
	case LockAcquire:
		return "acquire"
	case LockRelease:
		return "release"
	case LinkRetry:
		return "link-retry"
	case LinkDead:
		return "link-dead"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one traced occurrence.
type Event struct {
	Cycle  sim.Cycle
	Kind   Kind
	Node   noc.NodeID // where it happened
	Src    noc.NodeID // message source (packets)
	Dst    noc.NodeID // message destination (packets)
	Addr   uint64
	Detail string // message type or free-form note
}

func (e Event) String() string {
	return fmt.Sprintf("%8d  %-9s @%-3d %3d->%-3d addr=%#06x  %s",
		e.Cycle, e.Kind, e.Node, e.Src, e.Dst, e.Addr, e.Detail)
}

// Buffer is a bounded ring of events. The zero value is unusable; use New.
type Buffer struct {
	ring  []Event
	next  int
	count int
	// Total events offered, including those that overwrote older ones.
	Total uint64
	// AddrFilter, when nonzero, records only events for that address
	// (block-aligned comparison is the caller's concern).
	AddrFilter uint64
}

// New builds a buffer holding the last capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Add records an event, evicting the oldest when full.
func (b *Buffer) Add(e Event) {
	if b.AddrFilter != 0 && e.Addr != b.AddrFilter {
		return
	}
	b.Total++
	b.ring[b.next] = e
	b.next = (b.next + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	}
}

// Len reports buffered events.
func (b *Buffer) Len() int { return b.count }

// Events returns the buffered events oldest-first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, b.count)
	start := b.next - b.count
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.count; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Filter returns buffered events matching pred, oldest-first.
func (b *Buffer) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Window returns events with lo <= Cycle < hi.
func (b *Buffer) Window(lo, hi sim.Cycle) []Event {
	return b.Filter(func(e Event) bool { return e.Cycle >= lo && e.Cycle < hi })
}

// Render prints events one per line.
func Render(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountByKind tallies events per kind.
func CountByKind(events []Event) map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}
