package trace

import (
	"strings"
	"testing"

	"inpg/internal/sim"
)

func sim_(c int) sim.Cycle { return sim.Cycle(c) }

func TestRingKeepsLastN(t *testing.T) {
	b := New(3)
	for i := uint64(1); i <= 5; i++ {
		b.Add(Event{Cycle: 0, Kind: PktInject, Addr: i})
	}
	if b.Total != 5 || b.Len() != 3 {
		t.Fatalf("total=%d len=%d, want 5/3", b.Total, b.Len())
	}
	got := b.Events()
	if got[0].Addr != 3 || got[2].Addr != 5 {
		t.Fatalf("ring contents wrong: %v", got)
	}
}

func TestOldestFirstOrder(t *testing.T) {
	b := New(8)
	for i := uint64(0); i < 5; i++ {
		b.Add(Event{Addr: i})
	}
	for i, e := range b.Events() {
		if e.Addr != uint64(i) {
			t.Fatalf("event %d has addr %d", i, e.Addr)
		}
	}
}

func TestAddrFilter(t *testing.T) {
	b := New(8)
	b.AddrFilter = 0x100
	b.Add(Event{Addr: 0x100})
	b.Add(Event{Addr: 0x200})
	b.Add(Event{Addr: 0x100})
	if b.Len() != 2 {
		t.Fatalf("filter kept %d events, want 2", b.Len())
	}
}

func TestFilterAndWindow(t *testing.T) {
	b := New(16)
	for i := 0; i < 10; i++ {
		k := PktInject
		if i%2 == 0 {
			k = PktDeliver
		}
		b.Add(Event{Cycle: sim_(i * 10), Kind: k})
	}
	delivers := b.Filter(func(e Event) bool { return e.Kind == PktDeliver })
	if len(delivers) != 5 {
		t.Fatalf("filtered %d, want 5", len(delivers))
	}
	w := b.Window(sim_(20), sim_(50))
	if len(w) != 3 {
		t.Fatalf("window has %d events, want 3 (cycles 20,30,40)", len(w))
	}
}

func TestRenderAndCounts(t *testing.T) {
	b := New(4)
	b.Add(Event{Kind: PktStop, Detail: "GetX->FwdGetX"})
	b.Add(Event{Kind: EarlyInv})
	out := Render(b.Events())
	if !strings.Contains(out, "stop") || !strings.Contains(out, "GetX->FwdGetX") {
		t.Fatalf("render missing content:\n%s", out)
	}
	counts := CountByKind(b.Events())
	if counts[PktStop] != 1 || counts[EarlyInv] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		PktInject: "inject", PktDeliver: "deliver", PktStop: "stop",
		EarlyInv: "early-inv", AckRelay: "ack-relay",
		LockAcquire: "acquire", LockRelease: "release",
	} {
		if k.String() != want {
			t.Fatalf("%d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	b := New(0)
	b.Add(Event{})
	if b.Len() != 1 {
		t.Fatal("zero-capacity buffer must clamp to 1")
	}
}
