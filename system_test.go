package inpg

import (
	"testing"
)

// contended returns a config with heavy lock contention: short parallel
// phases, every core competing, TAS for maximal GetX storms.
func contended() Config {
	cfg := DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 4
	cfg.Lock = LockTAS
	cfg.CSPerThread = 4
	cfg.CSCycles = 60
	cfg.CSJitter = 20
	cfg.ParallelCycles = 100
	cfg.ParallelJitter = 50
	cfg.MaxCycles = 20_000_000
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Results {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Fabric().CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOriginalRunCompletes(t *testing.T) {
	cfg := contended()
	res := mustRun(t, cfg)
	if res.CSCompleted != 16*4 {
		t.Fatalf("CS completed = %d, want 64", res.CSCompleted)
	}
	if res.COHTotal() == 0 || res.CSE == 0 || res.Parallel == 0 {
		t.Fatalf("breakdown incomplete: %+v", res)
	}
	if res.LCOPercent <= 0 || res.LCOPercent >= 100 {
		t.Fatalf("LCO%% = %f out of range", res.LCOPercent)
	}
}

func TestINPGGeneratesEarlyInvalidations(t *testing.T) {
	cfg := contended()
	cfg.Mechanism = INPG
	res := mustRun(t, cfg)
	if res.CSCompleted != 64 {
		t.Fatalf("CS completed = %d, want 64", res.CSCompleted)
	}
	if res.Stopped == 0 || res.EarlyInvs == 0 {
		t.Fatalf("iNPG inactive: stopped=%d earlyInvs=%d", res.Stopped, res.EarlyInvs)
	}
}

// paperScale switches the contended config to the paper's 8×8 mesh, where
// iNPG's distance savings are substantial (Figure 15 shows marginal gains
// at small dimensions).
func paperScale(cfg Config) Config {
	cfg.MeshWidth, cfg.MeshHeight = 8, 8
	cfg.CSPerThread = 3
	return cfg
}

func TestINPGReducesRTT(t *testing.T) {
	cfg := paperScale(contended())
	orig := mustRun(t, cfg)
	cfg.Mechanism = INPG
	inpg := mustRun(t, cfg)
	if orig.RTTSamples == 0 || inpg.RTTSamples == 0 {
		t.Fatalf("no RTT samples: orig=%d inpg=%d", orig.RTTSamples, inpg.RTTSamples)
	}
	if inpg.RTTMean >= orig.RTTMean {
		t.Fatalf("iNPG mean RTT %.1f not below Original %.1f", inpg.RTTMean, orig.RTTMean)
	}
}

// TestINPGShortensInvAckPath checks the mechanism's first-order effect
// (the paper's Figure 10): under heavy TAS contention on the 8×8 mesh the
// mean invalidation–acknowledgement round trip must drop substantially,
// averaged over seeds. Runtime-level gains are regime-dependent (see
// EXPERIMENTS.md) and are asserted more loosely elsewhere.
func TestINPGShortensInvAckPath(t *testing.T) {
	var orig, with float64
	for _, seed := range []int64{1, 7, 23} {
		cfg := paperScale(contended())
		cfg.Seed = seed
		orig += mustRun(t, cfg).RTTMean
		cfg.Mechanism = INPG
		with += mustRun(t, cfg).RTTMean
	}
	if with >= 0.9*orig {
		t.Fatalf("iNPG mean RTT %.1f not well below Original %.1f", with/3, orig/3)
	}
}

func TestAllMechanismsAllLocksComplete(t *testing.T) {
	for _, mech := range Mechanisms {
		for _, lk := range LockKinds {
			mech, lk := mech, lk
			t.Run(mech.String()+"/"+lk.String(), func(t *testing.T) {
				cfg := contended()
				cfg.Mechanism = mech
				cfg.Lock = lk
				cfg.CSPerThread = 3
				cfg.QSLRetries = 24
				cfg.CtxSwitchCycles = 150
				cfg.WakeupCycles = 80
				res := mustRun(t, cfg)
				if res.CSCompleted != 48 {
					t.Fatalf("CS completed = %d, want 48", res.CSCompleted)
				}
			})
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := contended()
	cfg.Mechanism = INPGOCOR
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Runtime != b.Runtime || a.CSCompleted != b.CSCompleted ||
		a.COH != b.COH || a.RTTMean != b.RTTMean || a.EarlyInvs != b.EarlyInvs {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := contended()
	a := mustRun(t, cfg)
	cfg.Seed = 999
	b := mustRun(t, cfg)
	if a.Runtime == b.Runtime && a.COH == b.COH {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestTimelineRecording(t *testing.T) {
	cfg := contended()
	cfg.RecordTimeline = true
	cfg.TimelineThreads = 8
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	tl := sys.Timeline()
	if tl == nil || len(tl.Events) == 0 {
		t.Fatal("timeline not recorded")
	}
	p, c, e, cs := tl.WindowBreakdown(0, sys.Engine().Now(), 8)
	if p == 0 || c == 0 || e == 0 || cs == 0 {
		t.Fatalf("window breakdown empty: %d %d %d %d", p, c, e, cs)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MeshWidth = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero-width mesh accepted")
	}
	bad = DefaultConfig()
	bad.Threads = 1000
	if _, err := New(bad); err == nil {
		t.Fatal("too many threads accepted")
	}
	bad = DefaultConfig()
	bad.CSPerThread = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero CS accepted")
	}
	bad = DefaultConfig()
	bad.LockHomeNode = 4096
	if _, err := New(bad); err == nil {
		t.Fatal("out-of-mesh lock home accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, m := range Mechanisms {
		got, err := ParseMechanism(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMechanism(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, k := range LockKinds {
		got, err := ParseLockKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseLockKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseMechanism("x"); err == nil {
		t.Fatal("bad mechanism accepted")
	}
}

func TestTraceCapturesLockProtocol(t *testing.T) {
	cfg := contended()
	cfg.Mechanism = INPG
	cfg.TraceCapacity = 1 << 14
	// Trace the primary lock block: home = mesh center (2,2) on 4×4 = 10.
	cfg.TraceAddr = 10 * 128
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	buf := sys.Trace()
	if buf == nil || buf.Len() == 0 {
		t.Fatal("trace empty")
	}
	counts := map[string]int{}
	for _, e := range buf.Events() {
		counts[e.Kind.String()]++
	}
	for _, want := range []string{"inject", "deliver", "acquire", "release", "stop", "early-inv", "ack-relay"} {
		if counts[want] == 0 {
			t.Fatalf("no %q events traced (have %v)", want, counts)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := contended()
	orig := mustRun(t, cfg)
	if orig.Energy.TotalPJ <= 0 || orig.Energy.AvgRouterPowerMW <= 0 {
		t.Fatalf("no energy accounted: %+v", orig.Energy)
	}
	cfg.Mechanism = INPG
	with := mustRun(t, cfg)
	if with.Energy.GenerationPJ <= 0 {
		t.Fatal("iNPG run must account packet-generation energy")
	}
	if orig.Energy.GenerationPJ != 0 {
		t.Fatal("Original run must not account generation energy")
	}
}

func TestCLHExtensionFullSystem(t *testing.T) {
	cfg := contended()
	cfg.Lock = LockCLH
	res := mustRun(t, cfg)
	if res.CSCompleted != 16*4 {
		t.Fatalf("CLH completed %d CS, want 64", res.CSCompleted)
	}
}

func TestMultiLockWorkload(t *testing.T) {
	cfg := contended()
	cfg.LockCount = 4
	cfg.Mechanism = INPG
	res := mustRun(t, cfg)
	if res.CSCompleted != 64 {
		t.Fatalf("CS completed = %d, want 64", res.CSCompleted)
	}
	// With several concurrent hot locks, multiple barriers coexist.
	if res.Stopped == 0 {
		t.Fatal("iNPG idle under multi-lock contention")
	}
}

func TestBarrierSynchronization(t *testing.T) {
	cfg := contended()
	cfg.BarrierEvery = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CSCompleted != 64 {
		t.Fatalf("CS completed = %d, want 64", res.CSCompleted)
	}
	for _, th := range sys.Threads() {
		if th.BarrierJoins != 2 { // 4 CS / every 2
			t.Fatalf("thread %d joined %d barriers, want 2", th.ID, th.BarrierJoins)
		}
	}
}
