package inpg

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"inpg/internal/coherence"
	"inpg/internal/noc"
	"inpg/internal/sim"
)

// DefaultWatchdogWindow is the liveness watchdog window armed when
// Config.WatchdogWindow is zero: two million cycles without any progress
// event. Legitimate quiet periods (QSL context switches, long parallel
// phases) are three to four orders of magnitude shorter, while the default
// MaxCycles deadlock bound is 25× longer — so a wedged run is diagnosed
// early without ever tripping on a healthy one.
const DefaultWatchdogWindow = 2_000_000

// AbortCheckInterval is the cycle cadence of cooperative-cancellation
// checks (WallTimeBudget, AbortOn): coarse enough that a run pays one
// predictable comparison per cycle, fine enough that even millisecond
// deadlines trip within a few thousand simulated cycles.
const AbortCheckInterval = 4096

// ErrWallTimeBudget is the abort cause reported when a run exceeds its
// Config.WallTimeBudget; it surfaces wrapped in a timeout-reason
// *SimulationError.
var ErrWallTimeBudget = errors.New("inpg: wall-time budget exhausted")

// AbortOn makes the next Run watch ctx at coarse cycle granularity
// (AbortCheckInterval) and fail with a *SimulationError — reason "timeout"
// on a deadline, "canceled" on cancellation, Diagnostics attached — once
// ctx is done. This is the runner's cooperative-cancellation hook for
// overrunning runs; the check never touches simulation state, so runs that
// finish before ctx fires are byte-identical to unwatched ones.
func (s *System) AbortOn(ctx context.Context) { s.abortCtx = ctx }

// armAbort installs the engine abort check when either cancellation source
// (context or wall-time budget) is configured. Called at the top of Run so
// the wall-time clock starts with the run itself.
func (s *System) armAbort() {
	ctx := s.abortCtx
	budget := s.cfg.WallTimeBudget
	if ctx == nil && budget <= 0 {
		return
	}
	start := time.Now()
	s.eng.SetAbortCheck(AbortCheckInterval, func() error {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if budget > 0 && time.Since(start) > budget {
			return ErrWallTimeBudget
		}
		return nil
	})
}

// ThreadDiag is one unfinished thread's state at the moment of failure.
type ThreadDiag struct {
	ID      int
	Phase   string    // parallel, coh, sleep, cse
	InPhase sim.Cycle // cycles spent in the current phase
	CS      int       // critical sections completed so far
}

func (d ThreadDiag) String() string {
	return fmt.Sprintf("thread %d: phase %s for %d cycles, %d CS done", d.ID, d.Phase, d.InPhase, d.CS)
}

// Diagnostics is a structured snapshot of a stuck simulation, captured when
// Run fails (liveness watchdog, cycle budget or protocol violation). It
// names what is wedged: dead or backed-up links, in-progress directory
// transactions, outstanding L1 misses and the threads blocked on them.
type Diagnostics struct {
	Cycle   sim.Cycle
	Net     noc.NetDiag
	Dirs    []coherence.DirLineDiag
	MSHRs   []coherence.MSHRDiag
	Threads []ThreadDiag // unfinished threads only
}

// String renders a human-readable dump, most-diagnostic information first.
func (d *Diagnostics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnostics at cycle %d: %d packets in flight\n", d.Cycle, d.Net.InFlight)
	if dead := d.Net.DeadLinks(); len(dead) > 0 {
		fmt.Fprintf(&b, "dead links (%d):\n", len(dead))
		for _, vc := range dead {
			fmt.Fprintf(&b, "  %s\n", vc)
		}
	}
	if len(d.Net.VCs) > 0 {
		fmt.Fprintf(&b, "occupied router VCs (%d):\n", len(d.Net.VCs))
		for _, vc := range d.Net.VCs {
			fmt.Fprintf(&b, "  %s\n", vc)
		}
	}
	for _, ni := range d.Net.NIs {
		fmt.Fprintf(&b, "  %s\n", ni)
	}
	if len(d.Dirs) > 0 {
		fmt.Fprintf(&b, "directory lines in progress (%d):\n", len(d.Dirs))
		for _, ln := range d.Dirs {
			fmt.Fprintf(&b, "  %s\n", ln)
		}
	}
	if len(d.MSHRs) > 0 {
		fmt.Fprintf(&b, "outstanding L1 transactions (%d):\n", len(d.MSHRs))
		for _, m := range d.MSHRs {
			fmt.Fprintf(&b, "  %s\n", m)
		}
	}
	if len(d.Threads) > 0 {
		fmt.Fprintf(&b, "unfinished threads (%d):\n", len(d.Threads))
		for _, t := range d.Threads {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}

// SimulationError is the typed failure System.Run returns: why the run
// failed, when, and a full Diagnostics snapshot taken while the stuck state
// was still inspectable. Unwrap exposes the underlying typed cause
// (*sim.StallError, *sim.BudgetError, *sim.AbortError or
// *coherence.ProtocolError).
type SimulationError struct {
	// Reason is "watchdog", "cycle-budget", "protocol", "timeout",
	// "canceled" or "error".
	Reason     string
	Cycle      sim.Cycle
	Unfinished int // threads that had not completed their program
	Threads    int
	Err        error
	Diag       *Diagnostics
}

// Error implements error, keeping the headline one line; the full dump is
// available via Diag.
func (e *SimulationError) Error() string {
	return fmt.Sprintf("inpg: %s failure at cycle %d (%d/%d threads unfinished): %v",
		e.Reason, e.Cycle, e.Unfinished, e.Threads, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *SimulationError) Unwrap() error { return e.Err }

// Diagnostics captures the current simulation state. It is cheap relative
// to a run and safe to call at any cycle, but is designed for the moment a
// run fails.
func (s *System) Diagnostics() *Diagnostics {
	now := s.eng.Now()
	d := &Diagnostics{Cycle: now, Net: s.fab.Net.Diagnostics(now)}
	d.Dirs, d.MSHRs = s.fab.Diagnostics(now)
	for _, th := range s.threads {
		if th.Done() {
			continue
		}
		d.Threads = append(d.Threads, ThreadDiag{
			ID:      th.ID,
			Phase:   th.Phase().String(),
			InPhase: now - th.PhaseStart(),
			CS:      th.CSCompleted,
		})
	}
	return d
}

// wrapError converts an engine failure into a *SimulationError with the
// diagnosis attached.
func (s *System) wrapError(err error) error {
	reason := "error"
	var stall *sim.StallError
	var budget *sim.BudgetError
	var proto *coherence.ProtocolError
	var abort *sim.AbortError
	switch {
	case errors.As(err, &stall):
		reason = "watchdog"
	case errors.As(err, &budget):
		reason = "cycle-budget"
	case errors.As(err, &proto):
		reason = "protocol"
	case errors.As(err, &abort):
		// An abort is a deadline unless the controller explicitly canceled.
		reason = "timeout"
		if errors.Is(abort.Err, context.Canceled) {
			reason = "canceled"
		}
	}
	unfinished := 0
	for _, th := range s.threads {
		if !th.Done() {
			unfinished++
		}
	}
	return &SimulationError{
		Reason:     reason,
		Cycle:      s.eng.Now(),
		Unfinished: unfinished,
		Threads:    len(s.threads),
		Err:        err,
		Diag:       s.Diagnostics(),
	}
}
