// Timeline renders a Figure 9-style execution profile: per-thread phase
// traces (parallel / competition / critical section) for the first threads
// of a contended run, as an ASCII strip chart.
package main

import (
	"flag"
	"fmt"
	"log"

	"inpg"
	"inpg/internal/sim"
)

func main() {
	var (
		mechName = flag.String("mech", "iNPG", "mechanism")
		threads  = flag.Int("threads", 8, "threads to draw")
		window   = flag.Int("window", 20000, "cycles to draw")
		width    = flag.Int("width", 100, "chart width in characters")
	)
	flag.Parse()

	mech, err := inpg.ParseMechanism(*mechName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := inpg.DefaultConfig()
	cfg.Mechanism = mech
	cfg.Lock = inpg.LockQSL
	cfg.CSPerThread = 6
	cfg.CSCycles = 150
	cfg.CSJitter = 50
	cfg.ParallelCycles = 2000
	cfg.ParallelJitter = 600
	cfg.RecordTimeline = true
	cfg.TimelineThreads = *threads

	sys, err := inpg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	tl := sys.Timeline()
	start := sim.Cycle(1000)
	end := start + sim.Cycle(*window)
	perCol := (end - start) / sim.Cycle(*width)
	if perCol == 0 {
		perCol = 1
	}

	fmt.Printf("%s: threads 0-%d, cycles %d-%d ('.' parallel, 'c' competition, 'z' sleep, '#' critical section)\n\n",
		mech, *threads-1, start, end)
	fmt.Print(tl.StripChart(start, end, *threads, *width))
	p, c, e, cs := tl.WindowBreakdown(start, end, *threads)
	tot := p + c + e
	if tot > 0 {
		fmt.Printf("\nwindow: parallel %.1f%%  COH %.1f%%  CSE %.1f%%  (%d critical sections completed)\n",
			100*float64(p)/float64(tot), 100*float64(c)/float64(tot), 100*float64(e)/float64(tot), cs)
	}
}
