// Quickstart: build the paper's 64-core platform, run the same workload
// under the baseline and under iNPG, and compare the measurements that
// matter — competition overhead and invalidation round trips.
package main

import (
	"fmt"
	"log"

	"inpg"
)

func main() {
	base := inpg.DefaultConfig()
	base.Lock = inpg.LockTAS // the most contention-sensitive primitive
	base.CSPerThread = 6
	base.CSCycles = 120
	base.CSJitter = 40
	base.ParallelCycles = 3000
	base.ParallelJitter = 1000

	fmt.Println("iNPG quickstart: 8x8 mesh, 64 threads, TAS lock")
	fmt.Println()

	var originalRTT float64
	for _, mech := range []inpg.Mechanism{inpg.Original, inpg.INPG} {
		cfg := base
		cfg.Mechanism = mech
		sys, err := inpg.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s]\n", mech)
		fmt.Printf("  ROI runtime        %8d cycles\n", res.Runtime)
		fmt.Printf("  competition (COH)  %8d thread-cycles\n", res.COHTotal())
		fmt.Printf("  CS executed        %8d\n", res.CSCompleted)
		fmt.Printf("  Inv-Ack RTT        mean %.1f cycles, max %d\n", res.RTTMean, res.RTTMax)
		if mech == inpg.Original {
			originalRTT = res.RTTMean
		} else {
			fmt.Printf("  early invalidations %7d (stopped %d lock requests in-network)\n",
				res.EarlyInvs, res.Stopped)
			if originalRTT > 0 {
				fmt.Printf("  RTT reduction      %8.1f%%\n", 100*(1-res.RTTMean/originalRTT))
			}
		}
		fmt.Println()
	}
}
