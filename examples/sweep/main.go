// Sweep explores iNPG's sensitivity the way Figures 14 and 15 do: vary the
// number of deployed big routers and the mesh dimension, and watch the
// invalidation round trips and competition overhead respond.
package main

import (
	"flag"
	"fmt"
	"log"

	"inpg"
)

func run(cfg inpg.Config) *inpg.Results {
	sys, err := inpg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	var csCycles = flag.Int("cscyc", 120, "mean CS length (cycles)")
	flag.Parse()

	fmt.Println("== big-router deployment sweep (8x8, TAS) ==")
	fmt.Printf("%8s %12s %10s %12s\n", "routers", "runtime", "rtt mean", "early invs")
	for _, n := range []int{0, 4, 16, 32, 64} {
		cfg := inpg.DefaultConfig()
		cfg.Lock = inpg.LockTAS
		cfg.Mechanism = inpg.INPG
		if n == 0 {
			cfg.Mechanism = inpg.Original
		}
		cfg.BigRouters = n
		cfg.CSPerThread = 4
		cfg.CSCycles = *csCycles
		cfg.CSJitter = *csCycles / 3
		cfg.ParallelCycles = 3000
		cfg.ParallelJitter = 800
		res := run(cfg)
		fmt.Printf("%8d %12d %10.1f %12d\n", n, res.Runtime, res.RTTMean, res.EarlyInvs)
	}

	fmt.Println()
	fmt.Println("== mesh dimension sweep (half the routers big, TAS) ==")
	fmt.Printf("%8s %12s %12s %10s %12s\n", "mesh", "orig rtt", "inpg rtt", "saved", "early invs")
	for _, d := range []int{4, 8, 16} {
		mk := func(mech inpg.Mechanism) *inpg.Results {
			cfg := inpg.DefaultConfig()
			cfg.MeshWidth, cfg.MeshHeight = d, d
			cfg.Lock = inpg.LockTAS
			cfg.Mechanism = mech
			cfg.CSPerThread = 3
			cfg.CSCycles = *csCycles
			cfg.CSJitter = *csCycles / 3
			cfg.ParallelCycles = 3000
			cfg.ParallelJitter = 800
			return run(cfg)
		}
		o := mk(inpg.Original)
		n := mk(inpg.INPG)
		saved := 0.0
		if o.RTTMean > 0 {
			saved = 100 * (1 - n.RTTMean/o.RTTMean)
		}
		fmt.Printf("%5dx%-2d %12.1f %12.1f %9.1f%% %12d\n", d, d, o.RTTMean, n.RTTMean, saved, n.EarlyInvs)
	}
}
