// Lockcompare reproduces the paper's Section 2 motivation on a workload of
// your choosing: run the same program under all five locking primitives
// and compare lock coherence overhead, competition overhead and runtime —
// then show what iNPG does to each primitive (Figure 13's question).
package main

import (
	"flag"
	"fmt"
	"log"

	"inpg"
)

func main() {
	var (
		cs       = flag.Int("cs", 5, "critical sections per thread")
		csCycles = flag.Int("cscyc", 120, "mean CS length (cycles)")
		parallel = flag.Int("parallel", 4000, "mean parallel span (cycles)")
		mesh     = flag.Int("mesh", 8, "mesh dimension")
	)
	flag.Parse()

	fmt.Printf("%-5s %12s %12s %8s %10s | %12s %10s\n",
		"lock", "runtime", "COH", "LCO%", "rtt", "iNPG runtime", "iNPG rtt")
	for _, lk := range inpg.LockKinds {
		row := make(map[inpg.Mechanism]*inpg.Results)
		for _, mech := range []inpg.Mechanism{inpg.Original, inpg.INPG} {
			cfg := inpg.DefaultConfig()
			cfg.MeshWidth, cfg.MeshHeight = *mesh, *mesh
			cfg.Lock = lk
			cfg.Mechanism = mech
			cfg.CSPerThread = *cs
			cfg.CSCycles = *csCycles
			cfg.CSJitter = *csCycles / 3
			cfg.ParallelCycles = *parallel
			cfg.ParallelJitter = *parallel / 4
			sys, err := inpg.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				log.Fatalf("%s/%s: %v", lk, mech, err)
			}
			row[mech] = res
		}
		o, n := row[inpg.Original], row[inpg.INPG]
		fmt.Printf("%-5s %12d %12d %7.1f%% %10.1f | %12d %10.1f\n",
			lk, o.Runtime, o.COHTotal(), o.LCOPercent, o.RTTMean, n.Runtime, n.RTTMean)
	}
}
