// Command inpgsim runs a single iNPG simulation and reports its results:
// phase breakdown, lock-coherence overhead, invalidation round trips and
// critical-section throughput.
//
// Examples:
//
//	inpgsim -mech iNPG -lock TAS -cs 8 -parallel 2000
//	inpgsim -mesh 4 -mech Original -lock MCS -v
//	inpgsim -program kdtree -mech iNPG+OCOR
package main

import (
	"flag"
	"fmt"
	"os"

	"inpg"
	"inpg/internal/experiments"
	"inpg/internal/report"
	"inpg/internal/workload"
)

func main() {
	var (
		mechName = flag.String("mech", "Original", "mechanism: Original, OCOR, iNPG, iNPG+OCOR")
		lockName = flag.String("lock", "QSL", "lock primitive: TAS, TTL, ABQL, MCS, QSL")
		program  = flag.String("program", "", "workload profile name (overrides -cs/-cscyc/-parallel)")
		mesh     = flag.Int("mesh", 8, "mesh dimension (mesh x mesh cores)")
		cs       = flag.Int("cs", 8, "critical sections per thread")
		csCycles = flag.Int("cscyc", 100, "mean critical-section length in cycles")
		parallel = flag.Int("parallel", 2000, "mean parallel compute between CS in cycles")
		brs      = flag.Int("bigrouters", -1, "big routers for iNPG (-1 = half the nodes)")
		barrier  = flag.Int("barrier", 0, "locking barrier table entries (0 = default 16)")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print per-thread breakdown")
		asJSON   = flag.Bool("json", false, "emit the result summary as JSON")
		listProg = flag.Bool("list", false, "list workload profiles and exit")
	)
	flag.Parse()

	if *listProg {
		for _, p := range workload.Profiles() {
			fmt.Println(p)
		}
		return
	}

	mech, err := inpg.ParseMechanism(*mechName)
	fatal(err)
	lk, err := inpg.ParseLockKind(*lockName)
	fatal(err)

	var cfg inpg.Config
	if *program != "" {
		p, err := workload.ByName(*program)
		fatal(err)
		cfg = experiments.ConfigFor(p, mech, lk, experiments.Options{Scale: 0.05, Seed: *seed})
	} else {
		cfg = inpg.DefaultConfig()
		cfg.Mechanism = mech
		cfg.Lock = lk
		cfg.CSPerThread = *cs
		cfg.CSCycles = *csCycles
		cfg.CSJitter = *csCycles / 3
		cfg.ParallelCycles = *parallel
		cfg.ParallelJitter = *parallel / 4
		cfg.Seed = *seed
	}
	cfg.MeshWidth, cfg.MeshHeight = *mesh, *mesh
	cfg.BigRouters = *brs
	cfg.BarrierEntries = *barrier

	sys, err := inpg.New(cfg)
	fatal(err)
	res, err := sys.Run()
	fatal(err)

	if *asJSON {
		fatal(report.WriteJSON(os.Stdout, report.Summarize(cfg, res)))
		return
	}

	fmt.Printf("mechanism      %s, lock %s, %dx%d mesh, %d threads\n",
		mech, lk, cfg.MeshWidth, cfg.MeshHeight, res.Threads)
	fmt.Printf("ROI runtime    %d cycles\n", res.Runtime)
	fmt.Printf("CS completed   %d\n", res.CSCompleted)
	total := float64(res.Parallel + res.COH + res.Sleep + res.CSE)
	if total > 0 {
		fmt.Printf("phase split    parallel %.1f%%  COH %.1f%% (sleep %.1f%%)  CSE %.1f%%\n",
			100*float64(res.Parallel)/total, 100*float64(res.COH+res.Sleep)/total,
			100*float64(res.Sleep)/total, 100*float64(res.CSE)/total)
	}
	fmt.Printf("LCO            %.1f%% of aggregate thread time\n", res.LCOPercent)
	fmt.Printf("Inv-Ack RTT    mean %.1f cycles, max %d (%d samples)\n", res.RTTMean, res.RTTMax, res.RTTSamples)
	fmt.Printf("net latency    %.1f cycles mean\n", res.NetMeanLatency)
	if res.Stopped > 0 {
		fmt.Printf("iNPG           %d lock requests stopped, %d early invalidations\n", res.Stopped, res.EarlyInvs)
	}
	if *verbose {
		fmt.Println("\nper-thread breakdown:")
		for _, t := range res.PerThread {
			fmt.Printf("  thread %2d: parallel %8d  coh %8d  sleep %8d  cse %7d  cs %d  sleeps %d\n",
				t.ID, t.Parallel, t.COH, t.Sleep, t.CSE, t.CSCompleted, t.Sleeps)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgsim:", err)
		os.Exit(1)
	}
}
