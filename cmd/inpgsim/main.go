// Command inpgsim runs one iNPG simulation — or the same simulation over
// several seeds in parallel — and reports its results: phase breakdown,
// lock-coherence overhead, invalidation round trips and critical-section
// throughput.
//
// Examples:
//
//	inpgsim -mech iNPG -lock TAS -cs 8 -parallel 2000
//	inpgsim -mesh 4 -mech Original -lock MCS -v
//	inpgsim -program kdtree -mech iNPG+OCOR
//	inpgsim -program kdtree -seeds 8 -workers 4   # seed sweep, 4 at a time
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"inpg"
	"inpg/internal/experiments"
	"inpg/internal/fault"
	"inpg/internal/manifest"
	"inpg/internal/metrics"
	"inpg/internal/report"
	"inpg/internal/runner"
	"inpg/internal/trace"
	"inpg/internal/workload"
)

func main() {
	var (
		mechName = flag.String("mech", "Original", "mechanism: Original, OCOR, iNPG, iNPG+OCOR")
		lockName = flag.String("lock", "QSL", "lock primitive: TAS, TTL, ABQL, MCS, QSL")
		program  = flag.String("program", "", "workload profile name (overrides -cs/-cscyc/-parallel)")
		mesh     = flag.Int("mesh", 8, "mesh dimension (mesh x mesh cores)")
		cs       = flag.Int("cs", 8, "critical sections per thread")
		csCycles = flag.Int("cscyc", 100, "mean critical-section length in cycles")
		parallel = flag.Int("parallel", 2000, "mean parallel compute between CS in cycles")
		brs      = flag.Int("bigrouters", -1, "big routers for iNPG (-1 = half the nodes)")
		barrier  = flag.Int("barrier", 0, "locking barrier table entries (0 = default 16)")
		seed     = flag.Int64("seed", 1, "random seed")
		shards   = flag.Int("shards", 0, "mesh row-stripe shards ticked in parallel inside the run (0 = auto: one per core, capped at mesh rows, classic engine under 256 nodes; results are bit-identical for every value)")
		fRate    = flag.Float64("faultrate", 0, "combined transient link/port fault rate (0 = faults off)")
		fSeed    = flag.Int64("faultseed", 0, "fault injector seed (0 = derived from -seed)")
		wdog     = flag.Int64("watchdog", 0, "liveness watchdog window in cycles (0 = default, <0 = off)")
		wallTime = flag.Duration("walltime", 0, "wall-clock budget for the run (0 = none); an overrun fails with a timeout diagnosis")
		seeds    = flag.Int("seeds", 1, "run this many consecutive seeds and report the spread")
		workers  = flag.Int("workers", 0, "concurrent simulations for -seeds (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-thread breakdown")
		asJSON   = flag.Bool("json", false, "emit the result summary as JSON")
		listProg = flag.Bool("list", false, "list workload profiles and exit")
		metricsF = flag.Bool("metrics", false, "enable the telemetry registry and print its final counter snapshot")
		mEvery   = flag.Int("metrics-every", 0, "sample the registry every N cycles (requires -metrics; feeds -trace-out counter tracks)")
		manDir   = flag.String("manifest", "", "write a JSON run manifest into this directory")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event/Perfetto .trace.json of the primary lock block to this file")
		jRate    = flag.Float64("journey-rate", 0, "fraction of lock acquisitions to journey-trace with per-stage latency attribution (0 = off; sampling never perturbs the run)")
	)
	flag.Parse()

	if *listProg {
		for _, p := range workload.Profiles() {
			fmt.Println(p)
		}
		return
	}

	mech, err := inpg.ParseMechanism(*mechName)
	fatal(err)
	lk, err := inpg.ParseLockKind(*lockName)
	fatal(err)

	var cfg inpg.Config
	if *program != "" {
		p, err := workload.ByName(*program)
		fatal(err)
		cfg = experiments.ConfigFor(p, mech, lk, experiments.Options{Scale: 0.05, Seed: *seed})
	} else {
		cfg = inpg.DefaultConfig()
		cfg.Mechanism = mech
		cfg.Lock = lk
		cfg.CSPerThread = *cs
		cfg.CSCycles = *csCycles
		cfg.CSJitter = *csCycles / 3
		cfg.ParallelCycles = *parallel
		cfg.ParallelJitter = *parallel / 4
		cfg.Seed = *seed
	}
	cfg.MeshWidth, cfg.MeshHeight = *mesh, *mesh
	cfg.Shards = *shards
	if cfg.Shards == 0 {
		cfg.Shards = inpg.AutoShards(cfg.MeshWidth, cfg.MeshHeight)
	}
	cfg.BigRouters = *brs
	cfg.BarrierEntries = *barrier
	cfg.WatchdogWindow = *wdog
	cfg.WallTimeBudget = *wallTime
	cfg.Metrics = *metricsF
	cfg.MetricsSampleEvery = *mEvery
	cfg.JourneyRate = *jRate
	if *traceOut != "" && cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = 1 << 16
		cfg.TraceAddr = inpg.PrimaryLockAddr(cfg)
	}
	if *fRate > 0 {
		fs := *fSeed
		if fs == 0 {
			fs = *seed ^ 0x66a0_17fa
		}
		cfg.Fault = fault.AtRate(*fRate, fs)
	}

	if *seeds > 1 {
		if *asJSON {
			fatal(fmt.Errorf("-json reports a single run; drop -seeds"))
		}
		seedSweep(cfg, *seeds, *workers)
		return
	}

	sys, err := inpg.New(cfg)
	fatal(err)
	start := time.Now()
	res, runErr := sys.Run()
	// Artifacts are written even for failed runs: a manifest recording the
	// failure is exactly what a post-mortem wants.
	writeArtifacts(sys, cfg, res, runErr, time.Since(start).Seconds(), *manDir, *traceOut)
	if runErr != nil {
		// A failed run carries a full diagnosis: dump it before exiting so
		// the wedged state (dead links, stuck transactions, blocked
		// threads) is visible, not just the headline.
		var simErr *inpg.SimulationError
		if errors.As(runErr, &simErr) && simErr.Diag != nil {
			fmt.Fprint(os.Stderr, simErr.Diag.String())
		}
		fatal(runErr)
	}

	if *asJSON {
		fatal(report.WriteJSON(os.Stdout, report.Summarize(cfg, res)))
		return
	}

	fmt.Printf("mechanism      %s, lock %s, %dx%d mesh, %d threads\n",
		mech, lk, cfg.MeshWidth, cfg.MeshHeight, res.Threads)
	fmt.Printf("ROI runtime    %d cycles\n", res.Runtime)
	fmt.Printf("CS completed   %d\n", res.CSCompleted)
	total := float64(res.Parallel + res.COH + res.Sleep + res.CSE)
	if total > 0 {
		fmt.Printf("phase split    parallel %.1f%%  COH %.1f%% (sleep %.1f%%)  CSE %.1f%%\n",
			100*float64(res.Parallel)/total, 100*float64(res.COH+res.Sleep)/total,
			100*float64(res.Sleep)/total, 100*float64(res.CSE)/total)
	}
	fmt.Printf("LCO            %.1f%% of aggregate thread time\n", res.LCOPercent)
	fmt.Printf("Inv-Ack RTT    mean %.1f cycles, max %d (%d samples)\n", res.RTTMean, res.RTTMax, res.RTTSamples)
	fmt.Printf("net latency    %.1f cycles mean\n", res.NetMeanLatency)
	if res.Stopped > 0 {
		fmt.Printf("iNPG           %d lock requests stopped, %d early invalidations\n", res.Stopped, res.EarlyInvs)
	}
	if res.FaultsInjected > 0 || res.PortStallHits > 0 {
		fmt.Printf("faults         %d injected, %d retransmissions, %d links died, %d port stalls\n",
			res.FaultsInjected, res.LinkRetries, res.LinkFailures, res.PortStallHits)
	}
	if *verbose {
		fmt.Println("\nper-thread breakdown:")
		for _, t := range res.PerThread {
			fmt.Printf("  thread %2d: parallel %8d  coh %8d  sleep %8d  cse %7d  cs %d  sleeps %d\n",
				t.ID, t.Parallel, t.COH, t.Sleep, t.CSE, t.CSCompleted, t.Sleeps)
		}
	}
	if *metricsF {
		if snap := sys.MetricsSnapshot(); snap != nil {
			fmt.Printf("\ntelemetry counters:\n%s", snap.Text())
		}
	}
}

// writeArtifacts emits the optional per-run outputs: a JSON manifest into
// manDir and a Chrome trace-event export to traceOut.
func writeArtifacts(sys *inpg.System, cfg inpg.Config, res *inpg.Results, runErr error, wall float64, manDir, traceOut string) {
	if manDir != "" {
		m := manifest.Build("single", 0, cfg, res, sys.MetricsSnapshot(), wall, runErr)
		path, err := m.WriteFile(manDir)
		fatal(err)
		fmt.Fprintf(os.Stderr, "[manifest: %s]\n", path)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		fatal(err)
		var events []trace.Event
		if buf := sys.Trace(); buf != nil {
			events = buf.Events()
		}
		fatal(metrics.WriteChromeTraceJourneys(f, events, sys.MetricsSampler(), sys.Journeys()))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "[trace: %s]\n", traceOut)
	}
}

// seedSweep runs cfg under n consecutive seeds on the parallel runner and
// prints per-seed rows plus the mean and spread — the quick way to judge
// whether a single-seed difference is signal or noise.
func seedSweep(cfg inpg.Config, n, workers int) {
	cfgs := make([]inpg.Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + int64(i)
	}
	results, err := runner.Run(cfgs, workers)
	fatal(err)

	fmt.Printf("mechanism      %s, lock %s, %dx%d mesh, seeds %d..%d, %d workers\n",
		cfg.Mechanism, cfg.Lock, cfg.MeshWidth, cfg.MeshHeight,
		cfg.Seed, cfg.Seed+int64(n-1), runner.Workers(workers))
	fmt.Printf("%6s %12s %8s %8s %10s\n", "seed", "runtime", "LCO%", "rtt", "earlyInv")
	var rtSum, rtMin, rtMax uint64
	var lcoSum float64
	for i, res := range results {
		fmt.Printf("%6d %12d %7.1f%% %8.1f %10d\n",
			cfgs[i].Seed, res.Runtime, res.LCOPercent, res.RTTMean, res.EarlyInvs)
		rtSum += res.Runtime
		lcoSum += res.LCOPercent
		if i == 0 || res.Runtime < rtMin {
			rtMin = res.Runtime
		}
		if res.Runtime > rtMax {
			rtMax = res.Runtime
		}
	}
	mean := float64(rtSum) / float64(n)
	fmt.Printf("mean runtime   %.0f cycles (min %d, max %d, spread %.1f%%)\n",
		mean, rtMin, rtMax, 100*float64(rtMax-rtMin)/mean)
	fmt.Printf("mean LCO       %.1f%%\n", lcoSum/float64(n))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgsim:", err)
		os.Exit(1)
	}
}
