// Command inpgcalibrate refits the analytic fast model's coefficient
// table: it runs the calibration grid (6 locks × 4 mechanisms ×
// {4×4, 8×8} meshes × 5 contention levels, seed 42) through the cycle
// simulator, inverts the model at the anchor cells (fixed-point
// iteration over the mutually dependent coefficients, then a
// hop-decomposition across the two mesh sizes; DESIGN.md §11), and
// prints the Go literal for internal/analytic/table.go with per-cell
// fit-quality comments.
//
// Run it after any simulator change that legitimately moves the
// physics (the drift test TestModelWithinRecordedBounds failing is the
// signal), paste the table, re-run the validation grid, and update
// analytic.RecordedBounds to the new measured errors:
//
//	go run ./cmd/inpgcalibrate > /tmp/table.txt   # ~4 min single-core
//	go test ./internal/analytic -run ModelWithinRecordedBounds -v
package main

import (
	"fmt"
	"math"
	"os"

	"inpg"
	"inpg/internal/analytic"
)

var pcs = []int{200, 800, 3200, 12800, 51200}

type cell struct {
	cfg     inpg.Config
	totalCS int
	res     *inpg.Results
}

func configFor(lk inpg.LockKind, m inpg.Mechanism, mesh, pc int) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = mesh, mesh
	cfg.Lock = lk
	cfg.Mechanism = m
	cfg.Seed = 42
	cfg.CSPerThread = 4
	cfg.CSCycles = 100
	cfg.CSJitter = 33
	cfg.ParallelCycles = pc
	cfg.ParallelJitter = pc / 3
	return cfg
}

func run(cfg inpg.Config) *inpg.Results {
	sys, err := inpg.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "new:", err)
		os.Exit(1)
	}
	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", cfg.Lock, cfg.Mechanism, cfg.ParallelCycles, err)
		os.Exit(1)
	}
	return res
}

// bisect finds v in [lo,hi] with f(v) ≈ target, f nondecreasing.
func bisect(lo, hi, target float64, f func(float64) float64) float64 {
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func main() {
	locks := []inpg.LockKind{inpg.LockTAS, inpg.LockTTL, inpg.LockABQL, inpg.LockMCS, inpg.LockQSL, inpg.LockCLH}
	fmt.Println("var coefs = [6][4]Coef{")
	for _, lk := range locks {
		fmt.Printf("\tinpg.Lock%s: {\n", lockName(lk))
		for _, m := range inpg.Mechanisms {
			// Simulate the calibration grid for this pair.
			cells := map[[2]int]cell{} // [mesh, pc]
			for _, mesh := range []int{4, 8} {
				for _, pc := range pcs {
					cfg := configFor(lk, m, mesh, pc)
					cells[[2]int{mesh, pc}] = cell{cfg, mesh * mesh * cfg.CSPerThread, run(cfg)}
				}
			}
			c := fit(cells)
			fmt.Printf("\t\tinpg.%s: {SBase: %.4g, SHop: %.4g, SFloor: %.4g, AUncBase: %.4g, AUncHop: %.4g, ECseBase: %.4g, ECseHop: %.4g, FCoh: %.4g, STail: %.4g, FBase: %.4g, FBaseHop: %.4g, FWait: %.4g, FWaitHop: %.4g, LSer: %.4g, FHotHop: %.4g, LGain: %.4g},\n",
				mechName(m), c.SBase, c.SHop, c.SFloor, c.AUncBase, c.AUncHop, c.ECseBase, c.ECseHop, c.FCoh, c.STail, c.FBase, c.FBaseHop, c.FWait, c.FWaitHop, c.LSer, c.FHotHop, c.LGain)
			reportFit(lk, m, c, cells)
		}
		fmt.Println("\t},")
	}
	fmt.Println("}")
}

func fit(cells map[[2]int]cell) analytic.Coef {
	var c analytic.Coef
	c.FCoh = 1
	meshes := []int{4, 8}
	rtt := map[int]float64{}
	for _, mesh := range meshes {
		rtt[mesh] = 4 * analytic.Coef{}.Estimate(cells[[2]int{mesh, 200}].cfg).MeanHopsHome
	}
	dec := func(v4, v8 float64) (base, hop float64) {
		hop = clamp((v8-v4)/(rtt[8]-rtt[4]), 0, 1e9)
		return v8 - hop*rtt[8], hop
	}
	at := func(mesh int, base, hop float64) float64 { return base + hop*rtt[mesh] }

	// The uncontended anchor (pc=51200) still contains the queueing wait
	// the MVA itself predicts at that think time, so AUnc (the protocol
	// floor) and the S/FCoh fits are mutually dependent: iterate the
	// anchor inversion to a fixed point. Each pass re-derives the
	// per-mesh raw anchors under the current model, re-decomposes them
	// into base+hop form, then refits SLoad and FCoh.
	aUnc := map[int]float64{4: 0, 8: 0}
	for pass := 0; pass < 4; pass++ {
		s, cse := map[int]float64{}, map[int]float64{}
		for _, mesh := range meshes {
			unc := cells[[2]int{mesh, 51200}]
			tcs := float64(unc.totalCS)
			measured := float64(unc.res.COH+unc.res.Sleep) / tcs
			if pass == 0 {
				aUnc[mesh] = measured
			} else {
				wcUnc := c.Estimate(unc.cfg).WaitPerAcquire
				aUnc[mesh] = clamp(measured-c.FCoh*wcUnc, 0, measured)
			}
			cse[mesh] = float64(unc.res.CSE)/tcs - 100
			// Serialized period from the most contended cell: invert runtime
			// under the current AUnc/SLoad/FCoh.
			hot := cells[[2]int{mesh, 200}]
			probe := c
			probe.AUncBase, probe.AUncHop = aUnc[mesh], 0
			probe.ECseBase, probe.ECseHop = cse[mesh], 0
			probe.SHop = 0
			s[mesh] = bisect(1, 30000, float64(hot.res.Runtime), func(v float64) float64 {
				probe.SBase = v
				return probe.Estimate(hot.cfg).Runtime
			})
		}
		c.SBase, c.SHop = dec(s[4], s[8])
		if c.SBase < 1 { // hop slope over-explains: pin to the 8×8 anchor
			c.SBase, c.SHop = s[8], 0
		}
		c.AUncBase, c.AUncHop = dec(aUnc[4], aUnc[8])
		c.ECseBase, c.ECseHop = dec(cse[4], cse[8])

		// SFloor from the partially loaded 8×8 cell. Out-of-range targets
		// clamp to the nearest bound (best effort: the cell may be
		// parallel-limited, where SFloor has no leverage).
		mid := cells[[2]int{8, 12800}]
		rAt := func(sf float64) float64 {
			cc := c
			cc.SFloor = sf
			return cc.Estimate(mid.cfg).Runtime
		}
		target := float64(mid.res.Runtime)
		switch lo, hi := rAt(0.05), rAt(2.5); {
		case target <= lo:
			c.SFloor = 0.05
		case target >= hi:
			c.SFloor = 2.5
		default:
			c.SFloor = bisect(0.05, 2.5, target, rAt)
		}

		// FCoh by least squares over the contended-to-knee 8×8 cells'
		// COH+Sleep totals (target = FCoh × wait, through the origin).
		var num, den float64
		for _, pc := range []int{200, 3200, 12800} {
			cl := cells[[2]int{8, pc}]
			wc := c.Estimate(cl.cfg).WaitPerAcquire
			if wc <= 1 {
				continue
			}
			target := float64(cl.res.COH+cl.res.Sleep)/float64(cl.totalCS) - at(8, c.AUncBase, c.AUncHop)
			num += target * wc
			den += wc * wc
		}
		if den > 0 {
			c.FCoh = clamp(num/den, 0.05, 2)
		}
	}

	// Final S re-fit with SFloor/FCoh frozen, so the contended anchor is
	// hit exactly under the coefficients that will ship.
	{
		s := map[int]float64{}
		for _, mesh := range meshes {
			hot := cells[[2]int{mesh, 200}]
			probe := c
			probe.AUncBase, probe.AUncHop = at(mesh, c.AUncBase, c.AUncHop), 0
			probe.ECseBase, probe.ECseHop = at(mesh, c.ECseBase, c.ECseHop), 0
			probe.SHop = 0
			s[mesh] = bisect(1, 30000, float64(hot.res.Runtime), func(v float64) float64 {
				probe.SBase = v
				return probe.Estimate(hot.cfg).Runtime
			})
		}
		c.SBase, c.SHop = dec(s[4], s[8])
		if c.SBase < 1 {
			c.SBase, c.SHop = s[8], 0
		}
	}

	// STail (QSL): episodes × (fixed cost + STail × wait) = measured
	// sleep. 2048 is the default spin budget (QSLRetries × poll cycles)
	// and 6000 the fixed episode cost (2 context switches + wakeup),
	// mirroring the model's constants for the default config.
	hot8 := cells[[2]int{8, 200}]
	if hot8.cfg.Lock == inpg.LockQSL && hot8.res.Sleeps > 0 {
		e := c.Estimate(hot8.cfg)
		pSleep := math.Exp(-2048 / e.WaitPerAcquire)
		if eps := float64(hot8.totalCS) * pSleep; eps > 0.5 && e.WaitPerAcquire > 1 {
			c.STail = clamp((float64(hot8.res.Sleep)/eps-6000)/e.WaitPerAcquire, 0, 2)
		}
	}

	// Flits per CS: protocol exchange (uncontended anchor) plus polling
	// traffic per wait cycle (contended anchor), each hop-decomposed.
	fb, fw := map[int]float64{}, map[int]float64{}
	for _, mesh := range meshes {
		unc, hot := cells[[2]int{mesh, 51200}], cells[[2]int{mesh, 200}]
		wcUnc := c.Estimate(unc.cfg).WaitPerAcquire
		wcHot := c.Estimate(hot.cfg).WaitPerAcquire
		fUnc := float64(unc.res.FlitsSwitched) / float64(unc.totalCS)
		fHot := float64(hot.res.FlitsSwitched) / float64(hot.totalCS)
		if wcHot-wcUnc > 1 {
			fw[mesh] = clamp((fHot-fUnc)/(wcHot-wcUnc), 0, 1e9)
		}
		fb[mesh] = clamp(fUnc-fw[mesh]*wcUnc, 1, 1e9)
	}
	c.FBase, c.FBaseHop = dec(fb[4], fb[8])
	c.FWait, c.FWaitHop = dec(fw[4], fw[8])
	if c.FBase < 1 {
		c.FBase, c.FBaseHop = fb[8], 0
	}

	// Latency: grid-search the hot-link flit-cycles-per-rtt FHotHop; for
	// each candidate solve (LSer, LGain) by least squares over all cells,
	// 8×8 weighted 3× (the campaign mesh).
	type lc struct{ xr, lat, floor, wt float64 }
	var lcs []lc
	maxXR := 0.0
	for _, mesh := range meshes {
		for _, pc := range pcs {
			cl := cells[[2]int{mesh, pc}]
			e := c.Estimate(cl.cfg)
			floor := 2 * (e.MeanHopsHome + e.MeanHopsUniform) / 2
			xr := float64(cl.totalCS) / float64(cl.res.Runtime) * rtt[mesh]
			wt := 1.0
			if mesh == 8 {
				wt = 3
			}
			lcs = append(lcs, lc{xr, cl.res.NetMeanLatency, floor, wt})
			if xr > maxXR {
				maxXR = xr
			}
		}
	}
	bestErr := math.Inf(1)
	for i := 0; i <= 400; i++ {
		fh := float64(i) / 400 * 0.96 / maxXR
		var sw, sg, sgg, sy, sgy float64
		for _, p := range lcs {
			u := math.Min(0.96, p.xr*fh)
			g := u / (1 - u)
			y := p.lat - p.floor
			sw += p.wt
			sg += p.wt * g
			sgg += p.wt * g * g
			sy += p.wt * y
			sgy += p.wt * g * y
		}
		det := sw*sgg - sg*sg
		var lser, lgain float64
		if det > 1e-12 {
			lgain = (sw*sgy - sg*sy) / det
			lser = (sy - lgain*sg) / sw
		} else {
			lser, lgain = sy/sw, 0
		}
		if lgain < 0 {
			lgain, lser = 0, sy/sw
		}
		errSum := 0.0
		for _, p := range lcs {
			u := math.Min(0.96, p.xr*fh)
			pred := p.floor + lser + lgain*u/(1-u)
			errSum += p.wt * (pred - p.lat) * (pred - p.lat)
		}
		if errSum < bestErr {
			bestErr, c.FHotHop, c.LGain, c.LSer = errSum, fh, lgain, lser
		}
	}
	return c
}

func reportFit(lk inpg.LockKind, m inpg.Mechanism, c analytic.Coef, cells map[[2]int]cell) {
	worst := 0.0
	var sum float64
	var n int
	detail := ""
	for _, mesh := range []int{4, 8} {
		for _, pc := range pcs {
			cl := cells[[2]int{mesh, pc}]
			e := c.Estimate(cl.cfg)
			re := func(est, meas float64) float64 {
				if meas == 0 {
					return 0
				}
				return math.Abs(est-meas) / meas
			}
			rr := re(e.Runtime, float64(cl.res.Runtime))
			rt := re(e.CSPerKCycle, 1000*float64(cl.res.CSCompleted)/float64(cl.res.Runtime))
			rl := re(e.NetMeanLatency, cl.res.NetMeanLatency)
			ru := re(e.LinkUtilization, float64(cl.res.FlitsSwitched)/(float64(cl.res.Runtime)*float64(mesh*mesh)))
			rc := re(e.CSTime(), float64(cl.res.COH+cl.res.Sleep+cl.res.CSE))
			for _, v := range []float64{rr, rt, rl} {
				sum += v
				n++
				if v > worst {
					worst = v
				}
			}
			detail += fmt.Sprintf("\t\t// m%d pc%-6d R%5.1f%% X%5.1f%% L%5.1f%% U%5.1f%% C%5.1f%%\n", mesh, pc, rr*100, rt*100, rl*100, ru*100, rc*100)
		}
	}
	fmt.Printf("\t\t// fit %s/%s: mean RE(R,X,L) %.1f%%, worst %.1f%%\n", lk, m, 100*sum/float64(n), 100*worst)
	fmt.Print(detail)
}

func lockName(lk inpg.LockKind) string {
	switch lk {
	case inpg.LockTAS:
		return "TAS"
	case inpg.LockTTL:
		return "TTL"
	case inpg.LockABQL:
		return "ABQL"
	case inpg.LockMCS:
		return "MCS"
	case inpg.LockQSL:
		return "QSL"
	default:
		return "CLH"
	}
}

func mechName(m inpg.Mechanism) string {
	switch m {
	case inpg.Original:
		return "Original"
	case inpg.OCOR:
		return "OCOR"
	default:
		if m == inpg.INPG {
			return "INPG"
		}
		return "INPGOCOR"
	}
}
