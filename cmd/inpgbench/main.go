// Command inpgbench regenerates the paper's tables and figures. Each
// figure of the evaluation section has a runner in internal/experiments;
// this command executes the requested ones and prints paper-style tables.
//
// Examples:
//
//	inpgbench -fig t1          # Table 1 platform configuration
//	inpgbench -fig 10          # Figure 10 round-trip maps and histograms
//	inpgbench -fig 11,12       # the shared 24-program × 4-mechanism suite
//	inpgbench -all             # everything (several minutes)
//	inpgbench -all -quick      # reduced-size runs
//	inpgbench -fig pre -prescreen  # analytically pre-screened contention sweep
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"inpg/internal/experiments"
	"inpg/internal/fleet"
	"inpg/internal/monitor"
	"inpg/internal/report"
	"inpg/internal/runner"
)

// newLogger builds the structured logger for fleet and runner
// diagnostics, on stderr so stdout figure tables stay byte-comparable
// across runs. A bad level name is fatal (a silently defaulted level
// would hide the diagnostics the user asked for).
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "inpgbench: bad -log-level %q (want debug, info, warn or error)\n", level)
		os.Exit(2)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

// runWorker serves a coordinator until it orders shutdown. SIGTERM (or
// the first interrupt) drains gracefully — the leased cells finish, new
// ones are declined; a second signal kills the worker immediately, which
// is exactly the failure the coordinator's lease reclaim recovers from.
func runWorker(log *slog.Logger, url, token string, slots, killAfter int, dropRate float64, seed int64) {
	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: url, Token: token, Slots: slots,
		ChaosKillAfter: killAfter, ChaosDropRate: dropRate, ChaosSeed: seed,
		Log: log,
	})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		w.Drain()
		<-sig
		fmt.Fprintln(os.Stderr, "[inpgbench: second signal, exiting without drain]")
		os.Exit(1)
	}()
	fmt.Fprintf(os.Stderr, "[inpgbench: fleet worker %s serving %s, %d slots]\n", w.ID(), url, slots)
	w.Run()
	fmt.Fprintf(os.Stderr, "[inpgbench: fleet worker %s exiting after %d completions]\n", w.ID(), w.Completed())
}

// parseCells parses a comma-separated list of non-negative cell indexes;
// a bad element is fatal (a silently ignored chaos cell would fake a pass).
func parseCells(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "inpgbench: bad cell index %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	var (
		fig     = flag.String("fig", "", "comma-separated figure list: t1,2,7,8,9,10,11,12,13,14,15,abl,res,pre,lat")
		all     = flag.Bool("all", false, "run every figure")
		quick   = flag.Bool("quick", false, "smaller runs (for smoke testing)")
		full    = flag.Bool("full13", false, "run Figure 13 over all 24 programs instead of 9")
		scale   = flag.Float64("scale", 0.05, "ROI critical-section scale factor")
		seed    = flag.Int64("seed", 42, "random seed")
		seeds   = flag.Int("seeds", 1, "seeds to average over (figures 11/12)")
		workers = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "mesh row-stripe shards ticked in parallel inside each run (0 = auto: one per core, capped at mesh rows, classic engine under 256 nodes; 1 = classic engine; identical output)")
		prescr  = flag.Bool("prescreen", false, "figure pre: analytically pre-select interesting cells and run only those in the detailed simulator (byte-identical output, skipped cells get estimate manifests)")
		compat  = flag.Bool("compat", false, "always-tick engine mode (slow reference scheduler; identical output)")
		fRate   = flag.Float64("faultrate", 0, "combined transient link/port fault rate (0 = faults off)")
		fSeed   = flag.Int64("faultseed", 0, "fault injector seed (0 = derived from -seed)")
		wdog    = flag.Int64("watchdog", 0, "liveness watchdog window in cycles (0 = default, <0 = off)")
		out     = flag.String("out", "", "directory for CSV exports (suite + RTT histograms)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		metrics = flag.Bool("metrics", false, "enable the per-run telemetry registry")
		mEvery  = flag.Int("metrics-every", 0, "sample the registry every N cycles (requires -metrics)")
		manDir  = flag.String("manifest-dir", "", "write one JSON run manifest per simulation into this directory")
		monAddr = flag.String("monitor", "", "serve the live sweep monitor (progress page, /vars JSON, /events SSE, pprof) on this address, e.g. :8080")
		retries = flag.Int("retries", 0, "re-run each failed cell up to N times with deterministic backoff before quarantining it")
		runTO   = flag.Duration("run-timeout", 0, "per-run wall-clock deadline (0 = none); overruns fail their cell with diagnostics")
		resume  = flag.String("resume", "", "resume from this manifest directory: skip cells whose manifest records a successful run with a matching config digest")
		chPanic = flag.String("chaos-panic", "", "comma-separated sweep cell indexes to crash with an injected panic (chaos testing)")
		chDead  = flag.String("chaos-deadline", "", "comma-separated sweep cell indexes to fail with an unmeetable wall-time budget (chaos testing)")
		jRate   = flag.Float64("journey-rate", 0, "fraction of lock acquisitions to journey-trace with per-stage latency attribution (0 = off; -fig lat defaults to 1; implies -metrics)")
		logLvl  = flag.String("log-level", "info", "structured-log level for fleet and runner diagnostics: debug, info, warn, error")

		coordAddr  = flag.String("coordinator", "", "serve a fleet coordinator on this address (e.g. :9000): sweeps are leased to polling workers instead of the local pool")
		workerURL  = flag.String("worker", "", "serve as a fleet worker for the coordinator at this URL (e.g. http://host:9000); with -coordinator, 'self' runs an in-process worker (local fleet mode)")
		leaseTTL   = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "fleet lease time-to-live: a worker must heartbeat within it or its cell is re-dispatched")
		quarAfter  = flag.Int("quarantine-workers", fleet.DefaultQuarantineAfter, "quarantine a fleet cell after this many distinct workers fail its digest")
		fleetGrace = flag.Duration("fleet-grace", 3*time.Second, "how long the coordinator keeps answering polls with a shutdown order after the last sweep, so workers exit cleanly")
		chKill     = flag.Int("chaos-kill-after", 0, "worker: die holding the Nth acquired lease without completing it (chaos testing)")
		chDrop     = flag.Float64("chaos-drop-rate", 0, "worker: probability a completion acknowledgement is deterministically dropped and the report resent (chaos testing)")
		fleetTok   = flag.String("fleet-token", "", "shared bearer secret for all /fleet/* endpoints: the coordinator requires it, workers send it (/healthz stays open)")
		chKillCoor = flag.Int("chaos-kill-coordinator-after", 0, "coordinator: crash immediately after granting the Nth lease (chaos testing); restart against the same -manifest-dir to replay the campaign WAL and adopt the outstanding leases")
	)
	flag.Parse()
	logger := newLogger(*logLvl)

	// Pure worker mode: no figures, no sweeps — serve the coordinator
	// until it orders shutdown or SIGTERM drains us.
	if *workerURL != "" && *coordAddr == "" {
		runWorker(logger, *workerURL, *fleetTok, runner.Workers(*workers), *chKill, *chDrop, *seed)
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inpgbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "inpgbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "inpgbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live + cumulative truthfully
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "inpgbench:", err)
				os.Exit(1)
			}
		}()
	}

	o := experiments.Options{Scale: *scale, Seed: *seed, Seeds: *seeds, Quick: *quick, Workers: *workers, Shards: *shards, Compat: *compat,
		FaultRate: *fRate, FaultSeed: *fSeed, WatchdogWindow: *wdog,
		Metrics: *metrics, MetricsSampleEvery: *mEvery, JourneyRate: *jRate, ManifestDir: *manDir,
		Retries: *retries, RunTimeout: *runTO, Resume: *resume,
		ChaosPanicCells: parseCells(*chPanic), ChaosDeadlineCells: parseCells(*chDead),
		Log: logger}
	// Resuming implies journaling: re-run cells land their manifests next
	// to the ones being reused, so a further resume sees a complete set.
	if o.Resume != "" && o.ManifestDir == "" {
		o.ManifestDir = o.Resume
	}
	var mon *monitor.Monitor
	if *monAddr != "" {
		mon = monitor.New()
		addr, err := mon.Serve(*monAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inpgbench: monitor:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[inpgbench: monitor on http://%s]\n", addr)
		o.Observer = mon.Observer()
		defer mon.Close()
	}
	var coord *fleet.Coordinator
	if *coordAddr != "" {
		coord = fleet.NewCoordinator(fleet.Config{
			LeaseTTL: *leaseTTL, QuarantineAfter: *quarAfter,
			ManifestDir: o.ManifestDir, Token: *fleetTok,
			ChaosKillAfter: *chKillCoor, Log: logger,
		})
		ln, err := net.Listen("tcp", *coordAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inpgbench: coordinator:", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: coord}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "[inpgbench: fleet coordinator on http://%s]\n", ln.Addr())
		o.Campaign = coord
		if mon != nil {
			mon.SetFleet(coord.Status)
		}
		// Registered after the monitor's Close so it runs first (LIFO):
		// order the fleet down, give pollers a grace window to observe the
		// shutdown answer and exit cleanly, then stop serving.
		defer func() {
			coord.Shutdown()
			time.Sleep(*fleetGrace)
			srv.Close()
		}()
		if *workerURL != "" {
			// Local fleet mode: an in-process worker alongside the
			// coordinator ("self" targets the bound address).
			target := *workerURL
			if target == "self" {
				target = ln.Addr().String()
			}
			w := fleet.NewWorker(fleet.WorkerConfig{
				Coordinator: target, Token: *fleetTok, Slots: runner.Workers(*workers),
				ChaosKillAfter: *chKill, ChaosDropRate: *chDrop, ChaosSeed: *seed,
				Log: logger,
			})
			fmt.Fprintf(os.Stderr, "[inpgbench: in-process fleet worker %s, %d slots]\n",
				w.ID(), runner.Workers(*workers))
			go w.Run()
		}
	}
	// Stderr so the figure tables on stdout stay byte-comparable across runs.
	fmt.Fprintf(os.Stderr, "[inpgbench: %d workers]\n", runner.Workers(*workers))
	want := map[string]bool{}
	if *all {
		for _, f := range []string{"t1", "2", "7", "8", "9", "10", "11", "12", "13", "14", "15", "abl"} {
			want[f] = true
		}
	} else if *fig == "" {
		flag.Usage()
		os.Exit(2)
	} else {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	show := func(name string, run func() (string, error)) {
		if !want[name] {
			return
		}
		start := time.Now()
		out, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "inpgbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[figure %s regenerated in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	show("t1", func() (string, error) { return experiments.Table1(), nil })
	show("2", func() (string, error) {
		r, err := experiments.Fig2(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	show("7", func() (string, error) { return experiments.Fig7().Render(), nil })
	show("8", func() (string, error) {
		r, err := experiments.Fig8(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	show("9", func() (string, error) {
		r, err := experiments.Fig9(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	show("10", func() (string, error) {
		r, err := experiments.Fig10(o)
		if err != nil {
			return "", err
		}
		if *out != "" {
			if err := report.SaveAll(*out, nil, r); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	// Figures 11 and 12 read the same 96-run sweep; run it once.
	if want["11"] || want["12"] {
		start := time.Now()
		suite, err := experiments.RunSuite(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inpgbench: suite:", err)
			os.Exit(1)
		}
		if want["11"] {
			fmt.Println(suite.RenderFig11())
		}
		if want["12"] {
			fmt.Println(suite.RenderFig12())
		}
		if *out != "" {
			if err := report.SaveAll(*out, suite, nil); err != nil {
				fmt.Fprintln(os.Stderr, "inpgbench: export:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[figures 11/12 regenerated in %.1fs]\n\n", time.Since(start).Seconds())
	}
	show("13", func() (string, error) {
		r, err := experiments.Fig13(o, *full)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	show("14", func() (string, error) {
		r, err := experiments.Fig14(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	show("15", func() (string, error) {
		r, err := experiments.Fig15(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	// The resilience sweep is not a paper figure (and is excluded from
	// -all so fault-free suite output stays byte-comparable): it charts
	// CS throughput against injected fault rates for every mechanism.
	show("res", func() (string, error) {
		r, err := experiments.Resilience(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	// The latency-breakdown figure (not a paper figure, excluded from
	// -all so untraced suite output stays byte-comparable): per-stage
	// attribution of lock-acquisition latency from sampled journeys.
	show("lat", func() (string, error) {
		r, err := experiments.LatencyBreakdown(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	// The pre-screened contention sweep (not a paper figure, excluded
	// from -all): the analytic fast model screens the ladder; with
	// -prescreen only the interesting cells reach the detailed
	// simulator. Output is byte-identical either way (pinned by test).
	show("pre", func() (string, error) {
		r, err := experiments.RunPre(o, *prescr)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(os.Stderr, "[pre: %d of %d cells simulated in detail]\n", r.SimCells, r.TotalCells)
		return r.Render(), nil
	})
	show("abl", func() (string, error) {
		rs, err := experiments.Ablations(o)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, r := range rs {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		return b.String(), nil
	})

	// A campaign whose durable journal could not be written is a failed
	// run even when the figures rendered: the record the fleet exists to
	// produce is missing.
	if coord != nil {
		if err := coord.JournalError(); err != nil {
			fmt.Fprintln(os.Stderr, "inpgbench:", err)
			os.Exit(1)
		}
	}
}
