// Command inpgtraffic validates the NoC substrate with synthetic traffic,
// independently of the coherence protocol: it prints a load/latency curve
// for a pattern and a router-utilization heatmap at a chosen operating
// point — the standard bring-up characterization of an on-chip network.
//
// Examples:
//
//	inpgtraffic -pattern uniform -mesh 8
//	inpgtraffic -pattern hotspot -rate 0.02 -heatmap
package main

import (
	"flag"
	"fmt"
	"os"

	"inpg/internal/noc"
	"inpg/internal/sim"
)

func main() {
	var (
		patName = flag.String("pattern", "uniform", "uniform | transpose | bit-complement | hotspot")
		mesh    = flag.Int("mesh", 8, "mesh dimension")
		rate    = flag.Float64("rate", 0.05, "injection rate for the single-point run (packets/node/cycle)")
		flits   = flag.Int("flits", 1, "packet size in flits")
		heatmap = flag.Bool("heatmap", false, "print router-utilization heatmap for the single-point run")
		curve   = flag.Bool("curve", true, "print the load/latency curve")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var pattern noc.Pattern
	switch *patName {
	case "uniform":
		pattern = noc.UniformRandom
	case "transpose":
		pattern = noc.Transpose
	case "bit-complement":
		pattern = noc.BitComplement
	case "hotspot":
		pattern = noc.Hotspot
	default:
		fmt.Fprintf(os.Stderr, "inpgtraffic: unknown pattern %q\n", *patName)
		os.Exit(2)
	}

	cfg := noc.Config{Mesh: noc.Mesh{Width: *mesh, Height: *mesh}, VCsPerPort: 6, VCDepth: 4}

	if *curve {
		rates := []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2}
		if pattern == noc.Hotspot {
			rates = []float64{0.002, 0.005, 0.008, 0.012}
		}
		points, err := noc.LatencyCurve(cfg, pattern, rates, *seed)
		fatal(err)
		fmt.Printf("load/latency curve (%s, %dx%d):\n", pattern, *mesh, *mesh)
		fmt.Printf("%10s %14s\n", "rate", "mean latency")
		for _, p := range points {
			fmt.Printf("%10.3f %14.1f\n", p[0], p[1])
		}
		fmt.Println()
	}

	eng := sim.NewEngine(*seed)
	n, err := noc.New(eng, cfg)
	fatal(err)
	res, err := noc.RunTraffic(eng, n, noc.TrafficConfig{
		Pattern:       pattern,
		InjectionRate: *rate,
		PacketFlits:   *flits,
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          *seed,
	})
	fatal(err)
	fmt.Printf("single point: rate %.3f, %d-flit packets\n", *rate, *flits)
	fmt.Printf("  injected %d, delivered %d, mean latency %.1f, max %d, throughput %.3f flits/cycle\n",
		res.Injected, res.Delivered, res.MeanLatency, res.MaxLatency, res.ThroughputFPC)

	if *heatmap {
		fmt.Println("\nrouter utilization (flits switched per cycle):")
		fmt.Print(noc.UtilizationHeatmap(n, eng.Now()))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgtraffic:", err)
		os.Exit(1)
	}
}
