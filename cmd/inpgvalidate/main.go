// Command inpgvalidate checks generated telemetry artifacts: run
// manifests against the internal/manifest schema and exported
// .trace.json files against the Chrome trace-event structure checker.
// CI runs it over everything a sweep produced; it exits nonzero on the
// first invalid artifact.
//
// Each argument is either a manifest file, a .trace.json file, or a
// directory scanned (non-recursively) for both.
//
// Example:
//
//	inpgvalidate out/manifests out/run.trace.json
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inpg/internal/manifest"
	"inpg/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: inpgvalidate <manifest.json|trace.json|dir>...")
		os.Exit(2)
	}
	checked, failedRuns := 0, 0
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		fatal(err)
		if !info.IsDir() {
			n, f := checkFile(arg)
			checked, failedRuns = checked+n, failedRuns+f
			continue
		}
		entries, err := os.ReadDir(arg)
		fatal(err)
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			n, f := checkFile(filepath.Join(arg, e.Name()))
			checked, failedRuns = checked+n, failedRuns+f
		}
	}
	if checked == 0 {
		fatal(fmt.Errorf("no manifests or traces found"))
	}
	// A failed-run manifest is a valid artifact — the record of a
	// quarantined cell — so it counts toward validity but is reported.
	if failedRuns > 0 {
		fmt.Printf("inpgvalidate: %d artifacts valid (%d record failed runs)\n", checked, failedRuns)
		return
	}
	fmt.Printf("inpgvalidate: %d artifacts valid\n", checked)
}

// checkFile validates one artifact by name convention; unrecognized
// files are skipped (directories hold figure CSVs too). The second
// return counts manifests recording failed runs.
func checkFile(path string) (int, int) {
	base := filepath.Base(path)
	switch {
	case strings.HasPrefix(base, "manifest-") && strings.HasSuffix(base, ".json"):
		m, err := manifest.ReadFile(path)
		fatal(err)
		if m.Status == manifest.StatusFailed {
			diag := ""
			if m.Diag != nil {
				diag = fmt.Sprintf(", %d/%d threads unfinished at cycle %d",
					m.Diag.Unfinished, m.Diag.Threads, m.Diag.Cycle)
			}
			fmt.Printf("ok %s (%s/%d, %s/%s) FAILED cause=%s attempt=%d%s\n",
				path, m.Sweep, m.Index, m.Mechanism, m.Lock, m.Cause, m.Attempt, diag)
			return 1, 1
		}
		fmt.Printf("ok %s (%s/%d, %s/%s)\n", path, m.Sweep, m.Index, m.Mechanism, m.Lock)
		return 1, 0
	case strings.HasSuffix(base, ".trace.json"):
		data, err := os.ReadFile(path)
		fatal(err)
		if err := metrics.ValidateChromeTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("ok %s\n", path)
		return 1, 0
	}
	return 0, 0
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgvalidate:", err)
		os.Exit(1)
	}
}
