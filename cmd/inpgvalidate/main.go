// Command inpgvalidate checks generated telemetry artifacts: run and
// estimate manifests against the internal/manifest schema, fleet
// campaign journals against the internal/fleet schema, fleet campaign
// write-ahead logs (campaign-*.wal) by full replay, and exported
// .trace.json files against the Chrome trace-event structure checker.
// CI runs it over everything a sweep produced; it exits nonzero on the
// first invalid artifact.
//
// Each argument is either a manifest file, a campaign journal, a
// campaign WAL, a .trace.json file, or a directory scanned
// (non-recursively) for all of them. Across everything checked, cross-
// file properties are enforced: the same sweep cell (sweep/index) must
// never appear with two different config digests — the corruption a
// fleet's idempotency-by-digest is supposed to make impossible — a
// campaign journal's recorded digests must match the manifests on disk,
// and a *closed* WAL (one sealed by campaign-close) must agree with its
// journal snapshot: the journal exists (the close event is only written
// after the snapshot is durable) and its adoption/replay/reclaim/
// quarantine counts equal what replaying the log yields.
//
// Example:
//
//	inpgvalidate out/manifests out/run.trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"inpg/internal/fleet"
	"inpg/internal/manifest"
	"inpg/internal/metrics"
)

// cellRecord remembers where a sweep cell's digest was first seen, for
// conflict reporting.
type cellRecord struct {
	digest string
	path   string
}

// validator accumulates cross-file state over every checked artifact.
type validator struct {
	checked, failedRuns, estimates, journals, wals int
	// cells maps "sweep/index" to the first digest seen for that cell.
	cells    map[string]cellRecord
	journal  []*fleet.Journal
	journalP []string
	replay   []*fleet.Replay
	replayP  []string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: inpgvalidate <manifest.json|campaign.json|campaign.wal|trace.json|dir>...")
		os.Exit(2)
	}
	v := &validator{cells: map[string]cellRecord{}}
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		fatal(err)
		if !info.IsDir() {
			v.checkFile(arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		fatal(err)
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			v.checkFile(filepath.Join(arg, e.Name()))
		}
	}
	if v.checked == 0 {
		fatal(fmt.Errorf("no manifests, journals or traces found"))
	}
	v.crossCheckJournals()
	v.crossCheckWALs()
	// A failed-run manifest is a valid artifact — the record of a
	// quarantined cell — and so is an estimate manifest — the record of
	// an analytically pre-screened cell; both count toward validity but
	// are reported.
	extra := ""
	if v.failedRuns > 0 {
		extra += fmt.Sprintf(" (%d record failed runs)", v.failedRuns)
	}
	if v.estimates > 0 {
		extra += fmt.Sprintf(" (%d analytic estimates)", v.estimates)
	}
	if v.journals > 0 {
		extra += fmt.Sprintf(" (%d fleet campaign journals)", v.journals)
	}
	if v.wals > 0 {
		extra += fmt.Sprintf(" (%d campaign WALs replayed)", v.wals)
	}
	fmt.Printf("inpgvalidate: %d artifacts valid%s\n", v.checked, extra)
}

// recordCell enforces the one-digest-per-cell invariant across every
// artifact checked in this invocation.
func (v *validator) recordCell(sweep string, index int, digest, path string) {
	if digest == "" {
		return
	}
	key := fmt.Sprintf("%s/%d", sweep, index)
	if prev, ok := v.cells[key]; ok && prev.digest != digest {
		fatal(fmt.Errorf("%s: cell %s digest %s conflicts with %s from %s",
			path, key, digest, prev.digest, prev.path))
	} else if !ok {
		v.cells[key] = cellRecord{digest: digest, path: path}
	}
}

// crossCheckJournals verifies every campaign journal's dispatched
// digests against the manifests seen on disk.
func (v *validator) crossCheckJournals() {
	for i, j := range v.journal {
		for idx, d := range j.Digests {
			v.recordCell(j.Sweep, idx, d, v.journalP[i])
		}
	}
}

// crossCheckWALs audits every replayed campaign WAL against the journal
// snapshot of the same sweep. A closed WAL is sealed only after the
// journal was durably written, so for it the snapshot must exist and its
// dispatch accounting must equal what replaying the log yields; an
// unclosed WAL is a campaign in progress (or crashed), for which a
// journal from an earlier run of the same sweep is legitimate — only the
// digest fingerprints are compared.
func (v *validator) crossCheckWALs() {
	bySweep := map[string]int{}
	for i, j := range v.journal {
		bySweep[j.Sweep] = i
	}
	for i, rep := range v.replay {
		path := v.replayP[i]
		ji, ok := bySweep[rep.Sweep]
		if !rep.Closed {
			if !ok {
				fmt.Printf("   wal %s: campaign in progress (no journal yet)\n", path)
			}
			continue
		}
		if !ok {
			fatal(fmt.Errorf("%s: closed WAL for sweep %q but no campaign journal seen — the close event is only written after the journal; the snapshot is missing", path, rep.Sweep))
		}
		j, jpath := v.journal[ji], v.journalP[ji]
		type cmp struct {
			name      string
			wal, jrnl int
		}
		for _, c := range []cmp{
			{"cells", rep.Cells, j.Cells},
			{"adopted", rep.Adoptions, j.Adopted},
			{"replays", rep.Restarts, j.Replays},
			{"reclaims", rep.Reclaims, j.Reclaims},
			{"quarantined", len(rep.Quarantined), len(j.Quarantined)},
			{"late_accepts", rep.LateAccepts, j.LateAccepts},
		} {
			if c.wal != c.jrnl {
				fatal(fmt.Errorf("%s: %s=%d from WAL replay, but journal %s records %d",
					path, c.name, c.wal, jpath, c.jrnl))
			}
		}
	}
}

// checkFile validates one artifact by name convention; unrecognized
// files are skipped (directories hold figure CSVs too).
func (v *validator) checkFile(path string) {
	base := filepath.Base(path)
	switch {
	case strings.HasPrefix(base, "manifest-") && strings.HasSuffix(base, ".json"):
		m, err := manifest.ReadFile(path)
		fatal(err)
		v.recordCell(m.Sweep, m.Index, m.ConfigDigest, path)
		v.checked++
		if m.Status == manifest.StatusFailed {
			v.failedRuns++
			diag := ""
			if m.Diag != nil {
				diag = fmt.Sprintf(", %d/%d threads unfinished at cycle %d",
					m.Diag.Unfinished, m.Diag.Threads, m.Diag.Cycle)
			}
			fmt.Printf("ok %s (%s/%d, %s/%s) FAILED cause=%s attempt=%d%s\n",
				path, m.Sweep, m.Index, m.Mechanism, m.Lock, m.Cause, m.Attempt, diag)
			return
		}
		if js := m.Journey; js != nil {
			fmt.Printf("ok %s (%s/%d, %s/%s) journeys=%d intercepted=%d e2e_mean=%.1f\n",
				path, m.Sweep, m.Index, m.Mechanism, m.Lock,
				js.Completed, js.Intercepted, float64(js.E2E.Sum)/float64(max(js.Completed, 1)))
			return
		}
		fmt.Printf("ok %s (%s/%d, %s/%s)\n", path, m.Sweep, m.Index, m.Mechanism, m.Lock)
	case strings.HasPrefix(base, "estimate-") && strings.HasSuffix(base, ".json"):
		m, err := manifest.ReadFile(path)
		fatal(err)
		if m.Kind != manifest.EstimateKind {
			fatal(fmt.Errorf("%s: kind %q under an estimate filename, want %q", path, m.Kind, manifest.EstimateKind))
		}
		v.recordCell(m.Sweep, m.Index, m.ConfigDigest, path)
		v.checked++
		v.estimates++
		fmt.Printf("ok %s (%s/%d, %s/%s) ESTIMATE runtime=%.0f cs/kcyc=%.2f bounds=%d metrics\n",
			path, m.Sweep, m.Index, m.Mechanism, m.Lock,
			m.Estimate.Runtime, m.Estimate.CSPerKCycle, len(m.Estimate.Bounds))
	case strings.HasPrefix(base, "campaign-") && strings.HasSuffix(base, ".json"):
		j, err := fleet.ReadJournal(path)
		fatal(err)
		v.checked++
		v.journals++
		v.journal = append(v.journal, j)
		v.journalP = append(v.journalP, path)
		fmt.Printf("ok %s (campaign %s, %d cells) reclaims=%d duplicates=%d late=%d conflicts=%d quarantined=%d skipped=%d\n",
			path, j.Sweep, j.Cells, j.Reclaims, j.Duplicates, j.LateAccepts,
			j.DigestConflicts, len(j.Quarantined), j.Skipped)
		workers := make([]string, 0, len(j.WorkerCompletions))
		for w := range j.WorkerCompletions {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		for _, w := range workers {
			fmt.Printf("   worker %-32s %d completed\n", w, j.WorkerCompletions[w])
		}
	case strings.HasPrefix(base, "campaign-") && strings.HasSuffix(base, ".wal"):
		rep, err := fleet.ReplayWAL(path)
		fatal(err)
		for idx, d := range rep.Digests {
			v.recordCell(rep.Sweep, idx, d, path)
		}
		v.checked++
		v.wals++
		v.replay = append(v.replay, rep)
		v.replayP = append(v.replayP, path)
		state := "open"
		if rep.Closed {
			state = "closed"
		}
		torn := ""
		if rep.TornTail {
			torn = " torn_tail=1"
		}
		fmt.Printf("ok %s (campaign %s, %d cells, %s) events=%d grants=%d reclaims=%d adoptions=%d replays=%d%s\n",
			path, rep.Sweep, rep.Cells, state, rep.Events, rep.Grants,
			rep.Reclaims, rep.Adoptions, rep.Restarts, torn)
	case strings.HasSuffix(base, ".trace.json"):
		data, err := os.ReadFile(path)
		fatal(err)
		if err := metrics.ValidateChromeTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		journeys, err := checkJourneySpans(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		v.checked++
		if journeys > 0 {
			fmt.Printf("ok %s (%d journey spans)\n", path, journeys)
			return
		}
		fmt.Printf("ok %s\n", path)
	}
}

// checkJourneySpans structurally audits the lock-journey spans of an
// exported trace (span nesting and nonnegative durations are already
// enforced by metrics.ValidateChromeTrace): every journey parent span's
// per-stage attribution must sum to its duration within one cycle of
// rounding. Returns how many journey spans were checked.
func checkJourneySpans(data []byte) (int, error) {
	var t struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  uint64 `json:"dur"`
			Args struct {
				Stages map[string]uint64 `json:"stages"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return 0, err
	}
	n := 0
	for _, e := range t.TraceEvents {
		if e.Ph != "X" || e.Args.Stages == nil {
			continue
		}
		n++
		var sum uint64
		for _, v := range e.Args.Stages {
			sum += v
		}
		diff := sum - e.Dur
		if sum < e.Dur {
			diff = e.Dur - sum
		}
		if diff > 1 {
			return n, fmt.Errorf("journey span %q: stage cycles sum to %d, span duration %d", e.Name, sum, e.Dur)
		}
	}
	return n, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgvalidate:", err)
		os.Exit(1)
	}
}
