// Command inpgvalidate checks generated telemetry artifacts: run and
// estimate manifests against the internal/manifest schema and exported
// .trace.json files against the Chrome trace-event structure checker.
// CI runs it over everything a sweep produced; it exits nonzero on the
// first invalid artifact.
//
// Each argument is either a manifest file, a .trace.json file, or a
// directory scanned (non-recursively) for both.
//
// Example:
//
//	inpgvalidate out/manifests out/run.trace.json
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inpg/internal/manifest"
	"inpg/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: inpgvalidate <manifest.json|trace.json|dir>...")
		os.Exit(2)
	}
	checked, failedRuns, estimates := 0, 0, 0
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		fatal(err)
		if !info.IsDir() {
			n, f, e := checkFile(arg)
			checked, failedRuns, estimates = checked+n, failedRuns+f, estimates+e
			continue
		}
		entries, err := os.ReadDir(arg)
		fatal(err)
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			n, f, es := checkFile(filepath.Join(arg, e.Name()))
			checked, failedRuns, estimates = checked+n, failedRuns+f, estimates+es
		}
	}
	if checked == 0 {
		fatal(fmt.Errorf("no manifests or traces found"))
	}
	// A failed-run manifest is a valid artifact — the record of a
	// quarantined cell — and so is an estimate manifest — the record of
	// an analytically pre-screened cell; both count toward validity but
	// are reported.
	extra := ""
	if failedRuns > 0 {
		extra += fmt.Sprintf(" (%d record failed runs)", failedRuns)
	}
	if estimates > 0 {
		extra += fmt.Sprintf(" (%d analytic estimates)", estimates)
	}
	fmt.Printf("inpgvalidate: %d artifacts valid%s\n", checked, extra)
}

// checkFile validates one artifact by name convention; unrecognized
// files are skipped (directories hold figure CSVs too). The second
// return counts manifests recording failed runs, the third estimate
// manifests (analytically pre-screened cells).
func checkFile(path string) (int, int, int) {
	base := filepath.Base(path)
	switch {
	case strings.HasPrefix(base, "manifest-") && strings.HasSuffix(base, ".json"):
		m, err := manifest.ReadFile(path)
		fatal(err)
		if m.Status == manifest.StatusFailed {
			diag := ""
			if m.Diag != nil {
				diag = fmt.Sprintf(", %d/%d threads unfinished at cycle %d",
					m.Diag.Unfinished, m.Diag.Threads, m.Diag.Cycle)
			}
			fmt.Printf("ok %s (%s/%d, %s/%s) FAILED cause=%s attempt=%d%s\n",
				path, m.Sweep, m.Index, m.Mechanism, m.Lock, m.Cause, m.Attempt, diag)
			return 1, 1, 0
		}
		fmt.Printf("ok %s (%s/%d, %s/%s)\n", path, m.Sweep, m.Index, m.Mechanism, m.Lock)
		return 1, 0, 0
	case strings.HasPrefix(base, "estimate-") && strings.HasSuffix(base, ".json"):
		m, err := manifest.ReadFile(path)
		fatal(err)
		if m.Kind != manifest.EstimateKind {
			fatal(fmt.Errorf("%s: kind %q under an estimate filename, want %q", path, m.Kind, manifest.EstimateKind))
		}
		fmt.Printf("ok %s (%s/%d, %s/%s) ESTIMATE runtime=%.0f cs/kcyc=%.2f bounds=%d metrics\n",
			path, m.Sweep, m.Index, m.Mechanism, m.Lock,
			m.Estimate.Runtime, m.Estimate.CSPerKCycle, len(m.Estimate.Bounds))
		return 1, 0, 1
	case strings.HasSuffix(base, ".trace.json"):
		data, err := os.ReadFile(path)
		fatal(err)
		if err := metrics.ValidateChromeTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("ok %s\n", path)
		return 1, 0, 0
	}
	return 0, 0, 0
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgvalidate:", err)
		os.Exit(1)
	}
}
