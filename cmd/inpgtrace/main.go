// Command inpgtrace records and renders a message-level protocol trace of
// one lock competition: every packet injected and delivered for the lock's
// cache block, every in-network stop, early invalidation and relayed
// acknowledgement, and the thread-level acquire/release transitions.
//
// It is the tool to reach for when aggregate counters are not enough —
// e.g. to see exactly where a SWAP was stopped and how its early
// invalidation overlapped the winner's transaction.
//
// Example:
//
//	inpgtrace -mech iNPG -threads 8 -window 400
package main

import (
	"flag"
	"fmt"
	"os"

	"inpg"
	"inpg/internal/metrics"
	"inpg/internal/noc"
	"inpg/internal/sim"
	"inpg/internal/trace"
)

func main() {
	var (
		mechName = flag.String("mech", "iNPG", "mechanism: Original, OCOR, iNPG, iNPG+OCOR")
		lockName = flag.String("lock", "TAS", "lock primitive")
		threads  = flag.Int("threads", 8, "competing threads")
		window   = flag.Int("window", 600, "cycles of trace to print, starting at the first acquire")
		maxEv    = flag.Int("max", 200, "maximum events to print")
		seed     = flag.Int64("seed", 1, "random seed")
		outFile  = flag.String("out", "", "also export the full trace as Chrome trace-event/Perfetto JSON to this file")
		jRate    = flag.Float64("journey-rate", 0, "fraction of lock acquisitions to journey-trace; sampled journeys render as nested spans in -out")
	)
	flag.Parse()

	mech, err := inpg.ParseMechanism(*mechName)
	fatal(err)
	lk, err := inpg.ParseLockKind(*lockName)
	fatal(err)

	cfg := inpg.DefaultConfig()
	cfg.Mechanism = mech
	cfg.Lock = lk
	cfg.Threads = *threads
	cfg.CSPerThread = 2
	cfg.CSCycles = 80
	cfg.CSJitter = 20
	cfg.ParallelCycles = 150
	cfg.ParallelJitter = 50
	cfg.Seed = *seed
	cfg.TraceCapacity = 1 << 16
	cfg.JourneyRate = *jRate
	// Trace only the primary lock block: its home is the Figure 10
	// default, core (5,6) = node 53, block 0.
	home := noc.NodeID(53)
	cfg.TraceAddr = uint64(home) * 128 // first block homed at node 53

	sys, err := inpg.New(cfg)
	fatal(err)
	_, err = sys.Run()
	fatal(err)

	buf := sys.Trace()
	events := buf.Events()
	if *outFile != "" {
		f, err := os.Create(*outFile)
		fatal(err)
		fatal(metrics.WriteChromeTraceJourneys(f, events, sys.MetricsSampler(), sys.Journeys()))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "[trace: %s, %d events]\n", *outFile, len(events))
	}
	if len(events) == 0 {
		fmt.Println("no events traced for the lock block")
		return
	}
	// Start the window at the first acquire so the initial cold-start
	// noise is skipped.
	start := events[0].Cycle
	for _, e := range events {
		if e.Kind == trace.LockAcquire {
			start = e.Cycle
			break
		}
	}
	shown := buf.Window(start, start+sim.Cycle(*window))
	if len(shown) > *maxEv {
		shown = shown[:*maxEv]
	}
	fmt.Printf("lock block %#x (home node %d), %s over %s, %d threads\n",
		cfg.TraceAddr, home, lk, mech, *threads)
	fmt.Printf("showing %d of %d traced events (window %d..%d)\n\n",
		len(shown), buf.Len(), start, start+sim.Cycle(*window))
	fmt.Print(trace.Render(shown))

	fmt.Println("\nevent totals in window:")
	for kind, n := range trace.CountByKind(shown) {
		fmt.Printf("  %-10s %d\n", kind, n)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inpgtrace:", err)
		os.Exit(1)
	}
}
