package inpg

import (
	"fmt"

	"inpg/internal/coherence"
	"inpg/internal/cpu"
	"inpg/internal/journey"
	"inpg/internal/metrics"
	"inpg/internal/noc"
	"inpg/internal/sim"
	"inpg/internal/stats"
)

// metricsLock decorates the lock with handoff- and hold-latency
// measurement: the cycles between one thread's release and the next
// thread's acquire completion (the lock handoff — the quantity iNPG's
// early invalidations attack), and the cycles each holder kept the lock.
// Like tracingLock it adds no simulated time and consumes no randomness,
// so a metered run is cycle-identical to an unmetered one.
type metricsLock struct {
	inner cpu.Lock
	eng   *sim.Engine

	hold    *stats.Histogram
	handoff *stats.Histogram

	acquiredAt  []sim.Cycle // per thread ID
	lastRelease sim.Cycle
	haveRelease bool
}

func (l *metricsLock) Name() string { return l.inner.Name() }

func (l *metricsLock) Acquire(t *cpu.Thread, done func()) {
	l.inner.Acquire(t, func() {
		now := l.eng.Now()
		if l.haveRelease {
			l.handoff.Add(uint64(now - l.lastRelease))
			l.haveRelease = false
		}
		if t.ID < len(l.acquiredAt) {
			l.acquiredAt[t.ID] = now
		}
		done()
	})
}

func (l *metricsLock) Release(t *cpu.Thread, done func()) {
	now := l.eng.Now()
	if t.ID < len(l.acquiredAt) {
		l.hold.Add(uint64(now - l.acquiredAt[t.ID]))
	}
	l.lastRelease = now
	l.haveRelease = true
	l.inner.Release(t, done)
}

// journeyLock decorates the lock with causal journey tracing: each
// acquisition the keyed-hash sampler selects gets a journey record armed
// on the thread's L1 for the duration of the acquire, so every request
// the acquire issues — and every response, probe and completion ack the
// network and the home send on its behalf — attributes its cycles to a
// typed stage. Like metricsLock the decorator adds no simulated time and
// consumes no randomness; an unsampled (or rate-0) run is cycle- and
// byte-identical to one without the decorator installed.
type journeyLock struct {
	inner cpu.Lock
	eng   *sim.Engine
	l1s   []*coherence.L1
	rec   *journey.Recorder
	rate  float64
	seed  int64

	// active holds each thread's in-flight sampled record; nil while the
	// thread's current acquisition is unsampled (or none is in flight).
	active []*journey.Record
}

func (l *journeyLock) Name() string { return l.inner.Name() }

func (l *journeyLock) Acquire(t *cpu.Thread, done func()) {
	if t.ID < len(l.active) && journey.Sampled(l.seed, t.ID, uint64(t.AcquireCount), l.rate) {
		r := &journey.Record{Thread: t.ID, Acquire: uint64(t.AcquireCount)}
		r.Begin(l.eng.Now())
		l.active[t.ID] = r
		l.l1s[t.ID].SetJourney(r)
	}
	l.inner.Acquire(t, func() {
		if t.ID < len(l.active) {
			if r := l.active[t.ID]; r != nil {
				// Disarm before the thread proceeds into its critical
				// section: CS and release traffic belongs to no journey.
				// Tagged packets still in flight (a floating eager ack)
				// no-op against the finished record.
				l.active[t.ID] = nil
				l.l1s[t.ID].SetJourney(nil)
				r.Finish(l.eng.Now())
				l.rec.Finish(r)
			}
		}
		done()
	})
}

func (l *journeyLock) Release(t *cpu.Thread, done func()) { l.inner.Release(t, done) }

// buildMetrics constructs the telemetry registry and registers every
// subsystem's instruments: reader closures over the plain Stats structs
// the components already maintain, so nothing on the simulation hot path
// changes — disabled metrics cost literally nothing, enabled metrics cost
// only snapshot/sample-time reads.
func (s *System) buildMetrics() {
	reg := metrics.NewRegistry()
	s.reg = reg
	eng := s.eng
	net := s.fab.Net
	nodes := s.fab.Homes.Nodes

	// Engine. The awake-ticker count is deliberately NOT registered: in
	// always-tick compat mode Sleep is a no-op, so that gauge measures the
	// scheduler mode rather than the workload and would break the
	// snapshot's byte-identity across -compat runs.
	reg.Gauge("sim.pending_events", func() uint64 { return uint64(eng.PendingEvents()) })

	// NoC: chip-wide aggregates plus one flit counter per router, the
	// per-link view of switching activity.
	sumRouters := func(f func(*noc.RouterStats) uint64) metrics.Reader {
		return func() uint64 {
			var v uint64
			for id := 0; id < nodes; id++ {
				v += f(&net.Router(noc.NodeID(id)).Stats)
			}
			return v
		}
	}
	reg.Counter("noc.flits_switched", sumRouters(func(st *noc.RouterStats) uint64 { return st.FlitsSwitched }))
	reg.Counter("noc.vc_stalls", sumRouters(func(st *noc.RouterStats) uint64 { return st.VCStalls }))
	reg.Counter("noc.packets_seen", sumRouters(func(st *noc.RouterStats) uint64 { return st.PacketsSeen }))
	reg.Counter("noc.packets_consumed", sumRouters(func(st *noc.RouterStats) uint64 { return st.PacketsConsumed }))
	reg.Counter("noc.link_retries", sumRouters(func(st *noc.RouterStats) uint64 { return st.LinkRetries }))
	reg.Counter("noc.link_failures", sumRouters(func(st *noc.RouterStats) uint64 { return st.LinkFailures }))
	for id := 0; id < nodes; id++ {
		rt := net.Router(noc.NodeID(id))
		reg.Counter(fmt.Sprintf("noc.router.%03d.flits", id), func() uint64 { return rt.Stats.FlitsSwitched })
	}
	reg.Counter("noc.injected", func() uint64 {
		var v uint64
		for id := 0; id < nodes; id++ {
			v += net.NI(noc.NodeID(id)).Injected
		}
		return v
	})
	reg.Counter("noc.delivered", func() uint64 {
		var v uint64
		for id := 0; id < nodes; id++ {
			v += net.NI(noc.NodeID(id)).Delivered
		}
		return v
	})
	reg.Counter("noc.latency_cycles", func() uint64 {
		var v uint64
		for id := 0; id < nodes; id++ {
			v += net.NI(noc.NodeID(id)).TotalCycles
		}
		return v
	})

	// Sharded engine (registered only when sharding is in effect, so the
	// -shards 1 snapshot stays byte-identical to the classic engine's).
	// With a one-cycle lookahead the shards run in cycle lockstep, so
	// inter-shard cycle skew is structurally zero; the imbalance signal
	// for sweep operators is barrier wait time. boundary_* counters are
	// deterministic for a fixed configuration and seed; dispatches and
	// inline_passes are too (they depend only on the awake-ticker
	// trajectory); barrier_wait_ns is host wall clock and is the one
	// deliberately nondeterministic instrument here.
	if net.ShardCount() > 1 {
		reg.Gauge("shard.count", func() uint64 { return uint64(net.ShardCount()) })
		reg.Counter("shard.boundary_arrivals", func() uint64 { return net.ShardingStats().BoundaryArrivals })
		reg.Counter("shard.boundary_credits", func() uint64 { return net.ShardingStats().BoundaryCredits })
		reg.Counter("shard.dispatches", func() uint64 { return eng.ShardStats().Dispatches })
		reg.Counter("shard.inline_passes", func() uint64 { return eng.ShardStats().InlinePasses })
		reg.Counter("shard.barrier_wait_ns", func() uint64 { return eng.ShardStats().BarrierWaitNs })
	}

	// Fault layer (all zero on fault-free runs).
	reg.Counter("fault.flits_dropped", func() uint64 { return net.FaultStats().FlitsDropped })
	reg.Counter("fault.flits_corrupted", func() uint64 { return net.FaultStats().FlitsCorrupted })
	reg.Counter("fault.port_stalls", func() uint64 { return net.FaultStats().PortStallHits })

	// L1 controllers and their MSHR files.
	l1s := s.fab.L1s
	sumL1 := func(f func(*coherence.L1Stats) uint64) metrics.Reader {
		return func() uint64 {
			var v uint64
			for _, l1 := range l1s {
				v += f(&l1.Stats)
			}
			return v
		}
	}
	reg.Counter("l1.loads", sumL1(func(st *coherence.L1Stats) uint64 { return st.Loads }))
	reg.Counter("l1.stores", sumL1(func(st *coherence.L1Stats) uint64 { return st.Stores }))
	reg.Counter("l1.atomics", sumL1(func(st *coherence.L1Stats) uint64 { return st.Atomics }))
	reg.Counter("l1.hits", sumL1(func(st *coherence.L1Stats) uint64 { return st.Hits }))
	reg.Counter("l1.misses", sumL1(func(st *coherence.L1Stats) uint64 { return st.Misses }))
	reg.Counter("l1.invs_received", sumL1(func(st *coherence.L1Stats) uint64 { return st.InvsReceived }))
	reg.Counter("l1.writebacks", sumL1(func(st *coherence.L1Stats) uint64 { return st.WritebacksSent }))
	reg.Counter("l1.lock_stall_cycles", sumL1(func(st *coherence.L1Stats) uint64 { return st.LockStallCycles }))
	reg.Counter("l1.stall_cycles", sumL1(func(st *coherence.L1Stats) uint64 { return st.TotalStallCycles }))
	reg.Gauge("l1.mshr_occupancy", func() uint64 {
		var v uint64
		for _, l1 := range l1s {
			v += uint64(l1.MSHR().Len())
		}
		return v
	})
	reg.Gauge("l1.mshr_peak", func() uint64 {
		var v uint64
		for _, l1 := range l1s {
			if p := uint64(l1.MSHR().Peak()); p > v {
				v = p
			}
		}
		return v
	})
	reg.Counter("l1.mshr_allocs", func() uint64 {
		var v uint64
		for _, l1 := range l1s {
			v += l1.MSHR().Allocs()
		}
		return v
	})
	reg.Counter("l1.mshr_rejects", func() uint64 {
		var v uint64
		for _, l1 := range l1s {
			v += l1.MSHR().Rejects()
		}
		return v
	})

	// Directory controllers.
	dirs := s.fab.Dirs
	sumDir := func(f func(*coherence.DirStats) uint64) metrics.Reader {
		return func() uint64 {
			var v uint64
			for _, d := range dirs {
				v += f(&d.Stats)
			}
			return v
		}
	}
	reg.Counter("dir.txn_started", sumDir(func(st *coherence.DirStats) uint64 { return st.TxnStarted }))
	reg.Counter("dir.txn_ended", sumDir(func(st *coherence.DirStats) uint64 { return st.TxnEnded }))
	reg.Counter("dir.gets", sumDir(func(st *coherence.DirStats) uint64 { return st.GetS }))
	reg.Counter("dir.getx", sumDir(func(st *coherence.DirStats) uint64 { return st.GetX }))
	reg.Counter("dir.invs_sent", sumDir(func(st *coherence.DirStats) uint64 { return st.InvsSent }))
	reg.Counter("dir.mem_fetches", sumDir(func(st *coherence.DirStats) uint64 { return st.MemFetches }))
	reg.Counter("dir.queued_requests", sumDir(func(st *coherence.DirStats) uint64 { return st.QueuedRequests }))
	reg.Counter("dir.early_fwd_getx", sumDir(func(st *coherence.DirStats) uint64 { return st.EarlyFwdGetX }))
	reg.Counter("dir.early_inv_skipped", sumDir(func(st *coherence.DirStats) uint64 { return st.EarlyInvSkipped }))
	reg.Counter("dir.relayed_ack_hits", sumDir(func(st *coherence.DirStats) uint64 { return st.RelayedAckHits }))

	// Memory controllers.
	mems := s.fab.Mem.Controllers()
	reg.Counter("mem.reads", func() uint64 {
		var v uint64
		for _, c := range mems {
			v += c.Reads
		}
		return v
	})
	reg.Gauge("mem.queued_peak", func() uint64 {
		var v uint64
		for _, c := range mems {
			if p := uint64(c.QueuedPeak); p > v {
				v = p
			}
		}
		return v
	})

	// Big routers (all zero under Original/OCOR).
	gens := s.gens
	reg.Counter("inpg.early_invs", func() uint64 {
		var v uint64
		for _, g := range gens {
			v += g.Stats.EarlyInvsSent
		}
		return v
	})
	reg.Counter("inpg.getx_stopped", func() uint64 {
		var v uint64
		for _, g := range gens {
			v += g.Stats.GetXStopped
		}
		return v
	})
	reg.Counter("inpg.acks_relayed", func() uint64 {
		var v uint64
		for _, g := range gens {
			v += g.Stats.AcksRelayed
		}
		return v
	})
	reg.Counter("inpg.barriers_created", func() uint64 {
		var v uint64
		for _, g := range gens {
			v += g.Stats.BarriersCreated
		}
		return v
	})
	reg.Counter("inpg.barriers_expired", func() uint64 {
		var v uint64
		for _, g := range gens {
			v += g.Stats.BarriersExpired
		}
		return v
	})

	// Threads.
	threads := s.threads
	reg.Counter("cpu.cs_completed", func() uint64 {
		var v uint64
		for _, th := range threads {
			v += uint64(th.CSCompleted)
		}
		return v
	})
	reg.Counter("cpu.sleeps", func() uint64 {
		var v uint64
		for _, th := range threads {
			v += uint64(th.SleepCount)
		}
		return v
	})

	// Histograms: invalidation round trips (Figure 10's instrument) and
	// the lock hold/handoff latencies measured by metricsLock.
	reg.Histogram("rtt", s.rtt.Hist)
	if s.lockHold != nil {
		reg.Histogram("lock.hold_cycles", s.lockHold)
		reg.Histogram("lock.handoff_cycles", s.lockHandoff)
	}

	// Journey tracing (registered only when sampling is armed, the same
	// conditional discipline as the shard.* block: a rate-0 snapshot stays
	// byte-identical to one taken before the journey subsystem existed).
	if s.journeys != nil {
		rec := s.journeys
		reg.Counter("journey.completed", func() uint64 { return rec.Completed })
		reg.Counter("journey.intercepted", func() uint64 { return rec.InterceptedCount })
		reg.Counter("journey.dropped", func() uint64 { return rec.Dropped })
		reg.Histogram("journey.e2e_cycles", s.journeyE2E)
		for i, st := range journey.Stages {
			reg.Histogram("journey.stage."+st.String()+"_cycles", s.journeyStage[i])
		}
	}
}

// Metrics exposes the telemetry registry, or nil when Config.Metrics is
// off.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// MetricsSampler exposes the periodic sampler, or nil when sampling is
// not configured.
func (s *System) MetricsSampler() *metrics.Sampler { return s.sampler }

// MetricsSnapshot reads every registered instrument at the current cycle.
// It returns nil when metrics are disabled.
func (s *System) MetricsSnapshot() *metrics.Snapshot {
	if s.reg == nil {
		return nil
	}
	snap := s.reg.Snapshot(uint64(s.eng.Now()))
	return &snap
}
