module inpg

go 1.22
