package inpg_test

// Mesh-generality checks: nothing in the stack may assume the default 8×8
// platform. These tests instantiate 16×16 and 32×32 systems end to end —
// topology, big-router deployment, directory homes, thread placement —
// and pin the sharded engine's bit-identity at large scale, where shard
// boundaries cut through real traffic.

import (
	"testing"

	"inpg"
	"inpg/internal/bigrouter"
	"inpg/internal/noc"
)

// largeConfig is a contention-light large-mesh run that still exercises
// the full protocol on every node.
func largeConfig(dim int, mech inpg.Mechanism, lk inpg.LockKind) inpg.Config {
	cfg := inpg.DefaultConfig()
	cfg.MeshWidth, cfg.MeshHeight = dim, dim
	cfg.Mechanism = mech
	cfg.Lock = lk
	cfg.CSPerThread = 1
	cfg.ParallelCycles = 500
	cfg.ParallelJitter = 100
	cfg.Seed = 11
	return cfg
}

func TestSixteenBySixteenAllMechanisms(t *testing.T) {
	for _, mech := range inpg.Mechanisms {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			cfg := largeConfig(16, mech, inpg.LockMCS)
			sys, err := inpg.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			threads := 16 * 16
			if res.Threads != threads {
				t.Fatalf("Threads = %d, want %d", res.Threads, threads)
			}
			if int(res.CSCompleted) != threads*cfg.CSPerThread {
				t.Fatalf("CSCompleted = %d, want %d", res.CSCompleted, threads*cfg.CSPerThread)
			}
		})
	}
}

func TestThirtyTwoByThirtyTwoFullSystem(t *testing.T) {
	cfg := largeConfig(32, inpg.INPG, inpg.LockQSL)
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	threads := 32 * 32
	if res.Threads != threads {
		t.Fatalf("Threads = %d, want %d", res.Threads, threads)
	}
	if int(res.CSCompleted) != threads {
		t.Fatalf("CSCompleted = %d, want %d", res.CSCompleted, threads)
	}
	if res.Stopped == 0 {
		t.Fatal("no lock request was ever stopped by a big router: iNPG is inert on the large mesh")
	}
}

// TestLargeMeshShardedBitIdentical cuts a 16×16 run into up to 16 row
// stripes and demands results and the full trace stream match the
// single-shard engine (the 8×8 matrix lives in shards_test.go; this pins
// the same property where most routers sit on shard boundaries).
func TestLargeMeshShardedBitIdentical(t *testing.T) {
	cfg := largeConfig(16, inpg.INPGOCOR, inpg.LockMCS)
	base, baseEvents := shardedRun(t, cfg, 1)
	for _, shards := range []int{4, 16} {
		res, events := shardedRun(t, cfg, shards)
		diffRuns(t, "16x16", res, events, base, baseEvents)
	}
}

// TestDeploymentScalesWithMesh checks big-router placement off the 8×8
// default: the half-the-nodes checkerboard on 16×16 and a strided spread
// on 32×32 must cover the mesh without duplicates.
func TestDeploymentScalesWithMesh(t *testing.T) {
	m := noc.Mesh{Width: 16, Height: 16}
	nodes := bigrouter.Deployment(m, 128)
	if len(nodes) != 128 {
		t.Fatalf("checkerboard deployment on 16x16 placed %d big routers, want 128", len(nodes))
	}
	for _, id := range nodes {
		x, y := m.Coord(id)
		if (x+y)%2 != 1 {
			t.Fatalf("node %d at (%d,%d) breaks the checkerboard", id, x, y)
		}
	}

	m = noc.Mesh{Width: 32, Height: 32}
	nodes = bigrouter.Deployment(m, 64)
	if len(nodes) != 64 {
		t.Fatalf("strided deployment on 32x32 placed %d big routers, want 64", len(nodes))
	}
	seen := map[noc.NodeID]bool{}
	for _, id := range nodes {
		if id < 0 || int(id) >= m.Nodes() || seen[id] {
			t.Fatalf("deployment produced out-of-range or duplicate node %d", id)
		}
		seen[id] = true
	}
}
