package inpg

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"inpg/internal/fault"
	"inpg/internal/journey"
)

// journeyTestConfig is a small contended run with metrics on and link
// faults injected — the adversarial setting for journey accounting:
// retransmission backoff, probe storms and sharded execution all active.
func journeyTestConfig(kind LockKind, mech Mechanism, shards int) Config {
	cfg := DefaultConfig()
	cfg.Lock = kind
	cfg.Mechanism = mech
	cfg.Threads = 16
	cfg.CSPerThread = 2
	cfg.CSCycles = 40
	cfg.CSJitter = 10
	cfg.ParallelCycles = 150
	cfg.ParallelJitter = 50
	cfg.Fault = fault.AtRate(0.02, 7)
	cfg.Shards = shards
	cfg.Metrics = true
	return cfg
}

// TestJourneySamplingInvisible is the journey tracer's differential
// oracle: over every lock kind × {OCOR, iNPG} × a nonzero fault rate ×
// shard counts 1/4, a fully sampled run (JourneyRate 1) must produce
// results identical to an unsampled one, its metric snapshot must differ
// only by the journey.* instruments, and every recorded journey's stage
// cycles must sum exactly to its end-to-end latency.
func TestJourneySamplingInvisible(t *testing.T) {
	for _, kind := range LockKinds {
		for _, mech := range []Mechanism{OCOR, INPG} {
			for _, shards := range []int{1, 4} {
				kind, mech, shards := kind, mech, shards
				name := fmt.Sprintf("%v/%v/shards%d", kind, mech, shards)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					base := journeyTestConfig(kind, mech, shards)

					plain, err := New(base)
					if err != nil {
						t.Fatal(err)
					}
					resPlain, err := plain.Run()
					if err != nil {
						t.Fatal(err)
					}
					snapPlain := plain.MetricsSnapshot()
					for _, kv := range snapPlain.Values {
						if strings.HasPrefix(kv.Name, "journey.") {
							t.Fatalf("rate-0 snapshot contains %s", kv.Name)
						}
					}
					for _, h := range snapPlain.Histograms {
						if strings.HasPrefix(h.Name, "journey.") {
							t.Fatalf("rate-0 snapshot contains histogram %s", h.Name)
						}
					}

					sampled := base
					sampled.JourneyRate = 1
					traced, err := New(sampled)
					if err != nil {
						t.Fatal(err)
					}
					resTraced, err := traced.Run()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(resPlain, resTraced) {
						t.Fatalf("sampling perturbed results:\nplain:  %+v\ntraced: %+v", resPlain, resTraced)
					}

					// The sampled snapshot must be the plain one plus
					// journey.* lines, nothing else. shard.barrier_wait_ns
					// is host wall clock — the registry's one deliberately
					// nondeterministic instrument — so it is excluded.
					strip := func(text string, dropJourney bool) string {
						var keep []string
						for _, line := range strings.Split(text, "\n") {
							if dropJourney && strings.HasPrefix(line, "journey.") {
								continue
							}
							if strings.HasPrefix(line, "shard.barrier_wait_ns ") {
								continue
							}
							keep = append(keep, line)
						}
						return strings.Join(keep, "\n")
					}
					snapTraced := traced.MetricsSnapshot()
					if got, want := strip(snapTraced.Text(), true), strip(snapPlain.Text(), false); got != want {
						t.Fatalf("non-journey snapshot lines differ:\n--- rate 0 ---\n%s\n--- rate 1 (journey.* stripped) ---\n%s", want, got)
					}

					rec := traced.Journeys()
					if rec == nil || rec.Completed == 0 {
						t.Fatal("no journeys recorded at rate 1")
					}
					var acquires uint64
					for _, th := range traced.Threads() {
						acquires += uint64(th.AcquireCount)
					}
					if rec.Completed != acquires {
						t.Fatalf("journeys completed %d != acquisitions %d", rec.Completed, acquires)
					}
					for _, r := range rec.Records {
						if !r.Finished() {
							t.Fatalf("unfinished record in recorder: %+v", r)
						}
						// The acceptance bar is ≥95%; the milestone state
						// machine is exact by construction, so pin equality.
						if r.StageSum() != r.E2E() {
							t.Fatalf("thread %d acquire %d: stage sum %d != e2e %d (stages %v)",
								r.Thread, r.Acquire, r.StageSum(), r.E2E(), r.Stages)
						}
						for _, l := range r.Legs {
							if l.End < l.Start {
								t.Fatalf("negative-duration leg: %+v", l)
							}
						}
					}
				})
			}
		}
	}
}

// TestJourneyObservesInterception checks the big-router stage: under iNPG
// with a heavily contended TAS lock, sampled journeys must see in-network
// stops (the Intercepted flag and nonzero bigrouter-stage cycles).
func TestJourneyObservesInterception(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lock = LockTAS
	cfg.Mechanism = INPG
	cfg.CSPerThread = 3
	cfg.JourneyRate = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped == 0 {
		t.Skip("workload produced no in-network stops")
	}
	rec := sys.Journeys()
	if rec.InterceptedCount == 0 {
		t.Fatalf("%d GetX stopped in-network but no journey observed an interception (%d journeys)",
			res.Stopped, rec.Completed)
	}
	var br uint64
	for _, r := range rec.Records {
		br += r.Stages[journey.StageBigRouter]
	}
	if br == 0 {
		t.Fatal("intercepted journeys attribute no bigrouter-stage cycles")
	}
}

// TestJourneyPartialSampling checks that a fractional rate samples a
// deterministic strict subset and leaves results untouched.
func TestJourneyPartialSampling(t *testing.T) {
	base := journeyTestConfig(LockTTL, INPG, 1)
	base.JourneyRate = 0.3
	a, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("repeated partial-rate runs diverged")
	}
	ra, rb := a.Journeys(), b.Journeys()
	if ra.Completed != rb.Completed || len(ra.Records) != len(rb.Records) {
		t.Fatalf("sample sets differ: %d/%d vs %d/%d", ra.Completed, len(ra.Records), rb.Completed, len(rb.Records))
	}
	var acquires uint64
	for _, th := range a.Threads() {
		acquires += uint64(th.AcquireCount)
	}
	if ra.Completed == 0 || ra.Completed >= acquires {
		t.Fatalf("rate 0.3 sampled %d of %d acquisitions, want a strict nonempty subset", ra.Completed, acquires)
	}
}
